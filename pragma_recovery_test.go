package pragma

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/chaos"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/partition"
)

// crashAfter wraps a strategy with a chaos fault point so a replay dies at
// a chosen regrid — emulating the process crash of a real run without
// killing the test binary.
type crashAfter struct {
	inner Strategy
	fp    *chaos.FaultPoint
}

func (c crashAfter) Name() string { return c.inner.Name() }
func (c crashAfter) Assign(ctx *core.StepContext) (*partition.Assignment, string, error) {
	if err := c.fp.Check(); err != nil {
		return nil, "", err
	}
	return c.inner.Assign(ctx)
}

func (c crashAfter) CheckpointState() ([]byte, error) {
	if cs, ok := c.inner.(core.CheckpointableStrategy); ok {
		return cs.CheckpointState()
	}
	return nil, nil
}

func (c crashAfter) RestoreState(data []byte) error {
	if cs, ok := c.inner.(core.CheckpointableStrategy); ok {
		return cs.RestoreState(data)
	}
	return nil
}

// TestRuntimeCrashRecovery is the end-to-end crash/restart scenario: a run
// checkpointing through the public options is killed mid-replay, then a
// second Execute with WithResume picks up from the latest checkpoint and
// produces a result identical to a never-interrupted run.
func TestRuntimeCrashRecovery(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(strat Strategy) Runtime {
		return Runtime{Trace: trace, Machine: NewCluster(8), Strategy: strat, NProcs: 8}
	}

	base, err := mk(Adaptive()).Execute()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashAt := len(trace.Snapshots)/2 + 1
	_, err = mk(crashAfter{inner: Adaptive(), fp: &chaos.FaultPoint{FailAt: crashAt}}).
		Execute(WithCheckpointDir(dir), WithCheckpointEvery(2), WithCheckpointKeep(2))
	if !errors.Is(err, chaos.ErrInjectedCrash) {
		t.Fatalf("crash run: err = %v, want injected crash", err)
	}

	resumed, err := mk(Adaptive()).Execute(WithCheckpointDir(dir), WithCheckpointEvery(2), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, base) {
		t.Fatalf("resumed run differs from uninterrupted run:\n got %+v\nwant %+v", resumed, base)
	}
}

// TestRuntimeResumeWithoutCheckpointsRunsFresh covers the operator
// convenience path: -resume with an empty directory just runs.
func TestRuntimeResumeWithoutCheckpointsRunsFresh(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	rt := Runtime{Trace: trace, Machine: NewCluster(4), Strategy: Static(partition.SFC{}), NProcs: 4}
	res, err := rt.Execute(WithCheckpointDir(t.TempDir()), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatalf("fresh resume produced no steps: %+v", res)
	}
}

// TestRuntimeFailureAwareNodeLoss drives a mid-run node failure through the
// public Runtime API: the failure-aware strategy must keep the run finite
// by remapping onto survivors.
func TestRuntimeFailureAwareNodeLoss(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	machine := NewCluster(8)
	healthy, err := Runtime{Trace: trace, Machine: NewCluster(8), Strategy: FailureAware(Adaptive()), NProcs: 8}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	machine.Fail(3, healthy.TotalTime/3)
	machine.Fail(5, healthy.TotalTime/2)
	res, err := Runtime{Trace: trace, Machine: machine, Strategy: FailureAware(Adaptive()), NProcs: 8}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.TotalTime, 1) || math.IsNaN(res.TotalTime) {
		t.Fatalf("failure-aware run did not survive node loss: total=%v", res.TotalTime)
	}
	if res.TotalTime < healthy.TotalTime {
		t.Errorf("losing 2 of 8 nodes sped the run up: %v < %v", res.TotalTime, healthy.TotalTime)
	}
}

// TestRuntimeFailureAwareAllNodesDead pins the zero-survivor error path
// through the public API.
func TestRuntimeFailureAwareAllNodesDead(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	machine := NewCluster(2)
	machine.Fail(0, 0)
	machine.Fail(1, 0)
	_, err = Runtime{Trace: trace, Machine: machine, Strategy: FailureAware(Adaptive()), NProcs: 2}.Execute()
	if err == nil {
		t.Fatal("run with zero live nodes succeeded")
	}
}

// TestFacadeEngineStepDeadline checks the supervision surface: an engine
// built through the facade with a step deadline completes a healthy run
// well inside it.
func TestFacadeEngineStepDeadline(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	h := trace.Snapshots[len(trace.Snapshots)-1].H
	p, err := PartitionerByName("G-MISP+SP")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Partition(h, UniformWork(), 4)
	if err != nil {
		t.Fatal(err)
	}
	center := NewMessageCenter()
	ports := make([]MessagePort, 4)
	for i := range ports {
		ports[i] = center
	}
	eng, err := NewEngine(h, a, center, ports, WithStepDeadline(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3 || len(rep.Workers) != 4 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

package pragma

import (
	"net"
	"testing"
	"time"
)

// TestRuntimeExecuteDegradedPartition severs a distributed control network
// mid-flight and requires the runtime to finish anyway: the agent-managed
// strategy must notice the partition through its Health probe and fall
// back to local-only partitioning decisions for every regrid instead of
// wedging on dead TCP links.
func TestRuntimeExecuteDegradedPartition(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	center := NewMessageCenter(WithHeartbeatTimeout(200 * time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go center.Serve(ln)

	// A four-node control network: the ADM sits broker-side, each node
	// agent speaks through its own hardened TCP client.
	const nodes = 4
	clients := make([]*AgentClient, nodes)
	ports := make([]MessagePort, nodes)
	for i := range clients {
		cl, err := DialMessageCenter(ln.Addr().String(),
			WithReconnect(true),
			WithBackoff(10*time.Millisecond, 50*time.Millisecond),
			WithHeartbeat(50*time.Millisecond),
			WithOpTimeout(time.Second),
			WithSeed(int64(i+1)),
			WithErrorHandler(func(error) {}))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
		ports[i] = cl
	}
	t.Cleanup(func() {
		for _, cl := range clients {
			cl.Close()
		}
	})
	strat, err := NewAgentManagedOn(center, ports, 25)
	if err != nil {
		t.Fatal(err)
	}
	strat.Health = func() bool {
		for _, cl := range clients {
			if cl.Degraded() {
				return false
			}
		}
		return true
	}

	// Partition the network: the broker vanishes and takes every live
	// connection down with it. The clients keep retrying in the background
	// (there is nothing to reach) and report themselves degraded.
	ln.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		degraded := 0
		for _, cl := range clients {
			if cl.Degraded() {
				degraded++
			}
		}
		if degraded == nodes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients noticed the partition", degraded, nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}

	rt := Runtime{
		Trace:    trace,
		Machine:  NewCluster(nodes),
		Strategy: strat,
		NProcs:   nodes,
	}
	res, err := rt.Execute()
	if err != nil {
		t.Fatalf("run did not survive the partition: %v", err)
	}
	if res.TotalTime <= 0 || res.Steps == 0 {
		t.Fatalf("degraded run produced no work: %+v", res)
	}
	if res.DegradedRegrids != len(trace.Snapshots) {
		t.Fatalf("DegradedRegrids = %d, want %d (every regrid was partitioned)",
			res.DegradedRegrids, len(trace.Snapshots))
	}
	if strat.Repartitions == 0 {
		t.Fatal("local-only fallback never partitioned")
	}
}

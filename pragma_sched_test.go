package pragma

import (
	"context"
	"errors"
	"testing"
)

// TestFacadeInterrupt: the WithInterrupt option stops an Execute at the
// next regrid boundary with ErrRunInterrupted, after checkpointing, and a
// resumed Execute completes with a full profile.
func TestFacadeInterrupt(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ch := make(chan struct{})
	close(ch)
	rt := Runtime{Trace: trace, Machine: NewCluster(4), Strategy: Adaptive()}
	_, err = rt.Execute(WithCheckpointDir(dir), WithInterrupt(ch))
	if !errors.Is(err, ErrRunInterrupted) {
		t.Fatalf("interrupted Execute returned %v, want ErrRunInterrupted", err)
	}
	res, err := rt.Execute(WithCheckpointDir(dir), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatalf("resumed run did no work: %+v", res)
	}
}

// TestFacadeScheduler drives the exported scheduler surface: submit a run
// through NewScheduler, wait for it, and check backpressure errors are
// reachable through the facade's names.
func TestFacadeScheduler(t *testing.T) {
	trace, err := GenerateRM3D(RM3DSmall())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(SchedulerConfig{Workers: 2, QueueLimit: 4})
	defer s.Close()
	st, err := s.Submit(SchedulerSubmission{
		Tenant: "acme",
		Spec: SchedulerRunSpec{
			Trace:    trace,
			Strategy: Adaptive(),
			Machine:  NewCluster(4),
			NProcs:   4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Fatalf("run finished %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Steps == 0 {
		t.Fatalf("done run carries no result: %+v", final)
	}
	if stats := s.Stats(); stats.Done != 1 || stats.Workers != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(SchedulerSubmission{
		Tenant: "acme",
		Spec:   SchedulerRunSpec{Trace: trace, Strategy: Adaptive(), Machine: NewCluster(4), NProcs: 4},
	})
	if !errors.Is(err, ErrSchedulerDraining) {
		t.Fatalf("post-drain submit returned %v, want ErrSchedulerDraining", err)
	}
}

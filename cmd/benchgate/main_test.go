package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: example/pkg
cpu: Some CPU
BenchmarkFast-8   	 1000000	      1000 ns/op	     120 B/op	       3 allocs/op
BenchmarkFast-8   	 1000000	      1100 ns/op	     120 B/op	       3 allocs/op
BenchmarkFast-8   	 1000000	       900 ns/op	     120 B/op	       3 allocs/op
BenchmarkSlow-8   	    1000	   2000000 ns/op
BenchmarkSlow-8   	    1000	   2200000 ns/op
PASS
ok  	example/pkg	1.234s
`

func parsed(t *testing.T, text string) ([]string, []Benchmark) {
	t.Helper()
	lines, bs, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return lines, bs
}

func TestParseBench(t *testing.T) {
	lines, bs, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("kept %d lines, want 5", len(lines))
	}
	if len(bs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(bs))
	}
	if bs[0].Name != "BenchmarkFast" || len(bs[0].NsPerOp) != 3 {
		t.Fatalf("first benchmark %+v", bs[0])
	}
	if m := median(bs[0].NsPerOp); m != 1000 {
		t.Fatalf("median %v, want 1000", m)
	}
	if m := median(bs[1].NsPerOp); m != 2100000 {
		t.Fatalf("even-sample median %v, want 2100000", m)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	lines, bs := parsed(t, benchText)
	base := &Baseline{Schema: "pragma-benchgate/v1", Lines: lines, Benchmarks: bs}
	// 10% slower is inside the 20% gate.
	cur := []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: []float64{1100, 1100, 1100}},
		{Name: "BenchmarkSlow", NsPerOp: []float64{2310000, 2310000}},
	}
	report, ok := compare(base, cur, 1.20)
	if !ok {
		t.Fatalf("10%% regression failed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "PASS") {
		t.Fatalf("report lacks verdict:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	_, bs := parsed(t, benchText)
	base := &Baseline{Schema: "pragma-benchgate/v1", Benchmarks: bs}
	cur := []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: []float64{1500, 1500, 1500}},
		{Name: "BenchmarkSlow", NsPerOp: []float64{3200000, 3200000}},
	}
	report, ok := compare(base, cur, 1.20)
	if ok {
		t.Fatalf("~50%% regression passed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report lacks verdict:\n%s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	_, bs := parsed(t, benchText)
	base := &Baseline{Schema: "pragma-benchgate/v1", Benchmarks: bs}
	cur := []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: []float64{500}},
		{Name: "BenchmarkSlow", NsPerOp: []float64{1000000}},
	}
	if report, ok := compare(base, cur, 1.20); !ok {
		t.Fatalf("speedup failed the gate:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	_, bs := parsed(t, benchText)
	base := &Baseline{Schema: "pragma-benchgate/v1", Benchmarks: bs}
	cur := []Benchmark{{Name: "BenchmarkFast", NsPerOp: []float64{1000}}}
	report, ok := compare(base, cur, 1.20)
	if ok {
		t.Fatal("gate passed with a baseline benchmark missing from the run")
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report does not flag the missing benchmark:\n%s", report)
	}
}

func TestCompareOneBadOneGoodBalancesViaGeomean(t *testing.T) {
	_, bs := parsed(t, benchText)
	base := &Baseline{Schema: "pragma-benchgate/v1", Benchmarks: bs}
	// One 40% regression offset by a 2x speedup: geomean ≈ 0.92 → pass.
	cur := []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: []float64{1400}},
		{Name: "BenchmarkSlow", NsPerOp: []float64{1050000}},
	}
	if report, ok := compare(base, cur, 1.20); !ok {
		t.Fatalf("geomean gate rejected a net improvement:\n%s", report)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	lines, bs := parsed(t, benchText)
	path := t.TempDir() + "/base.json"
	in := &Baseline{Schema: "pragma-benchgate/v1", Command: "go test -bench .", Lines: lines, Benchmarks: bs}
	if err := writeBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Lines) != len(in.Lines) || len(out.Benchmarks) != len(in.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if out.Command != in.Command {
		t.Fatalf("command %q, want %q", out.Command, in.Command)
	}
}

// Command benchgate is the CI benchmark-regression gate. It parses `go
// test -bench` output, compares per-benchmark median ns/op against a
// committed JSON baseline, and fails when the geometric mean across
// benchmarks regresses past the threshold.
//
// It deliberately has no dependencies: CI runs it with `go run` on a bare
// checkout, before any module download could happen. benchstat still
// produces the human-readable comparison table in CI; benchgate is the
// deterministic pass/fail decision (benchstat's significance filtering is
// the wrong shape for a hard gate on -count=6 samples).
//
// Usage:
//
//	go test -bench ... -count=6 | benchgate -baseline BENCH_x.json -update
//	go test -bench ... -count=6 | benchgate -baseline BENCH_x.json [-threshold 1.20]
//	benchgate -baseline BENCH_x.json -emit-gobench > old.txt   # for benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_*.json schema.
type Baseline struct {
	Schema string `json:"schema"`
	// Command records how the samples were produced, for reproducibility.
	Command string `json:"command,omitempty"`
	// Lines preserves the raw `go test -bench` benchmark lines so
	// benchstat can re-read the baseline verbatim (-emit-gobench).
	Lines []string `json:"lines"`
	// Benchmarks holds the parsed ns/op samples per benchmark name.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's samples across -count repetitions.
type Benchmark struct {
	Name    string    `json:"name"`
	NsPerOp []float64 `json:"nsPerOp"`
}

// parseBench extracts benchmark result lines and their ns/op values from
// `go test -bench` output. Sample order is preserved.
func parseBench(r io.Reader) ([]string, []Benchmark, error) {
	var lines []string
	samples := make(map[string][]float64)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		// Result lines are "Name iters v1 unit1 v2 unit2 ...".
		nsPerOp := math.NaN()
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("benchgate: bad ns/op in %q: %v", line, err)
				}
				nsPerOp = v
			}
		}
		if math.IsNaN(nsPerOp) {
			continue
		}
		// Strip the -GOMAXPROCS suffix so a baseline recorded on an
		// N-core machine still matches a run on an M-core one.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], nsPerOp)
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	bs := make([]Benchmark, 0, len(order))
	for _, name := range order {
		bs = append(bs, Benchmark{Name: name, NsPerOp: samples[name]})
	}
	return lines, bs, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %v", path, err)
	}
	if b.Schema != "pragma-benchgate/v1" {
		return nil, fmt.Errorf("benchgate: %s has schema %q, want pragma-benchgate/v1", path, b.Schema)
	}
	return &b, nil
}

func writeBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare gates current samples against the baseline: every baseline
// benchmark must be present, and the geometric mean of the per-benchmark
// median ratios (new/old) must stay at or below threshold. Returns the
// report text and whether the gate passes.
func compare(base *Baseline, cur []Benchmark, threshold float64) (string, bool) {
	curByName := make(map[string][]float64, len(cur))
	for _, b := range cur {
		curByName[b.Name] = b.NsPerOp
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s\n", "benchmark", "old median", "new median", "ratio")
	ok := true
	logSum, n := 0.0, 0
	for _, b := range base.Benchmarks {
		samples, present := curByName[b.Name]
		if !present {
			fmt.Fprintf(&sb, "%-44s %14s %14s %8s  MISSING\n", b.Name, fmtNs(median(b.NsPerOp)), "-", "-")
			ok = false
			continue
		}
		oldM, newM := median(b.NsPerOp), median(samples)
		ratio := newM / oldM
		logSum += math.Log(ratio)
		n++
		fmt.Fprintf(&sb, "%-44s %14s %14s %7.3fx\n", b.Name, fmtNs(oldM), fmtNs(newM), ratio)
	}
	for _, b := range cur {
		found := false
		for _, bb := range base.Benchmarks {
			if bb.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(&sb, "%-44s %14s %14s %8s  (new, not in baseline)\n", b.Name, "-", fmtNs(median(b.NsPerOp)), "-")
		}
	}
	if n == 0 {
		sb.WriteString("no overlapping benchmarks\n")
		return sb.String(), false
	}
	geomean := math.Exp(logSum / float64(n))
	verdict := "PASS"
	if geomean > threshold {
		verdict = "FAIL"
		ok = false
	}
	fmt.Fprintf(&sb, "geomean ratio %.3fx over %d benchmarks (threshold %.2fx): %s\n",
		geomean, n, threshold, verdict)
	return sb.String(), ok
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline JSON (required)")
		update    = flag.Bool("update", false, "rewrite the baseline from stdin instead of gating")
		emit      = flag.Bool("emit-gobench", false, "print the baseline's raw benchmark lines (benchstat input)")
		threshold = flag.Float64("threshold", 1.20, "maximum allowed geomean ratio new/old")
		command   = flag.String("command", "", "with -update: record the producing command in the baseline")
	)
	flag.Parse()
	if *baseline == "" {
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *emit:
		b, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, line := range b.Lines {
			fmt.Println(line)
		}
	case *update:
		lines, bs, err := parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(bs) == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
			os.Exit(2)
		}
		b := &Baseline{Schema: "pragma-benchgate/v1", Command: *command, Lines: lines, Benchmarks: bs}
		if err := writeBaseline(*baseline, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, %d samples)\n", *baseline, len(bs), len(lines))
	default:
		b, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		_, cur, err := parseBench(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		report, ok := compare(b, cur, *threshold)
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}
}

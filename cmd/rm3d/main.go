// Command rm3d generates the synthetic RM3D (Richtmyer–Meshkov) adaptation
// trace and replays it on a simulated machine under a chosen partitioning
// strategy.
//
// Usage:
//
//	rm3d -procs 64 -partitioner adaptive        # paper-scale replay
//	rm3d -small -partitioner G-MISP+SP          # quick run
//	rm3d -profiles 0,25,106,201                 # print Fig. 3 profiles
//	rm3d -characterize                          # print octant trajectory
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/pragma-grid/pragma"
)

func main() {
	var (
		procs        = flag.Int("procs", 64, "number of simulated processors")
		partitioner  = flag.String("partitioner", "adaptive", "partitioning strategy: adaptive, system-sensitive, or a partitioner name (SFC, G-MISP+SP, pBD-ISP, ...)")
		small        = flag.Bool("small", false, "use the reduced RM3D configuration")
		profiles     = flag.String("profiles", "", "comma-separated snapshot indices to render as profiles instead of running")
		characterize = flag.Bool("characterize", false, "print the octant trajectory instead of running")
		loaded       = flag.Bool("loaded", false, "run on a synthetically loaded workstation cluster instead of an idle machine")
		saveTrace    = flag.String("save-trace", "", "write the generated adaptation trace to this file and exit")
		loadTrace    = flag.String("load-trace", "", "replay a previously saved adaptation trace instead of generating one")
		stats        = flag.Bool("stats", false, "print per-snapshot trace statistics instead of running")
		emulate      = flag.Bool("emulate", false, "execute one snapshot as a real message-passing program instead of cost simulation")
	)
	flag.Parse()

	cfg := pragma.RM3DPaper()
	if *small {
		cfg = pragma.RM3DSmall()
	}
	var trace *pragma.Trace
	if *loadTrace != "" {
		f, err := os.Open(*loadTrace)
		if err != nil {
			fail(err)
		}
		trace, err = pragma.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded trace %q: %d snapshots\n", *loadTrace, len(trace.Snapshots))
	} else {
		fmt.Printf("generating RM3D trace (%dx%dx%d base, %d levels, %d snapshots)...\n",
			cfg.BaseDims[0], cfg.BaseDims[1], cfg.BaseDims[2], cfg.MaxDepth, cfg.Snapshots())
		var err error
		trace, err = pragma.GenerateRM3D(cfg)
		if err != nil {
			fail(err)
		}
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fail(err)
		}
		if err := pragma.WriteTrace(f, trace); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("saved trace to %q\n", *saveTrace)
		return
	}

	if *stats {
		fmt.Printf("%-10s %-12s %-7s %-7s %-10s %-12s %s\n",
			"snapshot", "coarse-step", "depth", "boxes", "cells", "AMR-eff(%)", "change")
		for _, s := range trace.Stats() {
			fmt.Printf("%-10d %-12d %-7d %-7d %-10d %-12.2f %.3f\n",
				s.Index, s.CoarseStep, s.Depth, s.Boxes, s.Cells, s.Efficiency, s.Change)
		}
		return
	}

	if *profiles != "" {
		for _, part := range strings.Split(*profiles, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fail(fmt.Errorf("bad profile index %q: %w", part, err))
			}
			snap, ok := trace.At(idx)
			if !ok {
				fail(fmt.Errorf("no snapshot %d (trace has %d)", idx, len(trace.Snapshots)))
			}
			fmt.Println(pragma.RenderProfile(snap))
		}
		return
	}

	if *characterize {
		chars, err := pragma.ClassifyTrace(trace)
		if err != nil {
			fail(err)
		}
		kb := pragma.Table2Policy()
		fmt.Printf("%-10s %-8s %-12s %-10s %-10s %s\n",
			"snapshot", "octant", "partitioner", "dynamics", "comm", "dispersion")
		for _, c := range chars {
			act, _ := kb.BestAction("select-partitioner", map[string]interface{}{"octant": c.Octant.String()})
			fmt.Printf("%-10d %-8s %-12s %-10.3f %-10.3f %.3f\n",
				c.Index, c.Octant, act.Target, c.State.Dynamics, c.State.CommRatio, c.State.Dispersion)
		}
		return
	}

	if *emulate {
		if err := runEmulation(trace, *partitioner, *procs); err != nil {
			fail(err)
		}
		return
	}

	var strategy pragma.Strategy
	switch *partitioner {
	case "adaptive":
		strategy = pragma.Adaptive()
	case "system-sensitive":
		strategy = pragma.SystemSensitive()
	default:
		p, err := pragma.PartitionerByName(*partitioner)
		if err != nil {
			fail(err)
		}
		strategy = pragma.Static(p)
	}

	var machine *pragma.Cluster
	if *loaded {
		machine = pragma.NewLinuxCluster(*procs, 2002)
	} else {
		machine = pragma.NewCluster(*procs)
	}
	res, err := pragma.Runtime{
		Trace:     trace,
		Machine:   machine,
		Strategy:  strategy,
		WorkModel: cfg.WorkModel,
	}.Execute()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nstrategy:            %s\n", res.Strategy)
	fmt.Printf("simulated run-time:  %.3f s (%d coarse steps)\n", res.TotalTime, res.Steps)
	fmt.Printf("max load imbalance:  %.2f %%\n", res.MaxImbalance)
	fmt.Printf("avg load imbalance:  %.2f %%\n", res.AvgImbalance)
	fmt.Printf("AMR efficiency:      %.2f %%\n", res.AMREfficiency)
	fmt.Printf("partitioning time:   %.3f s, migration time: %.3f s\n", res.PartitionTime, res.MigrationTime)
	fmt.Printf("partitioner switches: %d\n", res.Switches)
}

// runEmulation partitions the mid-trace snapshot and executes it as a real
// message-passing program through the engine: workers exchange ghost
// messages per the assignment's adjacency.
func runEmulation(trace *pragma.Trace, partitioner string, procs int) error {
	name := partitioner
	if name == "adaptive" || name == "system-sensitive" {
		name = "G-MISP+SP"
	}
	p, err := pragma.PartitionerByName(name)
	if err != nil {
		return err
	}
	snap := trace.Snapshots[len(trace.Snapshots)/2]
	a, err := p.Partition(snap.H, pragma.UniformWork(), procs)
	if err != nil {
		return err
	}
	center := pragma.NewMessageCenter()
	ports := make([]pragma.MessagePort, procs)
	for i := range ports {
		ports[i] = center
	}
	eng, err := pragma.NewEngine(snap.H, a, center, ports)
	if err != nil {
		return err
	}
	const steps = 8
	rep, err := eng.Run(steps)
	if err != nil {
		return err
	}
	fmt.Printf("\nemulated snapshot %d with %s on %d workers for %d steps\n",
		snap.Index, p.Name(), procs, steps)
	fmt.Printf("ghost messages delivered: %d\n", rep.TotalMessages())
	fmt.Printf("%-8s %-8s %-14s %-10s %s\n", "worker", "units", "work/step", "msgs sent", "faces sent")
	for _, w := range rep.Workers {
		fmt.Printf("%-8d %-8d %-14.0f %-10d %.0f\n",
			w.Proc, w.Units, w.WorkPerformed/steps, w.MessagesSent, w.FacesSent)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rm3d:", err)
	os.Exit(1)
}

package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/loadgen"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/sched"
)

// startLocalTarget brings up an in-process /sched serving surface backed
// by a real scheduler replaying a tiny RM3D trace, so -load works with no
// external server. Returns the base URL and a shutdown func.
func startLocalTarget() (string, func(), error) {
	cfg := rm3d.SmallConfig()
	cfg.BaseDims = [3]int{16, 8, 8}
	cfg.MaxDepth = 2
	cfg.CoarseSteps = 60
	tr, err := rm3d.GenerateTrace(cfg)
	if err != nil {
		return "", nil, err
	}
	p, err := partition.ByName("G-MISP+SP")
	if err != nil {
		return "", nil, err
	}
	s := sched.New(sched.Config{Workers: runtime.NumCPU(), QueueLimit: 1024})
	build := func(tenant string, priority int, v url.Values) (sched.RunSpec, error) {
		return sched.RunSpec{
			Trace:    tr,
			Strategy: core.Static{P: p},
			Machine:  cluster.SP2(4),
			NProcs:   4,
		}, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: sched.Handler(s, build)}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// printLoad runs the open-loop load harness against target (or an
// in-process scheduler when target is empty) and prints the client-side
// report. A positive slo fails the run when any endpoint's p99 exceeds it.
func printLoad(target string, qps float64, warmup, duration time.Duration, workers int, slo time.Duration) error {
	local := ""
	if target == "" {
		var stop func()
		var err error
		target, stop, err = startLocalTarget()
		if err != nil {
			return err
		}
		defer stop()
		local = " (in-process scheduler)"
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL: target,
		Stages:  loadgen.Ramp(qps, warmup, duration),
		Workers: workers,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "target %s%s\n", target, local)
	for i, st := range rep.Stages {
		label := "measure"
		if len(rep.Stages) == 2 && i == 0 {
			label = "warmup"
		}
		fmt.Fprintf(out, "stage %d: %.0f qps x %s (%s)\n", i+1, st.QPS, st.Duration, label)
	}
	fmt.Fprintf(out, "wall %.2fs   intended %d   issued %d   dropped %d\n",
		rep.WallSeconds, rep.Intended, rep.Issued, rep.Dropped)
	fmt.Fprintf(out, "%-8s %-9s %-7s %-6s %-9s %-9s %-9s %s\n",
		"endpoint", "requests", "errors", "429s", "p50(ms)", "p95(ms)", "p99(ms)", "rps")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(out, "%-8s %-9d %-7d %-6d %-9.2f %-9.2f %-9.2f %.1f\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.Backpressure429,
			ep.P50Ms, ep.P95Ms, ep.P99Ms, ep.ThroughputRPS)
		metric(ep.Endpoint+"_requests", float64(ep.Requests))
		metric(ep.Endpoint+"_errors", float64(ep.Errors))
		metric(ep.Endpoint+"_429s", float64(ep.Backpressure429))
		metric(ep.Endpoint+"_p50_ms", ep.P50Ms)
		metric(ep.Endpoint+"_p95_ms", ep.P95Ms)
		metric(ep.Endpoint+"_p99_ms", ep.P99Ms)
		metric(ep.Endpoint+"_rps", ep.ThroughputRPS)
	}
	metric("intended", float64(rep.Intended))
	metric("issued", float64(rep.Issued))
	metric("dropped", float64(rep.Dropped))
	metric("wall_s", rep.WallSeconds)
	if slo > 0 {
		if err := rep.CheckSLO(slo); err != nil {
			return err
		}
		fmt.Fprintf(out, "SLO: worst p99 %v within %v\n", rep.P99().Round(time.Microsecond), slo)
	}
	return nil
}

// Command pragma-bench regenerates the tables and figures of the paper's
// evaluation (Parashar & Hariri, IPDPS 2002) and prints them in the paper's
// format.
//
// Usage:
//
//	pragma-bench -all            # every table and figure (paper scale, ~2 min)
//	pragma-bench -table 4        # one table
//	pragma-bench -figure 3       # one figure
//	pragma-bench -table 4 -small # reduced configuration (seconds)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/pragma-grid/pragma/internal/experiments"
	"github.com/pragma-grid/pragma/internal/rm3d"
)

// rm3dSmall avoids importing rm3d at every call site.
func rm3dSmall() rm3d.Config { return rm3d.SmallConfig() }

// out receives the human-readable tables. Under -json it switches to
// stderr so stdout carries exactly one machine-readable JSON object.
var out io.Writer = os.Stdout

// runRecord is one table/figure regeneration in the -json report.
type runRecord struct {
	Name    string             `json:"name"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the single JSON object -json writes to stdout.
type benchReport struct {
	Schema string      `json:"schema"`
	Small  bool        `json:"small"`
	Runs   []runRecord `json:"runs"`
}

// current is the record the running printer adds metrics to via metric().
var current *runRecord

func metric(key string, v float64) {
	if current != nil {
		current.Metrics[key] = v
	}
}

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate one table (1-5)")
		figure     = flag.Int("figure", 0, "regenerate one figure (2-4)")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		small      = flag.Bool("small", false, "use the reduced configuration for Tables 4 and 5")
		ablations  = flag.Bool("ablations", false, "run the DESIGN.md ablation studies")
		extensions = flag.Bool("extensions", false, "run the extension experiments (cross-application study, PF runtime prediction)")
		kernel     = flag.Bool("kernel", false, "benchmark the PAC evaluation kernels (reference vs CommPlan)")
		part       = flag.Bool("partition", false, "benchmark the ISP partitioners (from scratch vs incremental PartitionPlan)")
		schedLoad  = flag.Bool("sched", false, "benchmark the run scheduler (many tiny replays through the shared pool)")
		scen       = flag.String("scenario", "", "replay a composed scenario spec (internal/scenario grammar) and report declared vs observed octants")
		scenCov    = flag.Int("scenario-coverage", 0, "replay a corpus of this many seeded scenarios and print the octant-coverage table (EXPERIMENTS.md uses 100)")
		jsonOut    = flag.Bool("json", false, "write one JSON object with per-run wall time and key metrics to stdout (tables go to stderr)")

		load         = flag.Bool("load", false, "run the open-loop load harness against the /sched serving surface")
		loadURL      = flag.String("url", "", "load target base URL (empty: an in-process scheduler is started)")
		loadQPS      = flag.Float64("qps", 200, "peak load rate in requests/second")
		loadDuration = flag.Duration("duration", 5*time.Second, "measured load stage length")
		loadWarmup   = flag.Duration("warmup", time.Second, "warmup stage length at half the peak rate (0 disables)")
		loadWorkers  = flag.Int("load-workers", 32, "load generator's bounded in-flight request pool")
		sloP99       = flag.Duration("slo-p99", 0, "fail unless every endpoint's client-side p99 stays within this (0 disables), e.g. -slo-p99=50ms")
	)
	flag.Parse()
	if !*all && !*ablations && !*extensions && !*kernel && !*part && !*schedLoad && !*load && *scen == "" && *scenCov == 0 && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	report := benchReport{Schema: "pragma-bench/v1", Small: *small}
	if *jsonOut {
		out = os.Stderr
	}
	run := func(name string, f func() error) {
		fmt.Fprintln(out, strings.Repeat("=", 64))
		fmt.Fprintln(out, name)
		fmt.Fprintln(out, strings.Repeat("=", 64))
		current = &runRecord{Name: name, Metrics: map[string]float64{}}
		start := time.Now()
		err := f()
		current.Seconds = time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		report.Runs = append(report.Runs, *current)
		current = nil
		fmt.Fprintln(out)
	}
	want := func(n int, sel *int) bool { return *all || *sel == n }

	if want(1, table) {
		run("Table 1. Accuracy of the Performance Functions", func() error { return printTable1() })
	}
	if want(2, table) {
		run("Table 2. Recommendations for mapping octants onto partitioning schemes", func() error { return printTable2() })
	}
	if want(3, table) {
		run("Table 3. Characterizing RM3D application run-time state", func() error { return printTable3() })
	}
	if want(4, table) {
		run("Table 4. Partitioner performance for RM3D on 64 processors", func() error { return printTable4(*small) })
	}
	if want(5, table) {
		run("Table 5. Improvement due to system-sensitive partitioning", func() error { return printTable5(*small) })
	}
	if want(2, figure) {
		run("Figure 2. Octant occupancy of the RM3D run", func() error { return printFigure2() })
	}
	if want(3, figure) {
		run("Figure 3. RM3D profile views at sampled time-steps", func() error { return printFigure3() })
	}
	if want(4, figure) {
		run("Figure 4. System-sensitive adaptive partitioning pipeline", func() error { return printFigure4() })
	}
	if *ablations {
		run("Ablations (DESIGN.md §6)", func() error { return printAblations(*small) })
	}
	if *extensions {
		run("Extension experiments", func() error { return printExtensions() })
	}
	if *kernel {
		run("PAC evaluation kernels (sequential reference vs CommPlan)", func() error { return printKernel() })
	}
	if *part {
		run("ISP partitioners (from scratch vs incremental delta-regrid)", func() error { return printPartition() })
	}
	if *schedLoad {
		run("Scheduler load (tiny RM3D replays through the shared pool)", func() error { return printSched() })
	}
	if *scen != "" {
		run("Scenario replay: "+*scen, func() error { return printScenario(*scen) })
	}
	if *scenCov > 0 {
		run("Scenario corpus octant coverage", func() error { return printScenarioCoverage(*scenCov) })
	}
	if *load {
		run("Load: /sched serving surface (open loop)", func() error {
			return printLoad(*loadURL, *loadQPS, *loadWarmup, *loadDuration, *loadWorkers, *sloP99)
		})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}

// printScenario replays one composed scenario under the adaptive
// meta-partitioner and prints declared versus observed octants per phase.
func printScenario(spec string) error {
	res, err := experiments.ScenarioReplay(spec, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d snapshots, %d partitioner switches, simulated %.1fs\n",
		res.Name, res.Snapshots, res.Switches, res.TotalTime)
	fmt.Fprintf(out, "%-24s %-12s %-9s %-9s %s\n", "Phase", "Snapshots", "Declared", "Observed", "Selections")
	for _, ph := range res.Phases {
		names := make([]string, 0, len(ph.Partitioners))
		for name := range ph.Partitioners {
			names = append(names, name)
		}
		sort.Strings(names)
		sel := ""
		for _, name := range names {
			if sel != "" {
				sel += " "
			}
			sel += fmt.Sprintf("%s:%d", name, ph.Partitioners[name])
		}
		fmt.Fprintf(out, "%-24s %3d-%-8d %-9s %-9s %s\n",
			ph.Phase, ph.Start, ph.End-1, ph.Expected, ph.Observed, sel)
	}
	metric("snapshots", float64(res.Snapshots))
	metric("switches", float64(res.Switches))
	metric("total_s", res.TotalTime)
	return nil
}

// printScenarioCoverage regenerates the EXPERIMENTS.md octant-coverage
// table: a seeded corpus of composed scenarios replayed under the strict
// Table-2 meta-partitioner, aggregated per octant.
func printScenarioCoverage(n int) error {
	res, err := experiments.ScenarioCoverage(1000, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "corpus: %d scenarios (seeds %d..%d), %d snapshots\n",
		res.Scenarios, res.BaseSeed, res.BaseSeed+int64(res.Scenarios)-1, res.Snapshots)
	fmt.Fprintf(out, "%-7s %-10s %-12s %-12s %s\n", "Octant", "Snapshots", "Recommended", "Conformance", "Selections")
	for _, row := range res.Rows {
		fmt.Fprintf(out, "%-7s %-10d %-12s %-12.3f %s\n",
			row.Octant, row.Snapshots, row.Recommended, row.Conformance, row.TopSelections())
		metric("octant_"+row.Octant+"_snapshots", float64(row.Snapshots))
		metric("octant_"+row.Octant+"_conformance", row.Conformance)
	}
	metric("scenarios", float64(res.Scenarios))
	metric("snapshots", float64(res.Snapshots))
	return nil
}

// printKernel regenerates the EXPERIMENTS.md kernel table: before/after
// wall time of each PAC evaluation primitive on the paper-scale hierarchy.
func printKernel() error {
	rows, err := experiments.KernelBench(5)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-14s %-16s %-16s %s\n", "Kernel", "Reference (ms)", "CommPlan (ms)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(out, "%-14s %-16.3f %-16.3f %.1fx\n",
			r.Kernel, r.ReferenceSeconds*1e3, r.PlanSeconds*1e3, r.Speedup)
		metric(r.Kernel+"_reference_s", r.ReferenceSeconds)
		metric(r.Kernel+"_plan_s", r.PlanSeconds)
		metric(r.Kernel+"_speedup", r.Speedup)
	}
	return nil
}

// printPartition regenerates the EXPERIMENTS.md partitioner table:
// from-scratch vs incremental wall time of every ISP partitioner on the
// paper-scale locality-dominated regrid delta.
func printPartition() error {
	rows, err := experiments.PartitionBench(5)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %-14s %-16s %-9s %s\n", "Partitioner", "Scratch (ms)", "Incremental (ms)", "Speedup", "Reuse")
	for _, r := range rows {
		fmt.Fprintf(out, "%-12s %-14.3f %-16.3f %-9s %.1f%%\n",
			r.Partitioner, r.ScratchSeconds*1e3, r.IncrementalSeconds*1e3,
			fmt.Sprintf("%.1fx", r.Speedup), r.ReusePct)
		metric(r.Partitioner+"_scratch_s", r.ScratchSeconds)
		metric(r.Partitioner+"_incremental_s", r.IncrementalSeconds)
		metric(r.Partitioner+"_speedup", r.Speedup)
		metric(r.Partitioner+"_reuse_pct", r.ReusePct)
	}
	return nil
}

// printSched runs the scheduler load benchmark: 64 tiny replays from 8
// tenants through a 4-worker pool, reporting throughput and mean per-phase
// latencies (the -json metrics back the BENCH_sched baseline narrative).
func printSched() error {
	res, err := experiments.SchedBench(4, 64, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workers %d, tenants %d, runs %d\n", res.Workers, res.Tenants, res.Runs)
	fmt.Fprintf(out, "wall %.2fs   throughput %.1f runs/s   mean queue %.3fs   mean run %.3fs\n",
		res.WallSeconds, res.RunsPerSecond, res.MeanQueueSeconds, res.MeanRunSeconds)
	metric("workers", float64(res.Workers))
	metric("runs", float64(res.Runs))
	metric("wall_s", res.WallSeconds)
	metric("runs_per_s", res.RunsPerSecond)
	metric("mean_queue_s", res.MeanQueueSeconds)
	metric("mean_run_s", res.MeanRunSeconds)
	return nil
}

func printExtensions() error {
	fmt.Fprintln(out, "-- Cross-application study (all three §2 driver applications) --")
	xRows, err := experiments.CrossApplication(8)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %-10s %-34s %-10s %-22s %s\n", "app", "octant occupancy I..VIII", "adaptive", "best static", "switches")
	for _, r := range xRows {
		occ := ""
		for i, v := range r.Occupancy {
			if i > 0 {
				occ += " "
			}
			occ += fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(out, "  %-10s %-34s %8.2fs  %-10s %8.2fs  %d\n",
			r.Application, occ, r.AdaptiveTime, r.BestStatic, r.BestStaticTime, r.Switches)
	}

	fmt.Fprintln(out, "-- PF-based application runtime prediction (G-MISP+SP, reduced RM3D) --")
	pRows, err := experiments.PFRuntimePrediction(rm3dSmall())
	if err != nil {
		return err
	}
	for _, r := range pRows {
		kind := "interpolated"
		if r.Extrapolated {
			kind = "extrapolated"
		}
		fmt.Fprintf(out, "  procs %3d: predicted %8.2fs   simulated %8.2fs   error %5.2f%% (%s)\n",
			r.Procs, r.Predicted, r.Simulated, r.PercentError, kind)
	}
	return nil
}

func printAblations(small bool) error {
	cfg := experiments.DefaultTable4Config().Trace
	procs := 64
	linuxProcs := 16
	if small {
		cfg = experiments.SmallTable4Config().Trace
		procs = 16
		linuxProcs = 8
	}

	fmt.Fprintln(out, "-- Hilbert vs Morton ordering (SP-ISP) --")
	curveRows, err := experiments.AblationCurves(cfg, procs, 8)
	if err != nil {
		return err
	}
	for _, r := range curveRows {
		fmt.Fprintf(out, "  %-8s comm volume %10.0f   messages %8.1f   imbalance %6.2f%%\n",
			r.Curve, r.CommVolume, r.CommMessages, r.Imbalance)
	}

	fmt.Fprintln(out, "-- Greedy vs optimal sequence partitioning (G-MISP decomposition) --")
	splitRows, err := experiments.AblationSplitters(cfg, procs, 8)
	if err != nil {
		return err
	}
	for _, r := range splitRows {
		fmt.Fprintf(out, "  %-10s mean imbalance %6.2f%%   max %6.2f%%\n", r.Splitter, r.Imbalance, r.MaxImbalance)
	}

	fmt.Fprintln(out, "-- NWS forecaster suite (CPU availability series) --")
	fRows, err := experiments.AblationForecasters(16, 400, 2002)
	if err != nil {
		return err
	}
	for _, r := range fRows {
		fmt.Fprintf(out, "  %-20s MSE %.3e\n", r.Forecaster, r.MSE)
	}

	fmt.Fprintln(out, "-- Adaptive vs statics across processor counts --")
	counts := []int{16, 32, 64}
	if small {
		counts = []int{4, 8, 16}
	}
	pRows, err := experiments.AblationProcSweep(cfg, counts)
	if err != nil {
		return err
	}
	for _, r := range pRows {
		fmt.Fprintf(out, "  procs %3d: adaptive %8.2fs   best static %s %8.2fs   worst static %s %8.2fs   improvement vs worst %.1f%%\n",
			r.Procs, r.AdaptiveTime, r.BestStatic, r.BestStaticTime, r.WorstStatic, r.WorstStaticTime, r.AdaptiveVsWorstStatic)
	}

	fmt.Fprintln(out, "-- Capacity weight sensitivity (Table 5 scenario) --")
	wRows, err := experiments.AblationCapacityWeights(cfg, linuxProcs, 2002)
	if err != nil {
		return err
	}
	for _, r := range wRows {
		fmt.Fprintf(out, "  cpu %.2f mem %.2f bw %.2f: improvement %6.2f%%\n",
			r.Weights.CPU, r.Weights.Memory, r.Weights.Bandwidth, r.Improvement)
	}

	fmt.Fprintln(out, "-- Fail-stop failure injection (fault-tolerant G-MISP+SP) --")
	fRows2, err := experiments.AblationFailures(cfg, linuxProcs)
	if err != nil {
		return err
	}
	for _, r := range fRows2 {
		fmt.Fprintf(out, "  %-24s runtime %8.2fs   detections %d\n", r.Scenario, r.Runtime, r.Detected)
	}

	fmt.Fprintln(out, "-- Runtime-management styles on a loaded cluster --")
	mRows, err := experiments.AblationManagement(cfg, linuxProcs, 2002)
	if err != nil {
		return err
	}
	for _, r := range mRows {
		fmt.Fprintf(out, "  %-18s runtime %8.2fs   repartitions %d\n", r.Strategy, r.Runtime, r.Repartitions)
	}
	return nil
}

func printTable1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %-14s %-14s %s\n", "Data Size", "PF(total)", "Measured", "%Error")
	fmt.Fprintf(out, "%-12s %-14s %-14s %s\n", "(bytes)", "(s)", "end-to-end (s)", "")
	var maxErr float64
	for _, r := range rows {
		fmt.Fprintf(out, "%-12.0f %-14.4e %-14.4e %.3f\n", r.DataSize, r.Predicted, r.Measured, r.PercentError)
		if e := r.PercentError; e > maxErr {
			maxErr = e
		}
	}
	metric("max_percent_error", maxErr)
	return nil
}

func printTable2() error {
	fmt.Fprintf(out, "%-8s %s\n", "Octant", "Scheme")
	for _, r := range experiments.Table2() {
		fmt.Fprintf(out, "%-8s %s\n", r.Octant, strings.Join(r.Schemes, ", "))
	}
	return nil
}

func printTable3() error {
	rows, err := experiments.Table3()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %-14s %s\n", "Time-step", "Octant State", "Partitioner")
	for _, r := range rows {
		fmt.Fprintf(out, "%-10d %-14s %s\n", r.TimeStep, r.Octant, r.Partitioner)
	}
	return nil
}

func printTable4(small bool) error {
	cfg := experiments.DefaultTable4Config()
	if small {
		cfg = experiments.SmallTable4Config()
	}
	rows, err := experiments.Table4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %-12s %-18s %s\n", "Partitioner", "Run-time", "Max. Load", "AMR")
	fmt.Fprintf(out, "%-12s %-12s %-18s %s\n", "", "(sec)", "Imbalance (%)", "Efficiency (%)")
	var slowest float64
	for _, r := range rows {
		fmt.Fprintf(out, "%-12s %-12.3f %-18.4f %.4f\n", r.Partitioner, r.Runtime, r.MaxImbalance, r.AMREfficiency)
		metric(r.Partitioner+"_runtime_s", r.Runtime)
		metric(r.Partitioner+"_max_imbalance_pct", r.MaxImbalance)
		if r.Runtime > slowest {
			slowest = r.Runtime
		}
	}
	for _, r := range rows {
		if r.Partitioner == "adaptive" {
			improvement := 100 * (slowest - r.Runtime) / slowest
			fmt.Fprintf(out, "\nadaptive improvement over the slowest partitioner: %.1f%%\n", improvement)
			metric("adaptive_improvement_pct", improvement)
		}
	}
	return nil
}

func printTable5(small bool) error {
	cfg := experiments.DefaultTable5Config()
	if small {
		cfg = experiments.SmallTable5Config()
	}
	rows, err := experiments.Table5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-22s %s\n", "Number of Processors", "Percentage Improvement")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22d %.1f%%   (default %.1fs -> system-sensitive %.1fs)\n",
			r.Procs, r.Improvement, r.DefaultTime, r.SystemSensitiveTime)
		metric(fmt.Sprintf("improvement_pct_procs_%d", r.Procs), r.Improvement)
	}
	return nil
}

func printFigure2() error {
	rows, err := experiments.Figure2()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-8s %-10s %-14s %-12s %s\n", "Octant", "Dynamics", "Dominance", "Pattern", "Visits")
	for _, r := range rows {
		dyn, dom, pat := "lower", "computation", "localized"
		if r.HigherDynamics {
			dyn = "higher"
		}
		if r.CommDominated {
			dom = "communication"
		}
		if r.Scattered {
			pat = "scattered"
		}
		fmt.Fprintf(out, "%-8s %-10s %-14s %-12s %d\n", r.Octant, dyn, dom, pat, r.Visits)
	}
	return nil
}

func printFigure3() error {
	profiles, err := experiments.Figure3()
	if err != nil {
		return err
	}
	for _, p := range profiles {
		fmt.Fprintln(out, p)
	}
	return nil
}

func printFigure4() error {
	res, err := experiments.Figure4()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-6s %-14s %-18s %s\n", "Node", "CPU available", "Relative capacity", "Assigned work share")
	for i := range res.Capacities {
		fmt.Fprintf(out, "%-6d %-14.3f %-18.3f %.3f\n", i, res.CPUAvailable[i], res.Capacities[i], res.WorkShares[i])
	}
	return nil
}

// Command pragma-node emulates a multi-node Pragma control network with
// real processes: one process serves the Message Center and the application
// delegated manager; every other process joins as a node running a
// component agent with a synthetic load sensor and a repartition actuator.
//
// Terminal 1 (the broker + ADM):
//
//	pragma-node -serve 127.0.0.1:7070
//
// Terminals 2..N (one per emulated node):
//
//	pragma-node -join 127.0.0.1:7070 -id node-1
//	pragma-node -join 127.0.0.1:7070 -id node-2 -load 0.9
//
// The broker prints consolidated state once per second; agents whose load
// crosses the overload threshold trigger events, the ADM queries the
// policy base and broadcasts a repartition command, and each node's
// actuator prints when it fires.
//
// A third mode replays an adaptation trace with checkpoint/restart, for
// rehearsing crash recovery:
//
//	pragma-node -replay -checkpoint-dir ./ckpt -crash-at 8   # dies mid-run
//	pragma-node -replay -checkpoint-dir ./ckpt -resume       # picks it up
//
// A fourth mode serves the multi-tenant run scheduler: many concurrent
// replays through a bounded worker pool, with submit/status/drain exposed
// on the telemetry HTTP server:
//
//	pragma-node -serve 127.0.0.1:7070 -sched 4 -telemetry-addr 127.0.0.1:9090 \
//	    -sched-checkpoint-root ./runs
//	curl -X POST 'http://127.0.0.1:9090/sched/submit?tenant=acme&name=run1&strategy=adaptive'
//	curl -X POST  http://127.0.0.1:9090/sched/drain
//
// Tenants share the pool by weighted max-min fairness: submit with
// weight=4 and the tenant completes ~4x a weight-1 tenant's work under
// saturation, with an under-share submit preempting the most over-share
// running run at its next regrid boundary (it checkpoints and resumes
// later, bit-identically).
//
// On SIGINT the scheduler drains gracefully: in-flight runs checkpoint at
// their next regrid boundary and report as resumable.
//
// A fifth mode federates several pragma-node processes into a fleet: one
// router owning the message center and the fleet-wide /sched/ API, and any
// number of workers executing the runs it dispatches. Runs checkpoint
// under the shared root, so a killed worker's runs resume on survivors:
//
//	pragma-node -serve 127.0.0.1:7070 -fleet -telemetry-addr 127.0.0.1:9090 \
//	    -fleet-checkpoint-root ./fleet-runs
//	pragma-node -join 127.0.0.1:7070 -worker -id w1
//	pragma-node -join 127.0.0.1:7070 -worker -id w2
//	curl -X POST 'http://127.0.0.1:9090/sched/submit?tenant=acme&trace=small'
//	curl http://127.0.0.1:9090/sched/fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/pragma-grid/pragma"
	"github.com/pragma-grid/pragma/internal/chaos"
	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/fleet"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

func main() {
	var (
		serve    = flag.String("serve", "", "serve the Message Center and ADM on this address")
		join     = flag.String("join", "", "join a served Message Center as a node agent")
		id       = flag.String("id", "node-0", "agent identity (with -join)")
		load     = flag.Float64("load", 0.3, "base synthetic load of this node (with -join)")
		wobble   = flag.Float64("wobble", 0.15, "load oscillation amplitude (with -join)")
		overload = flag.Float64("overload", 0.8, "load threshold that fires an overload event")
		interval = flag.Duration("interval", time.Second, "agent poll / ADM report interval")
		runFor   = flag.Duration("run-for", 0, "exit after this duration (0 = until interrupted)")

		// Observability.
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics, /healthz and /debug/pragma on this address (all modes)")
		telemetryHold = flag.Duration("telemetry-hold", 0, "keep the telemetry endpoint alive this long after -replay finishes (for scraping)")

		// Multi-tenant run scheduler (serving mode; requires -telemetry-addr).
		schedWorkers     = flag.Int("sched", 0, "run the multi-tenant run scheduler with this many pool workers, exposing /sched/ on the telemetry address")
		schedQueue       = flag.Int("sched-queue", 64, "scheduler: admission queue limit (submissions beyond it are rejected)")
		schedTenantLimit = flag.Int("sched-tenant-limit", 8, "scheduler: max queued+running runs per tenant (0 = unlimited)")
		schedCkptRoot    = flag.String("sched-checkpoint-root", "", "scheduler: checkpoint named runs under <root>/<tenant>/<name> so drained runs are resumable")
		schedDrain       = flag.Duration("sched-drain-timeout", time.Minute, "scheduler: how long shutdown waits for in-flight runs to reach a regrid boundary")
		schedState       = flag.String("sched-state", "", "scheduler: snapshot the queued and drained backlog into this directory on drain and restore it on boot, so a process roll loses no submitted run")

		// Fleet: shard runs across pragma-node worker processes.
		fleetMode     = flag.Bool("fleet", false, "with -serve: run the fleet router on the message center; /sched/ becomes fleet-wide (requires -telemetry-addr)")
		workerMode    = flag.Bool("worker", false, "with -join: execute fleet runs dispatched by a -fleet router")
		workerSlots   = flag.Int("worker-slots", 2, "worker: concurrent run slots advertised to the router")
		fleetCkptRoot = flag.String("fleet-checkpoint-root", "", "router: default submitted runs to checkpoint under <root>/<run-id> (shared storage) so failover can resume them")

		// Robustness knobs.
		hbTimeout = flag.Duration("heartbeat-timeout", 5*time.Second, "broker: evict clients silent this long (0 disables; with -serve)")
		wTimeout  = flag.Duration("write-timeout", 5*time.Second, "broker: wire write deadline (0 disables; with -serve)")
		heartbeat = flag.Duration("heartbeat", time.Second, "node: ping the broker this often (0 disables; with -join)")
		reconnect = flag.Bool("reconnect", true, "node: reconnect with backoff and replay state after link loss (with -join)")

		// Trace replay with checkpoint/restart.
		replay       = flag.Bool("replay", false, "replay an adaptation trace on a simulated machine")
		traceName    = flag.String("trace", "small", "replay: RM3D trace configuration (small|paper)")
		scenarioSpec = flag.String("scenario", "", "replay: composed scenario spec instead of the RM3D trace, e.g. \"seed=7;shock:8,block:6\" (see internal/scenario)")
		strategyName = flag.String("strategy", "adaptive", "replay: adaptive|system-sensitive|proactive or a partitioner name (SFC, G-MISP+SP, ...)")
		procs        = flag.Int("procs", 8, "replay: processor count")
		ckptDir      = flag.String("checkpoint-dir", "", "replay: persist run state here at regrid boundaries")
		ckptEvery    = flag.Int("checkpoint-every", 1, "replay: checkpoint after every k-th regrid")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "replay: checkpoint files to retain (negative = all)")
		resume       = flag.Bool("resume", false, "replay: continue from the latest valid checkpoint")
		crashAt      = flag.Int("crash-at", 0, "replay: inject a crash at the n-th regrid (rehearsal; 0 disables)")
		emulate      = flag.Bool("emulate", false, "replay: then run the final snapshot on the message-passing engine")
		stepDeadline = flag.Duration("step-deadline", 30*time.Second, "emulation: per-step barrier deadline (0 = none, may hang on faults)")

		// Fault injection on the node's uplink, for rehearsing failures.
		chaosDrop    = flag.Float64("chaos-drop", 0, "inject: per-op connection drop probability (with -join)")
		chaosCorrupt = flag.Float64("chaos-corrupt", 0, "inject: per-write byte corruption probability (with -join)")
		chaosLatency = flag.Duration("chaos-latency", 0, "inject: fixed latency per wire op (with -join)")
		chaosJitter  = flag.Duration("chaos-jitter", 0, "inject: random extra latency per wire op (with -join)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "inject: fault RNG seed (with -join)")
		chaosBudget  = flag.Int("chaos-max-faults", 0, "inject: total fault budget, 0 = unlimited (with -join)")
	)
	flag.Parse()

	// SIGTERM is what container orchestrators send first; treat it exactly
	// like Ctrl-C so both paths end in a graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	var scheduler *pragma.Scheduler
	var schedBuild pragma.SchedulerSpecBuilder
	var schedEvents *pragma.RunEventHub
	var stateStore *checkpoint.Store
	stateSeq := 0
	if *schedWorkers > 0 {
		if *telemetryAddr == "" {
			fail(errors.New("-sched needs -telemetry-addr to serve its endpoints on"))
		}
		if *fleetMode {
			fail(errors.New("-sched and -fleet both own /sched/; pick one"))
		}
		schedEvents = pragma.NewRunEventHub(pragma.RunEventHubConfig{})
		defer schedEvents.Close()
		scheduler = pragma.NewScheduler(pragma.SchedulerConfig{
			Workers:     *schedWorkers,
			QueueLimit:  *schedQueue,
			TenantLimit: *schedTenantLimit,
			Events:      schedEvents,
		})
		schedBuild = schedSpecBuilder(*schedCkptRoot)
		if *schedState != "" {
			stateStore = &checkpoint.Store{Dir: *schedState}
			// Boot-time restore: re-admit whatever backlog the previous
			// process snapshotted on its way down. A missing snapshot is a
			// fresh start, not an error.
			seq, payload, err := stateStore.Latest(nil)
			switch {
			case errors.Is(err, checkpoint.ErrNoCheckpoint):
			case err != nil:
				fail(fmt.Errorf("restore scheduler state: %w", err))
			default:
				stateSeq = seq
				restored, err := scheduler.Restore(payload, schedBuild)
				if err != nil {
					fmt.Fprintf(os.Stderr, "pragma-node: restore (snapshot %d): %v\n", seq, err)
				}
				fmt.Printf("restored %d runs from %s (snapshot %d)\n", restored, *schedState, seq)
			}
		}
	}

	// readiness aggregates the drain signals of whatever subsystems this
	// process runs; /readyz flips to 503 as soon as any of them starts
	// draining, while /healthz stays 200 (the process is alive, just not
	// accepting new work).
	readiness := &readyChecks{}

	var fleetRouter *fleet.Router
	if *fleetMode {
		if *serve == "" {
			fail(errors.New("-fleet needs -serve (the router owns the message center)"))
		}
		if *telemetryAddr == "" {
			fail(errors.New("-fleet needs -telemetry-addr to serve /sched/ on"))
		}
		center := pragma.NewMessageCenter(
			pragma.WithHeartbeatTimeout(*hbTimeout),
			pragma.WithCenterWriteTimeout(*wTimeout),
			pragma.WithCenterErrorHandler(func(err error) {
				fmt.Fprintf(os.Stderr, "broker: %v\n", err)
			}))
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fail(err)
		}
		defer ln.Close()
		pragma.RegisterQueueDepthGauge(center)
		go center.Serve(ln)
		fmt.Printf("message center listening on %s\n", ln.Addr())
		fleetEvents := pragma.NewRunEventHub(pragma.RunEventHubConfig{})
		defer fleetEvents.Close()
		fleetRouter, err = fleet.NewRouter(fleet.Config{
			Port:             center,
			HeartbeatTimeout: *hbTimeout,
			Events:           fleetEvents,
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			},
		})
		if err != nil {
			fail(err)
		}
		fleetRouter.AttachCenter(center)
		readiness.add(func() error {
			if fleetRouter.Draining() {
				return errors.New("fleet draining")
			}
			return nil
		})
	}
	if scheduler != nil {
		readiness.add(func() error {
			if scheduler.Draining() {
				return errors.New("scheduler draining")
			}
			return nil
		})
	}

	var tsrv *pragma.TelemetryServer
	if *telemetryAddr != "" {
		mux := telemetry.NewHandler(telemetry.Default, telemetry.DefaultTracer, nil)
		telemetry.HandleReadiness(mux, readiness.check)
		if scheduler != nil {
			mux.Handle("/sched/", pragma.NewSchedulerHandler(scheduler, schedBuild))
		}
		if fleetRouter != nil {
			mux.Handle("/sched/", fleet.Handler(fleetRouter, *fleetCkptRoot))
		}
		var err error
		tsrv, err = telemetry.ServeHandler(*telemetryAddr, mux)
		if err != nil {
			fail(err)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", tsrv.Addr())
		if scheduler != nil {
			fmt.Printf("scheduler serving %d workers on http://%s/sched/\n", *schedWorkers, tsrv.Addr())
		}
		if fleetRouter != nil {
			fmt.Printf("fleet router serving on http://%s/sched/\n", tsrv.Addr())
		}
	}
	if scheduler != nil {
		// Whatever mode runs in the foreground, shut the scheduler down
		// gracefully on the way out: stop admitting, checkpoint in-flight
		// runs at their next regrid boundary, report what is resumable.
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), *schedDrain)
			defer cancel()
			if err := scheduler.Drain(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "pragma-node: drain: %v\n", err)
				return
			}
			st := scheduler.Stats()
			fmt.Printf("scheduler drained: %d done, %d drained (resumable), %d cancelled, %d failed\n",
				st.Done, st.Drained, st.Cancelled, st.Failed)
			if stateStore != nil {
				// Persist the backlog so the next boot re-admits it: drained
				// runs resume from their checkpoints, cancelled queued runs
				// start fresh.
				data, skipped, err := scheduler.Snapshot()
				if err != nil {
					fmt.Fprintf(os.Stderr, "pragma-node: snapshot: %v\n", err)
					return
				}
				if _, err := stateStore.Save(stateSeq+1, data); err != nil {
					fmt.Fprintf(os.Stderr, "pragma-node: save state: %v\n", err)
					return
				}
				if skipped > 0 {
					fmt.Printf("scheduler state saved to %s (%d programmatic runs not serializable)\n", *schedState, skipped)
				} else {
					fmt.Printf("scheduler state saved to %s\n", *schedState)
				}
			}
		}()
	}

	switch {
	case *replay:
		if err := runReplay(replayConfig{
			trace: *traceName, scenario: *scenarioSpec, strategy: *strategyName, procs: *procs,
			ckptDir: *ckptDir, ckptEvery: *ckptEvery, ckptKeep: *ckptKeep,
			resume: *resume, crashAt: *crashAt,
			emulate: *emulate, stepDeadline: *stepDeadline,
		}); err != nil {
			fail(err)
		}
		if tsrv != nil && *telemetryHold > 0 {
			fmt.Printf("holding telemetry endpoint for %s (scrape http://%s/metrics)\n", *telemetryHold, tsrv.Addr())
			select {
			case <-ctx.Done():
			case <-time.After(*telemetryHold):
			}
		}
	case fleetRouter != nil:
		// The message center and /sched/ endpoints are live; block until
		// interrupted or a remote POST /sched/drain completes, then drain
		// whatever is still in flight.
		fmt.Println("fleet router ready; join workers with -join ADDR -worker")
		select {
		case <-ctx.Done():
		case <-fleetRouter.Stopped():
		}
		dctx, cancel := context.WithTimeout(context.Background(), *schedDrain)
		if err := fleetRouter.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "pragma-node: fleet drain: %v\n", err)
		}
		cancel()
		st := fleetRouter.Stats()
		fmt.Printf("fleet drained: %d done, %d drained (resumable), %d cancelled, %d failed, %d failovers\n",
			st.Done, st.Drained, st.Cancelled, st.Failed, st.Failovers)
	case *serve != "":
		if err := runBroker(ctx, *serve, *interval, *hbTimeout, *wTimeout); err != nil {
			fail(err)
		}
	case *join != "" && *workerMode:
		dialOpts := []pragma.DialOption{
			pragma.WithReconnect(*reconnect),
			pragma.WithHeartbeat(*heartbeat),
			pragma.WithErrorHandler(func(err error) {
				fmt.Fprintf(os.Stderr, "[%s] link: %v\n", *id, err)
			}),
		}
		if err := runFleetWorker(ctx, *join, *id, *workerSlots, *heartbeat, *schedDrain, readiness, dialOpts); err != nil {
			fail(err)
		}
	case *join != "":
		dialOpts := []pragma.DialOption{
			pragma.WithReconnect(*reconnect),
			pragma.WithHeartbeat(*heartbeat),
			pragma.WithErrorHandler(func(err error) {
				fmt.Fprintf(os.Stderr, "[%s] link: %v\n", *id, err)
			}),
		}
		if *chaosDrop > 0 || *chaosCorrupt > 0 || *chaosLatency > 0 || *chaosJitter > 0 {
			dialOpts = append(dialOpts, pragma.WithDialer(pragma.ChaosDialer(pragma.ChaosConfig{
				Seed:        *chaosSeed,
				Latency:     *chaosLatency,
				Jitter:      *chaosJitter,
				DropRate:    *chaosDrop,
				CorruptRate: *chaosCorrupt,
				MaxFaults:   *chaosBudget,
			})))
		}
		if err := runNode(ctx, *join, *id, *load, *wobble, *overload, *interval, dialOpts); err != nil {
			fail(err)
		}
	case scheduler != nil:
		// Scheduler-only serving: the HTTP endpoints are live; block until
		// interrupted (the deferred drain then checkpoints in-flight runs)
		// or until a POST /sched/drain finishes the drain remotely.
		fmt.Println("scheduler ready; submit runs, interrupt to drain")
		select {
		case <-ctx.Done():
		case <-scheduler.Stopped():
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// readyChecks aggregates per-subsystem readiness probes for /readyz.
// Checks can be added after the HTTP server is already serving (the fleet
// worker joins late), hence the lock.
type readyChecks struct {
	mu     sync.Mutex
	checks []func() error
}

func (r *readyChecks) add(fn func() error) {
	r.mu.Lock()
	r.checks = append(r.checks, fn)
	r.mu.Unlock()
}

func (r *readyChecks) check() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.checks {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// runFleetWorker joins the control network as a fleet worker: it executes
// runs the router dispatches until interrupted, the router drains it, or
// its link is lost for good.
func runFleetWorker(ctx context.Context, addr, id string, slots int, heartbeat, drainTimeout time.Duration, readiness *readyChecks, dialOpts []pragma.DialOption) error {
	client, err := pragma.DialMessageCenter(addr, dialOpts...)
	if err != nil {
		return err
	}
	defer client.Close()
	worker, err := fleet.NewWorker(fleet.WorkerConfig{
		Port:           client,
		ID:             id,
		Slots:          slots,
		HeartbeatEvery: heartbeat,
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "[%s] fleet: %v\n", id, err)
		},
	})
	if err != nil {
		return err
	}
	readiness.add(func() error {
		if worker.Draining() {
			return errors.New("worker draining")
		}
		return nil
	})
	fmt.Printf("fleet worker %s joined %s (%d slots)\n", id, addr, slots)
	select {
	case <-ctx.Done():
	case <-worker.Stopped():
	}
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := worker.Drain(dctx); err != nil {
		return fmt.Errorf("worker drain: %w", err)
	}
	fmt.Printf("fleet worker %s drained\n", id)
	return nil
}

// schedSpecBuilder maps /sched/submit parameters onto run specs:
//
//	trace=small|paper        adaptation trace (generated once, then cached)
//	scenario=SPEC            composed scenario spec instead of trace=
//	                         (internal/scenario grammar, cached per spec)
//	seed=N                   scenario seed override (with scenario=)
//	strategy=adaptive|...    strategy or partitioner name (default adaptive)
//	procs=N                  processor count (default 8)
//	name=NAME                run name; with -sched-checkpoint-root set, the
//	                         run checkpoints under <root>/<tenant>/<name>
//	resume=1                 continue from that run's latest checkpoint
func schedSpecBuilder(ckptRoot string) pragma.SchedulerSpecBuilder {
	var mu sync.Mutex
	traces := map[string]*pragma.Trace{}
	getTrace := func(name string) (*pragma.Trace, error) {
		mu.Lock()
		defer mu.Unlock()
		if tr, ok := traces[name]; ok {
			return tr, nil
		}
		var cfg pragma.RM3DConfig
		switch name {
		case "", "small":
			cfg = pragma.RM3DSmall()
		case "paper":
			cfg = pragma.RM3DPaper()
		default:
			return nil, fmt.Errorf("unknown trace %q (small|paper)", name)
		}
		tr, err := pragma.GenerateRM3D(cfg)
		if err != nil {
			return nil, err
		}
		traces[name] = tr
		return tr, nil
	}
	getScenario := func(specStr, seedStr string) (*pragma.Trace, error) {
		spec, err := pragma.ParseScenario(specStr)
		if err != nil {
			return nil, err
		}
		if seedStr != "" {
			seed, err := strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q", seedStr)
			}
			spec.Seed = seed
		}
		key := fmt.Sprintf("scenario\x00%s\x00%d", specStr, spec.Seed)
		mu.Lock()
		defer mu.Unlock()
		if tr, ok := traces[key]; ok {
			return tr, nil
		}
		tr, err := pragma.GenerateScenario(spec)
		if err != nil {
			return nil, err
		}
		traces[key] = tr
		return tr, nil
	}
	return func(tenant string, priority int, v url.Values) (pragma.SchedulerRunSpec, error) {
		var tr *pragma.Trace
		var err error
		if specStr := v.Get("scenario"); specStr != "" {
			tr, err = getScenario(specStr, v.Get("seed"))
		} else {
			tr, err = getTrace(v.Get("trace"))
		}
		if err != nil {
			return pragma.SchedulerRunSpec{}, err
		}
		stratName := v.Get("strategy")
		if stratName == "" {
			stratName = "adaptive"
		}
		strat, err := strategyByName(stratName)
		if err != nil {
			return pragma.SchedulerRunSpec{}, err
		}
		procs := 8
		if p := v.Get("procs"); p != "" {
			procs, err = strconv.Atoi(p)
			if err != nil || procs < 1 {
				return pragma.SchedulerRunSpec{}, fmt.Errorf("bad procs %q", p)
			}
		}
		spec := pragma.SchedulerRunSpec{
			Trace:    tr,
			Strategy: strat,
			Machine:  pragma.NewCluster(procs),
			NProcs:   procs,
		}
		if name := v.Get("name"); name != "" && ckptRoot != "" {
			if !safePathComponent(tenant) && tenant != "" {
				return pragma.SchedulerRunSpec{}, fmt.Errorf("tenant %q not usable as a path component", tenant)
			}
			if !safePathComponent(name) {
				return pragma.SchedulerRunSpec{}, fmt.Errorf("name %q not usable as a path component", name)
			}
			dir := tenant
			if dir == "" {
				dir = "_default"
			}
			spec.CheckpointDir = filepath.Join(ckptRoot, dir, name)
			spec.Resume = v.Get("resume") == "1" || v.Get("resume") == "true"
		}
		return spec, nil
	}
}

// safePathComponent accepts names usable as a single directory component:
// letters, digits, dot, underscore, dash — but not "." or "..".
func safePathComponent(s string) bool {
	if s == "" || s == "." || s == ".." {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

func runBroker(ctx context.Context, addr string, interval, hbTimeout, wTimeout time.Duration) error {
	center := pragma.NewMessageCenter(
		pragma.WithHeartbeatTimeout(hbTimeout),
		pragma.WithCenterWriteTimeout(wTimeout),
		pragma.WithCenterErrorHandler(func(err error) {
			fmt.Fprintf(os.Stderr, "broker: %v\n", err)
		}))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	pragma.RegisterQueueDepthGauge(center)
	go center.Serve(ln)
	fmt.Printf("message center listening on %s\n", ln.Addr())

	adm, err := pragma.NewADM("adm", center, pragma.Table2Policy())
	if err != nil {
		return err
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("broker shutting down")
			return nil
		case <-ticker.C:
			adm.Absorb()
			cons := adm.Consolidate()
			if cons.Agents == 0 {
				fmt.Println("no agents yet")
				continue
			}
			fmt.Printf("agents=%d mean-load=%.2f max-load=%.2f (%s)\n",
				cons.Agents, cons.Mean["load"], cons.Max["load"], cons.ArgMax["load"])
			events := adm.PendingEvents()
			for _, ev := range events {
				fmt.Printf("EVENT %s from %s (%s=%.2f)\n", ev.Name, ev.Agent, ev.Sensor, ev.Value)
			}
			if len(events) > 0 {
				// An overload is a high-dynamics communication-dominated
				// situation for the running application: query the policy
				// base and direct everyone to repartition.
				if act, ok := pragma.Table2Policy().BestAction("select-partitioner",
					map[string]interface{}{"octant": "VI"}); ok {
					fmt.Printf("policy: repartition with %s\n", act.Target)
				}
				if err := adm.Broadcast(pragma.Command{
					Actuator: "repartition",
					Params:   map[string]float64{"granularity": 8},
				}); err != nil {
					fmt.Fprintf(os.Stderr, "broadcast: %v\n", err)
				}
			}
		}
	}
}

func runNode(ctx context.Context, addr, id string, base, wobble, overload float64, interval time.Duration, dialOpts []pragma.DialOption) error {
	client, err := pragma.DialMessageCenter(addr, dialOpts...)
	if err != nil {
		return err
	}
	defer client.Close()
	start := time.Now()
	sensor := pragma.SensorFunc{SensorName: "load", Fn: func() (float64, error) {
		t := time.Since(start).Seconds()
		l := base + wobble*math.Sin(t/7)
		if l < 0 {
			l = 0
		}
		if l > 0.99 {
			l = 0.99
		}
		return l, nil
	}}
	actuator := pragma.ActuatorFunc{ActuatorName: "repartition", Fn: func(p map[string]float64) error {
		fmt.Printf("[%s] repartitioning with %v\n", id, p)
		return nil
	}}
	agent, err := pragma.NewComponentAgent(id, client,
		[]pragma.Sensor{sensor},
		[]pragma.Actuator{actuator},
		[]pragma.EventRule{{Sensor: "load", Above: &overload, Event: "overload"}})
	if err != nil {
		return err
	}
	agent.OnError = func(err error) {
		fmt.Fprintf(os.Stderr, "[%s] agent: %v\n", id, err)
	}
	fmt.Printf("agent %s joined %s (base load %.2f)\n", id, addr, base)
	agent.Run(ctx, interval)
	fmt.Printf("agent %s leaving\n", id)
	return nil
}

type replayConfig struct {
	trace, strategy     string
	scenario            string
	procs               int
	ckptDir             string
	ckptEvery, ckptKeep int
	resume              bool
	crashAt             int
	emulate             bool
	stepDeadline        time.Duration
}

// crashingStrategy injects a deterministic crash at the n-th regrid so
// operators can rehearse the -resume path without kill -9.
type crashingStrategy struct {
	inner pragma.Strategy
	fp    *chaos.FaultPoint
}

func (c crashingStrategy) Name() string { return c.inner.Name() }
func (c crashingStrategy) Assign(ctx *core.StepContext) (*partition.Assignment, string, error) {
	if err := c.fp.Check(); err != nil {
		return nil, "", err
	}
	return c.inner.Assign(ctx)
}

func (c crashingStrategy) CheckpointState() ([]byte, error) {
	if cs, ok := c.inner.(core.CheckpointableStrategy); ok {
		return cs.CheckpointState()
	}
	return nil, nil
}

func (c crashingStrategy) RestoreState(data []byte) error {
	if cs, ok := c.inner.(core.CheckpointableStrategy); ok {
		return cs.RestoreState(data)
	}
	return nil
}

func strategyByName(name string) (pragma.Strategy, error) {
	switch name {
	case "adaptive":
		return pragma.Adaptive(), nil
	case "system-sensitive":
		return pragma.SystemSensitive(), nil
	case "proactive":
		return pragma.Proactive(), nil
	default:
		p, err := pragma.PartitionerByName(name)
		if err != nil {
			return nil, err
		}
		return pragma.Static(p), nil
	}
}

func runReplay(cfg replayConfig) error {
	var trace *pragma.Trace
	var workModel func(idx int) pragma.WorkModel
	traceLabel := cfg.trace
	if cfg.scenario != "" {
		spec, err := pragma.ParseScenario(cfg.scenario)
		if err != nil {
			return err
		}
		trace, err = pragma.GenerateScenario(spec)
		if err != nil {
			return err
		}
		workModel = spec.WorkModel
		traceLabel = spec.Name
		for _, exp := range spec.Trajectory() {
			if exp.Known {
				fmt.Printf("phase %s (snapshots %d-%d): expected octant %v\n",
					exp.Phase, exp.Start, exp.End-1, exp.Octant)
			} else {
				fmt.Printf("phase %s (snapshots %d-%d): mixed signature\n",
					exp.Phase, exp.Start, exp.End-1)
			}
		}
	} else {
		var rmCfg pragma.RM3DConfig
		switch cfg.trace {
		case "small":
			rmCfg = pragma.RM3DSmall()
		case "paper":
			rmCfg = pragma.RM3DPaper()
		default:
			return fmt.Errorf("unknown trace %q (small|paper)", cfg.trace)
		}
		var err error
		trace, err = pragma.GenerateRM3D(rmCfg)
		if err != nil {
			return err
		}
	}
	strat, err := strategyByName(cfg.strategy)
	if err != nil {
		return err
	}
	if cfg.crashAt > 0 {
		strat = crashingStrategy{inner: strat, fp: &chaos.FaultPoint{FailAt: cfg.crashAt}}
	}
	rt := pragma.Runtime{
		Trace:     trace,
		Machine:   pragma.NewCluster(cfg.procs),
		Strategy:  strat,
		NProcs:    cfg.procs,
		WorkModel: workModel,
	}
	var opts []pragma.RunOption
	if cfg.ckptDir != "" {
		opts = append(opts,
			pragma.WithCheckpointDir(cfg.ckptDir),
			pragma.WithCheckpointEvery(cfg.ckptEvery),
			pragma.WithCheckpointKeep(cfg.ckptKeep))
	}
	if cfg.resume {
		opts = append(opts, pragma.WithResume())
	}
	if cfg.resume {
		fmt.Printf("replaying %s trace (%d snapshots) with %s on %d procs, resuming from %s\n",
			traceLabel, len(trace.Snapshots), strat.Name(), cfg.procs, cfg.ckptDir)
	} else {
		fmt.Printf("replaying %s trace (%d snapshots) with %s on %d procs\n",
			traceLabel, len(trace.Snapshots), strat.Name(), cfg.procs)
	}
	res, err := rt.Execute(opts...)
	if errors.Is(err, chaos.ErrInjectedCrash) {
		fmt.Printf("injected crash at regrid %d; checkpoints are in %s — rerun with -resume\n",
			cfg.crashAt, cfg.ckptDir)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("simulated run-time %.1fs  compute %.1fs  comm %.1fs  partition %.2fs  migration %.2fs\n",
		res.TotalTime, res.ComputeTime, res.CommTime, res.PartitionTime, res.MigrationTime)
	fmt.Printf("max imbalance %.1f%%  avg %.1f%%  switches %d  steps %d\n",
		res.MaxImbalance, res.AvgImbalance, res.Switches, res.Steps)

	if cfg.emulate {
		return emulateFinalSnapshot(trace, cfg.procs, cfg.stepDeadline)
	}
	return nil
}

// emulateFinalSnapshot runs the trace's last hierarchy as a real
// message-passing program under worker supervision: every barrier wait is
// bounded by the step deadline, so a stalled or crashed worker fails the
// run with EngineLostWorkers instead of hanging it.
func emulateFinalSnapshot(trace *pragma.Trace, procs int, deadline time.Duration) error {
	h := trace.Snapshots[len(trace.Snapshots)-1].H
	p, err := pragma.PartitionerByName("G-MISP+SP")
	if err != nil {
		return err
	}
	a, err := p.Partition(h, pragma.UniformWork(), procs)
	if err != nil {
		return err
	}
	center := pragma.NewMessageCenter()
	ports := make([]pragma.MessagePort, procs)
	for i := range ports {
		ports[i] = center
	}
	var engOpts []pragma.EngineOption
	if deadline > 0 {
		engOpts = append(engOpts, pragma.WithStepDeadline(deadline))
	}
	eng, err := pragma.NewEngine(h, a, center, ports, engOpts...)
	if err != nil {
		return err
	}
	rep, err := eng.Run(4)
	var lost *pragma.EngineLostWorkers
	if errors.As(err, &lost) {
		return fmt.Errorf("emulation lost workers %v at step %d (deadline %s)", lost.Missing, lost.Step, lost.Deadline)
	}
	if err != nil {
		return err
	}
	var faces float64
	for _, w := range rep.Workers {
		faces += w.FacesSent
	}
	fmt.Printf("emulated %d steps on %d workers: %d ghost messages, %.0f faces exchanged\n",
		rep.Steps, len(rep.Workers), rep.TotalMessages(), faces)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pragma-node:", err)
	os.Exit(1)
}

// Command gridmon demonstrates Pragma's system characterization component:
// it monitors a simulated heterogeneous cluster, runs the NWS-style
// forecaster suite over each node's CPU availability, and prints the
// relative capacities the system-sensitive partitioner would use (Fig. 4).
//
// Usage:
//
//	gridmon -nodes 8 -samples 60 -interval 5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/pragma-grid/pragma"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "gridmon:", msg)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		nodes         = flag.Int("nodes", 8, "cluster size")
		seed          = flag.Int64("seed", 2002, "synthetic load seed")
		samples       = flag.Int("samples", 60, "number of monitoring samples")
		interval      = flag.Float64("interval", 5, "seconds between samples")
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics and /healthz on this address")
		telemetryHold = flag.Duration("telemetry-hold", 0, "keep the telemetry endpoint alive this long after the report")
	)
	flag.Parse()
	if *nodes < 1 {
		usageError("need at least 1 node (-nodes)")
	}
	if *samples < 2 {
		usageError("need at least 2 samples (-samples)")
	}
	if *interval <= 0 {
		usageError(fmt.Sprintf("-interval must be positive, got %g", *interval))
	}

	var tsrv *pragma.TelemetryServer
	if *telemetryAddr != "" {
		var err error
		tsrv, err = pragma.ServeTelemetry(*telemetryAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridmon:", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", tsrv.Addr())
	}

	machine := cluster.LinuxCluster(*nodes, *seed)
	sensor := monitor.ClusterSensor{Cluster: machine}

	// forecastErr accumulates each node's one-step-ahead absolute forecast
	// error: before absorbing a new reading, compare it against what the
	// meta-forecaster predicted from the history so far.
	history := make([][]monitor.Reading, 0, *samples)
	metas := make([]*monitor.Meta, *nodes)
	forecastErr := make([]float64, *nodes)
	// errDist pools every node's per-sample absolute error so the summary
	// can report fleet-wide error quantiles, not just per-node means. The
	// buckets cover the [0,1] CPU-availability scale.
	errDist := pragma.Telemetry().Histogram("pragma_forecast_abs_error",
		"one-step-ahead absolute CPU forecast error across all nodes",
		[]float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64})
	for i := range metas {
		metas[i] = monitor.NewMeta()
	}
	for s := 0; s < *samples; s++ {
		t := float64(s) * *interval
		readings := sensor.Sample(t)
		history = append(history, readings)
		for i, r := range readings {
			if s > 0 {
				e := math.Abs(metas[i].Predict() - r.CPU)
				forecastErr[i] += e
				errDist.Observe(e)
			}
			metas[i].Update(r.CPU)
		}
	}

	fmt.Printf("monitored %d nodes for %d samples (%.0fs apart)\n\n", *nodes, *samples, *interval)
	fmt.Printf("%-6s %-10s %-10s %-12s %-10s %-10s %-20s\n",
		"Node", "CPU now", "Forecast", "Best model", "MAE", "Accuracy", "Forecaster MSEs")
	last := history[len(history)-1]
	for i := 0; i < *nodes; i++ {
		mses := metas[i].MSE()
		names := make([]string, 0, len(mses))
		for n := range mses {
			names = append(names, n)
		}
		sort.Slice(names, func(a, b int) bool { return mses[names[a]] < mses[names[b]] })
		top := fmt.Sprintf("%s=%.2e %s=%.2e", names[0], mses[names[0]], names[1], mses[names[1]])
		mae := forecastErr[i] / float64(*samples-1)
		accuracy := 100 * (1 - mae)
		if accuracy < 0 {
			accuracy = 0
		}
		fmt.Printf("%-6d %-10.3f %-10.3f %-12s %-10.4f %-10s %s\n",
			i, last[i].CPU, metas[i].Predict(), metas[i].Best().Name(), mae,
			fmt.Sprintf("%.1f%%", accuracy), top)
	}

	fmt.Printf("\nfleet forecast error quantiles: p50 %.4f   p95 %.4f   p99 %.4f (%d samples)\n",
		errDist.Quantile(0.50), errDist.Quantile(0.95), errDist.Quantile(0.99), errDist.Count())

	if _, err := monitor.Capacities(last, monitor.DefaultWeights()); err != nil {
		fmt.Fprintln(os.Stderr, "gridmon:", err)
		os.Exit(1)
	}
	if _, err := monitor.PredictiveCapacities(history, monitor.DefaultWeights()); err != nil {
		fmt.Fprintln(os.Stderr, "gridmon:", err)
		os.Exit(1)
	}

	// The capacity calculators publish per-node gauges; read the final
	// table back from the telemetry registry rather than from the return
	// values — the same numbers a scraper of /metrics would see.
	snap := pragma.Telemetry().Snapshot()
	reactive := gaugeByNode(snap, "pragma_monitor_relative_capacity")
	proactive := gaugeByNode(snap, "pragma_monitor_predicted_capacity")
	fmt.Printf("\n%-6s %-20s %-20s\n", "Node", "Reactive capacity", "Predictive capacity")
	for i := 0; i < *nodes; i++ {
		fmt.Printf("%-6d %-20.4f %-20.4f\n", i, reactive[i], proactive[i])
	}
	fmt.Println("\ncapacities are the weighted normalized CPU/memory/bandwidth sums of Fig. 4;")
	fmt.Println("the system-sensitive partitioner distributes workload proportionally to them.")

	// Partition latency: drive a short delta-regrid sequence at the
	// monitored cluster's size so /metrics carries the partitioner latency
	// histograms and the plan-reuse gauge, then report them the way a
	// scraper would.
	if err := partitionActivity(*nodes); err != nil {
		fmt.Fprintln(os.Stderr, "gridmon:", err)
		os.Exit(1)
	}
	partHist := pragma.Telemetry().HistogramVec("pragma_partition_seconds", "", nil, "partitioner")
	fmt.Printf("\n%-12s %-8s %-10s %-10s %s\n", "Partitioner", "Calls", "p50 (ms)", "p95 (ms)", "Mean (ms)")
	for _, p := range partition.All() {
		h := partHist.With(p.Name())
		n := h.Count()
		if n == 0 {
			continue
		}
		fmt.Printf("%-12s %-8d %-10.3f %-10.3f %.3f\n", p.Name(), n,
			h.Quantile(0.50)*1e3, h.Quantile(0.95)*1e3, h.Sum()/float64(n)*1e3)
	}
	reuse := pragma.Telemetry().Snapshot().Find("pragma_partition_incremental_reuse_ratio")
	if len(reuse) > 0 {
		fmt.Printf("\ndelta-regrid plan reuse on the last cycle: %.1f%% of units served from cache\n",
			100*reuse[0].Value)
	}

	if tsrv != nil && *telemetryHold > 0 {
		fmt.Printf("holding telemetry endpoint for %s\n", *telemetryHold)
		time.Sleep(*telemetryHold)
	}
}

// partitionActivity drives a short delta-regrid sequence — a tracked
// level-2 box drifting across four regrids of a small SAMR workload —
// through every ISP partitioner with a warm PartitionPlan, populating
// pragma_partition_seconds and pragma_partition_incremental_reuse_ratio.
func partitionActivity(nprocs int) error {
	build := func(shift int) (*samr.Hierarchy, error) {
		h, err := samr.NewHierarchy(samr.MakeBox(64, 32, 32), 2)
		if err != nil {
			return nil, err
		}
		if err := h.SetLevel(1, []samr.Box{
			{Lo: samr.Point{16, 0, 0}, Hi: samr.Point{96, 64, 64}},
		}); err != nil {
			return nil, err
		}
		if err := h.SetLevel(2, []samr.Box{
			{Lo: samr.Point{40 + 4*shift, 16, 16}, Hi: samr.Point{72 + 4*shift, 48, 48}},
		}); err != nil {
			return nil, err
		}
		if err := h.Validate(); err != nil {
			return nil, err
		}
		return h, nil
	}
	for _, p := range partition.All() {
		ip, ok := p.(partition.IncrementalPartitioner)
		if !ok {
			continue
		}
		plan := partition.NewPartitionPlan()
		for shift := 0; shift < 4; shift++ {
			h, err := build(shift)
			if err != nil {
				return err
			}
			if _, err := ip.PartitionIncremental(h, samr.UniformWorkModel{}, nprocs, plan); err != nil {
				return err
			}
		}
	}
	return nil
}

// gaugeByNode extracts a per-node gauge family from a registry snapshot
// into a node-index-keyed map.
func gaugeByNode(snap pragma.TelemetrySnapshot, name string) map[int]float64 {
	out := make(map[int]float64)
	for _, s := range snap.Find(name) {
		if node, err := strconv.Atoi(s.Labels["node"]); err == nil {
			out[node] = s.Value
		}
	}
	return out
}

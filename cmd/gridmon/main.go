// Command gridmon demonstrates Pragma's system characterization component:
// it monitors a simulated heterogeneous cluster, runs the NWS-style
// forecaster suite over each node's CPU availability, and prints the
// relative capacities the system-sensitive partitioner would use (Fig. 4).
//
// Usage:
//
//	gridmon -nodes 8 -samples 60 -interval 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/monitor"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "cluster size")
		seed     = flag.Int64("seed", 2002, "synthetic load seed")
		samples  = flag.Int("samples", 60, "number of monitoring samples")
		interval = flag.Float64("interval", 5, "seconds between samples")
	)
	flag.Parse()
	if *nodes < 1 || *samples < 2 {
		fmt.Fprintln(os.Stderr, "gridmon: need at least 1 node and 2 samples")
		os.Exit(2)
	}

	machine := cluster.LinuxCluster(*nodes, *seed)
	sensor := monitor.ClusterSensor{Cluster: machine}

	history := make([][]monitor.Reading, 0, *samples)
	metas := make([]*monitor.Meta, *nodes)
	for i := range metas {
		metas[i] = monitor.NewMeta()
	}
	for s := 0; s < *samples; s++ {
		t := float64(s) * *interval
		readings := sensor.Sample(t)
		history = append(history, readings)
		for i, r := range readings {
			metas[i].Update(r.CPU)
		}
	}

	fmt.Printf("monitored %d nodes for %d samples (%.0fs apart)\n\n", *nodes, *samples, *interval)
	fmt.Printf("%-6s %-10s %-10s %-12s %-20s\n", "Node", "CPU now", "Forecast", "Best model", "Forecaster MSEs")
	last := history[len(history)-1]
	for i := 0; i < *nodes; i++ {
		mses := metas[i].MSE()
		names := make([]string, 0, len(mses))
		for n := range mses {
			names = append(names, n)
		}
		sort.Slice(names, func(a, b int) bool { return mses[names[a]] < mses[names[b]] })
		top := fmt.Sprintf("%s=%.2e %s=%.2e", names[0], mses[names[0]], names[1], mses[names[1]])
		fmt.Printf("%-6d %-10.3f %-10.3f %-12s %s\n",
			i, last[i].CPU, metas[i].Predict(), metas[i].Best().Name(), top)
	}

	reactive, err := monitor.Capacities(last, monitor.DefaultWeights())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridmon:", err)
		os.Exit(1)
	}
	proactive, err := monitor.PredictiveCapacities(history, monitor.DefaultWeights())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridmon:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-6s %-20s %-20s\n", "Node", "Reactive capacity", "Predictive capacity")
	for i := 0; i < *nodes; i++ {
		fmt.Printf("%-6d %-20.4f %-20.4f\n", i, reactive[i], proactive[i])
	}
	fmt.Println("\ncapacities are the weighted normalized CPU/memory/bandwidth sums of Fig. 4;")
	fmt.Println("the system-sensitive partitioner distributes workload proportionally to them.")
}

package pragma_test

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

// Replay a small RM3D adaptation trace under the adaptive meta-partitioner.
func Example() {
	trace, err := pragma.GenerateRM3D(pragma.RM3DSmall())
	if err != nil {
		log.Fatal(err)
	}
	res, err := pragma.Runtime{
		Trace:    trace,
		Machine:  pragma.NewCluster(8),
		Strategy: pragma.Adaptive(),
	}.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strategy, res.Steps, "steps")
	// Output: adaptive 164 steps
}

// Query the paper's Table 2 policy base for a partitioner recommendation.
func ExampleTable2Policy() {
	kb := pragma.Table2Policy()
	act, ok := kb.BestAction("select-partitioner", map[string]interface{}{"octant": "VI"})
	fmt.Println(ok, act.Target)
	// Output: true pBD-ISP
}

// Classify an application state into its octant.
func ExampleClassifyTrace() {
	trace, err := pragma.GenerateRM3D(pragma.RM3DSmall())
	if err != nil {
		log.Fatal(err)
	}
	chars, err := pragma.ClassifyTrace(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(chars[0].Octant.CommDominated(), chars[0].Octant.Valid())
	// Output: true true
}

// Partition one hierarchy snapshot and inspect the PAC quality metric.
func ExamplePartitionerByName() {
	trace, err := pragma.GenerateRM3D(pragma.RM3DSmall())
	if err != nil {
		log.Fatal(err)
	}
	p, err := pragma.PartitionerByName("G-MISP+SP")
	if err != nil {
		log.Fatal(err)
	}
	a, err := p.Partition(trace.Snapshots[5].H, pragma.UniformWork(), 8)
	if err != nil {
		log.Fatal(err)
	}
	q := pragma.EvaluateQuality(trace.Snapshots[5].H, a, nil, nil)
	fmt.Println(p.Name(), a.NProcs, q.CommVolume > 0)
	// Output: G-MISP+SP 8 true
}

// Fit and compose performance functions for the paper's example system.
func ExampleFitPerformanceFunctions() {
	system := pragma.PFExampleSystem(0.02)
	endToEnd, parts, err := pragma.FitPerformanceFunctions(
		system, []float64{200, 400, 600, 800, 1000, 1200}, 6, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(parts), endToEnd.Eval(600) > 1e-3)
	// Output: 3 true
}

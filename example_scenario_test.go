package pragma_test

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

// Compose a two-phase scenario — a moving planar shock that collapses into
// a static computation block — and replay it under the adaptive
// meta-partitioner. The octant transition between the phases makes the
// meta-partitioner switch schemes mid-run: pBD-ISP while the shock sweeps
// (octant V), G-MISP+SP once the block settles (octant III).
func ExampleParseScenario() {
	spec, err := pragma.ParseScenario("name=shock-then-block;seed=7;shock:8,block:8")
	if err != nil {
		log.Fatal(err)
	}
	for _, phase := range spec.Trajectory() {
		fmt.Printf("%s expects octant %v\n", phase.Phase, phase.Octant)
	}
	trace, err := pragma.GenerateScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pragma.Runtime{
		Trace:     trace,
		Machine:   pragma.NewCluster(8),
		Strategy:  pragma.Adaptive(),
		WorkModel: spec.WorkModel,
	}.Execute()
	if err != nil {
		log.Fatal(err)
	}
	first := res.Snapshots[2].Partitioner
	last := res.Snapshots[len(res.Snapshots)-1].Partitioner
	fmt.Printf("%d switches: %s -> %s\n", res.Switches, first, last)
	// Output:
	// sheet.high expects octant V
	// block expects octant III
	// 1 switches: pBD-ISP -> G-MISP+SP
}

// Build a scenario programmatically from the driver library: every octant
// has a canonical witness driver.
func ExampleScenarioForOctant() {
	d := pragma.ScenarioForOctant(5) // octant V: the moving planar shock
	fmt.Println(d.Name(), d.Signature().Octant())
	// Output: sheet.high V
}

// Hydroamr: Pragma driven by a real flow solver. The built-in
// compressible-flow solver runs a 3-D Sod shock tube; gradient error
// flagging and Berger–Rigoutsos clustering regrid around the moving shock,
// producing an adaptation trace that the octant classifier characterizes
// and the meta-partitioner replays — the same pipeline the synthetic RM3D
// trace exercises, but with genuine hydrodynamics underneath.
package main

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

func main() {
	const nx = 96
	grid, err := pragma.NewHydroGrid(nx, 12, 12, 1.0/nx, 1.4)
	if err != nil {
		log.Fatal(err)
	}
	pragma.SodShockTube(grid)

	fmt.Println("running the Sod shock tube and regridding every 8 steps...")
	trace, err := pragma.HydroTrace(grid, 120, 8, 0.4, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d snapshots from the solver\n\n", len(trace.Snapshots))

	// Show how the refinement follows the waves.
	for _, idx := range []int{0, len(trace.Snapshots) / 2, len(trace.Snapshots) - 1} {
		snap := trace.Snapshots[idx]
		fmt.Printf("snapshot %d (t=%.3f): %d refined boxes, %d refined cells\n",
			snap.Index, snap.Time, len(snap.H.Levels[1]), snap.H.CellsAtLevel(1))
	}

	// Characterize the solver-generated trace.
	chars, err := pragma.ClassifyTrace(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noctant trajectory (solver-driven):")
	for _, c := range chars {
		fmt.Printf("  snapshot %2d: octant %-4s (dynamics %.2f, comm %.2f, dispersion %.2f)\n",
			c.Index, c.Octant, c.State.Dynamics, c.State.CommRatio, c.State.Dispersion)
	}

	// Replay the trace under the adaptive meta-partitioner.
	res, err := pragma.Runtime{
		Trace:    trace,
		Machine:  pragma.NewCluster(8),
		Strategy: pragma.Adaptive(),
	}.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive replay on 8 processors: run-time %.3f s, max imbalance %.1f%%, switches %d\n",
		res.TotalTime, res.MaxImbalance, res.Switches)
}

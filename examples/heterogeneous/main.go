// Heterogeneous: the system-sensitive adaptation scenario of §4.6 (Fig. 4,
// Table 5). A workstation cluster carries a skewed synthetic background
// load; the capacity-weighted partitioner distributes the RM3D workload
// proportionally to monitored relative capacities and is compared against
// the default equal-distribution scheme.
package main

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

func main() {
	cfg := pragma.RM3DSmall()
	trace, err := pragma.GenerateRM3D(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nodes   default(s)   system-sensitive(s)   improvement")
	for _, n := range []int{4, 8, 16} {
		// A fresh loaded cluster per size, as in the paper's experiment.
		machine := pragma.NewLinuxCluster(n, 2002)

		defaultScheme, err := pragma.PartitionerByName("EqualBlock")
		if err != nil {
			log.Fatal(err)
		}
		runWith := func(s pragma.Strategy) float64 {
			res, err := pragma.Runtime{
				Trace:     trace,
				Machine:   machine,
				Strategy:  s,
				WorkModel: cfg.WorkModel,
			}.Execute()
			if err != nil {
				log.Fatal(err)
			}
			return res.TotalTime
		}
		tDefault := runWith(pragma.Static(defaultScheme))
		tSensitive := runWith(pragma.SystemSensitive())
		fmt.Printf("%-7d %-12.2f %-21.2f %.1f%%\n",
			n, tDefault, tSensitive, 100*(tDefault-tSensitive)/tDefault)
	}

	fmt.Println("\nthe improvement grows with cluster size: with more nodes the equal")
	fmt.Println("distribution is gated by an ever-heavier most-loaded node, while the")
	fmt.Println("capacity calculator steers work away from it (Fig. 4).")
}

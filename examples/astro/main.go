// Astro: the other two driver applications of the paper's §2 — galaxy
// formation (hierarchical merging) and an aspherical supernova — run
// through the same Pragma pipeline as RM3D. Their octant trajectories
// differ characteristically: the galaxy run starts in scattered
// communication-dominated states (many small halos, high surface-to-volume)
// and consolidates as halos merge, while the supernova's growing shell and
// debris field stay computation-dominated.
package main

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

func main() {
	// The galaxy run uses the full-length configuration so the merger
	// history plays out; the supernova uses the short one.
	galaxy, err := pragma.GenerateGalaxy(pragma.AstroDefault(), 12)
	if err != nil {
		log.Fatal(err)
	}
	supernova, err := pragma.GenerateSupernova(pragma.AstroSmall())
	if err != nil {
		log.Fatal(err)
	}

	for _, trace := range []*pragma.Trace{galaxy, supernova} {
		fmt.Printf("=== %s (%d snapshots) ===\n", trace.Name, len(trace.Snapshots))
		chars, err := pragma.ClassifyTrace(trace)
		if err != nil {
			log.Fatal(err)
		}
		visits := map[pragma.Octant]int{}
		for _, c := range chars {
			visits[c.Octant]++
		}
		fmt.Print("octant occupancy: ")
		for o := pragma.Octant(1); o <= 8; o++ {
			if visits[o] > 0 {
				fmt.Printf("%s:%d ", o, visits[o])
			}
		}
		fmt.Println()

		res, err := pragma.Runtime{
			Trace:    trace,
			Machine:  pragma.NewCluster(16),
			Strategy: pragma.Adaptive(),
		}.Execute()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adaptive replay: run-time %.2fs, max imbalance %.1f%%, switches %d\n\n",
			res.TotalTime, res.MaxImbalance, res.Switches)
	}
}

// Quickstart: generate an RM3D adaptation trace, replay it on a simulated
// 16-processor machine under the adaptive meta-partitioner, and compare
// against a static partitioner — the minimal end-to-end use of Pragma.
package main

import (
	"fmt"
	"log"

	"github.com/pragma-grid/pragma"
)

func main() {
	// The application: a reduced Richtmyer-Meshkov run (64x16x16 base
	// grid, 3 levels of factor-2 refinement, 41 regrid snapshots).
	cfg := pragma.RM3DSmall()
	trace, err := pragma.GenerateRM3D(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RM3D trace: %d snapshots, regrid every %d steps\n\n",
		len(trace.Snapshots), trace.RegridEvery)

	// The machine: 16 identical processors.
	machine := pragma.NewCluster(16)

	// Replay under the adaptive meta-partitioner and one static baseline.
	static, err := pragma.PartitionerByName("SFC")
	if err != nil {
		log.Fatal(err)
	}
	for _, strategy := range []pragma.Strategy{
		pragma.Adaptive(),
		pragma.Static(static),
	} {
		res, err := pragma.Runtime{
			Trace:     trace,
			Machine:   machine,
			Strategy:  strategy,
			WorkModel: cfg.WorkModel,
		}.Execute()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s run-time %7.2f s   max imbalance %6.2f %%   AMR efficiency %5.2f %%   switches %d\n",
			res.Strategy, res.TotalTime, res.MaxImbalance, res.AMREfficiency, res.Switches)
	}

	// Where did the application spend its time in the octant state space?
	chars, err := pragma.ClassifyTrace(trace)
	if err != nil {
		log.Fatal(err)
	}
	visits := map[pragma.Octant]int{}
	for _, c := range chars {
		visits[c.Octant]++
	}
	fmt.Printf("\noctant occupancy: %v\n", visits)
}

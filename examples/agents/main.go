// Agents: the automated adaptation scenario of §4.7. Component agents on
// two emulated nodes (TCP clients of the Message Center) monitor local
// load, publish state and threshold events, and the application delegated
// manager consolidates them, queries the policy knowledge base, and directs
// a repartitioning — the full active control network in miniature.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/pragma-grid/pragma"
)

func main() {
	// The Message Center, served over TCP so agents can live on other
	// "nodes" (here: other goroutines holding TCP connections).
	center := pragma.NewMessageCenter()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go center.Serve(ln)
	defer ln.Close()

	// The ADM runs next to the broker with the Table 2 policy base.
	adm, err := pragma.NewADM("adm", center, pragma.Table2Policy())
	if err != nil {
		log.Fatal(err)
	}

	// Two node-local component agents connect over TCP. Each has a load
	// sensor, a repartition actuator, and a threshold event rule.
	type node struct {
		agent *pragma.ComponentAgent
		load  *float64
	}
	overload := 0.8
	mkNode := func(id string, initial float64) node {
		client, err := pragma.DialMessageCenter(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		load := initial
		agent, err := pragma.NewComponentAgent(id, client,
			[]pragma.Sensor{pragma.SensorFunc{SensorName: "load", Fn: func() (float64, error) { return load, nil }}},
			[]pragma.Actuator{pragma.ActuatorFunc{ActuatorName: "repartition", Fn: func(p map[string]float64) error {
				fmt.Printf("  [%s] actuator: repartitioning with %v\n", id, p)
				return nil
			}}},
			[]pragma.EventRule{{Sensor: "load", Above: &overload, Event: "overload"}},
		)
		if err != nil {
			log.Fatal(err)
		}
		return node{agent: agent, load: &load}
	}
	n1 := mkNode("node-1", 0.30)
	n2 := mkNode("node-2", 0.35)

	poll := func() {
		for _, n := range []node{n1, n2} {
			if _, err := n.agent.Poll(); err != nil {
				log.Fatal(err)
			}
		}
		// Let the TCP frames land, then absorb.
		deadline := time.Now().Add(2 * time.Second)
		for adm.Consolidate().Agents < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
			adm.Absorb()
		}
		adm.Absorb()
	}

	fmt.Println("step 1: both nodes lightly loaded")
	poll()
	c := adm.Consolidate()
	fmt.Printf("  ADM view: %d agents, mean load %.2f, max load %.2f on %s\n",
		c.Agents, c.Mean["load"], c.Max["load"], c.ArgMax["load"])

	fmt.Println("step 2: node-2's background load spikes")
	*n2.load = 0.93
	poll()
	// Events travel over TCP asynchronously; absorb until one arrives.
	var events []pragma.ADMEvent
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		adm.Absorb()
		events = append(events, adm.PendingEvents()...)
		if len(events) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, ev := range events {
		fmt.Printf("  event: %s from %s (%s=%.2f)\n", ev.Name, ev.Agent, ev.Sensor, ev.Value)
	}
	if len(events) == 0 {
		log.Fatal("expected an overload event")
	}

	fmt.Println("step 3: ADM consults the policy base and directs repartitioning")
	// The application is currently communication-dominated and scattered
	// with high dynamics: octant VI.
	decisions := adm.Decide(map[string]interface{}{"octant": "VI"}, "select-partitioner")
	for _, d := range decisions {
		fmt.Printf("  policy: %s -> %s\n", d.Action.Kind, d.Action.Target)
	}
	if err := adm.Broadcast(pragma.Command{Actuator: "repartition", Params: map[string]float64{"procs": 2}}); err != nil {
		log.Fatal(err)
	}
	// Drain each agent's mailbox so the actuators fire.
	deadline := time.Now().Add(2 * time.Second)
	fired := 0
	for fired < 2 && time.Now().Before(deadline) {
		fired = 0
		for _, n := range []node{n1, n2} {
			if k, _ := n.agent.DrainInbox(); k > 0 {
				fired++
			}
		}
		time.Sleep(time.Millisecond)
	}

	fmt.Println("step 4: template discovery for the new execution environment")
	registry := pragma.NewTemplateRegistry()
	if err := registry.Register(pragma.Template{
		Name:     "perf-migration",
		Provides: map[string]string{"attribute": "performance", "scheme": "migration"},
	}); err != nil {
		log.Fatal(err)
	}
	found := registry.Discover(map[string]string{"attribute": "performance"})
	for _, t := range found {
		fmt.Printf("  template: %s (%v)\n", t.Name, t.Provides)
	}
}

// Perffunc: the performance-function modeling example of §3.2 (Table 1).
// Two computers connected through an Ethernet switch run a matrix-multiply
// pipeline; each component's delay is measured against data size, fitted
// with a neural-network performance function, and the component PFs are
// composed (Eq. 2) into an end-to-end model whose predictions are compared
// with measured delays.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/pragma-grid/pragma"
)

func main() {
	// The example system with 2% measurement noise.
	system := pragma.PFExampleSystem(0.02)
	fmt.Println("components:")
	for _, c := range system {
		fmt.Printf("  %-8s true delay at 600 B: %.4e s\n", c.Name, c.True(600))
	}

	// Step 1+2 of the PF methodology: measure each component across data
	// sizes and fit one PF per component with a neural network.
	trainSizes := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200}
	endToEnd, parts, err := pragma.FitPerformanceFunctions(system, trainSizes, 6, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfitted component PFs at 600 B:")
	for _, pf := range parts {
		fmt.Printf("  %-8s predicts %.4e s\n", pf.Name(), pf.Eval(600))
	}

	// Step 3: compose and project end-to-end performance (Table 1).
	rng := rand.New(rand.NewSource(7))
	fmt.Printf("\nData Size   PF(total)     Measured      %%Error\n")
	for _, d := range []float64{200, 400, 600, 800, 1000} {
		measured := measure(system, d, rng)
		predicted := endToEnd.Eval(d)
		errPct := 100 * abs(predicted-measured) / measured
		fmt.Printf("%-11.0f %.4e    %.4e    %.3f\n", d, predicted, measured, errPct)
	}
	fmt.Println("\nthe end-to-end PF is the sum of the component PFs (Eq. 2); errors stay")
	fmt.Println("within the paper's 0.5-5% band.")
}

func measure(system []pragma.SystemComponent, d float64, rng *rand.Rand) float64 {
	var sum float64
	for _, c := range system {
		sum += c.Measure(d, rng)
	}
	return sum
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

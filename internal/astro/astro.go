// Package astro provides synthetic models of the other two astrophysical
// driver applications of the paper's §2 — RM3D's siblings:
//
//   - Galaxy formation: "objects of progressively larger mass merge and
//     collapse to form new systems"; the model runs a deterministic halo
//     merger process, so refinement starts scattered over many small halos
//     and consolidates into few massive ones.
//   - Supernova: "highly asymmetrical and aspherical explosions and debris
//     fields"; the model expands an aspherical blast shell and deposits
//     debris clumps behind it.
//
// Like internal/rm3d, these are adaptation-trace generators: they drive
// real error flagging, Berger–Rigoutsos clustering and regridding, and the
// resulting traces feed the same characterization/partitioning pipeline.
// Unlike rm3d they are not calibrated against a paper table; they exist to
// exercise Pragma on applications with different octant trajectories.
package astro

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Config parameterizes an astro trace generation run.
type Config struct {
	// BaseDims is the level-0 grid size (cubic domains work best).
	BaseDims [3]int
	// MaxDepth is the number of hierarchy levels (2 or 3).
	MaxDepth int
	// Ratio is the refinement factor.
	Ratio int
	// RegridEvery is the number of coarse steps between snapshots.
	RegridEvery int
	// CoarseSteps is the number of coarse steps to run.
	CoarseSteps int
	// Seed drives the deterministic randomness.
	Seed int64
	// Cluster configures the Berger–Rigoutsos clusterer.
	Cluster samr.ClusterOptions
}

// DefaultConfig returns a medium-size configuration (41 snapshots on a
// 64^3 base grid).
func DefaultConfig() Config {
	return Config{
		BaseDims:    [3]int{64, 64, 64},
		MaxDepth:    3,
		Ratio:       2,
		RegridEvery: 4,
		CoarseSteps: 160,
		Seed:        1987,
		Cluster:     samr.DefaultClusterOptions(),
	}
}

// SmallConfig returns a reduced configuration for fast tests.
func SmallConfig() Config {
	c := DefaultConfig()
	c.BaseDims = [3]int{48, 48, 48}
	c.CoarseSteps = 80 // 21 snapshots
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for d := 0; d < 3; d++ {
		if c.BaseDims[d] < 16 {
			return fmt.Errorf("astro: base dimension %d = %d too small (min 16)", d, c.BaseDims[d])
		}
	}
	if c.MaxDepth < 2 || c.MaxDepth > 3 {
		return fmt.Errorf("astro: max depth %d out of range [2,3]", c.MaxDepth)
	}
	if c.Ratio < 2 {
		return fmt.Errorf("astro: ratio %d < 2", c.Ratio)
	}
	if c.RegridEvery < 1 || c.CoarseSteps < c.RegridEvery {
		return fmt.Errorf("astro: bad stepping %d/%d", c.RegridEvery, c.CoarseSteps)
	}
	return nil
}

// Snapshots returns the number of trace snapshots produced.
func (c Config) Snapshots() int { return c.CoarseSteps/c.RegridEvery + 1 }

// Phenomenon supplies the refinement-worthy regions at a snapshot index:
// Regions returns level-1-worthy regions, Cores the subset deserving a
// second refinement level. All boxes are in level-0 coordinates.
type Phenomenon interface {
	// Name labels the application ("galaxy", "supernova").
	Name() string
	// Regions returns the refinement regions at snapshot idx.
	Regions(idx int) []samr.Box
	// Cores returns the deeper-refinement regions at snapshot idx.
	Cores(idx int) []samr.Box
}

// GenerateTrace runs a phenomenon through the regrid loop.
func GenerateTrace(cfg Config, ph Phenomenon) (*samr.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	domain := samr.MakeBox(cfg.BaseDims[0], cfg.BaseDims[1], cfg.BaseDims[2])
	total := cfg.Snapshots()
	tr := &samr.Trace{Name: ph.Name(), RegridEvery: cfg.RegridEvery, Snapshots: make([]samr.Snapshot, 0, total)}
	for idx := 0; idx < total; idx++ {
		h, err := buildHierarchy(cfg, domain, ph, idx)
		if err != nil {
			return nil, fmt.Errorf("astro: snapshot %d: %w", idx, err)
		}
		tr.Snapshots = append(tr.Snapshots, samr.Snapshot{
			Index:      idx,
			CoarseStep: idx * cfg.RegridEvery,
			Time:       float64(idx*cfg.RegridEvery) * 0.001,
			H:          h,
		})
	}
	return tr, nil
}

func buildHierarchy(cfg Config, domain samr.Box, ph Phenomenon, idx int) (*samr.Hierarchy, error) {
	h, err := samr.NewHierarchy(domain, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	regions := ph.Regions(idx)
	if len(regions) == 0 {
		return h, nil
	}
	flags := samr.NewFlags(domain)
	for _, b := range regions {
		flags.SetBox(b)
	}
	boxes := samr.Cluster(flags, cfg.Cluster)
	if len(boxes) == 0 {
		return h, nil
	}
	level1 := make([]samr.Box, len(boxes))
	for i, b := range boxes {
		level1[i] = b.Refine(cfg.Ratio)
	}
	if err := h.SetLevel(1, level1); err != nil {
		return nil, err
	}
	if cfg.MaxDepth < 3 {
		return h, nil
	}
	cores := ph.Cores(idx)
	if len(cores) == 0 {
		return h, nil
	}
	var bounding samr.Box
	for _, b := range level1 {
		bounding = bounding.Bound(b)
	}
	fine := samr.NewFlags(bounding)
	any := false
	for _, c := range cores {
		// Cores are clipped against the level-1 coverage so nesting holds.
		for _, parent := range boxes {
			if piece, ok := c.Intersect(parent); ok {
				fine.SetBox(piece.Refine(cfg.Ratio))
				any = true
			}
		}
	}
	if !any {
		return h, nil
	}
	var level2 []samr.Box
	for _, cand := range samr.Cluster(fine, cfg.Cluster) {
		for _, parent := range level1 {
			if piece, ok := cand.Intersect(parent); ok {
				level2 = append(level2, piece.Refine(cfg.Ratio))
			}
		}
	}
	if len(level2) > 0 {
		if err := h.SetLevel(2, level2); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// ---------------------------------------------------------------------------
// Galaxy formation: hierarchical halo merging.

// halo is one collapsing object.
type halo struct {
	pos  [3]float64
	mass float64
}

// Galaxy models hierarchical structure formation: halos drift toward their
// nearest more-massive neighbor and merge on contact; refinement follows
// the halos, with radius growing as mass^(1/3).
type Galaxy struct {
	cfg     Config
	initial []halo
	// drift is the fraction of the separation closed per snapshot.
	drift float64
}

// NewGalaxy seeds nHalos halos deterministically.
func NewGalaxy(cfg Config, nHalos int) *Galaxy {
	if nHalos < 2 {
		nHalos = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	g := &Galaxy{cfg: cfg, drift: 0.08}
	for i := 0; i < nHalos; i++ {
		g.initial = append(g.initial, halo{
			pos: [3]float64{
				(0.15 + 0.7*rng.Float64()) * float64(cfg.BaseDims[0]),
				(0.15 + 0.7*rng.Float64()) * float64(cfg.BaseDims[1]),
				(0.15 + 0.7*rng.Float64()) * float64(cfg.BaseDims[2]),
			},
			mass: 0.5 + rng.Float64(),
		})
	}
	return g
}

// Name implements Phenomenon.
func (*Galaxy) Name() string { return "galaxy" }

// state evolves the merger process to snapshot idx (deterministically
// recomputed from the initial conditions each call).
func (g *Galaxy) state(idx int) []halo {
	halos := append([]halo(nil), g.initial...)
	for step := 0; step < idx; step++ {
		// Each halo drifts toward the nearest heavier halo.
		next := append([]halo(nil), halos...)
		for i := range halos {
			j := g.nearestHeavier(halos, i)
			if j < 0 {
				continue
			}
			for d := 0; d < 3; d++ {
				next[i].pos[d] += g.drift * (halos[j].pos[d] - halos[i].pos[d])
			}
		}
		halos = mergeContacts(next, g.radiusOf)
	}
	return halos
}

func (g *Galaxy) nearestHeavier(halos []halo, i int) int {
	best, bestD := -1, math.MaxFloat64
	for j := range halos {
		if j == i || halos[j].mass < halos[i].mass {
			continue
		}
		if j != i && halos[j].mass == halos[i].mass && j > i {
			continue // break mass ties by index so pairs converge
		}
		d := dist(halos[i].pos, halos[j].pos)
		if d < bestD {
			best, bestD = j, d
		}
	}
	return best
}

func (g *Galaxy) radiusOf(m float64) float64 {
	base := float64(g.cfg.BaseDims[0])
	return 0.035 * base * math.Cbrt(m)
}

func mergeContacts(halos []halo, radius func(float64) float64) []halo {
	for {
		merged := false
		for i := 0; i < len(halos) && !merged; i++ {
			for j := i + 1; j < len(halos); j++ {
				if dist(halos[i].pos, halos[j].pos) < radius(halos[i].mass)+radius(halos[j].mass) {
					m := halos[i].mass + halos[j].mass
					var pos [3]float64
					for d := 0; d < 3; d++ {
						pos[d] = (halos[i].pos[d]*halos[i].mass + halos[j].pos[d]*halos[j].mass) / m
					}
					halos[i] = halo{pos: pos, mass: m}
					halos = append(halos[:j], halos[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			return halos
		}
	}
}

func dist(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// Regions implements Phenomenon: a box around each halo.
func (g *Galaxy) Regions(idx int) []samr.Box {
	halos := g.state(idx)
	out := make([]samr.Box, 0, len(halos))
	for _, h := range halos {
		out = append(out, boxAround(h.pos, g.radiusOf(h.mass)))
	}
	return out
}

// Cores implements Phenomenon: the inner half of each halo.
func (g *Galaxy) Cores(idx int) []samr.Box {
	halos := g.state(idx)
	out := make([]samr.Box, 0, len(halos))
	for _, h := range halos {
		out = append(out, boxAround(h.pos, g.radiusOf(h.mass)*0.5))
	}
	return out
}

// HaloCount reports the number of surviving halos at snapshot idx — the
// merger history.
func (g *Galaxy) HaloCount(idx int) int { return len(g.state(idx)) }

func boxAround(pos [3]float64, r float64) samr.Box {
	var b samr.Box
	for d := 0; d < 3; d++ {
		b.Lo[d] = int(math.Floor(pos[d] - r))
		b.Hi[d] = int(math.Ceil(pos[d] + r))
		if b.Hi[d] <= b.Lo[d] {
			b.Hi[d] = b.Lo[d] + 1
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Supernova: aspherical blast shell plus debris clumps.

// Supernova models an aspherical explosion: a thin blast shell expands
// from the center with direction-dependent speed; debris clumps condense
// behind it over time.
type Supernova struct {
	cfg Config
	// asym holds per-octant shell speed multipliers (the asphericity).
	asym [8]float64
	rng  *rand.Rand
}

// NewSupernova builds the phenomenon with deterministic asymmetry.
func NewSupernova(cfg Config) *Supernova {
	rng := rand.New(rand.NewSource(cfg.Seed + 211))
	s := &Supernova{cfg: cfg, rng: rng}
	for i := range s.asym {
		s.asym[i] = 0.7 + 0.6*rng.Float64()
	}
	return s
}

// Name implements Phenomenon.
func (*Supernova) Name() string { return "supernova" }

// shellRadius returns the blast radius at snapshot idx in direction octant o.
func (s *Supernova) shellRadius(idx, o int) float64 {
	base := float64(s.cfg.BaseDims[0])
	r := 0.035 * base * float64(idx) * s.asym[o]
	max := 0.46 * base
	if r > max {
		return max
	}
	return r
}

// Regions implements Phenomenon: shell segments per direction octant plus
// debris clumps.
func (s *Supernova) Regions(idx int) []samr.Box {
	if idx == 0 {
		// The progenitor: a compact core.
		return []samr.Box{boxAround(s.center(), 0.05*float64(s.cfg.BaseDims[0]))}
	}
	var out []samr.Box
	c := s.center()
	thick := 0.04 * float64(s.cfg.BaseDims[0])
	for o := 0; o < 8; o++ {
		r := s.shellRadius(idx, o)
		if r < thick {
			continue
		}
		// Shell segment: the box spanning [r-thick, r] along the octant
		// diagonal, extended laterally.
		dir := [3]float64{1, 1, 1}
		if o&1 != 0 {
			dir[0] = -1
		}
		if o&2 != 0 {
			dir[1] = -1
		}
		if o&4 != 0 {
			dir[2] = -1
		}
		mid := [3]float64{}
		for d := 0; d < 3; d++ {
			mid[d] = c[d] + dir[d]*(r-thick/2)/math.Sqrt(3)
		}
		out = append(out, boxAround(mid, r*0.35+thick))
	}
	out = append(out, s.debris(idx)...)
	return out
}

// debris returns the clump set at snapshot idx: clumps appear behind the
// shell after a delay and persist, drifting outward slowly.
func (s *Supernova) debris(idx int) []samr.Box {
	if idx < 6 {
		return nil
	}
	n := (idx - 4) / 2
	if n > 10 {
		n = 10
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 307)) // stable clump identities
	base := float64(s.cfg.BaseDims[0])
	c := s.center()
	out := make([]samr.Box, 0, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * rng.Float64()
		phi := math.Acos(2*rng.Float64() - 1)
		birth := 6 + 2*i
		frac := 0.3 + 0.5*rng.Float64()
		r := 0.03 * base * float64(idx-birth+4) * frac
		if r > 0.4*base {
			r = 0.4 * base
		}
		pos := [3]float64{
			c[0] + r*math.Sin(phi)*math.Cos(theta),
			c[1] + r*math.Sin(phi)*math.Sin(theta),
			c[2] + r*math.Cos(phi),
		}
		out = append(out, boxAround(pos, 0.045*base))
	}
	return out
}

// Cores implements Phenomenon: debris clump centers (the shell itself gets
// a single refinement level).
func (s *Supernova) Cores(idx int) []samr.Box {
	clumps := s.debris(idx)
	out := make([]samr.Box, 0, len(clumps))
	for _, b := range clumps {
		out = append(out, b.Grow(-b.Dx(0)/4))
	}
	return out
}

func (s *Supernova) center() [3]float64 {
	return [3]float64{
		float64(s.cfg.BaseDims[0]) / 2,
		float64(s.cfg.BaseDims[1]) / 2,
		float64(s.cfg.BaseDims[2]) / 2,
	}
}

package astro

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BaseDims = [3]int{8, 64, 64}
	if err := bad.Validate(); err == nil {
		t.Error("tiny dims accepted")
	}
	bad = good
	bad.MaxDepth = 5
	if err := bad.Validate(); err == nil {
		t.Error("depth 5 accepted")
	}
	bad = good
	bad.Ratio = 1
	if err := bad.Validate(); err == nil {
		t.Error("ratio 1 accepted")
	}
	bad = good
	bad.CoarseSteps = 1
	if err := bad.Validate(); err == nil {
		t.Error("short run accepted")
	}
}

func TestGalaxyMergerHistory(t *testing.T) {
	cfg := DefaultConfig()
	g := NewGalaxy(cfg, 12)
	first := g.HaloCount(0)
	last := g.HaloCount(cfg.Snapshots() - 1)
	if first != 12 {
		t.Fatalf("initial halos = %d", first)
	}
	if last >= first {
		t.Fatalf("no merging: %d -> %d halos", first, last)
	}
	// Halo count is non-increasing (merging only).
	prev := first
	for idx := 1; idx < cfg.Snapshots(); idx++ {
		n := g.HaloCount(idx)
		if n > prev {
			t.Fatalf("halo count grew at %d: %d -> %d", idx, prev, n)
		}
		prev = n
	}
	// Total mass is conserved through merging.
	var m0, mEnd float64
	for _, h := range g.state(0) {
		m0 += h.mass
	}
	for _, h := range g.state(cfg.Snapshots() - 1) {
		mEnd += h.mass
	}
	if diff := m0 - mEnd; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mass not conserved: %g -> %g", m0, mEnd)
	}
}

func TestGalaxyTraceValid(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := GenerateTrace(cfg, NewGalaxy(cfg, 12))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Snapshots) != cfg.Snapshots() || tr.Name != "galaxy" {
		t.Fatalf("trace shape: %d snapshots name %q", len(tr.Snapshots), tr.Name)
	}
	for _, s := range tr.Snapshots {
		if err := s.H.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", s.Index, err)
		}
	}
	// The consolidation signature: refinement dispersion shrinks from the
	// scattered early universe to the consolidated late one.
	early := tr.Snapshots[1].H.Dispersion(1)
	late := tr.Snapshots[len(tr.Snapshots)-1].H.Dispersion(1)
	if late >= early {
		t.Errorf("galaxy dispersion did not consolidate: early %.3f late %.3f", early, late)
	}
}

func TestSupernovaTraceValid(t *testing.T) {
	cfg := DefaultConfig()
	tr, err := GenerateTrace(cfg, NewSupernova(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "supernova" {
		t.Fatalf("name = %q", tr.Name)
	}
	for _, s := range tr.Snapshots {
		if err := s.H.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", s.Index, err)
		}
	}
	// The explosion grows: refined volume increases from the progenitor.
	v0 := tr.Snapshots[0].H.CellsAtLevel(1)
	vEnd := tr.Snapshots[len(tr.Snapshots)-1].H.CellsAtLevel(1)
	if vEnd <= v0 {
		t.Errorf("blast did not grow: %d -> %d refined cells", v0, vEnd)
	}
	// Debris appears: deeper refinement exists late in the run.
	if tr.Snapshots[len(tr.Snapshots)-1].H.Depth() != 3 {
		t.Errorf("no debris cores late in the run (depth %d)",
			tr.Snapshots[len(tr.Snapshots)-1].H.Depth())
	}
}

func TestAstroTracesDriveThePipeline(t *testing.T) {
	// Both applications run end-to-end through characterization and
	// adaptive replay — Pragma is application-generic.
	cfg := SmallConfig()
	machine := cluster.SP2(16)
	for _, ph := range []Phenomenon{NewGalaxy(cfg, 10), NewSupernova(cfg)} {
		tr, err := GenerateTrace(cfg, ph)
		if err != nil {
			t.Fatalf("%s: %v", ph.Name(), err)
		}
		chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 3)
		if err != nil {
			t.Fatalf("%s: %v", ph.Name(), err)
		}
		seen := map[octant.Octant]bool{}
		for _, c := range chars {
			seen[c.Octant] = true
		}
		if len(seen) < 2 {
			t.Errorf("%s: trajectory visits only %d octants", ph.Name(), len(seen))
		}
		res, err := core.Run(tr, core.Adaptive{ImbalanceGuard: 20},
			core.RunConfig{Machine: machine, NProcs: 16})
		if err != nil {
			t.Fatalf("%s: %v", ph.Name(), err)
		}
		if res.TotalTime <= 0 {
			t.Errorf("%s: empty replay", ph.Name())
		}
	}
}

func TestGenerateTraceValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ratio = 0
	if _, err := GenerateTrace(cfg, NewSupernova(DefaultConfig())); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSupernovaAsymmetry(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSupernova(cfg)
	// Direction octants expand at different rates (asphericity).
	idx := 10
	r := map[float64]bool{}
	for o := 0; o < 8; o++ {
		r[s.shellRadius(idx, o)] = true
	}
	if len(r) < 4 {
		t.Errorf("blast too spherical: %d distinct radii", len(r))
	}
	// Radii saturate at the domain boundary.
	base := float64(cfg.BaseDims[0])
	for o := 0; o < 8; o++ {
		if got := s.shellRadius(1000, o); got > 0.46*base {
			t.Errorf("shell radius %g escapes the domain", got)
		}
	}
}

func TestGalaxyDeterminism(t *testing.T) {
	cfg := SmallConfig()
	a, err := GenerateTrace(cfg, NewGalaxy(cfg, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg, NewGalaxy(cfg, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Snapshots {
		if samr.ChangeFraction(a.Snapshots[i].H, b.Snapshots[i].H, 1) != 0 {
			t.Fatalf("snapshot %d differs between identical runs", i)
		}
	}
}

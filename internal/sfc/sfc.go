// Package sfc implements three-dimensional space-filling curves.
//
// Space-filling curves are the substrate for every inverse space-filling
// partitioner (ISP) in the Pragma meta-partitioner suite: a curve imposes a
// locality-preserving linear order on the cells (or blocks) of an SAMR index
// space, reducing multi-dimensional partitioning to one-dimensional sequence
// partitioning.
//
// Two curves are provided: the Hilbert curve (strong locality, unit-step
// adjacency between consecutive points) and the Morton (Z-order) curve
// (cheaper to evaluate, weaker locality). The Hilbert implementation follows
// John Skilling's transpose algorithm ("Programming the Hilbert curve",
// AIP Conf. Proc. 707, 2004) specialized to three dimensions.
package sfc

import "fmt"

// Curve is a bijection between points of a cubic 3-D index space of side
// 2^Bits() and the interval [0, 2^(3*Bits())).
type Curve interface {
	// Index maps a point to its position along the curve. The caller must
	// ensure 0 <= x,y,z < 1<<Bits().
	Index(x, y, z uint32) uint64
	// Coords inverts Index.
	Coords(d uint64) (x, y, z uint32)
	// Bits reports the per-axis resolution of the curve.
	Bits() uint
	// Name identifies the curve family ("hilbert" or "morton").
	Name() string
}

// MaxBits is the largest supported per-axis resolution. 3*21 = 63 bits keeps
// curve indices within uint64.
const MaxBits = 21

// Hilbert is a 3-D Hilbert curve with a fixed per-axis bit resolution.
type Hilbert struct{ bits uint }

// NewHilbert returns a Hilbert curve over a cube of side 1<<bits.
func NewHilbert(bits uint) (Hilbert, error) {
	if bits == 0 || bits > MaxBits {
		return Hilbert{}, fmt.Errorf("sfc: hilbert bits %d out of range [1,%d]", bits, MaxBits)
	}
	return Hilbert{bits: bits}, nil
}

// MustHilbert is NewHilbert but panics on invalid resolution. Intended for
// package-level defaults and tests where the resolution is a constant.
func MustHilbert(bits uint) Hilbert {
	h, err := NewHilbert(bits)
	if err != nil {
		panic(err)
	}
	return h
}

// Bits reports the per-axis resolution.
func (h Hilbert) Bits() uint { return h.bits }

// Name reports "hilbert".
func (Hilbert) Name() string { return "hilbert" }

// Index maps (x,y,z) to its Hilbert distance.
func (h Hilbert) Index(x, y, z uint32) uint64 {
	var X [3]uint32
	X[0], X[1], X[2] = x, y, z
	axesToTranspose(&X, h.bits)
	return interleaveTransposed(X, h.bits)
}

// Coords inverts Index.
func (h Hilbert) Coords(d uint64) (x, y, z uint32) {
	X := deinterleaveTransposed(d, h.bits)
	transposeToAxes(&X, h.bits)
	return X[0], X[1], X[2]
}

// axesToTranspose converts point coordinates into the "transposed" Hilbert
// index in place (Skilling's AxestoTranspose for n=3).
func axesToTranspose(X *[3]uint32, bits uint) {
	M := uint32(1) << (bits - 1)
	// Inverse undo.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < 3; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P // invert
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	var t uint32
	for Q := M; Q > 1; Q >>= 1 {
		if X[2]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
}

// transposeToAxes converts a transposed Hilbert index back into point
// coordinates in place (Skilling's TransposetoAxes for n=3).
func transposeToAxes(X *[3]uint32, bits uint) {
	N := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
}

// interleaveTransposed packs the transposed representation into a scalar
// curve index: bit b of axis i becomes bit 3*b + (2-i) of the result.
func interleaveTransposed(X [3]uint32, bits uint) uint64 {
	var d uint64
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			d = d<<1 | uint64((X[i]>>uint(b))&1)
		}
	}
	return d
}

// deinterleaveTransposed inverts interleaveTransposed.
func deinterleaveTransposed(d uint64, bits uint) [3]uint32 {
	var X [3]uint32
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			shift := uint(3*b + 2 - i) // position of this bit in d
			X[i] |= uint32((d>>shift)&1) << uint(b)
		}
	}
	return X
}

// Morton is a 3-D Morton (Z-order) curve with a fixed per-axis resolution.
type Morton struct{ bits uint }

// NewMorton returns a Morton curve over a cube of side 1<<bits.
func NewMorton(bits uint) (Morton, error) {
	if bits == 0 || bits > MaxBits {
		return Morton{}, fmt.Errorf("sfc: morton bits %d out of range [1,%d]", bits, MaxBits)
	}
	return Morton{bits: bits}, nil
}

// MustMorton is NewMorton but panics on invalid resolution.
func MustMorton(bits uint) Morton {
	m, err := NewMorton(bits)
	if err != nil {
		panic(err)
	}
	return m
}

// Bits reports the per-axis resolution.
func (m Morton) Bits() uint { return m.bits }

// Name reports "morton".
func (Morton) Name() string { return "morton" }

// Index maps (x,y,z) to its Morton code.
func (m Morton) Index(x, y, z uint32) uint64 {
	return spread(x) | spread(y)<<1 | spread(z)<<2
}

// Coords inverts Index.
func (m Morton) Coords(d uint64) (x, y, z uint32) {
	return compact(d), compact(d >> 1), compact(d >> 2)
}

// spread inserts two zero bits between each bit of v (21 significant bits).
func spread(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact inverts spread.
func compact(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return uint32(x)
}

// BitsFor returns the smallest per-axis resolution able to index a domain of
// the given extents, clamped to at least 1.
func BitsFor(nx, ny, nz int) uint {
	max := nx
	if ny > max {
		max = ny
	}
	if nz > max {
		max = nz
	}
	bits := uint(1)
	for (1 << bits) < max {
		bits++
	}
	return bits
}

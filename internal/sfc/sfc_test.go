package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertRoundTripExhaustiveSmall(t *testing.T) {
	for _, bits := range []uint{1, 2, 3, 4} {
		h := MustHilbert(bits)
		n := uint32(1) << bits
		seen := make(map[uint64]bool)
		for x := uint32(0); x < n; x++ {
			for y := uint32(0); y < n; y++ {
				for z := uint32(0); z < n; z++ {
					d := h.Index(x, y, z)
					if d >= uint64(n)*uint64(n)*uint64(n) {
						t.Fatalf("bits=%d: index %d out of range for (%d,%d,%d)", bits, d, x, y, z)
					}
					if seen[d] {
						t.Fatalf("bits=%d: duplicate index %d at (%d,%d,%d)", bits, d, x, y, z)
					}
					seen[d] = true
					gx, gy, gz := h.Coords(d)
					if gx != x || gy != y || gz != z {
						t.Fatalf("bits=%d: roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)",
							bits, x, y, z, d, gx, gy, gz)
					}
				}
			}
		}
		if len(seen) != int(n*n*n) {
			t.Fatalf("bits=%d: curve not surjective: %d of %d indices", bits, len(seen), n*n*n)
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert indices must map to points exactly one unit step
	// apart (the defining continuity property of the curve).
	for _, bits := range []uint{1, 2, 3, 4, 5} {
		h := MustHilbert(bits)
		total := uint64(1) << (3 * bits)
		px, py, pz := h.Coords(0)
		for d := uint64(1); d < total; d++ {
			x, y, z := h.Coords(d)
			dist := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
			if dist != 1 {
				t.Fatalf("bits=%d: step %d -> %d moves (%d,%d,%d)->(%d,%d,%d), manhattan %d",
					bits, d-1, d, px, py, pz, x, y, z, dist)
			}
			px, py, pz = x, y, z
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestHilbertRoundTripProperty(t *testing.T) {
	h := MustHilbert(16)
	f := func(x, y, z uint32) bool {
		x &= (1 << 16) - 1
		y &= (1 << 16) - 1
		z &= (1 << 16) - 1
		gx, gy, gz := h.Coords(h.Index(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonRoundTripProperty(t *testing.T) {
	m := MustMorton(21)
	f := func(x, y, z uint32) bool {
		x &= (1 << 21) - 1
		y &= (1 << 21) - 1
		z &= (1 << 21) - 1
		gx, gy, gz := m.Coords(m.Index(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonKnownCodes(t *testing.T) {
	m := MustMorton(4)
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{3, 3, 3, 63},
	}
	for _, c := range cases {
		if got := m.Index(c.x, c.y, c.z); got != c.want {
			t.Errorf("Morton(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestHilbertLocalityBeatsMorton(t *testing.T) {
	// Splitting the curve into P contiguous, equal segments and counting the
	// face-adjacent cell pairs that straddle segments measures the
	// communication cut a P-way ISP partitioning would incur. Hilbert's
	// continuity must yield a cut no worse than Morton's for every P, and
	// strictly better for non-octant-aligned P — that locality is why the
	// ISP partitioners default to Hilbert ordering.
	const bits = 4
	hilbertBetter := false
	for _, parts := range []int{3, 5, 7, 8, 11} {
		h := segmentCut(MustHilbert(bits), bits, parts)
		m := segmentCut(MustMorton(bits), bits, parts)
		if h > m {
			t.Errorf("parts=%d: hilbert cut %d worse than morton cut %d", parts, h, m)
		}
		if h < m {
			hilbertBetter = true
		}
	}
	if !hilbertBetter {
		t.Error("hilbert never strictly beat morton on segment cut")
	}
}

// segmentCut counts face-adjacent cell pairs assigned to different segments
// when the curve over a cube of side 1<<bits is split into parts contiguous
// equal-length segments.
func segmentCut(c Curve, bits uint, parts int) int {
	n := 1 << bits
	total := n * n * n
	seg := make([]int, total)
	for d := 0; d < total; d++ {
		x, y, z := c.Coords(uint64(d))
		seg[int(x)+n*(int(y)+n*int(z))] = d * parts / total
	}
	cut := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				i := x + n*(y+n*z)
				if x+1 < n && seg[i] != seg[i+1] {
					cut++
				}
				if y+1 < n && seg[i] != seg[i+n] {
					cut++
				}
				if z+1 < n && seg[i] != seg[i+n*n] {
					cut++
				}
			}
		}
	}
	return cut
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewHilbert(0); err == nil {
		t.Error("NewHilbert(0) should fail")
	}
	if _, err := NewHilbert(MaxBits + 1); err == nil {
		t.Error("NewHilbert(MaxBits+1) should fail")
	}
	if _, err := NewMorton(0); err == nil {
		t.Error("NewMorton(0) should fail")
	}
	if _, err := NewMorton(MaxBits + 1); err == nil {
		t.Error("NewMorton(MaxBits+1) should fail")
	}
	if _, err := NewHilbert(MaxBits); err != nil {
		t.Errorf("NewHilbert(MaxBits) failed: %v", err)
	}
}

func TestMustHilbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustHilbert(0) did not panic")
		}
	}()
	MustHilbert(0)
}

func TestMustMortonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMorton(0) did not panic")
		}
	}()
	MustMorton(0)
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		nx, ny, nz int
		want       uint
	}{
		{1, 1, 1, 1},
		{2, 2, 2, 1},
		{3, 1, 1, 2},
		{128, 32, 32, 7},
		{129, 32, 32, 8},
		{512, 128, 128, 9},
	}
	for _, c := range cases {
		if got := BitsFor(c.nx, c.ny, c.nz); got != c.want {
			t.Errorf("BitsFor(%d,%d,%d) = %d, want %d", c.nx, c.ny, c.nz, got, c.want)
		}
	}
}

func TestCurveNames(t *testing.T) {
	if MustHilbert(4).Name() != "hilbert" {
		t.Error("Hilbert name mismatch")
	}
	if MustMorton(4).Name() != "morton" {
		t.Error("Morton name mismatch")
	}
}

func TestCurveInterfaceCompliance(t *testing.T) {
	var _ Curve = Hilbert{}
	var _ Curve = Morton{}
	// Both curves over the same resolution must enumerate the same point set.
	h := MustHilbert(3)
	m := MustMorton(3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x, y, z := uint32(rng.Intn(8)), uint32(rng.Intn(8)), uint32(rng.Intn(8))
		if d := h.Index(x, y, z); d >= 512 {
			t.Fatalf("hilbert index %d out of range", d)
		}
		if d := m.Index(x, y, z); d >= 512 {
			t.Fatalf("morton index %d out of range", d)
		}
	}
}

func BenchmarkHilbertIndex(b *testing.B) {
	h := MustHilbert(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Index(uint32(i)&511, uint32(i>>9)&511, uint32(i>>18)&511)
	}
}

func BenchmarkMortonIndex(b *testing.B) {
	m := MustMorton(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Index(uint32(i)&511, uint32(i>>9)&511, uint32(i>>18)&511)
	}
}

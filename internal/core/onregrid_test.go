package core

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
)

func TestOnRegridSeesEveryCycle(t *testing.T) {
	tr := testTrace(t)
	var idxs []int
	var labels []string
	res, err := Run(tr, Adaptive{ImbalanceGuard: 20}, RunConfig{
		Machine: cluster.Homogeneous(8, 1e5, 512, 100),
		NProcs:  8,
		OnRegrid: func(idx int, partitioner string) {
			idxs = append(idxs, idx)
			labels = append(labels, partitioner)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != len(tr.Snapshots) {
		t.Fatalf("OnRegrid fired %d times, want %d (one per snapshot)", len(idxs), len(tr.Snapshots))
	}
	for i, idx := range idxs {
		if idx != i {
			t.Errorf("call %d reported index %d", i, idx)
		}
		if labels[i] == "" {
			t.Errorf("call %d reported empty partitioner", i)
		}
	}
	// The hook must observe the same decisions the result records.
	if len(res.Snapshots) != len(labels) {
		t.Fatalf("result has %d snapshot stats, hook saw %d", len(res.Snapshots), len(labels))
	}
	for i, s := range res.Snapshots {
		if s.Partitioner != labels[i] {
			t.Errorf("cycle %d: hook saw %q, result records %q", i, labels[i], s.Partitioner)
		}
	}
}

func TestOnRegridNilIsFine(t *testing.T) {
	tr := testTrace(t)
	if _, err := Run(tr, Adaptive{ImbalanceGuard: 20}, RunConfig{
		Machine: cluster.Homogeneous(4, 1e5, 512, 100),
		NProcs:  4,
	}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"encoding/json"
	"fmt"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// StepContext carries everything a strategy may consult when partitioning
// at a regrid point.
type StepContext struct {
	// Index is the regrid (snapshot) index.
	Index int
	// Trace is the application adaptation trace being replayed.
	Trace *samr.Trace
	// Snap is the current snapshot.
	Snap samr.Snapshot
	// WM weighs grid regions.
	WM samr.WorkModel
	// NProcs is the processor count to partition across.
	NProcs int
	// SimTime is the current simulated time (for load-dependent state).
	SimTime float64
	// Machine is the simulated execution environment.
	Machine *cluster.Cluster
	// PrevAssignment and PrevHierarchy describe the outgoing placement
	// (nil at the first regrid).
	PrevAssignment *partition.Assignment
	PrevHierarchy  *samr.Hierarchy
	// PartitionPlan, when non-nil, carries the delta-regrid caches across
	// cycles: partitioners reuse the previous hierarchy's decomposition and
	// SFC keys for unchanged boxes. core.Run owns one plan per run (it
	// starts cold on resume); output is bit-identical with or without it.
	PartitionPlan *partition.PartitionPlan
	// CycleTrace, when non-nil, records this regrid cycle in the telemetry
	// trace ring; strategies annotate it with classification and selection
	// events (nil-safe to use).
	CycleTrace *telemetry.Trace
}

// Partition runs p on the step's snapshot, routing through the step's
// delta-regrid PartitionPlan when the partitioner supports it.
func (ctx *StepContext) Partition(p partition.Partitioner) (*partition.Assignment, error) {
	if ip, ok := p.(partition.IncrementalPartitioner); ok && ctx.PartitionPlan != nil {
		return ip.PartitionIncremental(ctx.Snap.H, ctx.WM, ctx.NProcs, ctx.PartitionPlan)
	}
	return p.Partition(ctx.Snap.H, ctx.WM, ctx.NProcs)
}

// Strategy decides how each regrid point is partitioned. Implementations
// return the assignment and a label describing the partitioner used (shown
// in Table 3/4 reporting).
type Strategy interface {
	// Name identifies the strategy ("SFC", "adaptive", "system-sensitive", ...).
	Name() string
	// Assign partitions the current snapshot.
	Assign(ctx *StepContext) (*partition.Assignment, string, error)
}

// Static applies one fixed partitioner at every regrid — the non-adaptive
// baselines of Table 4.
type Static struct {
	P partition.Partitioner
}

// Name implements Strategy.
func (s Static) Name() string { return s.P.Name() }

// Assign implements Strategy.
func (s Static) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	a, err := ctx.Partition(s.P)
	return a, s.P.Name(), err
}

// Adaptive is the application-sensitive meta-partitioning strategy: at
// every regrid the octant state selects the partitioner ("dynamically
// switching partitioners", §4.5). The optional imbalance guard is the
// reactive side of Pragma's quality-driven management: the PAC metric of
// the fresh assignment is inspected and, when the selected partitioner
// balances badly on this particular hierarchy, the meta-partitioner falls
// back to the balance-oriented G-MISP+SP.
type Adaptive struct {
	Meta *MetaPartitioner
	// ImbalanceGuard, when positive, re-partitions with G-MISP+SP whenever
	// the selected partitioner's load imbalance exceeds this percentage
	// and keeps the better-balanced assignment.
	ImbalanceGuard float64
}

// Name implements Strategy.
func (a Adaptive) Name() string { return "adaptive" }

// Assign implements Strategy.
func (a Adaptive) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	meta := a.Meta
	if meta == nil {
		meta = NewMetaPartitioner()
	}
	p, oct, err := meta.SelectAt(ctx.Trace, ctx.Index)
	if err != nil {
		return nil, "", err
	}
	ctx.CycleTrace.Event("octant-classified", telemetry.String("octant", oct.String()))
	ctx.CycleTrace.Event("partitioner-selected", telemetry.String("partitioner", p.Name()))
	asg, err := ctx.Partition(p)
	if err != nil {
		return nil, "", err
	}
	if a.ImbalanceGuard > 0 && asg.Imbalance() > a.ImbalanceGuard && p.Name() != "G-MISP+SP" {
		fallback, err := meta.Lookup("G-MISP+SP")
		if err != nil {
			return nil, "", err
		}
		alt, err := ctx.Partition(fallback)
		if err != nil {
			return nil, "", err
		}
		// The guard costs an extra partitioning pass; charge it.
		alt.SplitCost += asg.SplitCost * float64(len(asg.Units)) / float64(max(len(alt.Units), 1))
		if alt.Imbalance() < asg.Imbalance() {
			ctx.CycleTrace.Event("imbalance-guard", telemetry.String("fallback", fallback.Name()))
			return alt, fallback.Name(), nil
		}
	}
	return asg, p.Name(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SystemSensitive is the strategy of §4.6 (Fig. 4): resource monitoring
// feeds the capacity calculator and the heterogeneous partitioner
// distributes work proportionally to relative capacities. Matching the
// paper's experiment, capacities are computed "only once before the start
// of the simulation" unless RecalibrateEvery is positive.
type SystemSensitive struct {
	// P is the capacity-weighted partitioner (defaults to
	// partition.Heterogeneous).
	P partition.CapacityPartitioner
	// Weights configure the capacity calculator (defaults to
	// monitor.DefaultWeights).
	Weights monitor.Weights
	// RecalibrateEvery re-reads capacities every k regrids; 0 computes
	// them once at the start.
	RecalibrateEvery int

	caps []float64
}

// Name implements Strategy.
func (s *SystemSensitive) Name() string { return "system-sensitive" }

// Assign implements Strategy.
func (s *SystemSensitive) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	p := s.P
	if p == nil {
		p = partition.Heterogeneous{}
	}
	w := s.Weights
	if w == (monitor.Weights{}) {
		w = monitor.DefaultWeights()
	}
	recalc := s.caps == nil ||
		(s.RecalibrateEvery > 0 && ctx.Index%s.RecalibrateEvery == 0)
	if recalc {
		readings := monitor.ClusterSensor{Cluster: ctx.Machine}.Sample(ctx.SimTime)
		if ctx.NProcs < len(readings) {
			readings = readings[:ctx.NProcs]
		}
		caps, err := monitor.Capacities(readings, w)
		if err != nil {
			return nil, "", fmt.Errorf("core: capacity calculation: %w", err)
		}
		s.caps = caps
	}
	a, err := p.PartitionWeighted(ctx.Snap.H, ctx.WM, s.caps)
	return a, p.Name(), err
}

// Capacities returns a copy of the relative capacities last computed by
// Assign (nil before the first assignment).
func (s *SystemSensitive) Capacities() []float64 {
	if s.caps == nil {
		return nil
	}
	return append([]float64(nil), s.caps...)
}

// CheckpointState implements CheckpointableStrategy: the capacity cache is
// decision state ("computed only once before the start of the simulation"
// in the paper's experiment), so a resumed run must reuse it rather than
// re-sample the machine at resume time.
func (s *SystemSensitive) CheckpointState() ([]byte, error) {
	return json.Marshal(s.caps)
}

// RestoreState implements CheckpointableStrategy.
func (s *SystemSensitive) RestoreState(data []byte) error {
	return json.Unmarshal(data, &s.caps)
}

package core

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// badBalancer always produces a maximally imbalanced assignment (all units
// on processor 0), to force the adaptive quality guard.
type badBalancer struct{}

func (badBalancer) Name() string { return "bad-balancer" }

func (badBalancer) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*partition.Assignment, error) {
	a := &partition.Assignment{NProcs: nprocs, SplitCost: 1}
	for l, boxes := range h.Levels {
		for _, b := range boxes {
			a.Units = append(a.Units, partition.Unit{Level: l, Box: b, Weight: wm.BoxWork(h, l, b)})
			a.Owner = append(a.Owner, 0)
		}
	}
	return a, nil
}

func TestAdaptiveImbalanceGuardFallsBack(t *testing.T) {
	tr := testTrace(t)
	meta := NewMetaPartitioner()
	meta.Lookup = func(name string) (partition.Partitioner, error) {
		if name == "G-MISP+SP" {
			return partition.GMISPSP{}, nil
		}
		// Every non-fallback selection balances terribly.
		return badBalancer{}, nil
	}
	guarded := Adaptive{Meta: meta, ImbalanceGuard: 20}
	ctx := &StepContext{
		Index:   10,
		Trace:   tr,
		Snap:    tr.Snapshots[10],
		WM:      samr.UniformWorkModel{},
		NProcs:  4,
		Machine: cluster.SP2(4),
	}
	// Find a comm-phase snapshot where the policy picks pBD-ISP (so the
	// lookup returns the bad balancer).
	found := false
	for idx := 0; idx < len(tr.Snapshots); idx++ {
		s, err := octant.StateAt(tr, idx, meta.Window)
		if err != nil {
			t.Fatal(err)
		}
		if octant.Classify(s, meta.Thresholds).CommDominated() {
			ctx.Index = idx
			ctx.Snap = tr.Snapshots[idx]
			found = true
			break
		}
	}
	if !found {
		t.Skip("trace has no communication-dominated snapshot")
	}
	a, label, err := guarded.Assign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if label != "G-MISP+SP" {
		t.Fatalf("guard did not fall back: used %s (imbalance %.1f%%)", label, a.Imbalance())
	}
	if a.Imbalance() > 20 {
		t.Fatalf("fallback imbalance %.1f%% above guard", a.Imbalance())
	}
	// The fallback is charged the wasted pass.
	if a.SplitCost <= 60 {
		t.Fatalf("guard did not charge the extra partitioning pass: split cost %g", a.SplitCost)
	}

	// Without the guard the bad assignment sails through.
	unguarded := Adaptive{Meta: meta}
	a2, label2, err := unguarded.Assign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if label2 != "bad-balancer" || a2.Imbalance() < 100 {
		t.Fatalf("unguarded run unexpectedly balanced: %s %.1f%%", label2, a2.Imbalance())
	}
}

func TestAdaptiveGuardKeepsBetterOriginal(t *testing.T) {
	// When the fallback is no better, the original assignment is kept.
	tr := testTrace(t)
	meta := NewMetaPartitioner()
	meta.Lookup = func(name string) (partition.Partitioner, error) {
		if name == "G-MISP+SP" {
			return badBalancer{}, nil // fallback is the bad one
		}
		return partition.PBDISP{}, nil
	}
	guarded := Adaptive{Meta: meta, ImbalanceGuard: 0.0001} // always triggers
	var ctx *StepContext
	for idx := 0; idx < len(tr.Snapshots); idx++ {
		s, err := octant.StateAt(tr, idx, meta.Window)
		if err != nil {
			t.Fatal(err)
		}
		if octant.Classify(s, meta.Thresholds).CommDominated() {
			ctx = &StepContext{
				Index: idx, Trace: tr, Snap: tr.Snapshots[idx],
				WM: samr.UniformWorkModel{}, NProcs: 4, Machine: cluster.SP2(4),
			}
			break
		}
	}
	if ctx == nil {
		t.Skip("no communication-dominated snapshot")
	}
	_, label, err := guarded.Assign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if label != "pBD-ISP" {
		t.Fatalf("guard replaced a better original with a worse fallback: %s", label)
	}
}

package core

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestAgentManagedRepartitionsOnlyOnEvents(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	am, err := NewAgentManaged(8, 25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, am, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if am.Repartitions == 0 {
		t.Fatal("agent-managed never repartitioned")
	}
	if am.Repartitions >= len(tr.Snapshots) {
		t.Fatalf("agent-managed repartitioned at every regrid (%d of %d) — events are not gating",
			am.Repartitions, len(tr.Snapshots))
	}
	// Reprojected intervals appear in the per-snapshot stats.
	reprojected := 0
	for _, s := range res.Snapshots {
		if s.Partitioner == "reprojected" {
			reprojected++
		}
	}
	if reprojected == 0 {
		t.Fatal("no regrid reused the standing assignment")
	}
	if reprojected+am.Repartitions != len(tr.Snapshots) {
		t.Fatalf("reprojected %d + repartitions %d != %d snapshots",
			reprojected, am.Repartitions, len(tr.Snapshots))
	}
}

func TestAgentManagedValidation(t *testing.T) {
	if _, err := NewAgentManaged(0, 25); err == nil {
		t.Fatal("zero nodes accepted")
	}
	am, err := NewAgentManaged(4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if am.ImbalanceEvent != 25 {
		t.Fatalf("default event threshold = %g", am.ImbalanceEvent)
	}
}

func TestReproject(t *testing.T) {
	// Previous assignment: domain split in two halves across 2 procs.
	h0, err := samr.NewHierarchy(samr.MakeBox(8, 4, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := &partition.Assignment{
		NProcs: 2,
		Units: []partition.Unit{
			{Level: 0, Box: samr.MakeBox(4, 4, 4), Weight: 64},
			{Level: 0, Box: samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, Weight: 64},
		},
		Owner: []int{0, 1},
	}
	// New hierarchy gains a refined level over the right half.
	h1 := h0.Clone()
	if err := h1.SetLevel(1, []samr.Box{{Lo: samr.Point{8, 0, 0}, Hi: samr.Point{16, 8, 8}}}); err != nil {
		t.Fatal(err)
	}
	// Reprojection fails because level 1 had no previous owner.
	if _, ok := reproject(prev, h1, samr.UniformWorkModel{}); ok {
		t.Fatal("reprojection over a new level should fail")
	}
	// Same-depth hierarchy reprojects; the level-0 box spanning both
	// halves goes to the majority owner.
	if a, ok := reproject(prev, h0, samr.UniformWorkModel{}); !ok {
		t.Fatal("reprojection failed")
	} else {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := a.CoversHierarchy(h0); err != nil {
			t.Fatal(err)
		}
		if len(a.Units) != 1 || a.Owner[0] != 0 {
			// The whole domain is one hierarchy box; owners tie at 50/50
			// and the deterministic tie-break picks processor 0.
			t.Fatalf("reprojection = %d units owner %v", len(a.Units), a.Owner)
		}
	}
}

func TestProactiveStrategy(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.LinuxCluster(8, 21)
	res, err := Run(tr, &Proactive{}, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "proactive" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time accumulated")
	}
	// Proactive must also beat the capacity-blind default on a loaded
	// cluster.
	def, err := Run(tr, Static{P: partition.EqualBlock{}}, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime >= def.TotalTime {
		t.Fatalf("proactive %.2fs not faster than default %.2fs", res.TotalTime, def.TotalTime)
	}
}

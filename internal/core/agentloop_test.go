package core

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestAgentManagedRepartitionsOnlyOnEvents(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	am, err := NewAgentManaged(8, 25)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, am, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if am.Repartitions == 0 {
		t.Fatal("agent-managed never repartitioned")
	}
	if am.Repartitions >= len(tr.Snapshots) {
		t.Fatalf("agent-managed repartitioned at every regrid (%d of %d) — events are not gating",
			am.Repartitions, len(tr.Snapshots))
	}
	// Reprojected intervals appear in the per-snapshot stats.
	reprojected := 0
	for _, s := range res.Snapshots {
		if s.Partitioner == "reprojected" {
			reprojected++
		}
	}
	if reprojected == 0 {
		t.Fatal("no regrid reused the standing assignment")
	}
	if reprojected+am.Repartitions != len(tr.Snapshots) {
		t.Fatalf("reprojected %d + repartitions %d != %d snapshots",
			reprojected, am.Repartitions, len(tr.Snapshots))
	}
}

func TestAgentManagedDegradedFallback(t *testing.T) {
	// The control network partitions mid-run: from regrid 2 on, Health
	// reports it down. The strategy must keep completing regrids with the
	// local-only policy instead of erroring out, and account for them.
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	am, err := NewAgentManaged(8, 25)
	if err != nil {
		t.Fatal(err)
	}
	const degradeAt = 2
	partitioned := false
	am.Health = func() bool { return !partitioned }
	res, err := Run(tr, am, RunConfig{
		Machine: machine,
		NProcs:  8,
		WorkModel: func(idx int) samr.WorkModel {
			// Run builds the step context (and thus calls this) before
			// each Assign, so the flip lands before regrid degradeAt.
			if idx >= degradeAt {
				partitioned = true
			}
			return samr.UniformWorkModel{}
		},
	})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	want := len(tr.Snapshots) - degradeAt
	if am.DegradedRegrids != want {
		t.Fatalf("DegradedRegrids = %d, want %d", am.DegradedRegrids, want)
	}
	if res.DegradedRegrids != want {
		t.Fatalf("RunResult.DegradedRegrids = %d, want %d (signal not threaded up)", res.DegradedRegrids, want)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time accumulated")
	}
}

func TestAgentManagedOnSharedCenterMatchesDefault(t *testing.T) {
	// NewAgentManaged is now sugar over NewAgentManagedOn with every port
	// bound to one in-process center; both must drive a run identically.
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	amA, err := NewAgentManaged(8, 25)
	if err != nil {
		t.Fatal(err)
	}
	center := agents.NewCenter()
	ports := make([]agents.Port, 8)
	for i := range ports {
		ports[i] = center
	}
	amB, err := NewAgentManagedOn(center, ports, 25)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Run(tr, amA, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(tr, amB, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resA.TotalTime != resB.TotalTime || amA.Repartitions != amB.Repartitions {
		t.Fatalf("in-process (%.4f, %d) and explicit-port (%.4f, %d) runs diverge",
			resA.TotalTime, amA.Repartitions, resB.TotalTime, amB.Repartitions)
	}
}

func TestAgentManagedValidation(t *testing.T) {
	if _, err := NewAgentManaged(0, 25); err == nil {
		t.Fatal("zero nodes accepted")
	}
	am, err := NewAgentManaged(4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if am.ImbalanceEvent != 25 {
		t.Fatalf("default event threshold = %g", am.ImbalanceEvent)
	}
}

func TestReproject(t *testing.T) {
	// Previous assignment: domain split in two halves across 2 procs.
	h0, err := samr.NewHierarchy(samr.MakeBox(8, 4, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := &partition.Assignment{
		NProcs: 2,
		Units: []partition.Unit{
			{Level: 0, Box: samr.MakeBox(4, 4, 4), Weight: 64},
			{Level: 0, Box: samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, Weight: 64},
		},
		Owner: []int{0, 1},
	}
	// New hierarchy gains a refined level over the right half.
	h1 := h0.Clone()
	if err := h1.SetLevel(1, []samr.Box{{Lo: samr.Point{8, 0, 0}, Hi: samr.Point{16, 8, 8}}}); err != nil {
		t.Fatal(err)
	}
	// Reprojection fails because level 1 had no previous owner.
	if _, ok := reproject(prev, h1, samr.UniformWorkModel{}); ok {
		t.Fatal("reprojection over a new level should fail")
	}
	// Same-depth hierarchy reprojects; the level-0 box spanning both
	// halves goes to the majority owner.
	if a, ok := reproject(prev, h0, samr.UniformWorkModel{}); !ok {
		t.Fatal("reprojection failed")
	} else {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := a.CoversHierarchy(h0); err != nil {
			t.Fatal(err)
		}
		if len(a.Units) != 1 || a.Owner[0] != 0 {
			// The whole domain is one hierarchy box; owners tie at 50/50
			// and the deterministic tie-break picks processor 0.
			t.Fatalf("reprojection = %d units owner %v", len(a.Units), a.Owner)
		}
	}
}

func TestProactiveStrategy(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.LinuxCluster(8, 21)
	res, err := Run(tr, &Proactive{}, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "proactive" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time accumulated")
	}
	// Proactive must also beat the capacity-blind default on a loaded
	// cluster.
	def, err := Run(tr, Static{P: partition.EqualBlock{}}, RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime >= def.TotalTime {
		t.Fatalf("proactive %.2fs not faster than default %.2fs", res.TotalTime, def.TotalTime)
	}
}

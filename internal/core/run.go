package core

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// RunConfig configures a trace replay.
type RunConfig struct {
	// Machine is the simulated execution environment (required).
	Machine *cluster.Cluster
	// Cost converts grid quantities into seconds; zero value means
	// cluster.DefaultCostModel.
	Cost cluster.CostModel
	// NProcs is the processor count; 0 uses all machine nodes.
	NProcs int
	// WorkModel supplies per-snapshot region weights; nil means uniform.
	WorkModel func(idx int) samr.WorkModel
	// PartitionSecondsPerUnit models the partitioner's own running cost:
	// partitioning time = units * assignment.SplitCost * this (0 = 1e-6).
	// The SP-based partitioners pay their optimal-split search here while
	// pBD-ISP stays cheap — the "partitioning time" component of the PAC
	// metric.
	PartitionSecondsPerUnit float64
	// CheckpointDir, when set, persists run state at regrid boundaries so
	// a crashed replay can resume (see resume.go for the format).
	CheckpointDir string
	// CheckpointEvery checkpoints after every k-th regrid interval
	// (default 1 = every interval).
	CheckpointEvery int
	// CheckpointKeep bounds retained checkpoint files (0 = default of 3,
	// negative = keep all).
	CheckpointKeep int
	// Resume restarts from the latest valid checkpoint in CheckpointDir,
	// skipping the already-completed regrid intervals. Corrupted or
	// truncated checkpoints are detected by CRC and skipped in favor of
	// the previous valid one; with no usable checkpoint the run starts
	// from the beginning. The final RunResult is identical to an
	// uninterrupted run's.
	Resume bool
	// Interrupt, when non-nil, is polled at every regrid boundary. Once it
	// is closed the run stops before starting the next interval: with
	// CheckpointDir configured the loop state is persisted first, so a
	// later Resume continues exactly where the interrupted run stopped.
	// Run then fails with an error wrapping ErrInterrupted. This is the
	// graceful-drain hook the scheduler uses (see internal/sched).
	Interrupt <-chan struct{}
	// OnRegrid, when non-nil, is called once per regrid cycle with the
	// snapshot index and the partitioner the meta-strategy chose for it.
	// It runs on the replay goroutine between cycles, so it must be fast
	// and must not block — the scheduler uses it to publish regrid-trace
	// events to streaming subscribers (see internal/stream).
	OnRegrid func(idx int, partitioner string)
}

// ErrInterrupted is the sentinel a Run interrupted through
// RunConfig.Interrupt fails with (test with errors.Is). The run state as of
// the last completed regrid interval has been checkpointed when a
// CheckpointDir was configured, so the run is resumable.
var ErrInterrupted = errors.New("run interrupted at regrid boundary")

// InterruptedError is the concrete error an interrupted Run returns. It
// wraps ErrInterrupted (errors.Is keeps matching) and records where the
// run stopped, so callers that requeue interrupted work — the scheduler's
// checkpoint-based preemption — can account the exact progress this
// attempt made instead of guessing from wall time, and distinguish a
// drain (the whole pool is stopping) from a preemption (this one run
// yielded its worker) by their own bookkeeping.
type InterruptedError struct {
	// Next is the first regrid interval that has not run: intervals
	// [0, Next) are complete and, when a checkpoint store is configured,
	// persisted. A Resume against the same CheckpointDir continues at
	// Next.
	Next int
	// Completed counts the intervals this attempt finished before the
	// interrupt landed (Next minus the interval the attempt started at).
	Completed int
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("core: regrid %d: %v", e.Next, ErrInterrupted)
}

func (e *InterruptedError) Unwrap() error { return ErrInterrupted }

// interrupted reports whether the interrupt channel has fired. Closing the
// channel is the intended signal; a single sent value also works but only
// interrupts one of the runs sharing the channel.
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// SnapshotStat records what happened at one regrid point.
type SnapshotStat struct {
	Index       int
	Partitioner string
	Quality     partition.Quality
	StepTime    float64 // summed BSP time of the interval's coarse steps
	Overhead    float64 // partitioning + migration seconds at this regrid
}

// RunResult aggregates a full replay.
type RunResult struct {
	Strategy string
	// TotalTime is the simulated execution time in seconds — the
	// "run-time" column of Tables 4 and 5.
	TotalTime float64
	// ComputeTime and CommTime accumulate the per-step maxima (they
	// overlap inside a BSP step; their sum exceeds step time).
	ComputeTime float64
	CommTime    float64
	// PartitionTime and MigrationTime accumulate repartitioning overheads.
	PartitionTime float64
	MigrationTime float64
	// MaxImbalance is the worst percentage load imbalance over all
	// regrids — Table 4's "max. load imbalance".
	MaxImbalance float64
	// AvgImbalance is the mean imbalance over regrids.
	AvgImbalance float64
	// AMREfficiency is the mean hierarchy AMR efficiency over snapshots —
	// Table 4's "AMR efficiency".
	AMREfficiency float64
	// Switches counts partitioner changes between consecutive regrids.
	Switches int
	// Recoveries counts mid-interval failure recoveries: steps that could
	// not complete (work on a dead node) and were repaired by re-invoking
	// the strategy.
	Recoveries int
	// DegradedRegrids counts regrids the strategy decided in degraded
	// mode (control network partitioned, local-only policy); nonzero only
	// for strategies exposing a DegradedCount, like AgentManaged.
	DegradedRegrids int
	// Steps is the number of coarse steps simulated.
	Steps int
	// Snapshots records per-regrid details.
	Snapshots []SnapshotStat
}

// Run replays an adaptation trace on the simulated machine under the given
// strategy and returns the accumulated execution profile.
func Run(tr *samr.Trace, strat Strategy, cfg RunConfig) (*RunResult, error) {
	if tr == nil || len(tr.Snapshots) == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("core: no machine")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	nprocs := cfg.NProcs
	if nprocs == 0 {
		nprocs = cfg.Machine.NProcs()
	}
	if nprocs < 1 || nprocs > cfg.Machine.NProcs() {
		return nil, fmt.Errorf("core: nprocs %d outside machine size %d", nprocs, cfg.Machine.NProcs())
	}
	cost := cfg.Cost
	if cost == (cluster.CostModel{}) {
		cost = cluster.DefaultCostModel()
	}
	puCost := cfg.PartitionSecondsPerUnit
	if puCost == 0 {
		puCost = 1e-6
	}
	wmAt := cfg.WorkModel
	if wmAt == nil {
		wmAt = func(int) samr.WorkModel { return samr.UniformWorkModel{} }
	}
	stepsPerRegrid := tr.RegridEvery
	if stepsPerRegrid < 1 {
		stepsPerRegrid = 1
	}

	res := &RunResult{Strategy: strat.Name()}
	var simTime float64
	var prevA *partition.Assignment
	var prevH *samr.Hierarchy
	var prevPlan *partition.CommPlan
	// The delta-regrid plan lets partitioners reuse unchanged boxes'
	// decomposition and SFC keys across cycles. Pure cache: a resumed run
	// starts cold and produces bit-identical assignments anyway.
	partPlan := partition.NewPartitionPlan()
	var prevLabel string
	var imbSum, effSum float64
	startIdx := 0
	degradedBase := 0

	var store *checkpoint.Store
	ckptEvery := cfg.CheckpointEvery
	if cfg.CheckpointDir != "" {
		store = &checkpoint.Store{Dir: cfg.CheckpointDir, Keep: cfg.CheckpointKeep}
		if ckptEvery < 1 {
			ckptEvery = 1
		}
	}
	if cfg.Resume && store != nil {
		ck, ok, err := loadRunCheckpoint(store, tr, strat, nprocs)
		if err != nil {
			return nil, err
		}
		if ok {
			startIdx = ck.NextIndex
			simTime = ck.SimTime
			prevLabel = ck.PrevLabel
			imbSum, effSum = ck.ImbSum, ck.EffSum
			degradedBase = ck.Degraded
			res = ck.Result
			prevA = ck.PrevAssignment.decode()
			// The hierarchy the outgoing assignment partitioned is the
			// trace's own snapshot — recomputed, never serialized.
			prevH = tr.Snapshots[startIdx-1].H
			if prevA != nil && prevH != nil {
				// Rebuild only the rasters: the first post-resume regrid
				// needs them for its migration diff, nothing more.
				prevPlan = partition.BuildRasterPlan(prevH, prevA)
			}
		}
	}

	// saveAt persists the loop state with next as the first interval a
	// resumed run executes; everything before next is complete and
	// accounted in res.
	saveAt := func(next int) error {
		degraded := degradedBase
		if dg, ok := strat.(interface{ DegradedCount() int }); ok {
			degraded += dg.DegradedCount()
		}
		return saveRunCheckpoint(store, tr, strat, nprocs, runCheckpoint{
			NextIndex:      next,
			SimTime:        simTime,
			PrevLabel:      prevLabel,
			ImbSum:         imbSum,
			EffSum:         effSum,
			Degraded:       degraded,
			Result:         res,
			PrevAssignment: encodeAssignment(prevA),
		})
	}

	for idx := startIdx; idx < len(tr.Snapshots); idx++ {
		if interrupted(cfg.Interrupt) {
			// A drain landed between intervals. Everything up to idx is
			// complete; persist it (there is nothing to save before the
			// first interval) and stop.
			if store != nil && idx > 0 {
				if err := saveAt(idx); err != nil {
					return nil, err
				}
			}
			metricInterrupts.Inc()
			return nil, &InterruptedError{Next: idx, Completed: idx - startIdx}
		}
		snap := tr.Snapshots[idx]
		regridStart := time.Now()
		cycle := telemetry.DefaultTracer.Begin("regrid",
			telemetry.String("strategy", strat.Name()),
			telemetry.String("index", strconv.Itoa(idx)))
		ctx := &StepContext{
			Index:          idx,
			Trace:          tr,
			Snap:           snap,
			WM:             wmAt(idx),
			NProcs:         nprocs,
			SimTime:        simTime,
			Machine:        cfg.Machine,
			PrevAssignment: prevA,
			PrevHierarchy:  prevH,
			PartitionPlan:  partPlan,
			CycleTrace:     cycle,
		}
		cycle.StartSpan("repartition")
		a, label, err := strat.Assign(ctx)
		if err != nil {
			cycle.End(telemetry.String("error", err.Error()))
			return nil, fmt.Errorf("core: regrid %d: %w", idx, err)
		}
		cycle.EndSpan(telemetry.String("partitioner", label))
		if prevLabel != "" && label != prevLabel {
			res.Switches++
			metricSwitches.Inc()
		}
		prevLabel = label
		if cfg.OnRegrid != nil {
			cfg.OnRegrid(idx, label)
		}

		cycle.StartSpan("pac")
		// One communication plan per regrid: its rasters and stats feed the
		// PAC metric, the migration diff, and every BSP step of the interval.
		plan := partition.BuildCommPlan(snap.H, a)
		comm := plan.Stats
		units := float64(len(a.Units))
		splitCost := a.SplitCost
		if splitCost < 1 {
			splitCost = 1
		}
		partTime := puCost * units * splitCost
		q := partition.Quality{
			CommVolume:   comm.Volume,
			CommMessages: comm.Messages,
			Imbalance:    a.Imbalance(),
		}
		cycle.EndSpan(
			telemetry.String("imbalance_pct", strconv.FormatFloat(q.Imbalance, 'g', 4, 64)),
			telemetry.String("comm_volume", strconv.FormatFloat(q.CommVolume, 'g', 4, 64)))
		cycle.StartSpan("migration")
		var migTime float64
		if prevPlan != nil {
			q.Migration = plan.MigrationFrom(prevPlan)
			migTime = cfg.Machine.MigrationTime(q.Migration*float64(snap.H.TotalCells()), cost)
		}
		cycle.EndSpan(telemetry.String("fraction", strconv.FormatFloat(q.Migration, 'g', 4, 64)))
		boxes := 0
		for _, lb := range snap.H.Levels {
			boxes += len(lb)
		}
		if boxes > 0 {
			q.Overhead = units / float64(boxes)
		}
		setPACGauges(q)

		res.PartitionTime += partTime
		res.MigrationTime += migTime
		simTime += partTime + migTime

		stat := SnapshotStat{Index: idx, Partitioner: label, Quality: q, Overhead: partTime + migTime}
		metricRegridSeconds.Observe(time.Since(regridStart).Seconds())
		work := a.Work()
		cycle.StartSpan("steps")
		for s := 0; s < stepsPerRegrid; s++ {
			sc := cfg.Machine.Step(work, comm.PerProcVolume, comm.PerProcMessages, simTime, cost)
			if math.IsInf(sc.Total, 1) {
				// A node carrying work died mid-interval. Give the
				// strategy one chance to recover: re-assign at the current
				// time and charge a full redistribution. Strategies that
				// ignore liveness re-produce the stalled assignment and
				// the run stays infinite — which is the honest outcome.
				ctx.SimTime = simTime
				ctx.PrevAssignment, ctx.PrevHierarchy = a, snap.H
				a2, label2, err := strat.Assign(ctx)
				if err == nil {
					recMig := cfg.Machine.MigrationTime(float64(snap.H.TotalCells()), cost)
					simTime += recMig
					res.MigrationTime += recMig
					a = a2
					stat.Partitioner = label2
					// Re-plan for the replacement assignment and refresh
					// everything derived from the dead one: the recorded
					// quality, the published gauges, and the interval's
					// overhead — they must describe the assignment that
					// actually finishes the interval.
					deadPlan := plan
					plan = partition.BuildCommPlan(snap.H, a)
					comm = plan.Stats
					work = a.Work()
					units = float64(len(a.Units))
					q.CommVolume = comm.Volume
					q.CommMessages = comm.Messages
					q.Imbalance = a.Imbalance()
					q.Migration = plan.MigrationFrom(deadPlan)
					if boxes > 0 {
						q.Overhead = units / float64(boxes)
					}
					setPACGauges(q)
					stat.Quality = q
					stat.Overhead += recMig
					res.Recoveries++
					metricRecoveries.Inc()
					cycle.Event("recovery", telemetry.String("partitioner", label2))
					sc = cfg.Machine.Step(work, comm.PerProcVolume, comm.PerProcMessages, simTime, cost)
				}
			}
			simTime += sc.Total
			stat.StepTime += sc.Total
			res.ComputeTime += sc.Compute
			res.CommTime += sc.Comm
			res.Steps++
		}
		cycle.EndSpan(telemetry.String("count", strconv.Itoa(stepsPerRegrid)))
		metricSteps.Add(uint64(stepsPerRegrid))
		metricRegrids.Inc()
		cycle.End()
		res.Snapshots = append(res.Snapshots, stat)
		imbSum += q.Imbalance
		if q.Imbalance > res.MaxImbalance {
			res.MaxImbalance = q.Imbalance
		}
		effSum += snap.H.AMREfficiency()
		prevA, prevH, prevPlan = a, snap.H, plan

		if store != nil && (idx+1)%ckptEvery == 0 && idx+1 < len(tr.Snapshots) {
			if err := saveAt(idx + 1); err != nil {
				return nil, err
			}
		}
	}
	res.TotalTime = simTime
	res.DegradedRegrids = degradedBase
	if dg, ok := strat.(interface{ DegradedCount() int }); ok {
		res.DegradedRegrids += dg.DegradedCount()
	}
	n := float64(len(tr.Snapshots))
	res.AvgImbalance = imbSum / n
	res.AMREfficiency = effSum / n
	return res, nil
}

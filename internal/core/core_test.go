package core

import (
	"sync"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
)

var smallTrace = struct {
	once sync.Once
	tr   *samr.Trace
	err  error
}{}

func testTrace(t testing.TB) *samr.Trace {
	t.Helper()
	smallTrace.once.Do(func() {
		smallTrace.tr, smallTrace.err = rm3d.GenerateTrace(rm3d.SmallConfig())
	})
	if smallTrace.err != nil {
		t.Fatal(smallTrace.err)
	}
	return smallTrace.tr
}

func TestMetaPartitionerSelectForOctant(t *testing.T) {
	m := NewMetaPartitioner()
	want := map[octant.Octant]string{
		octant.I:    "pBD-ISP",
		octant.II:   "pBD-ISP",
		octant.III:  "G-MISP+SP",
		octant.IV:   "G-MISP+SP",
		octant.V:    "pBD-ISP",
		octant.VI:   "pBD-ISP",
		octant.VII:  "G-MISP+SP",
		octant.VIII: "G-MISP+SP",
	}
	for o, name := range want {
		p, err := m.SelectForOctant(o)
		if err != nil {
			t.Fatalf("octant %v: %v", o, err)
		}
		if p.Name() != name {
			t.Errorf("octant %v selects %s, want %s", o, p.Name(), name)
		}
	}
	if _, err := m.SelectForOctant(octant.Octant(0)); err == nil {
		t.Error("invalid octant accepted")
	}
}

// TestTable3PartitionerColumn verifies the meta-partitioner reproduces the
// partitioner column of the paper's Table 3 on the full RM3D trace.
func TestTable3PartitionerColumn(t *testing.T) {
	tr, err := rm3d.GenerateTrace(rm3d.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetaPartitioner()
	want := map[int]struct {
		oct  octant.Octant
		part string
	}{
		0:   {octant.IV, "G-MISP+SP"},
		5:   {octant.VII, "G-MISP+SP"},
		25:  {octant.I, "pBD-ISP"},
		106: {octant.VI, "pBD-ISP"},
		137: {octant.VIII, "G-MISP+SP"},
		162: {octant.II, "pBD-ISP"},
		174: {octant.V, "pBD-ISP"},
		201: {octant.III, "G-MISP+SP"},
	}
	for idx, w := range want {
		p, o, err := m.SelectAt(tr, idx)
		if err != nil {
			t.Fatalf("time-step %d: %v", idx, err)
		}
		if o != w.oct || p.Name() != w.part {
			t.Errorf("time-step %d: (%v, %s), paper reports (%v, %s)",
				idx, o, p.Name(), w.oct, w.part)
		}
	}
}

func TestStaticStrategy(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(16, 1e6, 512, 100)
	res, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "SFC" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if res.Steps != len(tr.Snapshots)*tr.RegridEvery {
		t.Fatalf("steps = %d", res.Steps)
	}
	if res.Switches != 0 {
		t.Fatalf("static strategy switched %d times", res.Switches)
	}
	if res.AMREfficiency < 80 {
		t.Fatalf("AMR efficiency = %.1f%%", res.AMREfficiency)
	}
	if len(res.Snapshots) != len(tr.Snapshots) {
		t.Fatalf("snapshot stats = %d", len(res.Snapshots))
	}
}

func TestAdaptiveStrategySwitches(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(16, 1e6, 512, 100)
	res, err := Run(tr, Adaptive{}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatal("adaptive strategy never switched partitioners on the RM3D trace")
	}
	names := map[string]bool{}
	for _, s := range res.Snapshots {
		names[s.Partitioner] = true
	}
	if !names["pBD-ISP"] || !names["G-MISP+SP"] {
		t.Fatalf("adaptive used %v, want both pBD-ISP and G-MISP+SP", names)
	}
}

func TestSystemSensitiveBeatsDefaultOnLoadedCluster(t *testing.T) {
	// The Table 5 effect in miniature: on a heterogeneously loaded cluster
	// the capacity-weighted partitioner outruns equal distribution.
	tr := testTrace(t)
	machine := cluster.LinuxCluster(16, 99)
	def, err := Run(tr, Static{P: partition.EqualBlock{}}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Run(tr, &SystemSensitive{}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalTime >= def.TotalTime {
		t.Fatalf("system-sensitive %.2fs not faster than default %.2fs", ss.TotalTime, def.TotalTime)
	}
}

func TestSystemSensitiveCapacitiesComputedOnce(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.LinuxCluster(8, 3)
	s := &SystemSensitive{}
	ctx := &StepContext{
		Index: 0, Trace: tr, Snap: tr.Snapshots[0],
		WM: samr.UniformWorkModel{}, NProcs: 8, Machine: machine,
	}
	if _, _, err := s.Assign(ctx); err != nil {
		t.Fatal(err)
	}
	caps0 := append([]float64(nil), s.caps...)
	// Later assignment at a different sim time must reuse the capacities.
	ctx2 := *ctx
	ctx2.Index = 5
	ctx2.Snap = tr.Snapshots[5]
	ctx2.SimTime = 1e4
	if _, _, err := s.Assign(&ctx2); err != nil {
		t.Fatal(err)
	}
	for i := range caps0 {
		if s.caps[i] != caps0[i] {
			t.Fatal("capacities recomputed despite RecalibrateEvery=0")
		}
	}
	// With RecalibrateEvery they refresh.
	s2 := &SystemSensitive{RecalibrateEvery: 1, Weights: monitor.Weights{CPU: 1}}
	if _, _, err := s2.Assign(ctx); err != nil {
		t.Fatal(err)
	}
	caps1 := append([]float64(nil), s2.caps...)
	ctx3 := *ctx
	ctx3.Index = 1
	ctx3.SimTime = 50 // synthetic load varies over time
	if _, _, err := s2.Assign(&ctx3); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range caps1 {
		if s2.caps[i] != caps1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("capacities identical after recalibration under varying load")
	}
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(4, 1e6, 512, 100)
	if _, err := Run(nil, Static{P: partition.SFC{}}, RunConfig{Machine: machine}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{}); err == nil {
		t.Error("missing machine accepted")
	}
	if _, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{Machine: machine, NProcs: 99}); err == nil {
		t.Error("nprocs above machine size accepted")
	}
}

func TestRunAccumulatesOverheads(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e6, 512, 100)
	res, err := Run(tr, Static{P: partition.SPISP{}}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionTime <= 0 {
		t.Error("no partitioning time accumulated")
	}
	if res.MigrationTime <= 0 {
		t.Error("no migration time accumulated (trace features move)")
	}
	if res.MaxImbalance < res.AvgImbalance {
		t.Error("max imbalance below average")
	}
	// Total includes overheads plus step times.
	var stepSum float64
	for _, s := range res.Snapshots {
		stepSum += s.StepTime
	}
	if res.TotalTime <= stepSum {
		t.Error("total time should exceed pure step time by the overheads")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.LinuxCluster(8, 42)
	a, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: machine})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.MaxImbalance != b.MaxImbalance {
		t.Fatalf("replay not deterministic: %v vs %v", a.TotalTime, b.TotalTime)
	}
}

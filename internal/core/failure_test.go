package core

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestFailureAwareSurvivesNodeLoss(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	// First measure a healthy run to locate mid-run time.
	healthy, err := Run(tr, &FailureAware{Inner: Static{P: partition.GMISPSP{}}},
		RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(healthy.TotalTime, 1) {
		t.Fatal("healthy run infinite")
	}

	// Kill two nodes mid-run.
	failing := cluster.Homogeneous(8, 1e5, 512, 100)
	failing.Fail(2, healthy.TotalTime/3)
	failing.Fail(5, healthy.TotalTime/2)
	ft := &FailureAware{Inner: Static{P: partition.GMISPSP{}}}
	res, err := Run(tr, ft, RunConfig{Machine: failing, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.TotalTime, 1) || math.IsNaN(res.TotalTime) {
		t.Fatal("fault-tolerant run did not complete")
	}
	if ft.FailuresSeen == 0 {
		t.Fatal("failures never detected")
	}
	// Losing a quarter of the machine must cost time, but bounded: the
	// survivors absorb the work.
	if res.TotalTime <= healthy.TotalTime {
		t.Fatalf("run with failures (%.2fs) not slower than healthy (%.2fs)",
			res.TotalTime, healthy.TotalTime)
	}
	if res.TotalTime > healthy.TotalTime*3 {
		t.Fatalf("run with failures (%.2fs) blew up vs healthy (%.2fs)",
			res.TotalTime, healthy.TotalTime)
	}
	if res.Strategy != "G-MISP+SP+ft" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
}

func TestWithoutFailureAwarenessDeadNodeStallsRun(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(4, 1e5, 512, 100)
	machine.Fail(1, 0.1)
	res, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: machine, NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The naive strategy keeps assigning work to the dead node: the
	// simulated run never finishes, and the result says so loudly.
	if !math.IsInf(res.TotalTime, 1) {
		t.Fatalf("dead node did not stall the naive run: %.2fs", res.TotalTime)
	}
}

func TestFailureAwareAllNodesDead(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(2, 1e5, 512, 100)
	machine.Fail(0, 0)
	machine.Fail(1, 0)
	ft := &FailureAware{Inner: Static{P: partition.SFC{}}}
	if _, err := Run(tr, ft, RunConfig{Machine: machine, NProcs: 2}); err == nil {
		t.Fatal("run with zero live nodes succeeded")
	}
}

func TestClusterAliveBookkeeping(t *testing.T) {
	c := cluster.Homogeneous(4, 1e5, 512, 100)
	c.Fail(2, 10)
	if !c.Alive(2, 9.99) {
		t.Error("node dead before failure time")
	}
	if c.Alive(2, 10) {
		t.Error("node alive at failure time")
	}
	if c.Alive(-1, 0) || c.Alive(99, 0) {
		t.Error("out-of-range nodes alive")
	}
	alive := c.AliveNodes(20)
	if len(alive) != 3 || alive[0] != 0 || alive[1] != 1 || alive[2] != 3 {
		t.Errorf("alive = %v", alive)
	}
	if got := c.EffectiveSpeed(2, 20); got != 0 {
		t.Errorf("dead node speed = %g", got)
	}
}

// TestFailureAwareSurvivorRemapOwners drives Assign directly at a time
// when nodes are down and checks the remap invariants: every owner is a
// live machine node, dead nodes carry zero work, and all work is conserved.
func TestFailureAwareSurvivorRemapOwners(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	machine.Fail(1, 5)
	machine.Fail(6, 5)
	ft := &FailureAware{Inner: Static{P: partition.GMISPSP{}}}
	snap := tr.Snapshots[0]
	ctx := &StepContext{
		Index: 0, Trace: tr, Snap: snap, WM: samr.UniformWorkModel{},
		NProcs: 8, SimTime: 10, Machine: machine,
	}
	a, label, err := ft.Assign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if label != "G-MISP+SP+ft" {
		t.Errorf("label = %q, want G-MISP+SP+ft", label)
	}
	if a.NProcs != 8 {
		t.Fatalf("remapped NProcs = %d, want the full machine width 8", a.NProcs)
	}
	alive := map[int]bool{}
	for _, n := range machine.AliveNodes(10) {
		alive[n] = true
	}
	for i, o := range a.Owner {
		if !alive[o] {
			t.Fatalf("unit %d assigned to dead node %d", i, o)
		}
	}
	work := a.Work()
	if work[1] != 0 || work[6] != 0 {
		t.Errorf("dead nodes carry work: node1=%g node6=%g", work[1], work[6])
	}
	var total float64
	for _, w := range work {
		total += w
	}
	if diff := total - a.TotalWeight(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("work not conserved: %g vs %g", total, a.TotalWeight())
	}
	if ft.FailuresSeen != 1 {
		t.Errorf("FailuresSeen = %d, want 1", ft.FailuresSeen)
	}
}

// TestFailureAwareZeroAliveNodes exercises the error path where the whole
// machine is gone by the time a regrid fires.
func TestFailureAwareZeroAliveNodes(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(2, 1e5, 512, 100)
	machine.Fail(0, 3)
	machine.Fail(1, 3)
	ft := &FailureAware{Inner: Static{P: partition.GMISPSP{}}}
	ctx := &StepContext{
		Index: 0, Trace: tr, Snap: tr.Snapshots[0], WM: samr.UniformWorkModel{},
		NProcs: 2, SimTime: 99, Machine: machine,
	}
	if _, _, err := ft.Assign(ctx); err == nil {
		t.Fatal("assign with zero live nodes succeeded")
	}
}

package core

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
)

func TestFailureAwareSurvivesNodeLoss(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	// First measure a healthy run to locate mid-run time.
	healthy, err := Run(tr, &FailureAware{Inner: Static{P: partition.GMISPSP{}}},
		RunConfig{Machine: machine, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(healthy.TotalTime, 1) {
		t.Fatal("healthy run infinite")
	}

	// Kill two nodes mid-run.
	failing := cluster.Homogeneous(8, 1e5, 512, 100)
	failing.Fail(2, healthy.TotalTime/3)
	failing.Fail(5, healthy.TotalTime/2)
	ft := &FailureAware{Inner: Static{P: partition.GMISPSP{}}}
	res, err := Run(tr, ft, RunConfig{Machine: failing, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.TotalTime, 1) || math.IsNaN(res.TotalTime) {
		t.Fatal("fault-tolerant run did not complete")
	}
	if ft.FailuresSeen == 0 {
		t.Fatal("failures never detected")
	}
	// Losing a quarter of the machine must cost time, but bounded: the
	// survivors absorb the work.
	if res.TotalTime <= healthy.TotalTime {
		t.Fatalf("run with failures (%.2fs) not slower than healthy (%.2fs)",
			res.TotalTime, healthy.TotalTime)
	}
	if res.TotalTime > healthy.TotalTime*3 {
		t.Fatalf("run with failures (%.2fs) blew up vs healthy (%.2fs)",
			res.TotalTime, healthy.TotalTime)
	}
	if res.Strategy != "G-MISP+SP+ft" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
}

func TestWithoutFailureAwarenessDeadNodeStallsRun(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(4, 1e5, 512, 100)
	machine.Fail(1, 0.1)
	res, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: machine, NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The naive strategy keeps assigning work to the dead node: the
	// simulated run never finishes, and the result says so loudly.
	if !math.IsInf(res.TotalTime, 1) {
		t.Fatalf("dead node did not stall the naive run: %.2fs", res.TotalTime)
	}
}

func TestFailureAwareAllNodesDead(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(2, 1e5, 512, 100)
	machine.Fail(0, 0)
	machine.Fail(1, 0)
	ft := &FailureAware{Inner: Static{P: partition.SFC{}}}
	if _, err := Run(tr, ft, RunConfig{Machine: machine, NProcs: 2}); err == nil {
		t.Fatal("run with zero live nodes succeeded")
	}
}

func TestClusterAliveBookkeeping(t *testing.T) {
	c := cluster.Homogeneous(4, 1e5, 512, 100)
	c.Fail(2, 10)
	if !c.Alive(2, 9.99) {
		t.Error("node dead before failure time")
	}
	if c.Alive(2, 10) {
		t.Error("node alive at failure time")
	}
	if c.Alive(-1, 0) || c.Alive(99, 0) {
		t.Error("out-of-range nodes alive")
	}
	alive := c.AliveNodes(20)
	if len(alive) != 3 || alive[0] != 0 || alive[1] != 1 || alive[2] != 3 {
		t.Errorf("alive = %v", alive)
	}
	if got := c.EffectiveSpeed(2, 20); got != 0 {
		t.Errorf("dead node speed = %g", got)
	}
}

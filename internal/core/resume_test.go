package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/pragma-grid/pragma/internal/chaos"
	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
)

// crashingStrategy wraps a strategy with a chaos fault point: the run is
// killed (strategy error) at a deterministic regrid interval, emulating a
// process crash mid-replay without killing the test process.
type crashingStrategy struct {
	inner Strategy
	fp    *chaos.FaultPoint
}

func (c crashingStrategy) Name() string { return c.inner.Name() }
func (c crashingStrategy) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	if err := c.fp.Check(); err != nil {
		return nil, "", err
	}
	return c.inner.Assign(ctx)
}

// CheckpointState forwards to the wrapped strategy so the crash rehearsal
// checkpoints exactly what the real strategy would.
func (c crashingStrategy) CheckpointState() ([]byte, error) {
	if cs, ok := c.inner.(CheckpointableStrategy); ok {
		return cs.CheckpointState()
	}
	return nil, nil
}

func (c crashingStrategy) RestoreState(data []byte) error {
	if cs, ok := c.inner.(CheckpointableStrategy); ok {
		return cs.RestoreState(data)
	}
	return nil
}

// sameResult asserts two run results are identical, field by field —
// resumed runs must be indistinguishable from uninterrupted ones.
func sameResult(t *testing.T, got, want *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		if got.TotalTime != want.TotalTime {
			t.Errorf("TotalTime %v != %v", got.TotalTime, want.TotalTime)
		}
		if got.ComputeTime != want.ComputeTime || got.CommTime != want.CommTime {
			t.Errorf("Compute/Comm (%v, %v) != (%v, %v)",
				got.ComputeTime, got.CommTime, want.ComputeTime, want.CommTime)
		}
		if got.PartitionTime != want.PartitionTime || got.MigrationTime != want.MigrationTime {
			t.Errorf("Partition/Migration (%v, %v) != (%v, %v)",
				got.PartitionTime, got.MigrationTime, want.PartitionTime, want.MigrationTime)
		}
		if got.Steps != want.Steps || got.Switches != want.Switches {
			t.Errorf("Steps/Switches (%d, %d) != (%d, %d)",
				got.Steps, got.Switches, want.Steps, want.Switches)
		}
		if len(got.Snapshots) != len(want.Snapshots) {
			t.Errorf("snapshot counts %d != %d", len(got.Snapshots), len(want.Snapshots))
		}
		t.Fatalf("resumed result differs from uninterrupted run")
	}
}

func TestRunCheckpointResumeMatchesUninterrupted(t *testing.T) {
	tr := testTrace(t)
	mk := func() *cluster.Cluster { return cluster.Homogeneous(8, 1e5, 512, 100) }

	base, err := Run(tr, Adaptive{ImbalanceGuard: 20}, RunConfig{Machine: mk(), NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashAt := len(tr.Snapshots) / 2
	if crashAt < 2 {
		t.Fatalf("trace too short for a mid-run crash: %d snapshots", len(tr.Snapshots))
	}
	_, err = Run(tr, crashingStrategy{
		inner: Adaptive{ImbalanceGuard: 20},
		fp:    &chaos.FaultPoint{FailAt: crashAt + 1},
	}, RunConfig{Machine: mk(), NProcs: 8, CheckpointDir: dir})
	if !errors.Is(err, chaos.ErrInjectedCrash) {
		t.Fatalf("crash run: err = %v, want injected crash", err)
	}

	entries, err := (&checkpoint.Store{Dir: dir}).Entries()
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoints written before the crash (err=%v)", err)
	}

	resumed, err := Run(tr, Adaptive{ImbalanceGuard: 20}, RunConfig{
		Machine: mk(), NProcs: 8, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, resumed, base)
}

func TestRunResumeSkipsCorruptedCheckpoint(t *testing.T) {
	tr := testTrace(t)
	mk := func() *cluster.Cluster { return cluster.Homogeneous(4, 1e5, 512, 100) }

	base, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: mk(), NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	crashAt := len(tr.Snapshots) - 2
	_, err = Run(tr, crashingStrategy{
		inner: Static{P: partition.GMISPSP{}},
		fp:    &chaos.FaultPoint{FailAt: crashAt + 1},
	}, RunConfig{Machine: mk(), NProcs: 4, CheckpointDir: dir, CheckpointKeep: -1})
	if !errors.Is(err, chaos.ErrInjectedCrash) {
		t.Fatalf("crash run: err = %v", err)
	}

	// Corrupt the newest checkpoint (a crash mid-overwrite / disk damage):
	// resume must fall back to the previous valid one and still reproduce
	// the uninterrupted result.
	st := &checkpoint.Store{Dir: dir, Keep: -1}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("need at least 2 checkpoints, have %d", len(entries))
	}
	data, err := os.ReadFile(entries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(entries[0].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{
		Machine: mk(), NProcs: 4, CheckpointDir: dir, CheckpointKeep: -1, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, resumed, base)
}

func TestRunResumeWithEmptyDirStartsFresh(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(4, 1e5, 512, 100)
	res, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{
		Machine: machine, NProcs: 4,
		CheckpointDir: filepath.Join(t.TempDir(), "fresh"), Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || math.IsInf(res.TotalTime, 1) {
		t.Fatalf("fresh resume produced no run: %+v", res)
	}
}

func TestRunResumeRejectsMismatchedRun(t *testing.T) {
	tr := testTrace(t)
	mk := func() *cluster.Cluster { return cluster.Homogeneous(4, 1e5, 512, 100) }
	dir := t.TempDir()
	_, err := Run(tr, crashingStrategy{
		inner: Static{P: partition.GMISPSP{}},
		fp:    &chaos.FaultPoint{FailAt: 3},
	}, RunConfig{Machine: mk(), NProcs: 4, CheckpointDir: dir})
	if !errors.Is(err, chaos.ErrInjectedCrash) {
		t.Fatalf("crash run: err = %v", err)
	}
	// A different strategy must not adopt this checkpoint; with nothing
	// else valid in the directory, the run restarts from scratch and
	// completes — matching a from-scratch run of that strategy.
	base, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{Machine: mk(), NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, Static{P: partition.SFC{}}, RunConfig{
		Machine: mk(), NProcs: 4, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, base)
}

func TestRunCheckpointEveryKRegrids(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(4, 1e5, 512, 100)
	dir := t.TempDir()
	if _, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{
		Machine: machine, NProcs: 4,
		CheckpointDir: dir, CheckpointEvery: 3, CheckpointKeep: -1,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := (&checkpoint.Store{Dir: dir, Keep: -1}).Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no checkpoints written")
	}
	for _, e := range entries {
		if e.Seq%3 != 0 {
			t.Errorf("checkpoint at regrid %d violates CheckpointEvery=3", e.Seq)
		}
	}
}

func TestSystemSensitiveStateSurvivesResume(t *testing.T) {
	tr := testTrace(t)
	// Background load makes capacities time-dependent: a resumed run that
	// re-sampled at resume time instead of restoring the cache would pick
	// different capacities and diverge.
	mk := func() *cluster.Cluster { return cluster.LinuxCluster(8, 42) }

	base, err := Run(tr, &SystemSensitive{}, RunConfig{Machine: mk(), NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, err = Run(tr, crashingStrategy{
		inner: &SystemSensitive{},
		fp:    &chaos.FaultPoint{FailAt: len(tr.Snapshots)/2 + 1},
	}, RunConfig{Machine: mk(), NProcs: 8, CheckpointDir: dir})
	if !errors.Is(err, chaos.ErrInjectedCrash) {
		t.Fatalf("crash run: err = %v", err)
	}

	resumed, err := Run(tr, &SystemSensitive{}, RunConfig{
		Machine: mk(), NProcs: 8, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, resumed, base)
}

func TestFailureAwareStateRoundTrip(t *testing.T) {
	f := &FailureAware{Inner: &SystemSensitive{caps: []float64{0.25, 0.75}}, FailuresSeen: 4}
	state, err := f.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	g := &FailureAware{Inner: &SystemSensitive{}}
	if err := g.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if g.FailuresSeen != 4 {
		t.Errorf("FailuresSeen = %d, want 4", g.FailuresSeen)
	}
	caps := g.Inner.(*SystemSensitive).Capacities()
	if len(caps) != 2 || caps[0] != 0.25 || caps[1] != 0.75 {
		t.Errorf("inner caps = %v, want [0.25 0.75]", caps)
	}
}

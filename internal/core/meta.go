// Package core implements Pragma's adaptive runtime management: the
// application- and system-sensitive meta-partitioner of §4 and the replay
// runner that executes an application's adaptation trace on a simulated
// machine under a partitioning strategy. It is the layer that ties the
// substrates together: octant characterization feeds the policy base, the
// selected partitioner distributes the grid hierarchy, the capacity
// calculator weights heterogeneous processors, and the cluster simulator
// accumulates execution time.
package core

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/policy"
	"github.com/pragma-grid/pragma/internal/samr"
)

// MetaPartitioner selects "the most appropriate partitioning strategy at
// runtime, based on current application and system state" (§4): the octant
// approach abstracts the application state, the policy knowledge base maps
// the octant to a partitioning technique, and the partitioner database
// supplies the implementation.
type MetaPartitioner struct {
	// Policy is the adaptation policy base; NewMetaPartitioner installs
	// the paper's Table 2.
	Policy *policy.Base
	// Thresholds configure the octant classifier.
	Thresholds octant.Thresholds
	// Window is the dynamics smoothing window in regrid intervals.
	Window int
	// Lookup resolves a policy target name to a partitioner
	// implementation; NewMetaPartitioner installs partition.ByName.
	Lookup func(name string) (partition.Partitioner, error)
}

// NewMetaPartitioner returns a meta-partitioner configured exactly as the
// paper's case study: Table 2 policies, trace-calibrated octant thresholds,
// and the standard partitioner database.
func NewMetaPartitioner() *MetaPartitioner {
	return &MetaPartitioner{
		Policy:     policy.Table2(),
		Thresholds: octant.DefaultThresholds(),
		Window:     3,
		Lookup:     partition.ByName,
	}
}

// SelectForOctant returns the partitioner the policy base recommends for an
// octant.
func (m *MetaPartitioner) SelectForOctant(o octant.Octant) (partition.Partitioner, error) {
	if !o.Valid() {
		return nil, fmt.Errorf("core: invalid octant %v", o)
	}
	act, ok := m.Policy.BestAction("select-partitioner", map[string]interface{}{"octant": o.String()})
	if !ok {
		return nil, fmt.Errorf("core: no partitioner policy for octant %v", o)
	}
	p, err := m.Lookup(act.Target)
	if err == nil {
		metricPartitionerSelected.With(p.Name(), o.String()).Inc()
	}
	return p, err
}

// SelectAt characterizes the trace at snapshot idx and returns the selected
// partitioner together with the octant classification — one row of the
// paper's Table 3.
func (m *MetaPartitioner) SelectAt(tr *samr.Trace, idx int) (partition.Partitioner, octant.Octant, error) {
	state, err := octant.StateAt(tr, idx, m.Window)
	if err != nil {
		return nil, 0, err
	}
	o := octant.Classify(state, m.Thresholds)
	p, err := m.SelectForOctant(o)
	if err != nil {
		return nil, o, err
	}
	return p, o, nil
}

package core

import (
	"errors"
	"sync"
	"testing"

	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
)

// gatedStrategy blocks inside Assign at one regrid index until released,
// so tests can interrupt a run while it is provably mid-flight.
type gatedStrategy struct {
	Strategy
	at      int
	reached chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedStrategy) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	if ctx.Index == g.at {
		g.once.Do(func() { close(g.reached) })
		<-g.release
	}
	return g.Strategy.Assign(ctx)
}

// TestRunInterruptCheckpointsAndResumes drives the graceful-drain path:
// an interrupt lands while interval 3 executes, the run checkpoints at the
// regrid boundary (CheckpointEvery is set far beyond the trace so only the
// drain-save writes), fails with ErrInterrupted, and a resumed run
// finishes with a result identical to an uninterrupted one.
func TestRunInterruptCheckpointsAndResumes(t *testing.T) {
	tr := testTrace(t)
	p, err := partition.ByName("G-MISP+SP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Machine: cluster.SP2(8), NProcs: 8}
	ref, err := Run(tr, Static{P: p}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupt := make(chan struct{})
	g := &gatedStrategy{
		Strategy: Static{P: p},
		at:       3,
		reached:  make(chan struct{}),
		release:  make(chan struct{}),
	}
	type out struct {
		res *RunResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := Run(tr, g, RunConfig{
			Machine: cluster.SP2(8), NProcs: 8,
			CheckpointDir: dir, CheckpointEvery: 10_000,
			Interrupt: interrupt,
		})
		ch <- out{res, err}
	}()
	<-g.reached
	close(interrupt)
	close(g.release)
	o := <-ch
	if !errors.Is(o.err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", o.err)
	}
	if o.res != nil {
		t.Fatalf("interrupted run returned a result: %+v", o.res)
	}

	store := &checkpoint.Store{Dir: dir}
	entries, err := store.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("drain-save wrote %d checkpoints, want exactly 1", len(entries))
	}
	if entries[0].Seq != 4 {
		t.Fatalf("drain checkpoint has NextIndex %d, want 4 (interrupt landed during interval 3)", entries[0].Seq)
	}

	res, err := Run(tr, Static{P: p}, RunConfig{
		Machine: cluster.SP2(8), NProcs: 8,
		CheckpointDir: dir, CheckpointEvery: 10_000,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, ref)
}

// TestRunInterruptBeforeFirstInterval: an interrupt that fires before any
// interval completed has nothing to persist — the run fails resumably-
// from-scratch with no checkpoint file.
func TestRunInterruptBeforeFirstInterval(t *testing.T) {
	tr := testTrace(t)
	p, err := partition.ByName("SFC")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	interrupt := make(chan struct{})
	close(interrupt)
	_, err = Run(tr, Static{P: p}, RunConfig{
		Machine: cluster.SP2(4), NProcs: 4,
		CheckpointDir: dir, Interrupt: interrupt,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	entries, err := (&checkpoint.Store{Dir: dir}).Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("interrupt before the first interval wrote %d checkpoints, want none", len(entries))
	}
	// A "resume" over the empty store must simply run to completion.
	res, err := Run(tr, Static{P: p}, RunConfig{
		Machine: cluster.SP2(4), NProcs: 4,
		CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("resumed-from-scratch run did no work")
	}
}

package core

import (
	"encoding/json"
	"fmt"

	"github.com/pragma-grid/pragma/internal/partition"
)

// FailureAware wraps any strategy with fail-stop tolerance: before each
// regrid it senses which nodes are alive (the role system sensors play in
// §3.4.2) and, when nodes have failed, partitions across the survivors and
// remaps processor ids onto the live nodes. This is the "respond to system
// failures" behavior of Pragma's reactive management.
type FailureAware struct {
	// Inner produces the actual partitioning (required).
	Inner Strategy
	// FailuresSeen counts regrids at which dead nodes were detected.
	FailuresSeen int
}

// Name implements Strategy.
func (f *FailureAware) Name() string { return f.Inner.Name() + "+ft" }

// Assign implements Strategy.
func (f *FailureAware) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	alive := ctx.Machine.AliveNodes(ctx.SimTime)
	if len(alive) == 0 {
		return nil, "", fmt.Errorf("core: no nodes alive at t=%g", ctx.SimTime)
	}
	total := ctx.NProcs
	if len(alive) > total {
		alive = alive[:total]
	}
	if len(alive) == total {
		return f.Inner.Assign(ctx)
	}
	f.FailuresSeen++
	sub := *ctx
	sub.NProcs = len(alive)
	a, label, err := f.Inner.Assign(&sub)
	if err != nil {
		return nil, "", err
	}
	// Remap survivor-relative owners onto machine node ids; dead nodes
	// keep zero work.
	remapped := &partition.Assignment{
		NProcs:    total,
		Units:     a.Units,
		Owner:     make([]int, len(a.Owner)),
		SplitCost: a.SplitCost,
	}
	for i, o := range a.Owner {
		remapped.Owner[i] = alive[o]
	}
	return remapped, label + "+ft", nil
}

// failureAwareState is FailureAware's serialized resume state.
type failureAwareState struct {
	FailuresSeen int             `json:"failuresSeen"`
	Inner        json.RawMessage `json:"inner,omitempty"`
}

// CheckpointState implements CheckpointableStrategy: the failure counter
// and, when the wrapped strategy is itself checkpointable, its state.
func (f *FailureAware) CheckpointState() ([]byte, error) {
	st := failureAwareState{FailuresSeen: f.FailuresSeen}
	if cs, ok := f.Inner.(CheckpointableStrategy); ok {
		inner, err := cs.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.Inner = inner
	}
	return json.Marshal(st)
}

// RestoreState implements CheckpointableStrategy.
func (f *FailureAware) RestoreState(data []byte) error {
	var st failureAwareState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	f.FailuresSeen = st.FailuresSeen
	if len(st.Inner) > 0 {
		cs, ok := f.Inner.(CheckpointableStrategy)
		if !ok {
			return fmt.Errorf("core: checkpoint carries inner-strategy state but %q cannot restore it", f.Inner.Name())
		}
		return cs.RestoreState(st.Inner)
	}
	return nil
}

var _ Strategy = (*FailureAware)(nil)
var _ CheckpointableStrategy = (*FailureAware)(nil)

package core

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/monitor"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// AgentManaged is the automated adaptation loop of §4.7: instead of
// unconditionally repartitioning at every regrid, component agents resident
// at each simulated node monitor local state and publish it to the Message
// Center; the application delegated manager consolidates the reports,
// watches for threshold events (load imbalance, octant change), queries the
// policy base, and only then directs a repartitioning. Between events the
// previous assignment is reprojected onto the new hierarchy, avoiding
// repartitioning and migration overheads.
//
// The strategy owns a live control network: construct it with
// NewAgentManaged (in-process Center) or NewAgentManagedOn (caller-supplied
// ports, e.g. TCP clients) and use it for a single Run (it accumulates
// state).
type AgentManaged struct {
	meta    *MetaPartitioner
	adm     *agents.ADM
	nodes   []*agents.ComponentAgent
	loadRef []float64

	// ImbalanceEvent is the per-node relative-load threshold that triggers
	// repartitioning (fired by node agents).
	ImbalanceEvent float64

	// Health reports control-network liveness; nil means always healthy.
	// When it returns false the strategy runs in degraded mode: agent
	// polling and ADM consolidation are skipped (the network is
	// partitioned) and partitioning decisions fall back to local-only
	// policy — pure octant classification from the trace, no event gating.
	// Typically wired to pragma's Client.Degraded over the node clients.
	Health func() bool

	prevOctant  octant.Octant
	current     *partition.Assignment
	wasDegraded bool
	// Repartitions counts how many regrids actually repartitioned.
	Repartitions int
	// DegradedRegrids counts regrids decided in degraded (local-only)
	// mode because Health reported the control network down.
	DegradedRegrids int
}

// NewAgentManaged wires the control network for nprocs simulated nodes on
// an in-process Message Center.
func NewAgentManaged(nprocs int, imbalanceEventPct float64) (*AgentManaged, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("core: agent-managed needs at least one node")
	}
	center := agents.NewCenter()
	ports := make([]agents.Port, nprocs)
	for i := range ports {
		ports[i] = center
	}
	return NewAgentManagedOn(center, ports, imbalanceEventPct)
}

// NewAgentManagedOn wires the control network over caller-supplied ports:
// the ADM registers on admPort (the broker side) and one component agent
// per entry of nodePorts (e.g. TCP clients of a served Center, emulating a
// distributed control network). len(nodePorts) fixes the node count.
func NewAgentManagedOn(admPort agents.Port, nodePorts []agents.Port, imbalanceEventPct float64) (*AgentManaged, error) {
	if len(nodePorts) < 1 {
		return nil, fmt.Errorf("core: agent-managed needs at least one node")
	}
	if imbalanceEventPct <= 0 {
		imbalanceEventPct = 25
	}
	am := &AgentManaged{
		meta:           NewMetaPartitioner(),
		loadRef:        make([]float64, len(nodePorts)),
		ImbalanceEvent: imbalanceEventPct,
	}
	adm, err := agents.NewADM("adm", admPort, am.meta.Policy)
	if err != nil {
		return nil, err
	}
	am.adm = adm
	threshold := 1 + imbalanceEventPct/100
	for i, port := range nodePorts {
		i := i
		sensor := agents.SensorFunc{
			SensorName: "relative-load",
			Fn:         func() (float64, error) { return am.loadRef[i], nil },
		}
		rule := agents.EventRule{
			Sensor: "relative-load",
			Above:  &threshold,
			Event:  "load-imbalance",
		}
		ca, err := agents.NewComponentAgent(fmt.Sprintf("node-%d", i), port,
			[]agents.Sensor{sensor}, nil, []agents.EventRule{rule})
		if err != nil {
			return nil, err
		}
		am.nodes = append(am.nodes, ca)
	}
	return am, nil
}

// DegradedCount reports how many regrids were decided in degraded mode;
// core.Run lifts it into RunResult.DegradedRegrids.
func (am *AgentManaged) DegradedCount() int { return am.DegradedRegrids }

// Name implements Strategy.
func (am *AgentManaged) Name() string { return "agent-managed" }

// Assign implements Strategy: agents sense the previous interval's load
// distribution, the ADM consolidates and decides whether adaptation is
// needed, and either a fresh partitioning is produced (per the policy
// base's octant recommendation) or the previous one is reprojected.
func (am *AgentManaged) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	state, err := octant.StateAt(ctx.Trace, ctx.Index, am.meta.Window)
	if err != nil {
		return nil, "", err
	}
	oct := octant.Classify(state, am.meta.Thresholds)
	ctx.CycleTrace.Event("octant-classified", telemetry.String("octant", oct.String()))

	// When the control network is partitioned, skip the agent/ADM round
	// entirely — no polls can reach the broker — and decide from local
	// state alone: repartition on octant change, reproject otherwise.
	degraded := am.Health != nil && !am.Health()
	if degraded {
		am.DegradedRegrids++
		if !am.wasDegraded {
			metricDegradedTransitions.Inc()
		}
		ctx.CycleTrace.Event("degraded-mode")
	}
	am.wasDegraded = degraded

	// Publish per-node relative loads from the outgoing assignment, let
	// the agents poll, and consolidate at the ADM.
	needRepartition := am.current == nil || oct != am.prevOctant
	if !degraded && am.current != nil {
		work := am.current.Work()
		var total float64
		for _, w := range work {
			total += w
		}
		mean := total / float64(len(work))
		for i := range am.loadRef {
			if mean > 0 && i < len(work) {
				am.loadRef[i] = work[i] / mean
			} else {
				am.loadRef[i] = 0
			}
		}
		for _, ca := range am.nodes {
			if _, err := ca.Poll(); err != nil {
				return nil, "", err
			}
		}
		am.adm.Absorb()
		if len(am.adm.PendingEvents()) > 0 {
			needRepartition = true
		}
	}

	if !needRepartition {
		// Reproject the standing assignment onto the new hierarchy: keep
		// each new unit on the processor owning its region before.
		if reused, ok := reproject(am.current, ctx.Snap.H, ctx.WM); ok {
			am.current = reused
			ctx.CycleTrace.Event("reprojected")
			return reused, "reprojected", nil
		}
		needRepartition = true
	}

	p, err := am.meta.SelectForOctant(oct)
	if err != nil {
		return nil, "", err
	}
	ctx.CycleTrace.Event("partitioner-selected", telemetry.String("partitioner", p.Name()))
	a, err := ctx.Partition(p)
	if err != nil {
		return nil, "", err
	}
	am.current = a
	am.prevOctant = oct
	am.Repartitions++
	return a, p.Name(), nil
}

// reproject maps a previous assignment onto a new hierarchy: each box of
// the new hierarchy is assigned to the processor that owned the largest
// share of its region before. Returns false when the previous assignment
// cannot cover the new hierarchy (e.g. a level appeared).
func reproject(prev *partition.Assignment, h *samr.Hierarchy, wm samr.WorkModel) (*partition.Assignment, bool) {
	byLevel := map[int][]int{}
	for i, u := range prev.Units {
		byLevel[u.Level] = append(byLevel[u.Level], i)
	}
	out := &partition.Assignment{NProcs: prev.NProcs, SplitCost: 1}
	for l, boxes := range h.Levels {
		ids := byLevel[l]
		if len(ids) == 0 {
			return nil, false
		}
		for _, b := range boxes {
			overlap := make(map[int]int64)
			var covered int64
			for _, i := range ids {
				if inter, ok := prev.Units[i].Box.Intersect(b); ok {
					overlap[prev.Owner[i]] += inter.Volume()
					covered += inter.Volume()
				}
			}
			if covered == 0 {
				return nil, false
			}
			best, bestVol := 0, int64(-1)
			for p, v := range overlap {
				if v > bestVol || (v == bestVol && p < best) {
					best, bestVol = p, v
				}
			}
			out.Units = append(out.Units, partition.Unit{Level: l, Box: b, Weight: wm.BoxWork(h, l, b)})
			out.Owner = append(out.Owner, best)
		}
	}
	return out, true
}

var _ Strategy = (*AgentManaged)(nil)

// Proactive extends the system-sensitive strategy with Pragma's predictive
// capability: instead of partitioning on the *current* resource state, it
// accumulates a monitoring history and partitions on the NWS
// meta-forecaster's *predicted* next state — "proactive application
// management by predicting system behavior" (§3.1). The paper's Table 5
// experiment explicitly did not use prediction; this strategy implements
// the extension the paper proposes, benchmarked in the ablations.
type Proactive struct {
	// P is the capacity-weighted partitioner (nil = partition.Heterogeneous).
	P partition.CapacityPartitioner
	// Weights configure the capacity calculator (zero = defaults).
	Weights monitor.Weights
	// history holds one reading-set per regrid.
	history [][]monitor.Reading
}

// Name implements Strategy.
func (p *Proactive) Name() string { return "proactive" }

// Assign implements Strategy.
func (p *Proactive) Assign(ctx *StepContext) (*partition.Assignment, string, error) {
	part := p.P
	if part == nil {
		part = partition.Heterogeneous{}
	}
	w := p.Weights
	if w == (monitor.Weights{}) {
		w = monitor.DefaultWeights()
	}
	readings := monitor.ClusterSensor{Cluster: ctx.Machine}.Sample(ctx.SimTime)
	if ctx.NProcs < len(readings) {
		readings = readings[:ctx.NProcs]
	}
	p.history = append(p.history, readings)
	caps, err := monitor.PredictiveCapacities(p.history, w)
	if err != nil {
		return nil, "", fmt.Errorf("core: predictive capacities: %w", err)
	}
	a, err := part.PartitionWeighted(ctx.Snap.H, ctx.WM, caps)
	return a, part.Name(), err
}

var _ Strategy = (*Proactive)(nil)

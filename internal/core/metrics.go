package core

import (
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// Runtime-management instrumentation. Regrids are infrequent relative to
// BSP steps, so labeled-child resolution at regrid time is acceptable;
// everything else is a pre-resolved handle.
var (
	metricRegridSeconds = telemetry.Default.Histogram(
		"pragma_core_regrid_seconds",
		"Wall-clock duration of one regrid decision: partitioning, PAC evaluation, and interval bookkeeping, excluding the simulated BSP steps.",
		nil)
	metricPartitionerSelected = telemetry.Default.CounterVec(
		"pragma_core_partitioner_selected_total",
		"Policy-base partitioner selections keyed by the octant that drove them.",
		"partitioner", "octant")
	metricSwitches = telemetry.Default.Counter(
		"pragma_core_partitioner_switches_total",
		"Partitioner changes between consecutive regrids.")
	metricRegrids = telemetry.Default.Counter(
		"pragma_core_regrids_total",
		"Regrid cycles executed.")
	metricSteps = telemetry.Default.Counter(
		"pragma_core_steps_total",
		"Coarse BSP steps simulated.")
	metricRecoveries = telemetry.Default.Counter(
		"pragma_core_recoveries_total",
		"Mid-interval failure recoveries (work re-assigned off a dead node).")
	metricDegradedTransitions = telemetry.Default.Counter(
		"pragma_core_degraded_transitions_total",
		"Entries into degraded mode (control network reported down after being up).")
	metricResumes = telemetry.Default.Counter(
		"pragma_checkpoint_resumes_total",
		"Replays resumed from a valid checkpoint.")
	metricInterrupts = telemetry.Default.Counter(
		"pragma_core_interrupts_total",
		"Runs stopped at a regrid boundary through RunConfig.Interrupt (graceful drain).")

	// The PAC components of the most recent regrid — the partitioning
	// quality metric the runtime steers on (imbalance, communication,
	// data movement, overhead).
	metricPACImbalance = telemetry.Default.Gauge(
		"pragma_core_pac_imbalance_percent",
		"Load imbalance of the current assignment, percent.")
	metricPACCommVolume = telemetry.Default.Gauge(
		"pragma_core_pac_comm_volume",
		"Ghost-communication volume of the current assignment, faces.")
	metricPACCommMessages = telemetry.Default.Gauge(
		"pragma_core_pac_comm_messages",
		"Ghost-communication message count of the current assignment.")
	metricPACMigration = telemetry.Default.Gauge(
		"pragma_core_pac_migration_fraction",
		"Fraction of cells that moved processors at the last regrid.")
	metricPACOverhead = telemetry.Default.Gauge(
		"pragma_core_pac_overhead_ratio",
		"Partitioning-overhead proxy: assignment units per hierarchy box.")
)

// setPACGauges publishes a regrid's quality metric. Called again from the
// mid-interval recovery path so the gauges always describe the assignment
// actually running.
func setPACGauges(q partition.Quality) {
	metricPACImbalance.Set(q.Imbalance)
	metricPACCommVolume.Set(q.CommVolume)
	metricPACCommMessages.Set(q.CommMessages)
	metricPACMigration.Set(q.Migration)
	metricPACOverhead.Set(q.Overhead)
}

package core

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// counterTotal sums a counter family across all its label combinations in
// the global registry.
func counterTotal(name string) float64 {
	var total float64
	for _, s := range telemetry.Default.Snapshot().Find(name) {
		total += s.Value
	}
	return total
}

func histogramCount(name string) uint64 {
	var total uint64
	for _, s := range telemetry.Default.Snapshot().Find(name) {
		total += s.Count
	}
	return total
}

// TestRunRecordsTelemetry replays a trace end to end and asserts that the
// run showed up in the process-global registry and trace ring — the same
// signals a scraper of /metrics and /debug/pragma would see. The metrics
// are global and shared across tests, so everything is asserted as deltas.
func TestRunRecordsTelemetry(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)

	regridsBefore := counterTotal("pragma_core_regrids_total")
	selectedBefore := counterTotal("pragma_core_partitioner_selected_total")
	observedBefore := histogramCount("pragma_core_regrid_seconds")
	tracesBefore := len(telemetry.DefaultTracer.Traces())

	if _, err := Run(tr, Adaptive{}, RunConfig{Machine: machine, NProcs: 8}); err != nil {
		t.Fatal(err)
	}

	n := float64(len(tr.Snapshots))
	if got := counterTotal("pragma_core_regrids_total") - regridsBefore; got != n {
		t.Fatalf("regrids counter advanced by %g, want %g", got, n)
	}
	if got := counterTotal("pragma_core_partitioner_selected_total") - selectedBefore; got < n {
		t.Fatalf("partitioner selections advanced by %g, want >= %g", got, n)
	}
	if got := histogramCount("pragma_core_regrid_seconds") - observedBefore; got != uint64(n) {
		t.Fatalf("regrid histogram gained %d observations, want %d", got, uint64(n))
	}

	// The selection counters must be keyed by octant.
	for _, s := range telemetry.Default.Snapshot().Find("pragma_core_partitioner_selected_total") {
		if s.Labels["partitioner"] == "" || s.Labels["octant"] == "" {
			t.Fatalf("selection series missing labels: %+v", s)
		}
	}

	// The trace ring must hold complete regrid cycles: root attrs plus the
	// repartition/pac/migration/steps spans, all closed.
	traces := telemetry.DefaultTracer.Traces()
	if len(traces) <= tracesBefore && len(traces) != cap(traces) {
		t.Fatalf("no regrid traces committed (before %d, after %d)", tracesBefore, len(traces))
	}
	last := traces[len(traces)-1]
	if last.Name != "regrid" {
		t.Fatalf("last trace is %q, want regrid", last.Name)
	}
	spans := map[string]bool{}
	for _, s := range last.Spans {
		if s.End < s.Start {
			t.Fatalf("span %q left open", s.Name)
		}
		spans[s.Name] = true
	}
	for _, want := range []string{"repartition", "pac", "migration", "steps"} {
		if !spans[want] {
			t.Fatalf("regrid trace missing span %q (have %v)", want, spans)
		}
	}
	events := map[string]bool{}
	for _, e := range last.Events {
		events[e.Name] = true
	}
	if !events["octant-classified"] || !events["partitioner-selected"] {
		t.Fatalf("regrid trace missing classification events (have %v)", events)
	}
}

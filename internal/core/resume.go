package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/pragma-grid/pragma/internal/checkpoint"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// Checkpoint/restart for trace replays: at regrid boundaries Run persists
// everything its loop carries between intervals — the accumulators of the
// eventual RunResult, the outgoing assignment, and opt-in strategy state —
// through the internal/checkpoint container (CRC-verified, atomically
// renamed). A resumed run skips the completed intervals and continues from
// the recorded simulation time, producing a final RunResult bit-identical
// to an uninterrupted run: every accumulator is a float64 restored through
// JSON, whose shortest-round-trip encoding is exact, and the previous
// hierarchy is re-taken from the trace itself rather than serialized.

// CheckpointableStrategy is implemented by strategies carrying in-memory
// state that a resumed run must restore (capacity caches, failure
// counters). Stateless strategies need nothing: re-running them over the
// restored inputs reproduces their decisions.
type CheckpointableStrategy interface {
	// CheckpointState serializes the strategy's resume-relevant state.
	CheckpointState() ([]byte, error)
	// RestoreState re-installs state captured by CheckpointState.
	RestoreState([]byte) error
}

// runCheckpoint is the payload Run persists at a regrid boundary.
type runCheckpoint struct {
	// Identity of the run; a checkpoint recorded under a different trace,
	// strategy or machine shape must not be resumed into this one.
	Trace     string `json:"trace"`
	Snapshots int    `json:"snapshots"`
	Strategy  string `json:"strategy"`
	NProcs    int    `json:"nprocs"`

	// NextIndex is the first regrid interval the resumed run executes;
	// everything before it is complete and accounted in Result.
	NextIndex int `json:"nextIndex"`

	// Loop state between intervals.
	SimTime   float64    `json:"simTime"`
	PrevLabel string     `json:"prevLabel"`
	ImbSum    float64    `json:"imbSum"`
	EffSum    float64    `json:"effSum"`
	Degraded  int        `json:"degraded"`
	Result    *RunResult `json:"result"`

	// PrevAssignment is the outgoing placement; the matching hierarchy is
	// re-taken from the trace at NextIndex-1, not serialized.
	PrevAssignment *assignmentState `json:"prevAssignment,omitempty"`

	// StrategyState is the opaque CheckpointableStrategy payload.
	StrategyState json.RawMessage `json:"strategyState,omitempty"`
}

// assignmentState serializes a partition.Assignment, reusing the samr Box
// JSON encoding the trace serializer established.
type assignmentState struct {
	NProcs    int              `json:"nprocs"`
	Units     []partition.Unit `json:"units"`
	Owner     []int            `json:"owner"`
	SplitCost float64          `json:"splitCost"`
}

func encodeAssignment(a *partition.Assignment) *assignmentState {
	if a == nil {
		return nil
	}
	return &assignmentState{NProcs: a.NProcs, Units: a.Units, Owner: a.Owner, SplitCost: a.SplitCost}
}

func (s *assignmentState) decode() *partition.Assignment {
	if s == nil {
		return nil
	}
	return &partition.Assignment{NProcs: s.NProcs, Units: s.Units, Owner: s.Owner, SplitCost: s.SplitCost}
}

// saveRunCheckpoint persists the loop state after interval idx completed.
func saveRunCheckpoint(store *checkpoint.Store, tr *samr.Trace, strat Strategy, nprocs int, ck runCheckpoint) error {
	ck.Trace = tr.Name
	ck.Snapshots = len(tr.Snapshots)
	ck.Strategy = strat.Name()
	ck.NProcs = nprocs
	if cs, ok := strat.(CheckpointableStrategy); ok {
		state, err := cs.CheckpointState()
		if err != nil {
			return fmt.Errorf("core: checkpoint strategy state: %w", err)
		}
		ck.StrategyState = state
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	if _, err := store.Save(ck.NextIndex, payload); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// loadRunCheckpoint finds the latest valid checkpoint matching this run's
// identity. ok is false — with no error — when nothing usable exists, in
// which case the run starts from the beginning.
func loadRunCheckpoint(store *checkpoint.Store, tr *samr.Trace, strat Strategy, nprocs int) (runCheckpoint, bool, error) {
	var ck runCheckpoint
	_, _, err := store.Latest(func(seq int, payload []byte) error {
		var cand runCheckpoint
		if err := json.Unmarshal(payload, &cand); err != nil {
			return fmt.Errorf("undecodable payload: %w", err)
		}
		if cand.Trace != tr.Name || cand.Snapshots != len(tr.Snapshots) {
			return fmt.Errorf("checkpoint is for trace %q with %d snapshots, run has %q with %d",
				cand.Trace, cand.Snapshots, tr.Name, len(tr.Snapshots))
		}
		if cand.Strategy != strat.Name() || cand.NProcs != nprocs {
			return fmt.Errorf("checkpoint is for strategy %q on %d procs, run has %q on %d",
				cand.Strategy, cand.NProcs, strat.Name(), nprocs)
		}
		if cand.NextIndex < 1 || cand.NextIndex > len(tr.Snapshots) || cand.Result == nil {
			return fmt.Errorf("inconsistent checkpoint (nextIndex %d of %d)", cand.NextIndex, len(tr.Snapshots))
		}
		ck = cand
		return nil
	})
	if errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return runCheckpoint{}, false, nil
	}
	if err != nil {
		return runCheckpoint{}, false, err
	}
	if len(ck.StrategyState) > 0 {
		cs, ok := strat.(CheckpointableStrategy)
		if !ok {
			return runCheckpoint{}, false, fmt.Errorf(
				"core: checkpoint carries state for strategy %q but the strategy cannot restore it", ck.Strategy)
		}
		if err := cs.RestoreState(ck.StrategyState); err != nil {
			return runCheckpoint{}, false, fmt.Errorf("core: restore strategy state: %w", err)
		}
	}
	metricResumes.Inc()
	return ck, true, nil
}

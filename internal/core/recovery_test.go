package core

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

// scriptedStrategy replays pre-built assignments in call order, holding the
// last one once the script runs out — a deterministic way to force a
// specific dead assignment followed by a specific recovery assignment.
type scriptedStrategy struct {
	assigns []*partition.Assignment
	labels  []string
	calls   int
}

func (s *scriptedStrategy) Name() string { return "scripted" }

func (s *scriptedStrategy) Assign(*StepContext) (*partition.Assignment, string, error) {
	i := s.calls
	if i >= len(s.assigns) {
		i = len(s.assigns) - 1
	}
	s.calls++
	return s.assigns[i], s.labels[i], nil
}

func gaugeValue(t *testing.T, name string) float64 {
	t.Helper()
	series := telemetry.Default.Snapshot().Find(name)
	if len(series) != 1 {
		t.Fatalf("gauge %s: %d series", name, len(series))
	}
	return series[0].Value
}

// TestRecoveryRefreshesPACQuality forces a mid-interval node death between
// a known dead assignment and a known recovery assignment, and asserts the
// recorded snapshot quality, the published PAC gauges, and the interval
// overhead all describe the assignment that actually finished the interval
// — not the one that died under it.
func TestRecoveryRefreshesPACQuality(t *testing.T) {
	full := testTrace(t)
	tr := &samr.Trace{Name: full.Name, RegridEvery: full.RegridEvery, Snapshots: full.Snapshots[:1]}
	h := tr.Snapshots[0].H

	machine := cluster.Homogeneous(4, 1e5, 512, 100)
	machine.Fail(3, 0)

	dead, err := (partition.GMISPSP{}).Partition(h, samr.UniformWorkModel{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dead.Work()[3] == 0 {
		t.Fatal("dead assignment puts no work on node 3; the failure cannot trigger")
	}
	// The recovery assignment dumps node 3's units onto node 0: alive
	// everywhere, deliberately imbalanced so its quality is distinguishable
	// from the dead assignment's.
	recovered := &partition.Assignment{
		NProcs:    dead.NProcs,
		Units:     dead.Units,
		Owner:     append([]int(nil), dead.Owner...),
		SplitCost: dead.SplitCost,
	}
	for i, o := range recovered.Owner {
		if o == 3 {
			recovered.Owner[i] = 0
		}
	}

	strat := &scriptedStrategy{
		assigns: []*partition.Assignment{dead, recovered},
		labels:  []string{"doomed", "rescue"},
	}
	res, err := Run(tr, strat, RunConfig{Machine: machine, NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.TotalTime, 1) {
		t.Fatal("recovery did not unstick the run")
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	if len(res.Snapshots) != 1 {
		t.Fatalf("%d snapshots, want 1", len(res.Snapshots))
	}
	stat := res.Snapshots[0]
	if stat.Partitioner != "rescue" {
		t.Fatalf("snapshot partitioner = %q, want the recovery label", stat.Partitioner)
	}

	// What the snapshot must describe: the recovery assignment, with
	// migration measured against the assignment it replaced.
	want := partition.EvalQuality(h, recovered, h, dead, 0)
	deadQ := partition.EvalQuality(h, dead, nil, nil, 0)
	if want == deadQ {
		t.Fatal("test is vacuous: recovery quality equals dead quality")
	}
	if stat.Quality != want {
		t.Fatalf("snapshot quality describes the wrong assignment:\n got %+v\nwant %+v", stat.Quality, want)
	}
	if want.Migration == 0 {
		t.Fatal("recovery moved no data; migration refresh untested")
	}

	// The gauges a scraper sees must agree.
	checks := map[string]float64{
		"pragma_core_pac_imbalance_percent":  want.Imbalance,
		"pragma_core_pac_comm_volume":        want.CommVolume,
		"pragma_core_pac_comm_messages":      want.CommMessages,
		"pragma_core_pac_migration_fraction": want.Migration,
		"pragma_core_pac_overhead_ratio":     want.Overhead,
	}
	for name, wantV := range checks {
		if got := gaugeValue(t, name); got != wantV {
			t.Errorf("%s = %g, want %g", name, got, wantV)
		}
	}

	// The interval's overhead must include the recovery redistribution on
	// top of the original partitioning cost.
	splitCost := dead.SplitCost
	if splitCost < 1 {
		splitCost = 1
	}
	partTime := 1e-6 * float64(len(dead.Units)) * splitCost
	recMig := machine.MigrationTime(float64(h.TotalCells()), cluster.DefaultCostModel())
	if diff := stat.Overhead - (partTime + recMig); math.Abs(diff) > 1e-12 {
		t.Errorf("snapshot overhead = %g, want partition %g + recovery migration %g", stat.Overhead, partTime, recMig)
	}
	// And the aggregate imbalance stats must track the refreshed quality.
	if res.MaxImbalance != want.Imbalance || res.AvgImbalance != want.Imbalance {
		t.Errorf("imbalance aggregates (max %g, avg %g) not refreshed to %g",
			res.MaxImbalance, res.AvgImbalance, want.Imbalance)
	}
}

// TestRunBuildsOneCommPlanPerRegrid proves the plan cache removes redundant
// rasterization from the replay loop: a healthy run rasterizes each regrid's
// assignment exactly once — communication stats, per-step ghost volumes,
// and the next cycle's migration diff all share that one build.
func TestRunBuildsOneCommPlanPerRegrid(t *testing.T) {
	tr := testTrace(t)
	machine := cluster.Homogeneous(8, 1e5, 512, 100)
	before := partition.Rasterizations()
	if _, err := Run(tr, Static{P: partition.GMISPSP{}}, RunConfig{Machine: machine, NProcs: 8}); err != nil {
		t.Fatal(err)
	}
	got := partition.Rasterizations() - before
	want := uint64(len(tr.Snapshots))
	if got != want {
		t.Fatalf("run rasterized %d times over %d regrids, want exactly one per regrid", got, want)
	}
}

package stream

import (
	"net/http"
	"strconv"
	"time"

	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// HandlerConfig tunes the events endpoint. Zero values take defaults.
type HandlerConfig struct {
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// MaxPoll caps the long-poll wait (default 60s).
	MaxPoll time.Duration
}

// Handler serves the hub over HTTP:
//
//	GET /...?run=<id>                      SSE stream (text/event-stream)
//	GET /...?run=<id>&after=<seq>          SSE resuming after a cursor
//	GET /...?run=<id>&poll=1&after=<seq>   long-poll JSON fallback
//
// run omitted subscribes to all runs. SSE frames carry the event JSON in
// data:, the hub sequence number in id: (usable as Last-Event-ID /
// ?after= on reconnect) and the event type in event:. When the
// subscriber's buffer overflowed, a synthetic "lagging" event reports how
// many events were lost. The long-poll form waits up to ?timeout= seconds
// (bounded by MaxPoll) for events past the cursor and responds with
// {"events":[...],"cursor":N,"lagged":bool}; clients resume from cursor.
func Handler(hub *Hub, cfg HandlerConfig) http.Handler {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.MaxPoll <= 0 {
		cfg.MaxPoll = 60 * time.Second
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMethodNotAllowed)
			w.Write([]byte(`{"error":"GET only"}` + "\n"))
			return
		}
		q := req.URL.Query()
		run := q.Get("run")
		var after uint64
		if s := q.Get("after"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				w.Write([]byte(`{"error":"bad after cursor"}` + "\n"))
				return
			}
			after = v
		} else if s := req.Header.Get("Last-Event-ID"); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				after = v
			}
		}
		if q.Get("poll") != "" {
			longPoll(hub, cfg, w, req, run, after)
			return
		}
		serveSSE(hub, cfg, w, req, run, after)
	})
}

func longPoll(hub *Hub, cfg HandlerConfig, w http.ResponseWriter, req *http.Request, run string, after uint64) {
	wait := 30 * time.Second
	if s := req.URL.Query().Get("timeout"); s != "" {
		if secs, err := strconv.ParseFloat(s, 64); err == nil && secs >= 0 {
			wait = time.Duration(secs * float64(time.Second))
		}
	}
	if wait > cfg.MaxPoll {
		wait = cfg.MaxPoll
	}

	events, cursor, lagged := hub.Since(run, after)
	if len(events) == 0 && wait > 0 {
		// Nothing buffered past the cursor: subscribe and wait for the
		// first matching event (or timeout / client gone).
		sub := hub.Subscribe(run, after)
		timer := time.NewTimer(wait)
		select {
		case e, ok := <-sub.C:
			if ok {
				events = append(events, e)
				// Drain whatever arrived in the same instant.
				for len(events) < 64 {
					select {
					case e, ok := <-sub.C:
						if !ok {
							break
						}
						events = append(events, e)
						continue
					default:
					}
					break
				}
				cursor = events[len(events)-1].Seq
			}
		case <-timer.C:
		case <-req.Context().Done():
		}
		timer.Stop()
		lagged = lagged || sub.Dropped() > 0
		hub.Unsubscribe(sub)
	}

	w.Header().Set("Content-Type", "application/json")
	b := jsonenc.Get()
	b.Raw(`{"events":[`)
	for i := range events {
		if i > 0 {
			b.Byte(',')
		}
		events[i].AppendJSON(b)
	}
	b.Raw(`],"cursor":`)
	b.Uint(cursor)
	b.Raw(`,"lagged":`)
	b.Bool(lagged)
	b.Raw("}\n")
	w.Write(b.B)
	jsonenc.Put(b)
}

func serveSSE(hub *Hub, cfg HandlerConfig, w http.ResponseWriter, req *http.Request, run string, after uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotImplemented)
		w.Write([]byte(`{"error":"streaming unsupported; use poll=1"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := hub.Subscribe(run, after)
	defer hub.Unsubscribe(sub)

	var reported uint64 // dropped count already told to the client
	heartbeat := time.NewTicker(cfg.Heartbeat)
	defer heartbeat.Stop()

	writeEvent := func(e Event) bool {
		b := jsonenc.Get()
		b.Raw("id: ")
		b.Uint(e.Seq)
		b.Raw("\nevent: ")
		b.Raw(e.Type)
		b.Raw("\ndata: ")
		e.AppendJSON(b)
		b.Raw("\n\n")
		_, err := w.Write(b.B)
		jsonenc.Put(b)
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	writeLagging := func(dropped uint64) bool {
		b := jsonenc.Get()
		b.Raw("event: lagging\ndata: {\"dropped\":")
		b.Uint(dropped)
		b.Raw("}\n\n")
		_, err := w.Write(b.B)
		jsonenc.Put(b)
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for {
		// Report buffer overflow as soon as it is observed, so a lagging
		// client knows its view has a gap and can re-sync via /sched/status.
		if d := sub.Dropped(); d > reported {
			if !writeLagging(d - reported) {
				return
			}
			reported = d
		}
		select {
		case e, ok := <-sub.C:
			if !ok {
				return // hub closed
			}
			if !writeEvent(e) {
				return
			}
		case <-heartbeat.C:
			if _, err := w.Write([]byte(": keep-alive\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

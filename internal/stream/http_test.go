package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed SSE event.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readFrames parses n SSE frames from r, failing the test on timeout
// (the reader runs in a goroutine; the deadline is enforced by the
// caller's channel select).
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	frames := make([]sseFrame, 0, n)
	var cur sseFrame
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE stream: %v (got %d/%d frames)", err, len(frames), n)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.data != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	return frames
}

func TestSSEObservesEveryTransition(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	srv := httptest.NewServer(Handler(h, HandlerConfig{Heartbeat: 100 * time.Millisecond}))
	defer srv.Close()

	// The "queued" event fires before the client attaches; replay must
	// deliver it anyway.
	h.Publish(Event{Run: "run-1", Type: TypeState, State: "queued"})

	resp, err := http.Get(srv.URL + "?run=run-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}

	type result struct {
		frames []sseFrame
	}
	got := make(chan result, 1)
	go func() {
		r := bufio.NewReader(resp.Body)
		got <- result{readFrames(t, r, 4)}
	}()

	// Publish the rest of the lifecycle after the subscriber attached.
	// Small sleep lets the SSE handler finish its subscribe, though replay
	// makes the test correct either way.
	time.Sleep(50 * time.Millisecond)
	h.Publish(Event{Run: "run-1", Type: TypeState, State: "running"})
	h.Publish(Event{Run: "run-1", Type: TypeRegrid, Cycle: 1, Partitioner: "SP-ISP"})
	h.Publish(Event{Run: "run-1", Type: TypeState, State: "done"})

	select {
	case r := <-got:
		var states []string
		for _, f := range r.frames {
			var e Event
			if err := json.Unmarshal([]byte(f.data), &e); err != nil {
				t.Fatalf("bad event JSON %q: %v", f.data, err)
			}
			if f.id != fmt.Sprint(e.Seq) {
				t.Errorf("frame id %q != seq %d", f.id, e.Seq)
			}
			if f.event != e.Type {
				t.Errorf("frame event %q != type %q", f.event, e.Type)
			}
			if e.Type == TypeState {
				states = append(states, e.State)
			}
		}
		want := []string{"queued", "running", "done"}
		if len(states) != 3 || states[0] != want[0] || states[1] != want[1] || states[2] != want[2] {
			t.Errorf("observed states %v, want %v", states, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE frames")
	}
}

func TestSSEResumeWithLastEventID(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	srv := httptest.NewServer(Handler(h, HandlerConfig{}))
	defer srv.Close()

	s1 := h.Publish(Event{Run: "r", Type: TypeState, State: "queued"})
	h.Publish(Event{Run: "r", Type: TypeState, State: "running"})

	req, _ := http.NewRequest("GET", srv.URL+"?run=r", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(s1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(t, bufio.NewReader(resp.Body), 1)
	var e Event
	json.Unmarshal([]byte(frames[0].data), &e)
	if e.State != "running" {
		t.Errorf("resumed state %q, want running (queued was before cursor)", e.State)
	}
}

func TestLongPollImmediateAndWait(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	srv := httptest.NewServer(Handler(h, HandlerConfig{}))
	defer srv.Close()

	type pollResp struct {
		Events []Event `json:"events"`
		Cursor uint64  `json:"cursor"`
		Lagged bool    `json:"lagged"`
	}
	poll := func(query string) pollResp {
		t.Helper()
		resp, err := http.Get(srv.URL + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q, want application/json", ct)
		}
		var pr pollResp
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	// Buffered events return immediately.
	h.Publish(Event{Run: "r", Type: TypeState, State: "queued"})
	pr := poll("?run=r&poll=1&timeout=5")
	if len(pr.Events) != 1 || pr.Events[0].State != "queued" {
		t.Fatalf("immediate poll: %+v", pr)
	}

	// Nothing new: the next poll waits for the event.
	done := make(chan pollResp, 1)
	go func() { done <- poll(fmt.Sprintf("?run=r&poll=1&after=%d&timeout=10", pr.Cursor)) }()
	time.Sleep(100 * time.Millisecond)
	h.Publish(Event{Run: "r", Type: TypeState, State: "running"})
	select {
	case pr2 := <-done:
		if len(pr2.Events) != 1 || pr2.Events[0].State != "running" {
			t.Fatalf("waited poll: %+v", pr2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on publish")
	}

	// Timeout path: empty event list, cursor intact.
	pr3 := poll(fmt.Sprintf("?run=r&poll=1&after=%d&timeout=0.1", h.Seq()))
	if len(pr3.Events) != 0 {
		t.Fatalf("timeout poll returned events: %+v", pr3)
	}
	if pr3.Cursor != h.Seq() {
		t.Errorf("timeout poll cursor %d, want %d", pr3.Cursor, h.Seq())
	}
}

func TestHandlerRejectsBadInput(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	srv := httptest.NewServer(Handler(h, HandlerConfig{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?after=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor: status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type %q, want application/json", ct)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", post.StatusCode)
	}
}

package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/jsonenc"
)

func TestPublishSubscribeOrder(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	sub := h.Subscribe("run-1", 0)
	for i := 0; i < 5; i++ {
		h.Publish(Event{Run: "run-1", Type: TypeState, State: fmt.Sprintf("s%d", i)})
	}
	for i := 0; i < 5; i++ {
		select {
		case e := <-sub.C:
			if want := fmt.Sprintf("s%d", i); e.State != want {
				t.Errorf("event %d: state %q, want %q", i, e.State, want)
			}
			if e.Seq != uint64(i+1) {
				t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
}

func TestRunFilter(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	sub := h.Subscribe("run-b", 0)
	h.Publish(Event{Run: "run-a", Type: TypeState, State: "running"})
	h.Publish(Event{Run: "run-b", Type: TypeState, State: "queued"})
	h.Publish(Event{Run: "run-a", Type: TypeState, State: "done"})
	select {
	case e := <-sub.C:
		if e.Run != "run-b" {
			t.Errorf("got event for %q, want run-b", e.Run)
		}
	case <-time.After(time.Second):
		t.Fatal("timed out")
	}
	select {
	case e := <-sub.C:
		t.Errorf("unexpected second event: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHistoryReplayOnSubscribe(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	// Events published BEFORE the subscriber attaches must still be seen:
	// this is what makes submit-then-watch race-free.
	h.Publish(Event{Run: "r", Type: TypeState, State: "queued"})
	h.Publish(Event{Run: "r", Type: TypeState, State: "running"})
	sub := h.Subscribe("r", 0)
	states := []string{}
	for i := 0; i < 2; i++ {
		select {
		case e := <-sub.C:
			states = append(states, e.State)
		case <-time.After(time.Second):
			t.Fatal("timed out on replay")
		}
	}
	if states[0] != "queued" || states[1] != "running" {
		t.Errorf("replayed states %v, want [queued running]", states)
	}
	// Live events continue after replay.
	h.Publish(Event{Run: "r", Type: TypeState, State: "done"})
	select {
	case e := <-sub.C:
		if e.State != "done" {
			t.Errorf("live state %q, want done", e.State)
		}
	case <-time.After(time.Second):
		t.Fatal("timed out on live event")
	}
}

func TestSubscribeAfterCursor(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	s1 := h.Publish(Event{Run: "r", Type: TypeState, State: "queued"})
	h.Publish(Event{Run: "r", Type: TypeState, State: "running"})
	sub := h.Subscribe("r", s1)
	select {
	case e := <-sub.C:
		if e.State != "running" {
			t.Errorf("state %q, want running (cursor should skip queued)", e.State)
		}
	case <-time.After(time.Second):
		t.Fatal("timed out")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub(Config{SubBuffer: 4})
	defer h.Close()
	sub := h.Subscribe("", 0)
	// Publish far more than the buffer without draining; every Publish
	// must return promptly.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			h.Publish(Event{Run: "r", Type: TypeState, State: "x"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if d := sub.Dropped(); d != 96 {
		t.Errorf("dropped %d, want 96 (100 published, buffer 4)", d)
	}
	// The buffered 4 are still readable.
	for i := 0; i < 4; i++ {
		select {
		case <-sub.C:
		case <-time.After(time.Second):
			t.Fatal("buffered event missing")
		}
	}
}

func TestRingWrapMarksLagged(t *testing.T) {
	h := NewHub(Config{History: 8})
	defer h.Close()
	var first uint64
	for i := 0; i < 20; i++ {
		seq := h.Publish(Event{Run: "r", Type: TypeState, State: "x"})
		if i == 0 {
			first = seq
		}
	}
	events, cursor, lagged := h.Since("r", first)
	if !lagged {
		t.Error("want lagged after ring wrap")
	}
	if len(events) != 8 {
		t.Errorf("got %d events, want 8 (ring size)", len(events))
	}
	if cursor != 20 {
		t.Errorf("cursor %d, want 20", cursor)
	}
	// A cursor inside the retained window is not lagged.
	if _, _, lagged := h.Since("r", 15); lagged {
		t.Error("cursor within window wrongly marked lagged")
	}
}

func TestSinceAllRunsMergesInOrder(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	h.Publish(Event{Run: "a", Type: TypeState, State: "s1"})
	h.Publish(Event{Run: "b", Type: TypeState, State: "s2"})
	h.Publish(Event{Run: "a", Type: TypeState, State: "s3"})
	events, cursor, _ := h.Since("", 0)
	if len(events) != 3 || cursor != 3 {
		t.Fatalf("got %d events cursor %d, want 3/3", len(events), cursor)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d out of order: seq %d", i, e.Seq)
		}
	}
}

func TestUnsubscribeIdempotentAndClose(t *testing.T) {
	h := NewHub(Config{})
	sub := h.Subscribe("", 0)
	h.Unsubscribe(sub)
	h.Unsubscribe(sub) // must not panic
	if _, ok := <-sub.C; ok {
		t.Error("channel still open after Unsubscribe")
	}
	sub2 := h.Subscribe("", 0)
	h.Close()
	h.Close() // idempotent
	if _, ok := <-sub2.C; ok {
		t.Error("channel still open after hub Close")
	}
	// Publish after close is a no-op, subscribe returns a closed sub.
	h.Publish(Event{Run: "r"})
	sub3 := h.Subscribe("", 0)
	if _, ok := <-sub3.C; ok {
		t.Error("subscribe after close returned an open channel")
	}
}

func TestEventAppendJSONMatchesEncodingJSON(t *testing.T) {
	cases := []Event{
		{Seq: 1, Run: "run-000001", Type: TypeState, State: "queued", Time: time.Date(2026, 8, 8, 1, 2, 3, 0, time.UTC)},
		{Seq: 2, Run: "r", Type: TypeRegrid, Cycle: 7, Partitioner: "G-MISP+SP", Time: time.Unix(12345, 678).UTC()},
		{Seq: 3, Run: "r \"quoted\"", Type: TypeState, State: "failed", Error: "boom:\nline2", Time: time.Unix(0, 1).UTC()},
	}
	for _, e := range cases {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b := jsonenc.Get()
		e.AppendJSON(b)
		if !bytes.Equal(b.B, want) {
			t.Errorf("AppendJSON = %s, want %s", b.B, want)
		}
		jsonenc.Put(b)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Config{SubBuffer: 8, History: 16})
	defer h.Close()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish(Event{Run: fmt.Sprintf("run-%d", i%5), Type: TypeState, State: "x"})
			}
		}(p)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub := h.Subscribe(fmt.Sprintf("run-%d", i%5), 0)
				for j := 0; j < 3; j++ {
					select {
					case <-sub.C:
					case <-time.After(10 * time.Millisecond):
					}
				}
				h.Unsubscribe(sub)
				h.Since("", 0)
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkServeEventPublish(b *testing.B) {
	h := NewHub(Config{SubBuffer: 1}) // tiny buffer: measures the drop path too
	defer h.Close()
	h.Subscribe("r", 0)
	e := Event{Run: "r", Type: TypeState, State: "running", Time: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Publish(e)
	}
}

// Package stream turns the scheduler's polling surface into push. A Hub
// fans run lifecycle events — state transitions and regrid-cycle traces —
// out to any number of subscribers over Server-Sent Events or long-poll,
// so clients watching a run stop hammering /sched/status.
//
// The cardinal rule is that the publisher never waits: Publish is called
// from the scheduler's admission and completion paths, so a slow or stuck
// subscriber must cost the scheduler nothing. Each subscriber owns a
// bounded buffer; when it overflows, events are dropped and the
// subscriber is marked lagging (it learns how many it missed) instead of
// the scheduler blocking. A bounded per-run history ring lets long-poll
// clients and late SSE attachers catch up on what they missed, with the
// same honesty: if the ring has wrapped past their cursor, they are told
// they lagged rather than silently losing events.
package stream

import (
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// Event types.
const (
	// TypeState marks a run lifecycle transition (queued, running, done,
	// failed, drained, cancelled).
	TypeState = "state"
	// TypeRegrid marks one adaptation cycle inside a running run.
	TypeRegrid = "regrid"
)

// Event is one run lifecycle occurrence. Seq is assigned by the Hub,
// totally ordered across all runs, and usable as a resume cursor.
type Event struct {
	Seq         uint64    `json:"seq"`
	Run         string    `json:"run"`
	Type        string    `json:"type"`
	State       string    `json:"state,omitempty"`
	Cycle       int       `json:"cycle,omitempty"`
	Partitioner string    `json:"partitioner,omitempty"`
	Error       string    `json:"error,omitempty"`
	Time        time.Time `json:"time"`
}

// AppendJSON appends the event's JSON document (matching encoding/json's
// rendering of Event) without allocating.
func (e *Event) AppendJSON(b *jsonenc.Buffer) {
	b.Raw(`{"seq":`)
	b.Uint(e.Seq)
	b.Raw(`,"run":`)
	b.String(e.Run)
	b.Raw(`,"type":`)
	b.String(e.Type)
	if e.State != "" {
		b.Raw(`,"state":`)
		b.String(e.State)
	}
	if e.Cycle != 0 {
		b.Raw(`,"cycle":`)
		b.Int(int64(e.Cycle))
	}
	if e.Partitioner != "" {
		b.Raw(`,"partitioner":`)
		b.String(e.Partitioner)
	}
	if e.Error != "" {
		b.Raw(`,"error":`)
		b.String(e.Error)
	}
	b.Raw(`,"time":`)
	b.Time(e.Time)
	b.Byte('}')
}

// Sub is one subscription. Read events from C; check Dropped when done
// (or when the hub signals a gap) to learn how many events the
// subscription missed because its buffer was full.
type Sub struct {
	// C delivers events in publish order. Closed by Unsubscribe or hub
	// Close.
	C <-chan Event

	hub     *Hub
	ch      chan Event
	run     string // "" = all runs
	id      uint64
	dropped uint64 // guarded by hub.mu
	closed  bool   // guarded by hub.mu
}

// Dropped returns how many events this subscription has lost to buffer
// overflow so far.
func (s *Sub) Dropped() uint64 {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.dropped
}

// Config sizes a Hub. Zero values take defaults.
type Config struct {
	// SubBuffer is each subscriber's channel capacity (default 64).
	// When full, new events for that subscriber are dropped and counted.
	SubBuffer int
	// History is the per-run catch-up ring size (default 256): how far
	// back a long-poll cursor or late SSE attach can reach.
	History int
}

// Hub routes published events to subscribers. All methods are safe for
// concurrent use. Publish never blocks.
type Hub struct {
	mu      sync.Mutex
	cfg     Config
	seq     uint64
	nextSub uint64
	subs    map[uint64]*Sub
	history map[string]*ring
	order   []string // history insertion order, for bounded eviction
	closed  bool
}

// maxRuns bounds how many runs keep history before the oldest is evicted;
// it tracks the scheduler's own retention (KeepFinished) loosely — the
// ring is a catch-up window, not an archive.
const maxRuns = 4096

// ring is a fixed-size overwrite-oldest event buffer for one run.
type ring struct {
	buf   []Event
	start int // index of oldest
	n     int
}

func (r *ring) push(e Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// since appends to out the buffered events with Seq > after, in order,
// and reports whether the ring has wrapped past the cursor (events with
// Seq > after were evicted).
func (r *ring) since(after uint64, out []Event) ([]Event, bool) {
	lagged := false
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.Seq <= after {
			continue
		}
		out = append(out, e)
	}
	if r.n > 0 {
		oldest := r.buf[r.start].Seq
		// A gap exists if the cursor predates the oldest retained event
		// by more than one sequence step *for this run*. Seq is global,
		// so the precise per-run test is: cursor < oldest-1 may still be
		// fine (other runs' events fill the numeric gap). The honest
		// check is whether the run's first retained event is the run's
		// genuinely first-after-cursor; the ring cannot know once it has
		// wrapped, so it reports lagged whenever it has wrapped and the
		// cursor is older than everything retained.
		if r.n == len(r.buf) && after != 0 && after < oldest-1 {
			lagged = true
		}
	}
	return out, lagged
}

// NewHub returns a hub with the given sizing.
func NewHub(cfg Config) *Hub {
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = 64
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	return &Hub{
		cfg:     cfg,
		subs:    make(map[uint64]*Sub),
		history: make(map[string]*ring),
	}
}

// Publish stamps the event with the next sequence number and time (when
// unset) and delivers it to every matching subscriber without blocking:
// a subscriber whose buffer is full loses the event and has its dropped
// count incremented. The stamped sequence number is returned.
func (h *Hub) Publish(e Event) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.seq
	}
	h.seq++
	e.Seq = h.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	r := h.history[e.Run]
	if r == nil {
		if len(h.order) >= maxRuns {
			delete(h.history, h.order[0])
			h.order = h.order[1:]
		}
		r = &ring{buf: make([]Event, h.cfg.History)}
		h.history[e.Run] = r
		h.order = append(h.order, e.Run)
	}
	r.push(e)
	for _, s := range h.subs {
		if s.run != "" && s.run != e.Run {
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
	return h.seq
}

// Subscribe registers for events of one run (or all runs when run is "").
// Events already buffered with Seq > after are replayed into the
// subscription first, so an attach races nothing: the caller sees every
// event from its cursor onward, in order. If the history ring has already
// evicted part of that range, the subscription starts with what remains
// and the gap is counted in Dropped.
func (h *Hub) Subscribe(run string, after uint64) *Sub {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &Sub{hub: h, run: run, ch: make(chan Event, h.cfg.SubBuffer)}
	s.C = s.ch
	if h.closed {
		s.closed = true
		close(s.ch)
		return s
	}
	h.nextSub++
	s.id = h.nextSub
	h.subs[s.id] = s

	// Replay buffered history into the subscription's channel. The
	// channel holds SubBuffer events; replay beyond that counts as
	// dropped, same as live overflow.
	replay := func(r *ring) {
		events, lagged := r.since(after, nil)
		if lagged {
			s.dropped++
		}
		for _, e := range events {
			select {
			case s.ch <- e:
			default:
				s.dropped++
			}
		}
	}
	if run != "" {
		if r := h.history[run]; r != nil {
			replay(r)
		}
	} else if after > 0 {
		// All-runs catch-up: merge every ring's tail in seq order.
		var all []Event
		for _, r := range h.history {
			var lagged bool
			all, lagged = r.since(after, all)
			if lagged {
				s.dropped++
			}
		}
		sortEvents(all)
		for _, e := range all {
			select {
			case s.ch <- e:
			default:
				s.dropped++
			}
		}
	}
	return s
}

// sortEvents orders by Seq (insertion sort: catch-up batches are small
// and mostly ordered already).
func sortEvents(events []Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].Seq < events[j-1].Seq; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// Unsubscribe removes the subscription and closes its channel. Safe to
// call more than once.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(h.subs, s.id)
	close(s.ch)
}

// Since returns the buffered events for one run with Seq > after (run ==
// "" merges all runs), plus the current sequence cursor and whether the
// requested range was partially evicted. This is the long-poll read path.
func (h *Hub) Since(run string, after uint64) (events []Event, cursor uint64, lagged bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if run != "" {
		if r := h.history[run]; r != nil {
			events, lagged = r.since(after, nil)
		}
	} else {
		for _, r := range h.history {
			var l bool
			events, l = r.since(after, events)
			lagged = lagged || l
		}
		sortEvents(events)
	}
	return events, h.seq, lagged
}

// Seq returns the hub's current (latest assigned) sequence number.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Close shuts the hub: all subscriptions are closed and further Publish
// calls are ignored.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, s := range h.subs {
		s.closed = true
		close(s.ch)
		delete(h.subs, id)
	}
}

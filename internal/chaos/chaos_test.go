package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection with the client
// side chaos-wrapped.
func pipePair(cfg Config) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, cfg), b
}

func TestZeroConfigIsTransparent(t *testing.T) {
	c, peer := pipePair(Config{})
	defer c.Close()
	defer peer.Close()
	go func() {
		c.Write([]byte("hello"))
	}()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	if c.Faults() != 0 {
		t.Fatalf("faults = %d", c.Faults())
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	// The same seed must produce the same drop decisions for the same
	// operation sequence.
	run := func() []bool {
		in := newInjector(Config{Seed: 42, DropRate: 0.3})
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.spend(0.3)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %v vs %v", i, a, b)
		}
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	in := newInjector(Config{Seed: 7})
	orig := []byte(`{"op":"register","port":"p"}`)
	cor := in.corrupt(orig)
	if bytes.Equal(orig, cor) {
		t.Fatal("corrupt returned identical bytes")
	}
	diff := 0
	for i := range orig {
		if orig[i] != cor[i] {
			diff++
			if x := orig[i] ^ cor[i]; x&(x-1) != 0 {
				t.Fatalf("more than one bit flipped in byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
}

func TestDropKillsConnection(t *testing.T) {
	c, peer := pipePair(Config{Seed: 1, DropRate: 1})
	defer peer.Close()
	if _, err := c.Write([]byte("x")); err != ErrInjectedDrop {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	// The underlying connection is closed too.
	if _, err := c.Conn.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still writable after injected drop")
	}
	if c.Faults() != 1 {
		t.Fatalf("faults = %d", c.Faults())
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := newInjector(Config{Seed: 3, DropRate: 1, MaxFaults: 2})
	hits := 0
	for i := 0; i < 10; i++ {
		if in.spend(1) {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("spent %d faults, want 2 (budgeted)", hits)
	}
}

func TestPartialWritesStillDeliverEverything(t *testing.T) {
	c, peer := pipePair(Config{Seed: 5, PartialWrites: true, MaxWriteChunk: 3})
	defer c.Close()
	defer peer.Close()
	payload := bytes.Repeat([]byte("abcdefg"), 20)
	go func() {
		if n, err := c.Write(payload); err != nil || n != len(payload) {
			t.Errorf("write n=%d err=%v", n, err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mangled by partial writes")
	}
}

func TestLatencyDelaysOps(t *testing.T) {
	c, peer := pipePair(Config{Latency: 30 * time.Millisecond})
	defer c.Close()
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("write returned after %v, want >= ~30ms", el)
	}
}

func TestWrapListenerSharesInjector(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := WrapListener(ln, Config{Seed: 9, DropRate: 1, MaxFaults: 1})
	defer cl.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := cl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 8)
				c.Read(buf)
			}(c)
		}
	}()
	// Two client connections; the server side has a one-fault budget, so
	// exactly one read is dropped across them.
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("ping"))
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for cl.Faults() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("faults = %d, want 1", cl.Faults())
		}
		time.Sleep(time.Millisecond)
	}
	cl.Close()
	<-done
}

func TestFaultPointFiresExactlyOnce(t *testing.T) {
	fp := &FaultPoint{FailAt: 3}
	for i := 1; i <= 6; i++ {
		err := fp.Check()
		if i == 3 && !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("call %d: err = %v, want ErrInjectedCrash", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if !fp.Fired() || fp.Calls() != 6 {
		t.Fatalf("fired = %v, calls = %d, want true/6", fp.Fired(), fp.Calls())
	}
}

func TestFaultPointDisarmed(t *testing.T) {
	fp := &FaultPoint{}
	for i := 0; i < 10; i++ {
		if err := fp.Check(); err != nil {
			t.Fatalf("disarmed fault point fired: %v", err)
		}
	}
	if fp.Fired() {
		t.Fatal("disarmed fault point reports fired")
	}
}

// Package chaos provides deterministic fault injection for the agent
// control network. It wraps net.Conn and net.Listener so that tests (and
// the pragma-node emulator) can subject wire traffic to latency, jitter,
// partial writes, byte corruption and connection drops drawn from a seeded
// RNG — failures become reproducible, first-class events instead of
// irreproducible flakes.
//
// All wrapped connections created from one Config share a single fault
// stream, so a fixed Seed yields a fixed fault sequence for a fixed
// operation order. Concurrency still perturbs operation order; tests that
// need strict determinism should drive the connection from one goroutine.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDrop is the error returned by reads and writes on a
// connection the injector decided to kill.
var ErrInjectedDrop = errors.New("chaos: injected connection drop")

// ErrInjectedCrash is the error a FaultPoint returns when it fires —
// process-death emulation for components that are not network connections.
var ErrInjectedCrash = errors.New("chaos: injected crash")

// FaultPoint kills a run at a chosen execution point: the FailAt-th call
// to Check returns ErrInjectedCrash, every other call is free. It extends
// the package's deterministic fault injection beyond the wire — a replay
// loop that calls Check once per regrid interval crashes reproducibly at
// one interval, which is how the crash-recovery tests kill a run
// mid-flight without killing the test process.
type FaultPoint struct {
	// FailAt is the 1-based call index that crashes; 0 or negative never
	// fires.
	FailAt int

	mu    sync.Mutex
	calls int
	fired bool
}

// Check counts one execution of the guarded point and returns
// ErrInjectedCrash exactly when the FailAt-th call is reached.
func (f *FaultPoint) Check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.FailAt > 0 && f.calls == f.FailAt {
		f.fired = true
		return ErrInjectedCrash
	}
	return nil
}

// Fired reports whether the crash has been injected.
func (f *FaultPoint) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Calls reports how many times Check has run.
func (f *FaultPoint) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Config parameterizes the injected faults. The zero value injects
// nothing and wrapping with it is transparent.
type Config struct {
	// Seed seeds the fault RNG; the same seed replays the same fault
	// sequence (for a deterministic operation order).
	Seed int64
	// Latency is a fixed delay added to every read and write.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) on top of Latency.
	Jitter time.Duration
	// DropRate is the per-operation probability in [0,1] that the
	// connection is closed and the operation fails with ErrInjectedDrop.
	DropRate float64
	// CorruptRate is the per-write probability in [0,1] that one byte of
	// the buffer is flipped before reaching the wire.
	CorruptRate float64
	// PartialWrites splits every write into chunks of at most
	// MaxWriteChunk bytes, exercising short-write handling in encoders.
	PartialWrites bool
	// MaxWriteChunk bounds chunk size when PartialWrites is set (default 7).
	MaxWriteChunk int
	// MaxFaults caps the total number of injected drops and corruptions
	// across all connections sharing this injector; once spent the wrapper
	// becomes transparent apart from latency. 0 means unlimited.
	MaxFaults int
}

// injector is the shared seeded fault source behind a set of wrapped
// connections.
type injector struct {
	cfg    Config
	mu     sync.Mutex
	rng    *rand.Rand
	faults int
}

func newInjector(cfg Config) *injector {
	if cfg.PartialWrites && cfg.MaxWriteChunk <= 0 {
		cfg.MaxWriteChunk = 7
	}
	return &injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// delay draws the latency+jitter pause for one operation.
func (in *injector) delay() time.Duration {
	d := in.cfg.Latency
	if in.cfg.Jitter > 0 {
		in.mu.Lock()
		d += time.Duration(in.rng.Int63n(int64(in.cfg.Jitter)))
		in.mu.Unlock()
	}
	return d
}

// spend rolls a fault with the given probability, consuming fault budget
// on a hit.
func (in *injector) spend(rate float64) bool {
	if rate <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxFaults > 0 && in.faults >= in.cfg.MaxFaults {
		return false
	}
	if in.rng.Float64() >= rate {
		return false
	}
	in.faults++
	return true
}

// corrupt flips one RNG-chosen byte of a copy of p.
func (in *injector) corrupt(p []byte) []byte {
	if len(p) == 0 {
		return p
	}
	in.mu.Lock()
	i := in.rng.Intn(len(p))
	bit := byte(1) << uint(in.rng.Intn(8))
	in.mu.Unlock()
	q := make([]byte, len(p))
	copy(q, p)
	q[i] ^= bit
	return q
}

// Faults reports how many drops and corruptions have been injected so far.
func (in *injector) count() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// Conn is a net.Conn with fault injection on Read and Write. Deadlines,
// addresses and Close pass through to the wrapped connection.
type Conn struct {
	net.Conn
	in *injector
}

// Wrap wraps a single connection with its own injector.
func Wrap(c net.Conn, cfg Config) *Conn {
	return &Conn{Conn: c, in: newInjector(cfg)}
}

// Faults reports the injected fault count of this connection's injector.
func (c *Conn) Faults() int { return c.in.count() }

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if d := c.in.delay(); d > 0 {
		time.Sleep(d)
	}
	if c.in.spend(c.in.cfg.DropRate) {
		c.Conn.Close()
		return 0, ErrInjectedDrop
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if d := c.in.delay(); d > 0 {
		time.Sleep(d)
	}
	if c.in.spend(c.in.cfg.DropRate) {
		c.Conn.Close()
		return 0, ErrInjectedDrop
	}
	if c.in.spend(c.in.cfg.CorruptRate) {
		p = c.in.corrupt(p)
	}
	if !c.in.cfg.PartialWrites {
		return c.Conn.Write(p)
	}
	// Feed the wire in short chunks; total written still covers p unless
	// the underlying connection fails mid-stream.
	written := 0
	for written < len(p) {
		end := written + c.in.cfg.MaxWriteChunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps a net.Listener so every accepted connection shares one
// seeded injector.
type Listener struct {
	net.Listener
	in *injector
}

// WrapListener wraps ln; all accepted connections draw faults from the
// same stream seeded by cfg.Seed.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, in: newInjector(cfg)}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c, in: l.in}, nil
}

// Faults reports the injected fault count across all accepted connections.
func (l *Listener) Faults() int { return l.in.count() }

// Dialer returns a dial function producing chaos-wrapped TCP connections;
// it plugs into the agent client's WithDialer option. All connections it
// returns share one injector, so reconnects continue the fault stream
// rather than restarting it.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	in := newInjector(cfg)
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &Conn{Conn: c, in: in}, nil
	}
}

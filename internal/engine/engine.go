// Package engine executes a partitioned SAMR timestep loop as an actual
// message-passing program: one worker per processor owns its assigned grid
// units, computes over them, and exchanges ghost messages with its
// neighbors through the agents Message Center. Where internal/cluster
// *models* the cost of a distributed run, this package *emulates* one —
// real concurrent workers, real messages, real synchronization — so the
// communication patterns the partition package predicts can be observed,
// counted and verified in a running system. Workers speak the agents.Port
// interface, so the same engine runs in-process or across TCP clients
// (multi-node emulation).
//
// Runs are supervised: a worker error aborts the whole run instead of
// deadlocking the barrier, an optional step deadline turns a stalled or
// killed worker into a LostWorkersError naming the missing processors, and
// RunRecovering retries a failed interval on the survivors with the dead
// processors' work remapped (RemapOntoSurvivors).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// ghostPayload is the body of one ghost-exchange message.
type ghostPayload struct {
	Step  int     `json:"step"`
	Pair  int     `json:"pair"`
	Faces float64 `json:"faces"`
	// Checksum carries the sender's running computation digest so receipt
	// is observable data flow, not just a signal.
	Checksum uint64 `json:"checksum"`
}

// WorkerReport summarizes one worker's execution.
type WorkerReport struct {
	Proc          int
	Units         int
	WorkPerformed float64
	MessagesSent  int
	MessagesRecv  int
	FacesSent     float64
	// Checksum digests the worker's computation and everything it
	// received; it makes runs comparable for determinism checks.
	Checksum uint64
	// GhostsDropped counts rejected ghost messages: stale steps, absurdly
	// early steps, and duplicate (step, pair) deliveries — replayed or
	// corrupted traffic that must not grow memory or double-count digests.
	GhostsDropped int
}

// Report summarizes a full engine run.
type Report struct {
	Steps   int
	Workers []WorkerReport
}

// TotalMessages returns the number of ghost messages delivered per run.
func (r Report) TotalMessages() int {
	n := 0
	for _, w := range r.Workers {
		n += w.MessagesRecv
	}
	return n
}

// FaultMode selects the kind of worker fault WithWorkerFault injects — the
// engine-level counterpart of package chaos's wire faults.
type FaultMode int

const (
	// FaultError makes the worker return an error at the faulted step (a
	// failed computation).
	FaultError FaultMode = iota + 1
	// FaultStall makes the worker stop processing messages at the faulted
	// step without exiting (a hung process); only run abortion releases it.
	FaultStall
	// FaultCrash makes the worker exit silently before signaling the
	// barrier (a killed process); detection is the supervisor's job.
	FaultCrash
)

type workerFault struct {
	step int
	mode FaultMode
}

type options struct {
	stepDeadline time.Duration
	suffix       string
	faults       map[int]workerFault
}

// Option configures an engine's supervision behavior.
type Option func(*options)

// WithStepDeadline bounds how long the coordinator waits for a step's
// barriers and (at twice the value, as a backstop) how long a worker waits
// for its ghosts and proceed token. When the deadline expires the run
// fails with a LostWorkersError naming the processors that went silent
// instead of hanging. 0 (the default) disables deadlines; worker errors
// still abort the run.
func WithStepDeadline(d time.Duration) Option {
	return func(o *options) { o.stepDeadline = d }
}

// WithPortSuffix namespaces the engine's mailbox names so a recovery
// engine can be wired on a Center whose previous engine already claimed
// the default ports.
func WithPortSuffix(s string) Option {
	return func(o *options) { o.suffix = s }
}

// WithWorkerFault injects a deterministic fault into one worker at the
// given step — reproducible crash rehearsal for the supervision machinery.
func WithWorkerFault(proc, step int, mode FaultMode) Option {
	return func(o *options) {
		if o.faults == nil {
			o.faults = map[int]workerFault{}
		}
		o.faults[proc] = workerFault{step: step, mode: mode}
	}
}

// LostWorkersError reports processors that missed a step deadline: their
// barrier signal or ghost messages never arrived, so they are presumed
// stalled or dead. Callers can recover by remapping the assignment onto
// the survivors (see RemapOntoSurvivors and RunRecovering).
type LostWorkersError struct {
	// Step is the BSP step at which the loss was detected.
	Step int
	// Missing lists the processors that went silent.
	Missing []int
	// Deadline is the configured step deadline that expired.
	Deadline time.Duration
}

// Error implements error.
func (e *LostWorkersError) Error() string {
	return fmt.Sprintf("engine: step %d: workers %v missed the %v step deadline",
		e.Step, e.Missing, e.Deadline)
}

// errAborted marks a worker cancelled by another's failure; it is internal
// bookkeeping, never surfaced as the run error.
var errAborted = errors.New("engine: run aborted")

// errDeadline marks an expired receive deadline.
var errDeadline = errors.New("engine: step deadline exceeded")

// supervisor coordinates run abortion: the first failure wins and every
// blocked worker and the coordinator are released through the abort
// channel — the fix for the seed's deadlock, where a worker error left
// the coordinator blocked on barriers and wg.Wait never returned.
type supervisor struct {
	abort chan struct{}
	once  sync.Once
	mu    sync.Mutex
	err   error
}

func newSupervisor() *supervisor {
	return &supervisor{abort: make(chan struct{})}
}

// fail records the failure and releases everyone. The first error is kept,
// except that a LostWorkersError upgrades a bare deadline error — the
// attribution is worth more than arrival order.
func (s *supervisor) fail(err error) {
	s.mu.Lock()
	var lw *LostWorkersError
	if s.err == nil {
		s.err = err
	} else if errors.As(err, &lw) && !errors.As(s.err, new(*LostWorkersError)) {
		s.err = err
	}
	s.mu.Unlock()
	s.once.Do(func() { close(s.abort) })
}

func (s *supervisor) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// recvWait receives one message, giving up on abort or after the deadline
// (0 = wait forever, but still abortable).
func recvWait(ch <-chan agents.Message, abort <-chan struct{}, d time.Duration) (agents.Message, bool, error) {
	if d <= 0 {
		select {
		case m, ok := <-ch:
			return m, ok, nil
		case <-abort:
			return agents.Message{}, false, errAborted
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m, ok := <-ch:
		return m, ok, nil
	case <-abort:
		return agents.Message{}, false, errAborted
	case <-t.C:
		return agents.Message{}, false, errDeadline
	}
}

// worker is one emulated processor.
type worker struct {
	proc  int
	port  agents.Port
	inbox <-chan agents.Message
	units []int // indices into the assignment
	// sends lists (pair index, destination proc, faces) for messages this
	// worker originates each step; ghost exchange is symmetric, so the
	// same pairs arrive back from the peers.
	sends []send
	// expect is the number of ghost messages arriving per step.
	expect int
	fault  workerFault
	report WorkerReport
}

type send struct {
	pair  int
	to    string
	peer  int
	faces float64
}

// Engine drives a set of workers through BSP steps.
type Engine struct {
	h        *samr.Hierarchy
	a        *partition.Assignment
	workers  []*worker
	coord    <-chan agents.Message
	coordown agents.Port
	opts     options
}

// portName returns worker p's mailbox name under this engine's namespace.
func (e *Engine) portName(p int) string {
	return fmt.Sprintf("engine-worker-%d%s", p, e.opts.suffix)
}

// coordName returns the coordinator's mailbox name.
func (e *Engine) coordName() string { return "engine-coordinator" + e.opts.suffix }

// New wires an engine over the given ports: ports[p] is the Port worker p
// registers its mailbox on (pass the same Center for an in-process run, or
// distinct TCP clients for a multi-node emulation). coordOn hosts the
// coordinator mailbox. Options add supervision: WithStepDeadline bounds
// every wait, WithPortSuffix namespaces the mailboxes (recovery engines),
// WithWorkerFault injects deterministic faults for crash rehearsal.
func New(h *samr.Hierarchy, a *partition.Assignment, coordOn agents.Port, ports []agents.Port, opts ...Option) (*Engine, error) {
	return NewFromPlan(partition.BuildCommPlan(h, a), coordOn, ports, opts...)
}

// NewFromPlan wires an engine from an already-built communication plan,
// reusing its unit-pair adjacency instead of re-sweeping the hierarchy.
// Callers that evaluated the assignment's PAC quality already hold the
// plan; handing it over makes engine construction rasterization-free.
func NewFromPlan(plan *partition.CommPlan, coordOn agents.Port, ports []agents.Port, opts ...Option) (*Engine, error) {
	h, a := plan.H, plan.A
	if len(ports) != a.NProcs {
		return nil, fmt.Errorf("engine: %d ports for %d processors", len(ports), a.NProcs)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{h: h, a: a, coordown: coordOn}
	for _, o := range opts {
		o(&e.opts)
	}
	coordIn, err := coordOn.Register(e.coordName(), a.NProcs*4)
	if err != nil {
		return nil, err
	}
	e.coord = coordIn
	pairs := plan.Pairs
	expect := make([]int, a.NProcs)
	sends := make([][]send, a.NProcs)
	for i, pr := range pairs {
		o1, o2 := a.Owner[pr.U1], a.Owner[pr.U2]
		sends[o1] = append(sends[o1], send{pair: i, to: e.portName(o2), peer: o2, faces: pr.Faces})
		sends[o2] = append(sends[o2], send{pair: i, to: e.portName(o1), peer: o1, faces: pr.Faces})
		expect[o1]++
		expect[o2]++
	}
	for p := 0; p < a.NProcs; p++ {
		inbox, err := ports[p].Register(e.portName(p), 4*(expect[p]+4))
		if err != nil {
			return nil, fmt.Errorf("engine: worker %d: %w", p, err)
		}
		w := &worker{
			proc:   p,
			port:   ports[p],
			inbox:  inbox,
			sends:  sends[p],
			expect: expect[p],
			fault:  e.opts.faults[p],
		}
		for i, o := range a.Owner {
			if o == p {
				w.units = append(w.units, i)
			}
		}
		e.workers = append(e.workers, w)
	}
	return e, nil
}

// Run executes the given number of BSP steps and returns the aggregated
// report. Each step: every worker computes over its units, exchanges ghost
// messages with its neighbors, and reports to the coordinator, which
// releases the next step once all workers arrive. A worker failure aborts
// the run; with a step deadline configured, a stalled or killed worker
// surfaces as a LostWorkersError within a bounded wait — never a hang.
func (e *Engine) Run(steps int) (Report, error) {
	if steps < 1 {
		return Report{}, fmt.Errorf("engine: steps %d < 1", steps)
	}
	sup := newSupervisor()
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.run(e, steps, sup); err != nil && !errors.Is(err, errAborted) {
				sup.fail(fmt.Errorf("engine: worker %d: %w", w.proc, err))
			}
		}(w)
	}
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		e.coordinate(steps, sup)
	}()
	wg.Wait()
	<-coordDone
	if err := sup.failure(); err != nil {
		var lw *LostWorkersError
		if errors.As(err, &lw) {
			metricLostWorkers.Add(uint64(len(lw.Missing)))
			metricRunsTotal.With("lost-workers").Inc()
		} else {
			metricRunsTotal.With("error").Inc()
		}
		return Report{}, err
	}
	metricRunsTotal.With("ok").Inc()
	rep := Report{Steps: steps}
	for _, w := range e.workers {
		rep.Workers = append(rep.Workers, w.report)
	}
	return rep, nil
}

// coordinate runs the per-step barrier. With a deadline configured, a step
// whose barriers do not complete in time fails the run with the list of
// missing processors — lost-worker detection.
func (e *Engine) coordinate(steps int, sup *supervisor) {
	for s := 0; s < steps; s++ {
		stepStart := time.Now()
		var firstBarrier time.Time
		arrived := make(map[string]bool, len(e.workers))
		for len(arrived) < len(e.workers) {
			m, ok, err := recvWait(e.coord, sup.abort, e.opts.stepDeadline)
			switch {
			case errors.Is(err, errAborted):
				return
			case errors.Is(err, errDeadline):
				sup.fail(&LostWorkersError{
					Step:     s,
					Missing:  e.missingProcs(arrived),
					Deadline: e.opts.stepDeadline,
				})
				return
			case !ok:
				sup.fail(fmt.Errorf("engine: coordinator mailbox closed at step %d", s))
				return
			}
			if m.Kind == "barrier" {
				if len(arrived) == 0 {
					firstBarrier = time.Now()
				}
				arrived[m.From] = true
			}
		}
		if !firstBarrier.IsZero() {
			metricBarrierWaitSeconds.Observe(time.Since(firstBarrier).Seconds())
		}
		metricStepSeconds.Observe(time.Since(stepStart).Seconds())
		for p := range e.workers {
			if err := e.coordown.Send(agents.Message{
				From: e.coordName(), To: e.portName(p), Kind: "proceed",
			}); err != nil {
				sup.fail(fmt.Errorf("engine: coordinator: %w", err))
				return
			}
		}
	}
}

// missingProcs lists workers whose barrier has not arrived.
func (e *Engine) missingProcs(arrived map[string]bool) []int {
	var missing []int
	for p := range e.workers {
		if !arrived[e.portName(p)] {
			missing = append(missing, p)
		}
	}
	return missing
}

// run is one worker's step loop.
func (w *worker) run(e *Engine, steps int, sup *supervisor) error {
	w.report = WorkerReport{Proc: w.proc, Units: len(w.units)}
	// pending stashes ghosts that arrived ahead of their step (a fast
	// neighbor may run one step ahead of the barrier release); seen dedups
	// (step, pair) so replayed messages cannot double-count. Both maps are
	// bounded: only steps s and s+1 are ever admitted.
	pending := map[int][]ghostPayload{}
	seen := map[int]map[int]bool{}
	// Workers wait at twice the coordinator's deadline so the coordinator
	// — which always misses a lost worker's barrier — diagnoses first and
	// names the missing processors.
	deadline := 2 * e.opts.stepDeadline
	proceeds := 0
	for s := 0; s < steps; s++ {
		if w.fault.mode != 0 && w.fault.step == s {
			switch w.fault.mode {
			case FaultError:
				return fmt.Errorf("injected fault at step %d", s)
			case FaultCrash:
				return errAborted // silent exit: the supervisor must notice
			case FaultStall:
				<-sup.abort // hung process: holds until the run aborts
				return errAborted
			}
		}
		// Compute: digest this worker's assigned work (a stand-in for the
		// numerical kernel; cheap but real data flow).
		for _, ui := range w.units {
			u := e.a.Units[ui]
			w.report.WorkPerformed += u.Weight
			w.report.Checksum = mix(w.report.Checksum, uint64(ui)*0x9e3779b97f4a7c15+uint64(s))
		}
		// Exchange ghosts: send to every neighbor, then consume exactly the
		// expected number of arrivals for this step.
		for _, snd := range w.sends {
			err := w.port.Send(agents.Message{
				From: e.portName(w.proc),
				To:   snd.to,
				Kind: "ghost",
				Payload: agents.Encode(ghostPayload{
					Step: s, Pair: snd.pair, Faces: snd.faces, Checksum: uint64(snd.pair),
				}),
			})
			if err != nil {
				return err
			}
			w.report.MessagesSent++
			w.report.FacesSent += snd.faces
			metricGhostsSent.Inc()
		}
		// Signal the barrier after sends; then drain this step's ghosts and
		// one proceed token, stashing early arrivals from the next step.
		if err := w.port.Send(agents.Message{
			From: e.portName(w.proc), To: e.coordName(), Kind: "barrier",
		}); err != nil {
			return err
		}
		for len(pending[s]) < w.expect || proceeds <= s {
			m, ok, err := recvWait(w.inbox, sup.abort, deadline)
			if errors.Is(err, errAborted) {
				return errAborted
			}
			if errors.Is(err, errDeadline) {
				if missing := w.missingPeers(s, seen[s]); len(missing) > 0 {
					return &LostWorkersError{Step: s, Missing: missing, Deadline: deadline}
				}
				return fmt.Errorf("step %d: no proceed from coordinator within %v (%w)",
					s, deadline, errDeadline)
			}
			if !ok {
				return fmt.Errorf("mailbox closed at step %d", s)
			}
			switch m.Kind {
			case "ghost":
				var g ghostPayload
				if err := agents.Decode(m, &g); err != nil {
					return err
				}
				// A BSP neighbor runs at most one step ahead of the barrier,
				// so anything outside [s, s+1] — or a (step, pair) already
				// recorded — is replayed or corrupted traffic: drop it.
				if g.Step < s || g.Step > s+1 || seen[g.Step][g.Pair] {
					w.report.GhostsDropped++
					metricGhostsDropped.Inc()
					continue
				}
				if seen[g.Step] == nil {
					seen[g.Step] = map[int]bool{}
				}
				seen[g.Step][g.Pair] = true
				pending[g.Step] = append(pending[g.Step], g)
			case "proceed":
				proceeds++
			}
		}
		// Consume this step's ghosts in pair order so the digest does not
		// depend on arrival order.
		arrived := pending[s]
		delete(pending, s)
		delete(seen, s)
		sort.Slice(arrived, func(i, j int) bool { return arrived[i].Pair < arrived[j].Pair })
		for _, g := range arrived {
			w.report.MessagesRecv++
			metricGhostsRecv.Inc()
			w.report.Checksum = mix(w.report.Checksum, g.Checksum^uint64(g.Step))
		}
	}
	return nil
}

// missingPeers names the processors whose step-s ghosts never arrived.
func (w *worker) missingPeers(s int, got map[int]bool) []int {
	peerMissing := map[int]bool{}
	for _, snd := range w.sends {
		if !got[snd.pair] {
			peerMissing[snd.peer] = true
		}
	}
	missing := make([]int, 0, len(peerMissing))
	for p := range peerMissing {
		missing = append(missing, p)
	}
	sort.Ints(missing)
	return missing
}

// RemapOntoSurvivors reassigns the units owned by dead processors onto the
// survivors, least-loaded first — the engine-level analogue of
// core.FailureAware's survivor remap. The result is renumbered over the
// survivors (NProcs = len(survivors)); the returned slice maps new
// processor ids back to the original ones, which is also the port subset a
// recovery engine should be wired on.
func RemapOntoSurvivors(a *partition.Assignment, dead []int) (*partition.Assignment, []int, error) {
	isDead := map[int]bool{}
	for _, d := range dead {
		if d < 0 || d >= a.NProcs {
			return nil, nil, fmt.Errorf("engine: dead processor %d outside assignment of %d", d, a.NProcs)
		}
		isDead[d] = true
	}
	var survivors []int
	newID := make([]int, a.NProcs)
	for p := 0; p < a.NProcs; p++ {
		if isDead[p] {
			newID[p] = -1
			continue
		}
		newID[p] = len(survivors)
		survivors = append(survivors, p)
	}
	if len(survivors) == 0 {
		return nil, nil, fmt.Errorf("engine: no surviving processors")
	}
	out := &partition.Assignment{
		NProcs:    len(survivors),
		Units:     a.Units,
		Owner:     make([]int, len(a.Owner)),
		SplitCost: a.SplitCost,
	}
	load := make([]float64, len(survivors))
	for i, o := range a.Owner {
		if id := newID[o]; id >= 0 {
			out.Owner[i] = id
			load[id] += a.Units[i].Weight
		} else {
			out.Owner[i] = -1 // orphaned; placed below
		}
	}
	for i, o := range out.Owner {
		if o >= 0 {
			continue
		}
		least := 0
		for p := 1; p < len(load); p++ {
			if load[p] < load[least] {
				least = p
			}
		}
		out.Owner[i] = least
		load[least] += a.Units[i].Weight
	}
	return out, survivors, nil
}

// RunRecovering executes an interval with bounded retry: build(attempt,
// lost) constructs an engine — attempt 0 with lost == nil, each later
// attempt with the processors the *previous* attempt's engine reported
// missing, in that engine's own numbering (the builder created that
// numbering, typically via RemapOntoSurvivors, so it can translate;
// WithPortSuffix gives the retry fresh mailboxes). A run failing with a
// LostWorkersError restarts the whole interval from the regrid boundary —
// the recovery granularity checkpointed replays use. It returns the
// successful report and the number of retries consumed.
func RunRecovering(steps, maxRetries int, build func(attempt int, lost []int) (*Engine, error)) (Report, int, error) {
	var lost []int
	for attempt := 0; ; attempt++ {
		e, err := build(attempt, append([]int(nil), lost...))
		if err != nil {
			return Report{}, attempt, err
		}
		rep, err := e.Run(steps)
		var lw *LostWorkersError
		if errors.As(err, &lw) && attempt < maxRetries {
			lost = lw.Missing
			continue
		}
		return rep, attempt, err
	}
}

// mix is a simple 64-bit hash combiner.
func mix(acc, v uint64) uint64 {
	acc ^= v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
	return acc
}

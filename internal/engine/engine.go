// Package engine executes a partitioned SAMR timestep loop as an actual
// message-passing program: one worker per processor owns its assigned grid
// units, computes over them, and exchanges ghost messages with its
// neighbors through the agents Message Center. Where internal/cluster
// *models* the cost of a distributed run, this package *emulates* one —
// real concurrent workers, real messages, real synchronization — so the
// communication patterns the partition package predicts can be observed,
// counted and verified in a running system. Workers speak the agents.Port
// interface, so the same engine runs in-process or across TCP clients
// (multi-node emulation).
package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// ghostPayload is the body of one ghost-exchange message.
type ghostPayload struct {
	Step  int     `json:"step"`
	Pair  int     `json:"pair"`
	Faces float64 `json:"faces"`
	// Checksum carries the sender's running computation digest so receipt
	// is observable data flow, not just a signal.
	Checksum uint64 `json:"checksum"`
}

// WorkerReport summarizes one worker's execution.
type WorkerReport struct {
	Proc          int
	Units         int
	WorkPerformed float64
	MessagesSent  int
	MessagesRecv  int
	FacesSent     float64
	// Checksum digests the worker's computation and everything it
	// received; it makes runs comparable for determinism checks.
	Checksum uint64
}

// Report summarizes a full engine run.
type Report struct {
	Steps   int
	Workers []WorkerReport
}

// TotalMessages returns the number of ghost messages delivered per run.
func (r Report) TotalMessages() int {
	n := 0
	for _, w := range r.Workers {
		n += w.MessagesRecv
	}
	return n
}

// worker is one emulated processor.
type worker struct {
	proc  int
	port  agents.Port
	inbox <-chan agents.Message
	units []int // indices into the assignment
	// sends lists (pair index, destination proc, faces) for messages this
	// worker originates each step.
	sends []send
	// expect is the number of ghost messages arriving per step.
	expect int
	report WorkerReport
}

type send struct {
	pair  int
	to    string
	faces float64
}

// Engine drives a set of workers through BSP steps.
type Engine struct {
	h        *samr.Hierarchy
	a        *partition.Assignment
	workers  []*worker
	coord    <-chan agents.Message
	coordown agents.Port
}

// portName returns worker p's mailbox name.
func portName(p int) string { return fmt.Sprintf("engine-worker-%d", p) }

// coordPort is the coordinator's mailbox.
const coordPort = "engine-coordinator"

// New wires an engine over the given ports: ports[p] is the Port worker p
// registers its mailbox on (pass the same Center for an in-process run, or
// distinct TCP clients for a multi-node emulation). coordOn hosts the
// coordinator mailbox.
func New(h *samr.Hierarchy, a *partition.Assignment, coordOn agents.Port, ports []agents.Port) (*Engine, error) {
	if len(ports) != a.NProcs {
		return nil, fmt.Errorf("engine: %d ports for %d processors", len(ports), a.NProcs)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	coordIn, err := coordOn.Register(coordPort, a.NProcs*4)
	if err != nil {
		return nil, err
	}
	e := &Engine{h: h, a: a, coord: coordIn, coordown: coordOn}
	pairs := partition.Adjacency(h, a)
	expect := make([]int, a.NProcs)
	sends := make([][]send, a.NProcs)
	for i, pr := range pairs {
		o1, o2 := a.Owner[pr.U1], a.Owner[pr.U2]
		sends[o1] = append(sends[o1], send{pair: i, to: portName(o2), faces: pr.Faces})
		sends[o2] = append(sends[o2], send{pair: i, to: portName(o1), faces: pr.Faces})
		expect[o1]++
		expect[o2]++
	}
	for p := 0; p < a.NProcs; p++ {
		inbox, err := ports[p].Register(portName(p), 4*(expect[p]+4))
		if err != nil {
			return nil, fmt.Errorf("engine: worker %d: %w", p, err)
		}
		w := &worker{
			proc:   p,
			port:   ports[p],
			inbox:  inbox,
			sends:  sends[p],
			expect: expect[p],
		}
		for i, o := range a.Owner {
			if o == p {
				w.units = append(w.units, i)
			}
		}
		e.workers = append(e.workers, w)
	}
	return e, nil
}

// Run executes the given number of BSP steps and returns the aggregated
// report. Each step: every worker computes over its units, exchanges ghost
// messages with its neighbors, and reports to the coordinator, which
// releases the next step once all workers arrive.
func (e *Engine) Run(steps int) (Report, error) {
	if steps < 1 {
		return Report{}, fmt.Errorf("engine: steps %d < 1", steps)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(e.workers))
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.run(e, steps); err != nil {
				errs <- fmt.Errorf("engine: worker %d: %w", w.proc, err)
			}
		}(w)
	}

	// Coordinator: barrier at every step.
	coordErr := make(chan error, 1)
	go func() {
		for s := 0; s < steps; s++ {
			arrived := 0
			for arrived < len(e.workers) {
				m, ok := <-e.coord
				if !ok {
					coordErr <- fmt.Errorf("engine: coordinator mailbox closed")
					return
				}
				if m.Kind == "barrier" {
					arrived++
				}
			}
			for p := range e.workers {
				if err := e.coordown.Send(agents.Message{
					From: coordPort, To: portName(p), Kind: "proceed",
				}); err != nil {
					coordErr <- err
					return
				}
			}
		}
		coordErr <- nil
	}()

	wg.Wait()
	if err := <-coordErr; err != nil {
		return Report{}, err
	}
	close(errs)
	for err := range errs {
		return Report{}, err
	}
	rep := Report{Steps: steps}
	for _, w := range e.workers {
		rep.Workers = append(rep.Workers, w.report)
	}
	return rep, nil
}

// run is one worker's step loop.
func (w *worker) run(e *Engine, steps int) error {
	w.report = WorkerReport{Proc: w.proc, Units: len(w.units)}
	// pending stashes ghosts that arrived ahead of their step (a fast
	// neighbor may run one step ahead of the barrier release).
	pending := map[int][]ghostPayload{}
	proceeds := 0
	for s := 0; s < steps; s++ {
		// Compute: digest this worker's assigned work (a stand-in for the
		// numerical kernel; cheap but real data flow).
		for _, ui := range w.units {
			u := e.a.Units[ui]
			w.report.WorkPerformed += u.Weight
			w.report.Checksum = mix(w.report.Checksum, uint64(ui)*0x9e3779b97f4a7c15+uint64(s))
		}
		// Exchange ghosts: send to every neighbor, then consume exactly the
		// expected number of arrivals for this step.
		for _, snd := range w.sends {
			err := w.port.Send(agents.Message{
				From: portName(w.proc),
				To:   snd.to,
				Kind: "ghost",
				Payload: agents.Encode(ghostPayload{
					Step: s, Pair: snd.pair, Faces: snd.faces, Checksum: uint64(snd.pair),
				}),
			})
			if err != nil {
				return err
			}
			w.report.MessagesSent++
			w.report.FacesSent += snd.faces
		}
		// Signal the barrier after sends; then drain this step's ghosts and
		// one proceed token, stashing early arrivals from the next step.
		if err := w.port.Send(agents.Message{
			From: portName(w.proc), To: coordPort, Kind: "barrier",
		}); err != nil {
			return err
		}
		for len(pending[s]) < w.expect || proceeds <= s {
			m, ok := <-w.inbox
			if !ok {
				return fmt.Errorf("mailbox closed at step %d", s)
			}
			switch m.Kind {
			case "ghost":
				var g ghostPayload
				if err := agents.Decode(m, &g); err != nil {
					return err
				}
				pending[g.Step] = append(pending[g.Step], g)
			case "proceed":
				proceeds++
			}
		}
		// Consume this step's ghosts in pair order so the digest does not
		// depend on arrival order.
		arrived := pending[s]
		delete(pending, s)
		sort.Slice(arrived, func(i, j int) bool { return arrived[i].Pair < arrived[j].Pair })
		for _, g := range arrived {
			w.report.MessagesRecv++
			w.report.Checksum = mix(w.report.Checksum, g.Checksum^uint64(g.Step))
		}
	}
	return nil
}

// mix is a simple 64-bit hash combiner.
func mix(acc, v uint64) uint64 {
	acc ^= v + 0x9e3779b97f4a7c15 + (acc << 6) + (acc >> 2)
	return acc
}

package engine

import (
	"net"
	"testing"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

func testSetup(t testing.TB, nprocs int) (*samr.Hierarchy, *partition.Assignment) {
	t.Helper()
	h, err := samr.NewHierarchy(samr.MakeBox(32, 16, 16), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetLevel(1, []samr.Box{
		{Lo: samr.Point{8, 8, 8}, Hi: samr.Point{24, 24, 24}},
		{Lo: samr.Point{40, 8, 8}, Hi: samr.Point{56, 24, 24}},
	}); err != nil {
		t.Fatal(err)
	}
	a, err := partition.GMISPSP{}.Partition(h, samr.UniformWorkModel{}, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	return h, a
}

func samePorts(c *agents.Center, n int) []agents.Port {
	ports := make([]agents.Port, n)
	for i := range ports {
		ports[i] = c
	}
	return ports
}

func TestEngineMessageCountsMatchAdjacency(t *testing.T) {
	h, a := testSetup(t, 4)
	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 4))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	rep, err := e.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	pairs := partition.Adjacency(h, a)
	// Per step every pair produces one message in each direction.
	want := 2 * len(pairs) * steps
	if got := rep.TotalMessages(); got != want {
		t.Fatalf("delivered %d messages, want %d (%d pairs x 2 x %d steps)",
			got, want, len(pairs), steps)
	}
	var sent int
	for _, w := range rep.Workers {
		sent += w.MessagesSent
	}
	if sent != want {
		t.Fatalf("sent %d messages, want %d", sent, want)
	}
	// Every worker performed its assigned work on every step.
	workPerStep := map[int]float64{}
	for i, u := range a.Units {
		workPerStep[a.Owner[i]] += u.Weight
	}
	for _, w := range rep.Workers {
		if diff := w.WorkPerformed - workPerStep[w.Proc]*steps; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("worker %d performed %g, want %g", w.Proc, w.WorkPerformed, workPerStep[w.Proc]*steps)
		}
	}
}

func TestEngineDeterministicChecksums(t *testing.T) {
	h, a := testSetup(t, 4)
	run := func() []uint64 {
		center := agents.NewCenter()
		e, err := New(h, a, center, samePorts(center, 4))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(rep.Workers))
		for _, w := range rep.Workers {
			out[w.Proc] = w.Checksum
		}
		return out
	}
	a1 := run()
	a2 := run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("worker %d checksum differs across runs: %x vs %x", i, a1[i], a2[i])
		}
	}
}

func TestEngineOverTCP(t *testing.T) {
	// Multi-node emulation: each worker connects to the broker over TCP.
	h, a := testSetup(t, 3)
	center := agents.NewCenter()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go center.Serve(ln)
	ports := make([]agents.Port, 3)
	for i := range ports {
		cl, err := agents.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ports[i] = cl
	}
	e, err := New(h, a, center, ports)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := partition.Adjacency(h, a)
	if got, want := rep.TotalMessages(), 2*len(pairs)*3; got != want {
		t.Fatalf("TCP run delivered %d messages, want %d", got, want)
	}
}

func TestEngineValidation(t *testing.T) {
	h, a := testSetup(t, 4)
	center := agents.NewCenter()
	if _, err := New(h, a, center, samePorts(center, 2)); err == nil {
		t.Error("port/processor mismatch accepted")
	}
	e, err := New(h, a, center, samePorts(center, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("zero steps accepted")
	}
	// Registering a second engine on the same center conflicts on ports.
	if _, err := New(h, a, center, samePorts(center, 4)); err == nil {
		t.Error("port collision accepted")
	}
}

func TestEngineSingleProcNoMessages(t *testing.T) {
	h, _ := testSetup(t, 4)
	a, err := partition.GMISPSP{}.Partition(h, samr.UniformWorkModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMessages() != 0 {
		t.Fatalf("single-proc run exchanged %d messages", rep.TotalMessages())
	}
}

func TestEngineStressManyWorkers(t *testing.T) {
	// 16 workers, finer partitioning, more steps: exercises barrier skew
	// and mailbox buffering.
	h, _ := testSetup(t, 4)
	a, err := partition.SPISP{}.Partition(h, samr.UniformWorkModel{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 16))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	pairs := partition.Adjacency(h, a)
	if got, want := rep.TotalMessages(), 2*len(pairs)*20; got != want {
		t.Fatalf("delivered %d, want %d", got, want)
	}
}

// TestNewFromPlanReusesAdjacency builds an engine from a pre-built
// communication plan and checks two things: construction adds zero
// rasterizations (the plan's cached sweep is reused, not redone), and the
// resulting engine behaves identically to one built by New.
func TestNewFromPlanReusesAdjacency(t *testing.T) {
	h, a := testSetup(t, 4)
	plan := partition.BuildCommPlan(h, a)
	center := agents.NewCenter()
	before := partition.Rasterizations()
	e, err := NewFromPlan(plan, center, samePorts(center, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.Rasterizations() - before; got != 0 {
		t.Fatalf("NewFromPlan rasterized %d times, want 0", got)
	}
	const steps = 3
	rep, err := e.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(plan.Pairs) * steps; rep.TotalMessages() != want {
		t.Fatalf("delivered %d messages, want %d", rep.TotalMessages(), want)
	}

	center2 := agents.NewCenter()
	e2, err := New(h, a, center2, samePorts(center2, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e2.Run(steps)
	if err != nil {
		t.Fatal(err)
	}
	sums := func(r Report) map[int]uint64 {
		out := map[int]uint64{}
		for _, w := range r.Workers {
			out[w.Proc] = w.Checksum
		}
		return out
	}
	s1, s2 := sums(rep), sums(rep2)
	for p, c := range s1 {
		if s2[p] != c {
			t.Fatalf("worker %d checksum differs between NewFromPlan and New: %x vs %x", p, c, s2[p])
		}
	}
}

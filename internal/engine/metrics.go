package engine

import "github.com/pragma-grid/pragma/internal/telemetry"

// Engine instrumentation. All handles are resolved once here; the step
// loop and ghost exchange touch only atomic counters.
var (
	metricStepSeconds = telemetry.Default.Histogram(
		"pragma_engine_step_seconds",
		"Wall-clock duration of one BSP step, coordinator view (barrier to barrier).",
		nil)
	metricBarrierWaitSeconds = telemetry.Default.Histogram(
		"pragma_engine_barrier_wait_seconds",
		"Coordinator wait between the first and last barrier arrival of a step — straggler skew.",
		nil)
	metricGhostMessages = telemetry.Default.CounterVec(
		"pragma_engine_ghost_messages_total",
		"Ghost-exchange messages by outcome: sent, received, or dropped (stale, early, or duplicate).",
		"outcome")
	metricGhostsSent    = metricGhostMessages.With("sent")
	metricGhostsRecv    = metricGhostMessages.With("received")
	metricGhostsDropped = metricGhostMessages.With("dropped")
	metricLostWorkers   = telemetry.Default.Counter(
		"pragma_engine_lost_workers_total",
		"Processors declared lost after missing a step deadline.")
	metricRunsTotal = telemetry.Default.CounterVec(
		"pragma_engine_runs_total",
		"Engine runs by result.",
		"result")
)

package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/agents"
)

// runGuarded runs e.Run with a watchdog: the pre-fix engine deadlocked on
// worker failure, and a regression must fail the test, not hang the suite.
func runGuarded(t *testing.T, e *Engine, steps int, guard time.Duration) (Report, error) {
	t.Helper()
	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := e.Run(steps)
		done <- result{rep, err}
	}()
	select {
	case r := <-done:
		return r.rep, r.err
	case <-time.After(guard):
		t.Fatalf("engine.Run still blocked after %v (deadlock regression)", guard)
		return Report{}, nil
	}
}

// TestEngineWorkerErrorDoesNotDeadlock is the regression test for the
// seed's supervision hole: a worker returning an error left the
// coordinator blocked on barriers and wg.Wait never returned. No step
// deadline is configured — abortion alone must unblock everything.
func TestEngineWorkerErrorDoesNotDeadlock(t *testing.T) {
	h, a := testSetup(t, 4)
	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 4),
		WithWorkerFault(1, 1, FaultError))
	if err != nil {
		t.Fatal(err)
	}
	_, err = runGuarded(t, e, 5, 30*time.Second)
	if err == nil {
		t.Fatal("failed worker produced no error")
	}
	if !strings.Contains(err.Error(), "worker 1") || !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error does not describe the failure: %v", err)
	}
}

func TestEngineStalledWorkerHitsDeadline(t *testing.T) {
	h, a := testSetup(t, 4)
	center := agents.NewCenter()
	const deadline = 200 * time.Millisecond
	e, err := New(h, a, center, samePorts(center, 4),
		WithStepDeadline(deadline),
		WithWorkerFault(2, 1, FaultStall))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = runGuarded(t, e, 6, 30*time.Second)
	elapsed := time.Since(start)
	var lw *LostWorkersError
	if !errors.As(err, &lw) {
		t.Fatalf("stalled worker: err = %v, want LostWorkersError", err)
	}
	if len(lw.Missing) != 1 || lw.Missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", lw.Missing)
	}
	if lw.Step != 1 {
		t.Fatalf("loss detected at step %d, want 1", lw.Step)
	}
	// Termination must be deadline-bounded, not eventual: allow generous
	// scheduling slack but nothing near a hang.
	if elapsed > 10*deadline+2*time.Second {
		t.Fatalf("stalled run took %v to fail (deadline %v)", elapsed, deadline)
	}
}

func TestEngineCrashedWorkerDetected(t *testing.T) {
	h, a := testSetup(t, 4)
	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 4),
		WithStepDeadline(250*time.Millisecond),
		WithWorkerFault(0, 2, FaultCrash))
	if err != nil {
		t.Fatal(err)
	}
	_, err = runGuarded(t, e, 6, 30*time.Second)
	var lw *LostWorkersError
	if !errors.As(err, &lw) {
		t.Fatalf("crashed worker: err = %v, want LostWorkersError", err)
	}
	if len(lw.Missing) != 1 || lw.Missing[0] != 0 {
		t.Fatalf("missing = %v, want [0]", lw.Missing)
	}
}

// TestEngineGhostDedupAndStaleRejection forges replayed and corrupted
// ghost traffic into a worker's mailbox before the run: exact duplicates
// of step-0 payloads, a stale step, and a far-future step. The run must
// drop all of it — identical checksums and counts to a clean run, with the
// drops accounted.
func TestEngineGhostDedupAndStaleRejection(t *testing.T) {
	h, a := testSetup(t, 4)

	clean := func() Report {
		center := agents.NewCenter()
		e, err := New(h, a, center, samePorts(center, 4))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()

	center := agents.NewCenter()
	e, err := New(h, a, center, samePorts(center, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Replay attack: worker 0's incoming pairs are exactly its outgoing
	// pair ids (ghost exchange is symmetric), and senders put
	// Checksum=uint64(pair) on the wire, so a byte-faithful replay of every
	// step-0 message is forgeable without running anything.
	target := e.portName(0)
	injected := 0
	for _, snd := range e.workers[0].sends {
		for copies := 0; copies < 2; copies++ { // two replays of each
			if err := center.Send(agents.Message{
				From: "replayer", To: target, Kind: "ghost",
				Payload: agents.Encode(ghostPayload{
					Step: 0, Pair: snd.pair, Faces: snd.faces, Checksum: uint64(snd.pair),
				}),
			}); err != nil {
				t.Fatal(err)
			}
			injected++
		}
	}
	// Stale (negative step) and far-future traffic: bounded-memory check.
	for _, g := range []ghostPayload{
		{Step: -1, Pair: 0, Checksum: 99},
		{Step: 100, Pair: 0, Checksum: 99},
	} {
		if err := center.Send(agents.Message{
			From: "replayer", To: target, Kind: "ghost", Payload: agents.Encode(g),
		}); err != nil {
			t.Fatal(err)
		}
		injected++
	}

	rep, err := e.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Workers {
		if rep.Workers[i].Checksum != clean.Workers[i].Checksum {
			t.Errorf("worker %d checksum diverged under replay: %x vs clean %x",
				i, rep.Workers[i].Checksum, clean.Workers[i].Checksum)
		}
		if rep.Workers[i].MessagesRecv != clean.Workers[i].MessagesRecv {
			t.Errorf("worker %d consumed %d ghosts, clean run %d",
				i, rep.Workers[i].MessagesRecv, clean.Workers[i].MessagesRecv)
		}
	}
	var dropped int
	for _, w := range rep.Workers {
		dropped += w.GhostsDropped
	}
	// The first replayed copy of each (step 0, pair) wins the dedup slot
	// and the worker's own legitimate delivery is dropped as the duplicate;
	// either way exactly `injected` extra messages must be discarded.
	if dropped != injected {
		t.Errorf("dropped %d ghosts, want %d", dropped, injected)
	}
}

// TestEngineRecoveryOntoSurvivors kills a worker mid-interval and recovers
// by remapping its units onto the survivors and re-running the interval
// from the regrid boundary. The recovered run's checksums must equal an
// uninterrupted run of the same survivor assignment — the engine-level
// half of the crash-recovery acceptance criterion.
func TestEngineRecoveryOntoSurvivors(t *testing.T) {
	h, a := testSetup(t, 4)
	const steps = 6
	const dead = 2

	remapped, survivors, err := RemapOntoSurvivors(a, []int{dead})
	if err != nil {
		t.Fatal(err)
	}
	if remapped.NProcs != 3 || len(survivors) != 3 {
		t.Fatalf("remap: nprocs=%d survivors=%v", remapped.NProcs, survivors)
	}
	if err := remapped.Validate(); err != nil {
		t.Fatalf("remapped assignment invalid: %v", err)
	}
	if w, want := remapped.TotalWeight(), a.TotalWeight(); w != want {
		t.Fatalf("remap lost work: %g vs %g", w, want)
	}

	uninterrupted := func() Report {
		center := agents.NewCenter()
		e, err := New(h, remapped, center, samePorts(center, remapped.NProcs))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()

	rep, retries, err := RunRecovering(steps, 2, func(attempt int, lost []int) (*Engine, error) {
		center := agents.NewCenter()
		switch attempt {
		case 0:
			return New(h, a, center, samePorts(center, a.NProcs),
				WithStepDeadline(250*time.Millisecond),
				WithWorkerFault(dead, 2, FaultCrash))
		default:
			if len(lost) != 1 || lost[0] != dead {
				return nil, fmt.Errorf("attempt %d: lost %v, want [%d]", attempt, lost, dead)
			}
			re, _, err := RemapOntoSurvivors(a, lost)
			if err != nil {
				return nil, err
			}
			return New(h, re, center, samePorts(center, re.NProcs),
				WithStepDeadline(250*time.Millisecond),
				WithPortSuffix(fmt.Sprintf("-retry%d", attempt)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Fatalf("recovered after %d retries, want 1", retries)
	}
	if len(rep.Workers) != len(uninterrupted.Workers) {
		t.Fatalf("worker counts differ: %d vs %d", len(rep.Workers), len(uninterrupted.Workers))
	}
	for i := range rep.Workers {
		if rep.Workers[i].Checksum != uninterrupted.Workers[i].Checksum {
			t.Errorf("worker %d: recovered checksum %x != uninterrupted %x",
				i, rep.Workers[i].Checksum, uninterrupted.Workers[i].Checksum)
		}
	}
	if rep.TotalMessages() != uninterrupted.TotalMessages() {
		t.Errorf("recovered run delivered %d messages, uninterrupted %d",
			rep.TotalMessages(), uninterrupted.TotalMessages())
	}
}

func TestRemapOntoSurvivorsRejectsBadInput(t *testing.T) {
	_, a := testSetup(t, 3)
	if _, _, err := RemapOntoSurvivors(a, []int{7}); err == nil {
		t.Error("out-of-range dead processor accepted")
	}
	if _, _, err := RemapOntoSurvivors(a, []int{0, 1, 2}); err == nil {
		t.Error("zero survivors accepted")
	}
}

func TestEnginePortSuffixAllowsSecondEngine(t *testing.T) {
	h, a := testSetup(t, 3)
	center := agents.NewCenter()
	if _, err := New(h, a, center, samePorts(center, 3)); err != nil {
		t.Fatal(err)
	}
	e2, err := New(h, a, center, samePorts(center, 3), WithPortSuffix("-b"))
	if err != nil {
		t.Fatalf("suffixed engine on the same center: %v", err)
	}
	if _, err := e2.Run(2); err != nil {
		t.Fatal(err)
	}
}

package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/octant"
)

// This file implements the driver library. Each driver's geometry is
// engineered against octant.DefaultThresholds() (Dynamics 0.15, CommRatio
// 0.48, Dispersion 0.30, all measured on hierarchy level 1):
//
//   - Communication-dominated features are thin sheets: thickness < 1
//     level-0 cell, so outward rasterization yields 1-2 level-0 cells
//     (2-4 at level 1 with ratio 2) and surface-to-volume stays >= 0.58.
//   - Computation-dominated features are solid blocks with level-0 extents
//     >= 7 cells per axis (>= 14 at level 1), so surface-to-volume stays
//     <= 0.43.
//   - Higher-dynamics features relocate by at least their own extent per
//     snapshot (wrap-around sweeps, alternating oscillation, pulsed
//     growth), driving the regrid change fraction far above 0.15; static
//     features pin it to 0.
//   - Scattered drivers place several disconnected features on separated
//     anchor stations, keeping level-1 dispersion high; localized drivers
//     produce a single solid region with dispersion ~0.
//
// Randomness is placement jitter only, drawn from the driver's sub-seed
// with a fixed number of draws independent of age, so a driver's feature
// track is a pure function of (seed, age).

// Activity is the dynamics dial of a driver: Low produces static features
// (lower-activity octants I-IV), High produces features that relocate
// every regrid (higher-activity octants V-VIII).
type Activity int

// The two activity levels.
const (
	Low Activity = iota
	High
)

// String names the activity level.
func (a Activity) String() string {
	if a == High {
		return "high"
	}
	return "low"
}

// suffix appends ".high" to high-activity driver names; low is the
// unmarked default.
func suffix(name string, act Activity) string {
	if act == High {
		return name + ".high"
	}
	return name
}

// sheetThickness is the planar-sheet thickness in level-0 cells. Keeping
// it below 1 guarantees outward rasterization produces 1-2 level-0 cells,
// which is what makes sheets communication-dominated.
const sheetThickness = 0.9

// wrapSweep advances a coordinate monotonically with wrap-around re-entry:
// consecutive positions always differ by speed (or by nearly the whole
// span at the wrap), so a sweeping feature never has a low-motion snapshot
// the way a bouncing one does at its turning points.
func wrapSweep(p0, speed float64, age int, lo, span float64) float64 {
	return lo + math.Mod(p0+speed*float64(age), span)
}

// oscSign alternates +1/-1 per snapshot, staggered by the feature index so
// a field of features breathes instead of translating rigidly.
func oscSign(age, i int) float64 {
	if (age+i)%2 == 0 {
		return 1
	}
	return -1
}

// Sheet is a single planar sheet spanning the full y/z cross-section —
// the thin tracked front of the paper's shock phases. Low activity holds
// it in place (octant I); High sweeps it through the domain with
// wrap-around re-entry — a moving planar shock (octant V).
type sheet struct {
	act Activity
	// speed is the sweep speed in level-0 cells per snapshot (High only).
	speed float64
}

// Sheet returns a single full-cross-section planar sheet driver: static
// under Low (octant I), a moving planar shock under High (octant V).
func Sheet(act Activity) Driver { return sheet{act: act, speed: 4} }

// MovingShock is the moving planar shock: Sheet(High).
func MovingShock() Driver { return Sheet(High) }

func (s sheet) Name() string { return suffix("sheet", s.act) }

func (s sheet) Signature() Signature {
	return Signature{HigherDynamics: s.act == High, CommDominated: true, Scattered: false}
}

func (s sheet) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	p0 := (0.25 + 0.5*rng.Float64()) * env.Nx
	x := p0
	if s.act == High {
		x = wrapSweep(p0, s.speed, age, 0.12*env.Nx, 0.76*env.Nx)
	}
	return []Feature{{
		Lo: [3]float64{x - sheetThickness/2, 0, 0},
		Hi: [3]float64{x + sheetThickness/2, env.Ny, env.Nz},
	}}
}

// sheetField is a field of scattered partial sheets — the fragmented
// interaction fronts of the paper's shock/interface phases. Low holds the
// fragments static (octant II); High oscillates each fragment along x by
// more than its thickness every snapshot (octant VI).
type sheetField struct {
	n   int
	act Activity
}

// SheetField returns a scattered field of n thin sheet fragments (n
// clamped to [2, 8]): static under Low (octant II), oscillating under High
// (octant VI).
func SheetField(n int, act Activity) Driver {
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return sheetField{n: n, act: act}
}

// OscillatingSheets is the oscillating scattered-activity driver:
// SheetField(n, High).
func OscillatingSheets(n int) Driver { return SheetField(n, High) }

func (s sheetField) Name() string { return suffix(fmt.Sprintf("sheets%d", s.n), s.act) }

func (s sheetField) Signature() Signature {
	return Signature{HigherDynamics: s.act == High, CommDominated: true, Scattered: true}
}

func (s sheetField) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	hy := clampf(0.18*env.Ny, 2, 8)
	hz := clampf(0.18*env.Nz, 2, 8)
	out := make([]Feature, 0, s.n)
	for i := 0; i < s.n; i++ {
		x := float64(i+1) / float64(s.n+1) * env.Nx
		cy := (0.3 + 0.4*rng.Float64()) * env.Ny
		cz := (0.3 + 0.4*rng.Float64()) * env.Nz
		if s.act == High {
			x += 3 * oscSign(age, i)
		}
		out = append(out, Feature{
			Lo: [3]float64{x - sheetThickness/2, cy - hy, cz - hz},
			Hi: [3]float64{x + sheetThickness/2, cy + hy, cz + hz},
		})
	}
	return out
}

// block is a single solid computation-dominated region — a dense mixing
// block. Low holds it (octant III); High sweeps it along x with
// wrap-around (octant VII).
type block struct {
	act   Activity
	speed float64
}

// Block returns a single solid block driver: static under Low (octant
// III), sweeping under High (octant VII).
func Block(act Activity) Driver { return block{act: act, speed: 3} }

func (b block) Name() string { return suffix("block", b.act) }

func (b block) Signature() Signature {
	return Signature{HigherDynamics: b.act == High, CommDominated: false, Scattered: false}
}

func (b block) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	hx := solidHalf(env.Nx)
	hy := solidHalf(env.Ny)
	hz := solidHalf(env.Nz)
	cx := (0.42 + 0.16*rng.Float64()) * env.Nx
	cy := (0.42 + 0.16*rng.Float64()) * env.Ny
	cz := (0.42 + 0.16*rng.Float64()) * env.Nz
	if b.act == High {
		cx = wrapSweep(cx, b.speed, age, 0.15*env.Nx, 0.7*env.Nx)
	}
	return []Feature{{
		Lo:         [3]float64{cx - hx, cy - hy, cz - hz},
		Hi:         [3]float64{cx + hx, cy + hy, cz + hz},
		CoreShrink: 0.6,
	}}
}

// solidHalf returns the half-extent of a solid computation-dominated
// feature along an axis of n cells: big enough (>= 3.6 cells, i.e. >= 14
// level-1 cells after outward rasterization) that surface-to-volume stays
// below the comm threshold, capped so the feature fits the axis.
func solidHalf(n float64) float64 { return clampf(0.175*n, 3.6, 7) }

// blobField is a field of scattered solid blobs — the paper's mixing-zone
// growth pattern. Low is static (octant IV); High oscillates each blob
// along y by more than half its extent every snapshot (octant VIII).
type blobField struct {
	n   int
	act Activity
}

// BlobField returns a scattered field of n solid blobs (n clamped to
// [2, 4] so blobs stay separated on the default grid): static under Low
// (octant IV), oscillating under High (octant VIII).
func BlobField(n int, act Activity) Driver {
	if n < 2 {
		n = 2
	}
	if n > 4 {
		n = 4
	}
	return blobField{n: n, act: act}
}

func (b blobField) Name() string { return suffix(fmt.Sprintf("blobs%d", b.n), b.act) }

func (b blobField) Signature() Signature {
	return Signature{HigherDynamics: b.act == High, CommDominated: false, Scattered: true}
}

func (b blobField) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	// The x half-extent must leave a gap between adjacent anchor stations
	// even at worst-case jitter — touching blobs would merge into one
	// non-box region that the clusterer slices into thin high-S/V boxes.
	spacing := env.Nx / float64(b.n+1)
	hx := clampf(spacing/2-2.2, 3.6, 7)
	hy := solidHalf(env.Ny)
	hz := solidHalf(env.Nz)
	out := make([]Feature, 0, b.n)
	for i := 0; i < b.n; i++ {
		cx := float64(i+1)/float64(b.n+1)*env.Nx + (rng.Float64()-0.5)*1.6
		frac := 0.35
		if i%2 == 1 {
			frac = 0.65
		}
		cy := frac*env.Ny + (rng.Float64()-0.5)*2.4
		cz := (1-frac)*env.Nz + (rng.Float64()-0.5)*2.4
		if b.act == High {
			cy += 3.5 * oscSign(age, i)
		}
		out = append(out, Feature{
			Lo:         [3]float64{cx - hx, cy - hy, cz - hz},
			Hi:         [3]float64{cx + hx, cy + hy, cz + hz},
			CoreShrink: 0.6,
		})
	}
	return out
}

// pointSource is a solid region centered on a point. Low holds a fixed
// radius (octant III); High grows it in a pulse cycle — expand by a fixed
// increment per snapshot, reset on reaching the cap — so the refined
// volume changes by well over the dynamics threshold every regrid
// (octant VII).
type pointSource struct {
	act Activity
}

// PointSource returns a point-source driver: a solid region around a
// point, fixed-size under Low (octant III), pulse-growing under High
// (octant VII).
func PointSource(act Activity) Driver { return pointSource{act: act} }

func (p pointSource) Name() string { return suffix("point", p.act) }

func (p pointSource) Signature() Signature {
	return Signature{HigherDynamics: p.act == High, CommDominated: false, Scattered: false}
}

func (p pointSource) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	cx := (0.45 + 0.1*rng.Float64()) * env.Nx
	cy := (0.45 + 0.1*rng.Float64()) * env.Ny
	cz := (0.45 + 0.1*rng.Float64()) * env.Nz
	minDim := math.Min(env.Nx, math.Min(env.Ny, env.Nz))
	// Both the smallest and the largest pulse radius stay in the solid
	// comp-dominated regime (>= 3.6 cells half-extent).
	h0 := 3.6
	hMax := clampf(0.25*minDim, h0, 7)
	h := hMax
	if p.act == High {
		const growth = 1.2
		cycle := int((hMax-h0)/growth) + 1
		h = h0 + growth*float64(age%cycle)
	}
	return []Feature{{
		Lo:         [3]float64{cx - h, cy - h, cz - h},
		Hi:         [3]float64{cx + h, cy + h, cz + h},
		CoreShrink: 0.6,
	}}
}

// mergingFronts is two full-cross-section sheets approaching each other
// along x until they merge into one consolidating slab: the scenario
// starts as scattered fast-moving comm-dominated refinement (octant VI)
// and transitions through localization toward a static slab (octant I) —
// an in-phase octant transition driver.
type mergingFronts struct{}

// MergingFronts returns the two-fronts-merging driver. Its declared
// signature is the initial approaching regime (octant VI); after the
// fronts meet the phase migrates toward octant I, which makes it the
// natural ingredient for octant-transition scenarios.
func MergingFronts() Driver { return mergingFronts{} }

func (mergingFronts) Name() string { return "merge" }

func (mergingFronts) Signature() Signature {
	return Signature{HigherDynamics: true, CommDominated: true, Scattered: true}
}

func (mergingFronts) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	v := 2.5
	x1 := (0.12+0.04*rng.Float64())*env.Nx + v*float64(age)
	x2 := (0.84+0.04*rng.Float64())*env.Nx - v*float64(age)
	if x2-x1 > 4 {
		cross := func(x float64) Feature {
			return Feature{
				Lo: [3]float64{x - sheetThickness/2, 0, 0},
				Hi: [3]float64{x + sheetThickness/2, env.Ny, env.Nz},
			}
		}
		return []Feature{cross(x1), cross(x2)}
	}
	// Merged: one static thin front at the meeting point. It must stay
	// sheet-thin — a thicker consolidated slab would flip to
	// computation-dominated and leave the declared post-merge octant I.
	mid := (x1 + x2) / 2
	return []Feature{{
		Lo: [3]float64{mid - sheetThickness/2, 0, 0},
		Hi: [3]float64{mid + sheetThickness/2, env.Ny, env.Nz},
	}}
}

// background is faint static noise: a few small solid specks scattered
// over the domain, persisting unchanged across snapshots. Small specks
// have high surface-to-volume, so on its own the driver reads as static
// scattered comm-dominated refinement (octant II); its intended use is as
// an ingredient under other drivers.
type background struct {
	n int
}

// Background returns a static background-noise driver with n specks
// (clamped to [2, 8]).
func Background(n int) Driver {
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return background{n: n}
}

func (b background) Name() string { return fmt.Sprintf("background%d", b.n) }

func (b background) Signature() Signature {
	return Signature{HigherDynamics: false, CommDominated: true, Scattered: true}
}

func (b background) Features(age int, env Env, seed int64) []Feature {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Feature, 0, b.n)
	for i := 0; i < b.n; i++ {
		cx := float64(i+1)/float64(b.n+1)*env.Nx + (rng.Float64()-0.5)*3
		cy := (0.2 + 0.6*rng.Float64()) * env.Ny
		cz := (0.2 + 0.6*rng.Float64()) * env.Nz
		out = append(out, Feature{
			Lo: [3]float64{cx - 2.2, cy - 2.2, cz - 2.2},
			Hi: [3]float64{cx + 2.2, cy + 2.2, cz + 2.2},
		})
	}
	return out
}

// ForOctant returns the canonical driver engineered to occupy the given
// octant — the generator-space witness the reachability property tests
// use. Every octant I-VIII has one.
func ForOctant(o octant.Octant) Driver {
	switch o {
	case octant.I:
		return Sheet(Low)
	case octant.II:
		return SheetField(4, Low)
	case octant.III:
		return Block(Low)
	case octant.IV:
		return BlobField(3, Low)
	case octant.V:
		return Sheet(High)
	case octant.VI:
		return SheetField(4, High)
	case octant.VII:
		return Block(High)
	case octant.VIII:
		return BlobField(3, High)
	default:
		return Sheet(Low)
	}
}

// Library returns every driver constructor's canonical instances: the
// eight octant witnesses plus the point source, merging fronts and
// background ingredients.
func Library() []Driver {
	out := make([]Driver, 0, 12)
	for o := octant.I; o <= octant.VIII; o++ {
		out = append(out, ForOctant(o))
	}
	return append(out, PointSource(Low), PointSource(High), MergingFronts(), Background(4))
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

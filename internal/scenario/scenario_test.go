package scenario

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestDefaultSpecValidates(t *testing.T) {
	spec := Default()
	spec.Phases = []Phase{{Snapshots: 4, Drivers: []Driver{Sheet(Low)}}}
	if err := spec.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Spec {
		spec := Default()
		spec.Phases = []Phase{{Snapshots: 4, Drivers: []Driver{Sheet(Low)}}}
		return spec
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"tiny dim", func(s *Spec) { s.BaseDims[1] = 4 }, "too small"},
		{"huge dim", func(s *Spec) { s.BaseDims[0] = 4096 }, "too large"},
		{"huge grid", func(s *Spec) { s.BaseDims = [3]int{512, 512, 512} }, "too large"},
		{"bad depth", func(s *Spec) { s.MaxDepth = 9 }, "depth"},
		{"bad ratio", func(s *Spec) { s.Ratio = 1 }, "ratio"},
		{"bad regrid", func(s *Spec) { s.RegridEvery = 0 }, "regrid"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"no drivers", func(s *Spec) { s.Phases[0].Drivers = nil }, "no drivers"},
		{"zero snapshots", func(s *Spec) { s.Phases[0].Snapshots = 0 }, "snapshots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecOptionsAndPhases(t *testing.T) {
	spec, err := ParseSpec("name=demo;dims=32x24x16;seed=99;regrid=2;depth=2;shock:5,block+background4:3,I:4")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Name != "demo" || spec.BaseDims != [3]int{32, 24, 16} || spec.Seed != 99 ||
		spec.RegridEvery != 2 || spec.MaxDepth != 2 {
		t.Fatalf("options not applied: %+v", spec)
	}
	if len(spec.Phases) != 3 {
		t.Fatalf("got %d phases", len(spec.Phases))
	}
	if got := spec.Phases[0].Label(); got != "sheet.high" {
		t.Errorf("phase 0 label %q", got)
	}
	if spec.Phases[0].Snapshots != 5 || spec.Phases[1].Snapshots != 3 || spec.Phases[2].Snapshots != 4 {
		t.Errorf("snapshot counts wrong: %+v", spec.Phases)
	}
	if got := spec.Phases[1].Label(); got != "block+background4" {
		t.Errorf("phase 1 label %q", got)
	}
	if o, ok := spec.Phases[2].Expected(); !ok || o != octant.I {
		t.Errorf("roman phase expectation = %v,%v", o, ok)
	}
	if spec.TotalSnapshots() != 12 {
		t.Errorf("total snapshots %d", spec.TotalSnapshots())
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("sheet")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if spec.Phases[0].Snapshots != 8 {
		t.Errorf("default snapshots %d, want 8", spec.Phases[0].Snapshots)
	}
	if spec.BaseDims != Default().BaseDims {
		t.Errorf("dims %v, want default", spec.BaseDims)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"",                 // no phases
		"warp:4",           // unknown driver
		"shock.low:4",      // contradictory alias
		"sheet:x",          // bad count
		"dims=32x32;sheet", // bad dims
		"speed=3;sheet",    // unknown option
		"sheet:4;block:4",  // two phase lists
		"+:4",              // empty drivers
		"sheet:4,",         // trailing comma is fine -> actually ok
		"seed=abc;sheet",   // bad seed
		"dims=0x0x0;sheet", // validates dims
		"sheets99x:4",      // trailing junk
	} {
		if s == "sheet:4," {
			if _, err := ParseSpec(s); err != nil {
				t.Errorf("%q: unexpected error %v", s, err)
			}
			continue
		}
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("%q: expected parse error", s)
		}
	}
}

func TestParseDriverRoundTripsNames(t *testing.T) {
	for _, d := range Library() {
		got, err := ParseDriver(d.Name())
		if err != nil {
			t.Errorf("driver name %q does not re-parse: %v", d.Name(), err)
			continue
		}
		if got.Name() != d.Name() {
			t.Errorf("round trip %q -> %q", d.Name(), got.Name())
		}
		if got.Signature() != d.Signature() {
			t.Errorf("%q: signature changed in round trip", d.Name())
		}
	}
}

func TestSubSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for phase := 0; phase < 8; phase++ {
		for driver := 0; driver < 8; driver++ {
			s := SubSeed(42, phase, driver)
			if seen[s] {
				t.Fatalf("duplicate sub-seed at phase %d driver %d", phase, driver)
			}
			seen[s] = true
		}
	}
	if SubSeed(1, 0, 0) == SubSeed(2, 0, 0) {
		t.Error("different scenario seeds collide")
	}
}

// TestGenerateSeedDeterminism is the scenario half of the seed-explicit
// satellite: equal seeds produce byte-identical serialized traces, and
// different seeds change the layout.
func TestGenerateSeedDeterminism(t *testing.T) {
	gen := func(seed int64) []byte {
		spec := Default()
		spec.Seed = seed
		spec.Phases = []Phase{
			{Snapshots: 4, Drivers: []Driver{Sheet(High), Background(3)}},
			{Snapshots: 4, Drivers: []Driver{BlobField(3, Low)}},
		}
		tr, err := spec.Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf bytes.Buffer
		if err := samr.WriteTrace(&buf, tr); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(7), gen(7)) {
		t.Error("equal seeds produced different traces")
	}
	if bytes.Equal(gen(7), gen(8)) {
		t.Error("different seeds produced identical traces")
	}
}

func TestTrajectoryAnnotatesPhases(t *testing.T) {
	spec := Default()
	spec.Phases = []Phase{
		{Snapshots: 3, Drivers: []Driver{Sheet(High)}},
		{Snapshots: 5, Drivers: []Driver{Sheet(Low), Block(Low)}},
	}
	traj := spec.Trajectory()
	if len(traj) != 2 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	if !traj[0].Known || traj[0].Octant != octant.V || traj[0].Start != 0 || traj[0].End != 3 {
		t.Errorf("phase 0 expectation %+v", traj[0])
	}
	// Mixed signatures (I vs III) yield no derived expectation.
	if traj[1].Known {
		t.Errorf("mixed phase unexpectedly has expectation %+v", traj[1])
	}
	spec.Phases[1].Expect = octant.III
	if o, ok := spec.Phases[1].Expected(); !ok || o != octant.III {
		t.Errorf("pinned expectation = %v,%v", o, ok)
	}
}

func TestGeneratedTracesValidate(t *testing.T) {
	spec, err := ParseSpec("seed=3;merge:10,point.high+bg3:6")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tr, err := spec.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(tr.Snapshots) != 16 {
		t.Fatalf("got %d snapshots", len(tr.Snapshots))
	}
	for i, s := range tr.Snapshots {
		if err := s.H.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	// Serialization round-trips the generated trace.
	var buf bytes.Buffer
	if err := samr.WriteTrace(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := samr.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(back.Snapshots) != len(tr.Snapshots) {
		t.Fatalf("round trip lost snapshots: %d != %d", len(back.Snapshots), len(tr.Snapshots))
	}
}

package scenario

import (
	"fmt"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/octant"
)

// This file generates the randomized scenario corpus the property harness
// replays against core.Run. Corpus specs are built only from the canonical
// octant witnesses, so every phase carries a known expected octant and the
// harness can check meta-partitioner selections against Table 2 without
// re-deriving ground truth.

// RandomSpec derives a scenario deterministically from seed: one to three
// phases, each the canonical witness of a random octant, on the Default()
// envelope. Equal seeds produce identical specs, so a corpus member is
// fully identified by its seed.
func RandomSpec(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	spec := Default()
	spec.Seed = seed
	spec.Name = fmt.Sprintf("corpus-%d", seed)
	nPhases := 1 + rng.Intn(3)
	spec.Phases = make([]Phase, 0, nPhases)
	for i := 0; i < nPhases; i++ {
		o := octant.Octant(1 + rng.Intn(8))
		// Warmup plus enough snapshots for the windowed classifier to
		// settle inside the phase.
		spec.Phases = append(spec.Phases, Phase{
			Snapshots: 6 + rng.Intn(5),
			Drivers:   []Driver{ForOctant(o)},
			Expect:    o,
		})
	}
	return spec
}

// Corpus returns n corpus specs with consecutive seeds starting at base.
func Corpus(base int64, n int) []Spec {
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, RandomSpec(base+int64(i)))
	}
	return out
}

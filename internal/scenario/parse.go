package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/pragma-grid/pragma/internal/octant"
)

// This file parses the compact scenario grammar used by the -scenario
// flags on pragma-node and pragma-bench, so serving and load tests can run
// arbitrary composed workloads without writing Go:
//
//	spec    := segment (';' segment)*
//	segment := option | phases
//	option  := 'name=' str | 'dims=' NxNxN | 'seed=' int |
//	           'regrid=' int | 'depth=' int
//	phases  := phase (',' phase)*
//	phase   := drivers [':' snapshots]
//	drivers := driver ('+' driver)*
//	driver  := roman octant (I..VIII, canonical witness) |
//	           name [count] ['.low' | '.high']
//	name    := sheet | shock | sheets | block | blobs | point |
//	           merge | background | bg
//
// Example: "dims=48x24x24;seed=7;shock:8,block+background4:6,I:4" — a
// moving shock for 8 snapshots, then a swept block over background noise,
// then the canonical octant-I witness.

// ParseSpec parses the compact scenario grammar into a validated Spec.
// Options may appear in any order; unspecified options keep the Default()
// values. Phase snapshot counts default to 8.
func ParseSpec(s string) (Spec, error) {
	spec := Default()
	spec.Phases = nil
	sawPhases := false
	for _, seg := range strings.Split(s, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if key, val, ok := splitOption(seg); ok {
			if err := applyOption(&spec, key, val); err != nil {
				return Spec{}, err
			}
			continue
		}
		if sawPhases {
			return Spec{}, fmt.Errorf("scenario: multiple phase lists (second: %q)", seg)
		}
		phases, err := parsePhases(seg)
		if err != nil {
			return Spec{}, err
		}
		spec.Phases = phases
		sawPhases = true
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// splitOption recognizes key=value segments. Phase lists never contain
// '=', so the split is unambiguous.
func splitOption(seg string) (key, val string, ok bool) {
	i := strings.IndexByte(seg, '=')
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(seg[:i]), strings.TrimSpace(seg[i+1:]), true
}

func applyOption(spec *Spec, key, val string) error {
	switch key {
	case "name":
		spec.Name = val
		return nil
	case "dims":
		parts := strings.Split(val, "x")
		if len(parts) != 3 {
			return fmt.Errorf("scenario: dims must be NxNxN, got %q", val)
		}
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("scenario: dims component %q: %w", p, err)
			}
			spec.BaseDims[i] = n
		}
		return nil
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("scenario: seed %q: %w", val, err)
		}
		spec.Seed = n
		return nil
	case "regrid":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: regrid %q: %w", val, err)
		}
		spec.RegridEvery = n
		return nil
	case "depth":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: depth %q: %w", val, err)
		}
		spec.MaxDepth = n
		return nil
	default:
		return fmt.Errorf("scenario: unknown option %q", key)
	}
}

func parsePhases(seg string) ([]Phase, error) {
	var phases []Phase
	for _, tok := range strings.Split(seg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ph, err := parsePhase(tok)
		if err != nil {
			return nil, err
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("scenario: empty phase list %q", seg)
	}
	return phases, nil
}

func parsePhase(tok string) (Phase, error) {
	drivers := tok
	snapshots := 8
	if i := strings.IndexByte(tok, ':'); i >= 0 {
		drivers = strings.TrimSpace(tok[:i])
		n, err := strconv.Atoi(strings.TrimSpace(tok[i+1:]))
		if err != nil {
			return Phase{}, fmt.Errorf("scenario: phase %q snapshot count: %w", tok, err)
		}
		snapshots = n
	}
	ph := Phase{Snapshots: snapshots}
	for _, dtok := range strings.Split(drivers, "+") {
		dtok = strings.TrimSpace(dtok)
		if dtok == "" {
			continue
		}
		d, err := ParseDriver(dtok)
		if err != nil {
			return Phase{}, err
		}
		ph.Drivers = append(ph.Drivers, d)
	}
	if len(ph.Drivers) == 0 {
		return Phase{}, fmt.Errorf("scenario: phase %q has no drivers", tok)
	}
	return ph, nil
}

// romanOctants maps uppercase roman numerals to octants for the canonical
// witness shorthand.
var romanOctants = map[string]octant.Octant{
	"I": octant.I, "II": octant.II, "III": octant.III, "IV": octant.IV,
	"V": octant.V, "VI": octant.VI, "VII": octant.VII, "VIII": octant.VIII,
}

// ParseDriver parses one driver token of the scenario grammar: an
// uppercase roman numeral (canonical octant witness) or a driver name with
// optional count digits and '.low'/'.high' activity suffix.
func ParseDriver(tok string) (Driver, error) {
	if o, ok := romanOctants[tok]; ok {
		return ForOctant(o), nil
	}
	name := strings.ToLower(tok)
	act := Low
	actGiven := false
	if s, ok := strings.CutSuffix(name, ".high"); ok {
		name, act, actGiven = s, High, true
	} else if s, ok := strings.CutSuffix(name, ".low"); ok {
		name, act, actGiven = s, Low, true
	}
	base := strings.TrimRight(name, "0123456789")
	count := 0
	if digits := name[len(base):]; digits != "" {
		n, err := strconv.Atoi(digits)
		if err != nil {
			return nil, fmt.Errorf("scenario: driver %q count: %w", tok, err)
		}
		count = n
	}
	orDefault := func(n int) int {
		if count > 0 {
			return count
		}
		return n
	}
	switch base {
	case "sheet":
		return Sheet(act), nil
	case "shock":
		if actGiven && act == Low {
			return nil, fmt.Errorf("scenario: driver %q: shock is always high-activity", tok)
		}
		return Sheet(High), nil
	case "sheets":
		return SheetField(orDefault(4), act), nil
	case "block":
		return Block(act), nil
	case "blobs":
		return BlobField(orDefault(3), act), nil
	case "point":
		return PointSource(act), nil
	case "merge":
		return MergingFronts(), nil
	case "background", "bg":
		return Background(orDefault(4)), nil
	default:
		return nil, fmt.Errorf("scenario: unknown driver %q", tok)
	}
}

package scenario

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
)

// FuzzScenarioRun feeds mutated scenario specs through the full
// generate-and-replay path — ParseSpec, trace generation, octant
// classification and meta-partitioned core.Run — asserting it never
// panics and that accepted specs replay cleanly. Run under -race this is
// the systematic probe of the decision core the ISSUE asks for; CI runs
// the seed corpus on every push and a short mutation smoke.
func FuzzScenarioRun(f *testing.F) {
	f.Add("shock:6", int64(1), uint8(8))
	f.Add("dims=32x16x16;seed=5;sheet:4,block:4", int64(2), uint8(4))
	f.Add("merge:10", int64(3), uint8(6))
	f.Add("I:4,V:4,III:4", int64(4), uint8(5))
	f.Add("sheets6.high+bg3:5,blobs4:5", int64(5), uint8(7))
	f.Add("point.high:6,point:4", int64(6), uint8(3))
	f.Add("dims=24x24x24;regrid=2;depth=2;blobs2.high:6", int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, specStr string, seed int64, procs uint8) {
		spec, err := ParseSpec(specStr)
		if err != nil {
			t.Skip()
		}
		spec.Seed = seed
		// Bound the work per input: the grammar admits long phase lists
		// and big grids that are valid but too slow to fuzz.
		if spec.TotalSnapshots() > 48 {
			t.Skip()
		}
		if n := spec.BaseDims[0] * spec.BaseDims[1] * spec.BaseDims[2]; n > 64*32*32 {
			t.Skip()
		}
		tr, err := spec.Generate()
		if err != nil {
			t.Fatalf("accepted spec %q failed to generate: %v", specStr, err)
		}
		np := 1 + int(procs)%16
		res, err := core.Run(tr, core.Adaptive{}, core.RunConfig{
			Machine:   cluster.SP2(np),
			NProcs:    np,
			WorkModel: spec.WorkModel,
		})
		if err != nil {
			t.Fatalf("spec %q: run failed: %v", specStr, err)
		}
		if res.Steps != spec.TotalSnapshots()*spec.RegridEvery {
			t.Fatalf("spec %q: %d steps for %d snapshots every %d",
				specStr, res.Steps, spec.TotalSnapshots(), spec.RegridEvery)
		}
	})
}

// Package scenario is Pragma's programmable phenomenon generator: a
// composable library of refinement drivers (moving planar shocks, point
// sources, merging fronts, oscillating or scattered activity, static
// background noise) that are combined by a scenario specification into a
// synthetic adaptation trace, exactly like rm3d.GenerateTrace produces for
// the paper's Richtmyer–Meshkov run.
//
// The point of the package is octant coverage. The paper's whole value
// proposition — octant characterization (Fig. 2) driving runtime
// partitioner selection (Table 2) — is only as validated as the workloads
// that exercise it, and a single hard-coded RM3D phase script visits each
// octant on one fixed trajectory. Every scenario driver instead *declares*
// the octant signature its geometry is engineered to produce (see
// Signature and DESIGN.md §13 for the contract), so generated scenarios
// carry a known octant trajectory that property tests can check the
// classifier and the meta-partitioner against. Scenarios with several
// phases switch driver sets mid-run — the adaptive compositional workloads
// of "Novel Runtime Systems Support for Adaptive Compositional Modeling on
// the Grid" (cs/0301018) — and exercise octant transitions and partitioner
// switching under core.Run.
//
// Generation is seed-explicit end to end: a scenario's single Seed is
// split into one independent sub-seed per (phase, driver) pair, no
// package-level math/rand state is consulted, and equal seeds regenerate
// byte-identical traces (samr.WriteTrace output is reproducible).
package scenario

import (
	"fmt"
	"math"

	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/samr"
)

// Signature is the octant signature a driver declares: the half-space of
// each characterization axis its refinement geometry is engineered to
// occupy. The generator's contract (DESIGN.md §13) is that a single-driver
// phase, measured on hierarchy level 1 after a warm-up snapshot, classifies
// into Signature().Octant() under octant.DefaultThresholds().
type Signature struct {
	// HigherDynamics: the refined region relocates by more than the
	// dynamics threshold between regrids (moving, oscillating or re-seeded
	// features) rather than staying put.
	HigherDynamics bool
	// CommDominated: the refined region is thin and sheet-like (high
	// surface-to-volume), so ghost exchange dominates; false means solid
	// blocks where computation dominates.
	CommDominated bool
	// Scattered: the refinement is spread across the domain in several
	// disconnected features rather than one localized region.
	Scattered bool
}

// Octant returns the octant the signature identifies.
func (s Signature) Octant() octant.Octant {
	return octant.FromAxes(s.HigherDynamics, s.CommDominated, s.Scattered)
}

// Env gives a driver the level-0 grid extents it places features in.
type Env struct {
	Nx, Ny, Nz float64
}

// Feature is one refinement-worthy region: an axis-aligned box in
// continuous level-0 coordinates. Features move in fractional cells
// between regrids; rasterization to a level happens at flagging time.
type Feature struct {
	Lo, Hi [3]float64
	// CoreShrink scales the feature down to its level-2 core (0 < f <= 1);
	// 0 means the feature needs only one level of refinement (thin sheets).
	CoreShrink float64
}

// Driver is one phenomenon ingredient: it produces the refinement features
// active at a given age (snapshots since its phase started) and declares
// the octant signature its geometry targets. Implementations must derive
// all randomness from the seed they are handed — never from package-level
// math/rand state — so generation is deterministic per scenario seed.
type Driver interface {
	// Name identifies the driver in specs and reports.
	Name() string
	// Signature declares the octant half-spaces the driver's features are
	// engineered to occupy.
	Signature() Signature
	// Features returns the active features at the given phase-local age.
	// seed is the driver's private sub-seed for this scenario.
	Features(age int, env Env, seed int64) []Feature
}

// Phase is one segment of a scenario: a driver mix active for a number of
// regrid snapshots.
type Phase struct {
	// Name labels the phase in reports (defaults to the driver names).
	Name string
	// Snapshots is how many regrid snapshots the phase covers (>= 1).
	Snapshots int
	// Drivers is the mix of phenomenon ingredients active in the phase.
	Drivers []Driver
	// Expect pins the octant the phase is expected to classify into;
	// 0 derives it from the drivers' signatures (only when they all
	// agree — mixed-signature phases have no derived expectation).
	Expect octant.Octant
}

// Expected returns the octant the phase is expected to occupy and whether
// an expectation exists: the pinned Expect, or the common signature octant
// when every driver agrees.
func (p Phase) Expected() (octant.Octant, bool) {
	if p.Expect.Valid() {
		return p.Expect, true
	}
	if len(p.Drivers) == 0 {
		return 0, false
	}
	o := p.Drivers[0].Signature().Octant()
	for _, d := range p.Drivers[1:] {
		if d.Signature().Octant() != o {
			return 0, false
		}
	}
	return o, true
}

// Label returns the phase name, defaulting to the driver names joined
// with "+".
func (p Phase) Label() string {
	if p.Name != "" {
		return p.Name
	}
	s := ""
	for i, d := range p.Drivers {
		if i > 0 {
			s += "+"
		}
		s += d.Name()
	}
	if s == "" {
		s = "empty"
	}
	return s
}

// Spec is a complete scenario: the grid envelope plus the phase script.
type Spec struct {
	// Name identifies the scenario (the generated trace's Name).
	Name string
	// BaseDims is the level-0 grid size.
	BaseDims [3]int
	// MaxDepth is the number of hierarchy levels (1-4, like rm3d).
	MaxDepth int
	// Ratio is the refinement factor between levels.
	Ratio int
	// RegridEvery is the number of coarse steps between snapshots.
	RegridEvery int
	// Seed is the single scenario seed; sub-seeds for every (phase,
	// driver) pair are split from it deterministically.
	Seed int64
	// Cluster configures the Berger–Rigoutsos clusterer.
	Cluster samr.ClusterOptions
	// Phases is the scenario script, in temporal order.
	Phases []Phase
}

// Default returns the standard scenario envelope: a 48x24x24 base grid
// (large enough that solid comp-dominated features and thin comm-dominated
// sheets are both representable, small enough for property-test corpora),
// 3 levels of factor-2 refinement, regridding every 4 steps. Attach phases
// and a seed to make it runnable.
func Default() Spec {
	return Spec{
		Name:        "scenario",
		BaseDims:    [3]int{48, 24, 24},
		MaxDepth:    3,
		Ratio:       2,
		RegridEvery: 4,
		Seed:        1,
		Cluster:     samr.DefaultClusterOptions(),
	}
}

// Validate checks the specification.
func (s Spec) Validate() error {
	for d := 0; d < 3; d++ {
		if s.BaseDims[d] < 8 {
			return fmt.Errorf("scenario: base dimension %d = %d too small (min 8)", d, s.BaseDims[d])
		}
		if s.BaseDims[d] > 1024 {
			return fmt.Errorf("scenario: base dimension %d = %d too large (max 1024)", d, s.BaseDims[d])
		}
	}
	if n := s.BaseDims[0] * s.BaseDims[1] * s.BaseDims[2]; n > 1<<22 {
		return fmt.Errorf("scenario: base grid of %d cells too large (max %d)", n, 1<<22)
	}
	if s.MaxDepth < 1 || s.MaxDepth > 4 {
		return fmt.Errorf("scenario: max depth %d out of range [1,4]", s.MaxDepth)
	}
	if s.Ratio < 2 {
		return fmt.Errorf("scenario: ratio %d < 2", s.Ratio)
	}
	if s.RegridEvery < 1 {
		return fmt.Errorf("scenario: regrid interval %d < 1", s.RegridEvery)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario: no phases")
	}
	if len(s.Phases) > 32 {
		return fmt.Errorf("scenario: %d phases (max 32)", len(s.Phases))
	}
	total := 0
	for i, p := range s.Phases {
		if p.Snapshots < 1 {
			return fmt.Errorf("scenario: phase %d (%s) has %d snapshots", i, p.Label(), p.Snapshots)
		}
		if len(p.Drivers) == 0 {
			return fmt.Errorf("scenario: phase %d (%s) has no drivers", i, p.Label())
		}
		if len(p.Drivers) > 8 {
			return fmt.Errorf("scenario: phase %d (%s) has %d drivers (max 8)", i, p.Label(), len(p.Drivers))
		}
		total += p.Snapshots
	}
	if total > 2048 {
		return fmt.Errorf("scenario: %d total snapshots (max 2048)", total)
	}
	return nil
}

// TotalSnapshots returns the number of trace snapshots the spec produces.
func (s Spec) TotalSnapshots() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Snapshots
	}
	return n
}

// PhaseAt returns the phase index and phase-local age of snapshot idx.
func (s Spec) PhaseAt(idx int) (phase, age int) {
	for i, p := range s.Phases {
		if idx < p.Snapshots {
			return i, idx
		}
		idx -= p.Snapshots
	}
	last := len(s.Phases) - 1
	return last, s.Phases[last].Snapshots - 1
}

// PhaseExpectation is one entry of the scenario's declared octant
// trajectory: the snapshot range a phase covers and the octant it is
// expected to classify into.
type PhaseExpectation struct {
	Phase string
	// Start and End are the snapshot index range [Start, End) of the phase.
	Start, End int
	// Octant is the expected octant; Known is false for mixed-signature
	// phases with no expectation.
	Octant octant.Octant
	Known  bool
}

// Trajectory returns the declared octant trajectory of the scenario, one
// entry per phase.
func (s Spec) Trajectory() []PhaseExpectation {
	out := make([]PhaseExpectation, 0, len(s.Phases))
	at := 0
	for _, p := range s.Phases {
		o, ok := p.Expected()
		out = append(out, PhaseExpectation{
			Phase: p.Label(), Start: at, End: at + p.Snapshots, Octant: o, Known: ok,
		})
		at += p.Snapshots
	}
	return out
}

// env returns the driver placement environment.
func (s Spec) env() Env {
	return Env{Nx: float64(s.BaseDims[0]), Ny: float64(s.BaseDims[1]), Nz: float64(s.BaseDims[2])}
}

// Domain returns the level-0 domain box.
func (s Spec) Domain() samr.Box {
	return samr.MakeBox(s.BaseDims[0], s.BaseDims[1], s.BaseDims[2])
}

// SubSeed splits the scenario seed into the private sub-seed of the given
// (phase, driver) pair, using a splitmix64-style finalizer so nearby seeds
// and indices decorrelate. Exported so tests can reproduce a driver's
// stream in isolation.
func SubSeed(seed int64, phase, driver int) int64 {
	z := uint64(seed)
	z += 0x9e3779b97f4a7c15 * uint64(phase+1)
	z += 0xbf58476d1ce4e5b9 * uint64(driver+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// features returns the features active at snapshot idx: the union over the
// active phase's drivers, each driven by its own sub-seed.
func (s Spec) features(idx int) []Feature {
	pi, age := s.PhaseAt(idx)
	env := s.env()
	var out []Feature
	for di, d := range s.Phases[pi].Drivers {
		out = append(out, d.Features(age, env, SubSeed(s.Seed, pi, di))...)
	}
	return out
}

// rasterize maps the feature onto level l of a ratio-r hierarchy, rounding
// outward, and clips it to the level domain (same rule as rm3d).
func (f Feature) rasterize(domain samr.Box, ratio, level int) (samr.Box, bool) {
	scale := 1.0
	dom := domain
	for i := 0; i < level; i++ {
		scale *= float64(ratio)
		dom = dom.Refine(ratio)
	}
	var b samr.Box
	for d := 0; d < 3; d++ {
		b.Lo[d] = int(math.Floor(f.Lo[d] * scale))
		b.Hi[d] = int(math.Ceil(f.Hi[d] * scale))
		if b.Hi[d] <= b.Lo[d] {
			b.Hi[d] = b.Lo[d] + 1
		}
	}
	return b.Intersect(dom)
}

// core returns the feature scaled toward its center by CoreShrink, the
// deeper-refinement core.
func (f Feature) core() Feature {
	var out Feature
	for d := 0; d < 3; d++ {
		c := (f.Lo[d] + f.Hi[d]) / 2
		h := (f.Hi[d] - f.Lo[d]) / 2 * f.CoreShrink
		out.Lo[d], out.Hi[d] = c-h, c+h
	}
	return out
}

// HierarchyAt regrids the hierarchy for snapshot idx: it flags the active
// drivers' features on each level and clusters the flags with
// Berger–Rigoutsos, enforcing proper nesting — the same pipeline
// rm3d.HierarchyAt drives with its hard-coded phase script.
func (s Spec) HierarchyAt(idx int) (*samr.Hierarchy, error) {
	domain := s.Domain()
	h, err := samr.NewHierarchy(domain, s.Ratio)
	if err != nil {
		return nil, err
	}
	feats := s.features(idx)
	if s.MaxDepth < 2 || len(feats) == 0 {
		return h, nil
	}

	// Level 1: flag full feature extents on the base grid.
	flags0 := samr.NewFlags(domain)
	for _, f := range feats {
		if b, ok := f.rasterize(domain, s.Ratio, 0); ok {
			flags0.SetBox(b)
		}
	}
	level1Coarse := samr.Cluster(flags0, s.Cluster)
	if len(level1Coarse) == 0 {
		return h, nil
	}
	level1 := make([]samr.Box, len(level1Coarse))
	for i, b := range level1Coarse {
		level1[i] = b.Refine(s.Ratio)
	}
	if err := h.SetLevel(1, level1); err != nil {
		return nil, err
	}

	// Level 2: flag feature cores at level-1 resolution, clipped against
	// the level-1 boxes to guard against clusterer bounding-box overshoot.
	if s.MaxDepth < 3 {
		return h, nil
	}
	var bounding samr.Box
	for _, b := range level1 {
		bounding = bounding.Bound(b)
	}
	flags1 := samr.NewFlags(bounding)
	anyCore := false
	for _, f := range feats {
		if f.CoreShrink <= 0 {
			continue
		}
		if b, ok := f.core().rasterize(domain, s.Ratio, 1); ok {
			flags1.SetBox(b)
			anyCore = true
		}
	}
	if !anyCore {
		return h, nil
	}
	var level2 []samr.Box
	for _, cand := range samr.Cluster(flags1, s.Cluster) {
		for _, parent := range level1 {
			if piece, ok := cand.Intersect(parent); ok {
				level2 = append(level2, piece.Refine(s.Ratio))
			}
		}
	}
	if len(level2) > 0 {
		if err := h.SetLevel(2, level2); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Generate runs the scenario through the regrid loop and returns the
// adaptation trace, exactly the artifact rm3d.GenerateTrace produces: one
// hierarchy snapshot per regrid step, ready for octant characterization
// and core.Run replay.
func (s Spec) Generate() (*samr.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := s.TotalSnapshots()
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	tr := &samr.Trace{
		Name:        name,
		RegridEvery: s.RegridEvery,
		Snapshots:   make([]samr.Snapshot, 0, total),
	}
	for idx := 0; idx < total; idx++ {
		h, err := s.HierarchyAt(idx)
		if err != nil {
			return nil, fmt.Errorf("scenario: snapshot %d: %w", idx, err)
		}
		tr.Snapshots = append(tr.Snapshots, samr.Snapshot{
			Index:      idx,
			CoarseStep: idx * s.RegridEvery,
			Time:       float64(idx*s.RegridEvery) * 0.001,
			H:          h,
		})
	}
	return tr, nil
}

// WorkModel returns the computational cost model at snapshot idx: a
// uniform base cost with a surcharge inside the active features (the same
// front-tracking surcharge rm3d models).
func (s Spec) WorkModel(idx int) samr.WorkModel {
	feats := s.features(idx)
	domain := s.Domain()
	fronts := make([]samr.Front, 0, len(feats))
	for _, f := range feats {
		if b, ok := f.rasterize(domain, s.Ratio, 0); ok {
			fronts = append(fronts, samr.Front{Region: b, Multiplier: 2})
		}
	}
	return samr.FrontWorkModel{Base: samr.UniformWorkModel{CellCost: 1}, Fronts: fronts}
}

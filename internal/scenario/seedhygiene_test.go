package scenario

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPackageLevelRandomness enforces the seed-explicit contract
// syntactically: the trace-generating packages may only construct their
// own rand.Rand from an explicit seed (rand.New, rand.NewSource) — any
// call through math/rand's package-level convenience functions (rand.Intn,
// rand.Float64, rand.Seed, ...) would consult hidden global state and
// break bit-identical regeneration.
func TestNoPackageLevelRandomness(t *testing.T) {
	// Identifiers legitimately selected from the rand package: explicit
	// generator construction and type names.
	allowed := map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true}
	for _, dir := range []string{".", "../rm3d"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				if strings.HasSuffix(path, "_test.go") {
					continue
				}
				// Find the local name math/rand is imported under.
				randName := ""
				for _, imp := range file.Imports {
					if strings.Trim(imp.Path.Value, `"`) == "math/rand" {
						randName = "rand"
						if imp.Name != nil {
							randName = imp.Name.Name
						}
					}
				}
				if randName == "" || randName == "_" {
					continue
				}
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || id.Name != randName || allowed[sel.Sel.Name] {
						return true
					}
					t.Errorf("%s: %s.%s uses package-level math/rand state",
						filepath.Join(dir, filepath.Base(path)), randName, sel.Sel.Name)
					return true
				})
			}
		}
	}
}

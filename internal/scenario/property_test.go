package scenario

import (
	"bytes"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/octant"
	"github.com/pragma-grid/pragma/internal/policy"
	"github.com/pragma-grid/pragma/internal/samr"
)

// This file is the octant-coverage property harness: it proves, against
// generated scenarios rather than the single RM3D script, that every
// octant I-VIII is reachable from the generator space, that the octant
// classifier recovers each driver's declared signature, and that
// core.Run's meta-partitioner selections conform to policy.Table2()
// across a randomized seeded corpus.

// warmup is the number of leading snapshots excluded from signature
// checks: snapshot 0 has no predecessor (its measured dynamics is always
// 0) and windowed classification needs a step to settle.
const warmup = 2

// classifyPhase classifies every post-warmup snapshot of a single-phase
// trace with the given dynamics window and returns the majority octant
// (ties broken toward the lower octant) plus the per-snapshot
// characterizations for diagnostics.
func classifyPhase(t *testing.T, tr *samr.Trace, window int) (octant.Octant, []octant.Characterization) {
	t.Helper()
	chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), window)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	if len(chars) <= warmup {
		t.Fatalf("trace too short for warmup: %d snapshots", len(chars))
	}
	var votes [9]int
	for _, c := range chars[warmup:] {
		if c.Octant.Valid() {
			votes[c.Octant]++
		}
	}
	best := octant.I
	for o := octant.I; o <= octant.VIII; o++ {
		if votes[o] > votes[best] {
			best = o
		}
	}
	return best, chars
}

// singleDriverSpec builds the canonical single-phase scenario for one
// driver on the default envelope.
func singleDriverSpec(d Driver, seed int64, snapshots int) Spec {
	spec := Default()
	spec.Name = "probe-" + d.Name()
	spec.Seed = seed
	spec.Phases = []Phase{{Snapshots: snapshots, Drivers: []Driver{d}}}
	return spec
}

// TestEveryOctantReachable proves the generator space covers the paper's
// whole octant taxonomy: for each octant I-VIII the canonical witness
// driver generates a trace whose post-warmup majority classification is
// exactly that octant.
func TestEveryOctantReachable(t *testing.T) {
	for o := octant.I; o <= octant.VIII; o++ {
		o := o
		t.Run(o.String(), func(t *testing.T) {
			d := ForOctant(o)
			if got := d.Signature().Octant(); got != o {
				t.Fatalf("ForOctant(%v) declares %v", o, got)
			}
			tr, err := singleDriverSpec(d, 11, 10).Generate()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			got, chars := classifyPhase(t, tr, 1)
			if got != o {
				for _, c := range chars {
					t.Logf("snap %d: state %+v -> %v", c.Index, c.State, c.Octant)
				}
				t.Fatalf("driver %s: majority octant %v, want %v", d.Name(), got, o)
			}
		})
	}
}

// TestClassifierRecoversDriverSignatures checks the octant-signature
// contract for the whole driver library: a single-driver phase classifies
// into the driver's declared Signature().Octant(). MergingFronts is a
// transition driver and is checked separately.
func TestClassifierRecoversDriverSignatures(t *testing.T) {
	for _, d := range Library() {
		if d.Name() == "merge" {
			continue
		}
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			want := d.Signature().Octant()
			for _, seed := range []int64{3, 17, 4242} {
				tr, err := singleDriverSpec(d, seed, 9).Generate()
				if err != nil {
					t.Fatalf("seed %d: generate: %v", seed, err)
				}
				got, chars := classifyPhase(t, tr, 1)
				if got != want {
					for _, c := range chars {
						t.Logf("snap %d: state %+v -> %v", c.Index, c.State, c.Octant)
					}
					t.Fatalf("seed %d: driver %s classifies %v, want declared %v", seed, d.Name(), got, want)
				}
			}
		})
	}
}

// TestMergingFrontsTransitions checks the transition driver: the
// approaching regime classifies into its declared octant VI and the
// post-merge tail settles into octant I — an in-phase octant transition.
func TestMergingFrontsTransitions(t *testing.T) {
	d := MergingFronts()
	if got := d.Signature().Octant(); got != octant.VI {
		t.Fatalf("declared octant %v, want VI", got)
	}
	tr, err := singleDriverSpec(d, 5, 16).Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 1)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	for _, c := range chars {
		t.Logf("snap %d: state %+v -> %v", c.Index, c.State, c.Octant)
	}
	for i := warmup; i < 5; i++ {
		if chars[i].Octant != octant.VI {
			t.Errorf("approach snap %d: octant %v, want VI", i, chars[i].Octant)
		}
	}
	last := chars[len(chars)-1]
	if last.Octant != octant.I {
		t.Errorf("post-merge snap %d: octant %v, want I", last.Index, last.Octant)
	}
}

// conformanceMachine is the simulated machine the corpus replays on.
func conformanceMachine() *cluster.Cluster { return cluster.SP2(8) }

// runSpec replays a generated scenario under the strict Table-2 adaptive
// strategy (no imbalance guard, so every selection is the rule base's).
func runSpec(t *testing.T, spec Spec) (*samr.Trace, *core.RunResult) {
	t.Helper()
	tr, err := spec.Generate()
	if err != nil {
		t.Fatalf("%s: generate: %v", spec.Name, err)
	}
	res, err := core.Run(tr, core.Adaptive{}, core.RunConfig{
		Machine:   conformanceMachine(),
		WorkModel: spec.WorkModel,
	})
	if err != nil {
		t.Fatalf("%s: run: %v", spec.Name, err)
	}
	return tr, res
}

// TestTable2ConformanceCorpus replays a seeded randomized corpus of
// scenarios under core.Run's meta-partitioner and checks, snapshot by
// snapshot, that the partitioner it selected is Table 2's first
// recommendation for the octant the snapshot classifies into. The corpus
// has >= 100 scenarios (trimmed under -short) and every member is
// regenerable from its seed alone.
func TestTable2ConformanceCorpus(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 16
	}
	recs := policy.Table2Recommendations()
	th := octant.DefaultThresholds()
	meta := core.NewMetaPartitioner()
	covered := map[octant.Octant]int{}
	for _, spec := range Corpus(1000, n) {
		tr, res := runSpec(t, spec)
		if len(res.Snapshots) != len(tr.Snapshots) {
			t.Fatalf("%s: %d stats for %d snapshots", spec.Name, len(res.Snapshots), len(tr.Snapshots))
		}
		for _, stat := range res.Snapshots {
			state, err := octant.StateAt(tr, stat.Index, meta.Window)
			if err != nil {
				t.Fatalf("%s: state at %d: %v", spec.Name, stat.Index, err)
			}
			oct := octant.Classify(state, th)
			covered[oct]++
			want := recs[oct.String()][0]
			if stat.Partitioner != want {
				t.Fatalf("%s snap %d: octant %v selected %q, Table 2 wants %q",
					spec.Name, stat.Index, oct, stat.Partitioner, want)
			}
		}
	}
	t.Logf("corpus octant coverage: %v", covered)
	if !testing.Short() {
		for o := octant.I; o <= octant.VIII; o++ {
			if covered[o] == 0 {
				t.Errorf("corpus never visited octant %v", o)
			}
		}
	}
}

// TestCorpusBitIdenticalRegeneration checks the explicit-seed contract on
// the corpus: regenerating a member from its seed yields a byte-identical
// serialized trace.
func TestCorpusBitIdenticalRegeneration(t *testing.T) {
	for _, seed := range []int64{1000, 1017, 1042, 1099} {
		a, err := RandomSpec(seed).Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := RandomSpec(seed).Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var bufA, bufB bytes.Buffer
		if err := samr.WriteTrace(&bufA, a); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		if err := samr.WriteTrace(&bufB, b); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Errorf("seed %d: regenerated trace differs byte-wise", seed)
		}
	}
}

// TestCompositionalScenarioSwitchesPartitioners runs an adaptive
// compositional scenario — driver sets switching mid-run, the
// cs/0301018-style model switch — and checks the octant transitions force
// the meta-partitioner to actually switch schemes.
func TestCompositionalScenarioSwitchesPartitioners(t *testing.T) {
	spec := Default()
	spec.Name = "compositional"
	spec.Seed = 7
	// Phase octants alternate between Table-2 recommendations (V: pBD-ISP,
	// III: G-MISP+SP, VI: pBD-ISP) so each transition forces a switch.
	spec.Phases = []Phase{
		{Snapshots: 8, Drivers: []Driver{Sheet(High)}, Expect: octant.V},
		{Snapshots: 8, Drivers: []Driver{Block(Low)}, Expect: octant.III},
		{Snapshots: 8, Drivers: []Driver{SheetField(4, High)}, Expect: octant.VI},
	}
	tr, res := runSpec(t, spec)
	if res.Switches < 2 {
		t.Errorf("compositional run switched %d times, want >= 2", res.Switches)
	}
	seen := map[string]bool{}
	for _, stat := range res.Snapshots {
		seen[stat.Partitioner] = true
	}
	if !seen["pBD-ISP"] || !seen["G-MISP+SP"] {
		t.Errorf("partitioners seen %v, want both pBD-ISP (octant V) and G-MISP+SP (octants III/VIII)", seen)
	}
	// The declared trajectory annotates the same run: phase expectations
	// hold in the steady part of each phase (skip per-phase warmup while
	// the windowed dynamics estimate crosses the driver change).
	chars, err := octant.CharacterizeTrace(tr, octant.DefaultThresholds(), 1)
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	for _, exp := range spec.Trajectory() {
		if !exp.Known {
			t.Fatalf("phase %s has no expectation", exp.Phase)
		}
		for i := exp.Start + warmup; i < exp.End; i++ {
			if chars[i].Octant != exp.Octant {
				t.Errorf("phase %s snap %d: octant %v, want %v (state %+v)",
					exp.Phase, i, chars[i].Octant, exp.Octant, chars[i].State)
			}
		}
	}
}

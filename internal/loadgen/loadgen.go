// Package loadgen is an open-loop HTTP load-generation engine for the
// /sched serving surface.
//
// Open loop means arrivals follow the configured schedule, not the
// server's pace: each request has an intended arrival time derived from
// the QPS ramp, and its latency is measured from that intended time, so
// queueing delay inside a saturated server (or inside the generator's own
// bounded worker pool) counts against it. This is the standard defense
// against coordinated omission — a closed loop that waits for each reply
// before sending the next request under-reports tail latency exactly when
// the server struggles.
//
// The engine hammers two endpoints: POST /sched/submit (admissions) and
// GET /sched/status (reads of previously admitted runs), mixed by
// StatusRatio. Backpressure is part of the protocol: a 429 with a
// Retry-After header is honored — the worker sleeps the advertised delay
// and retries, with the wait still charged to the request's latency.
// Per-endpoint latencies go into telemetry histograms; the Report derives
// p50/p95/p99 from them via Histogram.Quantile.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pragma-grid/pragma/internal/telemetry"
)

// Stage is one rung of the load schedule: hold QPS for Duration.
type Stage struct {
	QPS      float64       `json:"qps"`
	Duration time.Duration `json:"duration"`
}

// Ramp builds the common two-stage schedule: a warmup at half the peak
// rate, then the measured stage at peak. Zero warmup omits the first
// stage.
func Ramp(peakQPS float64, warmup, duration time.Duration) []Stage {
	var stages []Stage
	if warmup > 0 {
		stages = append(stages, Stage{QPS: peakQPS / 2, Duration: warmup})
	}
	return append(stages, Stage{QPS: peakQPS, Duration: duration})
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the target server root, e.g. "http://127.0.0.1:9600"
	// (required). The engine appends /sched/submit and /sched/status.
	BaseURL string
	// Stages is the open-loop schedule (required, in order).
	Stages []Stage
	// Workers bounds in-flight requests (default 64). When every worker
	// is busy the backlog queues; latency keeps counting from the
	// intended arrival time. QueueDepth bounds that backlog (default
	// 4*Workers); arrivals past it are counted as dropped, never
	// silently discarded.
	Workers    int
	QueueDepth int
	// StatusRatio is the fraction of requests that read /sched/status
	// of a previously admitted run instead of submitting (default 0.8).
	// Before any admission succeeds, status requests fall back to
	// submits.
	StatusRatio float64
	// SubmitParams are appended to every /sched/submit query — the spec
	// the target's SpecBuilder materializes.
	SubmitParams url.Values
	// Retries bounds how many times one request follows a 429's
	// Retry-After before counting as an error (default 2). RetryCap
	// clamps a single advertised wait (default 1s).
	Retries  int
	RetryCap time.Duration
	// Seed seeds the request-mix RNG (0 = 1) for reproducible runs.
	Seed int64
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
}

func (c *Config) fill() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL required")
	}
	if len(c.Stages) == 0 {
		return fmt.Errorf("loadgen: at least one stage required")
	}
	for i, st := range c.Stages {
		if st.QPS <= 0 || st.Duration <= 0 {
			return fmt.Errorf("loadgen: stage %d: qps and duration must be positive", i)
		}
	}
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.StatusRatio < 0 || c.StatusRatio > 1 {
		return fmt.Errorf("loadgen: StatusRatio must be in [0,1]")
	}
	if c.StatusRatio == 0 {
		c.StatusRatio = 0.8
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return nil
}

// latencyBuckets cover 0.25ms to ~4s in powers of two — tight enough for
// interpolated p99s at serving scale.
var latencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.032,
	0.064, 0.128, 0.256, 0.512, 1.024, 2.048, 4.096,
}

// EndpointReport is the client-side view of one endpoint under load.
type EndpointReport struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// Backpressure429 counts 429 responses seen (each retried per
	// Retry-After; only exhausted retries also count as errors).
	Backpressure429 int64   `json:"backpressure429"`
	P50Ms           float64 `json:"p50Ms"`
	P95Ms           float64 `json:"p95Ms"`
	P99Ms           float64 `json:"p99Ms"`
	// ThroughputRPS is completed (non-error) requests per wall second.
	ThroughputRPS float64 `json:"throughputRps"`
}

// Report is the engine's result — schema pragma-loadgen/v1.
type Report struct {
	Schema      string  `json:"schema"`
	BaseURL     string  `json:"baseURL"`
	Stages      []Stage `json:"stages"`
	WallSeconds float64 `json:"wallSeconds"`
	// Intended is the schedule's arrival count; Issued were actually
	// started; Dropped is the difference (generator backlog overflow —
	// the bounded queue filled because the server fell too far behind).
	Intended int64 `json:"intended"`
	Issued   int64 `json:"issued"`
	Dropped  int64 `json:"dropped"`

	Endpoints []EndpointReport `json:"endpoints"`
}

// WriteJSON writes the report as one indented JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// P99 returns the worst per-endpoint p99 as a duration — the -slo-p99
// gate input.
func (r *Report) P99() time.Duration {
	worst := 0.0
	for _, ep := range r.Endpoints {
		if ep.P99Ms > worst {
			worst = ep.P99Ms
		}
	}
	return time.Duration(worst * float64(time.Millisecond))
}

// CheckSLO returns an error when any endpoint's p99 exceeds slo
// (slo <= 0 disables the gate).
func (r *Report) CheckSLO(slo time.Duration) error {
	if slo <= 0 {
		return nil
	}
	for _, ep := range r.Endpoints {
		if got := time.Duration(ep.P99Ms * float64(time.Millisecond)); got > slo {
			return fmt.Errorf("loadgen: %s p99 %v exceeds SLO %v", ep.Endpoint, got, slo)
		}
	}
	return nil
}

// engine is one run's shared state.
type engine struct {
	cfg    Config
	reg    *telemetry.Registry
	lat    *telemetry.HistogramVec
	errs   *telemetry.CounterVec
	backp  *telemetry.CounterVec
	reqs   *telemetry.CounterVec
	issued atomic.Int64

	mu  sync.Mutex
	ids []string // ring of admitted run IDs for status reads
	pos int
}

const idRing = 1024

func (e *engine) recordID(id string) {
	if id == "" {
		return
	}
	e.mu.Lock()
	if len(e.ids) < idRing {
		e.ids = append(e.ids, id)
	} else {
		e.ids[e.pos%idRing] = id
		e.pos++
	}
	e.mu.Unlock()
}

func (e *engine) pickID(rng *rand.Rand) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ids) == 0 {
		return ""
	}
	return e.ids[rng.Intn(len(e.ids))]
}

// Run executes the schedule against cfg.BaseURL and reports. ctx cancels
// early (the report covers what ran).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	e := &engine{cfg: cfg, reg: telemetry.NewRegistry()}
	e.lat = e.reg.HistogramVec("loadgen_latency_seconds",
		"request latency from intended arrival time", latencyBuckets, "endpoint")
	e.errs = e.reg.CounterVec("loadgen_errors_total", "failed requests", "endpoint")
	e.backp = e.reg.CounterVec("loadgen_backpressure_total", "429 responses", "endpoint")
	e.reqs = e.reg.CounterVec("loadgen_requests_total", "completed requests", "endpoint")

	// Arrival queue: the scheduler goroutine pushes intended times; the
	// bounded pool consumes. A full queue drops (and counts) arrivals.
	queue := make(chan time.Time, cfg.QueueDepth)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t0 := range queue {
				e.issued.Add(1)
				e.do(ctx, rng, t0)
			}
		}()
	}

	var intended, dropped int64
	start := time.Now()
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
schedule:
	for _, st := range cfg.Stages {
		interval := time.Duration(float64(time.Second) / st.QPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		stageEnd := time.Now().Add(st.Duration)
		next := time.Now()
		for time.Now().Before(stageEnd) {
			if ctx.Err() != nil {
				break schedule
			}
			// Emit every arrival whose intended time has passed — a
			// coarse tick must not silently thin the schedule.
			for now := time.Now(); !next.After(now); next = next.Add(interval) {
				intended++
				select {
				case queue <- next:
				default:
					dropped++
				}
			}
			select {
			case <-ticker.C:
			case <-ctx.Done():
				break schedule
			}
		}
	}
	close(queue)
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := &Report{
		Schema:      "pragma-loadgen/v1",
		BaseURL:     cfg.BaseURL,
		Stages:      cfg.Stages,
		WallSeconds: wall,
		Intended:    intended,
		Issued:      e.issued.Load(),
		Dropped:     dropped,
	}
	for _, ep := range []string{"submit", "status"} {
		h := e.lat.With(ep)
		n := int64(e.reqs.With(ep).Value())
		errs := int64(e.errs.With(ep).Value())
		er := EndpointReport{
			Endpoint:        ep,
			Requests:        n,
			Errors:          errs,
			Backpressure429: int64(e.backp.With(ep).Value()),
			P50Ms:           1e3 * h.Quantile(0.50),
			P95Ms:           1e3 * h.Quantile(0.95),
			P99Ms:           1e3 * h.Quantile(0.99),
		}
		if wall > 0 {
			er.ThroughputRPS = float64(n-errs) / wall
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	return rep, nil
}

// do issues one request (mix decided by rng), honoring 429 Retry-After,
// and records its latency from the intended arrival time t0.
func (e *engine) do(ctx context.Context, rng *rand.Rand, t0 time.Time) {
	endpoint := "submit"
	reqURL := ""
	if rng.Float64() < e.cfg.StatusRatio {
		if id := e.pickID(rng); id != "" {
			endpoint = "status"
			reqURL = e.cfg.BaseURL + "/sched/status?id=" + url.QueryEscape(id)
		}
	}
	if reqURL == "" {
		v := url.Values{}
		for k, vs := range e.cfg.SubmitParams {
			v[k] = vs
		}
		reqURL = e.cfg.BaseURL + "/sched/submit?" + v.Encode()
	}

	ok := false
	for attempt := 0; attempt <= e.cfg.Retries; attempt++ {
		method := http.MethodGet
		if endpoint == "submit" {
			method = http.MethodPost
		}
		req, err := http.NewRequestWithContext(ctx, method, reqURL, nil)
		if err != nil {
			break
		}
		resp, err := e.cfg.Client.Do(req)
		if err != nil {
			break
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			e.backp.With(endpoint).Inc()
			wait := retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if wait > e.cfg.RetryCap {
				wait = e.cfg.RetryCap
			}
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
			}
			break
		}
		if endpoint == "submit" && resp.StatusCode == http.StatusAccepted {
			var st struct {
				ID string `json:"id"`
			}
			if json.NewDecoder(resp.Body).Decode(&st) == nil {
				e.recordID(st.ID)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		ok = resp.StatusCode < 400
		break
	}
	e.reqs.With(endpoint).Inc()
	if !ok {
		e.errs.With(endpoint).Inc()
	}
	e.lat.With(endpoint).Observe(time.Since(t0).Seconds())
}

// retryAfter parses a 429's Retry-After (delay-seconds form; the sched
// surface always sends an integer). Missing or malformed → 100ms.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 100 * time.Millisecond
}

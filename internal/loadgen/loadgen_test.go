package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubSched mimics the /sched serving surface: submit admits with an ID,
// status answers for known IDs.
func stubSched(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	var submits, statuses atomic.Int64
	var seq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/sched/submit", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		submits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"run-%06d","state":"queued"}`, seq.Add(1))
	})
	mux.HandleFunc("/sched/status", func(w http.ResponseWriter, req *http.Request) {
		statuses.Add(1)
		id := req.URL.Query().Get("id")
		if !strings.HasPrefix(id, "run-") {
			http.Error(w, `{"error":"unknown run id"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"state":"done"}`, id)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &submits, &statuses
}

func TestRunReportsBothEndpoints(t *testing.T) {
	srv, submits, statuses := stubSched(t)
	rep, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Stages:  []Stage{{QPS: 400, Duration: 500 * time.Millisecond}},
		Workers: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "pragma-loadgen/v1" {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Issued == 0 || rep.Intended < rep.Issued {
		t.Errorf("intended %d issued %d", rep.Intended, rep.Issued)
	}
	if rep.Issued+rep.Dropped != rep.Intended {
		t.Errorf("issued %d + dropped %d != intended %d", rep.Issued, rep.Dropped, rep.Intended)
	}
	if submits.Load() == 0 || statuses.Load() == 0 {
		t.Fatalf("server saw %d submits, %d statuses; want both exercised", submits.Load(), statuses.Load())
	}
	if len(rep.Endpoints) != 2 {
		t.Fatalf("endpoints %+v", rep.Endpoints)
	}
	for _, ep := range rep.Endpoints {
		if ep.Requests == 0 {
			t.Errorf("%s: no requests recorded", ep.Endpoint)
			continue
		}
		if ep.Errors != 0 {
			t.Errorf("%s: %d errors against a healthy stub", ep.Endpoint, ep.Errors)
		}
		if ep.P50Ms <= 0 || ep.P99Ms < ep.P95Ms || ep.P95Ms < ep.P50Ms {
			t.Errorf("%s: non-monotone percentiles p50=%v p95=%v p99=%v",
				ep.Endpoint, ep.P50Ms, ep.P95Ms, ep.P99Ms)
		}
		if ep.ThroughputRPS <= 0 {
			t.Errorf("%s: throughput %v", ep.Endpoint, ep.ThroughputRPS)
		}
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal([]byte(buf.String()), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

func TestRunHonorsRetryAfter(t *testing.T) {
	// First submit attempt per request 429s with Retry-After: 1; the
	// retry succeeds. The engine must wait and retry, ending with zero
	// errors but a positive backpressure count.
	var rejected atomic.Bool
	var seq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/sched/submit", func(w http.ResponseWriter, req *http.Request) {
		if rejected.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"sched: saturated"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"run-%06d"}`, seq.Add(1))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	start := time.Now()
	rep, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Stages:      []Stage{{QPS: 50, Duration: 200 * time.Millisecond}},
		Workers:     4,
		StatusRatio: 0.001, // effectively all submits
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := rep.Endpoints[0]
	if sub.Endpoint != "submit" {
		t.Fatalf("endpoint order changed: %+v", rep.Endpoints)
	}
	if sub.Backpressure429 != 1 {
		t.Errorf("backpressure count %d, want exactly 1", sub.Backpressure429)
	}
	if sub.Errors != 0 {
		t.Errorf("%d errors; the retried 429 should have succeeded", sub.Errors)
	}
	// The one advertised wait must actually have been served.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("run finished in %v; never honored Retry-After: 1", elapsed)
	}
	// The retried request's ~1s wait must count toward its latency. The
	// histogram interpolates within the (512ms, 1024ms] bucket, so assert
	// against the bucket floor rather than the exact wait.
	if sub.P99Ms < 512 {
		t.Errorf("p99 %vms; the retried request's wait must count toward latency", sub.P99Ms)
	}
}

func TestRunCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Stages:  []Stage{{QPS: 100, Duration: 100 * time.Millisecond}},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var errs, reqs int64
	for _, ep := range rep.Endpoints {
		errs += ep.Errors
		reqs += ep.Requests
	}
	if reqs == 0 || errs != reqs {
		t.Errorf("errors %d of %d requests; every 500 must count", errs, reqs)
	}
}

func TestCheckSLO(t *testing.T) {
	rep := &Report{Endpoints: []EndpointReport{
		{Endpoint: "submit", P99Ms: 12},
		{Endpoint: "status", P99Ms: 80},
	}}
	if err := rep.CheckSLO(50 * time.Millisecond); err == nil {
		t.Error("80ms p99 passed a 50ms SLO")
	}
	if err := rep.CheckSLO(100 * time.Millisecond); err != nil {
		t.Errorf("100ms SLO failed: %v", err)
	}
	if err := rep.CheckSLO(0); err != nil {
		t.Errorf("disabled SLO failed: %v", err)
	}
	if got := rep.P99(); got != 80*time.Millisecond {
		t.Errorf("worst p99 %v, want 80ms", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Stages: []Stage{{QPS: -1, Duration: time.Second}}}); err == nil {
		t.Error("negative qps accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Stages: []Stage{{QPS: 1, Duration: time.Second}}, StatusRatio: 2}); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if got := Ramp(100, time.Second, 2*time.Second); len(got) != 2 || got[0].QPS != 50 {
		t.Errorf("Ramp with warmup: %+v", got)
	}
	if got := Ramp(100, 0, 2*time.Second); len(got) != 1 {
		t.Errorf("Ramp without warmup: %+v", got)
	}
}

// Package rm3d models the adaptive behavior of RM3D, the 3-D compressible
// turbulence kernel (Richtmyer–Meshkov instability) used throughout the
// paper's evaluation.
//
// The original RM3D is a Fortran hydrodynamics code we do not have. Pragma,
// however, never inspects the flow solution — it characterizes the
// application through its *adaptation trace*: snapshots of the SAMR grid
// hierarchy at each regrid step (§4.5). This package therefore implements a
// synthetic Richtmyer–Meshkov phenomenon model that reproduces the
// *structural* phases of an RM run — shock launch, steady propagation,
// shock/interface interaction, mixing-zone growth, reshock, and late-time
// consolidation — and drives real error flagging, Berger–Rigoutsos
// clustering and regridding with it. The resulting trace has the paper's
// shape: a 128x32x32 base grid, 3 levels of factor-2 space-time refinement,
// regridding every 4 steps, 800+ coarse steps, 200+ snapshots, and an octant
// trajectory visiting all eight octants (Table 3).
package rm3d

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Config describes an RM3D trace generation run.
type Config struct {
	// BaseDims is the level-0 grid size. The paper uses 128x32x32.
	BaseDims [3]int
	// MaxDepth is the number of hierarchy levels. The paper uses 3
	// ("3 levels of factor 2 space-time refinements").
	MaxDepth int
	// Ratio is the refinement factor between levels (2 in the paper).
	Ratio int
	// RegridEvery is the number of coarse steps between regrids (4).
	RegridEvery int
	// CoarseSteps is the number of coarse time-steps to run (the paper ran
	// 800; the default runs 804 so the trace has snapshot indices 0..201,
	// covering every time-step Table 3 references).
	CoarseSteps int
	// Seed makes the phenomenon's pseudo-random feature placement
	// deterministic.
	Seed int64
	// Cluster configures the Berger–Rigoutsos clusterer.
	Cluster samr.ClusterOptions
}

// DefaultConfig returns the paper's experimental configuration (§4.5).
func DefaultConfig() Config {
	return Config{
		BaseDims:    [3]int{128, 32, 32},
		MaxDepth:    3,
		Ratio:       2,
		RegridEvery: 4,
		CoarseSteps: 804,
		Seed:        2002,
		Cluster:     samr.DefaultClusterOptions(),
	}
}

// SmallConfig returns a reduced configuration for fast tests: a quarter-size
// domain and a short run that still traverses every phenomenon phase.
func SmallConfig() Config {
	c := DefaultConfig()
	c.BaseDims = [3]int{64, 16, 16}
	c.CoarseSteps = 160 // 41 snapshots
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for d := 0; d < 3; d++ {
		if c.BaseDims[d] < 8 {
			return fmt.Errorf("rm3d: base dimension %d = %d too small (min 8)", d, c.BaseDims[d])
		}
	}
	if c.MaxDepth < 1 || c.MaxDepth > 4 {
		return fmt.Errorf("rm3d: max depth %d out of range [1,4]", c.MaxDepth)
	}
	if c.Ratio < 2 {
		return fmt.Errorf("rm3d: ratio %d < 2", c.Ratio)
	}
	if c.RegridEvery < 1 {
		return fmt.Errorf("rm3d: regrid interval %d < 1", c.RegridEvery)
	}
	if c.CoarseSteps < c.RegridEvery {
		return fmt.Errorf("rm3d: %d coarse steps shorter than one regrid interval", c.CoarseSteps)
	}
	return nil
}

// Snapshots returns the number of trace snapshots the configuration
// produces: one initial snapshot plus one per regrid.
func (c Config) Snapshots() int { return c.CoarseSteps/c.RegridEvery + 1 }

// Domain returns the level-0 domain box.
func (c Config) Domain() samr.Box { return samr.MakeBox(c.BaseDims[0], c.BaseDims[1], c.BaseDims[2]) }

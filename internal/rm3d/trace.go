package rm3d

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
)

// GenerateTrace runs the phenomenon model through the regrid loop and
// returns the adaptation trace: one hierarchy snapshot per regrid step,
// exactly what the paper's single-processor trace run captures (§4.5).
func GenerateTrace(cfg Config) (*samr.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.Snapshots()
	tr := &samr.Trace{
		Name:        "RM3D",
		RegridEvery: cfg.RegridEvery,
		Snapshots:   make([]samr.Snapshot, 0, total),
	}
	for idx := 0; idx < total; idx++ {
		h, err := cfg.HierarchyAt(idx)
		if err != nil {
			return nil, fmt.Errorf("rm3d: snapshot %d: %w", idx, err)
		}
		tr.Snapshots = append(tr.Snapshots, samr.Snapshot{
			Index:      idx,
			CoarseStep: idx * cfg.RegridEvery,
			Time:       float64(idx*cfg.RegridEvery) * 0.001,
			H:          h,
		})
	}
	return tr, nil
}

// HierarchyAt regrids the hierarchy for snapshot idx: it flags the
// phenomenon's features on each level and clusters the flags with
// Berger–Rigoutsos, enforcing proper nesting.
func (cfg Config) HierarchyAt(idx int) (*samr.Hierarchy, error) {
	domain := cfg.Domain()
	h, err := samr.NewHierarchy(domain, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	feats := cfg.features(idx)
	if cfg.MaxDepth < 2 || len(feats) == 0 {
		return h, nil
	}

	// Level 1: flag full feature extents on the base grid.
	flags0 := samr.NewFlags(domain)
	for _, f := range feats {
		if b, ok := f.region.cells(domain, cfg.Ratio, 0); ok {
			flags0.SetBox(b)
		}
	}
	level1Coarse := samr.Cluster(flags0, cfg.Cluster)
	if len(level1Coarse) == 0 {
		return h, nil
	}
	level1 := make([]samr.Box, len(level1Coarse))
	for i, b := range level1Coarse {
		level1[i] = b.Refine(cfg.Ratio)
	}
	if err := h.SetLevel(1, level1); err != nil {
		return nil, err
	}

	// Level 2: flag feature cores at level-1 resolution; nesting holds
	// because cores are subsets of the level-1 flags, but clipping against
	// the level-1 boxes guards against clusterer bounding-box overshoot.
	if cfg.MaxDepth < 3 {
		return h, nil
	}
	var bounding samr.Box
	for _, b := range level1 {
		bounding = bounding.Bound(b)
	}
	flags1 := samr.NewFlags(bounding)
	anyCore := false
	for _, f := range feats {
		if f.coreShrink <= 0 {
			continue
		}
		if b, ok := f.region.shrink(f.coreShrink).cells(domain, cfg.Ratio, 1); ok {
			flags1.SetBox(b)
			anyCore = true
		}
	}
	if !anyCore {
		return h, nil
	}
	var level2 []samr.Box
	for _, cand := range samr.Cluster(flags1, cfg.Cluster) {
		for _, parent := range level1 {
			if piece, ok := cand.Intersect(parent); ok {
				level2 = append(level2, piece.Refine(cfg.Ratio))
			}
		}
	}
	if len(level2) > 0 {
		if err := h.SetLevel(2, level2); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// WorkModel returns the computational cost model for the RM3D kernel at
// snapshot idx: a uniform base cost with a surcharge inside the active
// features, modeling the paper's observation that local physics (and hence
// per-zone cost) changes as fronts move through the system.
func (cfg Config) WorkModel(idx int) samr.WorkModel {
	feats := cfg.features(idx)
	domain := cfg.Domain()
	fronts := make([]samr.Front, 0, len(feats))
	for _, f := range feats {
		if b, ok := f.region.cells(domain, cfg.Ratio, 0); ok {
			fronts = append(fronts, samr.Front{Region: b, Multiplier: 2})
		}
	}
	return samr.FrontWorkModel{Base: samr.UniformWorkModel{CellCost: 1}, Fronts: fronts}
}

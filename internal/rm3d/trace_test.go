package rm3d

import (
	"strings"
	"sync"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// fullTrace generates the paper-scale trace once for the whole test package.
var fullTrace = struct {
	once sync.Once
	tr   *samr.Trace
	err  error
}{}

func paperTrace(t testing.TB) *samr.Trace {
	t.Helper()
	fullTrace.once.Do(func() {
		fullTrace.tr, fullTrace.err = GenerateTrace(DefaultConfig())
	})
	if fullTrace.err != nil {
		t.Fatal(fullTrace.err)
	}
	return fullTrace.tr
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BaseDims = [3]int{4, 32, 32}
	if err := bad.Validate(); err == nil {
		t.Error("tiny dimension accepted")
	}
	bad = good
	bad.MaxDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero depth accepted")
	}
	bad = good
	bad.Ratio = 1
	if err := bad.Validate(); err == nil {
		t.Error("ratio 1 accepted")
	}
	bad = good
	bad.RegridEvery = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero regrid interval accepted")
	}
	bad = good
	bad.CoarseSteps = 2
	if err := bad.Validate(); err == nil {
		t.Error("run shorter than a regrid interval accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.BaseDims != [3]int{128, 32, 32} {
		t.Errorf("base grid = %v, paper uses 128x32x32", c.BaseDims)
	}
	if c.MaxDepth != 3 {
		t.Errorf("depth = %d, paper uses 3 levels", c.MaxDepth)
	}
	if c.Ratio != 2 {
		t.Errorf("ratio = %d, paper uses factor 2", c.Ratio)
	}
	if c.RegridEvery != 4 {
		t.Errorf("regrid interval = %d, paper regrids every 4 steps", c.RegridEvery)
	}
	if c.Snapshots() < 200 {
		t.Errorf("trace has %d snapshots, paper reports over 200", c.Snapshots())
	}
	// Every time-step Table 3 samples must exist in the trace.
	for _, ts := range []int{0, 5, 25, 106, 137, 162, 174, 201} {
		if ts >= c.Snapshots() {
			t.Errorf("Table 3 time-step %d outside trace (%d snapshots)", ts, c.Snapshots())
		}
	}
}

func TestGenerateTraceStructure(t *testing.T) {
	tr := paperTrace(t)
	cfg := DefaultConfig()
	if len(tr.Snapshots) != cfg.Snapshots() {
		t.Fatalf("snapshots = %d, want %d", len(tr.Snapshots), cfg.Snapshots())
	}
	if tr.Name != "RM3D" || tr.RegridEvery != cfg.RegridEvery {
		t.Fatalf("trace metadata wrong: %q %d", tr.Name, tr.RegridEvery)
	}
	for i, s := range tr.Snapshots {
		if s.Index != i || s.CoarseStep != i*cfg.RegridEvery {
			t.Fatalf("snapshot %d indexing wrong: %+v", i, s)
		}
	}
}

func TestTraceHierarchiesValid(t *testing.T) {
	tr := paperTrace(t)
	deepest := 0
	for _, s := range tr.Snapshots {
		if err := s.H.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", s.Index, err)
		}
		if s.H.Depth() > deepest {
			deepest = s.H.Depth()
		}
	}
	if deepest != 3 {
		t.Fatalf("deepest hierarchy has %d levels, want 3", deepest)
	}
}

func TestTraceAMREfficiencyHigh(t *testing.T) {
	// The paper's Table 4 reports ~98.8% AMR efficiency; the synthetic
	// phenomenon must stay in the same regime (adaptivity saves nearly all
	// of the uniform-grid work).
	tr := paperTrace(t)
	for _, idx := range []int{5, 25, 106, 137, 162, 174, 201} {
		s := tr.Snapshots[idx]
		if s.H.Depth() < 3 {
			continue
		}
		if eff := s.H.AMREfficiency(); eff < 90 {
			t.Errorf("snapshot %d AMR efficiency %.2f%% below 90%%", idx, eff)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	cfg := SmallConfig()
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Snapshots {
		if samr.ChangeFraction(a.Snapshots[i].H, b.Snapshots[i].H, 1) != 0 {
			t.Fatalf("snapshot %d differs between identical runs", i)
		}
	}
}

func TestTraceSeedChangesLayout(t *testing.T) {
	cfg := SmallConfig()
	a, _ := GenerateTrace(cfg)
	cfg.Seed++
	b, _ := GenerateTrace(cfg)
	diff := 0
	for i := range a.Snapshots {
		if samr.ChangeFraction(a.Snapshots[i].H, b.Snapshots[i].H, 1) > 0 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed nothing")
	}
}

func TestPhaseSchedule(t *testing.T) {
	cfg := DefaultConfig()
	// The Table 3 sample points must land in the phases engineered for them.
	wantPhases := map[int]Phase{
		0:   PhasePerturbation,
		5:   PhaseShockLaunch,
		25:  PhaseSteadyShock,
		106: PhaseInteraction,
		137: PhaseMixingGrowth,
		162: PhaseLateMixing,
		174: PhaseReshock,
		201: PhaseConsolidation,
	}
	for idx, want := range wantPhases {
		if got := cfg.PhaseAt(idx); got != want {
			t.Errorf("PhaseAt(%d) = %v, want %v", idx, got, want)
		}
	}
	// Phases are contiguous and ordered.
	prev := cfg.PhaseAt(0)
	for idx := 1; idx < cfg.Snapshots(); idx++ {
		p := cfg.PhaseAt(idx)
		if p < prev {
			t.Fatalf("phase went backwards at %d: %v -> %v", idx, prev, p)
		}
		prev = p
	}
}

func TestPhaseStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for p := PhasePerturbation; p <= PhaseConsolidation; p++ {
		s := p.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("phase %d has bad name %q", p, s)
		}
		seen[s] = true
	}
	if Phase(99).String() != "unknown" {
		t.Fatal("out-of-range phase should be unknown")
	}
}

func TestPhaseCharacteristics(t *testing.T) {
	// Structural sanity of the engineered phases, measured on the real
	// trace: scattered phases produce more level-1 clusters than localized
	// ones, and sheet phases have higher surface-to-volume than solid ones.
	tr := paperTrace(t)
	cluster := func(idx int) int { return tr.Snapshots[idx].H.ClusterCount(1) }
	sv := func(idx int) float64 { return tr.Snapshots[idx].H.SurfaceToVolume(1) }

	if cluster(106) <= cluster(25) {
		t.Errorf("interaction phase clusters (%d) not more scattered than steady shock (%d)",
			cluster(106), cluster(25))
	}
	disp := func(idx int) float64 { return tr.Snapshots[idx].H.Dispersion(1) }
	if disp(0) <= disp(201) {
		t.Errorf("perturbation dispersion (%.3f) not more scattered than consolidation (%.3f)",
			disp(0), disp(201))
	}
	if sv(25) <= sv(5) {
		t.Errorf("steady shock sheet s/v (%.3f) not above launch slab s/v (%.3f)", sv(25), sv(5))
	}
	if sv(162) <= sv(137) {
		t.Errorf("late mixing s/v (%.3f) not above mixing growth s/v (%.3f)", sv(162), sv(137))
	}
}

func TestWorkModelChargesFronts(t *testing.T) {
	cfg := SmallConfig()
	h, err := cfg.HierarchyAt(5)
	if err != nil {
		t.Fatal(err)
	}
	wm := cfg.WorkModel(5)
	withFronts := samr.HierarchyWork(h, wm)
	uniform := samr.HierarchyWork(h, samr.UniformWorkModel{})
	if withFronts <= uniform {
		t.Fatalf("front surcharge missing: %g <= %g", withFronts, uniform)
	}
}

func TestProfileRendering(t *testing.T) {
	tr := paperTrace(t)
	p := Profile(tr.Snapshots[5])
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	if len(lines) != 33 { // header + 32 rows
		t.Fatalf("profile has %d lines, want 33", len(lines))
	}
	for _, ch := range []string{"+", "#"} {
		if !strings.Contains(p, ch) {
			t.Errorf("profile missing %q marks:\n%s", ch, p)
		}
	}
	if !strings.Contains(lines[0], "t=5") {
		t.Errorf("profile header wrong: %q", lines[0])
	}
	for _, row := range lines[1:] {
		if len(row) != 128 {
			t.Fatalf("profile row width %d, want 128", len(row))
		}
	}
}

func TestHierarchyAtInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ratio = 0
	if _, err := GenerateTrace(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func BenchmarkHierarchyAt(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.HierarchyAt(106); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateTraceSmall(b *testing.B) {
	cfg := SmallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

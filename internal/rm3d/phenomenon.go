package rm3d

import (
	"math"
	"math/rand"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Phase identifies a structural phase of the Richtmyer–Meshkov run. Each
// phase has a characteristic adaptation pattern (localized/scattered),
// refinement geometry (solid regions vs thin sheets — the proxy for
// computation- vs communication-dominated execution) and activity dynamics
// (how fast the refined region moves between regrids).
type Phase int

// The eight phases, in temporal order.
const (
	// PhasePerturbation: the initial broadband interface perturbation —
	// scattered solid blobs, nearly static.
	PhasePerturbation Phase = iota
	// PhaseShockLaunch: the incident shock forms — a thick compressed slab
	// advancing quickly.
	PhaseShockLaunch
	// PhaseSteadyShock: quasi-steady propagation — a thin shock sheet
	// creeping toward the interface.
	PhaseSteadyShock
	// PhaseInteraction: shock/interface interaction — many small sheet
	// fragments, rapidly re-arranging.
	PhaseInteraction
	// PhaseMixingGrowth: the mixing zone grows — scattered solid blobs
	// drifting and expanding quickly.
	PhaseMixingGrowth
	// PhaseLateMixing: late-time mixing — scattered thin filaments,
	// quasi-static.
	PhaseLateMixing
	// PhaseReshock: the reflected shock sweeps back — a single thin sheet
	// moving fast.
	PhaseReshock
	// PhaseConsolidation: post-reshock consolidation — one solid slowly
	// evolving block.
	PhaseConsolidation
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhasePerturbation:
		return "perturbation"
	case PhaseShockLaunch:
		return "shock-launch"
	case PhaseSteadyShock:
		return "steady-shock"
	case PhaseInteraction:
		return "interaction"
	case PhaseMixingGrowth:
		return "mixing-growth"
	case PhaseLateMixing:
		return "late-mixing"
	case PhaseReshock:
		return "reshock"
	case PhaseConsolidation:
		return "consolidation"
	default:
		return "unknown"
	}
}

// phaseFractions are the cumulative snapshot-index fractions at which each
// phase ends. Chosen so that, with the paper's 202-snapshot run, the
// snapshots Table 3 samples (0, 5, 25, 106, 137, 162, 174, 201) fall in
// phases producing octants IV, VII, I, VI, VIII, II, V and III respectively.
var phaseFractions = [8]float64{
	0.0149, // perturbation ends before snapshot 3/202
	0.0792, // shock launch ends before 16/202
	0.4752, // steady shock ends before 96/202
	0.5990, // interaction ends before 121/202
	0.7475, // mixing growth ends before 151/202
	0.8366, // late mixing ends before 169/202
	0.9208, // reshock ends before 186/202
	1.0001, // consolidation runs to the end
}

// PhaseAt returns the phase active at snapshot index idx of a run with
// total snapshots.
func (c Config) PhaseAt(idx int) Phase {
	total := c.Snapshots()
	f := float64(idx) / float64(total)
	for p, end := range phaseFractions {
		if f < end {
			return Phase(p)
		}
	}
	return PhaseConsolidation
}

// phaseStart returns the first snapshot index of phase p.
func (c Config) phaseStart(p Phase) int {
	if p == 0 {
		return 0
	}
	total := c.Snapshots()
	return int(math.Ceil(phaseFractions[p-1] * float64(total)))
}

// floatBox is an axis-aligned region in continuous level-0 coordinates.
// Features move in fractional cells between regrids; rasterization to a
// given level happens at flagging time.
type floatBox struct {
	lo, hi [3]float64
}

// cells rasterizes the region onto level l of a ratio-r hierarchy, rounding
// outward, and clips it to the level domain.
func (fb floatBox) cells(domain samr.Box, ratio, level int) (samr.Box, bool) {
	scale := 1.0
	dom := domain
	for i := 0; i < level; i++ {
		scale *= float64(ratio)
		dom = dom.Refine(ratio)
	}
	var b samr.Box
	for d := 0; d < 3; d++ {
		b.Lo[d] = int(math.Floor(fb.lo[d] * scale))
		b.Hi[d] = int(math.Ceil(fb.hi[d] * scale))
		if b.Hi[d] <= b.Lo[d] {
			b.Hi[d] = b.Lo[d] + 1
		}
	}
	return b.Intersect(dom)
}

// shrink returns the region scaled toward its center by factor f per axis
// (0 < f <= 1), used to derive the deeper-refinement core of a feature.
func (fb floatBox) shrink(f float64) floatBox {
	var out floatBox
	for d := 0; d < 3; d++ {
		c := (fb.lo[d] + fb.hi[d]) / 2
		h := (fb.hi[d] - fb.lo[d]) / 2 * f
		out.lo[d], out.hi[d] = c-h, c+h
	}
	return out
}

// feature is one refinement-worthy region of the phenomenon: a solid blob,
// slab, or thin sheet.
type feature struct {
	region floatBox
	// coreShrink scales the region down to its level-2 core; 0 means the
	// feature needs only one level of refinement.
	coreShrink float64
}

// features returns the refinement features active at snapshot idx,
// deterministically derived from the config seed.
func (c Config) features(idx int) []feature {
	nx := float64(c.BaseDims[0])
	ny := float64(c.BaseDims[1])
	nz := float64(c.BaseDims[2])
	phase := c.PhaseAt(idx)
	start := c.phaseStart(phase)
	age := idx - start

	switch phase {
	case PhasePerturbation:
		// Scattered solid blobs near the unshocked interface; static.
		rng := rand.New(rand.NewSource(c.Seed + 11))
		return scatterBlobs(rng, 10, [2]float64{0.30, 0.62}, nx, ny, nz,
			[3]float64{0.050 * nx, 0.17 * ny, 0.17 * nz}, 0.7)

	case PhaseShockLaunch:
		// Thick compressed slab behind the accelerating shock front.
		front := 0.06 + 0.05*float64(age)
		back := front - 0.10
		if back < 0.01 {
			back = 0.01
		}
		return []feature{{
			region:     floatBox{lo: [3]float64{back * nx, 0, 0}, hi: [3]float64{front * nx, ny, nz}},
			coreShrink: 0.7,
		}}

	case PhaseSteadyShock:
		// Thin shock sheet creeping toward the interface at 0.75*nx.
		front := 0.66 + 0.0008*float64(age)
		return []feature{{
			region: floatBox{
				lo: [3]float64{(front - 0.008) * nx, 0, 0},
				hi: [3]float64{front * nx, ny, nz},
			},
			coreShrink: 0, // a thin sheet refines one level only
		}}

	case PhaseInteraction:
		// Shock meets the perturbed interface: many sheet fragments,
		// re-seeded every regrid (rapid re-arrangement).
		rng := rand.New(rand.NewSource(c.Seed + 37 + int64(idx)*1009))
		return scatterSheets(rng, 12, [2]float64{0.70, 0.82}, nx, ny, nz, 0.012*nx, 0.26)

	case PhaseMixingGrowth:
		// Mixing zone grows: solid blobs drifting downstream quickly,
		// re-seeded every few regrids.
		epoch := age / 6
		rng := rand.New(rand.NewSource(c.Seed + 53 + int64(epoch)*911))
		blobs := scatterBlobs(rng, 12, [2]float64{0.66, 0.84}, nx, ny, nz,
			[3]float64{0.050 * nx, 0.16 * ny, 0.16 * nz}, 0.7)
		drift := 0.025 * nx * float64(age%6)
		for i := range blobs {
			blobs[i].region.lo[0] += drift
			blobs[i].region.hi[0] += drift
		}
		return blobs

	case PhaseLateMixing:
		// Quasi-static thin filaments in the mixed region.
		rng := rand.New(rand.NewSource(c.Seed + 71))
		return scatterSheets(rng, 10, [2]float64{0.66, 0.90}, nx, ny, nz, 0.012*nx, 0.26)

	case PhaseReshock:
		// Reflected shock sweeps back through the domain.
		front := 0.95 - 0.045*float64(age)
		if front < 0.05 {
			front = 0.05
		}
		return []feature{{
			region: floatBox{
				lo: [3]float64{(front - 0.008) * nx, 0, 0},
				hi: [3]float64{front * nx, ny, nz},
			},
			coreShrink: 0,
		}}

	default: // PhaseConsolidation
		// One consolidated mixing block, slowly thickening.
		grow := 0.002 * float64(age)
		return []feature{{
			region: floatBox{
				lo: [3]float64{(0.66 - grow) * nx, 0.18 * ny, 0.18 * nz},
				hi: [3]float64{(0.90 + grow) * nx, 0.82 * ny, 0.82 * nz},
			},
			coreShrink: 0.7,
		}}
	}
}

// scatterBlobs places n solid blob features with centers uniformly in
// xRange (fractions of nx) and the full y/z interior.
func scatterBlobs(rng *rand.Rand, n int, xRange [2]float64, nx, ny, nz float64, half [3]float64, core float64) []feature {
	out := make([]feature, 0, n)
	for i := 0; i < n; i++ {
		cx := (xRange[0] + rng.Float64()*(xRange[1]-xRange[0])) * nx
		cy := (0.15 + 0.7*rng.Float64()) * ny
		cz := (0.15 + 0.7*rng.Float64()) * nz
		out = append(out, feature{
			region: floatBox{
				lo: [3]float64{cx - half[0], cy - half[1], cz - half[2]},
				hi: [3]float64{cx + half[0], cy + half[1], cz + half[2]},
			},
			coreShrink: core,
		})
	}
	return out
}

// scatterSheets places n thin sheet fragments (thickness `thick` along x,
// lateral extent `lat` fraction of ny/nz).
func scatterSheets(rng *rand.Rand, n int, xRange [2]float64, nx, ny, nz, thick, lat float64) []feature {
	out := make([]feature, 0, n)
	for i := 0; i < n; i++ {
		cx := (xRange[0] + rng.Float64()*(xRange[1]-xRange[0])) * nx
		cy := (0.15 + 0.7*rng.Float64()) * ny
		cz := (0.15 + 0.7*rng.Float64()) * nz
		hy, hz := lat*ny/2, lat*nz/2
		out = append(out, feature{
			region: floatBox{
				lo: [3]float64{cx - thick/2, cy - hy, cz - hz},
				hi: [3]float64{cx + thick/2, cy + hy, cz + hz},
			},
			coreShrink: 0, // sheets refine one level only
		})
	}
	return out
}

package rm3d

import (
	"fmt"
	"strings"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Profile renders an x-y projection of a snapshot's refinement structure as
// ASCII art, reproducing the content of the paper's Figure 3 ("RM3D profile
// views at sampled time-steps"): each column of the base grid is marked with
// the deepest refinement level present anywhere along z.
//
//	'.' unrefined   '+' level 1   '#' level 2 or deeper
func Profile(s samr.Snapshot) string {
	h := s.H
	nx, ny := h.Domain.Dx(0), h.Domain.Dx(1)
	depth := make([][]int, ny)
	for y := range depth {
		depth[y] = make([]int, nx)
	}
	for l := 1; l < h.Depth(); l++ {
		for _, b := range h.Levels[l] {
			coarse := b
			for i := 0; i < l; i++ {
				coarse = coarse.Coarsen(h.Ratio)
			}
			clipped, ok := coarse.Intersect(h.Domain)
			if !ok {
				continue
			}
			for y := clipped.Lo[1]; y < clipped.Hi[1]; y++ {
				for x := clipped.Lo[0]; x < clipped.Hi[0]; x++ {
					if l > depth[y][x] {
						depth[y][x] = l
					}
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%d (coarse step %d): levels=%d cells=%d eff=%.2f%%\n",
		s.Index, s.CoarseStep, h.Depth(), h.TotalCells(), h.AMREfficiency())
	for y := ny - 1; y >= 0; y-- {
		for x := 0; x < nx; x++ {
			switch {
			case depth[y][x] >= 2:
				sb.WriteByte('#')
			case depth[y][x] == 1:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

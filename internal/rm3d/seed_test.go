package rm3d

import (
	"bytes"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// TestTraceBytesIdenticalForEqualSeeds is the seed-explicit regression:
// generation must depend only on Config.Seed, so two runs with equal seeds
// serialize to byte-identical traces (strictly stronger than the
// ChangeFraction check in TestTraceDeterministic — it also pins box order
// and metadata).
func TestTraceBytesIdenticalForEqualSeeds(t *testing.T) {
	gen := func() []byte {
		tr, err := GenerateTrace(SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := samr.WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(), gen()) {
		t.Fatal("equal seeds produced byte-different traces")
	}
}

package sched

import (
	"fmt"
	"testing"
)

// FuzzFairQueue drives random push/pushFront/pop/charge/tenantExit
// sequences against a flat model and checks the queue's invariants: no run
// is lost or duplicated, pops never skip a higher band, normalized service
// only grows under charge, and tenantExit zeroes it.
func FuzzFairQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x21, 0x02, 0x13})       // push A/B/C then pops
	f.Add([]byte{0x00, 0x00, 0x30, 0x20, 0x01, 0x40}) // charges, pop, exit
	f.Add([]byte{0x10, 0x05, 0x12, 0x20, 0x20, 0x20}) // pushFront mixes
	f.Add([]byte{0x31, 0x31, 0x01, 0x11, 0x21, 0x41}) // heavy charge + exit
	f.Add([]byte{0x02, 0x12, 0x22, 0x32, 0x42, 0x00}) // one band churn
	f.Add([]byte{0x00, 0x11, 0x22, 0x30, 0x41, 0x20}) // cross-band sweep
	f.Fuzz(func(t *testing.T, ops []byte) {
		fq := newFairQueue()
		queued := map[string]int{}      // run id -> count queued (must stay 0/1)
		bandN := map[int]int{}          // priority -> queued run count
		service := map[string]float64{} // "prio/tenant" -> last observed service
		total, seq := 0, 0
		for _, op := range ops {
			tenant := string(rune('A' + (op>>2)&3))
			prio := int(op>>4) % 3
			key := fmt.Sprintf("%d/%s", prio, tenant)
			switch op & 3 {
			case 0: // push
				seq++
				id := fmt.Sprintf("r%d", seq)
				fq.push(&run{id: id, tenant: tenant, priority: prio})
				queued[id]++
				bandN[prio]++
				total++
			case 1: // pushFront
				seq++
				id := fmt.Sprintf("f%d", seq)
				fq.pushFront(&run{id: id, tenant: tenant, priority: prio})
				queued[id]++
				bandN[prio]++
				total++
			case 2: // pop
				r := fq.pop()
				if total == 0 {
					if r != nil {
						t.Fatalf("pop on empty queue returned %q", r.id)
					}
					continue
				}
				if r == nil {
					t.Fatalf("pop returned nil with %d runs queued", total)
				}
				if queued[r.id] != 1 {
					t.Fatalf("popped run %q queued-count %d (lost or duplicated)", r.id, queued[r.id])
				}
				queued[r.id] = 0
				for p, n := range bandN {
					if p > r.priority && n > 0 {
						t.Fatalf("popped band %d while band %d had %d queued runs", r.priority, p, n)
					}
				}
				bandN[r.priority]--
				total--
			case 3: // charge one normalized unit
				got := fq.charge(prio, tenant, 1)
				if want := service[key] + 1; got != want {
					t.Fatalf("charge(%s) returned %v, want %v", key, got, want)
				}
				service[key] = got
				if got2 := fq.service(prio, tenant); got2 != got {
					t.Fatalf("service(%s) = %v right after charge returned %v", key, got2, got)
				}
			}
			if op&3 == 3 && op>>6 == 1 { // high bits turn a charge into charge+exit
				fq.tenantExit(tenant)
				for p := 0; p < 3; p++ {
					k := fmt.Sprintf("%d/%s", p, tenant)
					service[k] = 0
					if got := fq.service(p, tenant); got != 0 {
						t.Fatalf("service(%s) = %v after tenantExit, want 0", k, got)
					}
				}
			}
			if fq.len() != total {
				t.Fatalf("len() = %d, model has %d", fq.len(), total)
			}
		}
		rest := fq.drainAll()
		if len(rest) != total {
			t.Fatalf("drainAll returned %d runs, model has %d", len(rest), total)
		}
		for _, r := range rest {
			if queued[r.id] != 1 {
				t.Fatalf("drained run %q queued-count %d (lost or duplicated)", r.id, queued[r.id])
			}
			queued[r.id] = 0
		}
		for id, n := range queued {
			if n != 0 {
				t.Fatalf("run %q never drained (count %d)", id, n)
			}
		}
	})
}

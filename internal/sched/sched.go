// Package sched is Pragma's multi-tenant run scheduler: it executes many
// concurrent core.Run replays through one bounded shared worker pool
// instead of one engine per process.
//
// The paper's ADM/agent architecture manages a single application per
// runtime. Serving heavy traffic needs the complementary layer grid
// schedulers put in front of per-run engines: admission control that
// rejects work the pool cannot absorb, a priority queue with weighted
// per-tenant fairness so one tenant's flood cannot starve the rest,
// per-run isolation so a panic or lost-worker failure in one run never
// disturbs another, and graceful drain — stop admitting, interrupt
// in-flight runs at their next regrid boundary so they checkpoint through
// the internal/checkpoint path, and hand back a set of resumable run
// records.
//
// Fairness is weighted max-min with proportional allocation: every tenant
// carries a weight (submit param weight=, default 1), the scheduler
// charges each completed run attempt's cost — completed regrid intervals,
// or wall-clock seconds for runs that report none — divided by the weight
// as normalized service, and the queue always dispatches the waiting
// tenant with the least normalized service in the highest busy band. On
// top of it sits checkpoint-based preemption: a submit from a tenant far
// below its fair share (or from a higher band) that finds the pool
// saturated fires the most over-share running run's interrupt channel;
// that run checkpoints at its next regrid boundary exactly as a drain
// would, transitions to StatePreempted, and is requeued resumable with
// its service credit intact while the preemptor takes the worker.
//
// Concurrency model: exactly Config.Workers goroutines execute runs; Submit
// never spawns. Admitted runs wait in a fairQueue (priority bands, weighted
// max-min tenant selection). Each dispatch gets its own interrupt channel,
// closed either by a preemption (that one run yields) or by Drain (every
// in-flight run checkpoints, the backlog is cancelled, the pool exits).
package sched

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/stream"
)

// Admission errors. Submit returns one of these (wrapped with context);
// test with errors.Is. They are the backpressure surface: a caller seeing
// ErrSaturated or ErrTenantLimit should retry later, one seeing
// ErrDraining should go to another instance.
var (
	// ErrSaturated means the pool and the admission queue are both full.
	ErrSaturated = errors.New("sched: saturated, admission queue full")
	// ErrTenantLimit means this tenant already holds its maximum share of
	// queued plus running work.
	ErrTenantLimit = errors.New("sched: tenant over admission limit")
	// ErrDraining means the scheduler no longer admits work.
	ErrDraining = errors.New("sched: draining, not admitting")
)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the pool size: the number of runs executing concurrently
	// (default 4). The scheduler runs exactly this many worker goroutines.
	Workers int
	// QueueLimit bounds the admitted-but-waiting backlog (default 64).
	// Submissions beyond it fail with ErrSaturated.
	QueueLimit int
	// TenantLimit bounds one tenant's queued plus running work
	// (0 = unlimited). Submissions beyond it fail with ErrTenantLimit.
	TenantLimit int
	// KeepFinished bounds retained terminal run records (default 1024);
	// the oldest are evicted so a long-lived server's memory stays flat.
	KeepFinished int
	// Events, when non-nil, receives every run lifecycle transition and
	// regrid cycle as stream events, so clients can watch runs over SSE
	// or long-poll instead of hammering /sched/status. Publishing never
	// blocks: a slow subscriber drops events and is marked lagging,
	// costing the scheduler nothing (see internal/stream).
	Events *stream.Hub
	// PreemptRatio tunes checkpoint-based preemption. When a submit finds
	// every worker busy, the scheduler picks the running run whose tenant
	// is most over-share (lowest band first, then highest normalized
	// service) and interrupts it if the submitter outranks it — a higher
	// priority band, or the same band with the victim's normalized service
	// more than PreemptRatio times the submitter's (default 2). The victim
	// checkpoints at its next regrid boundary and is requeued resumable.
	// Negative disables preemption entirely; runs then yield workers only
	// by finishing.
	PreemptRatio float64
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 1024
	}
	if c.PreemptRatio == 0 {
		c.PreemptRatio = 2
	}
}

// Tenant weight bounds. A submission's Weight is clamped into
// [MinWeight, MaxWeight]; zero means "keep the tenant's current weight"
// (DefaultWeight for a tenant that never declared one).
const (
	DefaultWeight = 1.0
	MinWeight     = 0.125
	MaxWeight     = 64.0
)

// clampWeight normalizes a submitted weight: zero or negative (and NaN)
// fall back to DefaultWeight, the rest clamp into [MinWeight, MaxWeight].
func clampWeight(w float64) float64 {
	if !(w > 0) { // catches <= 0 and NaN
		return DefaultWeight
	}
	if w < MinWeight {
		return MinWeight
	}
	if w > MaxWeight {
		return MaxWeight
	}
	return w
}

// RunSpec describes one run to execute: the inputs core.Run needs plus the
// checkpoint configuration that makes the run drainable. Each submission
// needs its own Strategy value — strategies carry per-run state.
type RunSpec struct {
	Trace     *samr.Trace
	Strategy  core.Strategy
	Machine   *cluster.Cluster
	NProcs    int
	Cost      cluster.CostModel
	WorkModel func(idx int) samr.WorkModel
	// CheckpointDir, when set, persists run state at regrid boundaries —
	// and at drain time, which is what makes a drained run resumable.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointKeep  int
	// Resume continues from the latest valid checkpoint in CheckpointDir
	// (how a run drained by a previous instance is picked back up).
	Resume bool
	// EmulateSteps, when positive, follows the replay by running the final
	// snapshot on the message-passing engine for this many BSP steps under
	// worker supervision: every barrier wait is bounded by EmulateDeadline
	// and lost workers are remapped onto survivors up to EmulateRetries
	// times (engine.RunRecovering) before the run fails.
	EmulateSteps    int
	EmulateDeadline time.Duration
	EmulateRetries  int
	// Wire, when set, is the submission's serializable description — the
	// query parameters a SpecBuilder would rebuild this spec from. The
	// HTTP handler fills it automatically; programmatic submitters that
	// want their queued runs to survive a Snapshot/Restore roll must set
	// it themselves (runs without Wire are skipped by Snapshot).
	Wire url.Values
}

func (s *RunSpec) validate() error {
	if s.Trace == nil || len(s.Trace.Snapshots) == 0 {
		return fmt.Errorf("sched: spec has no trace")
	}
	if s.Strategy == nil {
		return fmt.Errorf("sched: spec has no strategy")
	}
	if s.Machine == nil {
		return fmt.Errorf("sched: spec has no machine")
	}
	return nil
}

// SubmitRequest is one admission attempt.
type SubmitRequest struct {
	// Tenant attributes the run for fairness and per-tenant limits
	// ("" is itself a tenant).
	Tenant string
	// Priority orders admitted runs: higher runs first; equal priorities
	// are served by weighted max-min fairness across tenants.
	Priority int
	// Weight sets the tenant's fair-share weight: under saturation a
	// weight-3 tenant completes ~3x the work of a weight-1 tenant in the
	// same band. Zero keeps the tenant's current weight (DefaultWeight if
	// it never declared one); non-zero values are clamped into
	// [MinWeight, MaxWeight] and become the tenant's weight for all its
	// queued and future runs.
	Weight float64
	// Spec is the run to execute.
	Spec RunSpec
	// RunFunc, when non-nil, replaces Spec entirely: the scheduler calls
	// it with the drain-interrupt channel. A RunFunc returning an error
	// wrapping core.ErrInterrupted is recorded as drained. This is the
	// seam tests and synthetic benchmarks use.
	RunFunc func(interrupt <-chan struct{}) (*core.RunResult, error)
}

// State is a run's lifecycle phase.
type State string

// Run states. Queued, Running and Preempted are transient; the rest are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePreempted State = "preempted" // yielded its worker at a regrid boundary; requeued resumable
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateDrained   State = "drained"   // interrupted at a regrid boundary; checkpointed if configured
	StateCancelled State = "cancelled" // still queued when the drain began; never started
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDrained || s == StateCancelled
}

// RunStatus is the externally visible snapshot of one run.
type RunStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// Weight is the tenant's fair-share weight as of this run's admission.
	Weight float64 `json:"weight"`
	State  State   `json:"state"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	// QueueSeconds and RunSeconds are filled as the phases complete.
	QueueSeconds float64 `json:"queueSeconds"`
	RunSeconds   float64 `json:"runSeconds"`

	// Preemptions counts how many times this run was interrupted to hand
	// its worker to an under-share or higher-band submission; each one
	// checkpointed the run and requeued it resumable.
	Preemptions int `json:"preemptions,omitempty"`

	// Error describes a failed run, or the interrupt a drained one
	// stopped with.
	Error string `json:"error,omitempty"`
	// Resumable marks a drained run that can be resubmitted with
	// Spec.Resume against the same CheckpointDir and continue (or, with no
	// checkpoint written yet, correctly restart) toward the identical
	// final result.
	Resumable bool `json:"resumable,omitempty"`
	// CheckpointDir echoes the spec's checkpoint location for resubmission.
	CheckpointDir string `json:"checkpointDir,omitempty"`
	// Result is the completed run's execution profile (done runs only).
	Result *core.RunResult `json:"result,omitempty"`
}

// run is the scheduler's internal record.
type run struct {
	seq      int
	id       string
	tenant   string
	priority int
	weight   float64
	spec     RunSpec
	fromSpec bool // built from Spec (true) or a caller RunFunc (false)
	runFn    func(interrupt <-chan struct{}) (*core.RunResult, error)

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	errText   string // err.Error(), cached once at finish for the hot status path
	result    *core.RunResult
	done      chan struct{} // closed on terminal state

	// Per-dispatch interrupt plumbing: a fresh channel per attempt,
	// closed once by a preemption or a drain (intClosed guards the close).
	interrupt chan struct{}
	intClosed bool
	// preempting marks a run whose interrupt was fired to yield its
	// worker (as opposed to a drain); finish requeues it instead of
	// recording a terminal state.
	preempting  bool
	preemptions int
	// charged is the cumulative cost already billed to the tenant for
	// this run, so a preempted-and-resumed run is only charged the delta
	// each attempt adds.
	charged float64
}

func (r *run) status() RunStatus {
	st := RunStatus{
		ID:          r.id,
		Tenant:      r.tenant,
		Priority:    r.priority,
		Weight:      r.weight,
		State:       r.state,
		Submitted:   r.submitted,
		Started:     r.started,
		Finished:    r.finished,
		Preemptions: r.preemptions,
	}
	if !r.started.IsZero() {
		st.QueueSeconds = r.started.Sub(r.submitted).Seconds()
		if !r.finished.IsZero() {
			st.RunSeconds = r.finished.Sub(r.started).Seconds()
		}
	}
	if r.err != nil {
		st.Error = r.errText
	}
	if r.state == StateDrained || r.state == StatePreempted {
		st.Resumable = r.spec.CheckpointDir != ""
		st.CheckpointDir = r.spec.CheckpointDir
	}
	if r.state == StateDone {
		st.Result = r.result
	}
	return st
}

// Stats is a point-in-time view of the scheduler.
type Stats struct {
	Workers     int  `json:"workers"`
	QueueDepth  int  `json:"queueDepth"`
	QueueLimit  int  `json:"queueLimit"`
	TenantLimit int  `json:"tenantLimit"`
	Active      int  `json:"active"`
	Draining    bool `json:"draining"`

	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Drained   int `json:"drained"`
	Cancelled int `json:"cancelled"`
	// Preemptions counts checkpoint-based preemptions fired since start.
	Preemptions int `json:"preemptions"`
}

// Scheduler multiplexes runs over a bounded worker pool.
type Scheduler struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	queue       *fairQueue
	runs        map[string]*run
	running     map[string]*run // dispatched and executing (preemption victim pool)
	finished    []string        // eviction order of terminal records
	tenantLoad  map[string]int
	weights     map[string]float64       // current weight per active tenant
	gauges      map[string]*tenantGauges // pre-resolved per-tenant metric children
	counts      map[State]int
	active      int
	submitted   int
	seq         int
	preemptions int
	draining    bool

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopped  chan struct{}
}

// New starts a scheduler with Config.Workers pool goroutines. Stop it with
// Drain (graceful) or Close.
func New(cfg Config) *Scheduler {
	cfg.fill()
	s := &Scheduler{
		cfg:        cfg,
		stopped:    make(chan struct{}),
		queue:      newFairQueue(),
		runs:       make(map[string]*run),
		running:    make(map[string]*run),
		tenantLoad: make(map[string]int),
		weights:    make(map[string]float64),
		gauges:     make(map[string]*tenantGauges),
		counts:     make(map[State]int),
	}
	s.cond = sync.NewCond(&s.mu)
	metricWorkers.Set(float64(cfg.Workers))
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// specRunFn builds the execution closure for a spec-based submission. It
// captures the run's ID so regrid-cycle events can be attributed to it on
// the stream hub.
func (s *Scheduler) specRunFn(id string, spec RunSpec) func(<-chan struct{}) (*core.RunResult, error) {
	hub := s.cfg.Events
	return func(interrupt <-chan struct{}) (*core.RunResult, error) {
		var onRegrid func(int, string)
		if hub != nil {
			onRegrid = func(idx int, partitioner string) {
				hub.Publish(stream.Event{
					Run: id, Type: stream.TypeRegrid,
					Cycle: idx, Partitioner: partitioner,
				})
			}
		}
		res, err := core.Run(spec.Trace, spec.Strategy, core.RunConfig{
			Machine:         spec.Machine,
			Cost:            spec.Cost,
			NProcs:          spec.NProcs,
			WorkModel:       spec.WorkModel,
			CheckpointDir:   spec.CheckpointDir,
			CheckpointEvery: spec.CheckpointEvery,
			CheckpointKeep:  spec.CheckpointKeep,
			Resume:          spec.Resume,
			Interrupt:       interrupt,
			OnRegrid:        onRegrid,
		})
		if err != nil {
			return nil, err
		}
		if spec.EmulateSteps > 0 {
			if err := emulateFinalSnapshot(spec); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
}

// publishState emits r's current lifecycle state to the events hub.
// Callers hold s.mu: Hub.Publish never blocks, and publishing under the
// scheduler lock is what guarantees a run's queued → running → terminal
// events reach the hub in order.
func (s *Scheduler) publishState(r *run) {
	if s.cfg.Events == nil {
		return
	}
	s.cfg.Events.Publish(stream.Event{
		Run:   r.id,
		Type:  stream.TypeState,
		State: string(r.state),
		Error: r.errText,
	})
}

// Submit admits a run or rejects it with ErrSaturated, ErrTenantLimit or
// ErrDraining. On admission it returns the queued run's status snapshot;
// the run starts as soon as a pool worker frees up.
func (s *Scheduler) Submit(req SubmitRequest) (RunStatus, error) {
	if req.RunFunc == nil {
		if err := req.Spec.validate(); err != nil {
			return RunStatus{}, err
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		admitDraining.Inc()
		return RunStatus{}, fmt.Errorf("sched: submit %q: %w", req.Tenant, ErrDraining)
	}
	if s.cfg.TenantLimit > 0 && s.tenantLoad[req.Tenant] >= s.cfg.TenantLimit {
		s.mu.Unlock()
		admitTenant.Inc()
		return RunStatus{}, fmt.Errorf("sched: tenant %q at limit %d: %w",
			req.Tenant, s.cfg.TenantLimit, ErrTenantLimit)
	}
	if s.queue.len() >= s.cfg.QueueLimit {
		s.mu.Unlock()
		admitSaturated.Inc()
		return RunStatus{}, fmt.Errorf("sched: queue at limit %d: %w", s.cfg.QueueLimit, ErrSaturated)
	}
	w := s.weights[req.Tenant]
	if req.Weight != 0 {
		w = clampWeight(req.Weight)
		s.weights[req.Tenant] = w
	} else if w == 0 {
		w = DefaultWeight
		s.weights[req.Tenant] = w
	}
	s.seq++
	r := &run{
		seq:       s.seq,
		id:        fmt.Sprintf("run-%06d", s.seq),
		tenant:    req.Tenant,
		priority:  req.Priority,
		weight:    w,
		spec:      req.Spec,
		fromSpec:  req.RunFunc == nil,
		runFn:     req.RunFunc,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if r.runFn == nil {
		r.runFn = s.specRunFn(r.id, req.Spec)
	}
	s.runs[r.id] = r
	s.submitted++
	s.tenantLoad[r.tenant]++
	s.queue.push(r)
	metricQueueDepth.Set(float64(s.queue.len()))
	s.gaugesLocked(r.tenant).weight.Set(w)
	s.maybePreemptLocked(r)
	s.publishState(r)
	st := r.status()
	s.mu.Unlock()

	admitAccepted.Inc()
	s.cond.Signal()
	return st, nil
}

// maybePreemptLocked fires checkpoint-based preemption for a freshly
// queued run when the pool is saturated and the submitter outranks a
// running run: a higher priority band, or the same band with the victim's
// tenant more than Config.PreemptRatio times over the submitter's
// normalized service. The victim — lowest band first, then the most
// over-share tenant — has its interrupt channel closed; it checkpoints at
// its next regrid boundary and finish requeues it resumable. Only runs
// that can actually resume are eligible: spec runs need a CheckpointDir
// (restarting a half-advanced strategy is not bit-identical), RunFunc
// runs opted into interrupt handling by taking the channel. Runs never
// preempt their own tenant — the submitter would just wait behind itself.
func (s *Scheduler) maybePreemptLocked(sub *run) {
	if s.cfg.PreemptRatio < 0 || s.active < s.cfg.Workers || s.draining {
		return
	}
	var victim *run
	var victimSvc float64
	for _, v := range s.running {
		if v.preempting || v.tenant == sub.tenant {
			continue
		}
		if v.fromSpec && v.spec.CheckpointDir == "" {
			continue
		}
		svc := s.queue.service(v.priority, v.tenant)
		if victim == nil || v.priority < victim.priority ||
			(v.priority == victim.priority && svc > victimSvc) {
			victim, victimSvc = v, svc
		}
	}
	if victim == nil {
		return
	}
	if victim.priority >= sub.priority {
		if victim.priority > sub.priority {
			return
		}
		subSvc := s.queue.service(sub.priority, sub.tenant)
		if victimSvc <= subSvc || victimSvc <= subSvc*s.cfg.PreemptRatio {
			return
		}
	}
	victim.preempting = true
	victim.preemptions++
	s.preemptions++
	s.closeInterruptLocked(victim)
	metricPreemptions.Inc()
}

// closeInterruptLocked fires a run's per-dispatch interrupt channel at
// most once. Callers hold s.mu.
func (s *Scheduler) closeInterruptLocked(r *run) {
	if r.interrupt != nil && !r.intClosed {
		r.intClosed = true
		close(r.interrupt)
	}
}

// worker is one pool goroutine: it executes queued runs until a drain
// empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.len() == 0 && !s.draining {
			s.cond.Wait()
		}
		r := s.queue.pop()
		if r == nil { // draining and nothing left
			s.mu.Unlock()
			return
		}
		r.state = StateRunning
		r.started = time.Now()
		r.interrupt = make(chan struct{})
		r.intClosed = false
		r.preempting = false
		s.running[r.id] = r
		s.active++
		metricQueueDepth.Set(float64(s.queue.len()))
		metricActiveRuns.Set(float64(s.active))
		s.publishState(r)
		s.mu.Unlock()

		metricQueueWaitSeconds.Observe(r.started.Sub(r.submitted).Seconds())
		s.execute(r)
	}
}

// execute runs r with panic containment: a panicking run is recorded as
// failed and the worker survives to serve the next one.
func (s *Scheduler) execute(r *run) {
	defer func() {
		if p := recover(); p != nil {
			metricPanics.Inc()
			s.finish(r, nil, fmt.Errorf("sched: run panicked: %v", p))
		}
	}()
	res, err := r.runFn(r.interrupt)
	s.finish(r, res, err)
}

// finish settles a completed run attempt: it charges the attempt's cost
// to the tenant's normalized service, then either requeues a preempted
// run resumable or records the terminal state and releases the tenant
// slot.
func (s *Scheduler) finish(r *run, res *core.RunResult, err error) {
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, core.ErrInterrupted):
		state = StateDrained
	default:
		state = StateFailed
	}

	s.mu.Lock()
	delete(s.running, r.id)
	s.chargeLocked(r, res, err)
	if state == StateDrained && r.preempting && !s.draining {
		// Preempted, not drained: the run checkpointed at its regrid
		// boundary to yield the worker. Requeue it at the front of its
		// tenant's FIFO — service credit intact — flagged to resume from
		// the checkpoint on its next dispatch.
		r.preempting = false
		r.state = StatePreempted
		r.err = nil
		r.errText = ""
		if r.fromSpec && r.spec.CheckpointDir != "" {
			r.spec.Resume = true
			r.runFn = s.specRunFn(r.id, r.spec)
		}
		s.active--
		s.queue.pushFront(r)
		metricActiveRuns.Set(float64(s.active))
		metricQueueDepth.Set(float64(s.queue.len()))
		s.publishState(r)
		s.mu.Unlock()

		metricOutcomes.With(string(StatePreempted)).Inc()
		s.cond.Signal()
		return
	}
	r.preempting = false
	r.state = state
	r.finished = time.Now()
	r.result = res
	r.err = err
	if err != nil {
		r.errText = err.Error()
	}
	s.active--
	s.tenantLoad[r.tenant]--
	if s.tenantLoad[r.tenant] <= 0 {
		delete(s.tenantLoad, r.tenant)
		s.tenantExitLocked(r.tenant)
	}
	s.counts[state]++
	s.retire(r)
	metricActiveRuns.Set(float64(s.active))
	s.publishState(r)
	s.mu.Unlock()

	metricOutcomes.With(string(state)).Inc()
	metricRunSeconds.With(string(state)).Observe(r.finished.Sub(r.started).Seconds())
	close(r.done)
}

// chargeLocked bills the tenant for the progress this attempt made, in
// cost units — completed regrid intervals when the run reports them
// (result snapshots, or the interrupt's resume point), wall-clock seconds
// otherwise — normalized by the tenant's weight. Charges are cumulative
// per run (r.charged), so a preempted-then-resumed run pays only the
// delta each attempt adds. Callers hold s.mu.
func (s *Scheduler) chargeLocked(r *run, res *core.RunResult, err error) {
	var total float64
	switch {
	case res != nil && len(res.Snapshots) > 0:
		total = float64(len(res.Snapshots))
	default:
		if n, ok := interruptedAt(err); ok {
			total = n
		} else {
			total = r.charged + time.Since(r.started).Seconds()
		}
	}
	delta := total - r.charged
	if !(delta > 0) { // also guards NaN from a pathological RunFunc result
		return
	}
	r.charged = total
	w := r.weight
	if w <= 0 {
		w = DefaultWeight
	}
	norm := delta / w
	svc := s.queue.charge(r.priority, r.tenant, norm)
	g := s.gaugesLocked(r.tenant)
	g.cost.Add(delta)
	g.service.Set(svc)
	metricNormalizedService.Observe(norm)
}

// interruptedAt reports the resume point of an interrupted attempt. Kept
// out of chargeLocked so the errors.As target only escapes to the heap on
// the rare interrupted path, not on every clean completion.
func interruptedAt(err error) (float64, bool) {
	if err == nil {
		return 0, false
	}
	var ie *core.InterruptedError
	if errors.As(err, &ie) {
		return float64(ie.Next), true
	}
	return 0, false
}

// tenantExitLocked forgets a tenant whose last queued-or-running run just
// finished: its normalized-service ledger and declared weight reset, so
// the next active period starts fresh (no banked idle credit, no carried
// debt). Callers hold s.mu.
func (s *Scheduler) tenantExitLocked(tenant string) {
	s.queue.tenantExit(tenant)
	delete(s.weights, tenant)
	s.gaugesLocked(tenant).service.Set(0)
}

// retire appends r to the terminal-record ring, evicting the oldest
// records beyond KeepFinished. Callers hold s.mu.
func (s *Scheduler) retire(r *run) {
	s.finished = append(s.finished, r.id)
	for len(s.finished) > s.cfg.KeepFinished {
		delete(s.runs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Drain gracefully stops the scheduler: admission closes, the backlog is
// cancelled, every in-flight run is interrupted at its next regrid
// boundary (checkpointing through its configured store first), and Drain
// returns once the pool has exited — or earlier with ctx's error. Drained
// runs report Resumable and can be resubmitted with Spec.Resume. Drain is
// idempotent; concurrent calls all wait for the same drain.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		metricDrains.Inc()
		for _, r := range s.running {
			s.closeInterruptLocked(r) // interrupt every in-flight run
		}
		cancelled := s.queue.drainAll()
		metricQueueDepth.Set(0)
		now := time.Now()
		for _, r := range cancelled {
			// A preempted run already checkpointed at a regrid boundary;
			// it leaves as drained-resumable, exactly as if the drain had
			// interrupted it itself. Never-started runs are cancelled.
			state := StateCancelled
			if r.state == StatePreempted {
				state = StateDrained
			}
			r.state = state
			r.finished = now
			s.tenantLoad[r.tenant]--
			if s.tenantLoad[r.tenant] <= 0 {
				delete(s.tenantLoad, r.tenant)
				s.tenantExitLocked(r.tenant)
			}
			s.counts[state]++
			s.retire(r)
			s.publishState(r)
			metricOutcomes.With(string(state)).Inc()
			close(r.done)
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	go func() {
		s.wg.Wait()
		s.stopOnce.Do(func() { close(s.stopped) })
	}()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sched: drain: %w", ctx.Err())
	}
}

// Draining reports whether a drain has begun: the scheduler no longer
// admits work. Serving binaries surface it through /readyz so load
// balancers stop routing to the node while in-flight runs checkpoint.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stopped returns a channel closed once a drain has completed and the
// worker pool has exited — however the drain was initiated (Close, Drain,
// or the HTTP drain endpoint). Serving binaries select on it to exit after
// a remote drain.
func (s *Scheduler) Stopped() <-chan struct{} { return s.stopped }

// Close drains with no deadline: it returns once every in-flight run has
// reached a regrid boundary and stopped.
func (s *Scheduler) Close() error { return s.Drain(context.Background()) }

// Status returns the run's current snapshot.
func (s *Scheduler) Status(id string) (RunStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return RunStatus{}, false
	}
	return r.status(), true
}

// Wait blocks until the run reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("sched: unknown run %q", id)
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.status(), nil
}

// Runs lists every retained run record in submission order.
func (s *Scheduler) Runs() []RunStatus {
	return s.RunsPage("", 0)
}

// DefaultRunsLimit caps an HTTP /sched/runs page when no explicit
// ?limit= is given.
const DefaultRunsLimit = 256

// RunsPage lists retained run records in submission order, skipping runs
// submitted up to and including run ID after ("" starts from the oldest
// retained record; an evicted or future ID still orders correctly because
// IDs embed the submission sequence). limit bounds the page size;
// limit <= 0 means unbounded. Page through a large backlog by passing the
// last returned ID as the next after.
func (s *Scheduler) RunsPage(after string, limit int) []RunStatus {
	afterSeq := 0
	if after != "" {
		if n, err := strconv.Atoi(strings.TrimPrefix(after, "run-")); err == nil {
			afterSeq = n
		}
	}
	s.mu.Lock()
	rs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		if r.seq > afterSeq {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
	if limit > 0 && len(rs) > limit {
		rs = rs[:limit]
	}
	out := make([]RunStatus, len(rs))
	for i, r := range rs {
		out[i] = r.status()
	}
	s.mu.Unlock()
	return out
}

// Stats returns the scheduler's aggregate state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:     s.cfg.Workers,
		QueueDepth:  s.queue.len(),
		QueueLimit:  s.cfg.QueueLimit,
		TenantLimit: s.cfg.TenantLimit,
		Active:      s.active,
		Draining:    s.draining,
		Submitted:   s.submitted,
		Done:        s.counts[StateDone],
		Failed:      s.counts[StateFailed],
		Drained:     s.counts[StateDrained],
		Cancelled:   s.counts[StateCancelled],
		Preemptions: s.preemptions,
	}
}

// Package sched is Pragma's multi-tenant run scheduler: it executes many
// concurrent core.Run replays through one bounded shared worker pool
// instead of one engine per process.
//
// The paper's ADM/agent architecture manages a single application per
// runtime. Serving heavy traffic needs the complementary layer grid
// schedulers put in front of per-run engines: admission control that
// rejects work the pool cannot absorb, a priority queue with per-tenant
// fairness so one tenant's flood cannot starve the rest, per-run isolation
// so a panic or lost-worker failure in one run never disturbs another, and
// graceful drain — stop admitting, interrupt in-flight runs at their next
// regrid boundary so they checkpoint through the internal/checkpoint path,
// and hand back a set of resumable run records.
//
// Concurrency model: exactly Config.Workers goroutines execute runs; Submit
// never spawns. Admitted runs wait in a fairQueue (priority bands, tenant
// round-robin). Drain closes one shared interrupt channel that every
// in-flight core.Run polls at regrid boundaries, cancels the backlog, and
// waits for the pool to exit.
package sched

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/stream"
)

// Admission errors. Submit returns one of these (wrapped with context);
// test with errors.Is. They are the backpressure surface: a caller seeing
// ErrSaturated or ErrTenantLimit should retry later, one seeing
// ErrDraining should go to another instance.
var (
	// ErrSaturated means the pool and the admission queue are both full.
	ErrSaturated = errors.New("sched: saturated, admission queue full")
	// ErrTenantLimit means this tenant already holds its maximum share of
	// queued plus running work.
	ErrTenantLimit = errors.New("sched: tenant over admission limit")
	// ErrDraining means the scheduler no longer admits work.
	ErrDraining = errors.New("sched: draining, not admitting")
)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the pool size: the number of runs executing concurrently
	// (default 4). The scheduler runs exactly this many worker goroutines.
	Workers int
	// QueueLimit bounds the admitted-but-waiting backlog (default 64).
	// Submissions beyond it fail with ErrSaturated.
	QueueLimit int
	// TenantLimit bounds one tenant's queued plus running work
	// (0 = unlimited). Submissions beyond it fail with ErrTenantLimit.
	TenantLimit int
	// KeepFinished bounds retained terminal run records (default 1024);
	// the oldest are evicted so a long-lived server's memory stays flat.
	KeepFinished int
	// Events, when non-nil, receives every run lifecycle transition and
	// regrid cycle as stream events, so clients can watch runs over SSE
	// or long-poll instead of hammering /sched/status. Publishing never
	// blocks: a slow subscriber drops events and is marked lagging,
	// costing the scheduler nothing (see internal/stream).
	Events *stream.Hub
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = 1024
	}
}

// RunSpec describes one run to execute: the inputs core.Run needs plus the
// checkpoint configuration that makes the run drainable. Each submission
// needs its own Strategy value — strategies carry per-run state.
type RunSpec struct {
	Trace     *samr.Trace
	Strategy  core.Strategy
	Machine   *cluster.Cluster
	NProcs    int
	Cost      cluster.CostModel
	WorkModel func(idx int) samr.WorkModel
	// CheckpointDir, when set, persists run state at regrid boundaries —
	// and at drain time, which is what makes a drained run resumable.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointKeep  int
	// Resume continues from the latest valid checkpoint in CheckpointDir
	// (how a run drained by a previous instance is picked back up).
	Resume bool
	// EmulateSteps, when positive, follows the replay by running the final
	// snapshot on the message-passing engine for this many BSP steps under
	// worker supervision: every barrier wait is bounded by EmulateDeadline
	// and lost workers are remapped onto survivors up to EmulateRetries
	// times (engine.RunRecovering) before the run fails.
	EmulateSteps    int
	EmulateDeadline time.Duration
	EmulateRetries  int
	// Wire, when set, is the submission's serializable description — the
	// query parameters a SpecBuilder would rebuild this spec from. The
	// HTTP handler fills it automatically; programmatic submitters that
	// want their queued runs to survive a Snapshot/Restore roll must set
	// it themselves (runs without Wire are skipped by Snapshot).
	Wire url.Values
}

func (s *RunSpec) validate() error {
	if s.Trace == nil || len(s.Trace.Snapshots) == 0 {
		return fmt.Errorf("sched: spec has no trace")
	}
	if s.Strategy == nil {
		return fmt.Errorf("sched: spec has no strategy")
	}
	if s.Machine == nil {
		return fmt.Errorf("sched: spec has no machine")
	}
	return nil
}

// SubmitRequest is one admission attempt.
type SubmitRequest struct {
	// Tenant attributes the run for fairness and per-tenant limits
	// ("" is itself a tenant).
	Tenant string
	// Priority orders admitted runs: higher runs first; equal priorities
	// are served tenant-round-robin.
	Priority int
	// Spec is the run to execute.
	Spec RunSpec
	// RunFunc, when non-nil, replaces Spec entirely: the scheduler calls
	// it with the drain-interrupt channel. A RunFunc returning an error
	// wrapping core.ErrInterrupted is recorded as drained. This is the
	// seam tests and synthetic benchmarks use.
	RunFunc func(interrupt <-chan struct{}) (*core.RunResult, error)
}

// State is a run's lifecycle phase.
type State string

// Run states. Queued and Running are transient; the rest are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateDrained   State = "drained"   // interrupted at a regrid boundary; checkpointed if configured
	StateCancelled State = "cancelled" // still queued when the drain began; never started
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateDrained || s == StateCancelled
}

// RunStatus is the externally visible snapshot of one run.
type RunStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    State  `json:"state"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	// QueueSeconds and RunSeconds are filled as the phases complete.
	QueueSeconds float64 `json:"queueSeconds"`
	RunSeconds   float64 `json:"runSeconds"`

	// Error describes a failed run, or the interrupt a drained one
	// stopped with.
	Error string `json:"error,omitempty"`
	// Resumable marks a drained run that can be resubmitted with
	// Spec.Resume against the same CheckpointDir and continue (or, with no
	// checkpoint written yet, correctly restart) toward the identical
	// final result.
	Resumable bool `json:"resumable,omitempty"`
	// CheckpointDir echoes the spec's checkpoint location for resubmission.
	CheckpointDir string `json:"checkpointDir,omitempty"`
	// Result is the completed run's execution profile (done runs only).
	Result *core.RunResult `json:"result,omitempty"`
}

// run is the scheduler's internal record.
type run struct {
	seq      int
	id       string
	tenant   string
	priority int
	spec     RunSpec
	runFn    func(interrupt <-chan struct{}) (*core.RunResult, error)

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	errText   string // err.Error(), cached once at finish for the hot status path
	result    *core.RunResult
	done      chan struct{} // closed on terminal state
}

func (r *run) status() RunStatus {
	st := RunStatus{
		ID:        r.id,
		Tenant:    r.tenant,
		Priority:  r.priority,
		State:     r.state,
		Submitted: r.submitted,
		Started:   r.started,
		Finished:  r.finished,
	}
	if !r.started.IsZero() {
		st.QueueSeconds = r.started.Sub(r.submitted).Seconds()
		if !r.finished.IsZero() {
			st.RunSeconds = r.finished.Sub(r.started).Seconds()
		}
	}
	if r.err != nil {
		st.Error = r.errText
	}
	if r.state == StateDrained {
		st.Resumable = r.spec.CheckpointDir != ""
		st.CheckpointDir = r.spec.CheckpointDir
	}
	if r.state == StateDone {
		st.Result = r.result
	}
	return st
}

// Stats is a point-in-time view of the scheduler.
type Stats struct {
	Workers     int  `json:"workers"`
	QueueDepth  int  `json:"queueDepth"`
	QueueLimit  int  `json:"queueLimit"`
	TenantLimit int  `json:"tenantLimit"`
	Active      int  `json:"active"`
	Draining    bool `json:"draining"`

	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Drained   int `json:"drained"`
	Cancelled int `json:"cancelled"`
}

// Scheduler multiplexes runs over a bounded worker pool.
type Scheduler struct {
	cfg     Config
	drainCh chan struct{}

	mu         sync.Mutex
	cond       *sync.Cond
	queue      *fairQueue
	runs       map[string]*run
	finished   []string // eviction order of terminal records
	tenantLoad map[string]int
	counts     map[State]int
	active     int
	submitted  int
	seq        int
	draining   bool

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopped  chan struct{}
}

// New starts a scheduler with Config.Workers pool goroutines. Stop it with
// Drain (graceful) or Close.
func New(cfg Config) *Scheduler {
	cfg.fill()
	s := &Scheduler{
		cfg:        cfg,
		drainCh:    make(chan struct{}),
		stopped:    make(chan struct{}),
		queue:      newFairQueue(),
		runs:       make(map[string]*run),
		tenantLoad: make(map[string]int),
		counts:     make(map[State]int),
	}
	s.cond = sync.NewCond(&s.mu)
	metricWorkers.Set(float64(cfg.Workers))
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// specRunFn builds the execution closure for a spec-based submission. It
// captures the run's ID so regrid-cycle events can be attributed to it on
// the stream hub.
func (s *Scheduler) specRunFn(id string, spec RunSpec) func(<-chan struct{}) (*core.RunResult, error) {
	hub := s.cfg.Events
	return func(interrupt <-chan struct{}) (*core.RunResult, error) {
		var onRegrid func(int, string)
		if hub != nil {
			onRegrid = func(idx int, partitioner string) {
				hub.Publish(stream.Event{
					Run: id, Type: stream.TypeRegrid,
					Cycle: idx, Partitioner: partitioner,
				})
			}
		}
		res, err := core.Run(spec.Trace, spec.Strategy, core.RunConfig{
			Machine:         spec.Machine,
			Cost:            spec.Cost,
			NProcs:          spec.NProcs,
			WorkModel:       spec.WorkModel,
			CheckpointDir:   spec.CheckpointDir,
			CheckpointEvery: spec.CheckpointEvery,
			CheckpointKeep:  spec.CheckpointKeep,
			Resume:          spec.Resume,
			Interrupt:       interrupt,
			OnRegrid:        onRegrid,
		})
		if err != nil {
			return nil, err
		}
		if spec.EmulateSteps > 0 {
			if err := emulateFinalSnapshot(spec); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
}

// publishState emits r's current lifecycle state to the events hub.
// Callers hold s.mu: Hub.Publish never blocks, and publishing under the
// scheduler lock is what guarantees a run's queued → running → terminal
// events reach the hub in order.
func (s *Scheduler) publishState(r *run) {
	if s.cfg.Events == nil {
		return
	}
	s.cfg.Events.Publish(stream.Event{
		Run:   r.id,
		Type:  stream.TypeState,
		State: string(r.state),
		Error: r.errText,
	})
}

// Submit admits a run or rejects it with ErrSaturated, ErrTenantLimit or
// ErrDraining. On admission it returns the queued run's status snapshot;
// the run starts as soon as a pool worker frees up.
func (s *Scheduler) Submit(req SubmitRequest) (RunStatus, error) {
	if req.RunFunc == nil {
		if err := req.Spec.validate(); err != nil {
			return RunStatus{}, err
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		admitDraining.Inc()
		return RunStatus{}, fmt.Errorf("sched: submit %q: %w", req.Tenant, ErrDraining)
	}
	if s.cfg.TenantLimit > 0 && s.tenantLoad[req.Tenant] >= s.cfg.TenantLimit {
		s.mu.Unlock()
		admitTenant.Inc()
		return RunStatus{}, fmt.Errorf("sched: tenant %q at limit %d: %w",
			req.Tenant, s.cfg.TenantLimit, ErrTenantLimit)
	}
	if s.queue.len() >= s.cfg.QueueLimit {
		s.mu.Unlock()
		admitSaturated.Inc()
		return RunStatus{}, fmt.Errorf("sched: queue at limit %d: %w", s.cfg.QueueLimit, ErrSaturated)
	}
	s.seq++
	r := &run{
		seq:       s.seq,
		id:        fmt.Sprintf("run-%06d", s.seq),
		tenant:    req.Tenant,
		priority:  req.Priority,
		spec:      req.Spec,
		runFn:     req.RunFunc,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if r.runFn == nil {
		r.runFn = s.specRunFn(r.id, req.Spec)
	}
	s.runs[r.id] = r
	s.submitted++
	s.tenantLoad[r.tenant]++
	s.queue.push(r)
	metricQueueDepth.Set(float64(s.queue.len()))
	s.publishState(r)
	st := r.status()
	s.mu.Unlock()

	admitAccepted.Inc()
	s.cond.Signal()
	return st, nil
}

// worker is one pool goroutine: it executes queued runs until a drain
// empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.len() == 0 && !s.draining {
			s.cond.Wait()
		}
		r := s.queue.pop()
		if r == nil { // draining and nothing left
			s.mu.Unlock()
			return
		}
		r.state = StateRunning
		r.started = time.Now()
		s.active++
		metricQueueDepth.Set(float64(s.queue.len()))
		metricActiveRuns.Set(float64(s.active))
		s.publishState(r)
		s.mu.Unlock()

		metricQueueWaitSeconds.Observe(r.started.Sub(r.submitted).Seconds())
		s.execute(r)
	}
}

// execute runs r with panic containment: a panicking run is recorded as
// failed and the worker survives to serve the next one.
func (s *Scheduler) execute(r *run) {
	defer func() {
		if p := recover(); p != nil {
			metricPanics.Inc()
			s.finish(r, nil, fmt.Errorf("sched: run panicked: %v", p))
		}
	}()
	res, err := r.runFn(s.drainCh)
	s.finish(r, res, err)
}

// finish records r's terminal state and releases its tenant slot.
func (s *Scheduler) finish(r *run, res *core.RunResult, err error) {
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, core.ErrInterrupted):
		state = StateDrained
	default:
		state = StateFailed
	}

	s.mu.Lock()
	r.state = state
	r.finished = time.Now()
	r.result = res
	r.err = err
	if err != nil {
		r.errText = err.Error()
	}
	s.active--
	s.tenantLoad[r.tenant]--
	if s.tenantLoad[r.tenant] <= 0 {
		delete(s.tenantLoad, r.tenant)
	}
	s.counts[state]++
	s.retire(r)
	metricActiveRuns.Set(float64(s.active))
	s.publishState(r)
	s.mu.Unlock()

	metricOutcomes.With(string(state)).Inc()
	metricRunSeconds.With(string(state)).Observe(r.finished.Sub(r.started).Seconds())
	close(r.done)
}

// retire appends r to the terminal-record ring, evicting the oldest
// records beyond KeepFinished. Callers hold s.mu.
func (s *Scheduler) retire(r *run) {
	s.finished = append(s.finished, r.id)
	for len(s.finished) > s.cfg.KeepFinished {
		delete(s.runs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Drain gracefully stops the scheduler: admission closes, the backlog is
// cancelled, every in-flight run is interrupted at its next regrid
// boundary (checkpointing through its configured store first), and Drain
// returns once the pool has exited — or earlier with ctx's error. Drained
// runs report Resumable and can be resubmitted with Spec.Resume. Drain is
// idempotent; concurrent calls all wait for the same drain.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		metricDrains.Inc()
		close(s.drainCh) // interrupt every in-flight core.Run
		cancelled := s.queue.drainAll()
		metricQueueDepth.Set(0)
		now := time.Now()
		for _, r := range cancelled {
			r.state = StateCancelled
			r.finished = now
			s.tenantLoad[r.tenant]--
			if s.tenantLoad[r.tenant] <= 0 {
				delete(s.tenantLoad, r.tenant)
			}
			s.counts[StateCancelled]++
			s.retire(r)
			s.publishState(r)
			metricOutcomes.With(string(StateCancelled)).Inc()
			close(r.done)
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	go func() {
		s.wg.Wait()
		s.stopOnce.Do(func() { close(s.stopped) })
	}()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sched: drain: %w", ctx.Err())
	}
}

// Draining reports whether a drain has begun: the scheduler no longer
// admits work. Serving binaries surface it through /readyz so load
// balancers stop routing to the node while in-flight runs checkpoint.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Stopped returns a channel closed once a drain has completed and the
// worker pool has exited — however the drain was initiated (Close, Drain,
// or the HTTP drain endpoint). Serving binaries select on it to exit after
// a remote drain.
func (s *Scheduler) Stopped() <-chan struct{} { return s.stopped }

// Close drains with no deadline: it returns once every in-flight run has
// reached a regrid boundary and stopped.
func (s *Scheduler) Close() error { return s.Drain(context.Background()) }

// Status returns the run's current snapshot.
func (s *Scheduler) Status(id string) (RunStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return RunStatus{}, false
	}
	return r.status(), true
}

// Wait blocks until the run reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Scheduler) Wait(ctx context.Context, id string) (RunStatus, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunStatus{}, fmt.Errorf("sched: unknown run %q", id)
	}
	select {
	case <-r.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.status(), nil
}

// Runs lists every retained run record in submission order.
func (s *Scheduler) Runs() []RunStatus {
	return s.RunsPage("", 0)
}

// DefaultRunsLimit caps an HTTP /sched/runs page when no explicit
// ?limit= is given.
const DefaultRunsLimit = 256

// RunsPage lists retained run records in submission order, skipping runs
// submitted up to and including run ID after ("" starts from the oldest
// retained record; an evicted or future ID still orders correctly because
// IDs embed the submission sequence). limit bounds the page size;
// limit <= 0 means unbounded. Page through a large backlog by passing the
// last returned ID as the next after.
func (s *Scheduler) RunsPage(after string, limit int) []RunStatus {
	afterSeq := 0
	if after != "" {
		if n, err := strconv.Atoi(strings.TrimPrefix(after, "run-")); err == nil {
			afterSeq = n
		}
	}
	s.mu.Lock()
	rs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		if r.seq > afterSeq {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
	if limit > 0 && len(rs) > limit {
		rs = rs[:limit]
	}
	out := make([]RunStatus, len(rs))
	for i, r := range rs {
		out[i] = r.status()
	}
	s.mu.Unlock()
	return out
}

// Stats returns the scheduler's aggregate state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:     s.cfg.Workers,
		QueueDepth:  s.queue.len(),
		QueueLimit:  s.cfg.QueueLimit,
		TenantLimit: s.cfg.TenantLimit,
		Active:      s.active,
		Draining:    s.draining,
		Submitted:   s.submitted,
		Done:        s.counts[StateDone],
		Failed:      s.counts[StateFailed],
		Drained:     s.counts[StateDrained],
		Cancelled:   s.counts[StateCancelled],
	}
}

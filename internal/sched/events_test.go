package sched

import (
	"context"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/stream"
)

func TestEventsObserveEveryTransition(t *testing.T) {
	hub := stream.NewHub(stream.Config{})
	defer hub.Close()
	s := New(Config{Workers: 2, QueueLimit: 16, Events: hub})
	defer s.Close()

	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	// Attach AFTER submitting: history replay must close the race.
	sub := hub.Subscribe(st.ID, 0)

	var states []string
	regrids := 0
	deadline := time.After(30 * time.Second)
	for {
		select {
		case e, ok := <-sub.C:
			if !ok {
				t.Fatal("subscription closed early")
			}
			switch e.Type {
			case stream.TypeState:
				states = append(states, e.State)
			case stream.TypeRegrid:
				if e.Partitioner == "" {
					t.Error("regrid event without partitioner")
				}
				regrids++
			}
		case <-deadline:
			t.Fatalf("timed out; states so far %v", states)
		}
		if len(states) > 0 && State(states[len(states)-1]).terminal() {
			break
		}
	}
	want := []string{"queued", "running", "done"}
	if len(states) != 3 || states[0] != want[0] || states[1] != want[1] || states[2] != want[2] {
		t.Errorf("state events %v, want %v", states, want)
	}
	if wantRegrids := len(testTrace(t).Snapshots); regrids != wantRegrids {
		t.Errorf("saw %d regrid events, want %d (one per snapshot)", regrids, wantRegrids)
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("subscriber dropped %d events unexpectedly", d)
	}
}

func TestSlowSubscriberNeverBlocksSubmit(t *testing.T) {
	hub := stream.NewHub(stream.Config{SubBuffer: 1})
	defer hub.Close()
	s := New(Config{Workers: 2, QueueLimit: 512, Events: hub})
	defer s.Close()

	// A subscriber that never reads: every publish past its 1-slot buffer
	// must drop, not block.
	sub := hub.Subscribe("", 0)

	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := s.Submit(SubmitRequest{
				Tenant: "flood",
				RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
					<-block
					return &core.RunResult{Strategy: "noop"}, nil
				},
			}); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Submit blocked behind a slow event subscriber")
	}
	close(block)
	waitFor(t, "all runs to finish", func() bool {
		st := s.Stats()
		return st.Done == 200
	})
	if d := sub.Dropped(); d == 0 {
		t.Error("slow subscriber was never marked lagging (dropped == 0)")
	}
}

func TestDrainPublishesCancelledEvents(t *testing.T) {
	hub := stream.NewHub(stream.Config{SubBuffer: 256})
	defer hub.Close()
	s := New(Config{Workers: 1, QueueLimit: 16, Events: hub})

	block := make(chan struct{})
	// One run occupies the single worker; the rest stay queued.
	if _, err := s.Submit(SubmitRequest{RunFunc: func(interrupt <-chan struct{}) (*core.RunResult, error) {
		close(block)
		<-interrupt
		return &core.RunResult{Strategy: "noop"}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-block
	queued := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		st, err := s.Submit(SubmitRequest{RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
			return &core.RunResult{Strategy: "noop"}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, st.ID)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	events, _, _ := hub.Since("", 0)
	cancelled := map[string]bool{}
	for _, e := range events {
		if e.Type == stream.TypeState && e.State == string(StateCancelled) {
			cancelled[e.Run] = true
		}
	}
	for _, id := range queued {
		if !cancelled[id] {
			t.Errorf("no cancelled event for backlog run %s", id)
		}
	}
}

package sched

import "github.com/pragma-grid/pragma/internal/telemetry"

// Scheduler instrumentation. Admission verdicts and run outcomes are
// labeled counters resolved at admission/completion time (both are far off
// the BSP hot path); queue depth and active runs are plain gauges updated
// under the scheduler lock. When several Scheduler instances share the
// process (tests), the gauges describe the instance that last moved.
var (
	metricQueueDepth = telemetry.Default.Gauge(
		"pragma_sched_queue_depth",
		"Admitted runs waiting for a pool worker.")
	metricActiveRuns = telemetry.Default.Gauge(
		"pragma_sched_active_runs",
		"Runs currently executing on pool workers.")
	metricWorkers = telemetry.Default.Gauge(
		"pragma_sched_workers",
		"Size of the shared worker pool.")
	metricAdmissions = telemetry.Default.CounterVec(
		"pragma_sched_admissions_total",
		"Admission verdicts: accepted, or why the run was turned away.",
		"verdict")
	metricOutcomes = telemetry.Default.CounterVec(
		"pragma_sched_runs_total",
		"Finished runs by outcome (done, failed, drained, cancelled).",
		"outcome")
	metricRunSeconds = telemetry.Default.HistogramVec(
		"pragma_sched_run_seconds",
		"Wall-clock run latency from worker pickup to completion, by outcome.",
		[]float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300},
		"outcome")
	metricQueueWaitSeconds = telemetry.Default.Histogram(
		"pragma_sched_queue_wait_seconds",
		"Wall-clock wait between admission and worker pickup.",
		[]float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60})
	metricPanics = telemetry.Default.Counter(
		"pragma_sched_panics_total",
		"Runs that panicked and were contained by the worker (recorded as failed).")
	metricDrains = telemetry.Default.Counter(
		"pragma_sched_drains_total",
		"Graceful drains initiated.")
	metricPreemptions = telemetry.Default.Counter(
		"pragma_sched_preemptions_total",
		"Checkpoint-based preemptions fired: a saturated pool interrupted its most "+
			"over-share running run, which checkpointed at its next regrid boundary "+
			"and was requeued resumable.")
	metricTenantWeight = telemetry.Default.GaugeVec(
		"pragma_sched_tenant_weight",
		"Fair-share weight currently in force for the tenant.",
		"tenant")
	metricTenantService = telemetry.Default.GaugeVec(
		"pragma_sched_tenant_service",
		"Normalized service (cost units / weight) the tenant has accumulated in its "+
			"current active period; resets when its last run finishes.",
		"tenant")
	metricTenantCost = telemetry.Default.GaugeVec(
		"pragma_sched_tenant_cost",
		"Cumulative completed cost units (regrid intervals, or wall-seconds for runs "+
			"reporting none) charged to the tenant. Monotonic per process.",
		"tenant")
	metricNormalizedService = telemetry.Default.Histogram(
		"pragma_sched_run_normalized_service",
		"Normalized service (cost / tenant weight) charged per completed run attempt.",
		[]float64{.001, .01, .1, .25, .5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000})

	// Pre-resolved admission verdict children: Submit is the API hot path.
	admitAccepted  = metricAdmissions.With("accepted")
	admitSaturated = metricAdmissions.With("rejected_saturated")
	admitTenant    = metricAdmissions.With("rejected_tenant_limit")
	admitDraining  = metricAdmissions.With("rejected_draining")
)

// tenantGauges are a tenant's pre-resolved metric children. Submit and the
// completion charge both touch them, so the Scheduler caches one per tenant
// name rather than paying a Vec lookup (and its label-slice allocation) per
// run.
type tenantGauges struct {
	weight  *telemetry.Gauge
	service *telemetry.Gauge
	cost    *telemetry.Gauge
}

// gaugesLocked returns the cached handles for tenant, resolving them on
// first use. Entries live for the process (like the metric children
// themselves) — they are not dropped on tenantExit. Callers hold s.mu.
func (s *Scheduler) gaugesLocked(tenant string) *tenantGauges {
	g := s.gauges[tenant]
	if g == nil {
		g = &tenantGauges{
			weight:  metricTenantWeight.With(tenant),
			service: metricTenantService.With(tenant),
			cost:    metricTenantCost.With(tenant),
		}
		s.gauges[tenant] = g
	}
	return g
}

package sched

import (
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// This file hand-encodes the hot serving responses (/sched/status,
// /sched/runs) into pooled buffers, byte-identical to what encoding/json
// produces for the same values — held by differential tests in
// json_test.go. The reflection encoder costs ~30 allocations per status
// response; at load-test rates that garbage dominated the handler
// profile, so the encode path is kept at zero.

// appendStatusJSON appends st exactly as json.Marshal(st) renders it.
func appendStatusJSON(b *jsonenc.Buffer, st *RunStatus) {
	b.Raw(`{"id":`)
	b.String(st.ID)
	b.Raw(`,"tenant":`)
	b.String(st.Tenant)
	b.Raw(`,"priority":`)
	b.Int(int64(st.Priority))
	b.Raw(`,"weight":`)
	b.Float(st.Weight)
	b.Raw(`,"state":`)
	b.String(string(st.State))
	b.Raw(`,"submitted":`)
	b.Time(st.Submitted)
	if !st.Started.IsZero() {
		b.Raw(`,"started":`)
		b.Time(st.Started)
	}
	if !st.Finished.IsZero() {
		b.Raw(`,"finished":`)
		b.Time(st.Finished)
	}
	b.Raw(`,"queueSeconds":`)
	b.Float(st.QueueSeconds)
	b.Raw(`,"runSeconds":`)
	b.Float(st.RunSeconds)
	if st.Preemptions != 0 {
		b.Raw(`,"preemptions":`)
		b.Int(int64(st.Preemptions))
	}
	if st.Error != "" {
		b.Raw(`,"error":`)
		b.String(st.Error)
	}
	if st.Resumable {
		b.Raw(`,"resumable":true`)
	}
	if st.CheckpointDir != "" {
		b.Raw(`,"checkpointDir":`)
		b.String(st.CheckpointDir)
	}
	if st.Result != nil {
		b.Raw(`,"result":`)
		appendResultJSON(b, st.Result)
	}
	b.Byte('}')
}

// appendResultJSON appends a core.RunResult with its Go field names (the
// struct carries no json tags).
func appendResultJSON(b *jsonenc.Buffer, r *core.RunResult) {
	b.Raw(`{"Strategy":`)
	b.String(r.Strategy)
	b.Raw(`,"TotalTime":`)
	b.Float(r.TotalTime)
	b.Raw(`,"ComputeTime":`)
	b.Float(r.ComputeTime)
	b.Raw(`,"CommTime":`)
	b.Float(r.CommTime)
	b.Raw(`,"PartitionTime":`)
	b.Float(r.PartitionTime)
	b.Raw(`,"MigrationTime":`)
	b.Float(r.MigrationTime)
	b.Raw(`,"MaxImbalance":`)
	b.Float(r.MaxImbalance)
	b.Raw(`,"AvgImbalance":`)
	b.Float(r.AvgImbalance)
	b.Raw(`,"AMREfficiency":`)
	b.Float(r.AMREfficiency)
	b.Raw(`,"Switches":`)
	b.Int(int64(r.Switches))
	b.Raw(`,"Recoveries":`)
	b.Int(int64(r.Recoveries))
	b.Raw(`,"DegradedRegrids":`)
	b.Int(int64(r.DegradedRegrids))
	b.Raw(`,"Steps":`)
	b.Int(int64(r.Steps))
	b.Raw(`,"Snapshots":`)
	if r.Snapshots == nil {
		b.Raw(`null`)
	} else {
		b.Byte('[')
		for i := range r.Snapshots {
			if i > 0 {
				b.Byte(',')
			}
			appendSnapshotStatJSON(b, &r.Snapshots[i])
		}
		b.Byte(']')
	}
	b.Byte('}')
}

func appendSnapshotStatJSON(b *jsonenc.Buffer, s *core.SnapshotStat) {
	b.Raw(`{"Index":`)
	b.Int(int64(s.Index))
	b.Raw(`,"Partitioner":`)
	b.String(s.Partitioner)
	b.Raw(`,"Quality":{"CommVolume":`)
	b.Float(s.Quality.CommVolume)
	b.Raw(`,"CommMessages":`)
	b.Float(s.Quality.CommMessages)
	b.Raw(`,"Imbalance":`)
	b.Float(s.Quality.Imbalance)
	b.Raw(`,"Migration":`)
	b.Float(s.Quality.Migration)
	b.Raw(`,"PartitionTime":`)
	b.Int(int64(s.Quality.PartitionTime))
	b.Raw(`,"Overhead":`)
	b.Float(s.Quality.Overhead)
	b.Raw(`},"StepTime":`)
	b.Float(s.StepTime)
	b.Raw(`,"Overhead":`)
	b.Float(s.Overhead)
	b.Byte('}')
}

// statusJSONLocked looks up id and appends its status document under the
// scheduler lock, reporting whether the run exists. The lock scope is one
// map probe plus an in-memory append — the same footprint Status has.
func (s *Scheduler) statusJSONLocked(id string, b *jsonenc.Buffer) bool {
	s.mu.Lock()
	r, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	st := r.status()
	appendStatusJSON(b, &st)
	s.mu.Unlock()
	return true
}

package sched

import "testing"

func q(tenant string, priority int, id string) *run {
	return &run{tenant: tenant, priority: priority, id: id}
}

func popIDs(t *testing.T, fq *fairQueue, want ...string) {
	t.Helper()
	for i, w := range want {
		r := fq.pop()
		if r == nil {
			t.Fatalf("pop %d: queue empty, want %q", i, w)
		}
		if r.id != w {
			t.Fatalf("pop %d: got %q, want %q", i, r.id, w)
		}
	}
}

func TestFairQueueFIFOSingleTenant(t *testing.T) {
	fq := newFairQueue()
	for _, id := range []string{"a", "b", "c"} {
		fq.push(q("t", 0, id))
	}
	if fq.len() != 3 {
		t.Fatalf("len = %d, want 3", fq.len())
	}
	popIDs(t, fq, "a", "b", "c")
	if fq.pop() != nil {
		t.Fatal("pop on empty queue returned a run")
	}
	if fq.len() != 0 {
		t.Fatalf("len = %d after draining, want 0", fq.len())
	}
}

func TestFairQueuePriorityBands(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("t", 0, "low"))
	fq.push(q("t", 5, "high"))
	fq.push(q("t", 2, "mid"))
	fq.push(q("t", 5, "high2"))
	popIDs(t, fq, "high", "high2", "mid", "low")
}

func TestFairQueueTenantRotation(t *testing.T) {
	fq := newFairQueue()
	// Tenant A floods before B and C arrive; rotation still hands every
	// tenant one slot per cycle.
	fq.push(q("A", 0, "a1"))
	fq.push(q("A", 0, "a2"))
	fq.push(q("A", 0, "a3"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("C", 0, "c1"))
	popIDs(t, fq, "a1", "b1", "c1", "a2", "a3")
}

func TestFairQueueRotationSurvivesTenantExit(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("B", 0, "b2"))
	fq.push(q("C", 0, "c1"))
	// A empties on the first pop; the cursor must land on B, not skip it.
	popIDs(t, fq, "a1", "b1", "c1", "b2")
}

func TestFairQueueInterleavedPushes(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	popIDs(t, fq, "a1")
	fq.push(q("B", 0, "b1"))
	fq.push(q("A", 0, "a2"))
	// B joined the (fresh) ring first this time.
	popIDs(t, fq, "b1", "a2")
}

func TestFairQueueDrainAll(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 1, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("A", 0, "a2"))
	got := fq.drainAll()
	// a1 outranks band 0; inside band 0, B joined the rotation first.
	want := []string{"a1", "b1", "a2"}
	if len(got) != len(want) {
		t.Fatalf("drainAll returned %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].id != want[i] {
			t.Fatalf("drainAll[%d] = %q, want %q", i, got[i].id, want[i])
		}
	}
	if fq.len() != 0 || fq.pop() != nil {
		t.Fatal("queue not empty after drainAll")
	}
}

func TestFairQueueLeastServiceFirst(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("C", 0, "c1"))
	// A has consumed the most normalized service, C the least.
	fq.charge(0, "A", 5)
	fq.charge(0, "B", 2)
	fq.charge(0, "C", 1)
	popIDs(t, fq, "c1", "b1", "a1")
}

func TestFairQueueChargePersistsAcrossRequeue(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.charge(0, "A", 4)
	// A's backlog empties...
	popIDs(t, fq, "b1", "a1")
	if got := fq.service(0, "A"); got != 4 {
		t.Fatalf("service(A) = %v after backlog drained, want 4", got)
	}
	// ...and when it returns, its earlier service still counts against it.
	fq.push(q("A", 0, "a2"))
	fq.push(q("B", 0, "b2"))
	popIDs(t, fq, "b2", "a2")
}

func TestFairQueueTenantExitForfeitsService(t *testing.T) {
	fq := newFairQueue()
	fq.charge(0, "A", 9)
	fq.charge(0, "B", 1)
	fq.tenantExit(t.Name()) // unknown tenant: no-op
	fq.tenantExit("A")
	if got := fq.service(0, "A"); got != 0 {
		t.Fatalf("service(A) = %v after tenantExit, want 0", got)
	}
	// A re-enters with a clean slate and outranks the still-charged B.
	fq.push(q("B", 0, "b1"))
	fq.push(q("A", 0, "a1"))
	popIDs(t, fq, "a1", "b1")
	// Popping the last runs drops the band only once all service is gone.
	fq.tenantExit("B")
	if len(fq.bands) != 0 {
		t.Fatalf("%d bands left after final tenantExit, want 0", len(fq.bands))
	}
}

func TestFairQueuePushFrontResumesFirst(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("B", 0, "b1"))
	popIDs(t, fq, "a1")
	// a1 comes back preempted with its tenant's backlog empty: the tenant
	// re-enters the ring at the cursor (served next on equal service) and
	// the resumed run goes ahead of anything pushed behind it.
	fq.pushFront(q("A", 0, "a1"))
	fq.push(q("A", 0, "a2"))
	popIDs(t, fq, "a1", "b1", "a2")
}

func TestFairQueuePushFrontKeepsRotationWhenQueued(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("A", 0, "a2"))
	fq.push(q("B", 0, "b1"))
	popIDs(t, fq, "a1")
	// A still has a2 queued, so the tenant keeps its (already rotated past)
	// ring slot; only the run order within A's FIFO changes.
	fq.pushFront(q("A", 0, "a1"))
	popIDs(t, fq, "b1", "a1", "a2")
}

// TestFairQueueProportionalAllocation drives the queue the way the
// Scheduler does — pop, charge cost/weight, repeat — and checks a weight-4
// tenant is served ~4x as often as a weight-1 tenant.
func TestFairQueueProportionalAllocation(t *testing.T) {
	fq := newFairQueue()
	weights := map[string]float64{"lo": 1, "hi": 4}
	backlog := map[string]int{"lo": 40, "hi": 40}
	for tenant := range weights {
		fq.push(q(tenant, 0, tenant))
	}
	served := map[string]int{}
	for i := 0; i < 50; i++ {
		r := fq.pop()
		served[r.tenant]++
		fq.charge(0, r.tenant, 1/weights[r.tenant])
		if backlog[r.tenant]--; backlog[r.tenant] > 0 {
			fq.push(q(r.tenant, 0, r.tenant))
		}
	}
	if served["hi"] < 36 || served["hi"] > 44 {
		t.Fatalf("weight-4 tenant served %d of 50, want ~40 (weight-1 got %d)",
			served["hi"], served["lo"])
	}
}

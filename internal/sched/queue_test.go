package sched

import "testing"

func q(tenant string, priority int, id string) *run {
	return &run{tenant: tenant, priority: priority, id: id}
}

func popIDs(t *testing.T, fq *fairQueue, want ...string) {
	t.Helper()
	for i, w := range want {
		r := fq.pop()
		if r == nil {
			t.Fatalf("pop %d: queue empty, want %q", i, w)
		}
		if r.id != w {
			t.Fatalf("pop %d: got %q, want %q", i, r.id, w)
		}
	}
}

func TestFairQueueFIFOSingleTenant(t *testing.T) {
	fq := newFairQueue()
	for _, id := range []string{"a", "b", "c"} {
		fq.push(q("t", 0, id))
	}
	if fq.len() != 3 {
		t.Fatalf("len = %d, want 3", fq.len())
	}
	popIDs(t, fq, "a", "b", "c")
	if fq.pop() != nil {
		t.Fatal("pop on empty queue returned a run")
	}
	if fq.len() != 0 {
		t.Fatalf("len = %d after draining, want 0", fq.len())
	}
}

func TestFairQueuePriorityBands(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("t", 0, "low"))
	fq.push(q("t", 5, "high"))
	fq.push(q("t", 2, "mid"))
	fq.push(q("t", 5, "high2"))
	popIDs(t, fq, "high", "high2", "mid", "low")
}

func TestFairQueueTenantRotation(t *testing.T) {
	fq := newFairQueue()
	// Tenant A floods before B and C arrive; rotation still hands every
	// tenant one slot per cycle.
	fq.push(q("A", 0, "a1"))
	fq.push(q("A", 0, "a2"))
	fq.push(q("A", 0, "a3"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("C", 0, "c1"))
	popIDs(t, fq, "a1", "b1", "c1", "a2", "a3")
}

func TestFairQueueRotationSurvivesTenantExit(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("B", 0, "b2"))
	fq.push(q("C", 0, "c1"))
	// A empties on the first pop; the cursor must land on B, not skip it.
	popIDs(t, fq, "a1", "b1", "c1", "b2")
}

func TestFairQueueInterleavedPushes(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 0, "a1"))
	popIDs(t, fq, "a1")
	fq.push(q("B", 0, "b1"))
	fq.push(q("A", 0, "a2"))
	// B joined the (fresh) ring first this time.
	popIDs(t, fq, "b1", "a2")
}

func TestFairQueueDrainAll(t *testing.T) {
	fq := newFairQueue()
	fq.push(q("A", 1, "a1"))
	fq.push(q("B", 0, "b1"))
	fq.push(q("A", 0, "a2"))
	got := fq.drainAll()
	// a1 outranks band 0; inside band 0, B joined the rotation first.
	want := []string{"a1", "b1", "a2"}
	if len(got) != len(want) {
		t.Fatalf("drainAll returned %d runs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].id != want[i] {
			t.Fatalf("drainAll[%d] = %q, want %q", i, got[i].id, want[i])
		}
	}
	if fq.len() != 0 || fq.pop() != nil {
		t.Fatal("queue not empty after drainAll")
	}
}

package sched

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"strconv"

	"github.com/pragma-grid/pragma/internal/jsonenc"
	"github.com/pragma-grid/pragma/internal/stream"
)

// SpecBuilder turns a submit request's wire parameters into a RunSpec.
// The scheduler stays ignorant of trace formats; the serving binary
// decides what "trace=small&strategy=adaptive" means (and can cache the
// generated traces across submissions).
type SpecBuilder func(tenant string, priority int, v url.Values) (RunSpec, error)

// Handler exposes the scheduler over HTTP, designed to be mounted on the
// telemetry server's mux:
//
//	POST /sched/submit?tenant=T&priority=N&...  admit a run (spec params go to build)
//	GET  /sched/status?id=run-000001            one run's status
//	GET  /sched/runs                            every retained run record
//	GET  /sched/stats                           aggregate scheduler state
//	POST /sched/drain                           graceful drain; returns when drained
//
// Submit returns 202 on admission, 429 with Retry-After under backpressure
// (saturation or tenant limit), and 503 while draining.
func Handler(s *Scheduler, build SpecBuilder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sched/submit", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if build == nil {
			httpError(w, http.StatusNotImplemented, "no spec builder configured")
			return
		}
		v := req.URL.Query()
		tenant := v.Get("tenant")
		priority := 0
		if p := v.Get("priority"); p != "" {
			n, err := strconv.Atoi(p)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad priority: "+err.Error())
				return
			}
			priority = n
		}
		// weight= sets the tenant's fair-share weight (default 1, clamped
		// into [MinWeight, MaxWeight]): under saturation a weight-3 tenant
		// completes ~3x the work of a weight-1 tenant in the same band.
		var weight float64
		if ws := v.Get("weight"); ws != "" {
			f, err := strconv.ParseFloat(ws, 64)
			if err != nil || f <= 0 {
				httpError(w, http.StatusBadRequest, "bad weight: must be a positive number")
				return
			}
			weight = f
		}
		spec, err := build(tenant, priority, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Keep the wire form: it is what Snapshot persists so a queued or
		// drained run survives a process roll (see Snapshot/Restore).
		if spec.Wire == nil {
			spec.Wire = v
		}
		st, err := s.Submit(SubmitRequest{Tenant: tenant, Priority: priority, Weight: weight, Spec: spec})
		switch {
		case errors.Is(err, ErrSaturated), errors.Is(err, ErrTenantLimit):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	})
	mux.HandleFunc("/sched/status", func(w http.ResponseWriter, req *http.Request) {
		// Hot path: pooled zero-allocation encode, byte-identical to the
		// encoding/json wire format (held by differential tests).
		b := jsonenc.Get()
		ok := s.statusJSONLocked(req.URL.Query().Get("id"), b)
		if !ok {
			jsonenc.Put(b)
			httpError(w, http.StatusNotFound, "unknown run id")
			return
		}
		b.Byte('\n')
		w.Header().Set("Content-Type", "application/json")
		w.Write(b.B)
		jsonenc.Put(b)
	})
	mux.HandleFunc("/sched/runs", func(w http.ResponseWriter, req *http.Request) {
		// Paginated: at most limit records (default DefaultRunsLimit,
		// capped at it too) starting after run ID ?after=. Clients page
		// by passing the last ID of each response as the next after.
		v := req.URL.Query()
		limit := DefaultRunsLimit
		if l := v.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, "bad limit")
				return
			}
			if n < limit {
				limit = n
			}
		}
		runs := s.RunsPage(v.Get("after"), limit)
		b := jsonenc.Get()
		b.Byte('[')
		for i := range runs {
			if i > 0 {
				b.Byte(',')
			}
			appendStatusJSON(b, &runs[i])
		}
		b.Raw("]\n")
		w.Header().Set("Content-Type", "application/json")
		w.Write(b.B)
		jsonenc.Put(b)
	})
	mux.HandleFunc("/sched/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/sched/drain", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := s.Drain(req.Context()); err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	if s.cfg.Events != nil {
		mux.Handle("/sched/events", stream.Handler(s.cfg.Events, stream.HandlerConfig{}))
	}
	// JSON 404 for unknown /sched/ paths: every error this surface emits
	// is application/json, including routing misses.
	mux.HandleFunc("/sched/", func(w http.ResponseWriter, req *http.Request) {
		httpError(w, http.StatusNotFound, "unknown sched endpoint")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
)

// tinyTrace is a deliberately small RM3D trace (16x8x8 base, 2 levels,
// 16 snapshots) so stress tests can push dozens of real replays through
// the pool under -race in seconds.
var tinyTrace = struct {
	once sync.Once
	tr   *samr.Trace
	err  error
}{}

func testTrace(t testing.TB) *samr.Trace {
	t.Helper()
	tinyTrace.once.Do(func() {
		cfg := rm3d.SmallConfig()
		cfg.BaseDims = [3]int{16, 8, 8}
		cfg.MaxDepth = 2
		cfg.CoarseSteps = 60 // 16 snapshots
		tinyTrace.tr, tinyTrace.err = rm3d.GenerateTrace(cfg)
	})
	if tinyTrace.err != nil {
		t.Fatal(tinyTrace.err)
	}
	return tinyTrace.tr
}

func partitioner(t testing.TB) partition.Partitioner {
	t.Helper()
	p, err := partition.ByName("G-MISP+SP")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testSpec(t testing.TB, ckptDir string) RunSpec {
	t.Helper()
	return RunSpec{
		Trace:         testTrace(t),
		Strategy:      core.Static{P: partitioner(t)},
		Machine:       cluster.SP2(4),
		NProcs:        4,
		CheckpointDir: ckptDir,
	}
}

// refResult computes the uninterrupted reference result the scheduler's
// runs must all reproduce (same trace, strategy, machine → bit-identical
// profile; any deviation is cross-run interference).
func refResult(t testing.TB) *core.RunResult {
	t.Helper()
	res, err := core.Run(testTrace(t), core.Static{P: partitioner(t)}, core.RunConfig{
		Machine: cluster.SP2(4), NProcs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameRunResult(t *testing.T, label string, got, want *core.RunResult) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", label)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: result diverged from the reference: TotalTime %v vs %v, Steps %d vs %d",
			label, got.TotalTime, want.TotalTime, got.Steps, want.Steps)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// gatedStrategy blocks inside Assign at one regrid index until released,
// so tests can hold a run provably mid-flight.
type gatedStrategy struct {
	core.Strategy
	at      int
	reached chan struct{}
	release <-chan struct{}
	once    sync.Once
}

func (g *gatedStrategy) Assign(ctx *core.StepContext) (*partition.Assignment, string, error) {
	if ctx.Index == g.at {
		g.once.Do(func() { close(g.reached) })
		<-g.release
	}
	return g.Strategy.Assign(ctx)
}

func TestSubmitValidatesSpec(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(SubmitRequest{Tenant: "t"}); err == nil {
		t.Fatal("empty spec admitted")
	}
	spec := testSpec(t, "")
	spec.Strategy = nil
	if _, err := s.Submit(SubmitRequest{Tenant: "t", Spec: spec}); err == nil {
		t.Fatal("spec without strategy admitted")
	}
}

func TestSchedulerRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("fresh submission has state %q id %q", st.State, st.ID)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("run finished %q (%s), want done", final.State, final.Error)
	}
	sameRunResult(t, final.ID, final.Result, refResult(t))
	if final.RunSeconds < 0 || final.QueueSeconds < 0 {
		t.Fatalf("negative latencies: queue %v run %v", final.QueueSeconds, final.RunSeconds)
	}
}

// blockingRun returns a RunFunc that parks until gate closes.
func blockingRun(gate <-chan struct{}) func(<-chan struct{}) (*core.RunResult, error) {
	return func(<-chan struct{}) (*core.RunResult, error) {
		<-gate
		return nil, nil
	}
}

func TestAdmissionSaturation(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 2})
	defer s.Close()
	gate := make(chan struct{})
	defer close(gate)

	if _, err := s.Submit(SubmitRequest{Tenant: "a", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}
	// The single worker must pick it up so the queue is empty again.
	waitFor(t, "the blocker to start", func() bool { return s.Stats().Active == 1 })

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(SubmitRequest{Tenant: "a", RunFunc: blockingRun(gate)}); err != nil {
			t.Fatalf("queued submission %d rejected: %v", i, err)
		}
	}
	_, err := s.Submit(SubmitRequest{Tenant: "b", RunFunc: blockingRun(gate)})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("submission over the queue limit returned %v, want ErrSaturated", err)
	}
	if st := s.Stats(); st.QueueDepth != 2 {
		t.Fatalf("queue depth %d, want 2", st.QueueDepth)
	}
}

func TestTenantLimit(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16, TenantLimit: 2})
	defer s.Close()
	gate := make(chan struct{})
	defer close(gate)

	if _, err := s.Submit(SubmitRequest{Tenant: "greedy", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the blocker to start", func() bool { return s.Stats().Active == 1 })
	if _, err := s.Submit(SubmitRequest{Tenant: "greedy", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}
	// Running plus queued hits the limit; the third is rejected…
	_, err := s.Submit(SubmitRequest{Tenant: "greedy", RunFunc: blockingRun(gate)})
	if !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-limit tenant got %v, want ErrTenantLimit", err)
	}
	// …while other tenants are unaffected.
	if _, err := s.Submit(SubmitRequest{Tenant: "patient", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestPriorityAndTenantFairness pins the pool to one worker, parks it on a
// warmup job, queues a mixed backlog, and asserts the execution order:
// the high-priority run first, then one run per tenant per rotation.
func TestPriorityAndTenantFairness(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16})
	defer s.Close()
	gate := make(chan struct{})

	var mu sync.Mutex
	var order []string
	record := func(label string) func(<-chan struct{}) (*core.RunResult, error) {
		return func(<-chan struct{}) (*core.RunResult, error) {
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			return nil, nil
		}
	}

	if _, err := s.Submit(SubmitRequest{Tenant: "warm", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the warmup job to park the worker", func() bool { return s.Stats().Active == 1 })

	submit := func(tenant string, priority int, label string) {
		t.Helper()
		if _, err := s.Submit(SubmitRequest{Tenant: tenant, Priority: priority, RunFunc: record(label)}); err != nil {
			t.Fatal(err)
		}
	}
	submit("A", 0, "a1")
	submit("A", 0, "a2")
	submit("A", 0, "a3")
	submit("B", 0, "b1")
	submit("C", 0, "c1")
	submit("A", 5, "hi")

	close(gate)
	waitFor(t, "the backlog to finish", func() bool { return s.Stats().Done == 7 })

	want := []string{"hi", "a1", "b1", "c1", "a2", "a3"}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestRunIsolation: one run panicking and another failing with a run error
// must not disturb sibling runs or kill pool workers.
func TestRunIsolation(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()

	boom, err := s.Submit(SubmitRequest{Tenant: "bad", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		panic("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	sad, err := s.Submit(SubmitRequest{Tenant: "bad", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		return nil, fmt.Errorf("lost workers")
	}})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(SubmitRequest{Tenant: "good", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if st, _ := s.Wait(ctx, boom.ID); st.State != StateFailed || st.Error == "" {
		t.Fatalf("panicking run recorded as %q (%s), want failed with error", st.State, st.Error)
	}
	if st, _ := s.Wait(ctx, sad.ID); st.State != StateFailed {
		t.Fatalf("erroring run recorded as %q, want failed", st.State)
	}
	st, _ := s.Wait(ctx, good.ID)
	if st.State != StateDone {
		t.Fatalf("sibling run finished %q (%s), want done", st.State, st.Error)
	}
	sameRunResult(t, "sibling of panicking run", st.Result, refResult(t))

	// The pool must still serve new work after a panic.
	again, err := s.Submit(SubmitRequest{Tenant: "good", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Wait(ctx, again.ID); st.State != StateDone {
		t.Fatalf("post-panic run finished %q, want done", st.State)
	}
}

// TestDrainCheckpointsInFlightAndCancelsBacklog is the drain contract:
// queued runs are cancelled without starting, in-flight runs are
// interrupted at their next regrid boundary and checkpoint first, Drain
// waits for the pool to exit, and every drained run resumes to the
// identical final result.
func TestDrainCheckpointsInFlightAndCancelsBacklog(t *testing.T) {
	tr := testTrace(t)
	p := partitioner(t)
	ref := refResult(t)
	s := New(Config{Workers: 2, QueueLimit: 16})

	release := make(chan struct{})
	var inflight []string
	var dirs []string
	var gates []*gatedStrategy
	for i := 0; i < 2; i++ {
		dir := t.TempDir()
		g := &gatedStrategy{
			Strategy: core.Static{P: p},
			at:       2,
			reached:  make(chan struct{}),
			release:  release,
		}
		spec := testSpec(t, dir)
		spec.Strategy = g
		spec.CheckpointEvery = 10_000 // only the drain-save may write
		st, err := s.Submit(SubmitRequest{Tenant: fmt.Sprintf("t%d", i), Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		inflight = append(inflight, st.ID)
		dirs = append(dirs, dir)
		gates = append(gates, g)
	}
	var backlog []string
	for i := 0; i < 2; i++ {
		st, err := s.Submit(SubmitRequest{Tenant: "late", Spec: testSpec(t, "")})
		if err != nil {
			t.Fatal(err)
		}
		backlog = append(backlog, st.ID)
	}
	for _, g := range gates {
		<-g.reached
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "drain to begin", func() bool { return s.Stats().Draining })
	// New work is refused the moment draining starts.
	if _, err := s.Submit(SubmitRequest{Tenant: "late", Spec: testSpec(t, "")}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain returned %v, want ErrDraining", err)
	}
	close(release) // let the in-flight runs reach their next boundary
	if err := <-drainErr; err != nil {
		t.Fatal(err)
	}
	// Drain is idempotent once complete.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, id := range backlog {
		st, ok := s.Status(id)
		if !ok || st.State != StateCancelled {
			t.Fatalf("backlog run %s in state %q, want cancelled", id, st.State)
		}
	}
	for i, id := range inflight {
		st, ok := s.Status(id)
		if !ok || st.State != StateDrained {
			t.Fatalf("in-flight run %s in state %q (%s), want drained", id, st.State, st.Error)
		}
		if !st.Resumable || st.CheckpointDir != dirs[i] {
			t.Fatalf("drained run %s not marked resumable from %q", id, st.CheckpointDir)
		}
	}
	stats := s.Stats()
	if stats.Drained != 2 || stats.Cancelled != 2 || stats.Active != 0 || stats.QueueDepth != 0 {
		t.Fatalf("post-drain stats %+v", stats)
	}

	// A fresh scheduler resumes the drained runs to the reference result.
	s2 := New(Config{Workers: 2})
	defer s2.Close()
	for i, dir := range dirs {
		spec := RunSpec{
			Trace: tr, Strategy: core.Static{P: p},
			Machine: cluster.SP2(4), NProcs: 4,
			CheckpointDir: dir, CheckpointEvery: 10_000,
			Resume: true,
		}
		st, err := s2.Submit(SubmitRequest{Tenant: fmt.Sprintf("t%d", i), Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		final, err := s2.Wait(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("resumed run finished %q (%s), want done", final.State, final.Error)
		}
		sameRunResult(t, "resumed "+st.ID, final.Result, ref)
	}
}

// TestStressManyRunsWithDrain is the acceptance stress: 36 real replays
// from four tenants pushed through a 4-worker pool under -race, goroutine
// count bounded by the pool (not the submission count), a drain landing
// mid-flight, zero cross-run interference, and every drained run resumable
// from its checkpoint to the identical result.
func TestStressManyRunsWithDrain(t *testing.T) {
	const submissions = 36
	tr := testTrace(t)
	p := partitioner(t)
	ref := refResult(t)

	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, QueueLimit: submissions})
	root := t.TempDir()
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	ids := make([]string, 0, submissions)
	dirs := make(map[string]string, submissions)
	for i := 0; i < submissions; i++ {
		dir := filepath.Join(root, fmt.Sprintf("run-%02d", i))
		st, err := s.Submit(SubmitRequest{
			Tenant:   tenants[i%len(tenants)],
			Priority: i % 3,
			Spec:     testSpec(t, dir),
		})
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		ids = append(ids, st.ID)
		dirs[st.ID] = dir
	}

	// The pool adds exactly Workers goroutines; active replays add
	// transient kernel helpers bounded by GOMAXPROCS each. Nothing may
	// scale with the submission count.
	limit := before + 4 + 4*runtime.GOMAXPROCS(0) + 16
	if n := runtime.NumGoroutine(); n > limit {
		t.Fatalf("%d goroutines for %d submissions over a 4-worker pool (bound %d)",
			n, submissions, limit)
	}

	waitFor(t, "a batch of runs to finish", func() bool { return s.Stats().Done >= 8 })
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	var done, drained, cancelled int
	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("run %s evicted prematurely", id)
		}
		switch st.State {
		case StateDone:
			done++
			sameRunResult(t, st.ID, st.Result, ref)
		case StateDrained:
			drained++
			if !st.Resumable {
				t.Fatalf("drained run %s not resumable", id)
			}
			res, err := core.Run(tr, core.Static{P: p}, core.RunConfig{
				Machine: cluster.SP2(4), NProcs: 4,
				CheckpointDir: dirs[id], Resume: true,
			})
			if err != nil {
				t.Fatalf("resuming %s: %v", id, err)
			}
			sameRunResult(t, "resumed "+id, res, ref)
		case StateCancelled:
			cancelled++
		default:
			t.Fatalf("run %s ended in state %q (%s)", id, st.State, st.Error)
		}
	}
	if done+drained+cancelled != submissions {
		t.Fatalf("accounted for %d runs, want %d", done+drained+cancelled, submissions)
	}
	if done < 8 {
		t.Fatalf("only %d runs completed before the drain", done)
	}
	t.Logf("done %d, drained %d, cancelled %d", done, drained, cancelled)
}

func TestWaitUnknownRun(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Wait(context.Background(), "run-999999"); err == nil {
		t.Fatal("Wait on unknown id succeeded")
	}
	if _, ok := s.Status("run-999999"); ok {
		t.Fatal("Status on unknown id succeeded")
	}
}

func TestKeepFinishedEviction(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 64, KeepFinished: 4})
	defer s.Close()
	noop := func(<-chan struct{}) (*core.RunResult, error) { return nil, nil }
	var first string
	for i := 0; i < 10; i++ {
		st, err := s.Submit(SubmitRequest{Tenant: "t", RunFunc: noop})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.ID
		}
		if _, err := s.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Status(first); ok {
		t.Fatal("oldest terminal record survived past KeepFinished")
	}
	if got := len(s.Runs()); got != 4 {
		t.Fatalf("retained %d records, want 4", got)
	}
}

package sched

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/core"
)

// costRun returns a RunFunc whose reported cost is `intervals` completed
// regrid intervals — what the scheduler charges to the tenant's
// normalized service.
func costRun(intervals int) func(<-chan struct{}) (*core.RunResult, error) {
	return func(<-chan struct{}) (*core.RunResult, error) {
		return &core.RunResult{Snapshots: make([]core.SnapshotStat, intervals)}, nil
	}
}

// TestWeightedFairnessRatios saturates a single worker with three tenants
// at weights 1:2:4 and proves completed work tracks the weights
// proportionally (±20%, the acceptance bound; the engine is deterministic
// here so the ratios are in fact exact).
func TestWeightedFairnessRatios(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 256, PreemptRatio: -1})
	defer s.Close()

	// Park the only worker so the whole backlog is queued before the
	// first weighted dispatch decision.
	blocked := make(chan struct{})
	release := make(chan struct{})
	if _, err := s.Submit(SubmitRequest{Tenant: "gate", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		close(blocked)
		<-release
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-blocked

	var mu sync.Mutex
	var order []string
	runFor := func(tenant string) func(<-chan struct{}) (*core.RunResult, error) {
		return func(<-chan struct{}) (*core.RunResult, error) {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			return costRun(8)(nil)
		}
	}
	weights := map[string]float64{"A": 1, "B": 2, "C": 4}
	for i := 0; i < 30; i++ {
		for _, tn := range []string{"A", "B", "C"} {
			if _, err := s.Submit(SubmitRequest{Tenant: tn, Weight: weights[tn], RunFunc: runFor(tn)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(release)

	// Measure a saturated window: the first 28 completions, while all
	// three tenants are still backlogged. (Weights 1:2:4 sum to 7, so 28
	// completions split 4:8:16.)
	waitFor(t, "28 completions", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) >= 28
	})
	mu.Lock()
	counts := map[string]int{}
	for _, tn := range order[:28] {
		counts[tn]++
	}
	mu.Unlock()
	for tn, w := range weights {
		want := 28 * w / 7
		got := float64(counts[tn])
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("tenant %s (weight %v): %v completions in saturated window, want %v +-20%% (counts %v)",
				tn, w, got, want, counts)
		}
	}
}

// TestPreemptResumeBitIdentical is the differential guarantee: a run
// preempted mid-flight by a higher band checkpoints at its next regrid
// boundary, reports StatePreempted (resumable), and once re-dispatched
// resumes to a final result bit-identical to a never-interrupted
// reference run.
func TestPreemptResumeBitIdentical(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16})
	defer s.Close()

	reached := make(chan struct{})
	release := make(chan struct{})
	spec := testSpec(t, filepath.Join(t.TempDir(), "bg"))
	spec.CheckpointEvery = 1
	spec.Strategy = &gatedStrategy{Strategy: spec.Strategy, at: 3, reached: reached, release: release}
	st, err := s.Submit(SubmitRequest{Tenant: "bg", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	<-reached // bg provably mid-flight at regrid 3

	// A higher-band submit finds the pool saturated and preempts bg.
	vipGate := make(chan struct{})
	vip, err := s.Submit(SubmitRequest{Tenant: "vip", Priority: 1, RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		<-vipGate
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "preemption to fire", func() bool { return s.Stats().Preemptions == 1 })

	// Let bg reach its next boundary: it must checkpoint, yield the
	// worker to vip, and wait preempted-resumable.
	close(release)
	waitFor(t, "bg to report preempted", func() bool {
		cur, ok := s.Status(st.ID)
		return ok && cur.State == StatePreempted
	})
	cur, _ := s.Status(st.ID)
	if !cur.Resumable || cur.CheckpointDir == "" {
		t.Errorf("preempted run not resumable: %+v", cur)
	}
	if cur.Preemptions != 1 {
		t.Errorf("preempted run reports %d preemptions, want 1", cur.Preemptions)
	}

	close(vipGate)
	if _, err := s.Wait(context.Background(), vip.ID); err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("preempted run ended %q (err %q), want done", final.State, final.Error)
	}
	sameRunResult(t, "preempted+resumed run", final.Result, refResult(t))
}

// TestPreemptionOverShareSameBand exercises the service-based trigger: no
// priority difference, but the running tenant is far over-share, so an
// under-share tenant's submit evicts it and runs first.
func TestPreemptionOverShareSameBand(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16})
	defer s.Close()

	// bg earns 10 cost units, then parks its second run on the worker.
	// The earner must finish before the blocker is dispatched (one
	// worker), and bg keeps a run in flight throughout, so its service
	// survives (tenantExit never fires).
	bgBlocked := make(chan struct{})
	var attempts int32
	blocker := func(interrupt <-chan struct{}) (*core.RunResult, error) {
		if atomic.AddInt32(&attempts, 1) == 1 {
			close(bgBlocked)
			<-interrupt
			return nil, fmt.Errorf("sched test: yielding: %w", core.ErrInterrupted)
		}
		return costRun(1)(nil)
	}
	if _, err := s.Submit(SubmitRequest{Tenant: "bg", RunFunc: costRun(10)}); err != nil {
		t.Fatal(err)
	}
	stB, err := s.Submit(SubmitRequest{Tenant: "bg", RunFunc: blocker})
	if err != nil {
		t.Fatal(err)
	}
	<-bgBlocked

	var fgOrder, bgOrder time.Time
	stF, err := s.Submit(SubmitRequest{Tenant: "fg", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		fgOrder = time.Now()
		return costRun(1)(nil)
	}})
	if err != nil {
		t.Fatal(err)
	}

	fgFinal, err := s.Wait(context.Background(), stF.ID)
	if err != nil {
		t.Fatal(err)
	}
	bgFinal, err := s.Wait(context.Background(), stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	bgOrder = bgFinal.Finished

	if got := s.Stats().Preemptions; got != 1 {
		t.Errorf("preemptions = %d, want 1", got)
	}
	if fgFinal.State != StateDone || bgFinal.State != StateDone {
		t.Fatalf("states fg=%q bg=%q, want done/done", fgFinal.State, bgFinal.State)
	}
	if bgFinal.Preemptions != 1 {
		t.Errorf("bg blocker reports %d preemptions, want 1", bgFinal.Preemptions)
	}
	if !fgOrder.Before(bgOrder) {
		t.Errorf("under-share fg did not run before the preempted bg finished")
	}
}

// TestPreemptionStarvationFreedom floods two workers from six tenants with
// wildly different weights and priorities, with run bodies that yield to
// their first interrupts, and requires every admitted run to complete.
func TestPreemptionStarvationFreedom(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 512})
	defer s.Close()

	newBody := func() func(<-chan struct{}) (*core.RunResult, error) {
		var attempts int32
		return func(interrupt <-chan struct{}) (*core.RunResult, error) {
			n := atomic.AddInt32(&attempts, 1)
			time.Sleep(100 * time.Microsecond)
			select {
			case <-interrupt:
				if n < 3 { // yield to preemption, but bound the retries
					return nil, fmt.Errorf("sched test: yielding: %w", core.ErrInterrupted)
				}
			default:
			}
			return costRun(2)(nil)
		}
	}
	weights := []float64{0.5, 1, 2, 4, 8, 64}
	var ids []string
	for i, w := range weights {
		tenant := fmt.Sprintf("t%d", i)
		for j := 0; j < 8; j++ {
			st, err := s.Submit(SubmitRequest{Tenant: tenant, Weight: w, Priority: j % 2, RunFunc: newBody()})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatalf("run %s never finished: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("run %s ended %q, want done", id, st.State)
		}
	}
}

// TestSubmitWeightClampAndStickiness pins the weight plumbing: clamping
// into [MinWeight, MaxWeight], zero meaning "keep the tenant's current
// weight", and the default for undeclared tenants.
func TestSubmitWeightClampAndStickiness(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16, PreemptRatio: -1})
	defer s.Close()

	// Hold the worker so tenant "t" stays active between submits (an idle
	// tenant's weight resets when its last run finishes).
	blocked := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.Submit(SubmitRequest{Tenant: "gate", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		close(blocked)
		<-release
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-blocked

	noop := func(<-chan struct{}) (*core.RunResult, error) { return nil, nil }
	cases := []struct {
		weight float64
		want   float64
	}{
		{1000, MaxWeight},  // clamped high
		{0, MaxWeight},     // zero keeps the tenant's current weight
		{0.001, MinWeight}, // clamped low
		{3, 3},
	}
	for i, c := range cases {
		st, err := s.Submit(SubmitRequest{Tenant: "t", Weight: c.weight, RunFunc: noop})
		if err != nil {
			t.Fatal(err)
		}
		if st.Weight != c.want {
			t.Errorf("submit %d (weight %v): status weight %v, want %v", i, c.weight, st.Weight, c.want)
		}
	}
	st, err := s.Submit(SubmitRequest{Tenant: "fresh", RunFunc: noop})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != DefaultWeight {
		t.Errorf("undeclared tenant weight %v, want DefaultWeight", st.Weight)
	}
}

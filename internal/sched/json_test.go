package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/jsonenc"
)

// assertStatusJSON encodes st both ways and fails on any byte difference.
func assertStatusJSON(t *testing.T, label string, st RunStatus) {
	t.Helper()
	want, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b := jsonenc.Get()
	defer jsonenc.Put(b)
	appendStatusJSON(b, &st)
	if !bytes.Equal(b.B, want) {
		t.Errorf("%s: appendStatusJSON diverges from json.Marshal\n got: %s\nwant: %s", label, b.B, want)
	}
}

func TestStatusJSONMatchesEncodingJSON(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()

	// Done run with a full result profile (exercises the nested
	// RunResult/SnapshotStat/Quality encode).
	done, err := s.Submit(SubmitRequest{Tenant: "acme", Priority: 2, Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("run ended %q (%s)", final.State, final.Error)
	}
	assertStatusJSON(t, "done", final)

	// Failed run with an escaping-hostile wrapped error.
	failed, err := s.Submit(SubmitRequest{Tenant: "bob \"the\" builder", RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		return nil, fmt.Errorf("wrapped: %w", errors.New("boom\nwith \"newline\""))
	}})
	if err != nil {
		t.Fatal(err)
	}
	ffinal, _ := s.Wait(context.Background(), failed.ID)
	if ffinal.State != StateFailed || ffinal.Error == "" {
		t.Fatalf("failure run ended %q", ffinal.State)
	}
	assertStatusJSON(t, "failed", ffinal)

	// Queued-shaped status (zero Started/Finished exercise omitzero).
	assertStatusJSON(t, "queued", RunStatus{
		ID: "run-000042", State: StateQueued, Submitted: time.Now(),
	})

	// Drained-shaped status with resumable + checkpointDir.
	assertStatusJSON(t, "drained", RunStatus{
		ID: "run-000007", Tenant: "t", State: StateDrained,
		Submitted: time.Now(), Started: time.Now(), Finished: time.Now(),
		QueueSeconds: 0.125, RunSeconds: 1e-7, // 'e'-form float
		Error:     "core: regrid 3: run interrupted at regrid boundary",
		Resumable: true, CheckpointDir: "/tmp/ckpt/t/run",
	})
}

func TestHandlerStatusAndRunsWireFormatUnchanged(t *testing.T) {
	// The CI smoke and any existing client parse /sched/status and
	// /sched/runs with encoding/json field names; the pooled encoder must
	// be invisible on the wire.
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()
	st, err := s.Submit(SubmitRequest{Tenant: "a", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Status(st.ID)
	if !ok {
		t.Fatal("run vanished")
	}
	wantStatus, _ := json.Marshal(got)
	b := jsonenc.Get()
	if !s.statusJSONLocked(st.ID, b) {
		t.Fatal("statusJSONLocked miss")
	}
	if !bytes.Equal(b.B, wantStatus) {
		t.Errorf("status wire bytes changed\n got: %s\nwant: %s", b.B, wantStatus)
	}
	jsonenc.Put(b)

	runs := s.Runs()
	wantRuns, _ := json.Marshal(runs)
	rb := jsonenc.Get()
	rb.Byte('[')
	for i := range runs {
		if i > 0 {
			rb.Byte(',')
		}
		appendStatusJSON(rb, &runs[i])
	}
	rb.Byte(']')
	if !bytes.Equal(rb.B, wantRuns) {
		t.Errorf("runs wire bytes changed\n got: %s\nwant: %s", rb.B, wantRuns)
	}
	jsonenc.Put(rb)
}

func TestStatusEncodeZeroAllocs(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()
	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	// Warm the pool.
	b := jsonenc.Get()
	s.statusJSONLocked(st.ID, b)
	jsonenc.Put(b)
	allocs := testing.AllocsPerRun(1000, func() {
		buf := jsonenc.Get()
		s.statusJSONLocked(st.ID, buf)
		jsonenc.Put(buf)
	})
	if allocs != 0 {
		t.Errorf("status encode path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkServeStatusJSON measures the /sched/status encode hot path for
// a done run carrying a full 16-snapshot result profile.
func BenchmarkServeStatusJSON(b *testing.B) {
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()
	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(b, "")})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := jsonenc.Get()
		s.statusJSONLocked(st.ID, buf)
		jsonenc.Put(buf)
	}
}

// BenchmarkServeStatusJSONStdlib is the encoding/json reference for the
// same response.
func BenchmarkServeStatusJSONStdlib(b *testing.B) {
	s := New(Config{Workers: 2, QueueLimit: 16})
	defer s.Close()
	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(b, "")})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _ := s.Status(st.ID)
		if _, err := json.Marshal(got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeRunsJSON measures a 64-record /sched/runs page encode.
func BenchmarkServeRunsJSON(b *testing.B) {
	s := New(Config{Workers: 2, QueueLimit: 128})
	defer s.Close()
	for i := 0; i < 64; i++ {
		if _, err := s.Submit(SubmitRequest{
			Tenant:  fmt.Sprintf("t%d", i%8),
			RunFunc: func(<-chan struct{}) (*core.RunResult, error) { return &core.RunResult{Strategy: "noop"}, nil },
		}); err != nil {
			b.Fatal(err)
		}
	}
	waitIdle := func() {
		for s.Stats().Active > 0 || s.Stats().QueueDepth > 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs := s.RunsPage("", DefaultRunsLimit)
		buf := jsonenc.Get()
		buf.Byte('[')
		for j := range runs {
			if j > 0 {
				buf.Byte(',')
			}
			appendStatusJSON(buf, &runs[j])
		}
		buf.Byte(']')
		jsonenc.Put(buf)
	}
}

package sched

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/core"
	"github.com/pragma-grid/pragma/internal/stream"
)

func TestRunsPagination(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 64})
	defer s.Close()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()

	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		st, err := s.Submit(SubmitRequest{RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
			return &core.RunResult{Strategy: "noop"}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitFor(t, "runs to finish", func() bool { return s.Stats().Done == 10 })

	page := func(query string) []RunStatus {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sched/runs" + query)
		if err != nil {
			t.Fatal(err)
		}
		var out []RunStatus
		decodeJSON(t, resp, &out)
		return out
	}

	if got := page(""); len(got) != 10 {
		t.Fatalf("default page returned %d, want all 10", len(got))
	}
	first := page("?limit=4")
	if len(first) != 4 || first[0].ID != ids[0] {
		t.Fatalf("limit=4 page: %d records starting %q", len(first), first[0].ID)
	}
	second := page("?limit=4&after=" + first[len(first)-1].ID)
	if len(second) != 4 || second[0].ID != ids[4] {
		t.Fatalf("second page: %d records starting %q, want %q", len(second), second[0].ID, ids[4])
	}
	third := page("?limit=4&after=" + second[len(second)-1].ID)
	if len(third) != 2 || third[0].ID != ids[8] {
		t.Fatalf("third page: %d records starting %q, want %q", len(third), third[0].ID, ids[8])
	}
	if got := page("?after=" + ids[9]); len(got) != 0 {
		t.Fatalf("page past the end returned %d records", len(got))
	}

	// Bad limit is a JSON 400.
	resp, err := http.Get(srv.URL + "/sched/runs?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("bad limit Content-Type %q", ct)
	}
	resp.Body.Close()
}

func TestUnknownSchedPathIsJSON404(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sched/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	var body map[string]string
	decodeJSON(t, resp, &body)
	if body["error"] == "" {
		t.Error("404 body carries no error field")
	}
}

func TestSaturated429CarriesParseableRetryAfter(t *testing.T) {
	// One worker wedged + queue of 1 ⇒ the third submission must be
	// rejected 429 with a parseable Retry-After, and the accept loop must
	// keep answering other endpoints instantly while saturated.
	s := New(Config{Workers: 1, QueueLimit: 1})
	defer s.Close()
	block := make(chan struct{})
	defer close(block)
	wedge := func(<-chan struct{}) (*core.RunResult, error) {
		<-block
		return &core.RunResult{Strategy: "noop"}, nil
	}
	if _, err := s.Submit(SubmitRequest{RunFunc: wedge}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "wedged run to occupy the worker", func() bool {
		return s.Stats().Active == 1
	})
	if _, err := s.Submit(SubmitRequest{RunFunc: wedge}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s, func(tenant string, priority int, v url.Values) (RunSpec, error) {
		return testSpec(t, ""), nil
	}))
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/sched/submit", "", nil)
			if err != nil {
				t.Errorf("saturated submit: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("saturated submit: status %d, want 429", resp.StatusCode)
				return
			}
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs <= 0 {
				t.Errorf("Retry-After %q not a positive integer", ra)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("429 Content-Type %q", ct)
			}
		}()
	}
	// While the pool is wedged and submits flood in, reads must answer
	// promptly: a blocked accept loop would time these out.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			resp, err := client.Get(srv.URL + "/sched/stats")
			if err != nil {
				t.Errorf("stats during saturation: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("stats during saturation: status %d", resp.StatusCode)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("saturated scheduler blocked the accept loop")
	}
}

func TestHandlerEventsEndToEnd(t *testing.T) {
	hub := stream.NewHub(stream.Config{})
	defer hub.Close()
	s := New(Config{Workers: 2, QueueLimit: 16, Events: hub})
	defer s.Close()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()

	st, err := s.Submit(SubmitRequest{Tenant: "acme", Spec: testSpec(t, "")})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/sched/events?run=" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	// Tail the stream until the terminal state arrives; the full
	// lifecycle must be visible without a single /sched/status poll.
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if strings.Contains(line, `"type":"state"`) {
			for _, state := range []string{"queued", "running", "done"} {
				if strings.Contains(line, `"state":"`+state+`"`) {
					seen[state] = true
				}
			}
		}
		if seen["done"] {
			break
		}
	}
	for _, state := range []string{"queued", "running", "done"} {
		if !seen[state] {
			t.Errorf("SSE never delivered state %q", state)
		}
	}
	// Without an events hub the endpoint is a JSON 404, not a hang.
	plain := New(Config{Workers: 1})
	defer plain.Close()
	psrv := httptest.NewServer(Handler(plain, nil))
	defer psrv.Close()
	presp, err := http.Get(psrv.URL + "/sched/events")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Errorf("events without hub: status %d, want 404", presp.StatusCode)
	}
}

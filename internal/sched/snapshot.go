package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"sort"
	"time"

	"github.com/pragma-grid/pragma/internal/checkpoint"
)

// SnapshotSchema versions the scheduler snapshot payload inside the
// CRC-verified checkpoint container.
const SnapshotSchema = "pragma-sched-snapshot/v1"

// SnapshotRun is one restorable run in a scheduler snapshot: not the live
// spec (strategies and traces are not wire-serializable) but the wire
// parameters a SpecBuilder rebuilds the spec from, plus what Restore
// needs to resume rather than restart.
type SnapshotRun struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Priority int        `json:"priority"`
	State    State      `json:"state"`
	Wire     url.Values `json:"wire"`
	// Weight is the tenant's fair-share weight at snapshot time, so a
	// restored backlog keeps its proportional-allocation shape.
	Weight float64 `json:"weight,omitempty"`
	// Resume marks a drained or preempted run with a checkpoint on disk:
	// Restore sets Spec.Resume so the run continues from its last regrid
	// boundary.
	Resume bool `json:"resume,omitempty"`
}

// snapshotDoc is the JSON payload wrapped by the checkpoint container.
type snapshotDoc struct {
	Schema  string        `json:"schema"`
	Taken   time.Time     `json:"taken"`
	Runs    []SnapshotRun `json:"runs"`
	Skipped int           `json:"skipped,omitempty"`
}

// Snapshot serializes the scheduler's restorable backlog — queued runs,
// preempted runs waiting to resume, runs the drain cancelled before they
// started, and drained runs — into a
// CRC-verified checkpoint container, so a serving process can roll
// (drain, exit, restart, Restore) without losing a single admitted run.
//
// Take it after Drain completes: by then every run is either terminal or
// drained-resumable, so the snapshot is the complete set of unfinished
// work. A live snapshot is also valid but omits currently running runs
// (they belong to this process until they finish or drain).
//
// Runs submitted without Spec.Wire cannot be rebuilt by a SpecBuilder and
// are skipped; the skipped count is returned and recorded in the payload.
// Done and failed runs are history, not backlog, and are not captured.
func (s *Scheduler) Snapshot() (data []byte, skipped int, err error) {
	s.mu.Lock()
	rs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		switch r.state {
		case StateQueued, StatePreempted, StateCancelled, StateDrained:
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].seq < rs[j].seq })
	doc := snapshotDoc{Schema: SnapshotSchema, Taken: time.Now()}
	for _, r := range rs {
		if len(r.spec.Wire) == 0 {
			doc.Skipped++
			continue
		}
		doc.Runs = append(doc.Runs, SnapshotRun{
			ID:       r.id,
			Tenant:   r.tenant,
			Priority: r.priority,
			State:    r.state,
			Wire:     r.spec.Wire,
			Weight:   r.weight,
			Resume: (r.state == StateDrained || r.state == StatePreempted) &&
				r.spec.CheckpointDir != "",
		})
	}
	s.mu.Unlock()

	payload, err := json.Marshal(doc)
	if err != nil {
		return nil, doc.Skipped, fmt.Errorf("sched: snapshot: %w", err)
	}
	return checkpoint.Encode(payload), doc.Skipped, nil
}

// Restore resubmits every run of a snapshot taken by a previous process:
// each wire description is rebuilt into a spec through build (the same
// SpecBuilder the HTTP handler uses), drained runs get Spec.Resume so
// they continue from their checkpoints, and queued/cancelled runs start
// fresh. Runs receive new IDs from this scheduler's sequence.
//
// Restore is best-effort per run: a spec that no longer builds or is
// rejected at admission does not abort the rest. It returns how many runs
// were resubmitted and the joined errors of those that were not. A
// corrupt container or wrong schema fails outright with zero restored.
func (s *Scheduler) Restore(data []byte, build SpecBuilder) (restored int, err error) {
	if build == nil {
		return 0, errors.New("sched: restore: nil SpecBuilder")
	}
	payload, err := checkpoint.Decode(data)
	if err != nil {
		return 0, fmt.Errorf("sched: restore: %w", err)
	}
	var doc snapshotDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return 0, fmt.Errorf("sched: restore: %w", err)
	}
	if doc.Schema != SnapshotSchema {
		return 0, fmt.Errorf("sched: restore: unknown schema %q", doc.Schema)
	}
	var errs []error
	for _, sr := range doc.Runs {
		spec, berr := build(sr.Tenant, sr.Priority, sr.Wire)
		if berr != nil {
			errs = append(errs, fmt.Errorf("sched: restore %s: %w", sr.ID, berr))
			continue
		}
		spec.Wire = sr.Wire // keep the run restorable across the next roll too
		if sr.Resume {
			spec.Resume = true
		}
		if _, serr := s.Submit(SubmitRequest{Tenant: sr.Tenant, Priority: sr.Priority, Weight: sr.Weight, Spec: spec}); serr != nil {
			errs = append(errs, fmt.Errorf("sched: restore %s: %w", sr.ID, serr))
			continue
		}
		restored++
	}
	return restored, errors.Join(errs...)
}

package sched

import (
	"runtime"
	"sync"
	"testing"

	"github.com/pragma-grid/pragma/internal/core"
)

// BenchmarkSchedulerSubmitCycle measures the per-run overhead of the full
// scheduler path — admission, fair-queue churn across 8 tenants and 4
// priority bands, worker hand-off, and terminal bookkeeping — with a no-op
// run body, so the number is pure scheduling cost.
func BenchmarkSchedulerSubmitCycle(b *testing.B) {
	s := New(Config{
		Workers:    runtime.GOMAXPROCS(0),
		QueueLimit: 1 << 30, // never reject: the bench measures throughput, not backpressure
	})
	defer s.Close()
	var wg sync.WaitGroup
	noop := func(<-chan struct{}) (*core.RunResult, error) {
		wg.Done()
		return nil, nil
	}
	tenants := [8]string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	b.ReportAllocs()
	b.ResetTimer()
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(SubmitRequest{
			Tenant:   tenants[i%len(tenants)],
			Priority: i % 4,
			RunFunc:  noop,
		}); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

// BenchmarkFairQueueChurn measures steady-state push/pop on the admission
// queue itself: 16 tenants rotating inside 4 priority bands.
func BenchmarkFairQueueChurn(b *testing.B) {
	fq := newFairQueue()
	rs := make([]*run, 64)
	for i := range rs {
		rs[i] = &run{tenant: string(rune('a' + i%16)), priority: i % 4}
	}
	for _, r := range rs {
		fq.push(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fq.pop()
		fq.push(r)
	}
}

// BenchmarkWeightedQueue measures the weighted pop path: 16 tenants with
// distinct accumulated service, so every pop takes the least-service scan
// rather than the uncharged round-robin fast path.
func BenchmarkWeightedQueue(b *testing.B) {
	fq := newFairQueue()
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = float64(1 + i%8)
		tenant := string(rune('a' + i))
		fq.push(&run{tenant: tenant, priority: 0})
		fq.charge(0, tenant, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fq.pop()
		fq.charge(0, r.tenant, 1/weights[int(r.tenant[0]-'a')])
		fq.push(r)
	}
}

package sched

import (
	"context"
	"fmt"
	"net/url"
	"path/filepath"
	"testing"

	"github.com/pragma-grid/pragma/internal/core"
)

// snapshotBuilder is the SpecBuilder both "processes" of the roll tests
// share: name=N selects the checkpoint directory, resume is driven by
// Restore's Resume flag rather than a wire param.
func snapshotBuilder(t testing.TB, ckptRoot string) SpecBuilder {
	return func(tenant string, priority int, v url.Values) (RunSpec, error) {
		name := v.Get("name")
		if name == "" {
			return RunSpec{}, fmt.Errorf("missing name")
		}
		spec := testSpec(t, filepath.Join(ckptRoot, tenant, name))
		spec.CheckpointEvery = 1
		return spec, nil
	}
}

// wireValues builds the url.Values a submission would carry over HTTP.
func wireValues(tenant, name string) url.Values {
	return url.Values{"tenant": {tenant}, "name": {name}}
}

func TestSnapshotRestoreLosesNoRun(t *testing.T) {
	ckptRoot := t.TempDir()
	build := snapshotBuilder(t, ckptRoot)

	// "Process one": a single worker, one run mid-flight (gated so it is
	// provably running when the drain lands) and three more queued.
	s1 := New(Config{Workers: 1, QueueLimit: 16})
	reached := make(chan struct{})
	release := make(chan struct{})
	gated := &gatedStrategy{Strategy: core.Static{P: partitioner(t)}, at: 3, reached: reached, release: release}
	inflight := testSpec(t, filepath.Join(ckptRoot, "a", "inflight"))
	inflight.CheckpointEvery = 1
	inflight.Strategy = gated
	inflight.Wire = wireValues("a", "inflight")
	if _, err := s1.Submit(SubmitRequest{Tenant: "a", Spec: inflight}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("queued-%d", i)
		spec, err := build("b", 0, wireValues("b", name))
		if err != nil {
			t.Fatal(err)
		}
		spec.Wire = wireValues("b", name)
		if _, err := s1.Submit(SubmitRequest{Tenant: "b", Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	<-reached // the in-flight run is inside regrid 3

	drainDone := make(chan error, 1)
	go func() { drainDone <- s1.Drain(context.Background()) }()
	close(release)
	if err := <-drainDone; err != nil {
		t.Fatal(err)
	}

	data, skipped, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("snapshot skipped %d runs; all carried Wire", skipped)
	}

	// Sanity: process one drained 1 and cancelled 3.
	st1 := s1.Stats()
	if st1.Drained != 1 || st1.Cancelled != 3 {
		t.Fatalf("process one ended with drained=%d cancelled=%d, want 1/3", st1.Drained, st1.Cancelled)
	}

	// "Process two": restore everything and let it run to completion.
	s2 := New(Config{Workers: 2, QueueLimit: 16})
	defer s2.Close()
	restored, err := s2.Restore(data, build)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 4 {
		t.Fatalf("restored %d runs, want 4 (1 drained + 3 cancelled)", restored)
	}
	waitFor(t, "restored runs to finish", func() bool {
		return s2.Stats().Done == 4
	})

	// Every restored run must end bit-identical to the uninterrupted
	// reference — including the one resumed from its drain checkpoint.
	want := refResult(t)
	for _, st := range s2.Runs() {
		if st.State != StateDone {
			t.Errorf("%s ended %q (%s)", st.ID, st.State, st.Error)
			continue
		}
		sameRunResult(t, st.ID, st.Result, want)
	}
}

func TestSnapshotSkipsUnwiredAndTerminal(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 16})
	// A run that completes (terminal: not part of the backlog).
	st, err := s.Submit(SubmitRequest{RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		return &core.RunResult{Strategy: "noop"}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	// A queued run without Wire: restorable in principle, but not
	// serializable — counted as skipped.
	block := make(chan struct{})
	defer close(block)
	if _, err := s.Submit(SubmitRequest{RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		<-block
		return &core.RunResult{Strategy: "noop"}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocked run to occupy the worker", func() bool {
		return s.Stats().Active == 1
	})
	unwired := testSpec(t, "")
	if _, err := s.Submit(SubmitRequest{Tenant: "x", Spec: unwired}); err != nil {
		t.Fatal(err)
	}

	data, skipped, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Errorf("skipped %d, want 1 (the unwired queued spec)", skipped)
	}
	s2 := New(Config{Workers: 1, QueueLimit: 16})
	defer s2.Close()
	restored, err := s2.Restore(data, snapshotBuilder(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 {
		t.Errorf("restored %d, want 0 (done run is history, unwired skipped)", restored)
	}
}

func TestRestoreRejectsCorruptAndForeign(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	build := snapshotBuilder(t, t.TempDir())
	if _, err := s.Restore([]byte("not a checkpoint"), build); err == nil {
		t.Error("corrupt container accepted")
	}
	data, _, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: CRC must catch it.
	if len(data) > 30 {
		data[len(data)-1] ^= 0xFF
		if _, err := s.Restore(data, build); err == nil {
			t.Error("bit-flipped container accepted")
		}
	}
	if _, err := s.Restore(nil, nil); err == nil {
		t.Error("nil builder accepted")
	}
}

// TestSnapshotCarriesWeights proves tenant weights survive the
// snapshot/restore roll: a restored backlog is re-admitted with the same
// per-tenant weights it was submitted with.
func TestSnapshotCarriesWeights(t *testing.T) {
	ckptRoot := t.TempDir()
	build := snapshotBuilder(t, ckptRoot)
	s1 := New(Config{Workers: 1, QueueLimit: 16})

	// Park the worker so the weighted runs stay queued for the snapshot.
	block := make(chan struct{})
	if _, err := s1.Submit(SubmitRequest{RunFunc: func(<-chan struct{}) (*core.RunResult, error) {
		<-block
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gate run to occupy the worker", func() bool {
		return s1.Stats().Active == 1
	})
	weights := map[string]float64{"gold": 8, "coach": 0.5}
	for tenant := range weights {
		spec, err := build(tenant, 0, wireValues(tenant, "job"))
		if err != nil {
			t.Fatal(err)
		}
		spec.Wire = wireValues(tenant, "job")
		st, err := s1.Submit(SubmitRequest{Tenant: tenant, Weight: weights[tenant], Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if st.Weight != weights[tenant] {
			t.Fatalf("tenant %s submitted at weight %v, status says %v", tenant, weights[tenant], st.Weight)
		}
	}

	data, skipped, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d, want 0 (the gate run is in flight, not backlog)", skipped)
	}
	close(block)

	s2 := New(Config{Workers: 1, QueueLimit: 16})
	defer s2.Close()
	restored, err := s2.Restore(data, build)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d runs, want 2", restored)
	}
	waitFor(t, "restored runs to finish", func() bool { return s2.Stats().Done == 2 })
	seen := 0
	for _, st := range s2.Runs() {
		want, ok := weights[st.Tenant]
		if !ok {
			t.Errorf("unexpected restored tenant %q", st.Tenant)
			continue
		}
		seen++
		if st.Weight != want {
			t.Errorf("restored tenant %s at weight %v, want %v", st.Tenant, st.Weight, want)
		}
	}
	if seen != 2 {
		t.Errorf("saw %d restored runs, want 2", seen)
	}
}

package sched

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/agents"
	"github.com/pragma-grid/pragma/internal/engine"
	"github.com/pragma-grid/pragma/internal/partition"
	"github.com/pragma-grid/pragma/internal/samr"
)

// emulateFinalSnapshot runs the trace's last hierarchy as a real
// message-passing program on an in-process Message Center, under the
// engine's worker supervision: every barrier wait is bounded by the spec's
// step deadline, and an interval that loses workers is remapped onto the
// survivors (fresh mailboxes per attempt) up to EmulateRetries times
// before the run fails. The failure stays inside this run — the pool
// worker records it and moves on.
func emulateFinalSnapshot(spec RunSpec) error {
	h := spec.Trace.Snapshots[len(spec.Trace.Snapshots)-1].H
	nprocs := spec.NProcs
	if nprocs == 0 {
		nprocs = spec.Machine.NProcs()
	}
	p, err := partition.ByName("G-MISP+SP")
	if err != nil {
		return err
	}
	a, err := p.Partition(h, samr.UniformWorkModel{}, nprocs)
	if err != nil {
		return err
	}
	center := agents.NewCenter()
	ports := make([]agents.Port, nprocs)
	for i := range ports {
		ports[i] = center
	}
	build := func(attempt int, lost []int) (*engine.Engine, error) {
		if attempt > 0 {
			// The previous attempt reported lost in its own numbering;
			// remap its assignment onto the survivors and shrink the port
			// set to match.
			a, _, err = engine.RemapOntoSurvivors(a, lost)
			if err != nil {
				return nil, err
			}
			ports = ports[:a.NProcs]
		}
		opts := []engine.Option{engine.WithPortSuffix(fmt.Sprintf("a%d", attempt))}
		if spec.EmulateDeadline > 0 {
			opts = append(opts, engine.WithStepDeadline(spec.EmulateDeadline))
		}
		return engine.New(h, a, center, ports, opts...)
	}
	_, _, err = engine.RunRecovering(spec.EmulateSteps, spec.EmulateRetries, build)
	return err
}

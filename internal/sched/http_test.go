package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueLimit: 8})
	build := func(tenant string, priority int, v url.Values) (RunSpec, error) {
		if v.Get("trace") != "tiny" {
			return RunSpec{}, fmt.Errorf("unknown trace %q", v.Get("trace"))
		}
		return testSpec(t, ""), nil
	}
	srv := httptest.NewServer(Handler(s, build))
	defer srv.Close()
	defer s.Close()

	// Submit is POST-only and rejects unknown specs.
	resp, err := http.Get(srv.URL + "/sched/submit?trace=tiny")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit returned %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/sched/submit?trace=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec returned %d, want 400", resp.StatusCode)
	}

	// A good submission is accepted and observable until done.
	resp, err = http.Post(srv.URL+"/sched/submit?trace=tiny&tenant=acme&priority=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", resp.StatusCode)
	}
	var st RunStatus
	decodeJSON(t, resp, &st)
	if st.ID == "" || st.Tenant != "acme" || st.Priority != 2 {
		t.Fatalf("submit echoed %+v", st)
	}

	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/sched/status?id=" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final RunStatus
	decodeJSON(t, resp, &final)
	if final.State != StateDone {
		t.Fatalf("status reports %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Steps == 0 {
		t.Fatal("done status carries no result profile")
	}

	resp, err = http.Get(srv.URL + "/sched/status?id=run-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/sched/runs")
	if err != nil {
		t.Fatal(err)
	}
	var runs []RunStatus
	decodeJSON(t, resp, &runs)
	if len(runs) != 1 || runs[0].ID != st.ID {
		t.Fatalf("runs listing %+v", runs)
	}

	resp, err = http.Get(srv.URL + "/sched/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	decodeJSON(t, resp, &stats)
	if stats.Workers != 2 || stats.Submitted != 1 || stats.Done != 1 {
		t.Fatalf("stats %+v", stats)
	}

	// Drain over HTTP, then further submissions see 503.
	resp, err = http.Get(srv.URL + "/sched/drain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET drain returned %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/sched/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var drained Stats
	decodeJSON(t, resp, &drained)
	if !drained.Draining {
		t.Fatalf("drain response %+v not draining", drained)
	}
	resp, err = http.Post(srv.URL+"/sched/submit?trace=tiny", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining returned %d, want 503", resp.StatusCode)
	}
}

func TestHandlerBackpressureStatus(t *testing.T) {
	s := New(Config{Workers: 1, QueueLimit: 1})
	defer s.Close()
	gate := make(chan struct{})
	defer close(gate)
	// Park the worker and fill the queue through the scheduler directly,
	// then confirm the HTTP surface translates saturation to 429.
	if _, err := s.Submit(SubmitRequest{Tenant: "t", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the blocker to start", func() bool { return s.Stats().Active == 1 })
	if _, err := s.Submit(SubmitRequest{Tenant: "t", RunFunc: blockingRun(gate)}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(s, func(string, int, url.Values) (RunSpec, error) {
		return testSpec(t, ""), nil
	}))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/sched/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestHandlerNilBuilder(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/sched/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("nil builder returned %d, want 501", resp.StatusCode)
	}
}

package sched

// fairQueue is the admission queue: priority bands ordered highest-first,
// and inside each band one FIFO per tenant served round-robin. A flood of
// submissions from one tenant therefore cannot starve another tenant at
// the same priority — each rotation hands every waiting tenant exactly one
// slot — while a higher band always preempts the bands below it.
//
// The queue is not self-synchronized; the Scheduler accesses it under its
// own mutex.
type fairQueue struct {
	bands []*band // sorted by priority, descending
	n     int
}

// band is one priority class: per-tenant FIFOs plus the rotation ring.
type band struct {
	priority int
	ring     []string // tenant rotation order
	next     int      // ring index the next pop starts from
	fifos    map[string][]*run
}

func newFairQueue() *fairQueue {
	return &fairQueue{}
}

func (q *fairQueue) len() int { return q.n }

// push appends r to its tenant's FIFO in the band for r.priority, creating
// band and tenant slots on first use. New tenants join the rotation ring
// at the end and are served within one full rotation.
func (q *fairQueue) push(r *run) {
	i := 0
	for i < len(q.bands) && q.bands[i].priority > r.priority {
		i++
	}
	if i == len(q.bands) || q.bands[i].priority != r.priority {
		q.bands = append(q.bands, nil)
		copy(q.bands[i+1:], q.bands[i:])
		q.bands[i] = &band{priority: r.priority, fifos: make(map[string][]*run)}
	}
	b := q.bands[i]
	if _, ok := b.fifos[r.tenant]; !ok {
		b.ring = append(b.ring, r.tenant)
	}
	b.fifos[r.tenant] = append(b.fifos[r.tenant], r)
	q.n++
}

// pop removes and returns the next run: the highest non-empty priority
// band, and within it the next tenant in rotation. Returns nil when empty.
func (q *fairQueue) pop() *run {
	for bi := 0; bi < len(q.bands); bi++ {
		b := q.bands[bi]
		if len(b.ring) == 0 {
			continue
		}
		if b.next >= len(b.ring) {
			b.next = 0
		}
		tenant := b.ring[b.next]
		fifo := b.fifos[tenant]
		r := fifo[0]
		fifo[0] = nil // release the reference for GC
		if len(fifo) == 1 {
			// Tenant emptied: leave the rotation; the cursor now points at
			// the shifted-in successor, which is exactly the next tenant.
			delete(b.fifos, tenant)
			b.ring = append(b.ring[:b.next], b.ring[b.next+1:]...)
		} else {
			b.fifos[tenant] = fifo[1:]
			b.next++
		}
		if len(b.ring) == 0 {
			q.bands = append(q.bands[:bi], q.bands[bi+1:]...)
		}
		q.n--
		return r
	}
	return nil
}

// drainAll removes and returns every queued run (used when a drain cancels
// the backlog), in pop order.
func (q *fairQueue) drainAll() []*run {
	out := make([]*run, 0, q.n)
	for r := q.pop(); r != nil; r = q.pop() {
		out = append(out, r)
	}
	return out
}

package sched

// fairQueue is the admission queue: priority bands ordered highest-first,
// and inside each band one FIFO per tenant served by weighted max-min
// fairness with proportional allocation. Each band tracks the normalized
// service every tenant has consumed — run cost divided by tenant weight,
// charged by the Scheduler as runs complete — and pop always serves the
// waiting tenant with the least normalized service. A weight-3 tenant
// therefore accumulates service a third as fast as a weight-1 tenant and
// is served ~3x as often under saturation, while an idle tenant's unused
// share redistributes to whoever is waiting (max-min: nobody's allocation
// can grow except by taking from someone with less). A higher band always
// preempts the bands below it.
//
// Ties — in particular the all-zero-service case where no run has ever
// been charged — fall back to the original rotation cursor, so the
// unweighted behavior is exactly the historical per-tenant round-robin.
//
// The queue is not self-synchronized; the Scheduler accesses it under its
// own mutex.
type fairQueue struct {
	bands []*band // sorted by priority, descending
	n     int
}

// band is one priority class: per-tenant FIFOs, the rotation ring of
// tenants with queued work, and the normalized-service ledger (which
// outlives ring membership: a tenant keeps its service while it still has
// running work, and sheds it through tenantExit when its last run ends).
type band struct {
	priority int
	ring     []string // tenant rotation order (tenants with queued runs)
	next     int      // ring index the next pop's scan starts from
	fifos    map[string][]*run
	service  map[string]float64 // normalized service per tenant; nil until first charge
}

func newFairQueue() *fairQueue {
	return &fairQueue{}
}

func (q *fairQueue) len() int { return q.n }

// bandFor returns the band for priority, inserting it (sorted descending)
// on first use.
func (q *fairQueue) bandFor(priority int) *band {
	i := 0
	for i < len(q.bands) && q.bands[i].priority > priority {
		i++
	}
	if i == len(q.bands) || q.bands[i].priority != priority {
		q.bands = append(q.bands, nil)
		copy(q.bands[i+1:], q.bands[i:])
		q.bands[i] = &band{priority: priority, fifos: make(map[string][]*run)}
	}
	return q.bands[i]
}

// push appends r to its tenant's FIFO in the band for r.priority, creating
// band and tenant slots on first use. New tenants join the rotation ring
// at the end and are served within one full rotation (sooner if their
// normalized service is below the field's).
func (q *fairQueue) push(r *run) {
	b := q.bandFor(r.priority)
	if _, ok := b.fifos[r.tenant]; !ok {
		b.ring = append(b.ring, r.tenant)
	}
	b.fifos[r.tenant] = append(b.fifos[r.tenant], r)
	q.n++
}

// pushFront requeues a preempted run ahead of everything its tenant has
// waiting — the run was already dispatched once and resumes first — and
// puts the tenant at the cursor so ties scan it next. Its accumulated
// service is untouched: the tenant keeps the credit (and the debt) of the
// work the run completed before yielding.
func (q *fairQueue) pushFront(r *run) {
	b := q.bandFor(r.priority)
	if _, ok := b.fifos[r.tenant]; !ok {
		if b.next > len(b.ring) {
			b.next = len(b.ring)
		}
		b.ring = append(b.ring, "")
		copy(b.ring[b.next+1:], b.ring[b.next:])
		b.ring[b.next] = r.tenant
	}
	b.fifos[r.tenant] = append([]*run{r}, b.fifos[r.tenant]...)
	q.n++
}

// pop removes and returns the next run: the highest priority band with
// queued work, and within it the waiting tenant with the least normalized
// service (ties resolve in rotation order from the cursor, which is the
// historical round-robin). Returns nil when empty.
func (q *fairQueue) pop() *run {
	for bi := 0; bi < len(q.bands); bi++ {
		b := q.bands[bi]
		if len(b.ring) == 0 {
			continue
		}
		i := b.sel()
		tenant := b.ring[i]
		fifo := b.fifos[tenant]
		r := fifo[0]
		fifo[0] = nil // release the reference for GC
		if len(fifo) == 1 {
			// Tenant's backlog emptied: leave the rotation; the cursor now
			// points at the shifted-in successor, which is exactly the
			// next tenant in rotation order.
			delete(b.fifos, tenant)
			b.ring = append(b.ring[:i], b.ring[i+1:]...)
			if i < b.next {
				b.next--
			}
		} else {
			b.fifos[tenant] = fifo[1:]
			b.next = i + 1
		}
		if len(b.ring) == 0 && len(b.service) == 0 {
			// Nothing queued and no service to remember: drop the band.
			// A band with live service survives ring-empty so tenants
			// with running work keep their ledger until tenantExit.
			q.bands = append(q.bands[:bi], q.bands[bi+1:]...)
		}
		q.n--
		return r
	}
	return nil
}

// sel picks the ring index to serve: the least-normalized-service tenant,
// scanning from the cursor so equal-service tenants keep strict rotation
// order. The common uncharged band (service ledger still nil) short-cuts
// to the cursor itself — the historical O(1) round-robin pop.
func (b *band) sel() int {
	n := len(b.ring)
	if b.next >= n {
		b.next = 0
	}
	if len(b.service) == 0 || n == 1 {
		return b.next
	}
	best := b.next
	bestSvc := b.service[b.ring[best]]
	for k := 1; k < n; k++ {
		i := b.next + k
		if i >= n {
			i -= n
		}
		if svc := b.service[b.ring[i]]; svc < bestSvc {
			best, bestSvc = i, svc
		}
	}
	return best
}

// charge adds norm (cost divided by weight) to the tenant's normalized
// service in the band for priority and returns the new total. The
// Scheduler calls it as run attempts complete; the entry persists until
// tenantExit so a tenant's share is enforced across its whole active
// period, not per queue residency.
func (q *fairQueue) charge(priority int, tenant string, norm float64) float64 {
	b := q.bandFor(priority)
	if b.service == nil {
		b.service = make(map[string]float64)
	}
	b.service[tenant] += norm
	return b.service[tenant]
}

// service returns the tenant's accumulated normalized service in the band
// for priority (0 if the band or tenant has none).
func (q *fairQueue) service(priority int, tenant string) float64 {
	for _, b := range q.bands {
		if b.priority == priority {
			return b.service[tenant]
		}
	}
	return 0
}

// tenantExit forgets a tenant's normalized service in every band — called
// when its last queued-or-running run finishes, so a departing tenant
// neither banks unbounded idle credit nor carries debt into its next
// active period. Bands left with no queued work and no service are
// dropped.
func (q *fairQueue) tenantExit(tenant string) {
	out := q.bands[:0]
	for _, b := range q.bands {
		delete(b.service, tenant)
		if len(b.ring) > 0 || len(b.service) > 0 {
			out = append(out, b)
		}
	}
	for i := len(out); i < len(q.bands); i++ {
		q.bands[i] = nil
	}
	q.bands = out
}

// drainAll removes and returns every queued run (used when a drain cancels
// the backlog), in pop order.
func (q *fairQueue) drainAll() []*run {
	out := make([]*run, 0, q.n)
	for r := q.pop(); r != nil; r = q.pop() {
		out = append(out, r)
	}
	return out
}

package samr

import (
	"fmt"
	"math"
)

// Hierarchy is an SAMR grid hierarchy: a coarse domain plus a stack of
// refinement levels. Levels[l] holds the boxes of level l expressed in
// level-l index coordinates; level l is Ratio^l times finer than level 0
// along every axis. Levels[0] always contains exactly the domain box.
//
// With multiple independent timesteps (MIT), level l advances Ratio^l
// sub-steps per coarse step, so a level-l cell carries Ratio^l times the
// per-coarse-step work of a level-0 cell.
type Hierarchy struct {
	Domain Box
	Ratio  int
	Levels [][]Box
}

// NewHierarchy creates a hierarchy whose only level is the domain itself.
func NewHierarchy(domain Box, ratio int) (*Hierarchy, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("samr: empty domain %v", domain)
	}
	if ratio < 2 {
		return nil, fmt.Errorf("samr: refinement ratio %d < 2", ratio)
	}
	return &Hierarchy{
		Domain: domain,
		Ratio:  ratio,
		Levels: [][]Box{{domain}},
	}, nil
}

// Clone returns a deep copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{Domain: h.Domain, Ratio: h.Ratio, Levels: make([][]Box, len(h.Levels))}
	for l, boxes := range h.Levels {
		c.Levels[l] = append([]Box(nil), boxes...)
	}
	return c
}

// Depth returns the number of levels (>= 1).
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// SetLevel replaces the boxes of level l (l >= 1). Passing an empty slice
// truncates the hierarchy at level l.
func (h *Hierarchy) SetLevel(l int, boxes []Box) error {
	if l < 1 {
		return fmt.Errorf("samr: cannot replace base level")
	}
	if l > len(h.Levels) {
		return fmt.Errorf("samr: level %d skips levels (depth %d)", l, len(h.Levels))
	}
	if len(boxes) == 0 {
		h.Levels = h.Levels[:l]
		return nil
	}
	if l == len(h.Levels) {
		h.Levels = append(h.Levels, nil)
	}
	h.Levels[l] = append([]Box(nil), boxes...)
	h.Levels = h.Levels[:l+1]
	return nil
}

// LevelDomain returns the whole domain expressed in level-l coordinates.
func (h *Hierarchy) LevelDomain(l int) Box {
	b := h.Domain
	for i := 0; i < l; i++ {
		b = b.Refine(h.Ratio)
	}
	return b
}

// refinementScale returns Ratio^l.
func (h *Hierarchy) refinementScale(l int) int {
	s := 1
	for i := 0; i < l; i++ {
		s *= h.Ratio
	}
	return s
}

// Validate checks structural invariants: boxes non-empty and inside the
// level domain, boxes on a level pairwise disjoint, and every level-(l+1)
// box nested inside the union of refined level-l boxes.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("samr: hierarchy has no levels")
	}
	if len(h.Levels[0]) != 1 || h.Levels[0][0] != h.Domain {
		return fmt.Errorf("samr: level 0 must be exactly the domain")
	}
	for l, boxes := range h.Levels {
		dom := h.LevelDomain(l)
		for i, b := range boxes {
			if b.Empty() {
				return fmt.Errorf("samr: level %d box %d is empty", l, i)
			}
			if !dom.ContainsBox(b) {
				return fmt.Errorf("samr: level %d box %v escapes domain %v", l, b, dom)
			}
			for j := i + 1; j < len(boxes); j++ {
				if b.Overlaps(boxes[j]) {
					return fmt.Errorf("samr: level %d boxes %v and %v overlap", l, b, boxes[j])
				}
			}
		}
		if l == 0 {
			continue
		}
		parents := make([]Box, len(h.Levels[l-1]))
		for i, p := range h.Levels[l-1] {
			parents[i] = p.Refine(h.Ratio)
		}
		for _, b := range boxes {
			if !coveredBy(b, parents) {
				return fmt.Errorf("samr: level %d box %v not nested in level %d", l, b, l-1)
			}
		}
	}
	return nil
}

// coveredBy reports whether box b is entirely covered by the union of cover.
func coveredBy(b Box, cover []Box) bool {
	remaining := []Box{b}
	for _, c := range cover {
		var next []Box
		for _, r := range remaining {
			next = append(next, r.Subtract(c)...)
		}
		remaining = next
		if len(remaining) == 0 {
			return true
		}
	}
	return len(remaining) == 0
}

// CellsAtLevel returns the total number of cells on level l.
func (h *Hierarchy) CellsAtLevel(l int) int64 {
	var n int64
	for _, b := range h.Levels[l] {
		n += b.Volume()
	}
	return n
}

// TotalCells returns the total cell count across all levels.
func (h *Hierarchy) TotalCells() int64 {
	var n int64
	for l := range h.Levels {
		n += h.CellsAtLevel(l)
	}
	return n
}

// TotalWork returns the per-coarse-step computational work of the hierarchy
// under MIT time refinement: a level-l cell costs Ratio^l cell-updates per
// coarse step.
func (h *Hierarchy) TotalWork() float64 {
	var w float64
	for l := range h.Levels {
		w += float64(h.CellsAtLevel(l)) * float64(h.refinementScale(l))
	}
	return w
}

// UniformWork returns the per-coarse-step work a non-adaptive run would
// need to match the finest resolution everywhere: cells of the domain
// refined to the deepest level, each advancing Ratio^(depth-1) sub-steps.
func (h *Hierarchy) UniformWork() float64 {
	finest := h.Depth() - 1
	scale := float64(h.refinementScale(finest))
	cells := float64(h.Domain.Volume()) * math.Pow(scale, 3)
	return cells * scale
}

// AMREfficiency returns the percentage of the equivalent uniform-grid work
// that adaptivity avoids: 100 * (1 - TotalWork/UniformWork). This is the
// "AMR efficiency" column of the paper's Table 4.
func (h *Hierarchy) AMREfficiency() float64 {
	uw := h.UniformWork()
	if uw == 0 {
		return 0
	}
	return 100 * (1 - h.TotalWork()/uw)
}

// RefinedVolumeFraction returns the fraction of the level-(l-1) refined
// domain covered by level-l boxes. Reports 0 for l outside [1, depth).
func (h *Hierarchy) RefinedVolumeFraction(l int) float64 {
	if l < 1 || l >= h.Depth() {
		return 0
	}
	return float64(h.CellsAtLevel(l)) / float64(h.LevelDomain(l).Volume())
}

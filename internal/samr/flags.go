package samr

// Flags is a dense bitmap of error-flagged cells over a bounding box. The
// application's error estimator marks cells that need refinement; the
// Berger–Rigoutsos clusterer then covers the marked cells with boxes.
type Flags struct {
	bounds Box
	nx, ny int // cached extents for addressing
	bits   []uint64
	count  int
}

// NewFlags creates an empty flag bitmap over the given (non-empty) bounds.
func NewFlags(bounds Box) *Flags {
	if bounds.Empty() {
		panic("samr: NewFlags over empty box")
	}
	n := bounds.Volume()
	return &Flags{
		bounds: bounds,
		nx:     bounds.Dx(0),
		ny:     bounds.Dx(1),
		bits:   make([]uint64, (n+63)/64),
	}
}

// Bounds returns the region the bitmap covers.
func (f *Flags) Bounds() Box { return f.bounds }

// Count returns the number of flagged cells.
func (f *Flags) Count() int { return f.count }

func (f *Flags) index(p Point) int64 {
	x := p[0] - f.bounds.Lo[0]
	y := p[1] - f.bounds.Lo[1]
	z := p[2] - f.bounds.Lo[2]
	return int64(x) + int64(f.nx)*(int64(y)+int64(f.ny)*int64(z))
}

// Set flags the cell at p. Points outside the bounds are ignored so callers
// can flag analytic regions without clipping first.
func (f *Flags) Set(p Point) {
	if !f.bounds.Contains(p) {
		return
	}
	i := f.index(p)
	mask := uint64(1) << uint(i&63)
	if f.bits[i>>6]&mask == 0 {
		f.bits[i>>6] |= mask
		f.count++
	}
}

// Get reports whether the cell at p is flagged. Points outside the bounds
// are unflagged by definition.
func (f *Flags) Get(p Point) bool {
	if !f.bounds.Contains(p) {
		return false
	}
	i := f.index(p)
	return f.bits[i>>6]&(uint64(1)<<uint(i&63)) != 0
}

// SetBox flags every cell in b that lies inside the bounds.
func (f *Flags) SetBox(b Box) {
	clipped, ok := f.bounds.Intersect(b)
	if !ok {
		return
	}
	for z := clipped.Lo[2]; z < clipped.Hi[2]; z++ {
		for y := clipped.Lo[1]; y < clipped.Hi[1]; y++ {
			for x := clipped.Lo[0]; x < clipped.Hi[0]; x++ {
				f.Set(Point{x, y, z})
			}
		}
	}
}

// CountIn returns the number of flagged cells inside b.
func (f *Flags) CountIn(b Box) int {
	clipped, ok := f.bounds.Intersect(b)
	if !ok {
		return 0
	}
	n := 0
	for z := clipped.Lo[2]; z < clipped.Hi[2]; z++ {
		for y := clipped.Lo[1]; y < clipped.Hi[1]; y++ {
			for x := clipped.Lo[0]; x < clipped.Hi[0]; x++ {
				if f.Get(Point{x, y, z}) {
					n++
				}
			}
		}
	}
	return n
}

// BoundingBox returns the tightest box containing all flagged cells inside
// region, and false when region holds no flagged cells.
func (f *Flags) BoundingBox(region Box) (Box, bool) {
	clipped, ok := f.bounds.Intersect(region)
	if !ok {
		return Box{}, false
	}
	lo := Point{clipped.Hi[0], clipped.Hi[1], clipped.Hi[2]}
	hi := Point{clipped.Lo[0], clipped.Lo[1], clipped.Lo[2]}
	found := false
	for z := clipped.Lo[2]; z < clipped.Hi[2]; z++ {
		for y := clipped.Lo[1]; y < clipped.Hi[1]; y++ {
			for x := clipped.Lo[0]; x < clipped.Hi[0]; x++ {
				if !f.Get(Point{x, y, z}) {
					continue
				}
				found = true
				if x < lo[0] {
					lo[0] = x
				}
				if y < lo[1] {
					lo[1] = y
				}
				if z < lo[2] {
					lo[2] = z
				}
				if x+1 > hi[0] {
					hi[0] = x + 1
				}
				if y+1 > hi[1] {
					hi[1] = y + 1
				}
				if z+1 > hi[2] {
					hi[2] = z + 1
				}
			}
		}
	}
	if !found {
		return Box{}, false
	}
	return Box{Lo: lo, Hi: hi}, true
}

// Buffer returns a new bitmap with every flagged cell dilated by n cells in
// each direction (clipped to the bounds). Standard SAMR practice buffers
// flags before clustering so that moving features stay inside their refined
// boxes until the next regrid.
func (f *Flags) Buffer(n int) *Flags {
	if n <= 0 {
		out := NewFlags(f.bounds)
		for z := f.bounds.Lo[2]; z < f.bounds.Hi[2]; z++ {
			for y := f.bounds.Lo[1]; y < f.bounds.Hi[1]; y++ {
				for x := f.bounds.Lo[0]; x < f.bounds.Hi[0]; x++ {
					if f.Get(Point{x, y, z}) {
						out.Set(Point{x, y, z})
					}
				}
			}
		}
		return out
	}
	out := NewFlags(f.bounds)
	for z := f.bounds.Lo[2]; z < f.bounds.Hi[2]; z++ {
		for y := f.bounds.Lo[1]; y < f.bounds.Hi[1]; y++ {
			for x := f.bounds.Lo[0]; x < f.bounds.Hi[0]; x++ {
				if f.Get(Point{x, y, z}) {
					out.SetBox(Box{
						Lo: Point{x - n, y - n, z - n},
						Hi: Point{x + n + 1, y + n + 1, z + n + 1},
					})
				}
			}
		}
	}
	return out
}

// Signature returns the per-plane flagged-cell counts of region along axis
// d: Signature[i] is the number of flagged cells in the plane
// region.Lo[d]+i. Signatures drive the Berger–Rigoutsos cut selection.
func (f *Flags) Signature(region Box, d int) []int64 {
	clipped, ok := f.bounds.Intersect(region)
	if !ok {
		return make([]int64, max(0, region.Dx(d)))
	}
	sig := make([]int64, region.Dx(d))
	for z := clipped.Lo[2]; z < clipped.Hi[2]; z++ {
		for y := clipped.Lo[1]; y < clipped.Hi[1]; y++ {
			for x := clipped.Lo[0]; x < clipped.Hi[0]; x++ {
				if f.Get(Point{x, y, z}) {
					p := Point{x, y, z}
					sig[p[d]-region.Lo[d]]++
				}
			}
		}
	}
	return sig
}

package samr

// WorkModel assigns computational weight to grid regions. The paper notes
// that "the local physics may change significantly from zone to zone as
// fronts move through the system", producing heterogeneous and dynamic load
// per zone; a WorkModel captures that.
type WorkModel interface {
	// BoxWork returns the per-coarse-step computational weight of box b on
	// level l (in level-l coordinates), including MIT time refinement.
	BoxWork(h *Hierarchy, level int, b Box) float64
}

// UniformWork charges every cell the same base cost, scaled by Ratio^level
// for MIT time refinement. The zero value charges cost 1 per cell-update.
type UniformWorkModel struct {
	// CellCost is the weight of a single cell update; 0 means 1.
	CellCost float64
}

// BoxWork implements WorkModel.
func (u UniformWorkModel) BoxWork(h *Hierarchy, level int, b Box) float64 {
	c := u.CellCost
	if c == 0 {
		c = 1
	}
	return c * float64(b.Volume()) * float64(h.refinementScale(level))
}

// FrontWorkModel charges extra cost inside a "front" region (e.g. a shock,
// where the local physics is stiffer), modeling heterogeneous per-zone load.
// Regions are expressed in level-0 coordinates and apply to all levels.
type FrontWorkModel struct {
	Base UniformWorkModel
	// Fronts lists (region, extra multiplier) pairs; a cell inside a front
	// region costs Multiplier times the base cost.
	Fronts []Front
}

// Front is a level-0 region with a cost multiplier.
type Front struct {
	Region     Box
	Multiplier float64
}

// BoxWork implements WorkModel. The work of the box is the base work plus
// the surcharge for the portion overlapping each front.
func (f FrontWorkModel) BoxWork(h *Hierarchy, level int, b Box) float64 {
	w := f.Base.BoxWork(h, level, b)
	base := f.Base.CellCost
	if base == 0 {
		base = 1
	}
	scale := h.refinementScale(level)
	for _, fr := range f.Fronts {
		region := fr.Region
		for i := 0; i < level; i++ {
			region = region.Refine(h.Ratio)
		}
		if inter, ok := b.Intersect(region); ok && fr.Multiplier > 1 {
			w += base * (fr.Multiplier - 1) * float64(inter.Volume()) * float64(scale)
		}
	}
	return w
}

// HierarchyWork sums the model's weight over every box of the hierarchy.
func HierarchyWork(h *Hierarchy, m WorkModel) float64 {
	var w float64
	for l, boxes := range h.Levels {
		for _, b := range boxes {
			w += m.BoxWork(h, l, b)
		}
	}
	return w
}

package samr

import (
	"math"
	"testing"
)

func hierarchyWithLevel1(t testing.TB, boxes ...Box) *Hierarchy {
	t.Helper()
	h := mustHierarchy(t, MakeBox(64, 64, 64), 2)
	if err := h.SetLevel(1, boxes); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestClusterCount(t *testing.T) {
	// Two abutting boxes form one cluster; a distant third is separate.
	h := hierarchyWithLevel1(t,
		Box{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}},
		Box{Lo: Point{8, 0, 0}, Hi: Point{16, 8, 8}},
		Box{Lo: Point{100, 100, 100}, Hi: Point{108, 108, 108}},
	)
	if got := h.ClusterCount(1); got != 2 {
		t.Fatalf("cluster count = %d, want 2", got)
	}
	if got := h.ClusterCount(0); got != 1 {
		t.Fatalf("base cluster count = %d", got)
	}
	if got := h.ClusterCount(7); got != 0 {
		t.Fatalf("out-of-range cluster count = %d", got)
	}
}

func TestDispersion(t *testing.T) {
	solid := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{16, 16, 16}})
	if got := solid.Dispersion(1); got != 0 {
		t.Fatalf("solid dispersion = %g", got)
	}
	scattered := hierarchyWithLevel1(t,
		Box{Lo: Point{0, 0, 0}, Hi: Point{4, 4, 4}},
		Box{Lo: Point{124, 124, 124}, Hi: Point{128, 128, 128}},
	)
	if got := scattered.Dispersion(1); got < 0.99 {
		t.Fatalf("scattered dispersion = %g, want near 1", got)
	}
	if got := solid.Dispersion(0); got != 0 {
		t.Fatalf("level-0 dispersion = %g", got)
	}
}

func TestSurfaceToVolume(t *testing.T) {
	// A thin sheet has much higher surface/volume than a cube of equal volume.
	sheet := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{64, 64, 2}})
	cube := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{20, 20, 20}})
	if sheet.SurfaceToVolume(1) <= cube.SurfaceToVolume(1) {
		t.Fatalf("sheet s/v %.3f <= cube s/v %.3f",
			sheet.SurfaceToVolume(1), cube.SurfaceToVolume(1))
	}
	// Exact value for the sheet: 2*(64*64+64*2+2*64)/(64*64*2).
	want := float64(2*(64*64+64*2+2*64)) / float64(64*64*2)
	if got := sheet.SurfaceToVolume(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sheet s/v = %g, want %g", got, want)
	}
}

func TestChangeFraction(t *testing.T) {
	a := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{16, 16, 16}})
	same := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{16, 16, 16}})
	if got := ChangeFraction(a, same, 1); got != 0 {
		t.Fatalf("identical change = %g", got)
	}
	disjoint := hierarchyWithLevel1(t, Box{Lo: Point{32, 32, 32}, Hi: Point{48, 48, 48}})
	if got := ChangeFraction(a, disjoint, 1); got != 1 {
		t.Fatalf("disjoint change = %g", got)
	}
	// Half-overlap: A = [0,16), B = [8,24) along x.
	// |A\B| = 8*16*16, |B\A| = 8*16*16, union = 24*16*16 -> 16/24.
	half := hierarchyWithLevel1(t, Box{Lo: Point{8, 0, 0}, Hi: Point{24, 16, 16}})
	if got := ChangeFraction(a, half, 1); math.Abs(got-16.0/24.0) > 1e-12 {
		t.Fatalf("half change = %g, want %g", got, 16.0/24.0)
	}
	// Symmetry.
	if ChangeFraction(a, half, 1) != ChangeFraction(half, a, 1) {
		t.Fatal("change fraction not symmetric")
	}
	// Missing level on one side counts as full change.
	bare := mustHierarchy(t, MakeBox(64, 64, 64), 2)
	if got := ChangeFraction(a, bare, 1); got != 1 {
		t.Fatalf("missing level change = %g", got)
	}
	if got := ChangeFraction(bare, bare, 1); got != 0 {
		t.Fatalf("both missing change = %g", got)
	}
}

func TestTraceAt(t *testing.T) {
	h := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}})
	tr := &Trace{Name: "x", RegridEvery: 4, Snapshots: []Snapshot{
		{Index: 0, CoarseStep: 0, H: h},
		{Index: 1, CoarseStep: 4, H: h},
	}}
	if s, ok := tr.At(1); !ok || s.CoarseStep != 4 {
		t.Fatal("At(1) wrong")
	}
	if _, ok := tr.At(2); ok {
		t.Fatal("At(2) should fail")
	}
	if _, ok := tr.At(-1); ok {
		t.Fatal("At(-1) should fail")
	}
}

func TestTraceStats(t *testing.T) {
	a := hierarchyWithLevel1(t, Box{Lo: Point{0, 0, 0}, Hi: Point{16, 16, 16}})
	b := hierarchyWithLevel1(t, Box{Lo: Point{8, 0, 0}, Hi: Point{24, 16, 16}})
	tr := &Trace{Name: "x", RegridEvery: 4, Snapshots: []Snapshot{
		{Index: 0, CoarseStep: 0, H: a},
		{Index: 1, CoarseStep: 4, H: b},
	}}
	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].Change != 0 {
		t.Fatalf("first snapshot change = %g", stats[0].Change)
	}
	if stats[1].Change <= 0 {
		t.Fatal("moved refinement shows no change")
	}
	if stats[0].Boxes != 2 || stats[0].Depth != 2 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[0].Cells != a.TotalCells() {
		t.Fatalf("cells = %d", stats[0].Cells)
	}
}

package samr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := MakeBox(128, 32, 32)
	if b.Volume() != 128*32*32 {
		t.Fatalf("volume = %d", b.Volume())
	}
	if b.Empty() {
		t.Fatal("non-empty box reported empty")
	}
	if got := b.Size(); got != (Point{128, 32, 32}) {
		t.Fatalf("size = %v", got)
	}
	if !b.Contains(Point{0, 0, 0}) || !b.Contains(Point{127, 31, 31}) {
		t.Fatal("corner containment failed")
	}
	if b.Contains(Point{128, 0, 0}) || b.Contains(Point{-1, 0, 0}) {
		t.Fatal("half-open bound violated")
	}
	if (Box{Lo: Point{5, 5, 5}, Hi: Point{5, 6, 6}}).Volume() != 0 {
		t.Fatal("degenerate box has nonzero volume")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := Box{Lo: Point{0, 0, 0}, Hi: Point{10, 10, 10}}
	b := Box{Lo: Point{5, 5, 5}, Hi: Point{15, 15, 15}}
	got, ok := a.Intersect(b)
	if !ok || got != (Box{Lo: Point{5, 5, 5}, Hi: Point{10, 10, 10}}) {
		t.Fatalf("intersect = %v ok=%v", got, ok)
	}
	c := Box{Lo: Point{10, 0, 0}, Hi: Point{20, 10, 10}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("abutting boxes should not intersect")
	}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Fatal("Overlaps mismatch")
	}
}

func TestBoxRefineCoarsenRoundTrip(t *testing.T) {
	f := func(lo0, lo1, lo2 uint8, d0, d1, d2 uint8) bool {
		b := Box{
			Lo: Point{int(lo0), int(lo1), int(lo2)},
			Hi: Point{int(lo0) + int(d0%32) + 1, int(lo1) + int(d1%32) + 1, int(lo2) + int(d2%32) + 1},
		}
		r := b.Refine(2).Coarsen(2)
		return r == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxCoarsenCovers(t *testing.T) {
	// Coarsen must round outward: the refined coarse box covers the original.
	f := func(lo0, lo1, lo2 int8, d0, d1, d2 uint8) bool {
		b := Box{
			Lo: Point{int(lo0), int(lo1), int(lo2)},
			Hi: Point{int(lo0) + int(d0%32) + 1, int(lo1) + int(d1%32) + 1, int(lo2) + int(d2%32) + 1},
		}
		c := b.Coarsen(2).Refine(2)
		return c.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxSplit(t *testing.T) {
	b := MakeBox(10, 4, 4)
	lo, hi := b.Split(0, 6)
	if lo.Volume()+hi.Volume() != b.Volume() {
		t.Fatal("split lost volume")
	}
	if lo.Overlaps(hi) {
		t.Fatal("split halves overlap")
	}
	if lo.Hi[0] != 6 || hi.Lo[0] != 6 {
		t.Fatalf("split planes wrong: %v %v", lo, hi)
	}
}

func TestBoxSplitPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("split at boundary did not panic")
		}
	}()
	MakeBox(4, 4, 4).Split(0, 0)
}

func TestSharedFaceArea(t *testing.T) {
	a := MakeBox(4, 4, 4)
	cases := []struct {
		name string
		b    Box
		want int64
	}{
		{"abut-x", Box{Lo: Point{4, 0, 0}, Hi: Point{8, 4, 4}}, 16},
		{"abut-x-partial", Box{Lo: Point{4, 2, 2}, Hi: Point{8, 6, 6}}, 4},
		{"separated", Box{Lo: Point{5, 0, 0}, Hi: Point{8, 4, 4}}, 0},
		{"edge-contact", Box{Lo: Point{4, 4, 0}, Hi: Point{8, 8, 4}}, 0},
		{"corner-contact", Box{Lo: Point{4, 4, 4}, Hi: Point{8, 8, 8}}, 0},
		{"overlap", Box{Lo: Point{2, 0, 0}, Hi: Point{6, 4, 4}}, 0},
		{"abut-y", Box{Lo: Point{0, 4, 0}, Hi: Point{4, 6, 4}}, 16},
		{"abut-z", Box{Lo: Point{1, 1, 4}, Hi: Point{3, 3, 6}}, 4},
	}
	for _, c := range cases {
		if got := a.SharedFaceArea(c.b); got != c.want {
			t.Errorf("%s: SharedFaceArea = %d, want %d", c.name, got, c.want)
		}
		if got := c.b.SharedFaceArea(a); got != c.want {
			t.Errorf("%s (sym): SharedFaceArea = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestSurfaceArea(t *testing.T) {
	if got := MakeBox(2, 3, 4).SurfaceArea(); got != 2*(2*3+3*4+4*2) {
		t.Fatalf("surface area = %d", got)
	}
	if got := (Box{}).SurfaceArea(); got != 0 {
		t.Fatalf("empty surface area = %d", got)
	}
}

func TestBoxSubtract(t *testing.T) {
	a := MakeBox(10, 10, 10)
	hole := Box{Lo: Point{3, 3, 3}, Hi: Point{7, 7, 7}}
	parts := a.Subtract(hole)
	var vol int64
	for i, p := range parts {
		vol += p.Volume()
		if p.Overlaps(hole) {
			t.Fatalf("part %v overlaps subtracted box", p)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Fatalf("parts %v and %v overlap", p, parts[j])
			}
		}
	}
	if vol != a.Volume()-hole.Volume() {
		t.Fatalf("subtract volume = %d, want %d", vol, a.Volume()-hole.Volume())
	}
	// Disjoint subtrahend leaves the box unchanged.
	if parts := a.Subtract(Box{Lo: Point{20, 20, 20}, Hi: Point{30, 30, 30}}); len(parts) != 1 || parts[0] != a {
		t.Fatal("subtracting disjoint box changed operand")
	}
	// Subtracting a cover leaves nothing.
	if parts := hole.Subtract(a); len(parts) != 0 {
		t.Fatalf("subtracting cover left %v", parts)
	}
}

func TestBoxSubtractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBox := func() Box {
		lo := Point{rng.Intn(16), rng.Intn(16), rng.Intn(16)}
		return Box{Lo: lo, Hi: Point{lo[0] + 1 + rng.Intn(10), lo[1] + 1 + rng.Intn(10), lo[2] + 1 + rng.Intn(10)}}
	}
	for i := 0; i < 500; i++ {
		a, b := randBox(), randBox()
		parts := a.Subtract(b)
		var vol int64
		for _, p := range parts {
			vol += p.Volume()
			if p.Overlaps(b) {
				t.Fatalf("iter %d: part %v overlaps %v", i, p, b)
			}
			if !a.ContainsBox(p) {
				t.Fatalf("iter %d: part %v escapes %v", i, p, a)
			}
		}
		inter, _ := a.Intersect(b)
		if vol != a.Volume()-inter.Volume() {
			t.Fatalf("iter %d: volume %d != %d", i, vol, a.Volume()-inter.Volume())
		}
	}
}

func TestBoxBound(t *testing.T) {
	a := MakeBox(2, 2, 2)
	b := Box{Lo: Point{5, 5, 5}, Hi: Point{6, 6, 6}}
	got := a.Bound(b)
	if got != (Box{Lo: Point{0, 0, 0}, Hi: Point{6, 6, 6}}) {
		t.Fatalf("bound = %v", got)
	}
	if got := (Box{}).Bound(a); got != a {
		t.Fatalf("bound with empty = %v", got)
	}
	if got := a.Bound(Box{}); got != a {
		t.Fatalf("bound with empty rhs = %v", got)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {8, 2, 4, 4}, {-8, 2, -4, -4}, {0, 2, 0, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestBoxGrowShift(t *testing.T) {
	b := Box{Lo: Point{2, 2, 2}, Hi: Point{4, 4, 4}}
	if got := b.Grow(1); got != (Box{Lo: Point{1, 1, 1}, Hi: Point{5, 5, 5}}) {
		t.Fatalf("grow = %v", got)
	}
	if got := b.Shift(Point{1, -1, 0}); got != (Box{Lo: Point{3, 1, 2}, Hi: Point{5, 3, 4}}) {
		t.Fatalf("shift = %v", got)
	}
}

package samr

import (
	"sort"
	"strings"
)

// BoxSet is a region of index space represented as a set of pairwise
// disjoint boxes — the region calculus at the heart of every SAMR
// framework (ghost-region computation, proper-nesting checks, coarse-fine
// interface extraction all reduce to set algebra on box unions).
//
// The zero value is the empty set. All operations preserve the disjointness
// invariant and return new sets; BoxSet values are immutable once built.
type BoxSet struct {
	boxes []Box
}

// NewBoxSet builds a set from arbitrary (possibly overlapping) boxes.
func NewBoxSet(boxes ...Box) BoxSet {
	var s BoxSet
	for _, b := range boxes {
		s = s.Union(BoxSet{boxes: normalizeOne(b)})
	}
	return s
}

func normalizeOne(b Box) []Box {
	if b.Empty() {
		return nil
	}
	return []Box{b}
}

// Boxes returns the set's disjoint boxes, sorted for determinism.
func (s BoxSet) Boxes() []Box {
	out := append([]Box(nil), s.boxes...)
	sort.Slice(out, func(i, j int) bool { return lessBox(out[i], out[j]) })
	return out
}

func lessBox(a, b Box) bool {
	for d := 0; d < 3; d++ {
		if a.Lo[d] != b.Lo[d] {
			return a.Lo[d] < b.Lo[d]
		}
	}
	for d := 0; d < 3; d++ {
		if a.Hi[d] != b.Hi[d] {
			return a.Hi[d] < b.Hi[d]
		}
	}
	return false
}

// Empty reports whether the set covers no cells.
func (s BoxSet) Empty() bool { return len(s.boxes) == 0 }

// Volume returns the number of covered cells.
func (s BoxSet) Volume() int64 {
	var v int64
	for _, b := range s.boxes {
		v += b.Volume()
	}
	return v
}

// Contains reports whether the point lies in the set.
func (s BoxSet) Contains(p Point) bool {
	for _, b := range s.boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// Union returns the set covering cells of either operand.
func (s BoxSet) Union(o BoxSet) BoxSet {
	// Add o's boxes minus what s already covers: keeps disjointness.
	out := append([]Box(nil), s.boxes...)
	for _, b := range o.boxes {
		pieces := []Box{b}
		for _, existing := range s.boxes {
			var next []Box
			for _, p := range pieces {
				next = append(next, p.Subtract(existing)...)
			}
			pieces = next
			if len(pieces) == 0 {
				break
			}
		}
		out = append(out, pieces...)
	}
	return BoxSet{boxes: out}
}

// Intersect returns the set covering cells of both operands.
func (s BoxSet) Intersect(o BoxSet) BoxSet {
	var out []Box
	for _, a := range s.boxes {
		for _, b := range o.boxes {
			if inter, ok := a.Intersect(b); ok {
				out = append(out, inter)
			}
		}
	}
	return BoxSet{boxes: out}
}

// Subtract returns the set covering cells of s not in o.
func (s BoxSet) Subtract(o BoxSet) BoxSet {
	var out []Box
	for _, a := range s.boxes {
		pieces := []Box{a}
		for _, b := range o.boxes {
			var next []Box
			for _, p := range pieces {
				next = append(next, p.Subtract(b)...)
			}
			pieces = next
			if len(pieces) == 0 {
				break
			}
		}
		out = append(out, pieces...)
	}
	return BoxSet{boxes: out}
}

// Equal reports whether both sets cover exactly the same cells.
func (s BoxSet) Equal(o BoxSet) bool {
	return s.Subtract(o).Empty() && o.Subtract(s).Empty()
}

// Covers reports whether every cell of o lies in s.
func (s BoxSet) Covers(o BoxSet) bool { return o.Subtract(s).Empty() }

// Grow expands the region by n cells in every direction (the ghost region
// of width n is Grow(n).Subtract(s)).
func (s BoxSet) Grow(n int) BoxSet {
	grown := BoxSet{}
	for _, b := range s.boxes {
		grown = grown.Union(NewBoxSet(b.Grow(n)))
	}
	return grown
}

// Refine scales the region into an index space r times finer.
func (s BoxSet) Refine(r int) BoxSet {
	out := make([]Box, len(s.boxes))
	for i, b := range s.boxes {
		out[i] = b.Refine(r)
	}
	return BoxSet{boxes: out} // refinement preserves disjointness
}

// Coarsen maps the region into an index space r times coarser, rounding
// outward.
func (s BoxSet) Coarsen(r int) BoxSet {
	// Coarsening can create overlaps; rebuild through Union.
	out := BoxSet{}
	for _, b := range s.boxes {
		out = out.Union(NewBoxSet(b.Coarsen(r)))
	}
	return out
}

// Bound returns the smallest single box containing the set (the empty box
// for the empty set).
func (s BoxSet) Bound() Box {
	var bb Box
	for _, b := range s.boxes {
		bb = bb.Bound(b)
	}
	return bb
}

// String renders the set's sorted boxes.
func (s BoxSet) String() string {
	parts := make([]string, 0, len(s.boxes))
	for _, b := range s.Boxes() {
		parts = append(parts, b.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// LevelRegion returns the region covered by one hierarchy level as a set.
func (h *Hierarchy) LevelRegion(l int) BoxSet {
	if l < 0 || l >= h.Depth() {
		return BoxSet{}
	}
	// Level boxes are pairwise disjoint by the hierarchy invariant.
	return BoxSet{boxes: append([]Box(nil), h.Levels[l]...)}
}

// GhostRegion returns the width-n ghost region of level l: the cells
// adjacent to the level's boxes (within width n) but not part of them,
// clipped to the level domain. This is the data exchanged with neighbors
// and coarser levels each sub-step.
func (h *Hierarchy) GhostRegion(l, n int) BoxSet {
	region := h.LevelRegion(l)
	if region.Empty() || n < 1 {
		return BoxSet{}
	}
	domain := NewBoxSet(h.LevelDomain(l))
	return region.Grow(n).Subtract(region).Intersect(domain)
}

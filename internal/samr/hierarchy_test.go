package samr

import (
	"math"
	"testing"
)

func mustHierarchy(t testing.TB, domain Box, ratio int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(domain, ratio)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(Box{}, 2); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewHierarchy(MakeBox(4, 4, 4), 1); err == nil {
		t.Error("ratio 1 accepted")
	}
	h := mustHierarchy(t, MakeBox(128, 32, 32), 2)
	if h.Depth() != 1 {
		t.Fatalf("depth = %d", h.Depth())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetLevelAndValidate(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	// Level 1 lives in 32^3 coordinates.
	if err := h.SetLevel(1, []Box{{Lo: Point{4, 4, 4}, Hi: Point{12, 12, 12}}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Level 2 nested in refined level 1: level-1 box refined is [8..24)^3.
	if err := h.SetLevel(2, []Box{{Lo: Point{10, 10, 10}, Hi: Point{20, 20, 20}}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Fatalf("depth = %d", h.Depth())
	}
	// Cannot skip levels.
	h2 := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h2.SetLevel(2, []Box{MakeBox(2, 2, 2)}); err == nil {
		t.Error("skipping level accepted")
	}
	// Cannot replace base.
	if err := h2.SetLevel(0, nil); err == nil {
		t.Error("replacing base level accepted")
	}
	// Empty level truncates.
	if err := h.SetLevel(2, nil); err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 2 {
		t.Fatalf("truncate failed: depth = %d", h.Depth())
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	// Box escaping the level domain.
	h.Levels = append(h.Levels, []Box{{Lo: Point{30, 30, 30}, Hi: Point{40, 40, 40}}})
	if err := h.Validate(); err == nil {
		t.Error("escaping box accepted")
	}
	// Overlapping boxes at a level.
	h.Levels[1] = []Box{
		{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}},
		{Lo: Point{4, 4, 4}, Hi: Point{12, 12, 12}},
	}
	if err := h.Validate(); err == nil {
		t.Error("overlapping boxes accepted")
	}
	// Unnested level-2 box.
	h.Levels[1] = []Box{{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}}}
	h.Levels = append(h.Levels, []Box{{Lo: Point{20, 20, 20}, Hi: Point{30, 30, 30}}})
	if err := h.Validate(); err == nil {
		t.Error("unnested box accepted")
	}
	// Empty box at a level.
	h.Levels = h.Levels[:2]
	h.Levels[1] = []Box{{Lo: Point{4, 4, 4}, Hi: Point{4, 8, 8}}}
	if err := h.Validate(); err == nil {
		t.Error("empty box accepted")
	}
}

func TestWorkAndEfficiency(t *testing.T) {
	// RM3D-like configuration: 128x32x32 base, refinement where needed.
	h := mustHierarchy(t, MakeBox(128, 32, 32), 2)
	if err := h.SetLevel(1, []Box{{Lo: Point{100, 20, 20}, Hi: Point{140, 44, 44}}}); err != nil {
		t.Fatal(err)
	}
	if err := h.SetLevel(2, []Box{{Lo: Point{210, 50, 50}, Hi: Point{250, 80, 80}}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	base := float64(128 * 32 * 32)
	l1 := float64(40*24*24) * 2
	l2 := float64(40*30*30) * 4
	if got := h.TotalWork(); math.Abs(got-(base+l1+l2)) > 1e-9 {
		t.Fatalf("TotalWork = %g, want %g", got, base+l1+l2)
	}
	uniform := base * 64 * 4 // 4^3 more cells, 4x sub-stepping
	if got := h.UniformWork(); math.Abs(got-uniform) > 1e-6 {
		t.Fatalf("UniformWork = %g, want %g", got, uniform)
	}
	eff := h.AMREfficiency()
	if eff < 95 || eff > 100 {
		t.Fatalf("AMR efficiency = %.2f%%, want 95-100%%", eff)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h.SetLevel(1, []Box{{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}}}); err != nil {
		t.Fatal(err)
	}
	c := h.Clone()
	c.Levels[1][0] = Box{Lo: Point{2, 2, 2}, Hi: Point{10, 10, 10}}
	if h.Levels[1][0] == c.Levels[1][0] {
		t.Fatal("clone shares box storage")
	}
}

func TestLevelDomainAndScale(t *testing.T) {
	h := mustHierarchy(t, MakeBox(128, 32, 32), 2)
	if got := h.LevelDomain(0); got != h.Domain {
		t.Fatalf("level 0 domain = %v", got)
	}
	if got := h.LevelDomain(2); got != MakeBox(512, 128, 128) {
		t.Fatalf("level 2 domain = %v", got)
	}
	if h.refinementScale(3) != 8 {
		t.Fatalf("scale(3) = %d", h.refinementScale(3))
	}
}

func TestWorkModels(t *testing.T) {
	h := mustHierarchy(t, MakeBox(32, 32, 32), 2)
	if err := h.SetLevel(1, []Box{{Lo: Point{0, 0, 0}, Hi: Point{16, 16, 16}}}); err != nil {
		t.Fatal(err)
	}
	var uniform UniformWorkModel
	baseWork := uniform.BoxWork(h, 0, h.Domain)
	if baseWork != float64(32*32*32) {
		t.Fatalf("base work = %g", baseWork)
	}
	l1Work := uniform.BoxWork(h, 1, h.Levels[1][0])
	if l1Work != float64(16*16*16)*2 {
		t.Fatalf("level-1 work = %g (MIT scaling missing?)", l1Work)
	}

	front := FrontWorkModel{
		Base:   UniformWorkModel{CellCost: 1},
		Fronts: []Front{{Region: MakeBox(8, 32, 32), Multiplier: 3}},
	}
	// Base box work plus 2x surcharge in the front slab.
	got := front.BoxWork(h, 0, h.Domain)
	want := float64(32*32*32) + 2*float64(8*32*32)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("front work = %g, want %g", got, want)
	}
	// At level 1 the front region is refined too.
	gotL1 := front.BoxWork(h, 1, h.Levels[1][0])
	wantL1 := float64(16*16*16)*2 + 2*float64(16*16*16)*2
	if math.Abs(gotL1-wantL1) > 1e-9 {
		t.Fatalf("front level-1 work = %g, want %g", gotL1, wantL1)
	}

	total := HierarchyWork(h, uniform)
	if math.Abs(total-h.TotalWork()) > 1e-9 {
		t.Fatalf("HierarchyWork %g != TotalWork %g", total, h.TotalWork())
	}
}

func TestRefinedVolumeFraction(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h.SetLevel(1, []Box{MakeBox(16, 16, 16)}); err != nil {
		t.Fatal(err)
	}
	// Level-1 domain is 32^3 = 32768; refined region 16^3 = 4096.
	if got := h.RefinedVolumeFraction(1); math.Abs(got-4096.0/32768.0) > 1e-12 {
		t.Fatalf("fraction = %g", got)
	}
	if h.RefinedVolumeFraction(0) != 0 || h.RefinedVolumeFraction(5) != 0 {
		t.Fatal("out-of-range level fraction not zero")
	}
}

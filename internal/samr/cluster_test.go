package samr

import (
	"math/rand"
	"testing"
)

func TestFlagsSetGetCount(t *testing.T) {
	f := NewFlags(MakeBox(8, 8, 8))
	if f.Count() != 0 {
		t.Fatal("new flags not empty")
	}
	f.Set(Point{1, 2, 3})
	f.Set(Point{1, 2, 3}) // idempotent
	f.Set(Point{7, 7, 7})
	if f.Count() != 2 {
		t.Fatalf("count = %d", f.Count())
	}
	if !f.Get(Point{1, 2, 3}) || !f.Get(Point{7, 7, 7}) || f.Get(Point{0, 0, 0}) {
		t.Fatal("get mismatch")
	}
	// Out-of-bounds set is ignored, get is false.
	f.Set(Point{8, 0, 0})
	if f.Count() != 2 || f.Get(Point{8, 0, 0}) {
		t.Fatal("out-of-bounds handling wrong")
	}
}

func TestFlagsSetBoxAndCountIn(t *testing.T) {
	f := NewFlags(MakeBox(16, 16, 16))
	b := Box{Lo: Point{2, 2, 2}, Hi: Point{6, 6, 6}}
	f.SetBox(b)
	if got := int64(f.Count()); got != b.Volume() {
		t.Fatalf("count = %d, want %d", got, b.Volume())
	}
	if got := f.CountIn(Box{Lo: Point{0, 0, 0}, Hi: Point{4, 4, 4}}); got != 8 {
		t.Fatalf("countIn = %d, want 8", got)
	}
	// SetBox clips to bounds.
	f2 := NewFlags(MakeBox(4, 4, 4))
	f2.SetBox(MakeBox(100, 100, 100))
	if int64(f2.Count()) != 64 {
		t.Fatalf("clipped SetBox count = %d", f2.Count())
	}
}

func TestFlagsBoundingBox(t *testing.T) {
	f := NewFlags(MakeBox(16, 16, 16))
	if _, ok := f.BoundingBox(f.Bounds()); ok {
		t.Fatal("empty flags produced a bounding box")
	}
	f.Set(Point{3, 4, 5})
	f.Set(Point{10, 4, 8})
	bb, ok := f.BoundingBox(f.Bounds())
	if !ok {
		t.Fatal("no bounding box")
	}
	want := Box{Lo: Point{3, 4, 5}, Hi: Point{11, 5, 9}}
	if bb != want {
		t.Fatalf("bounding box = %v, want %v", bb, want)
	}
}

func TestFlagsSignature(t *testing.T) {
	f := NewFlags(MakeBox(8, 4, 4))
	f.SetBox(Box{Lo: Point{0, 0, 0}, Hi: Point{2, 4, 4}})
	f.SetBox(Box{Lo: Point{6, 0, 0}, Hi: Point{8, 4, 4}})
	sig := f.Signature(f.Bounds(), 0)
	want := []int64{16, 16, 0, 0, 0, 0, 16, 16}
	for i := range want {
		if sig[i] != want[i] {
			t.Fatalf("sig[%d] = %d, want %d (full %v)", i, sig[i], want[i], sig)
		}
	}
}

// clusterInvariants checks the guarantees Cluster must provide.
func clusterInvariants(t *testing.T, f *Flags, boxes []Box) {
	t.Helper()
	// Every flagged cell covered.
	covered := 0
	for _, b := range boxes {
		covered += f.CountIn(b)
		if f.CountIn(b) == 0 {
			t.Fatalf("box %v contains no flagged cells", b)
		}
		if !f.Bounds().ContainsBox(b) {
			t.Fatalf("box %v escapes bounds %v", b, f.Bounds())
		}
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				t.Fatalf("boxes %v and %v overlap", boxes[i], boxes[j])
			}
		}
	}
	if covered != f.Count() {
		t.Fatalf("covered %d of %d flagged cells", covered, f.Count())
	}
}

func TestClusterSingleBlock(t *testing.T) {
	f := NewFlags(MakeBox(32, 32, 32))
	f.SetBox(Box{Lo: Point{4, 4, 4}, Hi: Point{12, 12, 12}})
	boxes := Cluster(f, DefaultClusterOptions())
	clusterInvariants(t, f, boxes)
	if len(boxes) != 1 {
		t.Fatalf("solid block produced %d boxes, want 1", len(boxes))
	}
}

func TestClusterTwoSeparatedBlocks(t *testing.T) {
	f := NewFlags(MakeBox(32, 8, 8))
	f.SetBox(Box{Lo: Point{0, 0, 0}, Hi: Point{4, 4, 4}})
	f.SetBox(Box{Lo: Point{20, 2, 2}, Hi: Point{26, 6, 6}})
	boxes := Cluster(f, DefaultClusterOptions())
	clusterInvariants(t, f, boxes)
	if len(boxes) != 2 {
		t.Fatalf("two blocks produced %d boxes: %v", len(boxes), boxes)
	}
}

func TestClusterEfficiency(t *testing.T) {
	// Flag an L-shape; with a high efficiency target the single bounding box
	// (fill 75 %) must split, with a low target it must not.
	f := NewFlags(MakeBox(8, 8, 2))
	f.SetBox(Box{Lo: Point{0, 0, 0}, Hi: Point{8, 4, 2}})
	f.SetBox(Box{Lo: Point{0, 4, 0}, Hi: Point{4, 8, 2}})
	tight := Cluster(f, ClusterOptions{Efficiency: 0.95, MinWidth: 2})
	clusterInvariants(t, f, tight)
	if len(tight) < 2 {
		t.Fatalf("efficiency 0.95 kept %d boxes", len(tight))
	}
	loose := Cluster(f, ClusterOptions{Efficiency: 0.5, MinWidth: 2})
	clusterInvariants(t, f, loose)
	if len(loose) != 1 {
		t.Fatalf("efficiency 0.5 produced %d boxes", len(loose))
	}
}

func TestClusterMaxBoxVolume(t *testing.T) {
	f := NewFlags(MakeBox(16, 4, 4))
	f.SetBox(f.Bounds()) // one solid 256-cell region
	boxes := Cluster(f, ClusterOptions{Efficiency: 0.8, MinWidth: 2, MaxBoxVolume: 64})
	clusterInvariants(t, f, boxes)
	for _, b := range boxes {
		if b.Volume() > 64 {
			t.Fatalf("box %v exceeds MaxBoxVolume", b)
		}
	}
	if len(boxes) < 4 {
		t.Fatalf("expected at least 4 boxes, got %d", len(boxes))
	}
}

func TestClusterEmpty(t *testing.T) {
	f := NewFlags(MakeBox(8, 8, 8))
	if boxes := Cluster(f, DefaultClusterOptions()); boxes != nil {
		t.Fatalf("empty flags produced boxes %v", boxes)
	}
}

func TestClusterRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		f := NewFlags(MakeBox(24, 24, 12))
		nBlobs := 1 + rng.Intn(5)
		for i := 0; i < nBlobs; i++ {
			lo := Point{rng.Intn(20), rng.Intn(20), rng.Intn(8)}
			f.SetBox(Box{Lo: lo, Hi: Point{lo[0] + 1 + rng.Intn(4), lo[1] + 1 + rng.Intn(4), lo[2] + 1 + rng.Intn(4)}})
		}
		boxes := Cluster(f, DefaultClusterOptions())
		clusterInvariants(t, f, boxes)
		// Efficiency guarantee: every produced box either meets the fill
		// target or is too small to split.
		for _, b := range boxes {
			fill := float64(f.CountIn(b)) / float64(b.Volume())
			splittable := b.Dx(0) >= 4 || b.Dx(1) >= 4 || b.Dx(2) >= 4
			if fill < 0.8 && splittable {
				t.Fatalf("iter %d: box %v fill %.2f below target yet splittable", iter, b, fill)
			}
		}
	}
}

func BenchmarkClusterScatter(b *testing.B) {
	f := NewFlags(MakeBox(64, 32, 32))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		lo := Point{rng.Intn(56), rng.Intn(24), rng.Intn(24)}
		f.SetBox(Box{Lo: lo, Hi: Point{lo[0] + 4, lo[1] + 4, lo[2] + 4}})
	}
	opt := DefaultClusterOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cluster(f, opt)
	}
}

func TestFlagsBuffer(t *testing.T) {
	f := NewFlags(MakeBox(16, 16, 16))
	f.Set(Point{8, 8, 8})
	buffered := f.Buffer(2)
	// A single cell dilated by 2 becomes a 5x5x5 block.
	if buffered.Count() != 125 {
		t.Fatalf("buffered count = %d, want 125", buffered.Count())
	}
	if !buffered.Get(Point{6, 6, 6}) || !buffered.Get(Point{10, 10, 10}) {
		t.Fatal("dilation corners missing")
	}
	if buffered.Get(Point{5, 8, 8}) {
		t.Fatal("dilation overreached")
	}
	// Buffering clips at the bounds.
	edge := NewFlags(MakeBox(4, 4, 4))
	edge.Set(Point{0, 0, 0})
	if got := edge.Buffer(2).Count(); got != 27 {
		t.Fatalf("clipped buffer count = %d, want 27", got)
	}
	// n <= 0 copies the bitmap.
	copied := f.Buffer(0)
	if copied.Count() != f.Count() || !copied.Get(Point{8, 8, 8}) {
		t.Fatal("zero buffer is not a copy")
	}
	// The original is untouched.
	if f.Count() != 1 {
		t.Fatal("Buffer mutated the receiver")
	}
}

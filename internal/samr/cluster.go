package samr

// ClusterOptions tunes the Berger–Rigoutsos point-clustering algorithm.
type ClusterOptions struct {
	// Efficiency is the minimum fraction of flagged cells a produced box
	// must contain before recursion stops (0 < Efficiency <= 1).
	Efficiency float64
	// MinWidth is the smallest box extent the clusterer will create; boxes
	// are not split below this width.
	MinWidth int
	// MaxBoxVolume, when positive, forces boxes larger than this many cells
	// to split even if they meet the efficiency target. Bounding box volume
	// is what the paper's policy rules constrain ("use refined grid
	// components no larger than Q").
	MaxBoxVolume int64
}

// DefaultClusterOptions matches common SAMR practice: 80 % fill efficiency
// with a minimum box width of 2 cells.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{Efficiency: 0.8, MinWidth: 2}
}

// Cluster covers every flagged cell with a set of boxes using the
// Berger–Rigoutsos signature algorithm (Berger & Rigoutsos, IEEE Trans.
// SMC 21(5), 1991). The returned boxes are disjoint, lie within
// f.Bounds(), and each contains at least one flagged cell.
func Cluster(f *Flags, opt ClusterOptions) []Box {
	if opt.Efficiency <= 0 || opt.Efficiency > 1 {
		opt.Efficiency = 0.8
	}
	if opt.MinWidth < 1 {
		opt.MinWidth = 1
	}
	bb, ok := f.BoundingBox(f.Bounds())
	if !ok {
		return nil
	}
	var out []Box
	clusterRecurse(f, bb, opt, &out)
	return out
}

func clusterRecurse(f *Flags, region Box, opt ClusterOptions, out *[]Box) {
	bb, ok := f.BoundingBox(region)
	if !ok {
		return
	}
	flagged := f.CountIn(bb)
	fill := float64(flagged) / float64(bb.Volume())
	splittable := bb.Dx(0) >= 2*opt.MinWidth || bb.Dx(1) >= 2*opt.MinWidth || bb.Dx(2) >= 2*opt.MinWidth
	tooBig := opt.MaxBoxVolume > 0 && bb.Volume() > opt.MaxBoxVolume
	if (fill >= opt.Efficiency && !tooBig) || !splittable {
		*out = append(*out, bb)
		return
	}
	d, at := chooseCut(f, bb, opt.MinWidth)
	if d < 0 {
		*out = append(*out, bb)
		return
	}
	lo, hi := bb.Split(d, at)
	clusterRecurse(f, lo, opt, out)
	clusterRecurse(f, hi, opt, out)
}

// chooseCut picks a split plane for region following Berger–Rigoutsos:
// prefer a hole (zero-signature plane), then the strongest inflection point
// of the signature Laplacian, then the midpoint of the longest axis.
// Returns axis -1 when no legal cut exists.
func chooseCut(f *Flags, region Box, minWidth int) (axis, at int) {
	type cut struct {
		axis, at int
		score    int64
	}
	var bestHole, bestInflect *cut
	longest, longAt := -1, 0
	for d := 0; d < 3; d++ {
		n := region.Dx(d)
		if n < 2*minWidth {
			continue
		}
		if longest < 0 || n > region.Dx(longest) {
			longest = d
			longAt = region.Lo[d] + n/2
		}
		sig := f.Signature(region, d)
		// Holes: zero planes strictly inside the legal cut band. Prefer the
		// hole closest to the center.
		center := n / 2
		for i := minWidth; i <= n-minWidth; i++ {
			// A cut at plane i separates [0,i) and [i,n). Check the plane
			// just below the cut for a hole.
			if sig[i-1] == 0 || (i < n && sig[i] == 0) {
				dist := int64(absInt(i - center))
				if bestHole == nil || dist < bestHole.score {
					bestHole = &cut{axis: d, at: region.Lo[d] + i, score: dist}
				}
			}
		}
		// Inflections: maximize |Δ²sig| sign change magnitude.
		for i := minWidth; i <= n-minWidth; i++ {
			if i-1 < 1 || i+1 >= n {
				continue
			}
			lapA := sig[i-2] - 2*sig[i-1] + sig[i]
			lapB := sig[i-1] - 2*sig[i] + sig[i+1]
			if (lapA < 0 && lapB > 0) || (lapA > 0 && lapB < 0) {
				mag := absInt64(lapA - lapB)
				if bestInflect == nil || mag > bestInflect.score {
					bestInflect = &cut{axis: d, at: region.Lo[d] + i, score: mag}
				}
			}
		}
	}
	switch {
	case bestHole != nil:
		return bestHole.axis, bestHole.at
	case bestInflect != nil:
		return bestInflect.axis, bestInflect.at
	case longest >= 0:
		return longest, longAt
	default:
		return -1, 0
	}
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func absInt64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

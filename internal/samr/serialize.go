package samr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file persists adaptation traces. The paper's workflow captures the
// trace in a single-processor run and analyzes it offline (§4.5); saving
// and reloading traces makes that workflow reproducible without re-running
// the application.
//
// The format is line-delimited JSON: a header object followed by one
// object per snapshot, so traces stream without holding the whole file in
// memory.

// traceHeader is the first line of a serialized trace.
type traceHeader struct {
	Format      string `json:"format"`
	Name        string `json:"name"`
	RegridEvery int    `json:"regridEvery"`
	Snapshots   int    `json:"snapshots"`
}

// snapshotRecord is one serialized snapshot.
type snapshotRecord struct {
	Index      int     `json:"index"`
	CoarseStep int     `json:"coarseStep"`
	Time       float64 `json:"time"`
	Domain     Box     `json:"domain"`
	Ratio      int     `json:"ratio"`
	Levels     [][]Box `json:"levels"`
}

// traceFormat identifies the stream layout.
const traceFormat = "pragma-trace-v1"

// WriteTrace serializes the trace to w.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := traceHeader{
		Format:      traceFormat,
		Name:        tr.Name,
		RegridEvery: tr.RegridEvery,
		Snapshots:   len(tr.Snapshots),
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("samr: write trace header: %w", err)
	}
	for _, s := range tr.Snapshots {
		rec := snapshotRecord{
			Index:      s.Index,
			CoarseStep: s.CoarseStep,
			Time:       s.Time,
			Domain:     s.H.Domain,
			Ratio:      s.H.Ratio,
			Levels:     s.H.Levels,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("samr: write snapshot %d: %w", s.Index, err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace and validates every
// hierarchy.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header traceHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("samr: read trace header: %w", err)
	}
	if header.Format != traceFormat {
		return nil, fmt.Errorf("samr: unsupported trace format %q", header.Format)
	}
	tr := &Trace{
		Name:        header.Name,
		RegridEvery: header.RegridEvery,
		Snapshots:   make([]Snapshot, 0, header.Snapshots),
	}
	for i := 0; i < header.Snapshots; i++ {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("samr: read snapshot %d: %w", i, err)
		}
		h, err := NewHierarchy(rec.Domain, rec.Ratio)
		if err != nil {
			return nil, fmt.Errorf("samr: snapshot %d: %w", i, err)
		}
		for l := 1; l < len(rec.Levels); l++ {
			if err := h.SetLevel(l, rec.Levels[l]); err != nil {
				return nil, fmt.Errorf("samr: snapshot %d level %d: %w", i, l, err)
			}
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("samr: snapshot %d invalid: %w", i, err)
		}
		tr.Snapshots = append(tr.Snapshots, Snapshot{
			Index:      rec.Index,
			CoarseStep: rec.CoarseStep,
			Time:       rec.Time,
			H:          h,
		})
	}
	return tr, nil
}

package samr

import (
	"bytes"
	"testing"
)

// FuzzTraceDecode feeds arbitrary bytes to the trace reader: it must never
// panic, and any trace it accepts must survive a write/read round trip
// unchanged in shape.
func FuzzTraceDecode(f *testing.F) {
	h, err := NewHierarchy(Box{Hi: Point{16, 8, 8}}, 2)
	if err != nil {
		f.Fatal(err)
	}
	tr := &Trace{Name: "fuzz-seed", RegridEvery: 4}
	tr.Snapshots = append(tr.Snapshots, Snapshot{Index: 0, CoarseStep: 0, Time: 0.5, H: h})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"format":"pragma-trace-v1","name":"x","regridEvery":1,"snapshots":0}`))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if again.Name != got.Name || again.RegridEvery != got.RegridEvery ||
			len(again.Snapshots) != len(got.Snapshots) {
			t.Fatalf("round trip changed shape: %+v vs %+v", again, got)
		}
	})
}

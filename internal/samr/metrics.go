package samr

// This file computes the structural metrics of a hierarchy that Pragma's
// application characterization (the octant approach) is built on: how
// scattered the refinement is, how communication-heavy the patch geometry
// is, and how fast the refined region moves between regrid steps.

// ClusterCount returns the number of connected components among the boxes of
// level l, where boxes sharing a face are connected. Scattered adaptation
// shows up as many components; localized adaptation as few.
func (h *Hierarchy) ClusterCount(l int) int {
	if l < 0 || l >= h.Depth() {
		return 0
	}
	boxes := h.Levels[l]
	n := len(boxes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if boxes[i].SharedFaceArea(boxes[j]) > 0 || boxes[i].Overlaps(boxes[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	count := 0
	for i := 0; i < n; i++ {
		if find(i) == i {
			count++
		}
	}
	return count
}

// Dispersion measures how scattered the refinement on level l is: one minus
// the fraction of the refined-region bounding box actually covered by
// refined cells. 0 means a single solid block (fully localized); values
// toward 1 mean the same refined volume is spread across a much larger
// extent (scattered).
func (h *Hierarchy) Dispersion(l int) float64 {
	if l < 1 || l >= h.Depth() {
		return 0
	}
	boxes := h.Levels[l]
	if len(boxes) == 0 {
		return 0
	}
	var bb Box
	var vol int64
	for _, b := range boxes {
		bb = bb.Bound(b)
		vol += b.Volume()
	}
	bv := bb.Volume()
	if bv == 0 {
		return 0
	}
	return 1 - float64(vol)/float64(bv)
}

// SurfaceToVolume returns the aggregate boundary-face count of the boxes of
// level l divided by their aggregate cell count. Thin, sheet-like refined
// regions (high values) imply communication-dominated execution: ghost-cell
// exchange scales with surface while computation scales with volume.
func (h *Hierarchy) SurfaceToVolume(l int) float64 {
	if l < 0 || l >= h.Depth() {
		return 0
	}
	var surf, vol int64
	for _, b := range h.Levels[l] {
		surf += b.SurfaceArea()
		vol += b.Volume()
	}
	if vol == 0 {
		return 0
	}
	return float64(surf) / float64(vol)
}

// ChangeFraction measures activity dynamics between two hierarchies: the
// symmetric difference of their level-l refined regions divided by the
// union. 0 means the refinement did not move; 1 means it moved entirely.
func ChangeFraction(a, b *Hierarchy, l int) float64 {
	var aBoxes, bBoxes []Box
	if l < a.Depth() {
		aBoxes = a.Levels[l]
	}
	if l < b.Depth() {
		bBoxes = b.Levels[l]
	}
	aVol := boxesVolume(aBoxes)
	bVol := boxesVolume(bBoxes)
	if aVol == 0 && bVol == 0 {
		return 0
	}
	aOnly := differenceVolume(aBoxes, bBoxes)
	bOnly := differenceVolume(bBoxes, aBoxes)
	union := aVol + bOnly
	if union == 0 {
		return 0
	}
	return float64(aOnly+bOnly) / float64(union)
}

func boxesVolume(boxes []Box) int64 {
	var v int64
	for _, b := range boxes {
		v += b.Volume()
	}
	return v
}

// differenceVolume returns |union(a) \ union(b)| assuming the boxes within a
// are pairwise disjoint (a hierarchy level invariant).
func differenceVolume(a, b []Box) int64 {
	var vol int64
	for _, box := range a {
		remaining := []Box{box}
		for _, cut := range b {
			var next []Box
			for _, r := range remaining {
				next = append(next, r.Subtract(cut)...)
			}
			remaining = next
			if len(remaining) == 0 {
				break
			}
		}
		vol += boxesVolume(remaining)
	}
	return vol
}

// Snapshot is one entry of an adaptation trace: the grid hierarchy captured
// at a regrid step, exactly what the paper's single-processor trace run
// records ("snap-shots of the SAMR grid hierarchy at each regrid step").
type Snapshot struct {
	// Index is the regrid (snapshot) number, starting at 0.
	Index int
	// CoarseStep is the coarse-level time-step at which the regrid happened.
	CoarseStep int
	// Time is the simulated physical time.
	Time float64
	// H is the hierarchy after regridding.
	H *Hierarchy
}

// Trace is an application adaptation trace: the sequence of hierarchy
// snapshots produced by a run.
type Trace struct {
	// Name identifies the application (e.g. "RM3D").
	Name string
	// RegridEvery is the number of coarse steps between snapshots.
	RegridEvery int
	// Snapshots holds one entry per regrid step.
	Snapshots []Snapshot
}

// At returns the snapshot with the given regrid index, or false when the
// trace does not contain it.
func (t *Trace) At(index int) (Snapshot, bool) {
	if index < 0 || index >= len(t.Snapshots) {
		return Snapshot{}, false
	}
	return t.Snapshots[index], true
}

// SnapshotStats summarizes one trace snapshot for reporting.
type SnapshotStats struct {
	Index      int
	CoarseStep int
	Depth      int
	Boxes      int
	Cells      int64
	Efficiency float64 // AMR efficiency, percent
	Change     float64 // level-1 change fraction vs the previous snapshot
}

// Stats summarizes every snapshot of the trace.
func (t *Trace) Stats() []SnapshotStats {
	out := make([]SnapshotStats, 0, len(t.Snapshots))
	for i, s := range t.Snapshots {
		boxes := 0
		for _, lb := range s.H.Levels {
			boxes += len(lb)
		}
		st := SnapshotStats{
			Index:      s.Index,
			CoarseStep: s.CoarseStep,
			Depth:      s.H.Depth(),
			Boxes:      boxes,
			Cells:      s.H.TotalCells(),
			Efficiency: s.H.AMREfficiency(),
		}
		if i > 0 {
			st.Change = ChangeFraction(t.Snapshots[i-1].H, s.H, 1)
		}
		out = append(out, st)
	}
	return out
}

package samr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSet(rng *rand.Rand, n int) BoxSet {
	boxes := make([]Box, 0, n)
	for i := 0; i < n; i++ {
		lo := Point{rng.Intn(12), rng.Intn(12), rng.Intn(12)}
		boxes = append(boxes, Box{Lo: lo, Hi: Point{
			lo[0] + 1 + rng.Intn(6), lo[1] + 1 + rng.Intn(6), lo[2] + 1 + rng.Intn(6)}})
	}
	return NewBoxSet(boxes...)
}

// volumeByPoints counts covered cells by brute force over a bounding box.
func volumeByPoints(s BoxSet) int64 {
	bb := s.Bound()
	var v int64
	for z := bb.Lo[2]; z < bb.Hi[2]; z++ {
		for y := bb.Lo[1]; y < bb.Hi[1]; y++ {
			for x := bb.Lo[0]; x < bb.Hi[0]; x++ {
				if s.Contains(Point{x, y, z}) {
					v++
				}
			}
		}
	}
	return v
}

func TestBoxSetDisjointnessInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		s := randSet(rng, 1+rng.Intn(5))
		boxes := s.Boxes()
		for i := range boxes {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Overlaps(boxes[j]) {
					t.Fatalf("iter %d: boxes %v and %v overlap", iter, boxes[i], boxes[j])
				}
			}
		}
		// Volume via the set equals volume via point membership.
		if s.Volume() != volumeByPoints(s) {
			t.Fatalf("iter %d: volume %d != brute force %d", iter, s.Volume(), volumeByPoints(s))
		}
	}
}

func TestBoxSetAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSet(rng, 1+rng.Intn(4))
		b := randSet(rng, 1+rng.Intn(4))
		// Inclusion-exclusion: |A|+|B| = |A∪B| + |A∩B|.
		if a.Volume()+b.Volume() != a.Union(b).Volume()+a.Intersect(b).Volume() {
			return false
		}
		// A = (A\B) ∪ (A∩B), disjointly.
		if a.Subtract(b).Volume()+a.Intersect(b).Volume() != a.Volume() {
			return false
		}
		// Union is commutative as a point set.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		// Intersection is commutative as a point set.
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// Subtracting a superset empties the set.
		if !a.Subtract(a.Union(b)).Empty() {
			return false
		}
		// Covers is consistent with Subtract.
		if a.Union(b).Covers(a) != true {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxSetRefineCoarsen(t *testing.T) {
	s := NewBoxSet(MakeBox(4, 4, 4), Box{Lo: Point{8, 0, 0}, Hi: Point{10, 4, 4}})
	r := s.Refine(2)
	if r.Volume() != s.Volume()*8 {
		t.Fatalf("refine volume %d, want %d", r.Volume(), s.Volume()*8)
	}
	back := r.Coarsen(2)
	if !back.Equal(s) {
		t.Fatalf("coarsen(refine(s)) != s: %v vs %v", back, s)
	}
	// Coarsening rounds outward: result covers the original footprint.
	odd := NewBoxSet(Box{Lo: Point{1, 1, 1}, Hi: Point{3, 3, 3}})
	c := odd.Coarsen(2)
	if !c.Refine(2).Covers(odd) {
		t.Fatal("coarsen does not cover original")
	}
}

func TestBoxSetEmptyAndBound(t *testing.T) {
	var empty BoxSet
	if !empty.Empty() || empty.Volume() != 0 || empty.Contains(Point{0, 0, 0}) {
		t.Fatal("zero value not empty")
	}
	if !empty.Bound().Empty() {
		t.Fatal("empty bound not empty")
	}
	if got := NewBoxSet(Box{Lo: Point{2, 2, 2}, Hi: Point{2, 4, 4}}); !got.Empty() {
		t.Fatal("degenerate box produced cells")
	}
	s := NewBoxSet(MakeBox(2, 2, 2), Box{Lo: Point{5, 5, 5}, Hi: Point{6, 6, 6}})
	if s.Bound() != (Box{Lo: Point{0, 0, 0}, Hi: Point{6, 6, 6}}) {
		t.Fatalf("bound = %v", s.Bound())
	}
	if s.String() == "{}" {
		t.Fatal("string empty for non-empty set")
	}
}

func TestBoxSetOverlappingInput(t *testing.T) {
	// Two heavily overlapping boxes: union volume counts each cell once.
	a := MakeBox(6, 6, 6)
	b := Box{Lo: Point{3, 3, 3}, Hi: Point{9, 9, 9}}
	s := NewBoxSet(a, b)
	want := a.Volume() + b.Volume() - 27 // 3^3 overlap
	if s.Volume() != want {
		t.Fatalf("volume = %d, want %d", s.Volume(), want)
	}
}

func TestGhostRegion(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h.SetLevel(1, []Box{{Lo: Point{8, 8, 8}, Hi: Point{16, 16, 16}}}); err != nil {
		t.Fatal(err)
	}
	ghost := h.GhostRegion(1, 1)
	// A width-1 shell around an 8^3 box fully interior to the 32^3 level
	// domain: 10^3 - 8^3 = 488 cells.
	if ghost.Volume() != 488 {
		t.Fatalf("ghost volume = %d, want 488", ghost.Volume())
	}
	// Ghost cells never overlap the region itself.
	if !ghost.Intersect(h.LevelRegion(1)).Empty() {
		t.Fatal("ghost region overlaps its level")
	}
	// A box at the domain corner gets its ghost clipped.
	h2 := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h2.SetLevel(1, []Box{{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}}}); err != nil {
		t.Fatal(err)
	}
	corner := h2.GhostRegion(1, 1)
	// Clipped shell: 9^3 - 8^3 = 217.
	if corner.Volume() != 217 {
		t.Fatalf("corner ghost volume = %d, want 217", corner.Volume())
	}
	// Degenerate queries.
	if !h.GhostRegion(0, 0).Empty() {
		t.Fatal("zero-width ghost not empty")
	}
	if !h.GhostRegion(9, 1).Empty() {
		t.Fatal("out-of-range level ghost not empty")
	}
}

func TestLevelRegionMatchesHierarchy(t *testing.T) {
	h := mustHierarchy(t, MakeBox(16, 16, 16), 2)
	if err := h.SetLevel(1, []Box{
		{Lo: Point{0, 0, 0}, Hi: Point{8, 8, 8}},
		{Lo: Point{16, 16, 16}, Hi: Point{24, 24, 24}},
	}); err != nil {
		t.Fatal(err)
	}
	r := h.LevelRegion(1)
	if r.Volume() != h.CellsAtLevel(1) {
		t.Fatalf("region volume %d != level cells %d", r.Volume(), h.CellsAtLevel(1))
	}
	if !h.LevelRegion(-1).Empty() {
		t.Fatal("negative level region not empty")
	}
}

// Package samr implements the structured adaptive mesh refinement (SAMR)
// substrate that Pragma's application characterization and meta-partitioning
// operate on: an index-space box calculus, grid hierarchies with factor-r
// space-time refinement, error-flag bitmaps, Berger–Rigoutsos point
// clustering, and the workload and communication models used to cost a
// distributed SAMR timestep.
//
// The package deliberately contains no flow physics. Pragma observes an SAMR
// application through its grid hierarchy — where refinement lives, how fast
// it changes, and what computation and communication it implies — and that is
// exactly the state this package represents.
package samr

import "fmt"

// Point is a position in a 3-D integer index space.
type Point [3]int

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p[0] + q[0], p[1] + q[1], p[2] + q[2]} }

// Scale returns p*s componentwise.
func (p Point) Scale(s int) Point { return Point{p[0] * s, p[1] * s, p[2] * s} }

// Box is a half-open axis-aligned region [Lo, Hi) of the index space.
// A Box with any Hi[d] <= Lo[d] is empty.
type Box struct {
	Lo, Hi Point
}

// MakeBox builds a box from extents: [0,nx) x [0,ny) x [0,nz).
func MakeBox(nx, ny, nz int) Box {
	return Box{Lo: Point{0, 0, 0}, Hi: Point{nx, ny, nz}}
}

// Dx returns the extent of the box along axis d.
func (b Box) Dx(d int) int { return b.Hi[d] - b.Lo[d] }

// Size returns the extents along all three axes.
func (b Box) Size() Point { return Point{b.Dx(0), b.Dx(1), b.Dx(2)} }

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool { return b.Dx(0) <= 0 || b.Dx(1) <= 0 || b.Dx(2) <= 0 }

// Volume returns the number of cells in the box (0 if empty).
func (b Box) Volume() int64 {
	if b.Empty() {
		return 0
	}
	return int64(b.Dx(0)) * int64(b.Dx(1)) * int64(b.Dx(2))
}

// Contains reports whether point p lies inside the box.
func (b Box) Contains(p Point) bool {
	for d := 0; d < 3; d++ {
		if p[d] < b.Lo[d] || p[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in anything.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	for d := 0; d < 3; d++ {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of b and o; ok is false when they are
// disjoint.
func (b Box) Intersect(o Box) (Box, bool) {
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = max(b.Lo[d], o.Lo[d])
		r.Hi[d] = min(b.Hi[d], o.Hi[d])
		if r.Hi[d] <= r.Lo[d] {
			return Box{}, false
		}
	}
	return r, true
}

// Overlaps reports whether b and o share at least one cell.
func (b Box) Overlaps(o Box) bool {
	_, ok := b.Intersect(o)
	return ok
}

// Bound returns the smallest box containing both b and o. Empty operands are
// ignored.
func (b Box) Bound(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	var r Box
	for d := 0; d < 3; d++ {
		r.Lo[d] = min(b.Lo[d], o.Lo[d])
		r.Hi[d] = max(b.Hi[d], o.Hi[d])
	}
	return r
}

// Refine scales the box into the index space r times finer.
func (b Box) Refine(r int) Box {
	return Box{Lo: b.Lo.Scale(r), Hi: b.Hi.Scale(r)}
}

// Coarsen maps the box into the index space r times coarser, rounding
// outward so that the result covers every cell the original touched.
func (b Box) Coarsen(r int) Box {
	var out Box
	for d := 0; d < 3; d++ {
		out.Lo[d] = floorDiv(b.Lo[d], r)
		out.Hi[d] = ceilDiv(b.Hi[d], r)
	}
	return out
}

// Grow expands the box by n cells in every direction (shrinks for n < 0).
func (b Box) Grow(n int) Box {
	var out Box
	for d := 0; d < 3; d++ {
		out.Lo[d] = b.Lo[d] - n
		out.Hi[d] = b.Hi[d] + n
	}
	return out
}

// Shift translates the box by p.
func (b Box) Shift(p Point) Box {
	return Box{Lo: b.Lo.Add(p), Hi: b.Hi.Add(p)}
}

// Split cuts the box along axis d at plane `at` (in index coordinates) and
// returns the lower and upper halves. The cut must be strictly inside the
// box.
func (b Box) Split(d, at int) (lo, hi Box) {
	if at <= b.Lo[d] || at >= b.Hi[d] {
		panic(fmt.Sprintf("samr: split plane %d outside box %v axis %d", at, b, d))
	}
	lo, hi = b, b
	lo.Hi[d] = at
	hi.Lo[d] = at
	return lo, hi
}

// SurfaceArea returns the number of cell faces on the box boundary.
func (b Box) SurfaceArea() int64 {
	if b.Empty() {
		return 0
	}
	dx, dy, dz := int64(b.Dx(0)), int64(b.Dx(1)), int64(b.Dx(2))
	return 2 * (dx*dy + dy*dz + dz*dx)
}

// SharedFaceArea returns the number of cell faces where b and o touch: the
// contact area when the boxes abut face-to-face without overlapping. Boxes
// that overlap, are diagonal neighbors, or are separated return 0.
func (b Box) SharedFaceArea(o Box) int64 {
	if b.Empty() || o.Empty() {
		return 0
	}
	touchAxis := -1
	for d := 0; d < 3; d++ {
		if b.Hi[d] == o.Lo[d] || o.Hi[d] == b.Lo[d] {
			if touchAxis >= 0 {
				return 0 // touch on two axes => edge/corner contact only
			}
			touchAxis = d
		} else if b.Hi[d] <= o.Lo[d] || o.Hi[d] <= b.Lo[d] {
			return 0 // separated along d
		}
	}
	if touchAxis < 0 {
		return 0 // overlapping volumes, not face contact
	}
	area := int64(1)
	for d := 0; d < 3; d++ {
		if d == touchAxis {
			continue
		}
		w := int64(min(b.Hi[d], o.Hi[d]) - max(b.Lo[d], o.Lo[d]))
		if w <= 0 {
			return 0
		}
		area *= w
	}
	return area
}

// String formats the box as [lo..hi).
func (b Box) String() string {
	return fmt.Sprintf("[%d,%d,%d..%d,%d,%d)", b.Lo[0], b.Lo[1], b.Lo[2], b.Hi[0], b.Hi[1], b.Hi[2])
}

// Subtract returns b minus o as a set of disjoint boxes. At most six boxes
// are produced (two slabs per axis).
func (b Box) Subtract(o Box) []Box {
	inter, ok := b.Intersect(o)
	if !ok {
		return []Box{b}
	}
	if inter == b {
		return nil
	}
	var out []Box
	rest := b
	for d := 0; d < 3; d++ {
		if rest.Lo[d] < inter.Lo[d] {
			lo, hi := rest.Split(d, inter.Lo[d])
			out = append(out, lo)
			rest = hi
		}
		if inter.Hi[d] < rest.Hi[d] {
			lo, hi := rest.Split(d, inter.Hi[d])
			out = append(out, hi)
			rest = lo
		}
	}
	return out
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int { return -floorDiv(-a, b) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package samr

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randBoxFrom(rng *rand.Rand) Box {
	lo := Point{rng.Intn(20) - 10, rng.Intn(20) - 10, rng.Intn(20) - 10}
	return Box{Lo: lo, Hi: Point{
		lo[0] + 1 + rng.Intn(12), lo[1] + 1 + rng.Intn(12), lo[2] + 1 + rng.Intn(12)}}
}

func TestBoxAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBoxFrom(rng), randBoxFrom(rng)
		// Intersection is commutative.
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 || (ok1 && i1 != i2) {
			return false
		}
		// The intersection lies inside both operands.
		if ok1 && (!a.ContainsBox(i1) || !b.ContainsBox(i1)) {
			return false
		}
		// Bound contains both operands and is commutative.
		u := a.Bound(b)
		if u != b.Bound(a) || !u.ContainsBox(a) || !u.ContainsBox(b) {
			return false
		}
		// SharedFaceArea is symmetric and zero for overlapping boxes.
		if a.SharedFaceArea(b) != b.SharedFaceArea(a) {
			return false
		}
		if ok1 && a.SharedFaceArea(b) != 0 {
			return false
		}
		// Refine/Coarsen round trip.
		if a.Refine(2).Coarsen(2) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceCorruptionResistance(t *testing.T) {
	// Build a valid serialized trace, then corrupt it in assorted ways;
	// ReadTrace must error, never panic, and never return an invalid
	// hierarchy.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()
	lines := strings.Split(strings.TrimRight(valid, "\n"), "\n")

	corruptions := []string{
		// Truncated mid-line.
		valid[:len(valid)/2],
		// Snapshot lines reordered after a bogus header count.
		strings.Replace(valid, `"snapshots":2`, `"snapshots":3`, 1),
		// Ratio zeroed.
		strings.Replace(valid, `"ratio":2`, `"ratio":0`, -1),
		// Level boxes inverted (Hi < Lo).
		strings.Replace(valid, `"Hi":[32,16,16]`, `"Hi":[0,0,0]`, 1),
		// Second line replaced with junk.
		lines[0] + "\n{not json}\n",
	}
	for i, c := range corruptions {
		got, err := ReadTrace(strings.NewReader(c))
		if err == nil {
			// Acceptable only if the result still validates fully.
			for _, s := range got.Snapshots {
				if vErr := s.H.Validate(); vErr != nil {
					t.Fatalf("corruption %d: accepted invalid hierarchy: %v", i, vErr)
				}
			}
		}
	}
}

func TestCoveredByThroughBoxSet(t *testing.T) {
	// The hierarchy nesting check agrees with BoxSet coverage semantics.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inner := randBoxFrom(rng)
		coverA := randBoxFrom(rng)
		coverB := randBoxFrom(rng)
		got := coveredBy(inner, []Box{coverA, coverB})
		want := NewBoxSet(coverA, coverB).Covers(NewBoxSet(inner))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package samr

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	h1 := mustHierarchy(t, MakeBox(32, 16, 16), 2)
	if err := h1.SetLevel(1, []Box{{Lo: Point{4, 4, 4}, Hi: Point{20, 12, 12}}}); err != nil {
		t.Fatal(err)
	}
	h2 := h1.Clone()
	if err := h2.SetLevel(2, []Box{{Lo: Point{10, 10, 10}, Hi: Point{30, 20, 20}}}); err != nil {
		t.Fatal(err)
	}
	return &Trace{
		Name:        "sample",
		RegridEvery: 4,
		Snapshots: []Snapshot{
			{Index: 0, CoarseStep: 0, Time: 0, H: h1},
			{Index: 1, CoarseStep: 4, Time: 0.004, H: h2},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.RegridEvery != tr.RegridEvery {
		t.Fatalf("metadata: %q/%d", got.Name, got.RegridEvery)
	}
	if len(got.Snapshots) != len(tr.Snapshots) {
		t.Fatalf("snapshots = %d", len(got.Snapshots))
	}
	for i := range tr.Snapshots {
		a, b := tr.Snapshots[i], got.Snapshots[i]
		if a.Index != b.Index || a.CoarseStep != b.CoarseStep || a.Time != b.Time {
			t.Fatalf("snapshot %d metadata differs", i)
		}
		if b.H.Depth() != a.H.Depth() {
			t.Fatalf("snapshot %d depth %d vs %d", i, b.H.Depth(), a.H.Depth())
		}
		for l := 0; l < a.H.Depth(); l++ {
			if ChangeFraction(a.H, b.H, l) != 0 {
				t.Fatalf("snapshot %d level %d differs after round trip", i, l)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"format":"nope"}`)); err == nil {
		t.Error("wrong format accepted")
	}
	// Header claims more snapshots than present.
	if _, err := ReadTrace(strings.NewReader(
		`{"format":"pragma-trace-v1","name":"x","regridEvery":4,"snapshots":2}` + "\n" +
			`{"index":0,"coarseStep":0,"time":0,"domain":{"Lo":[0,0,0],"Hi":[4,4,4]},"ratio":2,"levels":[[{"Lo":[0,0,0],"Hi":[4,4,4]}]]}`)); err == nil {
		t.Error("truncated stream accepted")
	}
	// Structurally invalid hierarchy (unnested level).
	bad := `{"format":"pragma-trace-v1","name":"x","regridEvery":4,"snapshots":1}` + "\n" +
		`{"index":0,"coarseStep":0,"time":0,"domain":{"Lo":[0,0,0],"Hi":[4,4,4]},"ratio":2,"levels":[[{"Lo":[0,0,0],"Hi":[4,4,4]}],[{"Lo":[100,100,100],"Hi":[120,120,120]}]]}`
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}

func TestWriteTraceStreams(t *testing.T) {
	// The header line alone identifies the format (streamability check).
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	first, err := buf.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "pragma-trace-v1") {
		t.Fatalf("header line = %q", first)
	}
}

package monitor

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
	"github.com/pragma-grid/pragma/internal/telemetry"
)

func TestForecastersOnConstantSeries(t *testing.T) {
	// Every forecaster must converge to a constant series.
	forecasters := []Forecaster{
		&LastValue{}, &RunningMean{}, NewSlidingMean(8), NewSlidingMedian(8),
		NewExpSmoothing(0.3), NewAR1(16), NewMeta(),
	}
	for _, f := range forecasters {
		for i := 0; i < 50; i++ {
			f.Update(7.5)
		}
		if got := f.Predict(); math.Abs(got-7.5) > 1e-9 {
			t.Errorf("%s predicts %g on constant series", f.Name(), got)
		}
	}
}

func TestForecastersEmptyPredictZero(t *testing.T) {
	forecasters := []Forecaster{
		&LastValue{}, &RunningMean{}, NewSlidingMean(8), NewSlidingMedian(8),
		NewExpSmoothing(0.3), NewAR1(16),
	}
	for _, f := range forecasters {
		if f.Predict() != 0 {
			t.Errorf("%s predicts %g before any data", f.Name(), f.Predict())
		}
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	f := NewSlidingMean(3)
	for _, v := range []float64{100, 1, 2, 3} {
		f.Update(v)
	}
	if got := f.Predict(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("sliding mean = %g, want 2 (window must evict)", got)
	}
	m := NewSlidingMedian(3)
	for _, v := range []float64{100, 1, 2, 9} {
		m.Update(v)
	}
	if got := m.Predict(); got != 2 {
		t.Fatalf("sliding median = %g, want 2", got)
	}
	// Even-length median averages the middle pair.
	m2 := NewSlidingMedian(4)
	for _, v := range []float64{1, 2, 3, 4} {
		m2.Update(v)
	}
	if got := m2.Predict(); got != 2.5 {
		t.Fatalf("even median = %g, want 2.5", got)
	}
}

func TestAR1TracksAutocorrelatedSeries(t *testing.T) {
	// AR(1) must beat the running mean on a strongly autocorrelated series.
	rng := rand.New(rand.NewSource(5))
	series := make([]float64, 400)
	x := 0.0
	for i := range series {
		x = 0.95*x + 0.1*rng.NormFloat64()
		series[i] = x
	}
	arErr := MSEOf(NewAR1(64), series)
	meanErr := MSEOf(&RunningMean{}, series)
	if arErr >= meanErr {
		t.Fatalf("AR1 MSE %g not below running-mean MSE %g", arErr, meanErr)
	}
}

func TestExpSmoothingGainValidation(t *testing.T) {
	f := NewExpSmoothing(-1)
	f.Update(10)
	f.Update(20)
	got := f.Predict()
	if got <= 10 || got >= 20 {
		t.Fatalf("defaulted smoothing predicts %g", got)
	}
}

func TestMetaPicksBestForecaster(t *testing.T) {
	// On a noisy constant series the mean-like forecasters beat last-value;
	// the meta forecaster must converge to one of them.
	rng := rand.New(rand.NewSource(11))
	m := NewMeta()
	for i := 0; i < 500; i++ {
		m.Update(5 + rng.NormFloat64())
	}
	best := m.Best().Name()
	if best == "last-value" {
		t.Fatalf("meta stuck on last-value for noisy stationary series (MSEs %v)", m.MSE())
	}
	if math.Abs(m.Predict()-5) > 0.5 {
		t.Fatalf("meta predicts %g, want ~5", m.Predict())
	}
	// And on a random walk, last-value should win.
	m2 := NewMeta()
	x := 0.0
	for i := 0; i < 500; i++ {
		x += rng.NormFloat64()
		m2.Update(x)
	}
	mses := m2.MSE()
	if mses["last-value"] > mses["running-mean"] {
		t.Fatalf("last-value MSE %g above running-mean %g on a random walk",
			mses["last-value"], mses["running-mean"])
	}
}

func TestMSEOfShortSeries(t *testing.T) {
	if MSEOf(&LastValue{}, nil) != 0 {
		t.Fatal("empty series MSE not 0")
	}
	if MSEOf(&LastValue{}, []float64{3}) != 0 {
		t.Fatal("single-point series MSE not 0")
	}
}

func TestClusterSensor(t *testing.T) {
	c := cluster.Homogeneous(4, 1000, 512, 100)
	c.Load = cluster.ConstantLoad{0, 0.5, 0.9, 0.99}
	s := ClusterSensor{Cluster: c}
	readings := s.Sample(1.0)
	if len(readings) != 4 {
		t.Fatalf("readings = %d", len(readings))
	}
	if readings[0].CPU != 1.0 {
		t.Fatalf("idle node CPU = %g", readings[0].CPU)
	}
	if math.Abs(readings[1].CPU-0.5) > 1e-9 {
		t.Fatalf("half-loaded node CPU = %g", readings[1].CPU)
	}
	if readings[3].CPU < 0.05-1e-12 {
		t.Fatalf("overloaded node CPU = %g, want clamped at 0.05", readings[3].CPU)
	}
	if readings[0].MemoryMB != 512 || readings[0].BandwidthMBps != 100 {
		t.Fatalf("static resources wrong: %+v", readings[0])
	}
}

func TestCapacities(t *testing.T) {
	readings := []Reading{
		{CPU: 1.0, MemoryMB: 512, BandwidthMBps: 100},
		{CPU: 0.5, MemoryMB: 512, BandwidthMBps: 100},
	}
	caps, err := Capacities(readings, Weights{CPU: 1, Memory: 0, Bandwidth: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Pure-CPU weighting: 1.0 vs 0.5 -> 2/3 vs 1/3.
	if math.Abs(caps[0]-2.0/3.0) > 1e-9 || math.Abs(caps[1]-1.0/3.0) > 1e-9 {
		t.Fatalf("caps = %v", caps)
	}
	// Capacities always sum to 1.
	caps, err = Capacities(readings, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := caps[0] + caps[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("capacities sum to %g", sum)
	}
	if caps[0] <= caps[1] {
		t.Fatal("idle node should have larger capacity")
	}
}

func TestCapacitiesValidation(t *testing.T) {
	if _, err := Capacities(nil, DefaultWeights()); err == nil {
		t.Error("empty readings accepted")
	}
	r := []Reading{{CPU: 1}}
	if _, err := Capacities(r, Weights{CPU: -1, Memory: 1, Bandwidth: 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Capacities(r, Weights{}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := Capacities([]Reading{{}}, DefaultWeights()); err == nil {
		t.Error("all-zero readings accepted")
	}
}

func TestPredictiveCapacities(t *testing.T) {
	// Node 0 idles, node 1 oscillates around 0.5: prediction should favor
	// node 0 roughly 2:1 regardless of the oscillation's phase at the end.
	var history [][]Reading
	for i := 0; i < 64; i++ {
		cpu1 := 0.5 + 0.3*math.Sin(float64(i))
		history = append(history, []Reading{
			{Time: float64(i), CPU: 1, MemoryMB: 512, BandwidthMBps: 100},
			{Time: float64(i), CPU: cpu1, MemoryMB: 512, BandwidthMBps: 100},
		})
	}
	caps, err := PredictiveCapacities(history, Weights{CPU: 1, Memory: 0, Bandwidth: 0})
	if err != nil {
		t.Fatal(err)
	}
	ratio := caps[0] / caps[1]
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("predictive capacity ratio = %g, want ~2", ratio)
	}
	if _, err := PredictiveCapacities(nil, DefaultWeights()); err == nil {
		t.Error("empty history accepted")
	}
	ragged := [][]Reading{{{CPU: 1}}, {{CPU: 1}, {CPU: 1}}}
	if _, err := PredictiveCapacities(ragged, DefaultWeights()); err == nil {
		t.Error("ragged history accepted")
	}
}

// TestPredictiveKeepsReactiveGauges guards the distinction between the two
// capacity gauge families: a PredictiveCapacities run must publish only
// pragma_monitor_predicted_capacity, leaving the reactive gauges at the
// values of the last direct Capacities call.
func TestPredictiveKeepsReactiveGauges(t *testing.T) {
	readings := []Reading{
		{CPU: 1.0, MemoryMB: 512, BandwidthMBps: 100},
		{CPU: 0.5, MemoryMB: 512, BandwidthMBps: 100},
	}
	reactive, err := Capacities(readings, Weights{CPU: 1, Memory: 0, Bandwidth: 0})
	if err != nil {
		t.Fatal(err)
	}
	// A history whose predicted CPUs differ from the instantaneous
	// readings, so predictive capacities diverge from reactive ones.
	var history [][]Reading
	for i := 0; i < 32; i++ {
		history = append(history, []Reading{
			{Time: float64(i), CPU: 0.2, MemoryMB: 512, BandwidthMBps: 100},
			{Time: float64(i), CPU: 0.9, MemoryMB: 512, BandwidthMBps: 100},
		})
	}
	predicted, err := PredictiveCapacities(history, Weights{CPU: 1, Memory: 0, Bandwidth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(predicted[0]-reactive[0]) < 1e-6 {
		t.Fatal("test needs diverging reactive/predictive capacities")
	}

	snap := telemetry.Default.Snapshot()
	check := func(name string, want []float64) {
		t.Helper()
		series := snap.Find(name)
		got := make(map[string]float64, len(series))
		for _, s := range series {
			got[s.Labels["node"]] = s.Value
		}
		for i, w := range want {
			if v, ok := got[strconv.Itoa(i)]; !ok || math.Abs(v-w) > 1e-9 {
				t.Errorf("%s{node=%d} = %g, want %g", name, i, v, w)
			}
		}
	}
	check("pragma_monitor_relative_capacity", reactive)
	check("pragma_monitor_predicted_capacity", predicted)
}

func TestMetaMSEMap(t *testing.T) {
	m := NewMeta()
	for i := 0; i < 10; i++ {
		m.Update(float64(i))
	}
	mse := m.MSE()
	if len(mse) != 8 {
		t.Fatalf("MSE map has %d entries", len(mse))
	}
	for name, v := range mse {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("%s MSE = %g", name, v)
		}
	}
}

func BenchmarkMetaUpdate(b *testing.B) {
	m := NewMeta()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Update(rng.Float64())
	}
}

func TestAR1ShortSeriesFallsBackToLastValue(t *testing.T) {
	f := NewAR1(16)
	f.Update(3)
	if got := f.Predict(); got != 3 {
		t.Fatalf("1-point AR1 = %g", got)
	}
	f.Update(5)
	if got := f.Predict(); got != 5 {
		t.Fatalf("2-point AR1 = %g, want last value", got)
	}
}

func TestAR1ConstantSeriesNoDivisionByZero(t *testing.T) {
	f := NewAR1(8)
	for i := 0; i < 20; i++ {
		f.Update(4.2)
	}
	if got := f.Predict(); math.Abs(got-4.2) > 1e-12 {
		t.Fatalf("constant AR1 = %g", got)
	}
}

func TestClusterSensorWithoutLoad(t *testing.T) {
	c := cluster.Homogeneous(3, 1000, 512, 100) // no load generator
	readings := ClusterSensor{Cluster: c}.Sample(0)
	for i, r := range readings {
		if r.CPU != 1 {
			t.Fatalf("node %d CPU = %g without load", i, r.CPU)
		}
	}
}

func TestMetaBestBeforeData(t *testing.T) {
	m := NewMeta()
	if m.Best() == nil {
		t.Fatal("Best nil before data")
	}
	if m.Predict() != 0 {
		t.Fatalf("empty meta predicts %g", m.Predict())
	}
}

package monitor

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/cluster"
)

// Reading is one resource observation for a node.
type Reading struct {
	// Time is the simulation time of the observation.
	Time float64
	// CPU is the available CPU fraction in [0, 1] (1 = fully idle).
	CPU float64
	// MemoryMB is the available memory.
	MemoryMB float64
	// BandwidthMBps is the available link bandwidth.
	BandwidthMBps float64
}

// Sensor samples the resource state of the nodes of an execution
// environment — the role NWS sensors play in the paper.
type Sensor interface {
	// Sample returns one reading per node at simulation time t.
	Sample(t float64) []Reading
}

// ClusterSensor observes a simulated cluster.
type ClusterSensor struct {
	Cluster *cluster.Cluster
}

// Sample implements Sensor: available CPU is what the background load
// leaves over; memory and bandwidth come from the machine description.
// A failed node reads as having no resources at all — the NWS sensor on a
// dead machine reports nothing, and the capacity calculator must starve it
// of work rather than inherit its last healthy reading.
func (s ClusterSensor) Sample(t float64) []Reading {
	out := make([]Reading, len(s.Cluster.Nodes))
	for i, n := range s.Cluster.Nodes {
		if !s.Cluster.Alive(i, t) {
			out[i] = Reading{Time: t}
			continue
		}
		cpu := 1.0
		if s.Cluster.Load != nil {
			cpu = 1 - s.Cluster.Load.Load(i, t)
			if cpu < 0.05 {
				cpu = 0.05
			}
		}
		out[i] = Reading{Time: t, CPU: cpu, MemoryMB: n.MemoryMB, BandwidthMBps: n.BandwidthMBps}
	}
	return out
}

// Weights are the application-dependent weights of the relative-capacity
// formula (§4.6): they "reflect its computational, memory, and
// communication requirements".
type Weights struct {
	CPU, Memory, Bandwidth float64
}

// DefaultWeights suits a computation-dominated SAMR kernel.
func DefaultWeights() Weights { return Weights{CPU: 0.75, Memory: 0.1, Bandwidth: 0.15} }

// Validate checks that the weights are usable.
func (w Weights) Validate() error {
	if w.CPU < 0 || w.Memory < 0 || w.Bandwidth < 0 {
		return fmt.Errorf("monitor: negative weight %+v", w)
	}
	if w.CPU+w.Memory+w.Bandwidth <= 0 {
		return fmt.Errorf("monitor: weights sum to zero")
	}
	return nil
}

// Capacities implements the capacity calculator of Fig. 4: the relative
// capacity of node k is the weighted sum of its normalized available CPU,
// memory and link bandwidth. The result sums to 1. It publishes the
// pragma_monitor_relative_capacity gauges; the predictive variant goes
// through capacities directly so the reactive gauges keep their meaning.
func Capacities(readings []Reading, w Weights) ([]float64, error) {
	caps, err := capacities(readings, w)
	if err != nil {
		return nil, err
	}
	setCapacityGauges(metricRelativeCapacity, caps)
	return caps, nil
}

// capacities is Capacities without the gauge publication.
func capacities(readings []Reading, w Weights) ([]float64, error) {
	if len(readings) == 0 {
		return nil, fmt.Errorf("monitor: no readings")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var maxCPU, maxMem, maxBW float64
	for _, r := range readings {
		maxCPU = maxF(maxCPU, r.CPU)
		maxMem = maxF(maxMem, r.MemoryMB)
		maxBW = maxF(maxBW, r.BandwidthMBps)
	}
	caps := make([]float64, len(readings))
	var total float64
	for i, r := range readings {
		c := w.CPU*norm(r.CPU, maxCPU) + w.Memory*norm(r.MemoryMB, maxMem) + w.Bandwidth*norm(r.BandwidthMBps, maxBW)
		caps[i] = c
		total += c
	}
	if total <= 0 {
		return nil, fmt.Errorf("monitor: all capacities zero")
	}
	for i := range caps {
		caps[i] /= total
	}
	return caps, nil
}

func norm(v, max float64) float64 {
	if max <= 0 {
		return 0
	}
	return v / max
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PredictiveCapacities runs one meta-forecaster per node over a history of
// CPU availability readings and returns capacities computed from the
// *predicted* next CPU availability — the proactive variant Pragma's
// predictive models enable. history[t][k] is node k's reading at sample t.
func PredictiveCapacities(history [][]Reading, w Weights) ([]float64, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("monitor: empty history")
	}
	n := len(history[0])
	metas := make([]*Meta, n)
	for k := range metas {
		metas[k] = NewMeta()
	}
	for _, sample := range history {
		if len(sample) != n {
			return nil, fmt.Errorf("monitor: ragged history (%d vs %d nodes)", len(sample), n)
		}
		for k, r := range sample {
			metas[k].Update(r.CPU)
		}
	}
	last := history[len(history)-1]
	predicted := make([]Reading, n)
	for k := range predicted {
		cpu := metas[k].Predict()
		if cpu < 0 {
			cpu = 0
		}
		if cpu > 1 {
			cpu = 1
		}
		predicted[k] = Reading{
			Time:          last[k].Time,
			CPU:           cpu,
			MemoryMB:      last[k].MemoryMB,
			BandwidthMBps: last[k].BandwidthMBps,
		}
	}
	caps, err := capacities(predicted, w)
	if err != nil {
		return nil, err
	}
	setCapacityGauges(metricPredictedCapacity, caps)
	return caps, nil
}

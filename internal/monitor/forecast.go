// Package monitor implements Pragma's system characterization and
// abstraction component (§3.1): resource sensors over the simulated
// cluster, an NWS-style forecaster suite for predictive analysis of system
// behavior, and the relative-capacity calculator that feeds the
// system-sensitive partitioner (Fig. 4).
//
// The forecasting design follows the Network Weather Service (Wolski,
// HPDC'97), which the paper builds on: several cheap predictors run in
// parallel over each measurement series, and a meta-forecaster answers with
// the predictor that has accumulated the lowest error so far.
package monitor

import (
	"fmt"
	"sort"
)

// Forecaster predicts the next value of a measurement series.
type Forecaster interface {
	// Name identifies the forecasting method.
	Name() string
	// Update feeds one observation.
	Update(v float64)
	// Predict returns the forecast for the next observation. Before any
	// observation it returns 0.
	Predict() float64
}

// LastValue predicts the most recent observation.
type LastValue struct{ last float64 }

// Name implements Forecaster.
func (*LastValue) Name() string { return "last-value" }

// Update implements Forecaster.
func (f *LastValue) Update(v float64) { f.last = v }

// Predict implements Forecaster.
func (f *LastValue) Predict() float64 { return f.last }

// RunningMean predicts the mean of all observations.
type RunningMean struct {
	sum float64
	n   int
}

// Name implements Forecaster.
func (*RunningMean) Name() string { return "running-mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(v float64) { f.sum += v; f.n++ }

// Predict implements Forecaster.
func (f *RunningMean) Predict() float64 {
	if f.n == 0 {
		return 0
	}
	return f.sum / float64(f.n)
}

// SlidingMean predicts the mean of the last W observations.
type SlidingMean struct {
	w   int
	buf []float64
}

// NewSlidingMean builds a sliding-mean forecaster with window w (>= 1).
func NewSlidingMean(w int) *SlidingMean {
	if w < 1 {
		w = 1
	}
	return &SlidingMean{w: w}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return fmt.Sprintf("sliding-mean-%d", f.w) }

// Update implements Forecaster.
func (f *SlidingMean) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Predict implements Forecaster.
func (f *SlidingMean) Predict() float64 {
	if len(f.buf) == 0 {
		return 0
	}
	var s float64
	for _, v := range f.buf {
		s += v
	}
	return s / float64(len(f.buf))
}

// SlidingMedian predicts the median of the last W observations.
type SlidingMedian struct {
	w   int
	buf []float64
}

// NewSlidingMedian builds a sliding-median forecaster with window w (>= 1).
func NewSlidingMedian(w int) *SlidingMedian {
	if w < 1 {
		w = 1
	}
	return &SlidingMedian{w: w}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return fmt.Sprintf("sliding-median-%d", f.w) }

// Update implements Forecaster.
func (f *SlidingMedian) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Predict implements Forecaster.
func (f *SlidingMedian) Predict() float64 {
	n := len(f.buf)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), f.buf...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// ExpSmoothing predicts with exponential smoothing s' = a*v + (1-a)*s.
type ExpSmoothing struct {
	alpha   float64
	state   float64
	started bool
}

// NewExpSmoothing builds an exponential-smoothing forecaster with gain
// alpha in (0, 1].
func NewExpSmoothing(alpha float64) *ExpSmoothing {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &ExpSmoothing{alpha: alpha}
}

// Name implements Forecaster.
func (f *ExpSmoothing) Name() string { return fmt.Sprintf("exp-smoothing-%.2f", f.alpha) }

// Update implements Forecaster.
func (f *ExpSmoothing) Update(v float64) {
	if !f.started {
		f.state = v
		f.started = true
		return
	}
	f.state = f.alpha*v + (1-f.alpha)*f.state
}

// Predict implements Forecaster.
func (f *ExpSmoothing) Predict() float64 { return f.state }

// AR1 fits a first-order autoregressive model x' = mean + rho*(x - mean)
// over a sliding window.
type AR1 struct {
	w   int
	buf []float64
}

// NewAR1 builds an AR(1) forecaster over a window of w observations.
func NewAR1(w int) *AR1 {
	if w < 4 {
		w = 4
	}
	return &AR1{w: w}
}

// Name implements Forecaster.
func (f *AR1) Name() string { return fmt.Sprintf("ar1-%d", f.w) }

// Update implements Forecaster.
func (f *AR1) Update(v float64) {
	f.buf = append(f.buf, v)
	if len(f.buf) > f.w {
		f.buf = f.buf[1:]
	}
}

// Predict implements Forecaster.
func (f *AR1) Predict() float64 {
	n := len(f.buf)
	if n == 0 {
		return 0
	}
	if n < 3 {
		return f.buf[n-1]
	}
	var mean float64
	for _, v := range f.buf {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 1; i < n; i++ {
		num += (f.buf[i] - mean) * (f.buf[i-1] - mean)
	}
	for _, v := range f.buf {
		den += (v - mean) * (v - mean)
	}
	rho := 0.0
	if den > 1e-12 {
		rho = num / den
	}
	if rho > 1 {
		rho = 1
	}
	if rho < -1 {
		rho = -1
	}
	return mean + rho*(f.buf[n-1]-mean)
}

// Meta is the NWS meta-forecaster: it runs a pool of forecasters and
// predicts with whichever has the lowest accumulated squared error.
type Meta struct {
	pool []Forecaster
	mse  []float64
	n    int
}

// NewMeta builds a meta-forecaster over the given pool; with an empty pool
// it uses the standard NWS-style set.
func NewMeta(pool ...Forecaster) *Meta {
	if len(pool) == 0 {
		pool = []Forecaster{
			&LastValue{},
			&RunningMean{},
			NewSlidingMean(8),
			NewSlidingMean(32),
			NewSlidingMedian(8),
			NewExpSmoothing(0.3),
			NewExpSmoothing(0.7),
			NewAR1(32),
		}
	}
	return &Meta{pool: pool, mse: make([]float64, len(pool))}
}

// Name implements Forecaster.
func (m *Meta) Name() string { return "nws-meta" }

// Update implements Forecaster: it first charges each pool member the error
// of its pending prediction, then feeds the observation to all members.
func (m *Meta) Update(v float64) {
	if m.n > 0 {
		for i, f := range m.pool {
			d := f.Predict() - v
			m.mse[i] += d * d
		}
	}
	for _, f := range m.pool {
		f.Update(v)
	}
	m.n++
}

// Predict implements Forecaster.
func (m *Meta) Predict() float64 { return m.pool[m.bestIndex()].Predict() }

// Best returns the currently winning pool member.
func (m *Meta) Best() Forecaster { return m.pool[m.bestIndex()] }

// MSE returns each pool member's mean squared prediction error so far,
// keyed by forecaster name.
func (m *Meta) MSE() map[string]float64 {
	out := make(map[string]float64, len(m.pool))
	div := float64(m.n - 1)
	if div < 1 {
		div = 1
	}
	for i, f := range m.pool {
		out[f.Name()] = m.mse[i] / div
	}
	return out
}

func (m *Meta) bestIndex() int {
	best := 0
	for i := 1; i < len(m.pool); i++ {
		if m.mse[i] < m.mse[best] {
			best = i
		}
	}
	return best
}

var _ Forecaster = (*Meta)(nil)

// MSEOf evaluates a forecaster over a series: it returns the mean squared
// one-step-ahead prediction error. The series must be non-empty for the
// result to be meaningful.
func MSEOf(f Forecaster, series []float64) float64 {
	if len(series) < 2 {
		return 0
	}
	var sum float64
	f.Update(series[0])
	for _, v := range series[1:] {
		d := f.Predict() - v
		sum += d * d
		f.Update(v)
	}
	return sum / float64(len(series)-1)
}

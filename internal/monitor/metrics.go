package monitor

import (
	"strconv"

	"github.com/pragma-grid/pragma/internal/telemetry"
)

// Per-node gauges keyed by node index. Cardinality is bounded by the
// cluster size, which the simulator fixes up front.
var (
	metricRelativeCapacity = telemetry.Default.GaugeVec(
		"pragma_monitor_relative_capacity",
		"Relative capacity of each node from the last Capacities call (sums to 1).",
		"node")
	metricPredictedCapacity = telemetry.Default.GaugeVec(
		"pragma_monitor_predicted_capacity",
		"Relative capacity of each node from the last PredictiveCapacities call.",
		"node")
)

func setCapacityGauges(vec *telemetry.GaugeVec, caps []float64) {
	for i, c := range caps {
		vec.With(strconv.Itoa(i)).Set(c)
	}
}

package monitor

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pragma-grid/pragma/internal/cluster"
)

// checkNormalized asserts the relative-capacity invariant of §4.6: the
// capacities form a distribution — every entry finite and non-negative,
// the whole summing to 1.
func checkNormalized(t *testing.T, caps []float64) {
	t.Helper()
	var sum float64
	for i, c := range caps {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("capacity[%d] = %v is not finite", i, c)
		}
		if c < 0 {
			t.Fatalf("capacity[%d] = %v is negative", i, c)
		}
		sum += c
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("capacities sum to %v, want 1", sum)
	}
}

// TestCapacitiesStayNormalizedUnderFailures is a seeded-random property
// test: whatever mix of healthy, loaded, failed and zero-CPU nodes the
// sensor reports, the capacity calculator either errors (every node gone)
// or returns a valid distribution with dead nodes at exactly zero.
func TestCapacitiesStayNormalizedUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		var machine *cluster.Cluster
		if rng.Intn(2) == 0 {
			machine = cluster.Homogeneous(n, 1e5, 512, 100)
		} else {
			machine = cluster.LinuxCluster(n, rng.Int63())
		}
		sampleAt := rng.Float64() * 100
		failed := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				failed[i] = true
				machine.Fail(i, sampleAt*rng.Float64())
			}
		}
		readings := ClusterSensor{Cluster: machine}.Sample(sampleAt)
		if len(readings) != n {
			t.Fatalf("trial %d: %d readings for %d nodes", trial, len(readings), n)
		}
		// Occasionally zero out a survivor's CPU entirely — a node so
		// loaded the sensor reads nothing available.
		for i := range readings {
			if !failed[i] && rng.Float64() < 0.1 {
				readings[i].CPU = 0
			}
		}
		caps, err := Capacities(readings, DefaultWeights())
		if len(failed) == n {
			if err == nil {
				t.Fatalf("trial %d: all %d nodes failed but Capacities succeeded", trial, n)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkNormalized(t, caps)
		for i := range caps {
			if failed[i] && caps[i] != 0 {
				t.Fatalf("trial %d: failed node %d has capacity %v, want 0", trial, i, caps[i])
			}
		}
	}
}

// TestCapacitiesCPUOnlyWeights stresses the corner where the weighting
// ignores memory and bandwidth: zero-CPU survivors then contribute nothing,
// and the distribution must still normalize over the remaining nodes.
func TestCapacitiesCPUOnlyWeights(t *testing.T) {
	readings := []Reading{
		{CPU: 0, MemoryMB: 512, BandwidthMBps: 100},
		{CPU: 0.5, MemoryMB: 512, BandwidthMBps: 100},
		{CPU: 1, MemoryMB: 512, BandwidthMBps: 100},
	}
	caps, err := Capacities(readings, Weights{CPU: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkNormalized(t, caps)
	if caps[0] != 0 {
		t.Errorf("zero-CPU node has capacity %v under CPU-only weights", caps[0])
	}
	// All nodes starved of CPU is an error, not a NaN distribution.
	for i := range readings {
		readings[i].CPU = 0
	}
	if _, err := Capacities(readings, Weights{CPU: 1}); err == nil {
		t.Error("all-zero CPU with CPU-only weights succeeded; want error")
	}
}

// TestSensorReportsDeadNodesAsZero pins the sensor side of the contract:
// a failed node's reading carries no resources.
func TestSensorReportsDeadNodesAsZero(t *testing.T) {
	machine := cluster.LinuxCluster(4, 11)
	machine.Fail(2, 5)
	readings := ClusterSensor{Cluster: machine}.Sample(10)
	r := readings[2]
	if r.CPU != 0 || r.MemoryMB != 0 || r.BandwidthMBps != 0 {
		t.Fatalf("dead node reading = %+v, want all-zero resources", r)
	}
	for i, r := range readings {
		if i == 2 {
			continue
		}
		if r.CPU <= 0 || r.MemoryMB <= 0 || r.BandwidthMBps <= 0 {
			t.Fatalf("live node %d reading = %+v, want positive resources", i, r)
		}
	}
}

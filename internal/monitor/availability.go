package monitor

// AvailabilityForecaster predicts a node's next available-CPU fraction
// from its recent utilization series. It is the fleet worker's half of the
// paper's Fig. 4 capacity pipeline: each worker runs one of these over its
// own pool utilization and advertises the *predicted* availability in its
// heartbeats, so the router places runs against where capacity is heading
// rather than where it momentarily was. The prediction comes from the
// NWS-style meta-forecaster, exactly like PredictiveCapacities.
type AvailabilityForecaster struct {
	meta *Meta
	n    int
}

// NewAvailabilityForecaster builds a forecaster over the standard NWS
// predictor pool.
func NewAvailabilityForecaster() *AvailabilityForecaster {
	return &AvailabilityForecaster{meta: NewMeta()}
}

// Observe feeds one utilization sample in [0, 1] (fraction of the node's
// capacity in use). Out-of-range samples are clamped.
func (f *AvailabilityForecaster) Observe(utilization float64) {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	f.meta.Update(utilization)
	f.n++
}

// Available returns the forecast available-CPU fraction in [0, 1]: one
// minus the predicted next utilization. Before any observation it returns
// 1 — a silent node has everything to give, and claiming otherwise would
// starve a freshly joined worker of its first placement.
func (f *AvailabilityForecaster) Available() float64 {
	if f.n == 0 {
		return 1
	}
	avail := 1 - f.meta.Predict()
	if avail < 0 {
		return 0
	}
	if avail > 1 {
		return 1
	}
	return avail
}

// Observations reports how many samples have been fed.
func (f *AvailabilityForecaster) Observations() int { return f.n }

package cluster

import (
	"math"
	"math/rand"
)

// LoadGenerator reports the background CPU load on a node as a function of
// time. Implementations must be deterministic: the same (node, t) always
// yields the same load, so simulated runs are reproducible and comparable
// across partitioning strategies.
type LoadGenerator interface {
	// Load returns the fraction of node i's CPU consumed by background
	// work at time t, in [0, 1).
	Load(i int, t float64) float64
}

// SyntheticLoad is the "synthetic load generator (for simulating
// heterogeneous loads on the cluster nodes)" of §4.6: each node gets a
// persistent base load plus slow sinusoidal variation, both drawn
// deterministically from a seed. Node heterogeneity grows with node index
// spread, so larger clusters see more diverse loads — the regime where the
// paper expects system-sensitive partitioning to pay off most.
type SyntheticLoad struct {
	base      []float64
	amplitude []float64
	period    []float64
	phase     []float64
}

// NewSyntheticLoad builds a load generator for n nodes.
func NewSyntheticLoad(n int, seed int64) *SyntheticLoad {
	rng := rand.New(rand.NewSource(seed))
	s := &SyntheticLoad{
		base:      make([]float64, n),
		amplitude: make([]float64, n),
		period:    make([]float64, n),
		phase:     make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// Loads are skewed: a few heavily loaded nodes, many light ones.
		u := rng.Float64()
		s.base[i] = 0.65 * u * u
		s.amplitude[i] = 0.04 + 0.08*rng.Float64()
		s.period[i] = 200 + 400*rng.Float64()
		s.phase[i] = 2 * math.Pi * rng.Float64()
	}
	return s
}

// Load implements LoadGenerator.
func (s *SyntheticLoad) Load(i int, t float64) float64 {
	if i < 0 || i >= len(s.base) {
		return 0
	}
	l := s.base[i] + s.amplitude[i]*math.Sin(2*math.Pi*t/s.period[i]+s.phase[i])
	if l < 0 {
		return 0
	}
	if l > 0.95 {
		return 0.95
	}
	return l
}

// ConstantLoad applies a fixed per-node load, useful in tests.
type ConstantLoad []float64

// Load implements LoadGenerator.
func (c ConstantLoad) Load(i int, t float64) float64 {
	if i < 0 || i >= len(c) {
		return 0
	}
	return c[i]
}

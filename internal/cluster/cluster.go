// Package cluster simulates the distributed execution environments of the
// paper's evaluation — the 64-processor NPACI IBM SP2 "Blue Horizon" run of
// Table 4 and the 32-node fast-Ethernet Linux cluster of Table 5 — so the
// partitioning experiments can be replayed without the original hardware.
//
// The simulator uses a BSP (bulk-synchronous) cost model: each coarse
// time-step costs every processor its computation (assigned work divided by
// effective speed under background load) plus its communication (ghost
// volume over bandwidth plus per-message latency), and the step completes
// when the slowest processor finishes. Repartitioning adds partitioning
// time and data-migration cost. Relative runtimes between partitioning
// strategies — who wins and by roughly what factor — are what the model
// preserves; absolute seconds are not calibrated to the original machines.
package cluster

import (
	"fmt"
	"math"
)

// Node is one processing element of the simulated machine.
type Node struct {
	// Speed is the node's computational rate in work units per second when
	// idle.
	Speed float64
	// MemoryMB is the node's physical memory, used by the capacity
	// calculator.
	MemoryMB float64
	// BandwidthMBps is the node's link bandwidth to the interconnect.
	BandwidthMBps float64
}

// Interconnect models the shared network.
type Interconnect struct {
	// LatencySec is the per-message latency.
	LatencySec float64
	// BisectionMBps bounds total migration traffic during redistribution.
	BisectionMBps float64
}

// Cluster is a simulated machine: nodes, an interconnect, and a background
// load generator.
type Cluster struct {
	Nodes []Node
	Net   Interconnect
	// Load reports the background CPU load of a node at a given time
	// (0 = idle, 0.9 = 90% of the CPU stolen). Nil means no load.
	Load LoadGenerator
	// Failures holds scheduled fail-stop events (see failure.go).
	Failures []Failure
}

// Homogeneous builds an n-node cluster of identical machines, the shape of
// the Blue Horizon partition used for Table 4.
func Homogeneous(n int, speed, memMB, bwMBps float64) *Cluster {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Speed: speed, MemoryMB: memMB, BandwidthMBps: bwMBps}
	}
	return &Cluster{
		Nodes: nodes,
		Net:   Interconnect{LatencySec: 25e-6, BisectionMBps: bwMBps * float64(n) / 4},
	}
}

// SP2 builds the Table 4 machine: an n-processor partition modeled on the
// NPACI IBM SP2 "Blue Horizon". The latency is the effective per-neighbor
// synchronization cost of one ghost exchange, including MPI software
// overhead and packing (see EXPERIMENTS.md for the calibration).
func SP2(n int) *Cluster {
	c := Homogeneous(n, 1e5, 1024, 120)
	c.Net.LatencySec = 500e-6
	return c
}

// LinuxCluster builds the Table 5 machine: n workstation nodes on 100 Mbit
// fast Ethernet with a synthetic background load.
func LinuxCluster(n int, seed int64) *Cluster {
	c := Homogeneous(n, 2e5, 512, 12.5)
	c.Net.LatencySec = 120e-6
	c.Net.BisectionMBps = 12.5 * 4 // shared switch backplane
	c.Load = NewSyntheticLoad(n, seed)
	return c
}

// NProcs returns the node count.
func (c *Cluster) NProcs() int { return len(c.Nodes) }

// Validate checks the machine description.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	for i, n := range c.Nodes {
		if n.Speed <= 0 {
			return fmt.Errorf("cluster: node %d speed %g <= 0", i, n.Speed)
		}
		if n.BandwidthMBps <= 0 {
			return fmt.Errorf("cluster: node %d bandwidth %g <= 0", i, n.BandwidthMBps)
		}
	}
	if c.Net.LatencySec < 0 || c.Net.BisectionMBps <= 0 {
		return fmt.Errorf("cluster: bad interconnect %+v", c.Net)
	}
	return nil
}

// EffectiveSpeed returns node i's computation rate at time t after the
// background load takes its share.
func (c *Cluster) EffectiveSpeed(i int, t float64) float64 {
	if !c.Alive(i, t) {
		return 0
	}
	s := c.Nodes[i].Speed
	if c.Load != nil {
		l := c.Load.Load(i, t)
		if l < 0 {
			l = 0
		}
		if l > 0.95 {
			l = 0.95
		}
		s *= 1 - l
	}
	return s
}

// StepCost is the cost breakdown of one coarse time-step.
type StepCost struct {
	// Compute is the slowest processor's computation time.
	Compute float64
	// Comm is the slowest processor's communication time.
	Comm float64
	// Total is the BSP step time max_p(compute_p + comm_p).
	Total float64
}

// CostModel translates grid work and communication into seconds.
type CostModel struct {
	// SecondsPerWork converts one unit of computational weight into seconds
	// on a unit-speed processor (node speeds divide it out).
	SecondsPerWork float64
	// BytesPerFace is the ghost-exchange payload per cell face.
	BytesPerFace float64
	// BytesPerCell is the migration payload per grid cell.
	BytesPerCell float64
}

// DefaultCostModel matches a double-precision, ~10-variable SAMR kernel:
// 5 solution components of 8 bytes per face, 80 bytes of state per cell.
func DefaultCostModel() CostModel {
	return CostModel{SecondsPerWork: 1, BytesPerFace: 40, BytesPerCell: 80}
}

// Step computes the BSP cost of one coarse step at time t for a placement
// described by per-processor work, communication volume (faces) and message
// count.
func (c *Cluster) Step(work, commVolume, commMessages []float64, t float64, cost CostModel) StepCost {
	var sc StepCost
	for p := range c.Nodes {
		comp := 0.0
		if p < len(work) && work[p] > 0 {
			speed := c.EffectiveSpeed(p, t)
			if speed <= 0 {
				// Work assigned to a dead node never completes; surface an
				// effectively infinite step so the failure is impossible
				// to miss in results.
				comp = math.Inf(1)
			} else {
				comp = work[p] * cost.SecondsPerWork / speed
			}
		}
		comm := 0.0
		if p < len(commVolume) {
			bytes := commVolume[p] * cost.BytesPerFace
			comm = bytes / (c.Nodes[p].BandwidthMBps * 1e6)
		}
		if p < len(commMessages) {
			comm += commMessages[p] * c.Net.LatencySec
		}
		if comp > sc.Compute {
			sc.Compute = comp
		}
		if comm > sc.Comm {
			sc.Comm = comm
		}
		if comp+comm > sc.Total {
			sc.Total = comp + comm
		}
	}
	return sc
}

// MigrationTime returns the redistribution cost of moving the given number
// of grid cells across the interconnect bisection.
func (c *Cluster) MigrationTime(cells float64, cost CostModel) float64 {
	if cells <= 0 {
		return 0
	}
	return cells * cost.BytesPerCell / (c.Net.BisectionMBps * 1e6)
}

// RelativeSpeeds returns each node's effective speed at time t normalized
// by the fastest node — a convenience for tests and monitoring.
func (c *Cluster) RelativeSpeeds(t float64) []float64 {
	out := make([]float64, len(c.Nodes))
	var max float64
	for i := range c.Nodes {
		out[i] = c.EffectiveSpeed(i, t)
		max = math.Max(max, out[i])
	}
	if max > 0 {
		for i := range out {
			out[i] /= max
		}
	}
	return out
}

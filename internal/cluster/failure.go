package cluster

// Failure injection. The paper's active control network exists to keep
// applications running on environments where "the availability and
// 'health' of computing elements on the grid" changes — including outright
// node loss ("respond to system failures", §1). The simulator models
// fail-stop failures: a failed node computes nothing from its failure time
// onward, and the management layer must detect it and redistribute.

// Failure is a permanent fail-stop event.
type Failure struct {
	// Node is the failing node's index.
	Node int
	// At is the simulation time of the failure.
	At float64
}

// Fail schedules a fail-stop failure.
func (c *Cluster) Fail(node int, at float64) {
	c.Failures = append(c.Failures, Failure{Node: node, At: at})
}

// Alive reports whether node i is operational at time t.
func (c *Cluster) Alive(i int, t float64) bool {
	if i < 0 || i >= len(c.Nodes) {
		return false
	}
	for _, f := range c.Failures {
		if f.Node == i && t >= f.At {
			return false
		}
	}
	return true
}

// AliveNodes returns the indices of operational nodes at time t, in order.
func (c *Cluster) AliveNodes(t float64) []int {
	out := make([]int, 0, len(c.Nodes))
	for i := range c.Nodes {
		if c.Alive(i, t) {
			out = append(out, i)
		}
	}
	return out
}

package cluster

import (
	"math"
	"testing"
)

func TestHomogeneousConstruction(t *testing.T) {
	c := Homogeneous(64, 1e6, 1024, 100)
	if c.NProcs() != 64 {
		t.Fatalf("nprocs = %d", c.NProcs())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range c.Nodes {
		if c.EffectiveSpeed(i, 0) != 1e6 {
			t.Fatalf("node %d effective speed %g without load", i, c.EffectiveSpeed(i, 0))
		}
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	if err := (&Cluster{}).Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
	c := Homogeneous(2, 1e6, 512, 100)
	c.Nodes[1].Speed = 0
	if err := c.Validate(); err == nil {
		t.Error("zero-speed node accepted")
	}
	c = Homogeneous(2, 1e6, 512, 100)
	c.Nodes[0].BandwidthMBps = -1
	if err := c.Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
	c = Homogeneous(2, 1e6, 512, 100)
	c.Net.BisectionMBps = 0
	if err := c.Validate(); err == nil {
		t.Error("zero bisection accepted")
	}
}

func TestEffectiveSpeedUnderLoad(t *testing.T) {
	c := Homogeneous(2, 1000, 512, 100)
	c.Load = ConstantLoad{0.5, 0}
	if got := c.EffectiveSpeed(0, 10); got != 500 {
		t.Fatalf("loaded speed = %g, want 500", got)
	}
	if got := c.EffectiveSpeed(1, 10); got != 1000 {
		t.Fatalf("idle speed = %g, want 1000", got)
	}
	// Loads are clamped below 1 so speed never hits zero.
	c.Load = ConstantLoad{2.0, 0}
	if got := c.EffectiveSpeed(0, 0); got < 1000*0.05-1e-9 {
		t.Fatalf("overloaded speed = %g, want clamped", got)
	}
}

func TestStepBSPSemantics(t *testing.T) {
	c := Homogeneous(4, 1000, 512, 100) // 100 MB/s, 25 us latency
	cost := CostModel{SecondsPerWork: 1, BytesPerFace: 100, BytesPerCell: 80}
	work := []float64{1000, 2000, 500, 500} // seconds = work/1000
	vol := []float64{0, 0, 1e6, 0}          // 1e6 faces * 100 B = 100 MB -> 1 s
	msgs := []float64{0, 0, 0, 40000}       // 40000 * 25 us = 1 s
	sc := c.Step(work, vol, msgs, 0, cost)
	if math.Abs(sc.Compute-2.0) > 1e-9 {
		t.Fatalf("compute = %g, want 2", sc.Compute)
	}
	if math.Abs(sc.Comm-1.0) > 1e-9 {
		t.Fatalf("comm = %g, want 1", sc.Comm)
	}
	// Total is the max of per-proc compute+comm sums: proc1 has 2+0,
	// proc2 has 0.5+1, proc3 has 0.5+1 -> max 2.
	if math.Abs(sc.Total-2.0) > 1e-9 {
		t.Fatalf("total = %g, want 2", sc.Total)
	}
}

func TestStepSlowNodeDominates(t *testing.T) {
	c := Homogeneous(2, 1000, 512, 100)
	c.Load = ConstantLoad{0.5, 0}
	cost := DefaultCostModel()
	work := []float64{1000, 1000}
	fast := c.Step(work, nil, nil, 0, cost)
	// Node 0 at half speed takes 2 s; node 1 takes 1 s.
	if math.Abs(fast.Total-2.0) > 1e-9 {
		t.Fatalf("loaded step = %g, want 2", fast.Total)
	}
}

func TestMigrationTime(t *testing.T) {
	c := Homogeneous(4, 1000, 512, 100)
	c.Net.BisectionMBps = 100
	cost := CostModel{BytesPerCell: 100}
	// 1e6 cells * 100 B = 100 MB over 100 MB/s = 1 s.
	if got := c.MigrationTime(1e6, cost); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("migration time = %g, want 1", got)
	}
	if c.MigrationTime(0, cost) != 0 || c.MigrationTime(-5, cost) != 0 {
		t.Fatal("non-positive cell count should cost nothing")
	}
}

func TestSyntheticLoadProperties(t *testing.T) {
	s := NewSyntheticLoad(32, 42)
	for i := 0; i < 32; i++ {
		for _, tt := range []float64{0, 17.3, 250, 10000} {
			l := s.Load(i, tt)
			if l < 0 || l >= 1 {
				t.Fatalf("load(%d,%g) = %g outside [0,1)", i, tt, l)
			}
			if s.Load(i, tt) != l {
				t.Fatal("load not deterministic")
			}
		}
	}
	// Out-of-range nodes are unloaded.
	if s.Load(-1, 0) != 0 || s.Load(99, 0) != 0 {
		t.Fatal("out-of-range node load not zero")
	}
	// Heterogeneity: node loads differ.
	distinct := map[float64]bool{}
	for i := 0; i < 32; i++ {
		distinct[math.Round(s.Load(i, 0)*1e6)] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("only %d distinct loads across 32 nodes", len(distinct))
	}
	// Same seed, same generator.
	s2 := NewSyntheticLoad(32, 42)
	for i := 0; i < 32; i++ {
		if s.Load(i, 5) != s2.Load(i, 5) {
			t.Fatal("same seed produced different loads")
		}
	}
	// Different seed, different loads.
	s3 := NewSyntheticLoad(32, 43)
	same := 0
	for i := 0; i < 32; i++ {
		if s.Load(i, 5) == s3.Load(i, 5) {
			same++
		}
	}
	if same == 32 {
		t.Fatal("different seeds produced identical loads")
	}
}

func TestLinuxClusterShape(t *testing.T) {
	c := LinuxCluster(32, 7)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NProcs() != 32 {
		t.Fatalf("nprocs = %d", c.NProcs())
	}
	if c.Load == nil {
		t.Fatal("Linux cluster must carry a synthetic load generator")
	}
	if c.Nodes[0].BandwidthMBps != 12.5 {
		t.Fatalf("fast Ethernet bandwidth = %g MB/s", c.Nodes[0].BandwidthMBps)
	}
}

func TestRelativeSpeeds(t *testing.T) {
	c := Homogeneous(3, 1000, 512, 100)
	c.Load = ConstantLoad{0, 0.5, 0.75}
	rs := c.RelativeSpeeds(0)
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(rs[i]-want[i]) > 1e-9 {
			t.Fatalf("relative speeds = %v, want %v", rs, want)
		}
	}
}

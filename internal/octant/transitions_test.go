package octant

import (
	"testing"
)

func charsOf(octs ...Octant) []Characterization {
	out := make([]Characterization, len(octs))
	for i, o := range octs {
		out[i] = Characterization{Index: i, Octant: o}
	}
	return out
}

func TestAnalyzeTrajectoryBasics(t *testing.T) {
	tr := AnalyzeTrajectory(charsOf(I, I, II, II, II, I))
	if tr.Counts[I][I] != 1 || tr.Counts[I][II] != 1 || tr.Counts[II][II] != 2 || tr.Counts[II][I] != 1 {
		t.Fatalf("counts = %v", tr.Counts)
	}
	if tr.Switches() != 2 {
		t.Fatalf("switches = %d", tr.Switches())
	}
	// Dwell runs: [I I]=2, [II II II]=3, [I]=1.
	want := []int{2, 3, 1}
	if len(tr.Dwell) != len(want) {
		t.Fatalf("dwell = %v", tr.Dwell)
	}
	for i := range want {
		if tr.Dwell[i] != want[i] {
			t.Fatalf("dwell = %v, want %v", tr.Dwell, want)
		}
	}
	if got := tr.MeanDwell(); got != 2 {
		t.Fatalf("mean dwell = %g", got)
	}
}

func TestAnalyzeTrajectoryDegenerate(t *testing.T) {
	empty := AnalyzeTrajectory(nil)
	if empty.Switches() != 0 || empty.MeanDwell() != 0 {
		t.Fatal("empty trajectory not zero")
	}
	single := AnalyzeTrajectory(charsOf(V))
	if single.Switches() != 0 || single.MeanDwell() != 1 {
		t.Fatalf("single-entry trajectory: %+v", single)
	}
	constant := AnalyzeTrajectory(charsOf(III, III, III, III))
	if constant.Switches() != 0 || constant.MeanDwell() != 4 {
		t.Fatalf("constant trajectory: %+v", constant)
	}
}

func TestTrajectoryConsistencyInvariant(t *testing.T) {
	// Total transition count equals len-1, and switches+1 equals the
	// number of dwell runs — for any trajectory.
	seqs := [][]Octant{
		{I, II, III, IV, V, VI, VII, VIII},
		{I, I, I, II, II, I, I, VIII},
		{IV},
		{VII, VII},
	}
	for _, seq := range seqs {
		tr := AnalyzeTrajectory(charsOf(seq...))
		total := 0
		for _, row := range tr.Counts {
			for _, c := range row {
				total += c
			}
		}
		if total != len(seq)-1 && !(len(seq) == 1 && total == 0) {
			t.Fatalf("seq %v: transitions %d", seq, total)
		}
		if got := tr.Switches() + 1; got != len(tr.Dwell) {
			t.Fatalf("seq %v: switches+1 = %d, dwell runs = %d", seq, got, len(tr.Dwell))
		}
	}
}

package octant

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// This file holds the boundary-value property tests for octant
// classification: behavior exactly at and ±ε around each axis threshold
// must be stable and total, and degenerate inputs (NaN axes, zero-extent
// refinement) must classify without panicking.

// eps is well below any threshold scale but large enough to survive the
// float64 arithmetic inside the classifier.
const eps = 1e-9

// TestClassifyBoundaryStability sweeps all 27 combinations of
// {below, at, above} threshold across the three axes and checks the crisp
// classifier lands in exactly the octant FromAxes predicts, with the
// documented >=-at-threshold convention.
func TestClassifyBoundaryStability(t *testing.T) {
	th := DefaultThresholds()
	offsets := []float64{-eps, 0, +eps}
	for _, dd := range offsets {
		for _, dc := range offsets {
			for _, ds := range offsets {
				s := State{
					Dynamics:   th.Dynamics + dd,
					CommRatio:  th.CommRatio + dc,
					Dispersion: th.Dispersion + ds,
				}
				// At-threshold (offset 0) counts as the upper half-space.
				want := FromAxes(dd >= 0, dc >= 0, ds >= 0)
				got := Classify(s, th)
				if got != want {
					t.Errorf("offsets (%g,%g,%g): classified %v, want %v", dd, dc, ds, got, want)
				}
				// Stability: the same state classifies identically on
				// repeated calls (the classifier is stateless).
				if again := Classify(s, th); again != got {
					t.Errorf("offsets (%g,%g,%g): classification flapped %v -> %v", dd, dc, ds, got, again)
				}
			}
		}
	}
}

// TestClassifyTotal checks totality over a degenerate-input grid: every
// state — including zeros, negatives, infinities and NaN — classifies to
// exactly one valid octant without panicking.
func TestClassifyTotal(t *testing.T) {
	th := DefaultThresholds()
	values := []float64{math.NaN(), math.Inf(-1), -1, 0, eps, th.Dynamics, 0.5, 1, 100, math.Inf(1)}
	for _, d := range values {
		for _, c := range values {
			for _, s := range values {
				st := State{Dynamics: d, CommRatio: c, Dispersion: s}
				o := Classify(st, th)
				if !o.Valid() {
					t.Fatalf("state %+v: invalid octant %v", st, o)
				}
			}
		}
	}
	// NaN compares false on every axis, so it lands in the all-lower
	// octant III deterministically.
	nan := math.NaN()
	if o := Classify(State{Dynamics: nan, CommRatio: nan, Dispersion: nan}, th); o != III {
		t.Errorf("all-NaN state classified %v, want III", o)
	}
}

// TestFuzzyMembershipAtBoundaries checks the fuzzy classifier near
// thresholds: memberships stay normalized, Best returns a valid octant,
// and exactly at a threshold corner the top two octants split the mass
// (genuine ambiguity, which Ambiguous reports).
func TestFuzzyMembershipAtBoundaries(t *testing.T) {
	th := DefaultThresholds()
	corner := State{Dynamics: th.Dynamics, CommRatio: th.CommRatio, Dispersion: th.Dispersion}
	m := FuzzyClassify(corner, th, 0.25)
	var sum float64
	for o := I; o <= VIII; o++ {
		v := m[o]
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("membership[%v] = %v out of range", o, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("memberships sum to %v", sum)
	}
	if o, v := m.Best(); !o.Valid() || v <= 0 {
		t.Fatalf("Best() = %v, %v at corner", o, v)
	} else if v > 0.5 {
		t.Errorf("corner state should be ambiguous, best membership %v", v)
	}
	if !m.Ambiguous(0.5) {
		t.Error("corner state not reported ambiguous at 0.5 dominance")
	}

	// ±ε around a single axis threshold must not flip Best discontinuously
	// to a non-adjacent octant: the two candidates differ only on that
	// axis.
	for _, off := range []float64{-eps, +eps} {
		s := State{Dynamics: 0.01, CommRatio: th.CommRatio + off, Dispersion: 0.01}
		o, _ := FuzzyClassify(s, th, 0.25).Best()
		if o != I && o != III {
			t.Errorf("CommRatio %+g: Best() = %v, want I or III", off, o)
		}
	}
}

// TestFuzzyClassifyDegenerateInputs checks the fuzzy path never panics on
// NaN or off-scale states and that Best stays total.
func TestFuzzyClassifyDegenerateInputs(t *testing.T) {
	th := DefaultThresholds()
	nan := math.NaN()
	for _, s := range []State{
		{Dynamics: nan, CommRatio: nan, Dispersion: nan},
		{Dynamics: nan, CommRatio: 0.6, Dispersion: 0.1},
		{Dynamics: math.Inf(1), CommRatio: math.Inf(-1), Dispersion: 0},
		{},
	} {
		m := FuzzyClassify(s, th, 0.25)
		if len(m) != 8 {
			t.Fatalf("state %+v: %d memberships", s, len(m))
		}
		if o, _ := m.Best(); !o.Valid() {
			t.Fatalf("state %+v: Best() invalid octant %v", s, o)
		}
	}
	// Zero thresholds exercise the width fallback (softness*threshold = 0).
	m := FuzzyClassify(State{Dynamics: 0.1}, Thresholds{}, 0.25)
	if o, _ := m.Best(); !o.Valid() {
		t.Fatalf("zero-threshold Best() invalid octant %v", o)
	}
}

// TestStateAtZeroExtentRefinement checks the measurement path on traces
// whose hierarchies have no refined region at all: metrics degrade to
// zeros (no division-by-zero panic) and classification stays total.
func TestStateAtZeroExtentRefinement(t *testing.T) {
	mk := func() *samr.Hierarchy {
		h, err := samr.NewHierarchy(samr.MakeBox(16, 16, 16), 2)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	tr := &samr.Trace{Name: "empty", RegridEvery: 4}
	for i := 0; i < 3; i++ {
		tr.Snapshots = append(tr.Snapshots, samr.Snapshot{Index: i, H: mk()})
	}
	s, err := StateAt(tr, 2, 3)
	if err != nil {
		t.Fatalf("StateAt on empty refinement: %v", err)
	}
	if s.Dynamics != 0 || s.CommRatio != 0 || s.Dispersion != 0 {
		t.Errorf("empty refinement state %+v, want zeros", s)
	}
	if o := Classify(s, DefaultThresholds()); o != III {
		t.Errorf("empty refinement classified %v, want III", o)
	}
}

// Package octant implements Pragma's application characterization module:
// the octant approach of §4.2 (Fig. 2). The state of an SAMR application is
// classified along three axes — adaptation pattern (localized vs
// scattered), activity dynamics (lower vs higher), and whether the runtime
// is dominated by computation or communication — into octants I–VIII. The
// octant then drives partitioner selection through the policy base
// (Table 2) and, over a whole run, yields the application's octant
// trajectory (Table 3).
//
// The paper's Figure 2 does not define the octant numbering precisely
// enough to recover from the scan; the numbering used here is the
// reconstruction documented in DESIGN.md, chosen to be consistent with
// Table 2's partitioner associations.
package octant

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Octant identifies one of the eight application-state octants.
type Octant int

// The eight octants. Octants I–IV have lower activity dynamics, V–VIII
// higher; within each group, I/II (and V/VI) are communication-dominated,
// III/IV (and VII/VIII) computation-dominated; odd octants are localized,
// even octants scattered.
const (
	I Octant = 1 + iota
	II
	III
	IV
	V
	VI
	VII
	VIII
)

// String returns the Roman numeral of the octant.
func (o Octant) String() string {
	switch o {
	case I:
		return "I"
	case II:
		return "II"
	case III:
		return "III"
	case IV:
		return "IV"
	case V:
		return "V"
	case VI:
		return "VI"
	case VII:
		return "VII"
	case VIII:
		return "VIII"
	default:
		return fmt.Sprintf("Octant(%d)", int(o))
	}
}

// Valid reports whether o is one of the eight octants.
func (o Octant) Valid() bool { return o >= I && o <= VIII }

// HigherDynamics reports whether the octant lies in the higher-activity
// half of the state space.
func (o Octant) HigherDynamics() bool { return o >= V }

// CommDominated reports whether the octant is communication-dominated.
func (o Octant) CommDominated() bool {
	switch o {
	case I, II, V, VI:
		return true
	default:
		return false
	}
}

// Scattered reports whether the octant has a scattered adaptation pattern.
func (o Octant) Scattered() bool {
	switch o {
	case II, IV, VI, VIII:
		return true
	default:
		return false
	}
}

// FromAxes builds the octant for the given axis values.
func FromAxes(higherDynamics, commDominated, scattered bool) Octant {
	o := I
	if !commDominated {
		o += 2
	}
	if scattered {
		o++
	}
	if higherDynamics {
		o += 4
	}
	return o
}

// State is the measured application state that classification operates on.
type State struct {
	// Dynamics is the windowed refined-region change fraction between
	// regrids (0 = static, 1 = fully relocating).
	Dynamics float64
	// CommRatio is the refined region's surface-to-volume ratio, the
	// communication/computation dominance indicator.
	CommRatio float64
	// Dispersion measures how scattered the refinement is (0 = one solid
	// block, toward 1 = spread across the domain).
	Dispersion float64
}

// Thresholds split each State axis into its two half-spaces.
type Thresholds struct {
	Dynamics   float64
	CommRatio  float64
	Dispersion float64
}

// DefaultThresholds are calibrated against the RM3D adaptation trace so
// that the trace's octant trajectory matches the paper's Table 3 (see
// EXPERIMENTS.md).
func DefaultThresholds() Thresholds {
	return Thresholds{Dynamics: 0.15, CommRatio: 0.48, Dispersion: 0.30}
}

// Classify maps a state to its octant.
func Classify(s State, th Thresholds) Octant {
	return FromAxes(
		s.Dynamics >= th.Dynamics,
		s.CommRatio >= th.CommRatio,
		s.Dispersion >= th.Dispersion,
	)
}

// Characterization is the octant classification of one trace snapshot.
type Characterization struct {
	Index  int
	State  State
	Octant Octant
}

// StateAt measures the application state at snapshot idx of a trace. The
// metrics are taken on hierarchy level 1 (the first refined level);
// dynamics averages the change fraction over the `window` preceding regrid
// intervals (window < 1 is treated as 1).
func StateAt(tr *samr.Trace, idx, window int) (State, error) {
	if idx < 0 || idx >= len(tr.Snapshots) {
		return State{}, fmt.Errorf("octant: snapshot %d outside trace of %d", idx, len(tr.Snapshots))
	}
	if window < 1 {
		window = 1
	}
	h := tr.Snapshots[idx].H
	s := State{
		CommRatio:  h.SurfaceToVolume(1),
		Dispersion: h.Dispersion(1),
	}
	var sum float64
	n := 0
	for k := idx; k > idx-window && k >= 1; k-- {
		sum += samr.ChangeFraction(tr.Snapshots[k-1].H, tr.Snapshots[k].H, 1)
		n++
	}
	if n > 0 {
		s.Dynamics = sum / float64(n)
	}
	return s, nil
}

// CharacterizeTrace classifies every snapshot of a trace — the automated
// version of the paper's manual application characterization step.
func CharacterizeTrace(tr *samr.Trace, th Thresholds, window int) ([]Characterization, error) {
	out := make([]Characterization, 0, len(tr.Snapshots))
	for idx := range tr.Snapshots {
		s, err := StateAt(tr, idx, window)
		if err != nil {
			return nil, err
		}
		out = append(out, Characterization{Index: idx, State: s, Octant: Classify(s, th)})
	}
	return out, nil
}

package octant

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/rm3d"
	"github.com/pragma-grid/pragma/internal/samr"
)

func TestOctantAxesRoundTrip(t *testing.T) {
	for _, dyn := range []bool{false, true} {
		for _, comm := range []bool{false, true} {
			for _, scat := range []bool{false, true} {
				o := FromAxes(dyn, comm, scat)
				if !o.Valid() {
					t.Fatalf("FromAxes(%v,%v,%v) = %v invalid", dyn, comm, scat, o)
				}
				if o.HigherDynamics() != dyn || o.CommDominated() != comm || o.Scattered() != scat {
					t.Fatalf("axes of %v = (%v,%v,%v), want (%v,%v,%v)",
						o, o.HigherDynamics(), o.CommDominated(), o.Scattered(), dyn, comm, scat)
				}
			}
		}
	}
	// All eight octants are distinct.
	seen := map[Octant]bool{}
	for _, dyn := range []bool{false, true} {
		for _, comm := range []bool{false, true} {
			for _, scat := range []bool{false, true} {
				seen[FromAxes(dyn, comm, scat)] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct octants", len(seen))
	}
}

func TestOctantStrings(t *testing.T) {
	want := map[Octant]string{I: "I", II: "II", III: "III", IV: "IV", V: "V", VI: "VI", VII: "VII", VIII: "VIII"}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if Octant(0).Valid() || Octant(9).Valid() {
		t.Error("invalid octants reported valid")
	}
	if Octant(0).String() == "I" {
		t.Error("invalid octant stringified as valid")
	}
}

func TestClassifyAgainstThresholds(t *testing.T) {
	th := Thresholds{Dynamics: 0.5, CommRatio: 0.5, Dispersion: 0.5}
	cases := []struct {
		s    State
		want Octant
	}{
		{State{0.1, 0.9, 0.1}, I},
		{State{0.1, 0.9, 0.9}, II},
		{State{0.1, 0.1, 0.1}, III},
		{State{0.1, 0.1, 0.9}, IV},
		{State{0.9, 0.9, 0.1}, V},
		{State{0.9, 0.9, 0.9}, VI},
		{State{0.9, 0.1, 0.1}, VII},
		{State{0.9, 0.1, 0.9}, VIII},
	}
	for _, c := range cases {
		if got := Classify(c.s, th); got != c.want {
			t.Errorf("Classify(%+v) = %v, want %v", c.s, got, c.want)
		}
	}
	// Boundary values fall into the upper half-space.
	if got := Classify(State{0.5, 0.5, 0.5}, th); got != VI {
		t.Errorf("boundary state = %v, want VI", got)
	}
}

// TestTable3Reproduction is the package's headline test: characterizing the
// RM3D adaptation trace must reproduce the paper's Table 3 octant states.
func TestTable3Reproduction(t *testing.T) {
	tr, err := rm3d.GenerateTrace(rm3d.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]Octant{
		0:   IV,
		5:   VII,
		25:  I,
		106: VI,
		137: VIII,
		162: II,
		174: V,
		201: III,
	}
	th := DefaultThresholds()
	for idx, wantOct := range want {
		s, err := StateAt(tr, idx, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := Classify(s, th); got != wantOct {
			t.Errorf("time-step %d: octant %v (state %+v), paper reports %v", idx, got, s, wantOct)
		}
	}
}

func TestCharacterizeTraceCoversAllOctants(t *testing.T) {
	tr, err := rm3d.GenerateTrace(rm3d.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chars, err := CharacterizeTrace(tr, DefaultThresholds(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != len(tr.Snapshots) {
		t.Fatalf("characterized %d of %d snapshots", len(chars), len(tr.Snapshots))
	}
	seen := map[Octant]bool{}
	for _, c := range chars {
		if !c.Octant.Valid() {
			t.Fatalf("snapshot %d: invalid octant", c.Index)
		}
		seen[c.Octant] = true
	}
	// The application "may start in one octant, then, as solution
	// progresses, migrate to others" — the RM3D trace visits all eight.
	if len(seen) != 8 {
		t.Fatalf("trace visits %d octants, want all 8: %v", len(seen), seen)
	}
}

func TestStateAtValidation(t *testing.T) {
	tr := &samr.Trace{}
	if _, err := StateAt(tr, 0, 3); err == nil {
		t.Error("empty trace accepted")
	}
	h, _ := samr.NewHierarchy(samr.MakeBox(8, 8, 8), 2)
	tr = &samr.Trace{Snapshots: []samr.Snapshot{{Index: 0, H: h}}}
	if _, err := StateAt(tr, -1, 3); err == nil {
		t.Error("negative index accepted")
	}
	// Snapshot without refinement classifies as a zero state.
	s, err := StateAt(tr, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != (State{}) {
		t.Fatalf("unrefined state = %+v, want zero", s)
	}
}

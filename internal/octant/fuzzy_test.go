package octant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFuzzyClassifySumsToOne(t *testing.T) {
	th := DefaultThresholds()
	f := func(d, c, s float64) bool {
		st := State{
			Dynamics:   math.Abs(d) / (1 + math.Abs(d)),
			CommRatio:  math.Abs(c),
			Dispersion: math.Abs(s) / (1 + math.Abs(s)),
		}
		m := FuzzyClassify(st, th, 0.25)
		var sum float64
		for o := I; o <= VIII; o++ {
			if m[o] < 0 || m[o] > 1 {
				return false
			}
			sum += m[o]
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzyAgreesWithCrispFarFromThresholds(t *testing.T) {
	th := DefaultThresholds()
	// States far from every threshold: fuzzy best == crisp classification
	// with dominant membership.
	cases := []State{
		{Dynamics: 0.01, CommRatio: 0.1, Dispersion: 0.02},
		{Dynamics: 0.9, CommRatio: 1.5, Dispersion: 0.9},
		{Dynamics: 0.01, CommRatio: 1.5, Dispersion: 0.02},
		{Dynamics: 0.9, CommRatio: 0.1, Dispersion: 0.9},
	}
	for _, s := range cases {
		crisp := Classify(s, th)
		best, v := FuzzyClassify(s, th, 0.25).Best()
		if best != crisp {
			t.Errorf("state %+v: fuzzy best %v != crisp %v", s, best, crisp)
		}
		if v < 0.5 {
			t.Errorf("state %+v: clear state has weak membership %.2f", s, v)
		}
	}
}

func TestFuzzyAmbiguousNearThreshold(t *testing.T) {
	th := DefaultThresholds()
	// A state exactly on every threshold is maximally ambiguous: all
	// octants get 1/8.
	s := State{Dynamics: th.Dynamics, CommRatio: th.CommRatio, Dispersion: th.Dispersion}
	m := FuzzyClassify(s, th, 0.25)
	for o := I; o <= VIII; o++ {
		if math.Abs(m[o]-0.125) > 1e-9 {
			t.Fatalf("on-threshold membership %v = %g, want 0.125", o, m[o])
		}
	}
	if !m.Ambiguous(0.5) {
		t.Error("on-threshold state not flagged ambiguous")
	}
	// A clear state is not ambiguous.
	clear := FuzzyClassify(State{Dynamics: 0.9, CommRatio: 1.5, Dispersion: 0.9}, th, 0.25)
	if clear.Ambiguous(0.5) {
		t.Error("clear state flagged ambiguous")
	}
}

func TestFuzzySoftnessDefault(t *testing.T) {
	th := DefaultThresholds()
	s := State{Dynamics: 0.2, CommRatio: 0.6, Dispersion: 0.4}
	a := FuzzyClassify(s, th, 0)
	b := FuzzyClassify(s, th, 0.25)
	for o := I; o <= VIII; o++ {
		if math.Abs(a[o]-b[o]) > 1e-12 {
			t.Fatal("softness default != 0.25")
		}
	}
}

package octant

import "math"

// This file implements fuzzy octant classification. §3.5 specifies that
// "the policy knowledge base will present an associative interface that
// allows the agents to formulate partial queries and use fuzzy reasoning";
// a state near an axis threshold is genuinely ambiguous, and crisp
// classification flaps there. FuzzyClassify grades membership in every
// octant so agents can see that ambiguity (and, e.g., hold the current
// partitioner when no octant clearly dominates).

// Membership grades a state's degree of membership in each octant,
// in [0, 1]. The eight values sum to 1.
type Membership map[Octant]float64

// FuzzyClassify computes per-octant memberships: each axis contributes a
// sigmoid membership centered on its threshold, with softness expressed as
// a fraction of the threshold value; axis memberships multiply.
func FuzzyClassify(s State, th Thresholds, softness float64) Membership {
	if softness <= 0 {
		softness = 0.25
	}
	dyn := axisMembership(s.Dynamics, th.Dynamics, softness)
	comm := axisMembership(s.CommRatio, th.CommRatio, softness)
	scat := axisMembership(s.Dispersion, th.Dispersion, softness)
	m := make(Membership, 8)
	var total float64
	for _, hi := range []bool{false, true} {
		for _, cd := range []bool{false, true} {
			for _, sc := range []bool{false, true} {
				v := pick(dyn, hi) * pick(comm, cd) * pick(scat, sc)
				m[FromAxes(hi, cd, sc)] = v
				total += v
			}
		}
	}
	if total > 0 {
		for o := range m {
			m[o] /= total
		}
	}
	return m
}

// axisMembership returns the degree to which v lies in the axis's upper
// half-space, via a logistic centered at the threshold with width
// softness*threshold.
func axisMembership(v, threshold, softness float64) float64 {
	width := softness * threshold
	if width <= 0 {
		width = softness
	}
	return 1 / (1 + math.Exp(-(v-threshold)/width))
}

func pick(upper float64, wantUpper bool) float64 {
	if wantUpper {
		return upper
	}
	return 1 - upper
}

// Best returns the octant with the highest membership and that membership.
// Ties break toward the lower octant number for determinism.
func (m Membership) Best() (Octant, float64) {
	best, bestV := I, -1.0
	for o := I; o <= VIII; o++ {
		if v := m[o]; v > bestV {
			best, bestV = o, v
		}
	}
	return best, bestV
}

// Ambiguous reports whether no octant reaches the given dominance level
// (e.g. 0.5): the state sits near one or more axis thresholds.
func (m Membership) Ambiguous(dominance float64) bool {
	_, v := m.Best()
	return v < dominance
}

package octant

// Trajectory analysis. The paper observes that applications "may start in
// one octant, then, as solution progresses, migrate to others"; transition
// statistics over a characterized trace show that migration structure and
// feed policies (e.g. hysteresis: how long does the application dwell in
// an octant before moving on?).

// Transitions summarizes the octant trajectory of a characterized trace.
type Transitions struct {
	// Counts[a][b] is the number of regrid steps at which the application
	// moved from octant a to octant b (a != b) or stayed (a == b).
	Counts map[Octant]map[Octant]int
	// Dwell holds the lengths (in regrid intervals) of every maximal
	// constant-octant run, in trajectory order.
	Dwell []int
}

// AnalyzeTrajectory builds transition statistics from a characterization
// sequence (as produced by CharacterizeTrace).
func AnalyzeTrajectory(chars []Characterization) Transitions {
	t := Transitions{Counts: make(map[Octant]map[Octant]int)}
	if len(chars) == 0 {
		return t
	}
	run := 1
	for i := 1; i < len(chars); i++ {
		a, b := chars[i-1].Octant, chars[i].Octant
		if t.Counts[a] == nil {
			t.Counts[a] = make(map[Octant]int)
		}
		t.Counts[a][b]++
		if a == b {
			run++
		} else {
			t.Dwell = append(t.Dwell, run)
			run = 1
		}
	}
	t.Dwell = append(t.Dwell, run)
	return t
}

// Switches returns the number of octant changes in the trajectory.
func (t Transitions) Switches() int {
	n := 0
	for a, row := range t.Counts {
		for b, c := range row {
			if a != b {
				n += c
			}
		}
	}
	return n
}

// MeanDwell returns the average number of regrid intervals spent in an
// octant before switching (0 for an empty trajectory).
func (t Transitions) MeanDwell() float64 {
	if len(t.Dwell) == 0 {
		return 0
	}
	sum := 0
	for _, d := range t.Dwell {
		sum += d
	}
	return float64(sum) / float64(len(t.Dwell))
}

// Package jsonenc is the serving surface's pooled, zero-allocation JSON
// encoder. encoding/json is convenient but costs one reflection walk and
// several heap allocations per response; at tens of thousands of status
// requests per second that garbage dominates the handler profile. This
// package keeps the hot handlers (/sched/status, /sched/runs,
// /metrics.json) allocation-free: responses are appended byte-by-byte into
// pooled buffers with strconv's Append* primitives, and the buffers are
// recycled after the write.
//
// The output is byte-compatible with encoding/json for the subset the
// handlers use (strings, bools, int/uint, float64 with json's 'f'/'e'
// switchover, RFC 3339 times) — differential tests in this package and in
// the callers hold that property, so swapping an encoder never changes
// the wire format.
package jsonenc

import (
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Buffer is an appendable byte buffer. Get one from the pool, append a
// JSON document into B, write it, and Put it back.
type Buffer struct {
	B []byte
}

var pool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// Get returns a pooled buffer with empty contents.
func Get() *Buffer {
	b := pool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Put recycles a buffer. Oversized buffers (beyond 1 MiB) are dropped so
// one huge response cannot pin memory for the life of the pool.
func Put(b *Buffer) {
	if cap(b.B) > 1<<20 {
		return
	}
	pool.Put(b)
}

// Reset empties the buffer without releasing its storage.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// Len returns the number of buffered bytes.
func (b *Buffer) Len() int { return len(b.B) }

// Raw appends s verbatim — for punctuation and pre-validated fragments.
func (b *Buffer) Raw(s string) { b.B = append(b.B, s...) }

// Byte appends one raw byte.
func (b *Buffer) Byte(c byte) { b.B = append(b.B, c) }

// jsonSafe marks the ASCII bytes that pass through a JSON string
// unescaped, matching encoding/json's safeSet (HTML escaping disabled is
// not replicated: json escapes <, >, & by default, and so do we, keeping
// byte compatibility with json.Marshal).
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for c := 0x20; c < utf8.RuneSelf; c++ {
		jsonSafe[c] = true
	}
	jsonSafe['"'] = false
	jsonSafe['\\'] = false
	jsonSafe['<'] = false
	jsonSafe['>'] = false
	jsonSafe['&'] = false
}

const hexDigits = "0123456789abcdef"

// String appends s as a quoted, escaped JSON string. Multi-byte UTF-8
// passes through untouched (except U+2028/U+2029, escaped like json does);
// invalid bytes become U+FFFD, matching encoding/json.
func (b *Buffer) String(s string) {
	b.B = append(b.B, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if jsonSafe[c] {
				i++
				continue
			}
			b.B = append(b.B, s[start:i]...)
			switch c {
			case '\\', '"':
				b.B = append(b.B, '\\', c)
			case '\n':
				b.B = append(b.B, '\\', 'n')
			case '\r':
				b.B = append(b.B, '\\', 'r')
			case '\t':
				b.B = append(b.B, '\\', 't')
			default:
				// Control characters and <, >, & become \u00xx.
				b.B = append(b.B, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.B = append(b.B, s[start:i]...)
			b.B = append(b.B, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b.B = append(b.B, s[start:i]...)
			b.B = append(b.B, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b.B = append(b.B, s[start:]...)
	b.B = append(b.B, '"')
}

// Int appends a signed integer.
func (b *Buffer) Int(v int64) { b.B = strconv.AppendInt(b.B, v, 10) }

// Uint appends an unsigned integer.
func (b *Buffer) Uint(v uint64) { b.B = strconv.AppendUint(b.B, v, 10) }

// Bool appends true or false.
func (b *Buffer) Bool(v bool) {
	if v {
		b.B = append(b.B, "true"...)
	} else {
		b.B = append(b.B, "false"...)
	}
}

// Float appends a float64 exactly the way encoding/json renders one:
// shortest round-trip form, 'f' style unless the magnitude calls for 'e'
// style, with json's trimmed exponent. NaN and ±Inf are not valid JSON;
// like json.Marshal they have no encoding, so they are rendered as 0 —
// callers that can observe them should filter first.
func (b *Buffer) Float(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		b.B = append(b.B, '0')
		return
	}
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(b.B)
	b.B = strconv.AppendFloat(b.B, v, format, -1, 64)
	if format == 'e' {
		// strconv writes e+05; json trims the leading exponent zero to e+5.
		n := len(b.B)
		if n-start >= 4 && b.B[n-4] == 'e' && b.B[n-2] == '0' {
			b.B[n-2] = b.B[n-1]
			b.B = b.B[:n-1]
		}
	}
}

// Time appends t as a quoted RFC 3339 timestamp with nanoseconds, the
// exact form time.Time.MarshalJSON produces.
func (b *Buffer) Time(t time.Time) {
	b.B = append(b.B, '"')
	b.B = t.AppendFormat(b.B, time.RFC3339Nano)
	b.B = append(b.B, '"')
}

// Field appends a comma (unless first) and the quoted key with its colon:
// the standard "next object member" step.
func (b *Buffer) Field(first *bool, key string) {
	if !*first {
		b.B = append(b.B, ',')
	}
	*first = false
	b.String(key)
	b.B = append(b.B, ':')
}

package jsonenc

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

// marshal is the reference encoder every append helper must match.
func marshal(t *testing.T, v any) string {
	t.Helper()
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal(%v): %v", v, err)
	}
	return string(out)
}

func TestStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain",
		"with \"quotes\" and \\backslash\\",
		"newline\ntab\tcarriage\rreturn",
		"control\x00\x01\x1f chars",
		"html <script>&amp;</script>",
		"unicode: héllo wörld — ✓ 日本語",
		"line sep   para sep   end",
		"invalid utf8: \xff\xfe mid \xc3(",
		"emoji 🚀 and surrogate-pair text",
	}
	for _, s := range cases {
		b := Get()
		b.String(s)
		got := string(b.B)
		Put(b)
		if want := marshal(t, s); got != want {
			t.Errorf("String(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 3.14159265358979, 1e-6, 9.999999e-7, 1e-7,
		1e20, 1e21, 1.5e21, -2.5e-9, 123456789.123456789, 6.02214076e23,
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.MaxFloat64,
		0.1, 0.3, 2.0 / 3.0, 1e100, 1e-100,
	}
	for _, v := range cases {
		b := Get()
		b.Float(v)
		got := string(b.B)
		Put(b)
		if want := marshal(t, v); got != want {
			t.Errorf("Float(%g) = %s, want %s", v, got, want)
		}
	}
}

func TestFloatRandomMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		var v float64
		switch i % 4 {
		case 0:
			v = rng.NormFloat64()
		case 1:
			v = rng.Float64() * math.Pow(10, float64(rng.Intn(60)-30))
		case 2:
			v = -rng.Float64() * math.Pow(10, float64(rng.Intn(60)-30))
		case 3:
			v = math.Float64frombits(rng.Uint64())
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
		}
		b := Get()
		b.Float(v)
		got := string(b.B)
		Put(b)
		if want := marshal(t, v); got != want {
			t.Fatalf("Float(%v) = %s, want %s", v, got, want)
		}
	}
}

func TestFloatNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := Get()
		b.Float(v)
		if got := string(b.B); got != "0" {
			t.Errorf("Float(%v) = %s, want 0", v, got)
		}
		Put(b)
	}
}

func TestIntUintBool(t *testing.T) {
	b := Get()
	defer Put(b)
	b.Int(-9223372036854775808)
	b.Byte(' ')
	b.Uint(18446744073709551615)
	b.Byte(' ')
	b.Bool(true)
	b.Byte(' ')
	b.Bool(false)
	want := "-9223372036854775808 18446744073709551615 true false"
	if got := string(b.B); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestTimeMatchesEncodingJSON(t *testing.T) {
	cases := []time.Time{
		time.Date(2026, 8, 8, 12, 34, 56, 789000000, time.UTC),
		time.Date(2026, 8, 8, 12, 34, 56, 0, time.UTC),
		time.Date(2026, 8, 8, 12, 34, 56, 123456789, time.FixedZone("X", -7*3600)),
		time.Unix(0, 1).UTC(),
	}
	for _, tc := range cases {
		b := Get()
		b.Time(tc)
		got := string(b.B)
		Put(b)
		if want := marshal(t, tc); got != want {
			t.Errorf("Time(%v) = %s, want %s", tc, got, want)
		}
	}
}

func TestFieldBuildsObjects(t *testing.T) {
	b := Get()
	defer Put(b)
	b.Byte('{')
	first := true
	b.Field(&first, "id")
	b.String("run-000001")
	b.Field(&first, "state")
	b.String("done")
	b.Field(&first, "steps")
	b.Int(60)
	b.Byte('}')
	want := `{"id":"run-000001","state":"done","steps":60}`
	if got := string(b.B); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b.B, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

func TestPoolRoundTrip(t *testing.T) {
	b := Get()
	b.Raw("hello")
	Put(b)
	b2 := Get()
	if b2.Len() != 0 {
		t.Errorf("pooled buffer not reset: %q", b2.B)
	}
	Put(b2)

	// Oversized buffers must not return to the pool.
	big := Get()
	big.B = make([]byte, 0, 2<<20)
	Put(big) // must not panic, silently dropped
}

func TestEncodeZeroAllocs(t *testing.T) {
	ts := time.Date(2026, 8, 8, 1, 2, 3, 4, time.UTC)
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get()
		b.Byte('{')
		first := true
		b.Field(&first, "name")
		b.String("tenant-a/run with \"escapes\"")
		b.Field(&first, "value")
		b.Float(123.456)
		b.Field(&first, "count")
		b.Uint(42)
		b.Field(&first, "ok")
		b.Bool(true)
		b.Field(&first, "at")
		b.Time(ts)
		b.Byte('}')
		Put(b)
	})
	if allocs != 0 {
		t.Errorf("encode path allocates %v allocs/op, want 0", allocs)
	}
}

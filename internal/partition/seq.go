package partition

// This file implements one-dimensional sequence partitioning: splitting an
// ordered unit sequence into contiguous chunks, one per processor. All ISP
// partitioners reduce the 3-D problem to this via the space-filling curve.

// greedyPrefix assigns units to processors by accumulating weight until the
// running chunk reaches its target, then moving to the next processor. The
// target adapts to the remaining weight and processor count after each
// chunk, so rounding errors do not pile up on the last processor. Fast, but
// a chunk can still miss its boundary by up to half a unit — the imbalance
// signature of the plain SFC partitioner.
func greedyPrefix(weights []float64, nprocs int) []int {
	owner := make([]int, len(weights))
	var remaining float64
	for _, w := range weights {
		remaining += w
	}
	proc := 0
	var acc float64
	target := remaining / float64(nprocs)
	for i, w := range weights {
		remainingUnits := len(weights) - i
		procsAfterCurrent := nprocs - 1 - proc
		// Never leave a trailing processor without units when avoidable,
		// and never run past the last processor.
		if proc < nprocs-1 && acc > 0 && (acc+w/2 > target || remainingUnits <= procsAfterCurrent) {
			proc++
			acc = 0
			target = remaining / float64(nprocs-proc)
		}
		owner[i] = proc
		acc += w
		remaining -= w
	}
	return owner
}

// optimalSequence splits the sequence into at most nprocs contiguous chunks
// minimizing the bottleneck (maximum chunk weight). It binary-searches the
// bottleneck over the answer space and verifies candidates greedily, which
// is exact for contiguous partitioning.
func optimalSequence(weights []float64, nprocs int) []int {
	var total, maxw float64
	for _, w := range weights {
		total += w
		if w > maxw {
			maxw = w
		}
	}
	lo, hi := maxw, total
	// Binary search to a relative precision far below any unit weight.
	for iter := 0; iter < 60 && hi-lo > 1e-9*total; iter++ {
		mid := (lo + hi) / 2
		if chunksNeeded(weights, mid) <= nprocs {
			hi = mid
		} else {
			lo = mid
		}
	}
	return packChunks(weights, hi, nprocs)
}

// chunksNeeded returns how many contiguous chunks of weight <= bottleneck
// are required to cover the sequence.
func chunksNeeded(weights []float64, bottleneck float64) int {
	chunks := 1
	var acc float64
	for _, w := range weights {
		if acc+w > bottleneck && acc > 0 {
			chunks++
			acc = 0
		}
		acc += w
	}
	return chunks
}

// packChunks assigns owners greedily under the bottleneck, clamping to
// nprocs chunks.
func packChunks(weights []float64, bottleneck float64, nprocs int) []int {
	owner := make([]int, len(weights))
	proc := 0
	var acc float64
	for i, w := range weights {
		if acc+w > bottleneck && acc > 0 && proc < nprocs-1 {
			proc++
			acc = 0
		}
		owner[i] = proc
		acc += w
	}
	return owner
}

// binaryDissection splits the sequence into nprocs contiguous chunks by
// recursive bisection: each step cuts the (sub)sequence at the point that
// best balances weight between ceil(p/2) and floor(p/2) processors. This is
// the splitting strategy of pBD-ISP — cheap and coarse.
func binaryDissection(weights []float64, nprocs int) []int {
	owner := make([]int, len(weights))
	prefix := make([]float64, len(weights)+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	var rec func(lo, hi, procLo, procs int)
	rec = func(lo, hi, procLo, procs int) {
		if procs <= 1 || hi-lo <= 1 {
			for i := lo; i < hi; i++ {
				owner[i] = procLo
			}
			return
		}
		left := (procs + 1) / 2
		right := procs - left
		total := prefix[hi] - prefix[lo]
		target := total * float64(left) / float64(procs)
		// Find the cut minimizing deviation from the proportional target.
		cut := lo + 1
		best := -1.0
		for i := lo + 1; i < hi; i++ {
			dev := prefix[i] - prefix[lo] - target
			if dev < 0 {
				dev = -dev
			}
			if best < 0 || dev < best {
				best = dev
				cut = i
			}
		}
		rec(lo, cut, procLo, left)
		rec(cut, hi, procLo+left, right)
	}
	rec(0, len(weights), 0, nprocs)
	return owner
}

// weightedSequence splits the sequence into contiguous chunks whose weights
// are proportional to the given capacities — the heterogeneous variant used
// by the system-sensitive partitioner (Fig. 4).
func weightedSequence(weights []float64, capacities []float64) []int {
	owner := make([]int, len(weights))
	var total, capTotal float64
	for _, w := range weights {
		total += w
	}
	for _, c := range capacities {
		capTotal += c
	}
	if capTotal <= 0 {
		// Degenerate capacities: fall back to equal shares.
		return greedyPrefix(weights, len(capacities))
	}
	nprocs := len(capacities)
	proc := 0
	var acc float64
	target := total * capacities[0] / capTotal
	for i, w := range weights {
		if proc < nprocs-1 && acc > 0 && acc+w/2 > target {
			proc++
			acc = 0
			target = total * capacities[proc] / capTotal
		}
		owner[i] = proc
		acc += w
	}
	return owner
}

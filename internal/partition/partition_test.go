package partition

import (
	"math"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// testHierarchy builds a representative 3-level hierarchy: a refined slab
// and a refined blob with a deeper core.
func testHierarchy(t testing.TB) *samr.Hierarchy {
	t.Helper()
	h, err := samr.NewHierarchy(samr.MakeBox(64, 32, 32), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 (coords x2): slab and blob.
	if err := h.SetLevel(1, []samr.Box{
		{Lo: samr.Point{20, 0, 0}, Hi: samr.Point{36, 64, 64}},
		{Lo: samr.Point{80, 20, 20}, Hi: samr.Point{112, 48, 48}},
	}); err != nil {
		t.Fatal(err)
	}
	// Level 2 (coords x4): core of the blob.
	if err := h.SetLevel(2, []samr.Box{
		{Lo: samr.Point{170, 50, 50}, Hi: samr.Point{214, 86, 86}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

func checkAssignment(t *testing.T, h *samr.Hierarchy, a *Assignment) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := a.CoversHierarchy(h); err != nil {
		t.Fatal(err)
	}
}

func TestAllPartitionersProduceValidAssignments(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	for _, p := range All() {
		for _, nprocs := range []int{1, 2, 7, 16, 64} {
			a, err := p.Partition(h, wm, nprocs)
			if err != nil {
				t.Fatalf("%s/%d: %v", p.Name(), nprocs, err)
			}
			if a.NProcs != nprocs {
				t.Fatalf("%s: nprocs = %d", p.Name(), a.NProcs)
			}
			checkAssignment(t, h, a)
		}
	}
}

func TestPartitionerNames(t *testing.T) {
	want := []string{"SFC", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP", "ISP"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d partitioners, want %d", len(all), len(want))
	}
	for i, p := range all {
		if p.Name() != want[i] {
			t.Errorf("partitioner %d name %q, want %q", i, p.Name(), want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SFC", "G-MISP", "G-MISP+SP", "pBD-ISP", "SP-ISP", "ISP", "EqualBlock", "Heterogeneous", "PatchGreedy"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

func TestPartitionArgValidation(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	if _, err := (SFC{}).Partition(h, wm, 0); err == nil {
		t.Error("nprocs 0 accepted")
	}
	if _, err := (SFC{}).Partition(nil, wm, 4); err == nil {
		t.Error("nil hierarchy accepted")
	}
}

func TestSinglProcAssignsEverythingToZero(t *testing.T) {
	h := testHierarchy(t)
	a, err := (GMISPSP{}).Partition(h, samr.UniformWorkModel{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Owner {
		if o != 0 {
			t.Fatal("single-proc assignment uses nonzero owner")
		}
	}
	if a.Imbalance() != 0 {
		t.Fatalf("single-proc imbalance = %g", a.Imbalance())
	}
}

func TestImbalanceOrderingAcrossSuite(t *testing.T) {
	// The PAC trade-off the paper builds on: the optimal sequence
	// partitioners balance better than greedy, and coarse binary dissection
	// balances worst.
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	imb := map[string]float64{}
	for _, p := range All() {
		a, err := p.Partition(h, wm, 16)
		if err != nil {
			t.Fatal(err)
		}
		imb[p.Name()] = a.Imbalance()
	}
	if imb["SP-ISP"] > imb["ISP"] {
		t.Errorf("SP-ISP imbalance %.2f%% worse than ISP %.2f%% at equal granularity",
			imb["SP-ISP"], imb["ISP"])
	}
	if imb["pBD-ISP"] < imb["G-MISP+SP"] {
		t.Errorf("pBD-ISP imbalance %.2f%% better than G-MISP+SP %.2f%%", imb["pBD-ISP"], imb["G-MISP+SP"])
	}
	if imb["pBD-ISP"] < imb["SP-ISP"] {
		t.Errorf("coarse dissection imbalance %.2f%% better than fine optimal SP %.2f%%",
			imb["pBD-ISP"], imb["SP-ISP"])
	}
}

func TestCommOrderingCoarseVsFine(t *testing.T) {
	// Coarse granularity (pBD-ISP) must produce fewer messages and fewer
	// fragments than fine granularity (SP-ISP) at equal processor count —
	// that is how it "reduces communication overheads" on latency-bound
	// networks.
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	coarse, err := (PBDISP{}).Partition(h, wm, 16)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := (SPISP{}).Partition(h, wm, 16)
	if err != nil {
		t.Fatal(err)
	}
	cs := Communication(h, coarse)
	fs := Communication(h, fine)
	if cs.Messages >= fs.Messages {
		t.Errorf("pBD-ISP messages %g not below SP-ISP messages %g", cs.Messages, fs.Messages)
	}
	if len(coarse.Units) >= len(fine.Units) {
		t.Errorf("pBD-ISP units %d not below SP-ISP units %d", len(coarse.Units), len(fine.Units))
	}
}

func TestGreedyPrefix(t *testing.T) {
	owner := greedyPrefix([]float64{1, 1, 1, 1}, 2)
	if owner[0] != 0 || owner[3] != 1 {
		t.Fatalf("owners = %v", owner)
	}
	// Each proc gets a unit when counts match.
	owner = greedyPrefix([]float64{5, 1, 1}, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("owners = %v, want %v", owner, want)
		}
	}
	// Monotone non-decreasing owners (contiguity).
	owner = greedyPrefix([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 3)
	for i := 1; i < len(owner); i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("owners not contiguous: %v", owner)
		}
	}
}

func TestOptimalSequenceIsOptimal(t *testing.T) {
	// Brute-force check on small instances: the bottleneck achieved by
	// optimalSequence equals the true optimum over all contiguous splits.
	cases := [][]float64{
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{10, 1, 1, 1, 10},
		{1, 1, 1, 1, 1, 1, 1},
		{7},
		{2, 2, 2, 9},
	}
	for _, weights := range cases {
		for p := 1; p <= 4; p++ {
			owner := optimalSequence(weights, p)
			got := bottleneck(weights, owner, p)
			want := bruteForceBottleneck(weights, p)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("weights %v p=%d: bottleneck %g, optimum %g (owners %v)",
					weights, p, got, want, owner)
			}
		}
	}
}

func bottleneck(weights []float64, owner []int, p int) float64 {
	load := make([]float64, p)
	for i, w := range weights {
		load[owner[i]] += w
	}
	var m float64
	for _, v := range load {
		if v > m {
			m = v
		}
	}
	return m
}

// bruteForceBottleneck tries every contiguous split via DP.
func bruteForceBottleneck(weights []float64, p int) float64 {
	n := len(weights)
	prefix := make([]float64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	const inf = math.MaxFloat64
	dp := make([][]float64, p+1)
	for k := range dp {
		dp[k] = make([]float64, n+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= p; k++ {
		for i := 1; i <= n; i++ {
			for j := k - 1; j < i; j++ {
				if dp[k-1][j] == inf {
					continue
				}
				cost := math.Max(dp[k-1][j], prefix[i]-prefix[j])
				if cost < dp[k][i] {
					dp[k][i] = cost
				}
			}
		}
	}
	best := inf
	for k := 1; k <= p; k++ {
		if dp[k][n] < best {
			best = dp[k][n]
		}
	}
	return best
}

func TestBinaryDissection(t *testing.T) {
	owner := binaryDissection([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 4)
	counts := map[int]int{}
	for i := 1; i < len(owner); i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("owners not contiguous: %v", owner)
		}
	}
	for _, o := range owner {
		counts[o]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 2 {
			t.Fatalf("uniform dissection uneven: %v", owner)
		}
	}
	// Non-power-of-two processor counts are supported.
	owner = binaryDissection([]float64{1, 1, 1, 1, 1, 1}, 3)
	seen := map[int]bool{}
	for _, o := range owner {
		if o < 0 || o >= 3 {
			t.Fatalf("owner %d out of range", o)
		}
		seen[o] = true
	}
	if len(seen) != 3 {
		t.Fatalf("dissection left processors empty: %v", owner)
	}
}

func TestWeightedSequence(t *testing.T) {
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = 1
	}
	owner := weightedSequence(weights, []float64{3, 1})
	load := make([]float64, 2)
	for i := range weights {
		load[owner[i]] += weights[i]
	}
	// 3:1 capacity split of 100 units: proc0 near 75.
	if load[0] < 65 || load[0] > 85 {
		t.Fatalf("weighted split load = %v, want ~[75 25]", load)
	}
	// Zero capacities degrade to equal split without panicking.
	owner = weightedSequence(weights, []float64{0, 0})
	load = make([]float64, 2)
	for i := range weights {
		load[owner[i]] += weights[i]
	}
	if load[0] == 0 || load[1] == 0 {
		t.Fatalf("degenerate capacities starved a processor: %v", load)
	}
}

func TestHeterogeneousPartitioner(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	var p Heterogeneous
	a, err := p.PartitionWeighted(h, wm, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a)
	w := a.Work()
	if w[0] <= w[1] || w[0] <= w[2] {
		t.Fatalf("capacity-2 processor got %v", w)
	}
	if _, err := p.PartitionWeighted(h, wm, nil); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := p.PartitionWeighted(h, wm, []float64{1, -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	// Plain Partition falls back to equal shares.
	a2, err := p.Partition(h, wm, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a2)
}

func TestEqualBlockPartitioner(t *testing.T) {
	h := testHierarchy(t)
	a, err := (EqualBlock{}).Partition(h, samr.UniformWorkModel{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a)
	if a.Imbalance() > 100 {
		t.Fatalf("equal block imbalance = %.1f%%", a.Imbalance())
	}
}

func TestVariableGrainUnits(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	total := samr.HierarchyWork(h, wm)
	units := variableGrainUnits(h, wm, total/64, 2)
	var sum float64
	for _, u := range units {
		sum += u.Weight
		// No unit may exceed the threshold unless it is at minimum size.
		if u.Weight > total/64 && (u.Box.Dx(0) >= 4 || u.Box.Dx(1) >= 4 || u.Box.Dx(2) >= 4) {
			t.Fatalf("unit %v weight %g exceeds threshold %g", u.Box, u.Weight, total/64)
		}
	}
	if math.Abs(sum-total) > 1e-6*total {
		t.Fatalf("unit weights sum %g != total %g", sum, total)
	}
}

func TestBlockUnitsPatchGranularity(t *testing.T) {
	h := testHierarchy(t)
	units := blockUnits(h, samr.UniformWorkModel{}, 0)
	boxes := 0
	for _, lb := range h.Levels {
		boxes += len(lb)
	}
	if len(units) != boxes {
		t.Fatalf("patch granularity produced %d units for %d boxes", len(units), boxes)
	}
}

func TestMortonCurveOption(t *testing.T) {
	h := testHierarchy(t)
	dom := h.LevelDomain(h.Depth() - 1)
	curve := sfc.MustMorton(sfc.BitsFor(dom.Dx(0), dom.Dx(1), dom.Dx(2)))
	a, err := (SFC{Curve: curve}).Partition(h, samr.UniformWorkModel{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a)
}

func TestAssignmentValidateCatchesBadData(t *testing.T) {
	a := &Assignment{NProcs: 2, Units: []Unit{{Level: 0, Box: samr.MakeBox(2, 2, 2), Weight: 1}}, Owner: []int{5}}
	if err := a.Validate(); err == nil {
		t.Error("out-of-range owner accepted")
	}
	a = &Assignment{NProcs: 2, Units: []Unit{{Level: 0, Box: samr.MakeBox(2, 2, 2)}}, Owner: nil}
	if err := a.Validate(); err == nil {
		t.Error("owner/unit length mismatch accepted")
	}
	a = &Assignment{
		NProcs: 2,
		Units: []Unit{
			{Level: 0, Box: samr.MakeBox(4, 4, 4)},
			{Level: 0, Box: samr.Box{Lo: samr.Point{2, 2, 2}, Hi: samr.Point{6, 6, 6}}},
		},
		Owner: []int{0, 1},
	}
	if err := a.Validate(); err == nil {
		t.Error("overlapping units accepted")
	}
}

package partition

import "github.com/pragma-grid/pragma/internal/telemetry"

// metricPACSeconds times the PAC evaluation kernel — one BuildCommPlan:
// rasterization plus the fused communication sweep. This is the
// "partitioning-induced overhead" the runtime itself pays at every regrid
// for every candidate it evaluates, so it must stay cheap.
var metricPACSeconds = telemetry.Default.Histogram(
	"pragma_partition_pac_seconds",
	"Wall-clock duration of one PAC communication-plan build (rasterization + fused sweep).",
	nil)

package partition

import "github.com/pragma-grid/pragma/internal/telemetry"

// metricPACSeconds times the PAC evaluation kernel — one BuildCommPlan:
// rasterization plus the fused communication sweep. This is the
// "partitioning-induced overhead" the runtime itself pays at every regrid
// for every candidate it evaluates, so it must stay cheap.
var metricPACSeconds = telemetry.Default.Histogram(
	"pragma_partition_pac_seconds",
	"Wall-clock duration of one PAC communication-plan build (rasterization + fused sweep).",
	nil)

// metricPartitionSeconds times every partitioner invocation through the
// shared ISP pipeline — decompose, curve-order, split — labeled by
// partitioner so placement-time cost is visible per algorithm fleet-wide.
var metricPartitionSeconds = telemetry.Default.HistogramVec(
	"pragma_partition_seconds",
	"Wall-clock duration of one partitioner invocation (decompose, order, split), by partitioner.",
	nil, "partitioner")

// metricPartitionReuse tracks how much of the latest incremental partition
// was served from the PartitionPlan cache: 1 means the regrid was a pure
// locality delta, 0 a cold from-scratch rebuild.
var metricPartitionReuse = telemetry.Default.Gauge(
	"pragma_partition_incremental_reuse_ratio",
	"Fraction of units reused from the previous regrid's PartitionPlan in the latest incremental partition.")

package partition

import (
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
)

// flatHierarchy is a single-level hierarchy over the given extents.
func flatHierarchy(t testing.TB, nx, ny, nz int) *samr.Hierarchy {
	t.Helper()
	h, err := samr.NewHierarchy(samr.MakeBox(nx, ny, nz), 2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// manualAssignment builds an assignment directly from (box, owner) pairs on
// level 0.
func manualAssignment(nprocs int, pairs ...struct {
	b samr.Box
	o int
}) *Assignment {
	a := &Assignment{NProcs: nprocs}
	for _, p := range pairs {
		a.Units = append(a.Units, Unit{Level: 0, Box: p.b, Weight: float64(p.b.Volume())})
		a.Owner = append(a.Owner, p.o)
	}
	return a
}

type pair = struct {
	b samr.Box
	o int
}

func TestCommVolumeTwoHalves(t *testing.T) {
	// An 8x4x4 domain split into two 4x4x4 halves: the dividing plane has
	// 16 faces.
	h := flatHierarchy(t, 8, 4, 4)
	a := manualAssignment(2,
		pair{samr.MakeBox(4, 4, 4), 0},
		pair{samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, 1},
	)
	total, perProc := CommVolume(h, a)
	if total != 16 {
		t.Fatalf("comm volume = %g, want 16", total)
	}
	if perProc[0] != 16 || perProc[1] != 16 {
		t.Fatalf("per-proc comm = %v", perProc)
	}
}

func TestCommVolumeSameOwnerIsZero(t *testing.T) {
	h := flatHierarchy(t, 8, 4, 4)
	a := manualAssignment(2,
		pair{samr.MakeBox(4, 4, 4), 0},
		pair{samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, 0},
	)
	if total, _ := CommVolume(h, a); total != 0 {
		t.Fatalf("same-owner comm = %g", total)
	}
}

func TestCommVolumeInterLevel(t *testing.T) {
	// A level-1 patch whose coarse parent belongs to another processor
	// contributes interLevelWeight per fine cell.
	h := flatHierarchy(t, 8, 4, 4)
	if err := h.SetLevel(1, []samr.Box{{Lo: samr.Point{0, 0, 0}, Hi: samr.Point{4, 4, 4}}}); err != nil {
		t.Fatal(err)
	}
	a := &Assignment{
		NProcs: 2,
		Units: []Unit{
			{Level: 0, Box: samr.MakeBox(8, 4, 4), Weight: 1},
			{Level: 1, Box: samr.Box{Lo: samr.Point{0, 0, 0}, Hi: samr.Point{4, 4, 4}}, Weight: 1},
		},
		Owner: []int{0, 1},
	}
	total, perProc := CommVolume(h, a)
	// 4*4*4 fine cells with proc-0 parents, exchanged on each of the fine
	// level's Ratio=2 MIT sub-steps per coarse step.
	want := interLevelWeight * 64 * 2
	if total != want {
		t.Fatalf("inter-level comm = %g, want %g", total, want)
	}
	if perProc[0] != want || perProc[1] != want {
		t.Fatalf("per-proc inter-level comm = %v", perProc)
	}
}

func TestCommunicationMessages(t *testing.T) {
	// Three units in a row owned 0|1|0: two cross-processor unit pairs.
	h := flatHierarchy(t, 12, 4, 4)
	a := manualAssignment(2,
		pair{samr.MakeBox(4, 4, 4), 0},
		pair{samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, 1},
		pair{samr.Box{Lo: samr.Point{8, 0, 0}, Hi: samr.Point{12, 4, 4}}, 0},
	)
	st := Communication(h, a)
	if st.Messages != 2 {
		t.Fatalf("messages = %g, want 2", st.Messages)
	}
	if st.Volume != 32 {
		t.Fatalf("volume = %g, want 32", st.Volume)
	}
	if st.PerProcMessages[0] != 2 || st.PerProcMessages[1] != 2 {
		t.Fatalf("per-proc messages = %v", st.PerProcMessages)
	}
	// Same owner everywhere: no messages at all.
	b := manualAssignment(2,
		pair{samr.MakeBox(4, 4, 4), 1},
		pair{samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, 1},
		pair{samr.Box{Lo: samr.Point{8, 0, 0}, Hi: samr.Point{12, 4, 4}}, 1},
	)
	if st := Communication(h, b); st.Messages != 0 || st.Volume != 0 {
		t.Fatalf("same-owner stats = %+v", st)
	}
}

func TestMigrationFraction(t *testing.T) {
	h := flatHierarchy(t, 8, 4, 4)
	left := samr.MakeBox(4, 4, 4)
	right := samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}
	before := manualAssignment(2, pair{left, 0}, pair{right, 1})
	// Swap the halves: every cell moves.
	after := manualAssignment(2, pair{left, 1}, pair{right, 0})
	if got := MigrationFraction(h, before, h, after); got != 1 {
		t.Fatalf("full swap migration = %g", got)
	}
	// Identical assignment: nothing moves.
	if got := MigrationFraction(h, before, h, before); got != 0 {
		t.Fatalf("identity migration = %g", got)
	}
	// Shift the boundary by one plane: 16 of 128 cells move.
	shifted := manualAssignment(2,
		pair{samr.MakeBox(5, 4, 4), 0},
		pair{samr.Box{Lo: samr.Point{5, 0, 0}, Hi: samr.Point{8, 4, 4}}, 1},
	)
	if got := MigrationFraction(h, before, h, shifted); got != 16.0/128.0 {
		t.Fatalf("boundary shift migration = %g, want %g", got, 16.0/128.0)
	}
}

func TestMigrationIgnoresDisjointLevels(t *testing.T) {
	// Data on a level present only in the new hierarchy does not count.
	h0 := flatHierarchy(t, 8, 4, 4)
	h1 := flatHierarchy(t, 8, 4, 4)
	if err := h1.SetLevel(1, []samr.Box{{Lo: samr.Point{0, 0, 0}, Hi: samr.Point{4, 4, 4}}}); err != nil {
		t.Fatal(err)
	}
	before := manualAssignment(2, pair{samr.MakeBox(8, 4, 4), 0})
	after := &Assignment{
		NProcs: 2,
		Units: []Unit{
			{Level: 0, Box: samr.MakeBox(8, 4, 4), Weight: 1},
			{Level: 1, Box: samr.Box{Lo: samr.Point{0, 0, 0}, Hi: samr.Point{4, 4, 4}}, Weight: 1},
		},
		Owner: []int{0, 1},
	}
	if got := MigrationFraction(h0, before, h1, after); got != 0 {
		t.Fatalf("new-level migration = %g", got)
	}
}

func TestEvalQuality(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	a, err := (GMISPSP{}).Partition(h, wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := EvalQuality(h, a, nil, nil, 5*time.Millisecond)
	if q.CommVolume <= 0 {
		t.Error("comm volume should be positive for 8 procs")
	}
	if q.Imbalance < 0 {
		t.Error("negative imbalance")
	}
	if q.Migration != 0 {
		t.Error("migration without previous assignment should be 0")
	}
	if q.PartitionTime != 5*time.Millisecond {
		t.Error("partition time not recorded")
	}
	if q.Overhead < 1 {
		t.Errorf("overhead = %g, want >= 1 (at least one unit per box)", q.Overhead)
	}

	// With a previous assignment, migration is measured.
	b, err := (PBDISP{}).Partition(h, wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	q2 := EvalQuality(h, b, h, a, 0)
	if q2.Migration < 0 || q2.Migration > 1 {
		t.Fatalf("migration = %g outside [0,1]", q2.Migration)
	}
}

func TestCommVolumeScalesWithProcs(t *testing.T) {
	// More processors => more boundary.
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	a4, _ := (SFC{}).Partition(h, wm, 4)
	a32, _ := (SFC{}).Partition(h, wm, 32)
	c4, _ := CommVolume(h, a4)
	c32, _ := CommVolume(h, a32)
	if c32 <= c4 {
		t.Fatalf("comm at 32 procs (%g) not above 4 procs (%g)", c32, c4)
	}
}

func BenchmarkCommVolume(b *testing.B) {
	h := testHierarchy(b)
	wm := samr.UniformWorkModel{}
	a, err := (GMISPSP{}).Partition(h, wm, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CommVolume(h, a)
	}
}

func BenchmarkPartitionSuite(b *testing.B) {
	h := testHierarchy(b)
	wm := samr.UniformWorkModel{}
	for _, p := range All() {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Partition(h, wm, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

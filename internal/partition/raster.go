package partition

import (
	"sync/atomic"

	"github.com/pragma-grid/pragma/internal/samr"
)

// levelRaster is a dense owner map over the bounding box of one level's
// units; cells outside every unit hold -1.
type levelRaster struct {
	box   samr.Box
	nx    int
	nxy   int
	owner []int32
}

func newLevelRaster(boxes []samr.Box, values []int32) *levelRaster {
	var bb samr.Box
	for _, b := range boxes {
		bb = bb.Bound(b)
	}
	if bb.Empty() {
		return nil
	}
	r := &levelRaster{
		box:   bb,
		nx:    bb.Dx(0),
		nxy:   bb.Dx(0) * bb.Dx(1),
		owner: make([]int32, bb.Volume()),
	}
	for i := range r.owner {
		r.owner[i] = -1
	}
	for i, b := range boxes {
		r.paint(b, values[i])
	}
	return r
}

func (r *levelRaster) paint(b samr.Box, owner int32) {
	for z := b.Lo[2]; z < b.Hi[2]; z++ {
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			base := (z-r.box.Lo[2])*r.nxy + (y-r.box.Lo[1])*r.nx - r.box.Lo[0]
			for x := b.Lo[0]; x < b.Hi[0]; x++ {
				r.owner[base+x] = owner
			}
		}
	}
}

// at returns the owner of the cell at p, or -1 when p is outside the
// raster or unowned. The sequential reference kernel is written in terms
// of at; the production kernel sweeps the backing slice directly.
func (r *levelRaster) at(p samr.Point) int32 {
	if !r.box.Contains(p) {
		return -1
	}
	return r.owner[(p[2]-r.box.Lo[2])*r.nxy+(p[1]-r.box.Lo[1])*r.nx+(p[0]-r.box.Lo[0])]
}

// rasterizations counts assignment rasterizations process-wide. Regrid
// paths are expected to rasterize each assignment exactly once (one
// CommPlan shared by communication, adjacency, and migration); tests
// assert on deltas of Rasterizations.
var rasterizations atomic.Uint64

// Rasterizations returns the process-wide count of assignment
// rasterizations performed so far.
func Rasterizations() uint64 { return rasterizations.Load() }

// ownerRasters builds one processor-owner raster per level of the
// assignment (used by the sequential migration reference).
func ownerRasters(a *Assignment) map[int]*levelRaster {
	return buildRasters(a, func(i int) int32 { return int32(a.Owner[i]) })
}

// unitRasters builds one unit-index raster per level of the assignment.
func unitRasters(a *Assignment) map[int]*levelRaster {
	return buildRasters(a, func(i int) int32 { return int32(i) })
}

func buildRasters(a *Assignment, value func(i int) int32) map[int]*levelRaster {
	rasterizations.Add(1)
	perLevel := map[int][]int{}
	for i, u := range a.Units {
		perLevel[u.Level] = append(perLevel[u.Level], i)
	}
	out := map[int]*levelRaster{}
	for l, ids := range perLevel {
		boxes := make([]samr.Box, len(ids))
		values := make([]int32, len(ids))
		for k, i := range ids {
			boxes[k] = a.Units[i].Box
			values[k] = value(i)
		}
		if r := newLevelRaster(boxes, values); r != nil {
			out[l] = r
		}
	}
	return out
}

package partition

import (
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
)

// paperHierarchy builds an RM3D-paper-scale hierarchy: 128x32x32 base
// grid, factor-2 refinement, three levels, with a moving slab and a blob
// with a deeper core — the shapes the Table 4/5 experiments sweep.
func paperHierarchy(tb testing.TB) *samr.Hierarchy {
	tb.Helper()
	h, err := samr.NewHierarchy(samr.MakeBox(128, 32, 32), 2)
	if err != nil {
		tb.Fatal(err)
	}
	// Level 1 (coords x2, domain 256x64x64).
	if err := h.SetLevel(1, []samr.Box{
		{Lo: samr.Point{40, 0, 0}, Hi: samr.Point{72, 64, 64}},
		{Lo: samr.Point{160, 16, 16}, Hi: samr.Point{224, 56, 56}},
	}); err != nil {
		tb.Fatal(err)
	}
	// Level 2 (coords x4): slab sheet and blob core.
	if err := h.SetLevel(2, []samr.Box{
		{Lo: samr.Point{96, 16, 16}, Hi: samr.Point{128, 112, 112}},
		{Lo: samr.Point{352, 48, 48}, Hi: samr.Point{432, 104, 104}},
	}); err != nil {
		tb.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		tb.Fatal(err)
	}
	return h
}

// paperAssignments partitions the paper-scale hierarchy for 64 processors
// with two different partitioners, giving a (prev, new) pair for the
// migration component.
func paperAssignments(tb testing.TB) (*samr.Hierarchy, *Assignment, *Assignment) {
	tb.Helper()
	h := paperHierarchy(tb)
	wm := samr.UniformWorkModel{}
	a, err := (GMISPSP{}).Partition(h, wm, 64)
	if err != nil {
		tb.Fatal(err)
	}
	prev, err := (PBDISP{}).Partition(h, wm, 64)
	if err != nil {
		tb.Fatal(err)
	}
	return h, a, prev
}

// referenceEvalQuality mirrors the pre-CommPlan EvalQuality exactly: one
// reference communication sweep plus one reference migration sweep, each
// re-rasterizing — the "before" side of the kernel benchmark.
func referenceEvalQuality(h *samr.Hierarchy, a *Assignment, prevH *samr.Hierarchy, prev *Assignment, elapsed time.Duration) Quality {
	st, _ := ReferenceCommunication(h, a)
	q := Quality{
		CommVolume:    st.Volume,
		CommMessages:  st.Messages,
		Imbalance:     a.Imbalance(),
		PartitionTime: elapsed,
	}
	if prev != nil && prevH != nil {
		q.Migration = ReferenceMigrationFraction(prevH, prev, h, a)
	}
	boxes := 0
	for _, lb := range h.Levels {
		boxes += len(lb)
	}
	if boxes > 0 {
		q.Overhead = float64(len(a.Units)) / float64(boxes)
	}
	return q
}

func BenchmarkEvalQuality(b *testing.B) {
	h, a, prev := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalQuality(h, a, h, prev, 0)
	}
}

func BenchmarkEvalQualityReference(b *testing.B) {
	h, a, prev := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceEvalQuality(h, a, h, prev, 0)
	}
}

func BenchmarkAdjacency(b *testing.B) {
	h, a, _ := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Adjacency(h, a)
	}
}

func BenchmarkAdjacencyReference(b *testing.B) {
	h, a, _ := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceCommunication(h, a)
	}
}

func BenchmarkBuildCommPlan(b *testing.B) {
	h, a, _ := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCommPlan(h, a)
	}
}

// BenchmarkMigrationFrom measures the steady-state regrid cost of the
// migration component: both plans already exist (the previous cycle kept
// its plan), so only the diff sweep runs.
func BenchmarkMigrationFrom(b *testing.B) {
	h, a, prev := paperAssignments(b)
	plan := BuildCommPlan(h, a)
	prevPlan := BuildCommPlan(h, prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.MigrationFrom(prevPlan)
	}
}

func BenchmarkMigrationFractionReference(b *testing.B) {
	h, a, prev := paperAssignments(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceMigrationFraction(h, prev, h, a)
	}
}

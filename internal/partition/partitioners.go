package partition

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// The suite of patch- and domain-based partitioners named in §4.4 of the
// paper. All share the inverse space-filling curve (ISP) pipeline —
// decompose the hierarchy into units, order the units along a curve, split
// the ordered sequence — and differ in granularity and splitting strategy,
// which is exactly what gives each one its PAC trade-off:
//
//	SFC        fixed medium granularity, greedy split — the baseline.
//	G-MISP     variable granularity (heavy regions subdivide), greedy split.
//	G-MISP+SP  variable granularity + optimal sequence partitioning: best
//	           load balance among the cheap partitioners.
//	pBD-ISP    coarse granularity + p-way binary dissection: fastest, lowest
//	           communication and migration, worst balance.
//	SP-ISP     fine granularity + optimal sequence partitioning: best
//	           balance, highest overheads.
//	ISP        fine granularity, greedy split.

// SFC is the plain space-filling-curve partitioner.
type SFC struct {
	// Curve overrides the default Hilbert ordering (nil = Hilbert).
	Curve sfc.Curve
	// Granularity is the block side in level coordinates; 0 adapts it
	// to the hierarchy size and processor count.
	Granularity int
}

// Name implements Partitioner.
func (SFC) Name() string { return "SFC" }

// Partition implements Partitioner.
func (p SFC) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p SFC) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p SFC) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, nprocs, 10, 2, 20)
	}
	return pipelineSpec{
		decomp: decompSpec{kind: decompBlock, side: g},
		curve:  p.Curve,
		split:  greedyPrefix,
		cost:   1,
	}
}

// GMISP is the variable-grain geometric multilevel inverse SFC partitioner.
type GMISP struct {
	Curve sfc.Curve
	// ThresholdFactor scales the subdivision threshold total/(nprocs*F);
	// 0 means 4 (units subdivide until about a quarter of a processor's
	// ideal share).
	ThresholdFactor float64
	// MinSide is the smallest block side subdivision may produce (0 = 2).
	MinSide int
}

// Name implements Partitioner.
func (GMISP) Name() string { return "G-MISP" }

// Partition implements Partitioner.
func (p GMISP) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p GMISP) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p GMISP) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	return pipelineSpec{
		decomp: p.decomp(h, wm, nprocs),
		curve:  p.Curve,
		split:  greedyPrefix,
		cost:   1,
	}
}

func (p GMISP) decomp(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) decompSpec {
	f := p.ThresholdFactor
	if f == 0 {
		f = 4
	}
	minSide := p.MinSide
	if minSide == 0 {
		minSide = 2
	}
	total := samr.HierarchyWork(h, wm)
	return decompSpec{
		kind:      decompVarGrain,
		threshold: total / (float64(nprocs) * f),
		minSide:   minSide,
	}
}

// GMISPSP is G-MISP with optimal sequence partitioning (G-MISP+SP).
type GMISPSP struct {
	Curve           sfc.Curve
	ThresholdFactor float64
	MinSide         int
}

// Name implements Partitioner.
func (GMISPSP) Name() string { return "G-MISP+SP" }

// Partition implements Partitioner.
func (p GMISPSP) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p GMISPSP) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p GMISPSP) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	inner := GMISP{Curve: p.Curve, ThresholdFactor: p.ThresholdFactor, MinSide: p.MinSide}
	return pipelineSpec{
		decomp: inner.decomp(h, wm, nprocs),
		curve:  p.Curve,
		split:  optimalSequence,
		cost:   seqSplitCost,
	}
}

// PBDISP is the p-way binary dissection inverse SFC partitioner.
type PBDISP struct {
	Curve sfc.Curve
	// Granularity is the (coarse) block side; 0 adapts it to the
	// hierarchy size and processor count.
	Granularity int
}

// Name implements Partitioner.
func (PBDISP) Name() string { return "pBD-ISP" }

// Partition implements Partitioner.
func (p PBDISP) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p PBDISP) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p PBDISP) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, nprocs, 3, 4, 24)
	}
	return pipelineSpec{
		decomp: decompSpec{kind: decompBlock, side: g},
		curve:  p.Curve,
		split:  binaryDissection,
		cost:   log2(nprocs),
	}
}

// SPISP is the pure sequence partitioner with inverse SFC at fine
// granularity.
type SPISP struct {
	Curve sfc.Curve
	// Granularity is the (fine) block side; 0 adapts it to the
	// hierarchy size and processor count.
	Granularity int
}

// Name implements Partitioner.
func (SPISP) Name() string { return "SP-ISP" }

// Partition implements Partitioner.
func (p SPISP) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p SPISP) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p SPISP) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, nprocs, 48, 2, 8)
	}
	return pipelineSpec{
		decomp: decompSpec{kind: decompBlock, side: g},
		curve:  p.Curve,
		split:  optimalSequence,
		cost:   seqSplitCost,
	}
}

// ISP is the plain fine-granularity inverse SFC partitioner.
type ISP struct {
	Curve sfc.Curve
	// Granularity is the (fine) block side; 0 adapts it to the
	// hierarchy size and processor count.
	Granularity int
}

// Name implements Partitioner.
func (ISP) Name() string { return "ISP" }

// Partition implements Partitioner.
func (p ISP) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, nil)
}

// PartitionIncremental implements IncrementalPartitioner.
func (p ISP) PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	return partitionPipeline(p, h, wm, nprocs, plan)
}

func (p ISP) pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec {
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, nprocs, 48, 2, 8)
	}
	return pipelineSpec{
		decomp: decompSpec{kind: decompBlock, side: g},
		curve:  p.Curve,
		split:  greedyPrefix,
		cost:   1,
	}
}

// ByName returns the partitioner registered under the paper's name, or an
// error listing the known names. This is the partitioner database the
// adaptive meta-partitioner selects from.
func ByName(name string) (Partitioner, error) {
	switch name {
	case "SFC":
		return SFC{}, nil
	case "G-MISP":
		return GMISP{}, nil
	case "G-MISP+SP":
		return GMISPSP{}, nil
	case "pBD-ISP":
		return PBDISP{}, nil
	case "SP-ISP":
		return SPISP{}, nil
	case "ISP":
		return ISP{}, nil
	case "EqualBlock":
		return EqualBlock{}, nil
	case "Heterogeneous":
		return Heterogeneous{}, nil
	case "PatchGreedy":
		return PatchGreedy{}, nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q (known: SFC, G-MISP, G-MISP+SP, pBD-ISP, SP-ISP, ISP, EqualBlock, Heterogeneous, PatchGreedy)", name)
	}
}

// All returns the ISP partitioner suite in the order the paper lists it.
func All() []Partitioner {
	return []Partitioner{SFC{}, GMISP{}, GMISPSP{}, PBDISP{}, SPISP{}, ISP{}}
}

// seqSplitCost is the relative cost of optimal sequence partitioning: the
// bottleneck binary search performs ~60 greedy verification sweeps.
const seqSplitCost = 60

// log2 returns log base 2 of n, at least 1, for dissection split cost.
func log2(n int) float64 {
	c := 1.0
	for n > 2 {
		n /= 2
		c++
	}
	return c
}

// prepare runs the shared pipeline steps: validate inputs, build units, and
// order them along the curve.
func prepare(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, gen func() []Unit, curve sfc.Curve) ([]Unit, error) {
	if err := checkArgs(h, nprocs); err != nil {
		return nil, err
	}
	units := gen()
	if len(units) == 0 {
		return nil, fmt.Errorf("partition: hierarchy produced no units")
	}
	if curve == nil {
		curve = curveFor(h)
	}
	orderUnits(units, h, curve)
	return units, nil
}

func checkArgs(h *samr.Hierarchy, nprocs int) error {
	if h == nil || h.Depth() == 0 {
		return fmt.Errorf("partition: nil or empty hierarchy")
	}
	if nprocs < 1 {
		return fmt.Errorf("partition: nprocs %d < 1", nprocs)
	}
	return nil
}

func weightsOf(units []Unit) []float64 {
	w := make([]float64, len(units))
	for i, u := range units {
		w[i] = u.Weight
	}
	return w
}

func assemble(units []Unit, owner []int, nprocs int) *Assignment {
	return &Assignment{NProcs: nprocs, Units: units, Owner: owner, SplitCost: 1}
}

// assembleWith is assemble with an explicit splitting-algorithm cost.
func assembleWith(units []Unit, owner []int, nprocs int, splitCost float64) *Assignment {
	a := assemble(units, owner, nprocs)
	a.SplitCost = splitCost
	return a
}

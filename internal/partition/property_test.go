package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pragma-grid/pragma/internal/samr"
)

// randomHierarchy builds a valid random 2-3 level hierarchy from a seed.
func randomHierarchy(seed int64) *samr.Hierarchy {
	rng := rand.New(rand.NewSource(seed))
	nx := 16 + 8*rng.Intn(4)
	ny := 8 + 8*rng.Intn(3)
	nz := 8 + 8*rng.Intn(3)
	h, err := samr.NewHierarchy(samr.MakeBox(nx, ny, nz), 2)
	if err != nil {
		panic(err)
	}
	// Level 1: flag random blobs, cluster them (guarantees disjointness
	// and nesting by construction).
	flags := samr.NewFlags(h.Domain)
	for b := 0; b < 1+rng.Intn(5); b++ {
		lo := samr.Point{rng.Intn(nx - 4), rng.Intn(ny - 4), rng.Intn(nz - 4)}
		flags.SetBox(samr.Box{Lo: lo, Hi: samr.Point{
			lo[0] + 2 + rng.Intn(6), lo[1] + 2 + rng.Intn(4), lo[2] + 2 + rng.Intn(4)}})
	}
	boxes := samr.Cluster(flags, samr.DefaultClusterOptions())
	if len(boxes) == 0 {
		return h
	}
	level1 := make([]samr.Box, len(boxes))
	for i, b := range boxes {
		level1[i] = b.Refine(2)
	}
	if err := h.SetLevel(1, level1); err != nil {
		panic(err)
	}
	if err := h.Validate(); err != nil {
		panic(err)
	}
	return h
}

// TestPartitionersPropertyRandomHierarchies is the suite-wide property
// test: for random hierarchies and processor counts, every partitioner
// must produce a valid assignment that exactly covers the hierarchy, with
// total weight preserved.
func TestPartitionersPropertyRandomHierarchies(t *testing.T) {
	wm := samr.UniformWorkModel{}
	suite := append(All(), EqualBlock{}, Heterogeneous{}, PatchGreedy{})
	f := func(seed int64, procsRaw uint8) bool {
		h := randomHierarchy(seed)
		nprocs := 1 + int(procsRaw%32)
		for _, p := range suite {
			a, err := p.Partition(h, wm, nprocs)
			if err != nil {
				t.Logf("seed %d procs %d %s: %v", seed, nprocs, p.Name(), err)
				return false
			}
			if err := a.Validate(); err != nil {
				t.Logf("seed %d procs %d %s: %v", seed, nprocs, p.Name(), err)
				return false
			}
			if err := a.CoversHierarchy(h); err != nil {
				t.Logf("seed %d procs %d %s: %v", seed, nprocs, p.Name(), err)
				return false
			}
			total := samr.HierarchyWork(h, wm)
			if diff := a.TotalWeight() - total; diff > 1e-6*total || diff < -1e-6*total {
				t.Logf("seed %d procs %d %s: weight %g vs %g", seed, nprocs, p.Name(), a.TotalWeight(), total)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalNeverWorseThanGreedyProperty: for random weight sequences,
// optimal sequence partitioning never produces a worse bottleneck than
// greedy splitting.
func TestOptimalNeverWorseThanGreedyProperty(t *testing.T) {
	f := func(seed int64, procsRaw uint8, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%64)
		nprocs := 1 + int(procsRaw%16)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()*10
		}
		greedy := bottleneck(weights, greedyPrefix(weights, nprocs), nprocs)
		optimal := bottleneck(weights, optimalSequence(weights, nprocs), nprocs)
		return optimal <= greedy+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestContiguityProperty: every curve-order splitter produces contiguous,
// monotone owner sequences (the defining ISP property).
func TestContiguityProperty(t *testing.T) {
	f := func(seed int64, procsRaw uint8, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%100)
		nprocs := 1 + int(procsRaw%16)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 5
		}
		for _, split := range [][]int{
			greedyPrefix(weights, nprocs),
			optimalSequence(weights, nprocs),
			binaryDissection(weights, nprocs),
			weightedSequence(weights, make([]float64, nprocs)), // degenerate caps
		} {
			if len(split) != n {
				return false
			}
			for i := 1; i < n; i++ {
				if split[i] < split[i-1] || split[i] >= nprocs || split[i] < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedSequenceProportionalityProperty: chunk loads track capacities
// within one unit's weight for uniform unit weights.
func TestWeightedSequenceProportionalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
		nprocs := 2 + rng.Intn(6)
		caps := make([]float64, nprocs)
		var capSum float64
		for i := range caps {
			caps[i] = 0.2 + rng.Float64()
			capSum += caps[i]
		}
		owner := weightedSequence(weights, caps)
		load := make([]float64, nprocs)
		for i := range weights {
			load[owner[i]] += weights[i]
		}
		for p := 0; p < nprocs; p++ {
			want := float64(n) * caps[p] / capSum
			diff := load[p] - want
			if diff < 0 {
				diff = -diff
			}
			// Within a couple of units of the proportional target.
			if diff > 3 {
				t.Logf("seed %d: proc %d load %g want %g (caps %v)", seed, p, load[p], want, caps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

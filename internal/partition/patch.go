package partition

import (
	"sort"

	"github.com/pragma-grid/pragma/internal/samr"
)

// PatchGreedy is a patch-based partitioner (§4.4 mentions "a suite of
// available patch and domain based partitioners"): whole hierarchy boxes
// are assigned as units — never split — to the least-loaded processor in
// decreasing weight order (LPT scheduling). Patch-based partitioning
// preserves box integrity (no partitioning-induced fragmentation at all,
// Overhead = 1) at the cost of load balance when patches are few or
// uneven, and of communication locality, since assignment ignores
// geometry.
type PatchGreedy struct{}

// Name implements Partitioner.
func (PatchGreedy) Name() string { return "PatchGreedy" }

// Partition implements Partitioner.
func (PatchGreedy) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	if err := checkArgs(h, nprocs); err != nil {
		return nil, err
	}
	units := blockUnits(h, wm, 0) // patch granularity: whole boxes
	// LPT: heaviest first onto the least-loaded processor.
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return units[order[a]].Weight > units[order[b]].Weight })
	load := make([]float64, nprocs)
	owner := make([]int, len(units))
	for _, i := range order {
		best := 0
		for p := 1; p < nprocs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		owner[i] = best
		load[best] += units[i].Weight
	}
	return assemble(units, owner, nprocs), nil
}

var _ Partitioner = PatchGreedy{}

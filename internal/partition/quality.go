package partition

import (
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Quality is the five-component metric the paper defines (§4.1) to
// characterize a PAC (partitioner, application, computer system) tuple:
// "Communication requirements, Load imbalance, Amount of data migration,
// Partitioning time, and Partitioning induced overheads."
type Quality struct {
	// CommVolume is the number of cell faces that cross processor
	// boundaries (intra-level ghost exchange) plus the weighted
	// inter-level transfer volume — the per-step communication requirement.
	CommVolume float64
	// CommMessages is the number of message events per coarse step:
	// distinct cross-processor unit-pair adjacencies, each weighted by how
	// often its level exchanges ghosts per coarse step (Ratio^level under
	// MIT sub-cycling). Coarse-granularity partitioners (pBD-ISP) win
	// here, which is how they "reduce communication overheads" on
	// latency-bound networks.
	CommMessages float64
	// Imbalance is the percentage load imbalance, 100*(max-avg)/avg.
	Imbalance float64
	// Migration is the fraction of co-resident grid data whose owner
	// changed relative to the previous assignment (0 when no previous
	// assignment is given).
	Migration float64
	// PartitionTime is how long the partitioner ran.
	PartitionTime time.Duration
	// Overhead is the fragmentation the partitioner induced: units emitted
	// per hierarchy box.
	Overhead float64
}

// interLevelWeight scales inter-level prolongation/restriction transfers
// relative to per-step ghost exchange: level transfers happen once per
// sub-cycle rather than per ghost-fill.
const interLevelWeight = 0.25

// EvalQuality computes the full PAC metric for an assignment. prev and
// prevH may be nil when there is no previous partitioning (migration is 0).
// Callers evaluating several candidates, or holding the previous cycle's
// plan, should use BuildCommPlan + EvalQualityPlan directly to avoid
// re-rasterizing.
func EvalQuality(h *samr.Hierarchy, a *Assignment, prevH *samr.Hierarchy, prev *Assignment, elapsed time.Duration) Quality {
	plan := BuildCommPlan(h, a)
	var prevPlan *CommPlan
	if prev != nil && prevH != nil {
		prevPlan = BuildRasterPlan(prevH, prev)
	}
	return EvalQualityPlan(plan, prevPlan, elapsed)
}

// EvalQualityPlan assembles the PAC metric from an already-built plan,
// measuring migration against the previous cycle's plan (nil for none).
// No rasterization or sweeping happens here beyond the migration diff.
func EvalQualityPlan(plan *CommPlan, prevPlan *CommPlan, elapsed time.Duration) Quality {
	q := Quality{
		CommVolume:    plan.Stats.Volume,
		CommMessages:  plan.Stats.Messages,
		Imbalance:     plan.A.Imbalance(),
		PartitionTime: elapsed,
	}
	if prevPlan != nil {
		q.Migration = plan.MigrationFrom(prevPlan)
	}
	boxes := 0
	for _, lb := range plan.H.Levels {
		boxes += len(lb)
	}
	if boxes > 0 {
		q.Overhead = float64(len(plan.A.Units)) / float64(boxes)
	}
	return q
}

// CommStats aggregates an assignment's communication requirement.
type CommStats struct {
	// Volume is the per-coarse-step ghost-exchange volume in cell faces:
	// faces joining cells on different processors, weighted by Ratio^level
	// (a level-l boundary is exchanged on every one of its Ratio^l MIT
	// sub-steps), plus interLevelWeight times the weighted volume of fine
	// cells whose parent coarse cell lives on a different processor.
	Volume float64
	// Messages counts message events per coarse step: distinct unit pairs
	// that are face-adjacent (or in a fine/coarse parent relation) and
	// owned by different processors, weighted by the same per-level
	// exchange frequency.
	Messages float64
	// PerProcVolume[p] is processor p's share of Volume (each face or
	// transfer touches both endpoint processors).
	PerProcVolume []float64
	// PerProcMessages[p] is processor p's share of Messages.
	PerProcMessages []float64
}

// UnitPair is one cross-processor adjacency: the two units exchange ghost
// data every step.
type UnitPair struct {
	// U1 and U2 index Assignment.Units; Owner[U1] != Owner[U2].
	U1, U2 int
	// Faces is the unweighted contact area in cell faces (inter-level
	// parent transfers count their weighted volume).
	Faces float64
	// Frequency is the per-coarse-step exchange frequency (Ratio^level).
	Frequency float64
}

// Adjacency returns every cross-processor unit pair of the assignment —
// the message pattern a distributed executor must realize. Callers that
// also need CommStats should call BuildCommPlan once instead.
func Adjacency(h *samr.Hierarchy, a *Assignment) []UnitPair {
	return BuildCommPlan(h, a).Pairs
}

// Communication computes the assignment's communication statistics with
// the fused single-pass kernel. Callers that also need the unit pairs or
// a later migration diff should call BuildCommPlan once instead.
func Communication(h *samr.Hierarchy, a *Assignment) CommStats {
	return BuildCommPlan(h, a).Stats
}

// CommVolume is a convenience wrapper returning the total communication
// volume and the per-processor shares.
func CommVolume(h *samr.Hierarchy, a *Assignment) (total float64, perProc []float64) {
	st := Communication(h, a)
	return st.Volume, st.PerProcVolume
}

// MigrationFraction returns the fraction of grid data present in both the
// previous and the new configuration whose owning processor changed —
// the paper's "amount of data migration" component. Levels are compared
// independently; cells that exist only in one configuration (newly refined
// or de-refined) do not count. Callers holding CommPlans for both sides
// should use CommPlan.MigrationFrom, which reuses the cached rasters.
func MigrationFraction(prevH *samr.Hierarchy, prev *Assignment, h *samr.Hierarchy, a *Assignment) float64 {
	return BuildRasterPlan(h, a).MigrationFrom(BuildRasterPlan(prevH, prev))
}

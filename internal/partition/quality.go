package partition

import (
	"sort"
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Quality is the five-component metric the paper defines (§4.1) to
// characterize a PAC (partitioner, application, computer system) tuple:
// "Communication requirements, Load imbalance, Amount of data migration,
// Partitioning time, and Partitioning induced overheads."
type Quality struct {
	// CommVolume is the number of cell faces that cross processor
	// boundaries (intra-level ghost exchange) plus the weighted
	// inter-level transfer volume — the per-step communication requirement.
	CommVolume float64
	// CommMessages is the number of message events per coarse step:
	// distinct cross-processor unit-pair adjacencies, each weighted by how
	// often its level exchanges ghosts per coarse step (Ratio^level under
	// MIT sub-cycling). Coarse-granularity partitioners (pBD-ISP) win
	// here, which is how they "reduce communication overheads" on
	// latency-bound networks.
	CommMessages float64
	// Imbalance is the percentage load imbalance, 100*(max-avg)/avg.
	Imbalance float64
	// Migration is the fraction of co-resident grid data whose owner
	// changed relative to the previous assignment (0 when no previous
	// assignment is given).
	Migration float64
	// PartitionTime is how long the partitioner ran.
	PartitionTime time.Duration
	// Overhead is the fragmentation the partitioner induced: units emitted
	// per hierarchy box.
	Overhead float64
}

// interLevelWeight scales inter-level prolongation/restriction transfers
// relative to per-step ghost exchange: level transfers happen once per
// sub-cycle rather than per ghost-fill.
const interLevelWeight = 0.25

// EvalQuality computes the full PAC metric for an assignment. prev and
// prevH may be nil when there is no previous partitioning (migration is 0).
func EvalQuality(h *samr.Hierarchy, a *Assignment, prevH *samr.Hierarchy, prev *Assignment, elapsed time.Duration) Quality {
	comm := Communication(h, a)
	q := Quality{
		CommVolume:    comm.Volume,
		CommMessages:  comm.Messages,
		Imbalance:     a.Imbalance(),
		PartitionTime: elapsed,
	}
	if prev != nil && prevH != nil {
		q.Migration = MigrationFraction(prevH, prev, h, a)
	}
	boxes := 0
	for _, lb := range h.Levels {
		boxes += len(lb)
	}
	if boxes > 0 {
		q.Overhead = float64(len(a.Units)) / float64(boxes)
	}
	return q
}

// levelRaster is a dense owner map over the bounding box of one level's
// units; cells outside every unit hold -1.
type levelRaster struct {
	box   samr.Box
	nx    int
	nxy   int
	owner []int32
}

func newLevelRaster(boxes []samr.Box, values []int32) *levelRaster {
	var bb samr.Box
	for _, b := range boxes {
		bb = bb.Bound(b)
	}
	if bb.Empty() {
		return nil
	}
	r := &levelRaster{
		box:   bb,
		nx:    bb.Dx(0),
		nxy:   bb.Dx(0) * bb.Dx(1),
		owner: make([]int32, bb.Volume()),
	}
	for i := range r.owner {
		r.owner[i] = -1
	}
	for i, b := range boxes {
		r.paint(b, values[i])
	}
	return r
}

func (r *levelRaster) paint(b samr.Box, owner int32) {
	for z := b.Lo[2]; z < b.Hi[2]; z++ {
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			base := (z-r.box.Lo[2])*r.nxy + (y-r.box.Lo[1])*r.nx - r.box.Lo[0]
			for x := b.Lo[0]; x < b.Hi[0]; x++ {
				r.owner[base+x] = owner
			}
		}
	}
}

// at returns the owner of the cell at p, or -1 when p is outside the
// raster or unowned.
func (r *levelRaster) at(p samr.Point) int32 {
	if !r.box.Contains(p) {
		return -1
	}
	return r.owner[(p[2]-r.box.Lo[2])*r.nxy+(p[1]-r.box.Lo[1])*r.nx+(p[0]-r.box.Lo[0])]
}

// rasters builds one owner raster per level of the assignment.
func rasters(a *Assignment) map[int]*levelRaster {
	return buildRasters(a, func(i int) int32 { return int32(a.Owner[i]) })
}

// unitRasters builds one unit-index raster per level of the assignment.
func unitRasters(a *Assignment) map[int]*levelRaster {
	return buildRasters(a, func(i int) int32 { return int32(i) })
}

func buildRasters(a *Assignment, value func(i int) int32) map[int]*levelRaster {
	perLevel := map[int][]int{}
	for i, u := range a.Units {
		perLevel[u.Level] = append(perLevel[u.Level], i)
	}
	out := map[int]*levelRaster{}
	for l, ids := range perLevel {
		boxes := make([]samr.Box, len(ids))
		values := make([]int32, len(ids))
		for k, i := range ids {
			boxes[k] = a.Units[i].Box
			values[k] = value(i)
		}
		if r := newLevelRaster(boxes, values); r != nil {
			out[l] = r
		}
	}
	return out
}

// CommStats aggregates an assignment's communication requirement.
type CommStats struct {
	// Volume is the per-coarse-step ghost-exchange volume in cell faces:
	// faces joining cells on different processors, weighted by Ratio^level
	// (a level-l boundary is exchanged on every one of its Ratio^l MIT
	// sub-steps), plus interLevelWeight times the weighted volume of fine
	// cells whose parent coarse cell lives on a different processor.
	Volume float64
	// Messages counts message events per coarse step: distinct unit pairs
	// that are face-adjacent (or in a fine/coarse parent relation) and
	// owned by different processors, weighted by the same per-level
	// exchange frequency.
	Messages float64
	// PerProcVolume[p] is processor p's share of Volume (each face or
	// transfer touches both endpoint processors).
	PerProcVolume []float64
	// PerProcMessages[p] is processor p's share of Messages.
	PerProcMessages []float64
}

// UnitPair is one cross-processor adjacency: the two units exchange ghost
// data every step.
type UnitPair struct {
	// U1 and U2 index Assignment.Units; Owner[U1] != Owner[U2].
	U1, U2 int
	// Faces is the unweighted contact area in cell faces (inter-level
	// parent transfers count their weighted volume).
	Faces float64
	// Frequency is the per-coarse-step exchange frequency (Ratio^level).
	Frequency float64
}

// Adjacency returns every cross-processor unit pair of the assignment —
// the message pattern a distributed executor must realize.
func Adjacency(h *samr.Hierarchy, a *Assignment) []UnitPair {
	_, pairs := communication(h, a)
	return pairs
}

// Communication computes the assignment's communication statistics by
// rasterizing unit ids per level and sweeping cell faces.
func Communication(h *samr.Hierarchy, a *Assignment) CommStats {
	st, _ := communication(h, a)
	return st
}

func communication(h *samr.Hierarchy, a *Assignment) (CommStats, []UnitPair) {
	st := CommStats{
		PerProcVolume:   make([]float64, a.NProcs),
		PerProcMessages: make([]float64, a.NProcs),
	}
	rs := unitRasters(a)
	pairIdx := map[uint64]int{}
	var pairList []UnitPair
	record := func(u1, u2 int32, vol, freq float64) {
		o1, o2 := a.Owner[u1], a.Owner[u2]
		if o1 == o2 {
			return
		}
		wvol := vol * freq
		st.Volume += wvol
		st.PerProcVolume[o1] += wvol
		st.PerProcVolume[o2] += wvol
		lo, hi := u1, u2
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(uint32(hi))
		i, seen := pairIdx[key]
		if !seen {
			pairIdx[key] = len(pairList)
			pairList = append(pairList, UnitPair{U1: int(lo), U2: int(hi), Frequency: freq})
			i = len(pairList) - 1
			st.Messages += freq
			st.PerProcMessages[o1] += freq
			st.PerProcMessages[o2] += freq
		}
		pairList[i].Faces += vol
	}
	// Intra-level ghost faces. A level-l boundary is exchanged on each of
	// the level's Ratio^l MIT sub-steps per coarse step. Levels are visited
	// in order so pair enumeration is deterministic.
	levels := make([]int, 0, len(rs))
	for l := range rs {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		r := rs[l]
		freq := 1.0
		for i := 0; i < l; i++ {
			freq *= float64(h.Ratio)
		}
		b := r.box
		for z := b.Lo[2]; z < b.Hi[2]; z++ {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for x := b.Lo[0]; x < b.Hi[0]; x++ {
					u := r.at(samr.Point{x, y, z})
					if u < 0 {
						continue
					}
					for _, n := range [3]samr.Point{{x + 1, y, z}, {x, y + 1, z}, {x, y, z + 1}} {
						nu := r.at(n)
						if nu >= 0 && nu != u {
							record(u, nu, 1, freq)
						}
					}
				}
			}
		}
	}
	// Inter-level transfers: fine cell vs parent coarse cell, exchanged on
	// every fine sub-step.
	for l := 1; l < h.Depth(); l++ {
		fine, okF := rs[l]
		coarse, okC := rs[l-1]
		if !okF || !okC {
			continue
		}
		freq := 1.0
		for i := 0; i < l; i++ {
			freq *= float64(h.Ratio)
		}
		b := fine.box
		for z := b.Lo[2]; z < b.Hi[2]; z++ {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for x := b.Lo[0]; x < b.Hi[0]; x++ {
					fu := fine.at(samr.Point{x, y, z})
					if fu < 0 {
						continue
					}
					cu := coarse.at(samr.Point{x / h.Ratio, y / h.Ratio, z / h.Ratio})
					if cu >= 0 && cu != fu {
						record(fu, cu, interLevelWeight, freq)
					}
				}
			}
		}
	}
	return st, pairList
}

// CommVolume is a convenience wrapper returning the total communication
// volume and the per-processor shares.
func CommVolume(h *samr.Hierarchy, a *Assignment) (total float64, perProc []float64) {
	st := Communication(h, a)
	return st.Volume, st.PerProcVolume
}

// MigrationFraction returns the fraction of grid data present in both the
// previous and the new configuration whose owning processor changed —
// the paper's "amount of data migration" component. Levels are compared
// independently; cells that exist only in one configuration (newly refined
// or de-refined) do not count.
func MigrationFraction(prevH *samr.Hierarchy, prev *Assignment, h *samr.Hierarchy, a *Assignment) float64 {
	prevR := rasters(prev)
	newR := rasters(a)
	var both, moved int64
	for l, nr := range newR {
		pr, ok := prevR[l]
		if !ok {
			continue
		}
		common, ok := nr.box.Intersect(pr.box)
		if !ok {
			continue
		}
		for z := common.Lo[2]; z < common.Hi[2]; z++ {
			for y := common.Lo[1]; y < common.Hi[1]; y++ {
				for x := common.Lo[0]; x < common.Hi[0]; x++ {
					p := samr.Point{x, y, z}
					po, no := pr.at(p), nr.at(p)
					if po < 0 || no < 0 {
						continue
					}
					both++
					if po != no {
						moved++
					}
				}
			}
		}
	}
	if both == 0 {
		return 0
	}
	return float64(moved) / float64(both)
}

package partition

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
)

// CommPlan is everything the runtime derives from rasterizing one
// assignment: the communication statistics, the cross-processor unit-pair
// adjacencies a distributed executor must realize, and the per-level unit
// rasters themselves (reused by MigrationFrom at the next regrid instead
// of re-rasterizing the outgoing assignment). Build it once per regrid and
// thread it through every layer that needs any of the three.
//
// The plan is immutable after construction and safe for concurrent reads.
type CommPlan struct {
	// H and A are the hierarchy and assignment the plan was built for.
	H *samr.Hierarchy
	A *Assignment
	// Stats is the assignment's communication requirement. Only populated
	// by BuildCommPlan; BuildRasterPlan leaves it zero.
	Stats CommStats
	// Pairs lists every cross-processor unit-pair adjacency in canonical
	// order (levels ascending, then sweep order z, y, x; +x/+y/+z faces
	// before the coarse-parent relation at each cell). Only populated by
	// BuildCommPlan.
	Pairs []UnitPair

	rasters map[int]*levelRaster
}

// parallelCellThreshold is the swept-cell count below which the kernels
// stay on the calling goroutine: tiny rasters are not worth the fan-out.
// Results are bit-identical either way.
const parallelCellThreshold = 1 << 15

// BuildCommPlan rasterizes the assignment once and runs the fused
// single-pass communication kernel over it: one strided sweep per level
// computes the intra-level ghost faces and the inter-level parent
// transfers together, parallelized across z-slabs. The result is
// bit-identical to ReferenceCommunication at any GOMAXPROCS: every
// contribution is a multiple of a quarter face accumulated in integers,
// so no floating-point rounding depends on the slab decomposition.
func BuildCommPlan(h *samr.Hierarchy, a *Assignment) *CommPlan {
	start := time.Now()
	p := &CommPlan{H: h, A: a, rasters: unitRasters(a)}
	p.Stats, p.Pairs = sweepComm(h, a, p.rasters)
	metricPACSeconds.Observe(time.Since(start).Seconds())
	return p
}

// BuildRasterPlan rasterizes the assignment without running the
// communication sweep: Stats and Pairs are left empty. Use it when a plan
// is needed only as an operand of MigrationFrom (e.g. the previous
// assignment of a freshly resumed run, whose communication was already
// accounted in an earlier cycle).
func BuildRasterPlan(h *samr.Hierarchy, a *Assignment) *CommPlan {
	return &CommPlan{H: h, A: a, rasters: unitRasters(a)}
}

// MigrationFrom returns the fraction of grid data present in both plans'
// configurations whose owning processor changed — the paper's "amount of
// data migration" component, with prev as the outgoing configuration. The
// sweep reuses both plans' cached rasters; nothing is re-rasterized.
// Bit-identical to ReferenceMigrationFraction at any GOMAXPROCS.
func (p *CommPlan) MigrationFrom(prev *CommPlan) float64 {
	if p == nil || prev == nil {
		return 0
	}
	newOwners := ownersOf(p.A)
	prevOwners := ownersOf(prev.A)

	levels := make([]int, 0, len(p.rasters))
	for l := range p.rasters {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	var tasks []*migTask
	var cells int64
	for _, l := range levels {
		nr := p.rasters[l]
		pr, ok := prev.rasters[l]
		if !ok {
			continue
		}
		common, ok := nr.box.Intersect(pr.box)
		if !ok {
			continue
		}
		cells += common.Volume()
		for _, zr := range slabRanges(common.Lo[2], common.Hi[2], workersFor(common.Volume())) {
			tasks = append(tasks, &migTask{
				pr: pr, nr: nr, common: common,
				prevOwners: prevOwners, newOwners: newOwners,
				zLo: zr[0], zHi: zr[1],
			})
		}
	}
	forEachTask(len(tasks), workersFor(cells), func(i, _ int) { tasks[i].run() })
	var both, moved int64
	for _, t := range tasks {
		both += t.both
		moved += t.moved
	}
	if both == 0 {
		return 0
	}
	return float64(moved) / float64(both)
}

// ownersOf widens the assignment's owner slice for raster-side lookups.
func ownersOf(a *Assignment) []int32 {
	owners := make([]int32, len(a.Owner))
	for i, o := range a.Owner {
		owners[i] = int32(o)
	}
	return owners
}

// workersFor picks the worker count for a sweep over the given cell
// count: GOMAXPROCS-wide unless the sweep is too small to fan out.
func workersFor(cells int64) int {
	w := runtime.GOMAXPROCS(0)
	if w <= 1 || cells < parallelCellThreshold {
		return 1
	}
	return w
}

// slabRanges cuts [lo, hi) into roughly 2*workers contiguous z-slabs —
// enough granularity for load balance without drowning small levels in
// tasks. With workers == 1 the whole range is one slab.
func slabRanges(lo, hi, workers int) [][2]int {
	nz := hi - lo
	if nz <= 0 {
		return nil
	}
	slabs := 2 * workers
	if slabs > nz {
		slabs = nz
	}
	if slabs < 1 {
		slabs = 1
	}
	chunk := (nz + slabs - 1) / slabs
	var out [][2]int
	for z := lo; z < hi; z += chunk {
		end := z + chunk
		if end > hi {
			end = hi
		}
		out = append(out, [2]int{z, end})
	}
	return out
}

// forEachTask runs fn(i, worker) for every task index, fanning out over
// the given number of workers. Task results must be written into
// per-task storage; completion order is irrelevant to callers because
// merging happens afterwards in task order.
func forEachTask(n, workers int, fn func(i, worker int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, worker)
			}
		}(w)
	}
	wg.Wait()
}

// pairAcc accumulates one cross-processor unit pair inside a task, in
// quarter-face units. Entries with the same lo unit are chained through
// next, forming the per-unit adjacency accumulator that replaces the old
// map[uint64]int dedup.
type pairAcc struct {
	lo, hi   int32
	quarters int64
	next     int32
}

// commTask is one z-slab of one level's fused sweep. Intra-level faces
// count 4 quarters, inter-level parent cells 1 quarter (interLevelWeight);
// the level frequency is applied at merge time, so every per-task
// accumulator is an exact integer.
type commTask struct {
	r     *levelRaster // this level's unit raster
	cr    *levelRaster // parent level's raster, nil for the coarsest
	ratio int
	freq  float64
	zLo   int
	zHi   int

	pairs        []pairAcc
	procQuarters []int64
	volQuarters  int64
}

// run sweeps the task's slab. head is the caller-owned per-unit chain
// head array (len = units, filled with -1); it is restored to -1 for
// every touched entry before returning so workers can reuse it across
// tasks.
func (t *commTask) run(owners []int32, nprocs int, head []int32) {
	t.procQuarters = make([]int64, nprocs)
	r, cr := t.r, t.cr
	b := r.box
	n := b.Dx(0)
	lastLo, lastHi := int32(-1), int32(-1)
	lastIdx := 0
	add := func(u1, u2 int32, q int64) {
		o1, o2 := owners[u1], owners[u2]
		if o1 == o2 {
			return
		}
		t.volQuarters += q
		t.procQuarters[o1] += q
		t.procQuarters[o2] += q
		lo, hi := u1, u2
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == lastLo && hi == lastHi {
			t.pairs[lastIdx].quarters += q
			return
		}
		idx := head[lo]
		for idx >= 0 && t.pairs[idx].hi != hi {
			idx = t.pairs[idx].next
		}
		if idx < 0 {
			t.pairs = append(t.pairs, pairAcc{lo: lo, hi: hi, next: head[lo]})
			idx = int32(len(t.pairs) - 1)
			head[lo] = idx
		}
		t.pairs[idx].quarters += q
		lastLo, lastHi, lastIdx = lo, hi, int(idx)
	}
	for z := t.zLo; z < t.zHi; z++ {
		hasZ := z+1 < b.Hi[2]
		czOff, czOK := 0, false
		if cr != nil {
			cz := z / t.ratio
			if cz >= cr.box.Lo[2] && cz < cr.box.Hi[2] {
				czOK = true
				czOff = (cz - cr.box.Lo[2]) * cr.nxy
			}
		}
		for y := b.Lo[1]; y < b.Hi[1]; y++ {
			s := (z-b.Lo[2])*r.nxy + (y-b.Lo[1])*r.nx
			row := r.owner[s : s+n]
			var rowY, rowZ []int32
			if y+1 < b.Hi[1] {
				rowY = r.owner[s+r.nx : s+r.nx+n]
			}
			if hasZ {
				rowZ = r.owner[s+r.nxy : s+r.nxy+n]
			}
			var crow []int32
			cxLo, cxHi := 0, 0
			if czOK {
				cy := y / t.ratio
				if cy >= cr.box.Lo[1] && cy < cr.box.Hi[1] {
					cs := czOff + (cy-cr.box.Lo[1])*cr.nx
					crow = cr.owner[cs : cs+cr.nx]
					cxLo, cxHi = cr.box.Lo[0], cr.box.Hi[0]
				}
			}
			for i := 0; i < n; i++ {
				u := row[i]
				if u < 0 {
					continue
				}
				if i+1 < n {
					if nu := row[i+1]; nu >= 0 && nu != u {
						add(u, nu, 4)
					}
				}
				if rowY != nil {
					if nu := rowY[i]; nu >= 0 && nu != u {
						add(u, nu, 4)
					}
				}
				if rowZ != nil {
					if nu := rowZ[i]; nu >= 0 && nu != u {
						add(u, nu, 4)
					}
				}
				if crow != nil {
					cx := (b.Lo[0] + i) / t.ratio
					if cx >= cxLo && cx < cxHi {
						if cu := crow[cx-cxLo]; cu >= 0 && cu != u {
							add(u, cu, 1)
						}
					}
				}
			}
		}
	}
	for i := range t.pairs {
		head[t.pairs[i].lo] = -1
	}
}

// sweepComm runs the fused kernel over every level and merges the
// per-slab accumulators deterministically: tasks are merged in (level,
// z-slab) order, which is exactly the canonical sweep order, so pair
// enumeration and every statistic match the sequential reference bit for
// bit regardless of how many workers ran the slabs.
func sweepComm(h *samr.Hierarchy, a *Assignment, rs map[int]*levelRaster) (CommStats, []UnitPair) {
	st := CommStats{
		PerProcVolume:   make([]float64, a.NProcs),
		PerProcMessages: make([]float64, a.NProcs),
	}
	if len(a.Units) == 0 || len(rs) == 0 {
		return st, nil
	}
	owners := ownersOf(a)
	levels := make([]int, 0, len(rs))
	var cells int64
	for l, r := range rs {
		levels = append(levels, l)
		cells += r.box.Volume()
	}
	sort.Ints(levels)
	workers := workersFor(cells)

	var tasks []*commTask
	for _, l := range levels {
		r := rs[l]
		var cr *levelRaster
		if l > 0 {
			cr = rs[l-1]
		}
		freq := 1.0
		for i := 0; i < l; i++ {
			freq *= float64(h.Ratio)
		}
		for _, zr := range slabRanges(r.box.Lo[2], r.box.Hi[2], workers) {
			tasks = append(tasks, &commTask{
				r: r, cr: cr, ratio: h.Ratio, freq: freq,
				zLo: zr[0], zHi: zr[1],
			})
		}
	}

	heads := make([][]int32, workers)
	forEachTask(len(tasks), workers, func(i, worker int) {
		if heads[worker] == nil {
			heads[worker] = newHead(len(a.Units))
		}
		tasks[i].run(owners, a.NProcs, heads[worker])
	})

	// Deterministic merge. All sums below are exact: quarters and freq are
	// integers (freq = Ratio^level), so 0.25*quarters*freq has at most two
	// fractional bits and the float64 additions never round at any
	// realistic hierarchy size.
	type merged struct {
		lo, hi   int32
		quarters int64
		freq     float64
	}
	var pairs []merged
	head := newHead(len(a.Units))
	next := make([]int32, 0, 64)
	for _, t := range tasks {
		if t.volQuarters != 0 {
			st.Volume += 0.25 * float64(t.volQuarters) * t.freq
		}
		for p, q := range t.procQuarters {
			if q != 0 {
				st.PerProcVolume[p] += 0.25 * float64(q) * t.freq
			}
		}
		for _, pa := range t.pairs {
			idx := head[pa.lo]
			for idx >= 0 && pairs[idx].hi != pa.hi {
				idx = next[idx]
			}
			if idx < 0 {
				pairs = append(pairs, merged{lo: pa.lo, hi: pa.hi, freq: t.freq})
				next = append(next, head[pa.lo])
				idx = int32(len(pairs) - 1)
				head[pa.lo] = idx
				o1, o2 := owners[pa.lo], owners[pa.hi]
				st.Messages += t.freq
				st.PerProcMessages[o1] += t.freq
				st.PerProcMessages[o2] += t.freq
			}
			pairs[idx].quarters += pa.quarters
		}
	}
	if len(pairs) == 0 {
		return st, nil
	}
	out := make([]UnitPair, len(pairs))
	for i, m := range pairs {
		out[i] = UnitPair{
			U1:        int(m.lo),
			U2:        int(m.hi),
			Faces:     0.25 * float64(m.quarters),
			Frequency: m.freq,
		}
	}
	return st, out
}

func newHead(n int) []int32 {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return head
}

// migTask counts migrated cells over one z-slab of one level's
// prev ∩ new raster intersection.
type migTask struct {
	pr, nr                *levelRaster
	common                samr.Box
	prevOwners, newOwners []int32
	zLo, zHi              int
	both, moved           int64
}

func (t *migTask) run() {
	c := t.common
	w := c.Dx(0)
	var both, moved int64
	for z := t.zLo; z < t.zHi; z++ {
		for y := c.Lo[1]; y < c.Hi[1]; y++ {
			pS := (z-t.pr.box.Lo[2])*t.pr.nxy + (y-t.pr.box.Lo[1])*t.pr.nx + (c.Lo[0] - t.pr.box.Lo[0])
			nS := (z-t.nr.box.Lo[2])*t.nr.nxy + (y-t.nr.box.Lo[1])*t.nr.nx + (c.Lo[0] - t.nr.box.Lo[0])
			prow := t.pr.owner[pS : pS+w]
			nrow := t.nr.owner[nS : nS+w]
			for i := 0; i < w; i++ {
				pu, nu := prow[i], nrow[i]
				if pu < 0 || nu < 0 {
					continue
				}
				both++
				if t.prevOwners[pu] != t.newOwners[nu] {
					moved++
				}
			}
		}
	}
	t.both, t.moved = both, moved
}

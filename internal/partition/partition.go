// Package partition implements the SAMR partitioner suite behind Pragma's
// adaptive meta-partitioner (§4 of the paper): the inverse space-filling
// curve partitioners SFC, G-MISP, G-MISP+SP, pBD-ISP, SP-ISP and ISP, the
// default equal-distribution scheme, and the capacity-weighted heterogeneous
// partitioner of the system-sensitive case study. It also provides the
// five-component PAC quality metric (communication requirements, load
// imbalance, data migration, partitioning time, partitioning-induced
// overhead) used to characterize each partitioner.
package partition

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// Unit is an indivisible chunk of the grid hierarchy to be assigned to one
// processor: a box on one level with a computational weight.
type Unit struct {
	// Level is the hierarchy level the unit lives on.
	Level int
	// Box is the unit's region in level coordinates.
	Box samr.Box
	// Weight is the unit's per-coarse-step computational work.
	Weight float64
}

// Assignment is the result of partitioning: each unit mapped to a processor.
type Assignment struct {
	// NProcs is the number of processors partitioned across.
	NProcs int
	// Units are the grid chunks, in the order the partitioner emitted them.
	Units []Unit
	// Owner[i] is the processor assigned Units[i].
	Owner []int
	// SplitCost is the relative cost of the splitting algorithm that
	// produced the assignment, in sweeps over the unit sequence: greedy
	// splitting costs ~1 sweep, p-way binary dissection ~log2(p), optimal
	// sequence partitioning ~60 (its bottleneck binary search). The
	// simulator charges partitioning time proportional to
	// units x SplitCost — the "partitioning time" component of the PAC
	// metric, and a real differentiator between pBD-ISP and the
	// SP-based partitioners.
	SplitCost float64
}

// Work returns the per-processor computational load.
func (a *Assignment) Work() []float64 {
	w := make([]float64, a.NProcs)
	for i, u := range a.Units {
		w[a.Owner[i]] += u.Weight
	}
	return w
}

// TotalWeight returns the summed weight of all units.
func (a *Assignment) TotalWeight() float64 {
	var t float64
	for _, u := range a.Units {
		t += u.Weight
	}
	return t
}

// Imbalance returns the percentage load imbalance, 100*(max-avg)/avg, the
// "maximum load imbalance" column of the paper's Table 4.
func (a *Assignment) Imbalance() float64 {
	w := a.Work()
	var sum, max float64
	for _, v := range w {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	avg := sum / float64(len(w))
	return 100 * (max - avg) / avg
}

// Validate checks assignment invariants: owners in range, one owner per
// unit, positive unit volumes, and units pairwise disjoint within a level.
func (a *Assignment) Validate() error {
	if len(a.Owner) != len(a.Units) {
		return fmt.Errorf("partition: %d owners for %d units", len(a.Owner), len(a.Units))
	}
	byLevel := map[int][]samr.Box{}
	for i, u := range a.Units {
		if a.Owner[i] < 0 || a.Owner[i] >= a.NProcs {
			return fmt.Errorf("partition: unit %d owner %d out of range [0,%d)", i, a.Owner[i], a.NProcs)
		}
		if u.Box.Empty() {
			return fmt.Errorf("partition: unit %d has empty box", i)
		}
		byLevel[u.Level] = append(byLevel[u.Level], u.Box)
	}
	for l, boxes := range byLevel {
		slices.SortFunc(boxes, func(a, b samr.Box) int {
			if c := cmp.Compare(a.Lo[0], b.Lo[0]); c != 0 {
				return c
			}
			if c := cmp.Compare(a.Lo[1], b.Lo[1]); c != 0 {
				return c
			}
			return cmp.Compare(a.Lo[2], b.Lo[2])
		})
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes) && boxes[j].Lo[0] < boxes[i].Hi[0]; j++ {
				if boxes[i].Overlaps(boxes[j]) {
					return fmt.Errorf("partition: level %d units %v and %v overlap", l, boxes[i], boxes[j])
				}
			}
		}
	}
	return nil
}

// CoversHierarchy checks that the assignment's units exactly tile the
// hierarchy's boxes (no grid cells lost or duplicated), comparing volumes
// per level.
func (a *Assignment) CoversHierarchy(h *samr.Hierarchy) error {
	got := map[int]int64{}
	for _, u := range a.Units {
		got[u.Level] += u.Box.Volume()
	}
	for l := range h.Levels {
		if got[l] != h.CellsAtLevel(l) {
			return fmt.Errorf("partition: level %d covers %d of %d cells", l, got[l], h.CellsAtLevel(l))
		}
	}
	return nil
}

// Partitioner distributes a grid hierarchy across processors. Partitioners
// are stateless and safe for concurrent use.
type Partitioner interface {
	// Name returns the partitioner's identifier as used in the paper
	// (e.g. "SFC", "G-MISP+SP", "pBD-ISP").
	Name() string
	// Partition assigns the hierarchy's cells to nprocs processors using
	// the work model for unit weights.
	Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error)
}

// CapacityPartitioner additionally supports heterogeneous processors: the
// load is distributed proportionally to relative capacities instead of
// equally (Fig. 4 of the paper).
type CapacityPartitioner interface {
	Partitioner
	// PartitionWeighted assigns the hierarchy proportionally to the given
	// relative capacities (one per processor; they need not be normalized).
	PartitionWeighted(h *samr.Hierarchy, wm samr.WorkModel, capacities []float64) (*Assignment, error)
}

// orderUnits sorts units along the given curve, mapping each unit's center
// into the hierarchy's finest index space so that units from all levels
// share one locality-preserving order.
func orderUnits(units []Unit, h *samr.Hierarchy, curve sfc.Curve) {
	finest := h.Depth() - 1
	type keyed struct {
		key  uint64
		unit Unit
	}
	tmp := make([]keyed, len(units))
	for i, u := range units {
		scale := 1
		for l := u.Level; l < finest; l++ {
			scale *= h.Ratio
		}
		cx := uint32((u.Box.Lo[0] + u.Box.Hi[0]) * scale / 2)
		cy := uint32((u.Box.Lo[1] + u.Box.Hi[1]) * scale / 2)
		cz := uint32((u.Box.Lo[2] + u.Box.Hi[2]) * scale / 2)
		tmp[i] = keyed{key: curve.Index(cx, cy, cz), unit: u}
	}
	slices.SortStableFunc(tmp, func(a, b keyed) int { return cmp.Compare(a.key, b.key) })
	for i := range tmp {
		units[i] = tmp[i].unit
	}
}

// curveFor builds the default Hilbert curve sized to the hierarchy's finest
// index space.
func curveFor(h *samr.Hierarchy) sfc.Curve {
	dom := h.LevelDomain(h.Depth() - 1)
	return sfc.MustHilbert(sfc.BitsFor(dom.Dx(0), dom.Dx(1), dom.Dx(2)))
}

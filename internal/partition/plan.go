package partition

// This file implements the delta-regrid partitioning pipeline. Regrids are
// local: between two consecutive regrid cycles most hierarchy boxes are
// unchanged, yet the partitioners historically rebuilt every unit, re-keyed
// every unit center along the space-filling curve, and re-sorted the whole
// sequence from scratch. A PartitionPlan carried across cycles (alongside
// the CommPlan core.Run already threads through) caches the per-box
// decomposition and SFC keys of the previous hierarchy so that only the
// changed boxes are re-decomposed and re-keyed; the already-ordered
// unchanged run is then merged with the freshly keyed delta instead of
// re-sorting everything. Cold calls (nil or empty plan) take a parallel
// decomposition + radix-sort path.
//
// Determinism contract (same as commref.go for the PAC kernel): the output
// of PartitionIncremental is bit-identical to ReferencePartition — the
// retained sequential from-scratch pipeline — at any GOMAXPROCS, for any
// sequence of hierarchy deltas, and for a cold plan (resume from
// checkpoint). Changed boxes are decomposed by independent tasks whose
// results are concatenated in deterministic task order (level-major, box
// order, ascending x-range), which reproduces the sequential generation
// order exactly; the stable LSD radix sort and the (key, generation-index)
// merge both reproduce the stable sort-by-key of the reference.

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// decompKind names the unit decomposition family a partitioner uses.
type decompKind uint8

const (
	// decompBlock cuts every hierarchy box into fixed-side blocks
	// (blockUnits); side <= 0 keeps whole boxes ("patch granularity").
	decompBlock decompKind = iota + 1
	// decompVarGrain recursively halves heavy boxes (variableGrainUnits).
	decompVarGrain
)

// decompSpec fully describes a partitioner's decomposition step.
type decompSpec struct {
	kind      decompKind
	side      int     // block side (decompBlock)
	threshold float64 // subdivision threshold (decompVarGrain)
	minSide   int     // smallest side subdivision may produce (decompVarGrain)
}

// pipelineSpec is one partitioner's instantiation of the shared ISP
// pipeline: decompose, order along the curve, split the sequence.
type pipelineSpec struct {
	decomp decompSpec
	curve  sfc.Curve // nil = default Hilbert curve for the hierarchy
	split  func(weights []float64, nprocs int) []int
	cost   float64 // SplitCost of the produced assignment
}

// pipelinePartitioner is implemented by every partitioner built on the
// shared ISP pipeline; it is what both the delta pipeline and the
// from-scratch reference consume, so the two can never disagree about a
// partitioner's parameters.
type pipelinePartitioner interface {
	Partitioner
	pipeline(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) pipelineSpec
}

// IncrementalPartitioner is a Partitioner able to reuse a PartitionPlan
// carried across regrid cycles. PartitionIncremental with a nil plan is
// exactly Partition; with a plan it additionally caches this cycle's
// decomposition so the next cycle only recomputes changed boxes. The
// returned assignment is bit-identical either way.
type IncrementalPartitioner interface {
	Partitioner
	PartitionIncremental(h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error)
}

// cacheSig pins everything a cached decomposition depends on besides the
// box list itself. A signature mismatch (depth change, curve resolution
// change, granularity change from a different nprocs, ...) invalidates the
// cache wholesale; the vargrain threshold is deliberately absent because it
// moves with total work every cycle and is validated per box instead.
type cacheSig struct {
	curve   string
	bits    uint
	ratio   int
	depth   int
	kind    decompKind
	side    int
	minSide int
}

// cachedBox is one hierarchy box's decomposition: its units in generation
// order, their SFC keys, and — for variable-grain decompositions — the
// half-open threshold window [minT, maxT) over which the recursion would
// reproduce exactly these leaves.
type cachedBox struct {
	box        samr.Box
	units      []Unit
	keys       []uint64
	minT, maxT float64
}

// orderRef locates one unit of the curve-ordered sequence inside the
// per-box cache: cache.levels[level][box].units[off], ordered by
// (key, generation index).
type orderRef struct {
	key             uint64
	level, box, off int32
}

// unitCache is one partitioner's cached decomposition of the previous
// hierarchy.
type unitCache struct {
	sig    cacheSig
	wm     samr.WorkModel // nil when the model's dynamic type is not comparable
	levels [][]cachedBox
	order  []orderRef
}

// PartitionPlan carries partitioner state across regrid cycles: per-
// partitioner decomposition caches (so the meta-partitioner's switching
// never poisons another partitioner's cache) and arena-style scratch
// buffers (weights, sort indices, order refs) reused from cycle to cycle.
//
// A PartitionPlan is NOT safe for concurrent use; core.Run owns one per
// run and uses it from the single replay goroutine. A fresh (or nil) plan
// is always valid — resume from checkpoint simply starts cold.
type PartitionPlan struct {
	caches map[string]*unitCache

	// Scratch arenas. Contents are dead between calls; only capacity is
	// reused.
	weights   []float64
	sortIdx   []int32
	sortTmp   []int32
	freshKeys []uint64
	fresh     []orderRef
	reused    []orderRef

	reusedUnits int64
	totalUnits  int64
	lastReused  int
	lastTotal   int
}

// NewPartitionPlan returns an empty plan; the first partition through it is
// a cold from-scratch build that seeds the cache.
func NewPartitionPlan() *PartitionPlan {
	return &PartitionPlan{caches: make(map[string]*unitCache)}
}

// Stats reports cumulative units reused from cache versus total units
// emitted across all incremental partitions through this plan.
func (p *PartitionPlan) Stats() (reused, total int64) {
	return p.reusedUnits, p.totalUnits
}

// LastReuseRatio reports the fraction of units served from cache by the
// most recent incremental partition (0 for a cold build).
func (p *PartitionPlan) LastReuseRatio() float64 {
	if p.lastTotal == 0 {
		return 0
	}
	return float64(p.lastReused) / float64(p.lastTotal)
}

// keyer maps unit centers into the hierarchy's finest index space and onto
// the curve, replicating orderUnits' arithmetic exactly.
type keyer struct {
	curve  sfc.Curve
	scales []int // Ratio^(finest-l) per level
}

func newKeyer(h *samr.Hierarchy, curve sfc.Curve) keyer {
	depth := h.Depth()
	scales := make([]int, depth)
	for l := 0; l < depth; l++ {
		s := 1
		for k := l; k < depth-1; k++ {
			s *= h.Ratio
		}
		scales[l] = s
	}
	return keyer{curve: curve, scales: scales}
}

func (k keyer) key(level int, b samr.Box) uint64 {
	s := k.scales[level]
	cx := uint32((b.Lo[0] + b.Hi[0]) * s / 2)
	cy := uint32((b.Lo[1] + b.Hi[1]) * s / 2)
	cz := uint32((b.Lo[2] + b.Hi[2]) * s / 2)
	return k.curve.Index(cx, cy, cz)
}

// decompOut is one decomposition task's result: units in generation order,
// their keys, and the vargrain threshold window.
type decompOut struct {
	units      []Unit
	keys       []uint64
	minT, maxT float64
}

// blockBoxUnits emits the blocks of box b restricted to x-range [x0, x1),
// replicating blockUnits' nesting (x outer, z inner) and clamping exactly.
func blockBoxUnits(h *samr.Hierarchy, wm samr.WorkModel, l int, b samr.Box, side, x0, x1 int, k keyer) decompOut {
	out := decompOut{minT: 0, maxT: math.Inf(1)}
	if side <= 0 {
		u := Unit{Level: l, Box: b, Weight: wm.BoxWork(h, l, b)}
		out.units = []Unit{u}
		out.keys = []uint64{k.key(l, b)}
		return out
	}
	nx := (x1 - x0 + side - 1) / side
	ny := (b.Dx(1) + side - 1) / side
	nz := (b.Dx(2) + side - 1) / side
	out.units = make([]Unit, 0, nx*ny*nz)
	out.keys = make([]uint64, 0, nx*ny*nz)
	for x := x0; x < x1; x += side {
		for y := b.Lo[1]; y < b.Hi[1]; y += side {
			for z := b.Lo[2]; z < b.Hi[2]; z += side {
				blk := samr.Box{
					Lo: samr.Point{x, y, z},
					Hi: samr.Point{
						min(x+side, b.Hi[0]),
						min(y+side, b.Hi[1]),
						min(z+side, b.Hi[2]),
					},
				}
				out.units = append(out.units, Unit{Level: l, Box: blk, Weight: wm.BoxWork(h, l, blk)})
				out.keys = append(out.keys, k.key(l, blk))
			}
		}
	}
	return out
}

// varGrainBoxUnits runs variableGrainUnits' recursion for one box, tracking
// the threshold window over which the recursion shape is invariant: every
// weight-stopped leaf requires threshold >= its weight (minT), every split
// node requires threshold < its weight (maxT). Size-stopped leaves hold for
// every threshold.
func varGrainBoxUnits(h *samr.Hierarchy, wm samr.WorkModel, l int, b samr.Box, threshold float64, minSide int, k keyer) decompOut {
	if minSide < 1 {
		minSide = 1
	}
	out := decompOut{minT: 0, maxT: math.Inf(1)}
	var split func(b samr.Box)
	split = func(b samr.Box) {
		w := wm.BoxWork(h, l, b)
		longest := 0
		for d := 1; d < 3; d++ {
			if b.Dx(d) > b.Dx(longest) {
				longest = d
			}
		}
		if w <= threshold || b.Dx(longest) < 2*minSide {
			if b.Dx(longest) >= 2*minSide && w > out.minT {
				out.minT = w
			}
			out.units = append(out.units, Unit{Level: l, Box: b, Weight: w})
			out.keys = append(out.keys, k.key(l, b))
			return
		}
		if w < out.maxT {
			out.maxT = w
		}
		lo, hi := b.Split(longest, b.Lo[longest]+b.Dx(longest)/2)
		split(lo)
		split(hi)
	}
	split(b)
	return out
}

// decompTask is one independent decomposition task: a hierarchy box, or an
// x-range slice of one (block decompositions of big boxes fan out over
// block columns; concatenating slice results in ascending-x order
// reproduces the sequential generation order).
type decompTask struct {
	level, box int
	x0, x1     int
	out        decompOut
}

func (t *decompTask) run(h *samr.Hierarchy, wm samr.WorkModel, spec decompSpec, k keyer) {
	b := h.Levels[t.level][t.box]
	if spec.kind == decompVarGrain {
		t.out = varGrainBoxUnits(h, wm, t.level, b, spec.threshold, spec.minSide, k)
		return
	}
	t.out = blockBoxUnits(h, wm, t.level, b, spec.side, t.x0, t.x1, k)
}

// changedTasks builds the deterministic task list for the changed boxes
// (reuse[l][j] == nil). Block decompositions of boxes worth parallelizing
// are sliced into up to 2*workers column ranges; the slicing never affects
// output (results concatenate in task order) — only load balance.
func changedTasks(h *samr.Hierarchy, spec decompSpec, reuse [][]*cachedBox, workers int) []decompTask {
	var tasks []decompTask
	for l, boxes := range h.Levels {
		for j, b := range boxes {
			if reuse[l][j] != nil {
				continue
			}
			if spec.kind != decompBlock || spec.side <= 0 ||
				workers <= 1 || b.Volume() < parallelCellThreshold {
				tasks = append(tasks, decompTask{level: l, box: j, x0: b.Lo[0], x1: b.Hi[0]})
				continue
			}
			ncol := (b.Dx(0) + spec.side - 1) / spec.side
			nsub := min(ncol, 2*workers)
			per := (ncol + nsub - 1) / nsub
			for c := 0; c < ncol; c += per {
				x0 := b.Lo[0] + c*spec.side
				x1 := min(b.Lo[0]+(c+per)*spec.side, b.Hi[0])
				tasks = append(tasks, decompTask{level: l, box: j, x0: x0, x1: x1})
			}
		}
	}
	return tasks
}

// comparableWM returns wm when its dynamic type supports ==, else nil.
// Cached units may only be reused when the work model compares equal to the
// cached one; an uncomparable model (e.g. samr.FrontWorkModel, whose fronts
// move every cycle) honestly forces a full rebuild.
func comparableWM(wm samr.WorkModel) samr.WorkModel {
	if wm == nil || !reflect.TypeOf(wm).Comparable() {
		return nil
	}
	return wm
}

// decomposeOrdered produces the curve-ordered unit sequence for (h, wm)
// under spec, reusing plan's cache for this partitioner when possible and
// updating it for the next cycle. The returned slice is freshly allocated
// on every call (assignments outlive the plan); reused counts how many
// units were served from cache.
func decomposeOrdered(name string, h *samr.Hierarchy, wm samr.WorkModel, spec decompSpec, curve sfc.Curve, plan *PartitionPlan) (units []Unit, reusedN, total int) {
	depth := h.Depth()
	sig := cacheSig{
		curve: curve.Name(), bits: curve.Bits(),
		ratio: h.Ratio, depth: depth,
		kind: spec.kind, side: spec.side, minSide: spec.minSide,
	}
	var cache *unitCache
	if plan != nil {
		cache = plan.caches[name]
		if cache != nil && cache.sig != sig {
			cache = nil
		}
	}
	cwm := comparableWM(wm)

	// Match unchanged boxes per level. Matches must be order-preserving
	// (strictly increasing cache positions) so that the cached global order,
	// filtered to survivors, remains sorted by (key, new generation index).
	reuse := make([][]*cachedBox, depth)
	var oldNew [][]int32
	if cache != nil {
		oldNew = make([][]int32, depth)
	}
	var changedCells int64
	for l, boxes := range h.Levels {
		reuse[l] = make([]*cachedBox, len(boxes))
		var idx map[samr.Box]int
		if cache != nil {
			old := cache.levels[l]
			oldNew[l] = make([]int32, len(old))
			for i := range oldNew[l] {
				oldNew[l][i] = -1
			}
			idx = make(map[samr.Box]int, len(old))
			for i := range old {
				idx[old[i].box] = i
			}
		}
		last := -1
		for j, b := range boxes {
			if cache != nil {
				if i, ok := idx[b]; ok && i > last {
					cb := &cache.levels[l][i]
					valid := cwm != nil && cache.wm != nil && cwm == cache.wm
					if valid && spec.kind == decompVarGrain {
						valid = cb.minT <= spec.threshold && spec.threshold < cb.maxT
					}
					if valid {
						last = i
						reuse[l][j] = cb
						oldNew[l][i] = int32(j)
						continue
					}
				}
			}
			changedCells += b.Volume()
		}
	}

	// Decompose the changed boxes in parallel; results merge in task order.
	workers := workersFor(changedCells)
	tasks := changedTasks(h, spec, reuse, workers)
	k := newKeyer(h, curve)
	forEachTask(len(tasks), workers, func(i, _ int) {
		tasks[i].run(h, wm, spec, k)
	})

	// Assemble the new per-box cache level by level, concatenating each
	// changed box's task slices, and compute generation-index bases.
	newLevels := make([][]cachedBox, depth)
	base := make([][]int32, depth)
	ti := 0
	for l, boxes := range h.Levels {
		newLevels[l] = make([]cachedBox, len(boxes))
		base[l] = make([]int32, len(boxes))
		for j, b := range boxes {
			base[l][j] = int32(total)
			if cb := reuse[l][j]; cb != nil {
				newLevels[l][j] = *cb
				reusedN += len(cb.units)
				total += len(cb.units)
				continue
			}
			n := 0
			t0 := ti
			for ti < len(tasks) && tasks[ti].level == l && tasks[ti].box == j {
				n += len(tasks[ti].out.units)
				ti++
			}
			nb := cachedBox{box: b, minT: 0, maxT: math.Inf(1)}
			if ti == t0+1 {
				nb.units = tasks[t0].out.units
				nb.keys = tasks[t0].out.keys
				nb.minT, nb.maxT = tasks[t0].out.minT, tasks[t0].out.maxT
			} else {
				nb.units = make([]Unit, 0, n)
				nb.keys = make([]uint64, 0, n)
				for t := t0; t < ti; t++ {
					nb.units = append(nb.units, tasks[t].out.units...)
					nb.keys = append(nb.keys, tasks[t].out.keys...)
				}
			}
			newLevels[l][j] = nb
			total += n
		}
	}
	if total == 0 {
		return nil, 0, 0
	}

	// Fresh run: the changed boxes' refs in generation order, radix-sorted
	// stably by key (stability keeps equal keys in generation order, exactly
	// like the reference's stable sort).
	freshN := total - reusedN
	var fresh, reusedRun []orderRef
	var sortIdx, sortTmp []int32
	var keys []uint64
	if plan != nil {
		fresh = refArena(&plan.fresh, freshN)
		reusedRun = refArena(&plan.reused, reusedN)
		sortIdx = i32Arena(&plan.sortIdx, freshN)
		sortTmp = i32Arena(&plan.sortTmp, freshN)[:freshN]
		keys = u64Arena(&plan.freshKeys, freshN)
	} else {
		fresh = make([]orderRef, 0, freshN)
		sortIdx = make([]int32, 0, freshN)
		sortTmp = make([]int32, freshN)
		keys = make([]uint64, 0, freshN)
	}
	for l := range newLevels {
		for j := range newLevels[l] {
			if reuse[l][j] != nil {
				continue
			}
			nb := &newLevels[l][j]
			for off := range nb.units {
				fresh = append(fresh, orderRef{key: nb.keys[off], level: int32(l), box: int32(j), off: int32(off)})
				keys = append(keys, nb.keys[off])
			}
		}
	}
	for i := 0; i < freshN; i++ {
		sortIdx = append(sortIdx, int32(i))
	}
	perm := radixSortRun(keys, sortIdx, sortTmp)

	// Reused run: the cached global order filtered to surviving boxes,
	// re-addressed to new box indices. Order-preserving matching guarantees
	// it is already sorted by (key, new generation index).
	if cache != nil && reusedN > 0 {
		for _, r := range cache.order {
			if j := oldNew[r.level][r.box]; j >= 0 {
				reusedRun = append(reusedRun, orderRef{key: r.key, level: r.level, box: j, off: r.off})
			}
		}
	}

	// Merge the two runs by (key, generation index) into the output and the
	// next cycle's global order.
	units = make([]Unit, 0, total)
	var newOrder []orderRef
	if plan != nil {
		newOrder = make([]orderRef, 0, total)
	}
	gen := func(r orderRef) int32 { return base[r.level][r.box] + r.off }
	emit := func(r orderRef) {
		units = append(units, newLevels[r.level][r.box].units[r.off])
		if plan != nil {
			newOrder = append(newOrder, r)
		}
	}
	i, j := 0, 0
	for i < len(reusedRun) && j < len(perm) {
		a, b := reusedRun[i], fresh[perm[j]]
		if a.key < b.key || (a.key == b.key && gen(a) < gen(b)) {
			emit(a)
			i++
		} else {
			emit(b)
			j++
		}
	}
	for ; i < len(reusedRun); i++ {
		emit(reusedRun[i])
	}
	for ; j < len(perm); j++ {
		emit(fresh[perm[j]])
	}

	if plan != nil {
		plan.caches[name] = &unitCache{sig: sig, wm: cwm, levels: newLevels, order: newOrder}
	}
	return units, reusedN, total
}

// refArena / i32Arena / u64Arena grow-and-reset the plan's scratch buffers:
// capacity survives across cycles, contents do not.
func refArena(buf *[]orderRef, n int) []orderRef {
	if cap(*buf) < n {
		*buf = make([]orderRef, 0, n)
	}
	*buf = (*buf)[:0]
	return *buf
}

func i32Arena(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, 0, n)
	}
	*buf = (*buf)[:0]
	return *buf
}

func u64Arena(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, 0, n)
	}
	*buf = (*buf)[:0]
	return *buf
}

// radixSortRun stably sorts idx (a permutation of positions into keys) by
// keys[idx[i]] ascending, using tmp as swap space, and returns the sorted
// permutation (which may alias tmp). LSD byte passes bounded by the maximum
// key; stability is what keeps equal keys in generation order.
func radixSortRun(keys []uint64, idx, tmp []int32) []int32 {
	if len(idx) < 2 {
		return idx
	}
	var maxKey uint64
	for _, id := range idx {
		if keys[id] > maxKey {
			maxKey = keys[id]
		}
	}
	for shift := uint(0); shift < 64 && maxKey>>shift != 0; shift += 8 {
		var counts [256]int
		for _, id := range idx {
			counts[byte(keys[id]>>shift)]++
		}
		sum := 0
		for b := 0; b < 256; b++ {
			c := counts[b]
			counts[b] = sum
			sum += c
		}
		for _, id := range idx {
			b := byte(keys[id] >> shift)
			tmp[counts[b]] = id
			counts[b]++
		}
		idx, tmp = tmp, idx
	}
	return idx
}

// partitionPipeline runs the shared delta-aware pipeline for one
// partitioner: decompose (incrementally when the plan has a valid cache),
// order, split, assemble — observing per-partitioner timing and the
// cache-reuse ratio.
func partitionPipeline(p pipelinePartitioner, h *samr.Hierarchy, wm samr.WorkModel, nprocs int, plan *PartitionPlan) (*Assignment, error) {
	if err := checkArgs(h, nprocs); err != nil {
		return nil, err
	}
	start := time.Now()
	spec := p.pipeline(h, wm, nprocs)
	curve := spec.curve
	if curve == nil {
		curve = curveFor(h)
	}
	units, reused, total := decomposeOrdered(p.Name(), h, wm, spec.decomp, curve, plan)
	if total == 0 {
		return nil, fmt.Errorf("partition: hierarchy produced no units")
	}
	var weights []float64
	if plan != nil {
		if cap(plan.weights) < len(units) {
			plan.weights = make([]float64, len(units))
		}
		weights = plan.weights[:len(units)]
	} else {
		weights = make([]float64, len(units))
	}
	for i, u := range units {
		weights[i] = u.Weight
	}
	a := &Assignment{NProcs: nprocs, Units: units, Owner: spec.split(weights, nprocs), SplitCost: spec.cost}
	metricPartitionSeconds.With(p.Name()).Observe(time.Since(start).Seconds())
	if plan != nil {
		plan.lastReused, plan.lastTotal = reused, total
		plan.reusedUnits += int64(reused)
		plan.totalUnits += int64(total)
		metricPartitionReuse.Set(plan.LastReuseRatio())
	}
	return a, nil
}

package partition

import (
	"sort"

	"github.com/pragma-grid/pragma/internal/samr"
)

// This file holds the retained sequential reference kernels: the simple,
// obviously-correct cell-by-cell implementations the parallel CommPlan
// kernel is differentially tested against. They define the canonical
// semantics — per level ascending, cells in z, y, x order, each cell
// checking its +x, +y, +z face neighbors and then its coarse parent — and
// the canonical pair enumeration order. Production code should use
// BuildCommPlan; these exist for property tests and before/after
// benchmarking.

// ReferenceCommunication computes the assignment's communication
// statistics and cross-processor unit pairs with the pre-CommPlan
// sequential kernel: per-cell at() lookups and map-based pair dedup, one
// fused pass per level. BuildCommPlan must reproduce its output bit for
// bit.
func ReferenceCommunication(h *samr.Hierarchy, a *Assignment) (CommStats, []UnitPair) {
	st := CommStats{
		PerProcVolume:   make([]float64, a.NProcs),
		PerProcMessages: make([]float64, a.NProcs),
	}
	rs := unitRasters(a)
	pairIdx := map[uint64]int{}
	var pairList []UnitPair
	record := func(u1, u2 int32, vol, freq float64) {
		o1, o2 := a.Owner[u1], a.Owner[u2]
		if o1 == o2 {
			return
		}
		wvol := vol * freq
		st.Volume += wvol
		st.PerProcVolume[o1] += wvol
		st.PerProcVolume[o2] += wvol
		lo, hi := u1, u2
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(uint32(hi))
		i, seen := pairIdx[key]
		if !seen {
			pairIdx[key] = len(pairList)
			pairList = append(pairList, UnitPair{U1: int(lo), U2: int(hi), Frequency: freq})
			i = len(pairList) - 1
			st.Messages += freq
			st.PerProcMessages[o1] += freq
			st.PerProcMessages[o2] += freq
		}
		pairList[i].Faces += vol
	}
	levels := make([]int, 0, len(rs))
	for l := range rs {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		r := rs[l]
		var coarse *levelRaster
		if l > 0 {
			coarse = rs[l-1]
		}
		freq := 1.0
		for i := 0; i < l; i++ {
			freq *= float64(h.Ratio)
		}
		b := r.box
		for z := b.Lo[2]; z < b.Hi[2]; z++ {
			for y := b.Lo[1]; y < b.Hi[1]; y++ {
				for x := b.Lo[0]; x < b.Hi[0]; x++ {
					u := r.at(samr.Point{x, y, z})
					if u < 0 {
						continue
					}
					// Intra-level ghost faces: a level-l boundary is
					// exchanged on each of the level's Ratio^l MIT
					// sub-steps per coarse step.
					for _, n := range [3]samr.Point{{x + 1, y, z}, {x, y + 1, z}, {x, y, z + 1}} {
						nu := r.at(n)
						if nu >= 0 && nu != u {
							record(u, nu, 1, freq)
						}
					}
					// Inter-level transfer: fine cell vs parent coarse
					// cell, exchanged on every fine sub-step.
					if coarse != nil {
						cu := coarse.at(samr.Point{x / h.Ratio, y / h.Ratio, z / h.Ratio})
						if cu >= 0 && cu != u {
							record(u, cu, interLevelWeight, freq)
						}
					}
				}
			}
		}
	}
	return st, pairList
}

// ReferenceMigrationFraction computes the migration fraction with the
// pre-CommPlan sequential kernel: both assignments re-rasterized into
// owner maps and compared cell by cell. CommPlan.MigrationFrom must
// reproduce its output bit for bit.
func ReferenceMigrationFraction(prevH *samr.Hierarchy, prev *Assignment, h *samr.Hierarchy, a *Assignment) float64 {
	prevR := ownerRasters(prev)
	newR := ownerRasters(a)
	var both, moved int64
	for l, nr := range newR {
		pr, ok := prevR[l]
		if !ok {
			continue
		}
		common, ok := nr.box.Intersect(pr.box)
		if !ok {
			continue
		}
		for z := common.Lo[2]; z < common.Hi[2]; z++ {
			for y := common.Lo[1]; y < common.Hi[1]; y++ {
				for x := common.Lo[0]; x < common.Hi[0]; x++ {
					p := samr.Point{x, y, z}
					po, no := pr.at(p), nr.at(p)
					if po < 0 || no < 0 {
						continue
					}
					both++
					if po != no {
						moved++
					}
				}
			}
		}
	}
	if both == 0 {
		return 0
	}
	return float64(moved) / float64(both)
}

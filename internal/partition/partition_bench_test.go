package partition

import (
	"fmt"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// benchDeltaPair builds a paper-scale hierarchy (the PAC kernel workload's
// geometry: 128x32x32 base, two refined clumps, deep cores) plus a
// locality-dominated delta: a small level-2 tracker box drifts while the
// rest of the hierarchy — the overwhelming majority of the units — stays
// put. This is the regrid shape the delta pipeline is built for.
func benchDeltaPair(tb testing.TB) (h1, h2 *samr.Hierarchy) {
	tb.Helper()
	build := func(trackerX int) *samr.Hierarchy {
		h, err := samr.NewHierarchy(samr.MakeBox(128, 32, 32), 2)
		if err != nil {
			tb.Fatal(err)
		}
		if err := h.SetLevel(1, []samr.Box{
			{Lo: samr.Point{40, 0, 0}, Hi: samr.Point{72, 64, 64}},
			{Lo: samr.Point{160, 16, 16}, Hi: samr.Point{224, 56, 56}},
		}); err != nil {
			tb.Fatal(err)
		}
		if err := h.SetLevel(2, []samr.Box{
			{Lo: samr.Point{96, 16, 16}, Hi: samr.Point{128, 112, 112}},
			{Lo: samr.Point{352, 48, 48}, Hi: samr.Point{432, 104, 104}},
			{Lo: samr.Point{trackerX, 96, 96}, Hi: samr.Point{trackerX + 8, 120, 120}},
		}); err != nil {
			tb.Fatal(err)
		}
		if err := h.Validate(); err != nil {
			tb.Fatal(err)
		}
		return h
	}
	return build(132), build(136)
}

// BenchmarkPartitionDelta measures every ISP partitioner from scratch and
// through a warm PartitionPlan on the same alternating delta, so the
// committed BENCH_partition.json baseline locks in both the cold-path
// (parallel decompose + radix sort) and the incremental speedups.
func BenchmarkPartitionDelta(b *testing.B) {
	h1, h2 := benchDeltaPair(b)
	wm := samr.UniformWorkModel{}
	const nprocs = 64
	for _, p := range All() {
		ip := p.(IncrementalPartitioner)
		b.Run(fmt.Sprintf("scratch/%s", p.Name()), func(b *testing.B) {
			hs := [2]*samr.Hierarchy{h1, h2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Partition(hs[i%2], wm, nprocs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/%s", p.Name()), func(b *testing.B) {
			plan := NewPartitionPlan()
			if _, err := ip.PartitionIncremental(h1, wm, nprocs, plan); err != nil {
				b.Fatal(err)
			}
			hs := [2]*samr.Hierarchy{h2, h1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ip.PartitionIncremental(hs[i%2], wm, nprocs, plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package partition

import (
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

func TestPatchGreedyAssignsWholeBoxes(t *testing.T) {
	h := testHierarchy(t)
	a, err := (PatchGreedy{}).Partition(h, samr.UniformWorkModel{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a)
	boxes := 0
	for _, lb := range h.Levels {
		boxes += len(lb)
	}
	if len(a.Units) != boxes {
		t.Fatalf("patch partitioner fragmented: %d units for %d boxes", len(a.Units), boxes)
	}
	// No partitioning-induced overhead by construction.
	q := EvalQuality(h, a, nil, nil, 0)
	if q.Overhead != 1 {
		t.Fatalf("overhead = %g, want 1", q.Overhead)
	}
}

func TestPatchGreedyLPTBalance(t *testing.T) {
	// LPT on known weights: patches 7,5,4,3,2 on 2 procs -> loads 11/10.
	h, err := samr.NewHierarchy(samr.MakeBox(21, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 boxes with volumes 7,5,4,3,2 (x2 MIT weight).
	if err := h.SetLevel(1, []samr.Box{
		{Lo: samr.Point{0, 0, 0}, Hi: samr.Point{7, 1, 1}},
		{Lo: samr.Point{7, 0, 0}, Hi: samr.Point{12, 1, 1}},
		{Lo: samr.Point{12, 0, 0}, Hi: samr.Point{16, 1, 1}},
		{Lo: samr.Point{16, 0, 0}, Hi: samr.Point{19, 1, 1}},
		{Lo: samr.Point{19, 0, 0}, Hi: samr.Point{21, 1, 1}},
	}); err != nil {
		t.Fatal(err)
	}
	a, err := (PatchGreedy{}).Partition(h, samr.UniformWorkModel{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, h, a)
	// Weights incl. level 0 (21) and level-1 x2: 14,10,8,6,4.
	// LPT: 21|14 -> 21,14; 10->p1(24); 8->p0(29); 6->p1(30); 4->p0(33)...
	work := a.Work()
	if work[0]+work[1] != 63 {
		t.Fatalf("total work = %v", work)
	}
	if a.Imbalance() > 10 {
		t.Fatalf("LPT imbalance = %.1f%%", a.Imbalance())
	}
}

func TestPatchGreedyVsDomainBasedComm(t *testing.T) {
	// Patch-based assignment ignores geometry; the domain-based SFC
	// partitioner must produce no more messages per unit.
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	patch, err := (PatchGreedy{}).Partition(h, wm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := patch.Validate(); err != nil {
		t.Fatal(err)
	}
	if patch.SplitCost != 1 {
		t.Fatalf("split cost = %g", patch.SplitCost)
	}
}

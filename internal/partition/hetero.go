package partition

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
	"github.com/pragma-grid/pragma/internal/sfc"
)

// EqualBlock is the default partitioning scheme of §4.6: "an equal
// distribution of the workload on the processors", ignoring processor
// capacities. It is the baseline the system-sensitive partitioner is
// compared against in Table 5.
type EqualBlock struct {
	Curve       sfc.Curve
	Granularity int
}

// Name implements Partitioner.
func (EqualBlock) Name() string { return "EqualBlock" }

// Partition implements Partitioner: equal-share greedy split along the
// curve.
func (p EqualBlock) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	if err := checkArgs(h, nprocs); err != nil {
		return nil, err
	}
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, nprocs, 16, 2, 12)
	}
	units, err := prepare(h, wm, nprocs, func() []Unit { return blockUnits(h, wm, g) }, p.Curve)
	if err != nil {
		return nil, err
	}
	return assemble(units, greedyPrefix(weightsOf(units), nprocs), nprocs), nil
}

// Heterogeneous is the system-sensitive partitioner of §4.6 (Fig. 4): the
// workload is distributed proportionally to per-processor relative
// capacities computed from resource monitoring.
type Heterogeneous struct {
	Curve       sfc.Curve
	Granularity int
}

// Name implements Partitioner.
func (Heterogeneous) Name() string { return "Heterogeneous" }

// Partition implements Partitioner; without capacity information every
// processor gets an equal share.
func (p Heterogeneous) Partition(h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	caps := make([]float64, nprocs)
	for i := range caps {
		caps[i] = 1
	}
	return p.PartitionWeighted(h, wm, caps)
}

// PartitionWeighted implements CapacityPartitioner: chunk weights follow the
// relative capacities.
func (p Heterogeneous) PartitionWeighted(h *samr.Hierarchy, wm samr.WorkModel, capacities []float64) (*Assignment, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("partition: no capacities")
	}
	for i, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("partition: negative capacity %g for processor %d", c, i)
		}
	}
	if err := checkArgs(h, len(capacities)); err != nil {
		return nil, err
	}
	g := p.Granularity
	if g == 0 {
		g = granularityFor(h, len(capacities), 16, 2, 12)
	}
	units, err := prepare(h, wm, len(capacities), func() []Unit { return blockUnits(h, wm, g) }, p.Curve)
	if err != nil {
		return nil, err
	}
	return assemble(units, weightedSequence(weightsOf(units), capacities), len(capacities)), nil
}

var _ CapacityPartitioner = Heterogeneous{}

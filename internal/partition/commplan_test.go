package partition

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// diffSuite is the partitioner set used to produce realistic assignments
// for the differential tests.
func diffSuite() []Partitioner {
	return []Partitioner{SFC{}, GMISPSP{}, PBDISP{}, EqualBlock{}}
}

// requirePlanMatchesReference asserts the parallel kernel reproduces the
// sequential reference bit for bit: CommStats (including per-processor
// shares), the pair list in canonical order, and self-migration.
func requirePlanMatchesReference(t *testing.T, h *samr.Hierarchy, a *Assignment, label string) *CommPlan {
	t.Helper()
	plan := BuildCommPlan(h, a)
	refSt, refPairs := ReferenceCommunication(h, a)
	if !reflect.DeepEqual(plan.Stats, refSt) {
		t.Fatalf("%s: stats diverge\n plan: %+v\n  ref: %+v", label, plan.Stats, refSt)
	}
	if len(plan.Pairs) != len(refPairs) {
		t.Fatalf("%s: %d pairs, reference has %d", label, len(plan.Pairs), len(refPairs))
	}
	for i := range refPairs {
		if plan.Pairs[i] != refPairs[i] {
			t.Fatalf("%s: pair %d = %+v, reference %+v", label, i, plan.Pairs[i], refPairs[i])
		}
	}
	if got := plan.MigrationFrom(plan); got != 0 {
		t.Fatalf("%s: self-migration = %g, want 0", label, got)
	}
	return plan
}

// TestCommPlanMatchesReferenceSuite checks every partitioner at several
// processor counts on the representative hierarchy, at GOMAXPROCS 1 and
// a multi-worker setting — the sums are exact integers scaled by
// quarter-faces, so the slab decomposition must not change a single bit.
func TestCommPlanMatchesReferenceSuite(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, p := range diffSuite() {
			for _, nprocs := range []int{1, 2, 7, 16, 64} {
				a, err := p.Partition(h, wm, nprocs)
				if err != nil {
					t.Fatalf("%s/%d: %v", p.Name(), nprocs, err)
				}
				requirePlanMatchesReference(t, h, a, p.Name())
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestCommPlanDifferentialRandom fuzzes the kernels against each other on
// randomized hierarchies and assignments, comparing communication and
// migration between independently partitioned prev/new configurations.
func TestCommPlanDifferentialRandom(t *testing.T) {
	wm := samr.UniformWorkModel{}
	suite := diffSuite()
	rng := rand.New(rand.NewSource(7))
	iters := 40
	if testing.Short() {
		iters = 12
	}
	for it := 0; it < iters; it++ {
		h := randomHierarchy(rng.Int63())
		prevH := h
		if rng.Intn(2) == 0 {
			prevH = randomHierarchy(rng.Int63())
		}
		nprocs := 1 + rng.Intn(24)
		p := suite[rng.Intn(len(suite))]
		pp := suite[rng.Intn(len(suite))]
		a, err := p.Partition(h, wm, nprocs)
		if err != nil {
			t.Fatalf("iter %d: %s: %v", it, p.Name(), err)
		}
		prev, err := pp.Partition(prevH, wm, 1+rng.Intn(24))
		if err != nil {
			t.Fatalf("iter %d: %s: %v", it, pp.Name(), err)
		}
		plan := requirePlanMatchesReference(t, h, a, p.Name())
		prevPlan := BuildRasterPlan(prevH, prev)
		got := plan.MigrationFrom(prevPlan)
		want := ReferenceMigrationFraction(prevH, prev, h, a)
		if got != want {
			t.Fatalf("iter %d: migration %g, reference %g", it, got, want)
		}
		if wrapped := MigrationFraction(prevH, prev, h, a); wrapped != want {
			t.Fatalf("iter %d: MigrationFraction wrapper %g, reference %g", it, wrapped, want)
		}
	}
}

// TestCommPlanGOMAXPROCSInvariance builds the same plan under several
// GOMAXPROCS settings and requires byte-identical results — the
// determinism contract of the z-slab parallelization.
func TestCommPlanGOMAXPROCSInvariance(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	a, err := (GMISPSP{}).Partition(h, wm, 16)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := (PBDISP{}).Partition(h, wm, 16)
	if err != nil {
		t.Fatal(err)
	}
	prevGMP := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prevGMP)
	base := BuildCommPlan(h, a)
	baseMig := base.MigrationFrom(BuildRasterPlan(h, prev))
	for _, procs := range []int{2, 3, 8} {
		runtime.GOMAXPROCS(procs)
		plan := BuildCommPlan(h, a)
		if !reflect.DeepEqual(plan.Stats, base.Stats) || !reflect.DeepEqual(plan.Pairs, base.Pairs) {
			t.Fatalf("GOMAXPROCS=%d: plan diverges from GOMAXPROCS=1", procs)
		}
		if mig := plan.MigrationFrom(BuildRasterPlan(h, prev)); mig != baseMig {
			t.Fatalf("GOMAXPROCS=%d: migration %g, want %g", procs, mig, baseMig)
		}
	}
}

// TestCommPlanNegativeCoordinates exercises index spaces with negative
// lows: the strided sweep's integer division for parent lookups must
// match the reference's semantics exactly.
func TestCommPlanNegativeCoordinates(t *testing.T) {
	domain := samr.Box{Lo: samr.Point{-8, -4, -4}, Hi: samr.Point{8, 4, 4}}
	h, err := samr.NewHierarchy(domain, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetLevel(1, []samr.Box{{Lo: samr.Point{-10, -6, -6}, Hi: samr.Point{6, 2, 2}}}); err != nil {
		t.Fatal(err)
	}
	a := &Assignment{
		NProcs: 3,
		Units: []Unit{
			{Level: 0, Box: samr.Box{Lo: samr.Point{-8, -4, -4}, Hi: samr.Point{0, 4, 4}}, Weight: 1},
			{Level: 0, Box: samr.Box{Lo: samr.Point{0, -4, -4}, Hi: samr.Point{8, 4, 4}}, Weight: 1},
			{Level: 1, Box: samr.Box{Lo: samr.Point{-10, -6, -6}, Hi: samr.Point{-2, 2, 2}}, Weight: 1},
			{Level: 1, Box: samr.Box{Lo: samr.Point{-2, -6, -6}, Hi: samr.Point{6, 2, 2}}, Weight: 1},
		},
		Owner: []int{0, 1, 2, 0},
	}
	requirePlanMatchesReference(t, h, a, "negative-lo")
}

// TestCommPlanEmptyAndSingleOwner covers the degenerate ends: an
// assignment with no cross-processor contact produces empty pairs and
// zero stats, and a single-unit assignment has nothing to exchange.
func TestCommPlanEmptyAndSingleOwner(t *testing.T) {
	h := flatHierarchy(t, 8, 4, 4)
	solo := manualAssignment(2, pair{samr.MakeBox(8, 4, 4), 1})
	plan := requirePlanMatchesReference(t, h, solo, "single-unit")
	if plan.Stats.Volume != 0 || plan.Stats.Messages != 0 || len(plan.Pairs) != 0 {
		t.Fatalf("single-unit plan not empty: %+v", plan.Stats)
	}
	sameOwner := manualAssignment(2,
		pair{samr.MakeBox(4, 4, 4), 1},
		pair{samr.Box{Lo: samr.Point{4, 0, 0}, Hi: samr.Point{8, 4, 4}}, 1},
	)
	plan = requirePlanMatchesReference(t, h, sameOwner, "same-owner")
	if plan.Stats.Volume != 0 || len(plan.Pairs) != 0 {
		t.Fatalf("same-owner plan not empty: %+v", plan.Stats)
	}
}

// TestEvalQualityPlanMatchesEvalQuality: the plan-threading fast path and
// the convenience wrapper must agree exactly.
func TestEvalQualityPlanMatchesEvalQuality(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	a, err := (GMISPSP{}).Partition(h, wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := (SFC{}).Partition(h, wm, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := EvalQuality(h, a, h, prev, 0)
	got := EvalQualityPlan(BuildCommPlan(h, a), BuildRasterPlan(h, prev), 0)
	if got != want {
		t.Fatalf("EvalQualityPlan = %+v, EvalQuality = %+v", got, want)
	}
}

// TestRasterizationSharing: one BuildCommPlan rasterizes the assignment
// exactly once, and every consumer of the plan — stats, pairs, migration
// in either direction — adds zero further rasterizations.
func TestRasterizationSharing(t *testing.T) {
	h := testHierarchy(t)
	wm := samr.UniformWorkModel{}
	a, _ := (GMISPSP{}).Partition(h, wm, 8)
	b, _ := (PBDISP{}).Partition(h, wm, 8)

	before := Rasterizations()
	planA := BuildCommPlan(h, a)
	if got := Rasterizations() - before; got != 1 {
		t.Fatalf("BuildCommPlan rasterized %d times, want 1", got)
	}
	planB := BuildCommPlan(h, b)
	before = Rasterizations()
	_ = planA.Stats
	_ = planA.Pairs
	_ = planA.MigrationFrom(planB)
	_ = planB.MigrationFrom(planA)
	if got := Rasterizations() - before; got != 0 {
		t.Fatalf("plan consumers rasterized %d times, want 0", got)
	}
	before = Rasterizations()
	EvalQualityPlan(planA, planB, 0)
	if got := Rasterizations() - before; got != 0 {
		t.Fatalf("EvalQualityPlan rasterized %d times, want 0", got)
	}
}

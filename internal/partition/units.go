package partition

import (
	"math"

	"github.com/pragma-grid/pragma/internal/samr"
)

// blockUnits decomposes every hierarchy box into blocks of at most
// `side` cells per axis (in level coordinates) and weighs them with the
// work model. side <= 0 keeps whole hierarchy boxes as units ("patch
// granularity").
func blockUnits(h *samr.Hierarchy, wm samr.WorkModel, side int) []Unit {
	var units []Unit
	for l, boxes := range h.Levels {
		for _, b := range boxes {
			if side <= 0 {
				units = append(units, Unit{Level: l, Box: b, Weight: wm.BoxWork(h, l, b)})
				continue
			}
			for x := b.Lo[0]; x < b.Hi[0]; x += side {
				for y := b.Lo[1]; y < b.Hi[1]; y += side {
					for z := b.Lo[2]; z < b.Hi[2]; z += side {
						blk := samr.Box{
							Lo: samr.Point{x, y, z},
							Hi: samr.Point{
								min(x+side, b.Hi[0]),
								min(y+side, b.Hi[1]),
								min(z+side, b.Hi[2]),
							},
						}
						units = append(units, Unit{Level: l, Box: blk, Weight: wm.BoxWork(h, l, blk)})
					}
				}
			}
		}
	}
	return units
}

// variableGrainUnits implements the "variable grain geometric multilevel"
// decomposition of G-MISP: it starts from whole hierarchy boxes and
// recursively halves any unit heavier than threshold along its longest
// axis, until the unit is light enough or minSide is reached. Heavy regions
// end up finely subdivided while light regions stay coarse.
func variableGrainUnits(h *samr.Hierarchy, wm samr.WorkModel, threshold float64, minSide int) []Unit {
	if minSide < 1 {
		minSide = 1
	}
	var units []Unit
	var split func(l int, b samr.Box)
	split = func(l int, b samr.Box) {
		w := wm.BoxWork(h, l, b)
		longest := 0
		for d := 1; d < 3; d++ {
			if b.Dx(d) > b.Dx(longest) {
				longest = d
			}
		}
		if w <= threshold || b.Dx(longest) < 2*minSide {
			units = append(units, Unit{Level: l, Box: b, Weight: w})
			return
		}
		lo, hi := b.Split(longest, b.Lo[longest]+b.Dx(longest)/2)
		split(l, lo)
		split(l, hi)
	}
	for l, boxes := range h.Levels {
		for _, b := range boxes {
			split(l, b)
		}
	}
	return units
}

// granularityFor picks a block side so the decomposition yields roughly
// targetUnitsPerProc*nprocs units, clamped to [minSide, maxSide]. Fixed
// granularities behave pathologically when the refined region shrinks (a
// thin shock sheet at coarse granularity can yield fewer units than
// processors), so the default granularity of every ISP partitioner adapts
// to the hierarchy. The side is the largest s with s^3 <= cells/target —
// the integer cube root of cells/target — computed directly (with a
// float-seed correction, since math.Cbrt can land one off for large
// values) rather than by linear probing.
func granularityFor(h *samr.Hierarchy, nprocs, targetUnitsPerProc, minSide, maxSide int) int {
	var cells int64
	for l := range h.Levels {
		cells += h.CellsAtLevel(l)
	}
	target := int64(nprocs * targetUnitsPerProc)
	if target < 1 {
		target = 1
	}
	per := cells / target
	side := int(math.Cbrt(float64(per)))
	for cube(side+1) <= per {
		side++
	}
	for side > 0 && cube(side) > per {
		side--
	}
	side = min(side, maxSide)
	return max(side, minSide)
}

func cube(s int) int64 { return int64(s) * int64(s) * int64(s) }

package partition

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/pragma-grid/pragma/internal/samr"
)

// The delta-regrid pipeline's contract (DESIGN.md §16): for any sequence of
// hierarchy deltas, any work model, any processor count, any GOMAXPROCS,
// and any plan state (warm, cold, or nil), every incremental partitioner
// output is bit-identical to ReferencePartition — the retained sequential
// from-scratch pipeline. These tests mirror the PAC kernel's
// TestCommPlanDifferentialRandom / TestCommPlanGOMAXPROCSInvariance.

// clampBox intersects b with dom; an empty result is reported as the zero
// box, which Validate rejects (the caller retries the mutation).
func clampBox(b, dom samr.Box) samr.Box {
	inter, ok := b.Intersect(dom)
	if !ok {
		return samr.Box{}
	}
	return inter
}

func appendRandomBox(c *samr.Hierarchy, rng *rand.Rand) bool {
	dom := c.LevelDomain(1)
	lo := samr.Point{
		dom.Lo[0] + rng.Intn(max(dom.Dx(0)-4, 1)),
		dom.Lo[1] + rng.Intn(max(dom.Dx(1)-4, 1)),
		dom.Lo[2] + rng.Intn(max(dom.Dx(2)-4, 1)),
	}
	b := clampBox(samr.Box{Lo: lo, Hi: samr.Point{
		lo[0] + 2 + rng.Intn(8), lo[1] + 2 + rng.Intn(6), lo[2] + 2 + rng.Intn(6)}}, dom)
	if b.Empty() {
		return false
	}
	if len(c.Levels) < 2 {
		return c.SetLevel(1, []samr.Box{b}) == nil
	}
	c.Levels[1] = append(append([]samr.Box(nil), c.Levels[1]...), b)
	return true
}

func mutateOnce(c *samr.Hierarchy, rng *rand.Rand) bool {
	if len(c.Levels) < 2 || len(c.Levels[1]) == 0 {
		return appendRandomBox(c, rng)
	}
	boxes := c.Levels[1]
	i := rng.Intn(len(boxes))
	dom := c.LevelDomain(1)
	switch rng.Intn(6) {
	case 0: // grow one face
		b := boxes[i]
		d := rng.Intn(3)
		if rng.Intn(2) == 0 {
			b.Lo[d] -= 1 + rng.Intn(3)
		} else {
			b.Hi[d] += 1 + rng.Intn(3)
		}
		boxes[i] = clampBox(b, dom)
	case 1: // shrink one face
		b := boxes[i]
		d := rng.Intn(3)
		n := 1 + rng.Intn(2)
		if b.Dx(d) <= n+1 {
			return false
		}
		if rng.Intn(2) == 0 {
			b.Lo[d] += n
		} else {
			b.Hi[d] -= n
		}
		boxes[i] = b
	case 2: // move
		sh := samr.Point{rng.Intn(7) - 3, rng.Intn(5) - 2, rng.Intn(5) - 2}
		boxes[i] = clampBox(boxes[i].Shift(sh), dom)
	case 3: // vanish
		c.Levels[1] = append(boxes[:i:i], boxes[i+1:]...)
		if len(c.Levels[1]) == 0 {
			c.Levels = c.Levels[:1]
		}
	case 4: // appear
		return appendRandomBox(c, rng)
	case 5: // toggle a level-2 core nested in box i (depth change)
		if len(c.Levels) > 2 && rng.Intn(2) == 0 {
			c.Levels = c.Levels[:2]
			return true
		}
		b := boxes[i]
		if b.Dx(0) < 4 || b.Dx(1) < 4 || b.Dx(2) < 4 {
			return false
		}
		core := samr.Box{
			Lo: samr.Point{b.Lo[0] + 1, b.Lo[1] + 1, b.Lo[2] + 1},
			Hi: samr.Point{b.Hi[0] - 1, b.Hi[1] - 1, b.Hi[2] - 1},
		}.Refine(c.Ratio)
		return c.SetLevel(2, []samr.Box{core}) == nil
	}
	return true
}

// mutateHierarchy applies one random structural delta (grow / shrink /
// move / appear / vanish a level-1 box, or toggle a level-2 core) and
// returns a new valid hierarchy. Deltas violating hierarchy invariants
// (overlap, escape, nesting) are discarded and retried; after 8 failed
// attempts the input is returned unchanged.
func mutateHierarchy(h *samr.Hierarchy, rng *rand.Rand) *samr.Hierarchy {
	for attempt := 0; attempt < 8; attempt++ {
		c := h.Clone()
		if mutateOnce(c, rng) && c.Validate() == nil {
			return c
		}
	}
	return h
}

func requireSameAssignment(t *testing.T, label string, inc, ref *Assignment) {
	t.Helper()
	if !reflect.DeepEqual(inc, ref) {
		t.Fatalf("%s: incremental assignment diverges from from-scratch reference\nincremental: nunits=%d owner=%v\nreference:   nunits=%d owner=%v",
			label, len(inc.Units), inc.Owner, len(ref.Units), ref.Owner)
	}
}

func TestDeltaPartitionDifferentialRandom(t *testing.T) {
	iters := 30
	cycles := 6
	if testing.Short() {
		iters = 8
	}
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < iters; it++ {
		h := randomHierarchy(rng.Int63())
		plan := NewPartitionPlan()
		nprocs := 1 + rng.Intn(24)
		var wm samr.WorkModel = samr.UniformWorkModel{}
		for cycle := 0; cycle < cycles; cycle++ {
			if cycle > 0 {
				h = mutateHierarchy(h, rng)
				if rng.Intn(4) == 0 {
					nprocs = 1 + rng.Intn(24)
				}
				switch rng.Intn(8) {
				case 0:
					// Changed comparable model: cached weights must not leak.
					wm = samr.UniformWorkModel{CellCost: 1 + float64(rng.Intn(3))}
				case 1:
					// Uncomparable model: reuse must disable itself.
					wm = samr.FrontWorkModel{
						Base:   samr.UniformWorkModel{},
						Fronts: []samr.Front{{Region: h.Domain, Multiplier: 2.5}},
					}
				}
			}
			for _, p := range All() {
				ip := p.(IncrementalPartitioner)
				inc, errInc := ip.PartitionIncremental(h, wm, nprocs, plan)
				ref, errRef := ReferencePartition(p, h, wm, nprocs)
				if (errInc != nil) != (errRef != nil) {
					t.Fatalf("iter %d cycle %d %s: incremental err %v, reference err %v",
						it, cycle, p.Name(), errInc, errRef)
				}
				if errInc != nil {
					continue
				}
				requireSameAssignment(t, p.Name(), inc, ref)
			}
		}
	}
}

// deltaSequence is a deterministic 3-level regrid sequence: the paper-style
// blob's level-2 core drifts, then a level-1 slab shrinks — the
// locality-dominated deltas the pipeline is built for.
func deltaSequence(t testing.TB) []*samr.Hierarchy {
	t.Helper()
	h0 := testHierarchy(t)
	h1 := h0.Clone()
	h1.Levels[2] = []samr.Box{{Lo: samr.Point{174, 50, 50}, Hi: samr.Point{218, 86, 86}}}
	h2 := h1.Clone()
	h2.Levels[1] = append([]samr.Box(nil), h2.Levels[1]...)
	h2.Levels[1][0] = samr.Box{Lo: samr.Point{20, 0, 0}, Hi: samr.Point{34, 64, 64}}
	for i, h := range []*samr.Hierarchy{h0, h1, h2} {
		if err := h.Validate(); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	return []*samr.Hierarchy{h0, h1, h2}
}

func TestDeltaPartitionGOMAXPROCSInvariance(t *testing.T) {
	seq := deltaSequence(t)
	wm := samr.UniformWorkModel{}
	const nprocs = 13

	run := func() map[string][]*Assignment {
		out := map[string][]*Assignment{}
		plan := NewPartitionPlan()
		for _, h := range seq {
			for _, p := range All() {
				a, err := p.(IncrementalPartitioner).PartitionIncremental(h, wm, nprocs, plan)
				if err != nil {
					t.Fatalf("%s: %v", p.Name(), err)
				}
				out[p.Name()] = append(out[p.Name()], a)
			}
		}
		return out
	}

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(1)
	want := run()
	for _, procs := range []int{2, 3, 8} {
		runtime.GOMAXPROCS(procs)
		got := run()
		for name, as := range got {
			for i, a := range as {
				requireSameAssignment(t, name, a, want[name][i])
			}
		}
	}
}

// TestDeltaPartitionColdPlanMatchesWarm proves resume-from-checkpoint
// semantics: a cold plan (fresh after resume), a warm plan, and no plan at
// all agree bit-for-bit on the same hierarchy.
func TestDeltaPartitionColdPlanMatchesWarm(t *testing.T) {
	seq := deltaSequence(t)
	wm := samr.UniformWorkModel{}
	const nprocs = 9
	warm := NewPartitionPlan()
	for _, p := range All() {
		ip := p.(IncrementalPartitioner)
		var last *Assignment
		for _, h := range seq {
			a, err := ip.PartitionIncremental(h, wm, nprocs, warm)
			if err != nil {
				t.Fatal(err)
			}
			last = a
		}
		final := seq[len(seq)-1]
		cold, err := ip.PartitionIncremental(final, wm, nprocs, NewPartitionPlan())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := p.Partition(final, wm, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		requireSameAssignment(t, p.Name()+" cold-vs-warm", cold, last)
		requireSameAssignment(t, p.Name()+" nil-plan-vs-warm", plain, last)
	}
}

func TestPartitionPlanReuse(t *testing.T) {
	seq := deltaSequence(t)
	wm := samr.UniformWorkModel{}
	plan := NewPartitionPlan()
	p := SFC{}
	if _, err := p.PartitionIncremental(seq[0], wm, 16, plan); err != nil {
		t.Fatal(err)
	}
	if got := plan.LastReuseRatio(); got != 0 {
		t.Fatalf("cold build reuse ratio = %v, want 0", got)
	}
	if _, err := p.PartitionIncremental(seq[1], wm, 16, plan); err != nil {
		t.Fatal(err)
	}
	if got := plan.LastReuseRatio(); got < 0.5 {
		t.Fatalf("locality delta reuse ratio = %v, want >= 0.5", got)
	}
	reused, total := plan.Stats()
	if reused <= 0 || total <= reused {
		t.Fatalf("stats reused=%d total=%d, want 0 < reused < total", reused, total)
	}
}

// granularityForProbe is the original linear-probe implementation, kept as
// the table-test oracle for the closed-form cube-root version.
func granularityForProbe(h *samr.Hierarchy, nprocs, targetUnitsPerProc, minSide, maxSide int) int {
	var cells int64
	for l := range h.Levels {
		cells += h.CellsAtLevel(l)
	}
	target := int64(nprocs * targetUnitsPerProc)
	if target < 1 {
		target = 1
	}
	side := minSide
	for side < maxSide {
		next := side + 1
		perUnit := int64(next) * int64(next) * int64(next)
		if cells/perUnit < target {
			break
		}
		side = next
	}
	return side
}

func TestGranularityForMatchesProbe(t *testing.T) {
	tiny, err := samr.NewHierarchy(samr.MakeBox(1, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := []*samr.Hierarchy{tiny, testHierarchy(t), randomHierarchy(3), randomHierarchy(99)}
	for _, h := range hs {
		for _, nprocs := range []int{1, 2, 7, 16, 64, 333} {
			for _, target := range []int{0, 1, 3, 10, 48} {
				for minSide := 1; minSide <= 6; minSide++ {
					for maxSide := minSide; maxSide <= minSide+25; maxSide += 5 {
						got := granularityFor(h, nprocs, target, minSide, maxSide)
						want := granularityForProbe(h, nprocs, target, minSide, maxSide)
						if got != want {
							t.Fatalf("granularityFor(cells of %v, nprocs=%d, target=%d, min=%d, max=%d) = %d, probe = %d",
								h.Domain, nprocs, target, minSide, maxSide, got, want)
						}
					}
				}
			}
		}
	}
}

func FuzzDeltaPartition(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 1, 2})
	f.Add(int64(7), uint8(1), []byte{3, 4, 5, 0})
	f.Add(int64(42), uint8(16), []byte{5, 5, 2, 2, 1})
	f.Add(int64(-3), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, procsRaw uint8, ops []byte) {
		h := randomHierarchy(seed)
		nprocs := 1 + int(procsRaw%24)
		var wm samr.WorkModel = samr.UniformWorkModel{}
		plan := NewPartitionPlan()
		if len(ops) > 5 {
			ops = ops[:5]
		}
		for cycle := 0; cycle <= len(ops); cycle++ {
			if cycle > 0 {
				op := ops[cycle-1]
				rng := rand.New(rand.NewSource(seed ^ int64(op)*1099511628211 ^ int64(cycle)))
				h = mutateHierarchy(h, rng)
				if op%7 == 6 {
					nprocs = 1 + int(op)%24
				}
				if op%11 == 10 {
					wm = samr.UniformWorkModel{CellCost: 2}
				}
			}
			for _, p := range All() {
				inc, errInc := p.(IncrementalPartitioner).PartitionIncremental(h, wm, nprocs, plan)
				ref, errRef := ReferencePartition(p, h, wm, nprocs)
				if (errInc != nil) != (errRef != nil) {
					t.Fatalf("%s: incremental err %v, reference err %v", p.Name(), errInc, errRef)
				}
				if errInc != nil {
					continue
				}
				if !reflect.DeepEqual(inc, ref) {
					t.Fatalf("%s cycle %d: incremental diverges from reference", p.Name(), cycle)
				}
			}
		}
	})
}

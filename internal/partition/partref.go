package partition

// Retained from-scratch sequential reference for the ISP partitioner
// pipeline, mirroring commref.go for the PAC kernel: the delta-regrid
// pipeline in plan.go must produce bit-identical assignments to this
// implementation for any plan state and any GOMAXPROCS. The differential
// and fuzz suites in plan_test.go enforce the equivalence; keep this file
// boring and obviously sequential.

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/samr"
)

// Compile-time proof that the whole ISP suite is delta-aware.
var (
	_ IncrementalPartitioner = SFC{}
	_ IncrementalPartitioner = GMISP{}
	_ IncrementalPartitioner = GMISPSP{}
	_ IncrementalPartitioner = PBDISP{}
	_ IncrementalPartitioner = SPISP{}
	_ IncrementalPartitioner = ISP{}
)

// ReferencePartition partitions h with the original sequential pipeline:
// sequential decomposition (blockUnits / variableGrainUnits), stable
// sort-based curve ordering (orderUnits), then the partitioner's splitter.
// It consumes the same pipelineSpec as the production path, so the two can
// only differ in mechanism, never in parameters. Partitioners outside the
// shared pipeline fall through to their own Partition.
func ReferencePartition(p Partitioner, h *samr.Hierarchy, wm samr.WorkModel, nprocs int) (*Assignment, error) {
	pp, ok := p.(pipelinePartitioner)
	if !ok {
		return p.Partition(h, wm, nprocs)
	}
	if err := checkArgs(h, nprocs); err != nil {
		return nil, err
	}
	spec := pp.pipeline(h, wm, nprocs)
	var units []Unit
	switch spec.decomp.kind {
	case decompVarGrain:
		units = variableGrainUnits(h, wm, spec.decomp.threshold, spec.decomp.minSide)
	default:
		units = blockUnits(h, wm, spec.decomp.side)
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("partition: hierarchy produced no units")
	}
	curve := spec.curve
	if curve == nil {
		curve = curveFor(h)
	}
	orderUnits(units, h, curve)
	return assembleWith(units, spec.split(weightsOf(units), nprocs), nprocs, spec.cost), nil
}

package perf

import (
	"math"
	"testing"
)

func trainedNeural(t *testing.T) *Neural {
	t.Helper()
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i) * 40
		ys[i] = 1e-4 + 2e-6*xs[i]
	}
	n, err := TrainNeural("pc1", xs, ys, TrainOptions{Seed: 1, Epochs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNeuralPersistRoundTrip(t *testing.T) {
	n := trainedNeural(t)
	data, err := MarshalPF(n)
	if err != nil {
		t.Fatal(err)
	}
	restoredAny, err := UnmarshalPF(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := restoredAny.(*Neural)
	if !ok {
		t.Fatalf("restored type %T", restoredAny)
	}
	if restored.Name() != "pc1" {
		t.Fatalf("name = %q", restored.Name())
	}
	for _, x := range []float64{100, 555, 1100} {
		if a, b := n.Eval(x), restored.Eval(x); math.Abs(a-b) > 1e-15 {
			t.Fatalf("eval(%g): %g vs %g", x, a, b)
		}
	}
}

func TestMultiNeuralPersistRoundTrip(t *testing.T) {
	xs := [][]float64{{100, 0}, {500, 0.5}, {900, 1}, {300, 0.2}, {700, 0.9}}
	ys := []float64{1, 2, 3, 1.5, 2.7}
	n, err := TrainMultiNeural("link", xs, ys, TrainOptions{Seed: 2, Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPF(n)
	if err != nil {
		t.Fatal(err)
	}
	restoredAny, err := UnmarshalPF(data)
	if err != nil {
		t.Fatal(err)
	}
	restored := restoredAny.(*MultiNeural)
	if restored.Arity() != 2 {
		t.Fatalf("arity = %d", restored.Arity())
	}
	probe := []float64{420, 0.3}
	if a, b := n.EvalVec(probe), restored.EvalVec(probe); math.Abs(a-b) > 1e-15 {
		t.Fatalf("eval: %g vs %g", a, b)
	}
}

func TestPolyPersistRoundTrip(t *testing.T) {
	p := Poly{Label: "switch", Coef: []float64{1e-4, 2e-6, 3e-9}}
	data, err := MarshalPF(p)
	if err != nil {
		t.Fatal(err)
	}
	restoredAny, err := UnmarshalPF(data)
	if err != nil {
		t.Fatal(err)
	}
	restored := restoredAny.(Poly)
	if restored.Eval(500) != p.Eval(500) {
		t.Fatal("poly eval differs after round trip")
	}
	// Pointer form marshals too.
	if _, err := MarshalPF(&p); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	if _, err := MarshalPF(42); err == nil {
		t.Error("non-PF accepted")
	}
	if _, err := UnmarshalPF([]byte(`{`)); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := UnmarshalPF([]byte(`{"kind":"alien","body":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := UnmarshalPF([]byte(`{"kind":"neural","body":{"w1":[],"b1":[],"w2":[]}}`)); err == nil {
		t.Error("corrupt neural accepted")
	}
	if _, err := UnmarshalPF([]byte(`{"kind":"multi-neural","body":{"arity":0}}`)); err == nil {
		t.Error("corrupt multi-neural accepted")
	}
	if _, err := UnmarshalPF([]byte(`{"kind":"multi-neural","body":{"arity":2,"w1":[[1]],"xLo":[0,0],"xHi":[1,1]}}`)); err == nil {
		t.Error("ragged multi-neural weights accepted")
	}
	if _, err := UnmarshalPF([]byte(`{"kind":"poly","body":{"Coef":[]}}`)); err == nil {
		t.Error("empty poly accepted")
	}
}

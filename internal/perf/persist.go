package perf

import (
	"encoding/json"
	"fmt"
)

// PF persistence. Performance functions are fitted offline from component
// measurements and then used at runtime by the performance analysis module;
// persisting them makes the fitted models reusable assets, like the policy
// base's rules and the template registry's blueprints.

// persistedPF is the envelope wrapping any serializable PF.
type persistedPF struct {
	Kind string          `json:"kind"` // "neural", "multi-neural", "poly"
	Body json.RawMessage `json:"body"`
}

type neuralBody struct {
	Label string    `json:"label"`
	W1    []float64 `json:"w1"`
	B1    []float64 `json:"b1"`
	W2    []float64 `json:"w2"`
	B2    float64   `json:"b2"`
	XLo   float64   `json:"xLo"`
	XHi   float64   `json:"xHi"`
	YLo   float64   `json:"yLo"`
	YHi   float64   `json:"yHi"`
}

// MarshalPF serializes a Neural, MultiNeural or Poly performance function.
func MarshalPF(pf interface{}) ([]byte, error) {
	switch p := pf.(type) {
	case *Neural:
		body, err := json.Marshal(neuralBody{
			Label: p.Label, W1: p.w1, B1: p.b1, W2: p.w2, B2: p.b2,
			XLo: p.xLo, XHi: p.xHi, YLo: p.yLo, YHi: p.yHi,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(persistedPF{Kind: "neural", Body: body})
	case *MultiNeural:
		body, err := json.Marshal(multiNeuralBody{
			Label: p.Label, Arity: p.arity,
			W1: p.w1, B1: p.b1, W2: p.w2, B2: p.b2,
			XLo: p.xLo, XHi: p.xHi, YLo: p.yLo, YHi: p.yHi,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(persistedPF{Kind: "multi-neural", Body: body})
	case Poly:
		body, err := json.Marshal(p)
		if err != nil {
			return nil, err
		}
		return json.Marshal(persistedPF{Kind: "poly", Body: body})
	case *Poly:
		return MarshalPF(*p)
	default:
		return nil, fmt.Errorf("perf: cannot persist PF of type %T", pf)
	}
}

type multiNeuralBody struct {
	Label string      `json:"label"`
	Arity int         `json:"arity"`
	W1    [][]float64 `json:"w1"`
	B1    []float64   `json:"b1"`
	W2    []float64   `json:"w2"`
	B2    float64     `json:"b2"`
	XLo   []float64   `json:"xLo"`
	XHi   []float64   `json:"xHi"`
	YLo   float64     `json:"yLo"`
	YHi   float64     `json:"yHi"`
}

// UnmarshalPF restores a PF serialized by MarshalPF. The result is a
// *Neural, *MultiNeural or Poly.
func UnmarshalPF(data []byte) (interface{}, error) {
	var env persistedPF
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "neural":
		var b neuralBody
		if err := json.Unmarshal(env.Body, &b); err != nil {
			return nil, err
		}
		n := &Neural{
			Label: b.Label,
			w1:    b.W1, b1: b.B1, w2: b.W2, b2: b.B2,
			xLo: b.XLo, xHi: b.XHi, yLo: b.YLo, yHi: b.YHi,
		}
		if len(n.w1) == 0 || len(n.w1) != len(n.b1) || len(n.w1) != len(n.w2) || n.xHi == n.xLo {
			return nil, fmt.Errorf("perf: corrupt neural PF")
		}
		return n, nil
	case "multi-neural":
		var b multiNeuralBody
		if err := json.Unmarshal(env.Body, &b); err != nil {
			return nil, err
		}
		n := &MultiNeural{
			Label: b.Label, arity: b.Arity,
			w1: b.W1, b1: b.B1, w2: b.W2, b2: b.B2,
			xLo: b.XLo, xHi: b.XHi, yLo: b.YLo, yHi: b.YHi,
		}
		if n.arity < 1 || len(n.w1) == 0 || len(n.xLo) != n.arity || len(n.xHi) != n.arity {
			return nil, fmt.Errorf("perf: corrupt multi-neural PF")
		}
		for _, row := range n.w1 {
			if len(row) != n.arity {
				return nil, fmt.Errorf("perf: corrupt multi-neural PF weights")
			}
		}
		return n, nil
	case "poly":
		var p Poly
		if err := json.Unmarshal(env.Body, &p); err != nil {
			return nil, err
		}
		if len(p.Coef) == 0 {
			return nil, fmt.Errorf("perf: corrupt poly PF")
		}
		return p, nil
	default:
		return nil, fmt.Errorf("perf: unknown PF kind %q", env.Kind)
	}
}

package perf

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainMultiNeuralFitsPlane(t *testing.T) {
	// Delay = base + a*size + b*load*size: a genuinely two-attribute law.
	truth := func(size, load float64) float64 {
		return 1e-4 + 1e-6*size + 2e-6*load*size
	}
	rng := rand.New(rand.NewSource(4))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		size := 100 + rng.Float64()*900
		load := rng.Float64()
		xs = append(xs, []float64{size, load})
		ys = append(ys, truth(size, load))
	}
	pf, err := TrainMultiNeural("link", xs, ys, TrainOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Arity() != 2 {
		t.Fatalf("arity = %d", pf.Arity())
	}
	// Range-normalized prediction error on held-out points.
	yLo, yHi := minMax(ys)
	var worst float64
	for i := 0; i < 50; i++ {
		size := 150 + rng.Float64()*800
		load := rng.Float64()
		got := pf.EvalVec([]float64{size, load})
		e := math.Abs(got-truth(size, load)) / (yHi - yLo)
		if e > worst {
			worst = e
		}
	}
	if worst > 0.1 {
		t.Fatalf("worst range-normalized error %.3f > 10%%", worst)
	}
	// The load attribute genuinely matters: predictions differ across load.
	atIdle := pf.EvalVec([]float64{800, 0.05})
	atBusy := pf.EvalVec([]float64{800, 0.95})
	if atBusy <= atIdle {
		t.Fatalf("model ignores load: idle %g, busy %g", atIdle, atBusy)
	}
}

func TestTrainMultiNeuralValidation(t *testing.T) {
	if _, err := TrainMultiNeural("x", nil, nil, TrainOptions{}); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := TrainMultiNeural("x", [][]float64{{1}, {2}}, []float64{1}, TrainOptions{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := TrainMultiNeural("x", [][]float64{{}, {}}, []float64{1, 2}, TrainOptions{}); err == nil {
		t.Error("zero-arity samples accepted")
	}
	if _, err := TrainMultiNeural("x", [][]float64{{1, 2}, {3}}, []float64{1, 2}, TrainOptions{}); err == nil {
		t.Error("ragged samples accepted")
	}
	if _, err := TrainMultiNeural("x", [][]float64{{1, 5}, {1, 6}}, []float64{1, 2}, TrainOptions{}); err == nil {
		t.Error("degenerate attribute range accepted")
	}
}

func TestMultiEvalVecArityMismatch(t *testing.T) {
	pf, err := TrainMultiNeural("x", [][]float64{{1, 0}, {2, 1}, {3, 0.5}}, []float64{1, 2, 1.5}, TrainOptions{Seed: 1, Epochs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := pf.EvalVec([]float64{1}); got != 0 {
		t.Fatalf("arity mismatch returned %g, want 0", got)
	}
}

func TestSliceProducesSingleAttributePF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		size := 100 + rng.Float64()*900
		load := rng.Float64()
		xs = append(xs, []float64{size, load})
		ys = append(ys, 1e-4+1e-6*size+2e-6*load*size)
	}
	pf, err := TrainMultiNeural("link", xs, ys, TrainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A slice at fixed load behaves like an ordinary PF and composes.
	slice := Slice{Inner: pf, Fixed: []float64{0, 0.5}, Index: 0}
	e2e := Serial{Parts: []PF{slice, slice}}
	if got := e2e.Eval(600); got <= 0 {
		t.Fatalf("composed slice eval = %g", got)
	}
	// Monotone in the free attribute over the trained range.
	if slice.Eval(900) <= slice.Eval(200) {
		t.Fatal("slice not increasing in data size")
	}
	if slice.Name() == "" {
		t.Fatal("empty slice name")
	}
	// Out-of-range index leaves the fixed vector untouched.
	bad := Slice{Inner: pf, Fixed: []float64{500, 0.5}, Index: 7}
	if bad.Eval(900) != pf.EvalVec([]float64{500, 0.5}) {
		t.Fatal("out-of-range index altered the vector")
	}
}

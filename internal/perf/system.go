package perf

import (
	"math/rand"
)

// This file simulates the example networked system of §3.2: two computers
// (PC1, PC2) connected through an Ethernet switch. PC1 multiplies matrices
// and ships the result through the switch to PC2, which repeats the
// computation. The paper measures each component's task processing time
// versus data size, fits a PF per component with a neural network, sums the
// PFs (Eq. 2), and compares the composed prediction against measured
// end-to-end delay (Table 1).

// Component is a measurable system component with a ground-truth timing
// law and measurement noise.
type Component struct {
	// Name identifies the component ("PC1", "switch", "PC2").
	Name string
	// base and perByte define the true delay base + perByte*D (+ a mild
	// quadratic term curve*D^2) in seconds for data size D in bytes.
	base, perByte, curve float64
	// noise is the multiplicative measurement noise level (e.g. 0.02).
	noise float64
}

// True returns the component's ground-truth delay for data size d bytes.
func (c Component) True(d float64) float64 {
	return c.base + c.perByte*d + c.curve*d*d
}

// Measure returns one noisy measurement of the component's delay.
func (c Component) Measure(d float64, rng *rand.Rand) float64 {
	return c.True(d) * (1 + c.noise*rng.NormFloat64())
}

// ExampleSystem returns the paper's PC1 -> switch -> PC2 pipeline with
// timing constants chosen so the end-to-end delay matches Table 1's
// magnitudes: about 8.3e-4 s at 200 bytes rising to about 2.2e-3 s at
// 1000 bytes.
func ExampleSystem(noise float64) []Component {
	if noise <= 0 {
		noise = 0.02
	}
	return []Component{
		{Name: "PC1", base: 2.0e-4, perByte: 0.70e-6, curve: 1.0e-11, noise: noise},
		{Name: "switch", base: 0.8e-4, perByte: 0.35e-6, curve: 0, noise: noise},
		{Name: "PC2", base: 2.0e-4, perByte: 0.70e-6, curve: 1.0e-11, noise: noise},
	}
}

// MeasureEndToEnd returns one noisy measurement of the whole pipeline's
// delay for data size d.
func MeasureEndToEnd(comps []Component, d float64, rng *rand.Rand) float64 {
	var sum float64
	for _, c := range comps {
		sum += c.Measure(d, rng)
	}
	return sum
}

// FitComponentPFs measures every component at the given data sizes and
// fits one neural PF per component, as §3.2 prescribes. The returned
// Serial PF is the composed end-to-end model of Eq. 2.
func FitComponentPFs(comps []Component, sizes []float64, samplesPerSize int, seed int64) (Serial, []PF, error) {
	rng := rand.New(rand.NewSource(seed))
	parts := make([]PF, 0, len(comps))
	for ci, c := range comps {
		var xs, ys []float64
		for _, d := range sizes {
			for s := 0; s < samplesPerSize; s++ {
				xs = append(xs, d)
				ys = append(ys, c.Measure(d, rng))
			}
		}
		pf, err := TrainNeural(c.Name, xs, ys, TrainOptions{Seed: seed + int64(ci)})
		if err != nil {
			return Serial{}, nil, err
		}
		parts = append(parts, pf)
	}
	return Serial{Label: "end-to-end", Parts: parts}, parts, nil
}

package perf

import (
	"fmt"
	"math"
	"math/rand"
)

// Neural is a performance function realized by a small feed-forward neural
// network with one sigmoid hidden layer and a linear output — the same
// functional family as the paper's Eq. 1, whose component PFs have the
// form a/(1+exp(c-d*D)) + g. The paper feeds component measurements "to a
// neural network to obtain the corresponding PF"; TrainNeural does exactly
// that.
type Neural struct {
	Label string

	w1, b1, w2 []float64
	b2         float64

	xLo, xHi float64 // input normalization range
	yLo, yHi float64 // output normalization range
}

// Name implements PF.
func (n *Neural) Name() string {
	if n.Label != "" {
		return n.Label
	}
	return "neural"
}

// Eval implements PF.
func (n *Neural) Eval(x float64) float64 {
	xn := (x - n.xLo) / (n.xHi - n.xLo)
	var out float64
	for j := range n.w1 {
		out += n.w2[j] * sigmoid(n.w1[j]*xn+n.b1[j])
	}
	out += n.b2
	return n.yLo + out*(n.yHi-n.yLo)
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// TrainOptions tunes TrainNeural.
type TrainOptions struct {
	// Hidden is the hidden-layer width (0 = 6).
	Hidden int
	// Epochs is the number of full-batch gradient descent passes (0 = 4000).
	Epochs int
	// LearningRate is the gradient step size (0 = 0.5).
	LearningRate float64
	// Seed makes weight initialization deterministic.
	Seed int64
}

// TrainNeural fits a Neural PF to measurement samples (xs[i], ys[i]) by
// full-batch gradient descent on squared error. Inputs and outputs are
// normalized to [0, 1] internally.
func TrainNeural(name string, xs, ys []float64, opt TrainOptions) (*Neural, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("perf: need >= 2 samples, got %d xs and %d ys", len(xs), len(ys))
	}
	hidden := opt.Hidden
	if hidden <= 0 {
		hidden = 6
	}
	epochs := opt.Epochs
	if epochs <= 0 {
		epochs = 4000
	}
	lr := opt.LearningRate
	if lr <= 0 {
		lr = 0.5
	}

	n := &Neural{
		Label: name,
		w1:    make([]float64, hidden),
		b1:    make([]float64, hidden),
		w2:    make([]float64, hidden),
	}
	n.xLo, n.xHi = minMax(xs)
	n.yLo, n.yHi = minMax(ys)
	if n.xHi == n.xLo {
		return nil, fmt.Errorf("perf: degenerate input range [%g,%g]", n.xLo, n.xHi)
	}
	if n.yHi == n.yLo {
		// Constant output: widen the range artificially so normalization
		// stays finite; the network will learn the constant.
		n.yHi = n.yLo + 1
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	for j := 0; j < hidden; j++ {
		n.w1[j] = rng.NormFloat64() * 2
		n.b1[j] = rng.NormFloat64()
		n.w2[j] = rng.NormFloat64() * 0.5
	}

	m := len(xs)
	xn := make([]float64, m)
	yn := make([]float64, m)
	for i := range xs {
		xn[i] = (xs[i] - n.xLo) / (n.xHi - n.xLo)
		yn[i] = (ys[i] - n.yLo) / (n.yHi - n.yLo)
	}

	gw1 := make([]float64, hidden)
	gb1 := make([]float64, hidden)
	gw2 := make([]float64, hidden)
	act := make([]float64, hidden)
	for e := 0; e < epochs; e++ {
		for j := range gw1 {
			gw1[j], gb1[j], gw2[j] = 0, 0, 0
		}
		gb2 := 0.0
		for i := 0; i < m; i++ {
			pred := n.b2
			for j := 0; j < hidden; j++ {
				act[j] = sigmoid(n.w1[j]*xn[i] + n.b1[j])
				pred += n.w2[j] * act[j]
			}
			diff := pred - yn[i]
			gb2 += diff
			for j := 0; j < hidden; j++ {
				gw2[j] += diff * act[j]
				dh := diff * n.w2[j] * act[j] * (1 - act[j])
				gw1[j] += dh * xn[i]
				gb1[j] += dh
			}
		}
		scale := lr / float64(m)
		n.b2 -= scale * gb2
		for j := 0; j < hidden; j++ {
			n.w2[j] -= scale * gw2[j]
			n.w1[j] -= scale * gw1[j]
			n.b1[j] -= scale * gb1[j]
		}
	}
	return n, nil
}

// FitRMSE returns the root-mean-square relative error of the PF over the
// samples, a quick goodness-of-fit check.
func FitRMSE(pf PF, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for i := range xs {
		if ys[i] == 0 {
			continue
		}
		d := (pf.Eval(xs[i]) - ys[i]) / ys[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

package perf

import (
	"math"
	"math/rand"
	"testing"
)

type constPF float64

func (c constPF) Eval(float64) float64 { return float64(c) }
func (c constPF) Name() string         { return "const" }

func TestSerialComposition(t *testing.T) {
	s := Serial{Parts: []PF{constPF(1), constPF(2), constPF(3)}}
	if got := s.Eval(10); got != 6 {
		t.Fatalf("serial = %g, want 6", got)
	}
	if s.Name() != "serial" {
		t.Fatalf("name = %q", s.Name())
	}
	if (Serial{Label: "e2e"}).Name() != "e2e" {
		t.Fatal("label ignored")
	}
}

func TestParallelComposition(t *testing.T) {
	p := Parallel{Parts: []PF{constPF(1), constPF(5), constPF(3)}}
	if got := p.Eval(0); got != 5 {
		t.Fatalf("parallel = %g, want 5", got)
	}
	// Negative values: max semantics must still pick the largest.
	p = Parallel{Parts: []PF{constPF(-4), constPF(-1)}}
	if got := p.Eval(0); got != -1 {
		t.Fatalf("parallel negatives = %g, want -1", got)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Factor: 2.5, Inner: constPF(4)}
	if got := s.Eval(0); got != 10 {
		t.Fatalf("scaled = %g", got)
	}
}

func TestFitPolyExact(t *testing.T) {
	// A quadratic must be recovered exactly.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*x + 0.5*x*x
	}
	p, err := FitPoly("q", xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 2.5, 4.7} {
		want := 2 + 3*x + 0.5*x*x
		if got := p.Eval(x); math.Abs(got-want) > 1e-6 {
			t.Fatalf("poly(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestFitPolyValidation(t *testing.T) {
	if _, err := FitPoly("x", nil, nil, 1); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := FitPoly("x", []float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched samples accepted")
	}
	if _, err := FitPoly("x", []float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Error("underdetermined degree accepted")
	}
}

func TestTrainNeuralFitsLinear(t *testing.T) {
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i) * 25
		ys[i] = 1e-4 + 2e-6*xs[i]
	}
	n, err := TrainNeural("lin", xs, ys, TrainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := FitRMSE(n, xs, ys); rmse > 0.02 {
		t.Fatalf("neural fit RMSE %.4f > 2%%", rmse)
	}
	// Interpolation between samples stays accurate.
	x := 333.0
	want := 1e-4 + 2e-6*x
	if got := n.Eval(x); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("neural(%g) = %g, want ~%g", x, got, want)
	}
}

func TestTrainNeuralFitsSigmoidShape(t *testing.T) {
	// The paper's Eq. 1 PFs are sigmoidal; the network must fit one well.
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = float64(i) * 20
		ys[i] = 3e-3/(1+math.Exp(4-0.01*xs[i])) + 1e-4
	}
	n, err := TrainNeural("sig", xs, ys, TrainOptions{Seed: 3, Epochs: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Judge the fit on range-normalized error: relative error is
	// meaningless at the sigmoid's near-zero left tail.
	yLo, yHi := minMax(ys)
	var worst float64
	for i := range xs {
		e := math.Abs(n.Eval(xs[i])-ys[i]) / (yHi - yLo)
		if e > worst {
			worst = e
		}
	}
	if worst > 0.08 {
		t.Fatalf("sigmoid fit worst range-normalized error %.4f > 8%%", worst)
	}
}

func TestTrainNeuralValidation(t *testing.T) {
	if _, err := TrainNeural("x", []float64{1}, []float64{1}, TrainOptions{}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := TrainNeural("x", []float64{1, 1}, []float64{1, 2}, TrainOptions{}); err == nil {
		t.Error("degenerate input range accepted")
	}
	// Constant outputs are handled without dividing by zero.
	n, err := TrainNeural("c", []float64{1, 2, 3}, []float64{5, 5, 5}, TrainOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Eval(2); math.Abs(got-5) > 0.5 {
		t.Fatalf("constant fit = %g, want ~5", got)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("percent error = %g", got)
	}
	if got := PercentError(90, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("percent error = %g", got)
	}
	if PercentError(5, 0) != 0 {
		t.Fatal("zero measured should yield 0")
	}
}

func TestExampleSystemMagnitudes(t *testing.T) {
	// The true end-to-end delay must match Table 1's measured column
	// magnitudes: ~8.3e-4 s at 200 B and ~2.2e-3 s at 1000 B.
	comps := ExampleSystem(0.02)
	var at200, at1000 float64
	for _, c := range comps {
		at200 += c.True(200)
		at1000 += c.True(1000)
	}
	if at200 < 6e-4 || at200 > 11e-4 {
		t.Fatalf("end-to-end at 200 B = %g, want ~8.3e-4", at200)
	}
	if at1000 < 1.7e-3 || at1000 > 2.8e-3 {
		t.Fatalf("end-to-end at 1000 B = %g, want ~2.2e-3", at1000)
	}
	if at1000 <= at200 {
		t.Fatal("delay must grow with data size")
	}
}

func TestMeasurementNoiseIsBounded(t *testing.T) {
	comps := ExampleSystem(0.02)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		m := MeasureEndToEnd(comps, 600, rng)
		truth := 0.0
		for _, c := range comps {
			truth += c.True(600)
		}
		if math.Abs(m-truth)/truth > 0.15 {
			t.Fatalf("measurement %g deviates >15%% from truth %g", m, truth)
		}
	}
}

func TestFitComponentPFsReproducesTable1Band(t *testing.T) {
	// The full Table 1 procedure: fit component PFs from noisy
	// measurements, compose, compare against measured end-to-end delays.
	// The paper reports errors "roughly between 0.5 - 5%"; we require the
	// same band (allowing a little slack above and treating smaller errors
	// as a better-than-paper fit).
	comps := ExampleSystem(0.02)
	trainSizes := []float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200}
	e2e, parts, err := FitComponentPFs(comps, trainSizes, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("expected 3 component PFs, got %d", len(parts))
	}
	rng := rand.New(rand.NewSource(7))
	var maxErr float64
	for _, d := range []float64{200, 400, 600, 800, 1000} {
		measured := MeasureEndToEnd(comps, d, rng)
		e := PercentError(e2e.Eval(d), measured)
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 6 {
		t.Fatalf("max prediction error %.2f%% above Table 1 band", maxErr)
	}
}

func BenchmarkTrainNeural(b *testing.B) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i) * 20
		ys[i] = 1e-4 + 2e-6*xs[i]
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainNeural("bench", xs, ys, TrainOptions{Epochs: 500, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

package perf

import (
	"fmt"
	"math/rand"
)

// Multi-attribute performance functions. The paper's example restricts
// itself to one attribute ("For simplicity, we only consider the data size
// attribute"); the PF concept itself is multi-attribute — "we identify the
// attributes that can accurately express and quantify the operation and
// performance of a resource (e.g., Clock speed, Error, Capacity)". MultiPF
// generalizes the neural PF to k input attributes.

// MultiPF is a performance function over several attributes.
type MultiPF interface {
	// EvalVec returns the performance estimate at the attribute vector x.
	EvalVec(x []float64) float64
	// Name identifies the modeled component.
	Name() string
	// Arity returns the number of input attributes.
	Arity() int
}

// MultiNeural is a k-input feed-forward network with one sigmoid hidden
// layer and a linear output.
type MultiNeural struct {
	Label string

	arity  int
	w1     [][]float64 // [hidden][arity]
	b1, w2 []float64
	b2     float64

	xLo, xHi []float64
	yLo, yHi float64
}

// Name implements MultiPF.
func (n *MultiNeural) Name() string {
	if n.Label != "" {
		return n.Label
	}
	return "multi-neural"
}

// Arity implements MultiPF.
func (n *MultiNeural) Arity() int { return n.arity }

// EvalVec implements MultiPF.
func (n *MultiNeural) EvalVec(x []float64) float64 {
	if len(x) != n.arity {
		return 0
	}
	var out float64
	for j := range n.w1 {
		act := n.b1[j]
		for d := 0; d < n.arity; d++ {
			xn := (x[d] - n.xLo[d]) / (n.xHi[d] - n.xLo[d])
			act += n.w1[j][d] * xn
		}
		out += n.w2[j] * sigmoid(act)
	}
	out += n.b2
	return n.yLo + out*(n.yHi-n.yLo)
}

// TrainMultiNeural fits a MultiNeural PF to samples: xs[i] is the
// attribute vector of sample i, ys[i] the measured performance.
func TrainMultiNeural(name string, xs [][]float64, ys []float64, opt TrainOptions) (*MultiNeural, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, fmt.Errorf("perf: need >= 2 samples, got %d xs and %d ys", len(xs), len(ys))
	}
	arity := len(xs[0])
	if arity < 1 {
		return nil, fmt.Errorf("perf: zero-arity samples")
	}
	for i, x := range xs {
		if len(x) != arity {
			return nil, fmt.Errorf("perf: ragged sample %d (%d attrs, want %d)", i, len(x), arity)
		}
	}
	hidden := opt.Hidden
	if hidden <= 0 {
		hidden = 8
	}
	epochs := opt.Epochs
	if epochs <= 0 {
		epochs = 6000
	}
	lr := opt.LearningRate
	if lr <= 0 {
		lr = 0.5
	}

	n := &MultiNeural{
		Label: name,
		arity: arity,
		w1:    make([][]float64, hidden),
		b1:    make([]float64, hidden),
		w2:    make([]float64, hidden),
		xLo:   make([]float64, arity),
		xHi:   make([]float64, arity),
	}
	for d := 0; d < arity; d++ {
		n.xLo[d], n.xHi[d] = xs[0][d], xs[0][d]
		for _, x := range xs {
			if x[d] < n.xLo[d] {
				n.xLo[d] = x[d]
			}
			if x[d] > n.xHi[d] {
				n.xHi[d] = x[d]
			}
		}
		if n.xHi[d] == n.xLo[d] {
			return nil, fmt.Errorf("perf: degenerate range for attribute %d", d)
		}
	}
	n.yLo, n.yHi = minMax(ys)
	if n.yHi == n.yLo {
		n.yHi = n.yLo + 1
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	for j := 0; j < hidden; j++ {
		n.w1[j] = make([]float64, arity)
		for d := 0; d < arity; d++ {
			n.w1[j][d] = rng.NormFloat64() * 2
		}
		n.b1[j] = rng.NormFloat64()
		n.w2[j] = rng.NormFloat64() * 0.5
	}

	m := len(xs)
	xn := make([][]float64, m)
	yn := make([]float64, m)
	for i := range xs {
		xn[i] = make([]float64, arity)
		for d := 0; d < arity; d++ {
			xn[i][d] = (xs[i][d] - n.xLo[d]) / (n.xHi[d] - n.xLo[d])
		}
		yn[i] = (ys[i] - n.yLo) / (n.yHi - n.yLo)
	}

	gw1 := make([][]float64, hidden)
	for j := range gw1 {
		gw1[j] = make([]float64, arity)
	}
	gb1 := make([]float64, hidden)
	gw2 := make([]float64, hidden)
	act := make([]float64, hidden)
	for e := 0; e < epochs; e++ {
		for j := 0; j < hidden; j++ {
			for d := 0; d < arity; d++ {
				gw1[j][d] = 0
			}
			gb1[j], gw2[j] = 0, 0
		}
		gb2 := 0.0
		for i := 0; i < m; i++ {
			pred := n.b2
			for j := 0; j < hidden; j++ {
				z := n.b1[j]
				for d := 0; d < arity; d++ {
					z += n.w1[j][d] * xn[i][d]
				}
				act[j] = sigmoid(z)
				pred += n.w2[j] * act[j]
			}
			diff := pred - yn[i]
			gb2 += diff
			for j := 0; j < hidden; j++ {
				gw2[j] += diff * act[j]
				dh := diff * n.w2[j] * act[j] * (1 - act[j])
				for d := 0; d < arity; d++ {
					gw1[j][d] += dh * xn[i][d]
				}
				gb1[j] += dh
			}
		}
		scale := lr / float64(m)
		n.b2 -= scale * gb2
		for j := 0; j < hidden; j++ {
			n.w2[j] -= scale * gw2[j]
			n.b1[j] -= scale * gb1[j]
			for d := 0; d < arity; d++ {
				n.w1[j][d] -= scale * gw1[j][d]
			}
		}
	}
	return n, nil
}

// Slice fixes all but one attribute of a MultiPF, producing an ordinary
// single-attribute PF — e.g. delay versus data size at a given load.
type Slice struct {
	Inner MultiPF
	// Fixed is the full attribute vector; Index selects the free attribute
	// that Eval's argument replaces.
	Fixed []float64
	Index int
}

// Eval implements PF.
func (s Slice) Eval(x float64) float64 {
	vec := append([]float64(nil), s.Fixed...)
	if s.Index >= 0 && s.Index < len(vec) {
		vec[s.Index] = x
	}
	return s.Inner.EvalVec(vec)
}

// Name implements PF.
func (s Slice) Name() string { return fmt.Sprintf("%s[attr %d]", s.Inner.Name(), s.Index) }

var _ PF = Slice{}

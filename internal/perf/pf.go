// Package perf implements Pragma's performance analysis module (§3.2):
// Performance Functions (PFs) that describe the behavior of a system
// component in terms of one of its attributes, fitted from measurements
// (with a small neural network, as in the paper, or a polynomial), and
// composed into an end-to-end PF that estimates whole-application
// performance — Eq. 1 and Eq. 2 of the paper.
package perf

import (
	"fmt"
	"math"
)

// PF is a performance function: it maps an attribute value (for example
// data size in bytes) to a performance measure (for example seconds of
// delay).
type PF interface {
	// Eval returns the performance estimate at attribute value x.
	Eval(x float64) float64
	// Name identifies the modeled component.
	Name() string
}

// Serial composes PFs for components traversed one after another: the
// end-to-end PF is the sum of the component PFs, exactly Eq. 2's
// PF(total) = PF(pc1) + PF(switch) + PF(pc2).
type Serial struct {
	Label string
	Parts []PF
}

// Eval implements PF.
func (s Serial) Eval(x float64) float64 {
	var sum float64
	for _, p := range s.Parts {
		sum += p.Eval(x)
	}
	return sum
}

// Name implements PF.
func (s Serial) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "serial"
}

// Parallel composes PFs for components operating concurrently: the
// end-to-end PF is the maximum of the component PFs (the slowest branch
// gates completion).
type Parallel struct {
	Label string
	Parts []PF
}

// Eval implements PF.
func (p Parallel) Eval(x float64) float64 {
	var m float64
	for i, part := range p.Parts {
		v := part.Eval(x)
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Name implements PF.
func (p Parallel) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "parallel"
}

// Scaled wraps a PF with a multiplicative factor (e.g. a component used k
// times per transaction).
type Scaled struct {
	Factor float64
	Inner  PF
}

// Eval implements PF.
func (s Scaled) Eval(x float64) float64 { return s.Factor * s.Inner.Eval(x) }

// Name implements PF.
func (s Scaled) Name() string { return fmt.Sprintf("%gx %s", s.Factor, s.Inner.Name()) }

// Poly is a polynomial performance function fitted by least squares.
type Poly struct {
	Label string
	// Coef holds the coefficients, lowest degree first.
	Coef []float64
}

// Eval implements PF (Horner evaluation).
func (p Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coef) - 1; i >= 0; i-- {
		y = y*x + p.Coef[i]
	}
	return y
}

// Name implements PF.
func (p Poly) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "poly"
}

// FitPoly fits a polynomial of the given degree to (xs, ys) by solving the
// normal equations. Inputs are normalized internally for conditioning.
func FitPoly(name string, xs, ys []float64, degree int) (Poly, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return Poly{}, fmt.Errorf("perf: bad sample arrays (%d xs, %d ys)", len(xs), len(ys))
	}
	if degree < 0 || degree >= len(xs) {
		return Poly{}, fmt.Errorf("perf: degree %d invalid for %d samples", degree, len(xs))
	}
	n := degree + 1
	// Normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for k := range xs {
		xp := make([]float64, 2*n-1)
		xp[0] = 1
		for i := 1; i < len(xp); i++ {
			xp[i] = xp[i-1] * xs[k]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += xp[i+j]
			}
			b[i] += ys[k] * xp[i]
		}
	}
	coef, err := solve(a, b)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Label: name, Coef: coef}, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("perf: singular normal equations")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < n; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

// PercentError returns 100*|predicted-measured|/|measured|, the error
// measure of Table 1.
func PercentError(predicted, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return 100 * math.Abs(predicted-measured) / math.Abs(measured)
}

package agents

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sensor abstracts an application or system sensor (§3.4.2): application
// sensors are co-located with computational data structures, system sensors
// wrap the monitoring infrastructure. Reads must be cheap; they run on
// every agent poll.
type Sensor interface {
	// Name identifies the sensed attribute, e.g. "load" or "bandwidth".
	Name() string
	// Read samples the sensor.
	Read() (float64, error)
}

// SensorFunc adapts a function to the Sensor interface.
type SensorFunc struct {
	SensorName string
	Fn         func() (float64, error)
}

// Name implements Sensor.
func (s SensorFunc) Name() string { return s.SensorName }

// Read implements Sensor.
func (s SensorFunc) Read() (float64, error) { return s.Fn() }

// Actuator abstracts an adaptation mechanism the agent can invoke:
// repartition, migrate, switch communication mechanism, suspend/save state.
type Actuator interface {
	// Name identifies the actuator, e.g. "repartition".
	Name() string
	// Act applies the actuation with the given parameters.
	Act(params map[string]float64) error
}

// ActuatorFunc adapts a function to the Actuator interface.
type ActuatorFunc struct {
	ActuatorName string
	Fn           func(params map[string]float64) error
}

// Name implements Actuator.
func (a ActuatorFunc) Name() string { return a.ActuatorName }

// Act implements Actuator.
func (a ActuatorFunc) Act(params map[string]float64) error { return a.Fn(params) }

// EventRule publishes an event when a sensed value crosses a threshold —
// "a local agent is used to generate events when the load reaches a certain
// threshold".
type EventRule struct {
	// Sensor is the watched sensor name.
	Sensor string
	// Above fires the event when the reading is >= the value.
	Above *float64
	// Below fires the event when the reading is <= the value.
	Below *float64
	// Event is the event name to publish.
	Event string
}

// StateReport is the payload a component agent publishes on each poll.
type StateReport struct {
	Agent    string             `json:"agent"`
	Seq      int                `json:"seq"`
	Readings map[string]float64 `json:"readings"`
}

// Event is the payload of a threshold event.
type Event struct {
	Agent  string  `json:"agent"`
	Name   string  `json:"name"`
	Sensor string  `json:"sensor"`
	Value  float64 `json:"value"`
}

// Command is the payload of an actuation directive sent to an agent's
// mailbox.
type Command struct {
	Actuator string             `json:"actuator"`
	Params   map[string]float64 `json:"params,omitempty"`
}

// Topics used by the control network.
const (
	TopicState  = "agent-state"
	TopicEvents = "agent-events"
)

// ComponentAgent is the CA of the CATALINA architecture: it monitors one
// application component through its sensors, publishes state and threshold
// events to the Message Center, and applies actuators when commanded.
type ComponentAgent struct {
	// ID is the agent's identity and mailbox port name.
	ID string
	// StateTopic overrides the topic state reports are published on
	// (default TopicState); group members publish on their group topic.
	StateTopic string
	// OnError, when set, receives asynchronous errors from Run — failed
	// polls and undecodable commands that the loop would otherwise drop.
	// It runs on the agent goroutine and must not block.
	OnError func(error)

	port      Port
	inbox     <-chan Message
	sensors   []Sensor
	actuators map[string]Actuator
	rules     []EventRule

	mu  sync.Mutex
	seq int
	// latched remembers which rules currently hold, so events fire on the
	// crossing, not continuously.
	latched map[int]bool
}

// NewComponentAgent registers the agent's mailbox on the port and returns
// the agent.
func NewComponentAgent(id string, port Port, sensors []Sensor, actuators []Actuator, rules []EventRule) (*ComponentAgent, error) {
	if id == "" {
		return nil, fmt.Errorf("agents: component agent without id")
	}
	inbox, err := port.Register(id, 64)
	if err != nil {
		return nil, err
	}
	acts := make(map[string]Actuator, len(actuators))
	for _, a := range actuators {
		acts[a.Name()] = a
	}
	return &ComponentAgent{
		ID:        id,
		port:      port,
		inbox:     inbox,
		sensors:   sensors,
		actuators: acts,
		rules:     rules,
		latched:   make(map[int]bool),
	}, nil
}

// Poll reads all sensors, publishes a state report, and fires threshold
// events. It returns the report.
func (ca *ComponentAgent) Poll() (StateReport, error) {
	readings := make(map[string]float64, len(ca.sensors))
	for _, s := range ca.sensors {
		v, err := s.Read()
		if err != nil {
			return StateReport{}, fmt.Errorf("agents: %s: sensor %s: %w", ca.ID, s.Name(), err)
		}
		readings[s.Name()] = v
	}
	ca.mu.Lock()
	ca.seq++
	report := StateReport{Agent: ca.ID, Seq: ca.seq, Readings: readings}
	var events []Event
	for i, r := range ca.rules {
		v, ok := readings[r.Sensor]
		if !ok {
			continue
		}
		firing := (r.Above != nil && v >= *r.Above) || (r.Below != nil && v <= *r.Below)
		if firing && !ca.latched[i] {
			events = append(events, Event{Agent: ca.ID, Name: r.Event, Sensor: r.Sensor, Value: v})
		}
		ca.latched[i] = firing
	}
	ca.mu.Unlock()

	topic := ca.StateTopic
	if topic == "" {
		topic = TopicState
	}
	if err := ca.port.Publish(Message{
		From: ca.ID, Topic: topic, Kind: "state", Payload: Encode(report),
	}); err != nil {
		return report, err
	}
	for _, ev := range events {
		if err := ca.port.Publish(Message{
			From: ca.ID, Topic: TopicEvents, Kind: "event", Payload: Encode(ev),
		}); err != nil {
			return report, err
		}
	}
	return report, nil
}

// HandleCommand applies one actuation command.
func (ca *ComponentAgent) HandleCommand(cmd Command) error {
	act, ok := ca.actuators[cmd.Actuator]
	if !ok {
		return fmt.Errorf("agents: %s: unknown actuator %q", ca.ID, cmd.Actuator)
	}
	return act.Act(cmd.Params)
}

// DrainInbox processes every queued mailbox message; command messages are
// applied, others ignored. It returns the number of commands executed and
// the first actuation error.
func (ca *ComponentAgent) DrainInbox() (int, error) {
	n := 0
	var firstErr error
	for {
		select {
		case m, ok := <-ca.inbox:
			if !ok {
				return n, firstErr
			}
			if m.Kind != "command" {
				continue
			}
			var cmd Command
			if err := Decode(m, &cmd); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := ca.HandleCommand(cmd); err != nil && firstErr == nil {
				firstErr = err
			}
			n++
		default:
			return n, firstErr
		}
	}
}

// Run polls on the given interval and serves its mailbox until the context
// is cancelled — the autonomous mode of the agent.
func (ca *ComponentAgent) Run(ctx context.Context, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := ca.Poll(); err != nil {
				ca.reportErr(err)
			}
		case m, ok := <-ca.inbox:
			if !ok {
				return
			}
			if m.Kind == "command" {
				var cmd Command
				if err := Decode(m, &cmd); err != nil {
					ca.reportErr(fmt.Errorf("agents: %s: bad command: %w", ca.ID, err))
				} else if err := ca.HandleCommand(cmd); err != nil {
					ca.reportErr(err)
				}
			}
		}
	}
}

func (ca *ComponentAgent) reportErr(err error) {
	if ca.OnError != nil {
		ca.OnError(err)
	}
}

// SensorNames lists the agent's sensors, sorted.
func (ca *ComponentAgent) SensorNames() []string {
	out := make([]string, 0, len(ca.sensors))
	for _, s := range ca.sensors {
		out = append(out, s.Name())
	}
	sort.Strings(out)
	return out
}

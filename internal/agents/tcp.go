package agents

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file adds the distributed deployment of the Message Center: agents
// on other "nodes" (processes, or goroutines emulating them) connect over
// TCP, register their ports with the central broker, and exchange messages
// with local agents transparently. This is the multi-node emulation of the
// paper's agent network: "CATALINA agents resident at each computing
// element in the distributed environment".
//
// Link failure is treated as the common case, not the exception: wire ops
// carry deadlines, clients heartbeat and reconnect with exponential
// backoff, the broker evicts silent connections, and messages sent during
// an outage are buffered (bounded) and replayed after resynchronization.
// See DESIGN.md, "Failure model".

// frame is the wire protocol unit: one JSON object per line.
type frame struct {
	// Op is "register", "unregister", "subscribe", "send", "publish",
	// "deliver" (server to client), "ping"/"pong" (liveness), or "error"
	// (server to client, asynchronous failure report).
	Op    string  `json:"op"`
	Port  string  `json:"port,omitempty"`
	Topic string  `json:"topic,omitempty"`
	Msg   Message `json:"msg,omitempty"`
	Err   string  `json:"err,omitempty"`
}

// wireConn is the server-side state of one TCP client.
type wireConn struct {
	conn         net.Conn
	enc          *json.Encoder
	wmu          sync.Mutex
	writeTimeout time.Duration
}

func (w *wireConn) deliver(m Message) error {
	return w.write(frame{Op: "deliver", Msg: m})
}

func (w *wireConn) write(f frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.writeTimeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.writeTimeout))
	}
	return w.enc.Encode(f)
}

// connSet tracks the live connections of one Serve loop so they can be
// torn down when the listener closes.
type connSet struct {
	mu     sync.Mutex
	conns  map[*wireConn]struct{}
	closed bool
}

func (s *connSet) add(wc *wireConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[wc] = struct{}{}
	return true
}

func (s *connSet) remove(wc *wireConn) {
	s.mu.Lock()
	delete(s.conns, wc)
	s.mu.Unlock()
}

func (s *connSet) closeAll() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*wireConn, 0, len(s.conns))
	for wc := range s.conns {
		conns = append(conns, wc)
	}
	s.mu.Unlock()
	for _, wc := range conns {
		wc.conn.Close()
	}
}

// Serve accepts TCP clients on the listener and routes their traffic
// through the center until the listener is closed; it then closes every
// live client connection so their handler goroutines terminate instead of
// leaking. Call it in a goroutine:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go center.Serve(ln)
func (c *Center) Serve(ln net.Listener) error {
	live := &connSet{conns: make(map[*wireConn]struct{})}
	defer live.closeAll()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		wc := &wireConn{conn: conn, enc: json.NewEncoder(conn), writeTimeout: c.writeTimeout}
		if !live.add(wc) {
			conn.Close()
			return fmt.Errorf("agents: serve loop closed")
		}
		go func() {
			c.handle(wc)
			live.remove(wc)
		}()
	}
}

// handleConn serves one raw connection (used by Serve and by fuzz tests
// that feed arbitrary bytes into the protocol).
func (c *Center) handleConn(conn net.Conn) {
	c.handle(&wireConn{conn: conn, enc: json.NewEncoder(conn), writeTimeout: c.writeTimeout})
}

func (c *Center) handle(wc *wireConn) {
	conn := wc.conn
	owned := make(map[string]bool)
	defer func() {
		conn.Close()
		c.mu.Lock()
		lost := make([]string, 0, len(owned))
		for port := range owned {
			delete(c.remote, port)
			for _, subscribers := range c.subs {
				delete(subscribers, port)
			}
			lost = append(lost, port)
		}
		onDisconnect := c.onDisconnect
		c.mu.Unlock()
		if onDisconnect != nil && len(lost) > 0 {
			onDisconnect(lost)
		}
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		// The read deadline doubles as liveness eviction: a client that
		// stays silent (no frames, no heartbeats) longer than the
		// heartbeat timeout is disconnected and its ports reclaimed.
		if c.heartbeatTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.heartbeatTimeout))
		}
		var f frame
		if err := dec.Decode(&f); err != nil {
			var ne net.Error
			if c.heartbeatTimeout > 0 && errors.As(err, &ne) && ne.Timeout() {
				metricHeartbeatMisses.Inc()
				metricEvictions.Inc()
			}
			c.reportErr(fmt.Errorf("agents: wire read: %w", err))
			return
		}
		switch f.Op {
		case "register":
			err := c.registerRemote(f.Port, wc)
			if err == nil {
				owned[f.Port] = true
			}
			wc.write(frame{Op: "register", Port: f.Port, Err: errString(err)})
		case "unregister":
			c.mu.Lock()
			if owned[f.Port] {
				delete(c.remote, f.Port)
				delete(owned, f.Port)
				for _, subscribers := range c.subs {
					delete(subscribers, f.Port)
				}
			}
			c.mu.Unlock()
		case "subscribe":
			err := c.Subscribe(f.Port, f.Topic)
			wc.write(frame{Op: "subscribe", Port: f.Port, Topic: f.Topic, Err: errString(err)})
		case "send":
			if err := c.Send(f.Msg); err != nil {
				wc.write(frame{Op: "error", Err: err.Error()})
			}
		case "publish":
			if err := c.Publish(f.Msg); err != nil {
				wc.write(frame{Op: "error", Err: err.Error()})
			}
		case "ping":
			// Reply so clients can watch broker liveness; the inbound
			// frame itself already refreshed our read deadline.
			wc.write(frame{Op: "pong"})
		}
	}
}

func (c *Center) registerRemote(port string, wc *wireConn) error {
	if port == "" {
		return fmt.Errorf("agents: empty port name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.local[port]; ok {
		return fmt.Errorf("agents: port %q already registered", port)
	}
	if _, ok := c.remote[port]; ok {
		return fmt.Errorf("agents: port %q already registered remotely", port)
	}
	c.remote[port] = wc
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// ---------------------------------------------------------------------------
// Client

// Client connection states.
const (
	stateConnected = iota
	stateReconnecting
	stateClosed
)

// dialConfig is the resolved option set of a Client.
type dialConfig struct {
	dialer       func(addr string) (net.Conn, error)
	reconnect    bool
	maxRetries   int
	backoffBase  time.Duration
	backoffMax   time.Duration
	heartbeat    time.Duration
	writeTimeout time.Duration
	opTimeout    time.Duration
	sendBuffer   int
	onError      func(error)
	seed         int64
}

func defaultDialConfig() dialConfig {
	return dialConfig{
		dialer:      func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
		backoffBase: 50 * time.Millisecond,
		backoffMax:  2 * time.Second,
		opTimeout:   10 * time.Second,
		sendBuffer:  64,
		seed:        1,
	}
}

// DialOption configures a Client at Dial time.
type DialOption func(*dialConfig)

// WithDialer replaces the TCP dialer — the hook used to inject chaos
// transports or alternative networks.
func WithDialer(dial func(addr string) (net.Conn, error)) DialOption {
	return func(c *dialConfig) { c.dialer = dial }
}

// WithReconnect enables automatic reconnection with exponential backoff:
// on connection loss the client re-dials, re-registers its ports,
// re-subscribes its topics and replays buffered sends. Without it a lost
// connection closes the client (the pre-hardening behavior).
func WithReconnect(on bool) DialOption {
	return func(c *dialConfig) { c.reconnect = on }
}

// WithBackoff sets the reconnect backoff's base and cap (defaults 50ms,
// 2s). A uniform jitter of up to half the current backoff is added.
func WithBackoff(base, max time.Duration) DialOption {
	return func(c *dialConfig) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithMaxRetries bounds consecutive failed reconnect attempts per outage;
// 0 (the default) retries until Close.
func WithMaxRetries(n int) DialOption {
	return func(c *dialConfig) { c.maxRetries = n }
}

// WithHeartbeat makes the client send a ping frame every interval and arms
// a read deadline of three intervals, so a dead broker is detected even
// when the link stays technically open.
func WithHeartbeat(interval time.Duration) DialOption {
	return func(c *dialConfig) { c.heartbeat = interval }
}

// WithWriteTimeout arms a per-frame write deadline on the client side.
func WithWriteTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.writeTimeout = d }
}

// WithOpTimeout bounds how long synchronous operations (Register,
// Subscribe) wait for their acknowledgment (default 10s).
func WithOpTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.opTimeout = d
		}
	}
}

// WithSendBuffer bounds the in-flight buffer of sends accepted during an
// outage and replayed after reconnect (default 64 frames). When the buffer
// is full further sends fail fast instead of blocking.
func WithSendBuffer(n int) DialOption {
	return func(c *dialConfig) {
		if n > 0 {
			c.sendBuffer = n
		}
	}
}

// WithErrorHandler installs the sink for asynchronous failures: remote
// "error" frames (previously dropped silently), connection losses, replay
// and re-registration problems. The handler runs on client goroutines and
// must not block.
func WithErrorHandler(fn func(error)) DialOption {
	return func(c *dialConfig) { c.onError = fn }
}

// WithSeed seeds the reconnect jitter RNG for reproducible backoff
// schedules in tests.
func WithSeed(seed int64) DialOption {
	return func(c *dialConfig) { c.seed = seed }
}

// ClientStats counts the client's failure-path events. All counters are
// cumulative.
type ClientStats struct {
	// Reconnects is the number of completed resynchronizations.
	Reconnects int64
	// AsyncErrors counts asynchronous errors observed: remote "error"
	// frames plus connection losses.
	AsyncErrors int64
	// Delivered counts messages placed into local mailboxes.
	Delivered int64
	// MailboxDrops counts deliveries discarded because a mailbox was full.
	MailboxDrops int64
	// Replayed counts buffered frames re-sent after a reconnect.
	Replayed int64
	// BufferRejects counts sends refused because the in-flight buffer was
	// full during an outage.
	BufferRejects int64
	// HeartbeatsSent counts ping frames written.
	HeartbeatsSent int64
}

// mailbox is one registered port's delivery channel plus the buffer size
// needed to re-register it after a reconnect.
type mailbox struct {
	ch     chan Message
	buffer int
}

// Client is a TCP connection to a remote Message Center implementing Port.
// It is safe for concurrent use. With WithReconnect it survives link
// failures: mailbox channels stay open across outages and registrations
// are replayed on the new connection.
type Client struct {
	addr string
	cfg  dialConfig
	wmu  sync.Mutex // serializes frame writes (any generation)

	// regMu serializes registration-shaped traffic (Register, Subscribe,
	// and the reconnect resync) so acknowledgment frames are matched to
	// the operation awaiting them.
	regMu sync.Mutex

	mu      sync.Mutex
	state   int
	conn    net.Conn
	enc     *json.Encoder
	gen     int // connection generation; readLoops outlive their conn
	boxes   map[string]*mailbox
	topics  map[string]map[string]bool // port -> subscribed topics
	pending []frame                    // bounded in-flight buffer
	jitter  *rand.Rand

	acks chan frame

	reconnects     atomic.Int64
	asyncErrors    atomic.Int64
	delivered      atomic.Int64
	mailboxDrops   atomic.Int64
	replayed       atomic.Int64
	bufferRejects  atomic.Int64
	heartbeatsSent atomic.Int64
}

// Dial connects to a Message Center served at addr.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	cfg := defaultDialConfig()
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := cfg.dialer(addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		addr:   addr,
		cfg:    cfg,
		state:  stateConnected,
		boxes:  make(map[string]*mailbox),
		topics: make(map[string]map[string]bool),
		acks:   make(chan frame, 16),
		jitter: rand.New(rand.NewSource(cfg.seed)),
	}
	cl.mu.Lock()
	cl.installLocked(conn)
	cl.mu.Unlock()
	if cfg.heartbeat > 0 {
		go cl.heartbeatLoop()
	}
	return cl, nil
}

// installLocked adopts a fresh connection (mu held).
func (cl *Client) installLocked(conn net.Conn) {
	cl.conn = conn
	cl.enc = json.NewEncoder(conn)
	cl.gen++
	go cl.readLoop(cl.gen, conn)
}

func (cl *Client) reportErr(err error) {
	cl.asyncErrors.Add(1)
	if cl.cfg.onError != nil {
		cl.cfg.onError(err)
	}
}

// Stats returns a snapshot of the failure-path counters.
func (cl *Client) Stats() ClientStats {
	return ClientStats{
		Reconnects:     cl.reconnects.Load(),
		AsyncErrors:    cl.asyncErrors.Load(),
		Delivered:      cl.delivered.Load(),
		MailboxDrops:   cl.mailboxDrops.Load(),
		Replayed:       cl.replayed.Load(),
		BufferRejects:  cl.bufferRejects.Load(),
		HeartbeatsSent: cl.heartbeatsSent.Load(),
	}
}

// Degraded reports whether the control network is currently unusable from
// this client's point of view: reconnecting after a loss, or closed. The
// meta-partitioner consults it (through core.AgentManaged.Health) to fall
// back to local-only policy during partitions.
func (cl *Client) Degraded() bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.state != stateConnected
}

func (cl *Client) readLoop(gen int, conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	var readTimeout time.Duration
	if cl.cfg.heartbeat > 0 {
		readTimeout = 3 * cl.cfg.heartbeat
	}
	for {
		if readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(readTimeout))
		}
		var f frame
		if err := dec.Decode(&f); err != nil {
			var ne net.Error
			if readTimeout > 0 && errors.As(err, &ne) && ne.Timeout() {
				metricHeartbeatMisses.Inc()
			}
			cl.connLost(gen, conn, err)
			return
		}
		switch f.Op {
		case "deliver":
			cl.mu.Lock()
			box, ok := cl.boxes[f.Msg.To]
			cl.mu.Unlock()
			if ok {
				select {
				case box.ch <- f.Msg:
					cl.delivered.Add(1)
				default:
					// Full mailbox: drop the copy, but account for it.
					cl.mailboxDrops.Add(1)
					metricMailboxFull.Inc()
				}
			}
		case "register", "subscribe":
			select {
			case cl.acks <- f:
			default:
			}
		case "pong":
			// Broker liveness; the Decode above already refreshed the
			// read deadline.
		case "error":
			// Asynchronous send failures reported by the broker: route
			// them to the error handler instead of dropping them.
			cl.reportErr(fmt.Errorf("agents: remote: %s", f.Err))
		}
	}
}

// connLost reacts to a broken connection observed by a reader or writer of
// generation gen. Exactly one observer per generation wins; the rest are
// no-ops.
func (cl *Client) connLost(gen int, conn net.Conn, cause error) {
	conn.Close()
	cl.mu.Lock()
	if cl.state != stateConnected || gen != cl.gen {
		cl.mu.Unlock()
		return
	}
	metricLinkLosses.Inc()
	if !cl.cfg.reconnect {
		cl.failLocked()
		cl.mu.Unlock()
		cl.reportErr(fmt.Errorf("agents: connection lost: %w", cause))
		return
	}
	cl.state = stateReconnecting
	cl.mu.Unlock()
	cl.reportErr(fmt.Errorf("agents: connection lost, reconnecting: %w", cause))
	go cl.reconnectLoop()
}

// failLocked finalizes the client: mailboxes close, further ops fail.
func (cl *Client) failLocked() {
	if cl.state == stateClosed {
		return
	}
	cl.state = stateClosed
	if cl.conn != nil {
		cl.conn.Close()
	}
	for _, box := range cl.boxes {
		close(box.ch)
	}
	cl.boxes = make(map[string]*mailbox)
	cl.pending = nil
}

func (cl *Client) reconnectLoop() {
	backoff := cl.cfg.backoffBase
	for attempt := 1; ; attempt++ {
		if cl.cfg.maxRetries > 0 && attempt > cl.cfg.maxRetries {
			cl.mu.Lock()
			cl.failLocked()
			cl.mu.Unlock()
			cl.reportErr(fmt.Errorf("agents: reconnect: %d attempts exhausted", cl.cfg.maxRetries))
			return
		}
		cl.mu.Lock()
		if cl.state == stateClosed {
			cl.mu.Unlock()
			return
		}
		sleep := backoff + time.Duration(cl.jitter.Int63n(int64(backoff/2)+1))
		cl.mu.Unlock()
		time.Sleep(sleep)
		if backoff < cl.cfg.backoffMax {
			backoff *= 2
			if backoff > cl.cfg.backoffMax {
				backoff = cl.cfg.backoffMax
			}
		}
		conn, err := cl.cfg.dialer(cl.addr)
		if err != nil {
			continue
		}
		if cl.resync(conn) {
			return
		}
	}
}

// resync adopts a fresh connection and rebuilds session state on it:
// re-register every mailbox, re-subscribe every topic, replay the buffered
// sends, then mark the client connected. Returns false (and abandons the
// connection) when the new link dies mid-resync.
func (cl *Client) resync(conn net.Conn) bool {
	cl.regMu.Lock()
	defer cl.regMu.Unlock()

	cl.mu.Lock()
	if cl.state == stateClosed {
		cl.mu.Unlock()
		conn.Close()
		return true // stop reconnecting; client is gone
	}
	// Drain stale acknowledgments from the previous connection so the
	// replays below match fresh ones.
	for {
		select {
		case <-cl.acks:
			continue
		default:
		}
		break
	}
	cl.installLocked(conn)
	enc, gen := cl.enc, cl.gen
	ports := make([]string, 0, len(cl.boxes))
	for p := range cl.boxes {
		ports = append(ports, p)
	}
	type sub struct{ port, topic string }
	var subsList []sub
	for p, ts := range cl.topics {
		for t := range ts {
			subsList = append(subsList, sub{p, t})
		}
	}
	cl.mu.Unlock()

	// Re-register ports. The broker may still hold the dead connection's
	// registrations until its read deadline fires, so "already registered
	// remotely" is retried — the register-race window after reconnect.
	for _, port := range ports {
		if !cl.replayRegistration(conn, enc, gen, frame{Op: "register", Port: port}, "register") {
			return false
		}
	}
	for _, s := range subsList {
		if !cl.replayRegistration(conn, enc, gen, frame{Op: "subscribe", Port: s.port, Topic: s.topic}, "subscribe") {
			return false
		}
	}

	// Replay buffered sends, then flip to connected. New sends buffer
	// until the flip, so nothing written during resync is lost.
	for {
		cl.mu.Lock()
		if len(cl.pending) == 0 {
			cl.state = stateConnected
			cl.mu.Unlock()
			break
		}
		f := cl.pending[0]
		cl.pending = cl.pending[1:]
		cl.mu.Unlock()
		if err := cl.writeConn(conn, enc, f); err != nil {
			cl.mu.Lock()
			// Put the frame back for the next attempt.
			cl.pending = append([]frame{f}, cl.pending...)
			if cl.state == stateClosed {
				cl.mu.Unlock()
				return true
			}
			cl.mu.Unlock()
			conn.Close()
			return false
		}
		cl.replayed.Add(1)
		metricReplayedFrames.Inc()
	}
	cl.reconnects.Add(1)
	metricReconnects.Inc()
	return true
}

// replayRegistration writes one register/subscribe frame on the resync
// connection and waits for its acknowledgment, retrying transient "already
// registered" conflicts. Returns false when the connection must be
// abandoned.
func (cl *Client) replayRegistration(conn net.Conn, enc *json.Encoder, gen int, f frame, op string) bool {
	deadline := time.Now().Add(cl.cfg.opTimeout)
	for {
		if err := cl.writeConn(conn, enc, f); err != nil {
			conn.Close()
			return false
		}
		err := cl.await(op)
		if err == nil {
			return true
		}
		if time.Now().After(deadline) {
			// Could not reclaim the port in time (e.g. genuinely taken by
			// another client). Report and continue without it rather than
			// wedging the whole reconnect.
			cl.reportErr(fmt.Errorf("agents: reconnect: replay %s %q: %w", op, f.Port, err))
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writeConn writes one frame on an explicit connection (any state).
func (cl *Client) writeConn(conn net.Conn, enc *json.Encoder, f frame) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	if cl.cfg.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(cl.cfg.writeTimeout))
	}
	return enc.Encode(f)
}

// writeFrame writes one frame on the current connection, failing when the
// client is not connected (synchronous-operation path).
func (cl *Client) writeFrame(f frame) error {
	cl.mu.Lock()
	switch cl.state {
	case stateClosed:
		cl.mu.Unlock()
		return fmt.Errorf("agents: client closed")
	case stateReconnecting:
		cl.mu.Unlock()
		return fmt.Errorf("agents: client disconnected (reconnecting)")
	}
	conn, enc, gen := cl.conn, cl.enc, cl.gen
	cl.mu.Unlock()
	if err := cl.writeConn(conn, enc, f); err != nil {
		cl.connLost(gen, conn, err)
		return err
	}
	return nil
}

// sendAsync writes a send/publish frame, buffering it for replay when the
// connection is down (or breaks mid-write) and reconnection is enabled.
func (cl *Client) sendAsync(f frame) error {
	cl.mu.Lock()
	switch cl.state {
	case stateClosed:
		cl.mu.Unlock()
		return fmt.Errorf("agents: client closed")
	case stateReconnecting:
		err := cl.bufferLocked(f)
		cl.mu.Unlock()
		return err
	}
	conn, enc, gen := cl.conn, cl.enc, cl.gen
	cl.mu.Unlock()
	if err := cl.writeConn(conn, enc, f); err != nil {
		var buffered error
		if cl.cfg.reconnect {
			cl.mu.Lock()
			buffered = cl.bufferLocked(f)
			cl.mu.Unlock()
		}
		cl.connLost(gen, conn, err)
		if !cl.cfg.reconnect {
			return err
		}
		return buffered
	}
	return nil
}

// bufferLocked queues a frame for replay after reconnect (mu held). The
// buffer is bounded: overflow rejects the send instead of growing without
// limit.
func (cl *Client) bufferLocked(f frame) error {
	if len(cl.pending) >= cl.cfg.sendBuffer {
		cl.bufferRejects.Add(1)
		metricBufferRejects.Inc()
		return fmt.Errorf("agents: send buffer full (%d frames) during outage", cl.cfg.sendBuffer)
	}
	cl.pending = append(cl.pending, f)
	return nil
}

func (cl *Client) heartbeatLoop() {
	ticker := time.NewTicker(cl.cfg.heartbeat)
	defer ticker.Stop()
	for range ticker.C {
		cl.mu.Lock()
		state := cl.state
		conn, enc, gen := cl.conn, cl.enc, cl.gen
		cl.mu.Unlock()
		switch state {
		case stateClosed:
			return
		case stateReconnecting:
			continue
		}
		if err := cl.writeConn(conn, enc, frame{Op: "ping"}); err != nil {
			cl.connLost(gen, conn, err)
			continue
		}
		cl.heartbeatsSent.Add(1)
		metricHeartbeatsSent.Inc()
	}
}

func (cl *Client) await(op string) error {
	timer := time.NewTimer(cl.cfg.opTimeout)
	defer timer.Stop()
	for {
		select {
		case f := <-cl.acks:
			if f.Op != op {
				continue
			}
			if f.Err != "" {
				return fmt.Errorf("agents: %s", f.Err)
			}
			return nil
		case <-timer.C:
			return fmt.Errorf("agents: timed out awaiting %s acknowledgment", op)
		}
	}
}

// Register implements Port.
func (cl *Client) Register(port string, buffer int) (<-chan Message, error) {
	if buffer < 1 {
		buffer = 16
	}
	cl.regMu.Lock()
	defer cl.regMu.Unlock()
	cl.mu.Lock()
	if cl.state == stateClosed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("agents: client closed")
	}
	if _, ok := cl.boxes[port]; ok {
		cl.mu.Unlock()
		return nil, fmt.Errorf("agents: port %q already registered on this client", port)
	}
	box := &mailbox{ch: make(chan Message, buffer), buffer: buffer}
	cl.boxes[port] = box
	cl.mu.Unlock()
	rollback := func() {
		cl.mu.Lock()
		delete(cl.boxes, port)
		cl.mu.Unlock()
	}
	if err := cl.writeFrame(frame{Op: "register", Port: port}); err != nil {
		rollback()
		return nil, err
	}
	if err := cl.await("register"); err != nil {
		rollback()
		return nil, err
	}
	return box.ch, nil
}

// Unregister implements Port.
func (cl *Client) Unregister(port string) {
	cl.mu.Lock()
	if box, ok := cl.boxes[port]; ok {
		delete(cl.boxes, port)
		close(box.ch)
	}
	delete(cl.topics, port)
	cl.mu.Unlock()
	cl.writeFrame(frame{Op: "unregister", Port: port})
}

// Send implements Port. During an outage (with reconnection enabled) the
// message is buffered and replayed once the link resynchronizes.
func (cl *Client) Send(m Message) error {
	return cl.sendAsync(frame{Op: "send", Msg: m})
}

// Subscribe implements Port.
func (cl *Client) Subscribe(port, topic string) error {
	cl.regMu.Lock()
	defer cl.regMu.Unlock()
	if err := cl.writeFrame(frame{Op: "subscribe", Port: port, Topic: topic}); err != nil {
		return err
	}
	if err := cl.await("subscribe"); err != nil {
		return err
	}
	cl.mu.Lock()
	if cl.topics[port] == nil {
		cl.topics[port] = make(map[string]bool)
	}
	cl.topics[port][topic] = true
	cl.mu.Unlock()
	return nil
}

// Publish implements Port. Like Send, publications during an outage are
// buffered and replayed.
func (cl *Client) Publish(m Message) error {
	return cl.sendAsync(frame{Op: "publish", Msg: m})
}

// Close tears down the connection, closes all mailboxes and stops any
// reconnection in progress.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.state == stateClosed {
		return nil
	}
	cl.failLocked()
	return nil
}

var _ Port = (*Client)(nil)

package agents

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// This file adds the distributed deployment of the Message Center: agents
// on other "nodes" (processes, or goroutines emulating them) connect over
// TCP, register their ports with the central broker, and exchange messages
// with local agents transparently. This is the multi-node emulation of the
// paper's agent network: "CATALINA agents resident at each computing
// element in the distributed environment".

// frame is the wire protocol unit: one JSON object per line.
type frame struct {
	// Op is "register", "unregister", "subscribe", "send", "publish",
	// "deliver" (server to client), or "error".
	Op    string  `json:"op"`
	Port  string  `json:"port,omitempty"`
	Topic string  `json:"topic,omitempty"`
	Msg   Message `json:"msg,omitempty"`
	Err   string  `json:"err,omitempty"`
}

// wireConn is the server-side state of one TCP client.
type wireConn struct {
	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex
}

func (w *wireConn) deliver(m Message) error {
	return w.write(frame{Op: "deliver", Msg: m})
}

func (w *wireConn) write(f frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.enc.Encode(f)
}

// Serve accepts TCP clients on the listener and routes their traffic
// through the center until the listener is closed. Call it in a goroutine:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go center.Serve(ln)
func (c *Center) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go c.handle(conn)
	}
}

func (c *Center) handle(conn net.Conn) {
	wc := &wireConn{conn: conn, enc: json.NewEncoder(conn)}
	owned := make(map[string]bool)
	defer func() {
		conn.Close()
		c.mu.Lock()
		for port := range owned {
			delete(c.remote, port)
			for _, subscribers := range c.subs {
				delete(subscribers, port)
			}
		}
		c.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		switch f.Op {
		case "register":
			err := c.registerRemote(f.Port, wc)
			if err == nil {
				owned[f.Port] = true
			}
			wc.write(frame{Op: "register", Port: f.Port, Err: errString(err)})
		case "unregister":
			c.mu.Lock()
			if owned[f.Port] {
				delete(c.remote, f.Port)
				delete(owned, f.Port)
				for _, subscribers := range c.subs {
					delete(subscribers, f.Port)
				}
			}
			c.mu.Unlock()
		case "subscribe":
			err := c.Subscribe(f.Port, f.Topic)
			wc.write(frame{Op: "subscribe", Port: f.Port, Topic: f.Topic, Err: errString(err)})
		case "send":
			if err := c.Send(f.Msg); err != nil {
				wc.write(frame{Op: "error", Err: err.Error()})
			}
		case "publish":
			if err := c.Publish(f.Msg); err != nil {
				wc.write(frame{Op: "error", Err: err.Error()})
			}
		}
	}
}

func (c *Center) registerRemote(port string, wc *wireConn) error {
	if port == "" {
		return fmt.Errorf("agents: empty port name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.local[port]; ok {
		return fmt.Errorf("agents: port %q already registered", port)
	}
	if _, ok := c.remote[port]; ok {
		return fmt.Errorf("agents: port %q already registered remotely", port)
	}
	c.remote[port] = wc
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Client is a TCP connection to a remote Message Center implementing Port.
// It is safe for concurrent use.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex

	mu     sync.Mutex
	boxes  map[string]chan Message
	acks   chan frame
	closed bool
}

// Dial connects to a Message Center served at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		conn:  conn,
		enc:   json.NewEncoder(conn),
		boxes: make(map[string]chan Message),
		acks:  make(chan frame, 16),
	}
	go cl.readLoop()
	return cl, nil
}

func (cl *Client) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(cl.conn))
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			cl.mu.Lock()
			cl.closed = true
			for _, ch := range cl.boxes {
				close(ch)
			}
			cl.boxes = make(map[string]chan Message)
			cl.mu.Unlock()
			return
		}
		switch f.Op {
		case "deliver":
			cl.mu.Lock()
			ch, ok := cl.boxes[f.Msg.To]
			cl.mu.Unlock()
			if ok {
				select {
				case ch <- f.Msg:
				default: // drop on overflow, like a full mailbox
				}
			}
		case "register", "subscribe":
			select {
			case cl.acks <- f:
			default:
			}
		case "error":
			// Asynchronous send errors have nowhere to land; drop them.
			// Callers needing confirmation use request/reply on top.
		}
	}
}

func (cl *Client) writeFrame(f frame) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	return cl.enc.Encode(f)
}

func (cl *Client) await(op string) error {
	for f := range cl.acks {
		if f.Op == op {
			if f.Err != "" {
				return fmt.Errorf("agents: %s", f.Err)
			}
			return nil
		}
	}
	return fmt.Errorf("agents: connection closed")
}

// Register implements Port.
func (cl *Client) Register(port string, buffer int) (<-chan Message, error) {
	if buffer < 1 {
		buffer = 16
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("agents: client closed")
	}
	if _, ok := cl.boxes[port]; ok {
		cl.mu.Unlock()
		return nil, fmt.Errorf("agents: port %q already registered on this client", port)
	}
	ch := make(chan Message, buffer)
	cl.boxes[port] = ch
	cl.mu.Unlock()
	if err := cl.writeFrame(frame{Op: "register", Port: port}); err != nil {
		return nil, err
	}
	if err := cl.await("register"); err != nil {
		cl.mu.Lock()
		delete(cl.boxes, port)
		cl.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Unregister implements Port.
func (cl *Client) Unregister(port string) {
	cl.mu.Lock()
	if ch, ok := cl.boxes[port]; ok {
		delete(cl.boxes, port)
		close(ch)
	}
	cl.mu.Unlock()
	cl.writeFrame(frame{Op: "unregister", Port: port})
}

// Send implements Port.
func (cl *Client) Send(m Message) error {
	return cl.writeFrame(frame{Op: "send", Msg: m})
}

// Subscribe implements Port.
func (cl *Client) Subscribe(port, topic string) error {
	if err := cl.writeFrame(frame{Op: "subscribe", Port: port, Topic: topic}); err != nil {
		return err
	}
	return cl.await("subscribe")
}

// Publish implements Port.
func (cl *Client) Publish(m Message) error {
	return cl.writeFrame(frame{Op: "publish", Msg: m})
}

// Close tears down the connection; mailboxes are closed by the read loop.
func (cl *Client) Close() error { return cl.conn.Close() }

var _ Port = (*Client)(nil)

package agents

import (
	"testing"
	"time"
)

func TestRequestReply(t *testing.T) {
	c := NewCenter()
	serverIn, err := c.Register("server", 16)
	if err != nil {
		t.Fatal(err)
	}
	clientIn, err := c.Register("client", 16)
	if err != nil {
		t.Fatal(err)
	}
	// Server: doubles the requested number.
	go func() {
		for m := range serverIn {
			if m.Kind != "double" {
				continue
			}
			var n int
			if err := Respond(c, "server", m, &n, func() (interface{}, error) {
				return n * 2, nil
			}); err != nil {
				t.Error(err)
			}
		}
	}()
	reply, err := Request(c, "client", clientIn, "server", "double", 21, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if err := Decode(reply, &got); err != nil || got != 42 {
		t.Fatalf("reply = %d err %v", got, err)
	}
}

func TestRequestIgnoresUnrelatedTraffic(t *testing.T) {
	c := NewCenter()
	serverIn, _ := c.Register("server", 16)
	clientIn, _ := c.Register("client", 16)
	go func() {
		for m := range serverIn {
			// Send noise first, then the real reply.
			c.Send(Message{From: "server", To: "client", Kind: "noise"})
			c.Send(Message{From: "server", To: "client", Kind: "ping-reply",
				Payload: Encode(correlated{ID: "wrong-id"})})
			Respond(c, "server", m, nil, func() (interface{}, error) { return "ok", nil })
		}
	}()
	reply, err := Request(c, "client", clientIn, "server", "ping", nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	if err := Decode(reply, &got); err != nil || got != "ok" {
		t.Fatalf("reply = %q err %v", got, err)
	}
}

func TestRequestTimeout(t *testing.T) {
	c := NewCenter()
	if _, err := c.Register("silent", 4); err != nil {
		t.Fatal(err)
	}
	clientIn, _ := c.Register("client", 4)
	if _, err := Request(c, "client", clientIn, "silent", "ping", nil, 20*time.Millisecond); err == nil {
		t.Fatal("timeout did not fire")
	}
}

func TestRequestToUnknownPort(t *testing.T) {
	c := NewCenter()
	clientIn, _ := c.Register("client", 4)
	if _, err := Request(c, "client", clientIn, "nowhere", "ping", nil, time.Second); err == nil {
		t.Fatal("send to unknown port succeeded")
	}
}

func TestRespondMalformed(t *testing.T) {
	c := NewCenter()
	if err := Respond(c, "s", Message{Payload: []byte("{")}, nil, func() (interface{}, error) {
		return nil, nil
	}); err == nil {
		t.Fatal("malformed request accepted")
	}
	var n int
	bad := Message{From: "x", Kind: "k", Payload: Encode(correlated{ID: "1", Payload: []byte(`"str"`)})}
	if err := Respond(c, "s", bad, &n, func() (interface{}, error) { return nil, nil }); err == nil {
		t.Fatal("mistyped payload accepted")
	}
}

package agents

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/chaos"
)

func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// TestChaosControlNetwork subjects a client↔broker link to seeded chaos —
// latency, jitter, connection drops and byte corruption — and requires the
// hardened client to keep the control network usable: reconnects heal the
// link, buffered frames replay, most traffic gets through, and once the
// fault budget is spent the network is fully functional again.
func TestChaosControlNetwork(t *testing.T) {
	center, addr := startCenterOpts(t,
		WithHeartbeatTimeout(500*time.Millisecond),
		WithCenterWriteTimeout(time.Second))
	sink, err := center.Register("sink", 1024)
	if err != nil {
		t.Fatal(err)
	}
	dialer := chaos.Dialer(chaos.Config{
		Seed:        42,
		Latency:     200 * time.Microsecond,
		Jitter:      time.Millisecond,
		DropRate:    0.01,
		CorruptRate: 0.01,
		MaxFaults:   10,
	})
	cl, err := Dial(addr,
		WithDialer(dialer),
		WithReconnect(true),
		WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		WithHeartbeat(25*time.Millisecond),
		WithOpTimeout(2*time.Second),
		WithWriteTimeout(time.Second),
		WithSendBuffer(512),
		WithSeed(99),
		WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Register("chaos-src", 8); err != nil {
		t.Fatal(err)
	}

	const sent = 200
	for i := 0; i < sent; i++ {
		if err := cl.Send(Message{From: "chaos-src", To: "sink", Kind: fmt.Sprintf("m-%d", i)}); err != nil {
			t.Fatalf("send %d rejected: %v", i, err)
		}
		time.Sleep(500 * time.Microsecond)
	}

	// Drain until the stream goes quiet. Chaos loses frames that were
	// corrupted on the wire or in flight when a connection died, so exact
	// delivery is not required — but losing more than a fault-budget's
	// worth of traffic means reconnect/replay is broken.
	got := make(map[string]bool)
	for {
		select {
		case m := <-sink:
			got[m.Kind] = true
			continue
		case <-time.After(500 * time.Millisecond):
		}
		break
	}
	if len(got) < sent*3/5 {
		t.Fatalf("only %d/%d distinct messages survived chaos", len(got), sent)
	}

	// The fault budget is exhausted by now; the link must be fully
	// healthy: a sentinel goes through and the client is not degraded.
	deadline := time.Now().Add(10 * time.Second)
sentinel:
	for {
		if time.Now().After(deadline) {
			t.Fatal("network never healed after chaos")
		}
		cl.Send(Message{From: "chaos-src", To: "sink", Kind: "sentinel"})
		select {
		case m := <-sink:
			if m.Kind == "sentinel" {
				break sentinel
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
	if cl.Degraded() {
		t.Fatal("client still degraded after chaos ended")
	}
	t.Logf("chaos run: %d/%d delivered, stats %+v", len(got), sent, cl.Stats())
}

// TestChaosServerSide wraps the broker's listener in chaos so faults hit
// the server side of every accepted connection; the reconnecting client
// must still converge to a working link.
func TestChaosServerSide(t *testing.T) {
	c := NewCenter(WithHeartbeatTimeout(500 * time.Millisecond))
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	chaosLn := chaos.WrapListener(ln, chaos.Config{
		Seed:      7,
		Latency:   100 * time.Microsecond,
		DropRate:  0.02,
		MaxFaults: 5,
	})
	go c.Serve(chaosLn)
	t.Cleanup(func() { chaosLn.Close() })
	sink, err := c.Register("sink", 256)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(ln.Addr().String(),
		WithReconnect(true),
		WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		WithHeartbeat(25*time.Millisecond),
		WithOpTimeout(2*time.Second),
		WithSendBuffer(256),
		WithSeed(11),
		WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Register("src", 8); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	delivered := 0
	for delivered < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d messages delivered through server-side chaos", delivered)
		}
		cl.Send(Message{From: "src", To: "sink", Kind: "x"})
		select {
		case <-sink:
			delivered++
		case <-time.After(20 * time.Millisecond):
		}
	}
}

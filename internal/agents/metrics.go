package agents

import "github.com/pragma-grid/pragma/internal/telemetry"

// Control-network instrumentation. Handles are resolved once; the message
// hot paths (Send, Publish, deliver) pay one atomic increment each.
var (
	metricMessages = telemetry.Default.CounterVec(
		"pragma_agents_messages_total",
		"Message Center traffic by path: direct sends and topic publications.",
		"path")
	metricSends     = metricMessages.With("direct")
	metricPublishes = metricMessages.With("publish")

	metricMailboxFull = telemetry.Default.Counter(
		"pragma_agents_mailbox_full_total",
		"Deliveries refused or dropped because the destination mailbox was full.")
	metricEvictions = telemetry.Default.Counter(
		"pragma_agents_evictions_total",
		"TCP clients evicted by the broker for silence past the heartbeat timeout.")
	metricHeartbeatMisses = telemetry.Default.Counter(
		"pragma_agents_heartbeat_misses_total",
		"Liveness deadline expiries observed on the wire (broker reads and client reads).")
	metricLinkLosses = telemetry.Default.Counter(
		"pragma_agents_link_losses_total",
		"Client connections lost (before any reconnect attempt).")
	metricReconnects = telemetry.Default.Counter(
		"pragma_agents_reconnects_total",
		"Client resynchronizations completed after a link loss.")
	metricHeartbeatsSent = telemetry.Default.Counter(
		"pragma_agents_heartbeats_sent_total",
		"Ping frames written by clients.")
	metricReplayedFrames = telemetry.Default.Counter(
		"pragma_agents_replayed_frames_total",
		"Buffered frames re-sent after reconnects.")
	metricBufferRejects = telemetry.Default.Counter(
		"pragma_agents_buffer_rejects_total",
		"Sends refused because the in-flight buffer was full during an outage.")
)

// RegisterQueueDepthGauge exposes the center's aggregate mailbox backlog
// as the pragma_agents_queue_depth gauge, sampled at scrape time.
// Intended for the long-lived broker Center of a process; re-registering
// rebinds the gauge to the new center (last wins).
func RegisterQueueDepthGauge(c *Center) {
	telemetry.Default.GaugeFunc(
		"pragma_agents_queue_depth",
		"Messages queued in the Message Center's local mailboxes, sampled at scrape time.",
		func() float64 { return float64(c.QueueDepth()) })
}

package agents

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestComponentAgentRunLoop(t *testing.T) {
	c := NewCenter()
	watcher, _ := c.Register("watch", 64)
	if err := c.Subscribe("watch", TopicState); err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 4)
	ca, err := NewComponentAgent("runner", c,
		[]Sensor{fixedSensor("load", 0.5)},
		[]Actuator{ActuatorFunc{ActuatorName: "tweak", Fn: func(map[string]float64) error {
			fired <- struct{}{}
			return nil
		}}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		ca.Run(ctx, 2*time.Millisecond)
		close(done)
	}()
	// The loop polls: state reports arrive.
	select {
	case m := <-watcher:
		if m.Kind != "state" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no state report from running agent")
	}
	// The loop serves commands.
	if err := c.Send(Message{From: "x", To: "runner", Kind: "command",
		Payload: Encode(Command{Actuator: "tweak"})}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("running agent never actuated")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent loop did not stop on cancel")
	}
}

func TestComponentAgentRunStopsOnUnregister(t *testing.T) {
	c := NewCenter()
	ca, err := NewComponentAgent("ephemeral", c, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		ca.Run(context.Background(), time.Hour) // only the inbox can wake it
		close(done)
	}()
	c.Unregister("ephemeral")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent loop did not stop when its mailbox closed")
	}
}

func TestComponentAgentSensorError(t *testing.T) {
	c := NewCenter()
	bad := SensorFunc{SensorName: "broken", Fn: func() (float64, error) {
		return 0, fmt.Errorf("hardware gone")
	}}
	ca, err := NewComponentAgent("sick", c, []Sensor{bad}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Poll(); err == nil {
		t.Fatal("sensor error swallowed")
	}
}

func TestComponentAgentConstructorValidation(t *testing.T) {
	c := NewCenter()
	if _, err := NewComponentAgent("", c, nil, nil, nil); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewComponentAgent("dup", c, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewComponentAgent("dup", c, nil, nil, nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := NewADM("", c, nil); err == nil {
		t.Error("empty ADM id accepted")
	}
}

func TestSensorNames(t *testing.T) {
	c := NewCenter()
	ca, err := NewComponentAgent("named", c,
		[]Sensor{fixedSensor("zeta", 1), fixedSensor("alpha", 2)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := ca.SensorNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestEventRuleBelowThreshold(t *testing.T) {
	c := NewCenter()
	events, _ := c.Register("ev", 16)
	if err := c.Subscribe("ev", TopicEvents); err != nil {
		t.Fatal(err)
	}
	val := 0.9
	lo := 0.2
	ca, err := NewComponentAgent("low", c,
		[]Sensor{SensorFunc{SensorName: "bandwidth", Fn: func() (float64, error) { return val, nil }}},
		nil,
		[]EventRule{{Sensor: "bandwidth", Below: &lo, Event: "bandwidth-collapse"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Poll(); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-events:
		t.Fatalf("unexpected event %+v", m)
	default:
	}
	val = 0.1
	if _, err := ca.Poll(); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-events:
		var ev Event
		if err := Decode(m, &ev); err != nil || ev.Name != "bandwidth-collapse" {
			t.Fatalf("event %+v err %v", ev, err)
		}
	default:
		t.Fatal("below-threshold event not fired")
	}
}

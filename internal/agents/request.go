package agents

import (
	"encoding/json"
	"fmt"
	"time"
)

// Request/reply over the Message Center. CATALINA's modules converse
// through mailboxes; this helper implements the correlated request/reply
// conversation pattern (used, for example, by template discovery) on top
// of raw sends: the requester stamps a correlation id, the responder
// echoes it, unrelated messages arriving on the same mailbox are ignored.

// correlated wraps a payload with a correlation id.
type correlated struct {
	ID      string          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Request sends `kind` to the destination port and waits on the inbox for
// a message of kind `kind + "-reply"` carrying the same correlation id.
// Messages of other kinds or ids received while waiting are dropped.
func Request(port Port, from string, inbox <-chan Message, to, kind string, payload interface{}, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	id := fmt.Sprintf("%s-%d", from, time.Now().UnixNano())
	err := port.Send(Message{
		From: from, To: to, Kind: kind,
		Payload: Encode(correlated{ID: id, Payload: Encode(payload)}),
	})
	if err != nil {
		return Message{}, err
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case m, ok := <-inbox:
			if !ok {
				return Message{}, fmt.Errorf("agents: mailbox closed awaiting %s-reply", kind)
			}
			if m.Kind != kind+"-reply" {
				continue
			}
			var c correlated
			if Decode(m, &c) != nil || c.ID != id {
				continue
			}
			m.Payload = c.Payload
			return m, nil
		case <-deadline.C:
			return Message{}, fmt.Errorf("agents: timeout awaiting %s-reply from %s", kind, to)
		}
	}
}

// Respond answers a correlated request received as message m: it decodes
// the request payload into req, invokes the handler, and sends the reply
// back to the requester with the same correlation id.
func Respond(port Port, self string, m Message, req interface{}, handler func() (interface{}, error)) error {
	var c correlated
	if err := Decode(m, &c); err != nil {
		return fmt.Errorf("agents: malformed request: %w", err)
	}
	if req != nil && len(c.Payload) > 0 {
		if err := json.Unmarshal(c.Payload, req); err != nil {
			return fmt.Errorf("agents: malformed request payload: %w", err)
		}
	}
	result, err := handler()
	if err != nil {
		return err
	}
	return port.Send(Message{
		From: self, To: m.From, Kind: m.Kind + "-reply",
		Payload: Encode(correlated{ID: c.ID, Payload: Encode(result)}),
	})
}

package agents

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/policy"
)

// startCenter serves a Message Center on a loopback listener.
func startCenter(t *testing.T) (*Center, string) {
	t.Helper()
	return startCenterOpts(t)
}

// startCenterOpts serves a Message Center built with the given options.
func startCenterOpts(t *testing.T, opts ...CenterOption) (*Center, string) {
	t.Helper()
	c := NewCenter(opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return c, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func recvT(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("mailbox closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	return Message{}
}

func TestTCPRemoteToLocal(t *testing.T) {
	center, addr := startCenter(t)
	local, err := center.Register("local", 8)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialT(t, addr)
	if _, err := cl.Register("remote", 8); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Message{From: "remote", To: "local", Kind: "hello"}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, local)
	if m.Kind != "hello" || m.From != "remote" {
		t.Fatalf("received %+v", m)
	}
}

func TestTCPLocalToRemote(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	remote, err := cl.Register("remote", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := center.Send(Message{From: "srv", To: "remote", Kind: "task"}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, remote)
	if m.Kind != "task" {
		t.Fatalf("received %+v", m)
	}
}

func TestTCPRemoteToRemote(t *testing.T) {
	_, addr := startCenter(t)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	if _, err := c1.Register("n1", 8); err != nil {
		t.Fatal(err)
	}
	in2, err := c2.Register("n2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(Message{From: "n1", To: "n2", Kind: "x", Payload: Encode(42)}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, in2)
	var v int
	if err := Decode(m, &v); err != nil || v != 42 {
		t.Fatalf("payload %v err %v", v, err)
	}
}

func TestTCPPubSubAcrossNodes(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	remoteIn, err := cl.Register("rsub", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("rsub", "events"); err != nil {
		t.Fatal(err)
	}
	localIn, err := center.Register("lsub", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := center.Subscribe("lsub", "events"); err != nil {
		t.Fatal(err)
	}
	// Publish from the remote side; both local and remote subscribers get it.
	if err := cl.Publish(Message{From: "rsub2", Topic: "events", Kind: "boom"}); err != nil {
		t.Fatal(err)
	}
	if m := recvT(t, remoteIn); m.Kind != "boom" {
		t.Fatalf("remote got %+v", m)
	}
	if m := recvT(t, localIn); m.Kind != "boom" {
		t.Fatalf("local got %+v", m)
	}
}

func TestTCPDuplicateRegistrationRejected(t *testing.T) {
	center, addr := startCenter(t)
	if _, err := center.Register("dup", 4); err != nil {
		t.Fatal(err)
	}
	cl := dialT(t, addr)
	if _, err := cl.Register("dup", 4); err == nil {
		t.Fatal("remote registration over existing local port accepted")
	}
	// A different port still works on the same connection.
	if _, err := cl.Register("dup2", 4); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDisconnectCleansUp(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	if _, err := cl.Register("ghost", 4); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// After the disconnect the port eventually disappears from the broker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := center.Send(Message{From: "x", To: "ghost", Kind: "y"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ghost port still routable after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPUnregister(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	in, err := cl.Register("p", 4)
	if err != nil {
		t.Fatal(err)
	}
	cl.Unregister("p")
	if _, ok := <-in; ok {
		t.Fatal("mailbox not closed on unregister")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := center.Send(Message{From: "x", To: "p", Kind: "y"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("port still routable after unregister")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistributedControlNetwork is the multi-node emulation scenario of
// §4.7: component agents on two "nodes" (TCP clients) publish state to the
// message center; the ADM (local to the broker) consolidates, queries the
// policy base, and directs the remote agents, whose actuators fire.
func TestDistributedControlNetwork(t *testing.T) {
	center, addr := startCenter(t)
	adm, err := NewADM("adm", center, policy.Table2())
	if err != nil {
		t.Fatal(err)
	}

	type node struct {
		client *Client
		agent  *ComponentAgent
		fired  chan Command
	}
	mkNode := func(id string, load float64) *node {
		cl := dialT(t, addr)
		fired := make(chan Command, 4)
		ca, err := NewComponentAgent(id, cl,
			[]Sensor{fixedSensor("load", load)},
			[]Actuator{ActuatorFunc{ActuatorName: "repartition", Fn: func(p map[string]float64) error {
				fired <- Command{Actuator: "repartition", Params: p}
				return nil
			}}},
			nil)
		if err != nil {
			t.Fatal(err)
		}
		return &node{client: cl, agent: ca, fired: fired}
	}
	n1 := mkNode("node-1", 0.3)
	n2 := mkNode("node-2", 0.85)

	for _, n := range []*node{n1, n2} {
		if _, err := n.agent.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// State flows over TCP to the broker-side ADM.
	deadline := time.Now().Add(5 * time.Second)
	for adm.Absorb(); ; {
		if adm.Consolidate().Agents == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ADM saw %d agents", adm.Consolidate().Agents)
		}
		time.Sleep(time.Millisecond)
		adm.Absorb()
	}
	cons := adm.Consolidate()
	if cons.ArgMax["load"] != "node-2" {
		t.Fatalf("argmax = %v", cons.ArgMax)
	}
	// Policy decision and directive propagation.
	dec := adm.Decide(map[string]interface{}{"octant": "V"}, "select-partitioner")
	if len(dec) != 1 || dec[0].Action.Target != "pBD-ISP" {
		t.Fatalf("decision = %+v", dec)
	}
	if err := adm.Broadcast(Command{Actuator: "repartition", Params: map[string]float64{"procs": 2}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*node{n1, n2} {
		// Commands arrive over TCP; drain until the actuator fires.
		deadline := time.Now().Add(5 * time.Second)
		for {
			n.agent.DrainInbox()
			select {
			case cmd := <-n.fired:
				if cmd.Params["procs"] != 2 {
					t.Fatalf("actuated %+v", cmd)
				}
			default:
				if time.Now().After(deadline) {
					t.Fatalf("%s actuator never fired", n.agent.ID)
				}
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
	}
}

// ---------------------------------------------------------------------------
// Fault-injection helpers

// faultConn wraps a real TCP connection with test-controlled failures:
// writes that die mid-frame, reads that are cut while the peer side stays
// open (a half-open link), and optional suppression of Close so the
// server keeps the stale registration alive.
type faultConn struct {
	net.Conn
	mu         sync.Mutex
	writeQuota int64 // bytes still allowed; -1 = unlimited
	readsCut   bool
	keepOpen   bool // Close() leaves the underlying conn open
}

func newFaultConn(c net.Conn) *faultConn {
	return &faultConn{Conn: c, writeQuota: -1}
}

// failNextWriteAfter arms a mid-frame failure: the next write delivers
// exactly n bytes to the wire, then the connection dies.
func (f *faultConn) failNextWriteAfter(n int64) {
	f.mu.Lock()
	f.writeQuota = n
	f.mu.Unlock()
}

// cutReads makes all reads fail immediately without touching the peer
// side; keepOpen suppresses Close so the server still sees a live conn.
func (f *faultConn) cutReads(keepOpen bool) {
	f.mu.Lock()
	f.readsCut = true
	f.keepOpen = keepOpen
	f.mu.Unlock()
	// Unblock any read already parked in the kernel.
	f.Conn.SetReadDeadline(time.Now())
}

// hardClose closes the underlying connection regardless of keepOpen.
func (f *faultConn) hardClose() { f.Conn.Close() }

func (f *faultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	cut := f.readsCut
	f.mu.Unlock()
	if cut {
		return 0, fmt.Errorf("faultconn: reads cut")
	}
	n, err := f.Conn.Read(p)
	f.mu.Lock()
	cut = f.readsCut
	f.mu.Unlock()
	if cut {
		return 0, fmt.Errorf("faultconn: reads cut")
	}
	return n, err
}

func (f *faultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	quota := f.writeQuota
	f.mu.Unlock()
	if quota < 0 {
		return f.Conn.Write(p)
	}
	if quota > int64(len(p)) {
		f.mu.Lock()
		f.writeQuota -= int64(len(p))
		f.mu.Unlock()
		return f.Conn.Write(p)
	}
	n, _ := f.Conn.Write(p[:quota])
	f.Conn.Close()
	return n, fmt.Errorf("faultconn: write quota exhausted mid-frame")
}

func (f *faultConn) Close() error {
	f.mu.Lock()
	keep := f.keepOpen
	f.mu.Unlock()
	if keep {
		return nil
	}
	return f.Conn.Close()
}

// faultDialer dials real TCP and wraps every connection in a faultConn,
// keeping them accessible to the test in dial order.
type faultDialer struct {
	mu    sync.Mutex
	conns []*faultConn
}

func (d *faultDialer) dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fc := newFaultConn(c)
	d.mu.Lock()
	d.conns = append(d.conns, fc)
	d.mu.Unlock()
	return fc, nil
}

func (d *faultDialer) conn(i int) *faultConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns[i]
}

func (d *faultDialer) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.conns)
}

// ---------------------------------------------------------------------------
// Disconnect / reconnect paths

// TestTCPFaultRecovery drives the client through one injected link
// failure per case and requires full recovery: buffered sends replayed,
// ports re-registered on the same mailbox channel, traffic flowing in
// both directions afterwards.
func TestTCPFaultRecovery(t *testing.T) {
	cases := []struct {
		name  string
		fault func(t *testing.T, fd *faultDialer)
	}{
		{
			// The connection dies with half a frame on the wire: the
			// server must discard the torn frame (and the conn), the
			// client must replay the buffered message after reconnect.
			name: "mid-frame-drop",
			fault: func(t *testing.T, fd *faultDialer) {
				fd.conn(0).failNextWriteAfter(10)
			},
		},
		{
			// A clean drop between frames: the peer sees EOF.
			name: "clean-drop",
			fault: func(t *testing.T, fd *faultDialer) {
				fd.conn(0).hardClose()
			},
		},
		{
			// A half-open link: the client sees the loss, the server
			// does not. Reconnecting immediately races re-registration
			// against the broker's stale registration; the client must
			// retry until liveness eviction reclaims the port.
			name: "half-open-register-race",
			fault: func(t *testing.T, fd *faultDialer) {
				fc := fd.conn(0)
				fc.cutReads(true)
				// The stale server-side conn dies 120ms later — after
				// the first re-registration attempts have raced it.
				go func() {
					time.Sleep(120 * time.Millisecond)
					fc.hardClose()
				}()
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			center, addr := startCenterOpts(t, WithHeartbeatTimeout(400*time.Millisecond))
			sink, err := center.Register("sink-"+tc.name, 64)
			if err != nil {
				t.Fatal(err)
			}
			fd := &faultDialer{}
			cl, err := Dial(addr,
				WithDialer(fd.dial),
				WithReconnect(true),
				WithBackoff(10*time.Millisecond, 100*time.Millisecond),
				WithHeartbeat(50*time.Millisecond),
				WithOpTimeout(3*time.Second),
				WithSeed(7),
				WithErrorHandler(func(error) {}))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			in, err := cl.Register("src", 8)
			if err != nil {
				t.Fatal(err)
			}
			// Baseline: the healthy link delivers.
			if err := cl.Send(Message{From: "src", To: "sink-" + tc.name, Kind: "m-0"}); err != nil {
				t.Fatal(err)
			}
			if m := recvT(t, sink); m.Kind != "m-0" {
				t.Fatalf("baseline got %+v", m)
			}

			tc.fault(t, fd)

			// Sends issued around the failure either go out on the dying
			// conn or are buffered and replayed; none may be lost.
			for i := 1; i <= 3; i++ {
				if err := cl.Send(Message{From: "src", To: "sink-" + tc.name, Kind: fmt.Sprintf("m-%d", i)}); err != nil {
					t.Fatalf("send %d rejected: %v", i, err)
				}
			}
			want := map[string]bool{"m-1": true, "m-2": true, "m-3": true}
			deadline := time.Now().Add(10 * time.Second)
			for len(want) > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("missing messages after recovery: %v", want)
				}
				select {
				case m := <-sink:
					delete(want, m.Kind)
				case <-time.After(50 * time.Millisecond):
				}
			}

			// The reverse direction must come back on the ORIGINAL
			// mailbox channel — re-registration reuses it. Until the
			// broker evicts a stale half-open registration, sends may
			// "succeed" into the dead connection, so retry until a
			// message actually arrives.
			deadline = time.Now().Add(10 * time.Second)
		reverse:
			for {
				if time.Now().After(deadline) {
					t.Fatal("reverse direction never recovered")
				}
				center.Send(Message{From: "sink", To: "src", Kind: "back"})
				select {
				case m := <-in:
					if m.Kind != "back" {
						t.Fatalf("reverse got %+v", m)
					}
					break reverse
				case <-time.After(20 * time.Millisecond):
				}
			}
			if got := cl.Stats().Reconnects; got < 1 {
				t.Fatalf("Reconnects = %d, want >= 1", got)
			}
			if fd.count() < 2 {
				t.Fatalf("dialer used %d conns, want >= 2", fd.count())
			}
		})
	}
}

// TestTCPHeartbeatEviction: the broker evicts clients that stop sending
// frames; heartbeating clients survive arbitrarily long idle periods.
func TestTCPHeartbeatEviction(t *testing.T) {
	center, addr := startCenterOpts(t, WithHeartbeatTimeout(150*time.Millisecond))
	// A silent client: no heartbeats, no traffic after registration.
	lazy := dialT(t, addr)
	if _, err := lazy.Register("lazy", 4); err != nil {
		t.Fatal(err)
	}
	// A heartbeating client with the same traffic pattern.
	alive, err := Dial(addr, WithHeartbeat(40*time.Millisecond), WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alive.Close() })
	aliveIn, err := alive.Register("alive", 4)
	if err != nil {
		t.Fatal(err)
	}
	// Well past several eviction windows...
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := center.Send(Message{From: "x", To: "lazy", Kind: "y"}); err != nil {
			break // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("silent client never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...the heartbeating client is still routable.
	if err := center.Send(Message{From: "x", To: "alive", Kind: "y"}); err != nil {
		t.Fatalf("heartbeating client evicted: %v", err)
	}
	if m := recvT(t, aliveIn); m.Kind != "y" {
		t.Fatalf("got %+v", m)
	}
	if alive.Degraded() {
		t.Fatal("heartbeating client reports degraded")
	}
	if alive.Stats().HeartbeatsSent == 0 {
		t.Fatal("no heartbeats recorded")
	}
}

// TestTCPMailboxOverflowAccounted exercises the drop-on-overflow branch of
// the client read loop: deliveries beyond the mailbox capacity are
// discarded but counted, and in-capacity ones still arrive.
func TestTCPMailboxOverflowAccounted(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	in, err := cl.Register("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	const sent = 5
	for i := 0; i < sent; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := center.Send(Message{From: "x", To: "tiny", Kind: fmt.Sprintf("m-%d", i)}); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("port tiny never became routable")
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := cl.Stats()
		if s.Delivered+s.MailboxDrops == sent {
			if s.Delivered != 1 || s.MailboxDrops != sent-1 {
				t.Fatalf("Delivered=%d MailboxDrops=%d, want 1 and %d", s.Delivered, s.MailboxDrops, sent-1)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats stuck at %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	if m := recvT(t, in); m.Kind != "m-0" {
		t.Fatalf("survivor = %+v, want the first message", m)
	}
}

// TestTCPSendBufferBounded: during an outage the in-flight buffer accepts
// exactly its capacity and then fails fast, with the rejects accounted.
func TestTCPSendBufferBounded(t *testing.T) {
	_, addr := startCenter(t)
	fd := &faultDialer{}
	var lost atomic.Bool
	cl, err := Dial(addr,
		WithDialer(func(a string) (net.Conn, error) {
			if lost.Load() {
				return nil, fmt.Errorf("dial blocked by test")
			}
			return fd.dial(a)
		}),
		WithReconnect(true),
		WithBackoff(20*time.Millisecond, 100*time.Millisecond),
		WithSendBuffer(4),
		WithSeed(3),
		WithErrorHandler(func(error) {}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.Register("src", 4); err != nil {
		t.Fatal(err)
	}
	lost.Store(true)
	fd.conn(0).hardClose()
	deadline := time.Now().Add(5 * time.Second)
	for !cl.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the outage")
		}
		// Poke the connection so the writer path sees the failure even
		// if the read loop hasn't yet.
		cl.Send(Message{From: "src", To: "x", Kind: "poke"})
		time.Sleep(time.Millisecond)
	}
	// Fill whatever buffer space the pokes left, then require rejection.
	deadline = time.Now().Add(5 * time.Second)
	var rejected bool
	for time.Now().Before(deadline) {
		if err := cl.Send(Message{From: "src", To: "x", Kind: "fill"}); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("sends never hit the bounded buffer limit")
	}
	if cl.Stats().BufferRejects < 1 {
		t.Fatalf("BufferRejects = %d, want >= 1", cl.Stats().BufferRejects)
	}
}

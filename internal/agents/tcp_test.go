package agents

import (
	"net"
	"testing"
	"time"

	"github.com/pragma-grid/pragma/internal/policy"
)

// startCenter serves a Message Center on a loopback listener.
func startCenter(t *testing.T) (*Center, string) {
	t.Helper()
	c := NewCenter()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(ln)
	t.Cleanup(func() { ln.Close() })
	return c, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func recvT(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("mailbox closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	return Message{}
}

func TestTCPRemoteToLocal(t *testing.T) {
	center, addr := startCenter(t)
	local, err := center.Register("local", 8)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialT(t, addr)
	if _, err := cl.Register("remote", 8); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Message{From: "remote", To: "local", Kind: "hello"}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, local)
	if m.Kind != "hello" || m.From != "remote" {
		t.Fatalf("received %+v", m)
	}
}

func TestTCPLocalToRemote(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	remote, err := cl.Register("remote", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := center.Send(Message{From: "srv", To: "remote", Kind: "task"}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, remote)
	if m.Kind != "task" {
		t.Fatalf("received %+v", m)
	}
}

func TestTCPRemoteToRemote(t *testing.T) {
	_, addr := startCenter(t)
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	if _, err := c1.Register("n1", 8); err != nil {
		t.Fatal(err)
	}
	in2, err := c2.Register("n2", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Send(Message{From: "n1", To: "n2", Kind: "x", Payload: Encode(42)}); err != nil {
		t.Fatal(err)
	}
	m := recvT(t, in2)
	var v int
	if err := Decode(m, &v); err != nil || v != 42 {
		t.Fatalf("payload %v err %v", v, err)
	}
}

func TestTCPPubSubAcrossNodes(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	remoteIn, err := cl.Register("rsub", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Subscribe("rsub", "events"); err != nil {
		t.Fatal(err)
	}
	localIn, err := center.Register("lsub", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := center.Subscribe("lsub", "events"); err != nil {
		t.Fatal(err)
	}
	// Publish from the remote side; both local and remote subscribers get it.
	if err := cl.Publish(Message{From: "rsub2", Topic: "events", Kind: "boom"}); err != nil {
		t.Fatal(err)
	}
	if m := recvT(t, remoteIn); m.Kind != "boom" {
		t.Fatalf("remote got %+v", m)
	}
	if m := recvT(t, localIn); m.Kind != "boom" {
		t.Fatalf("local got %+v", m)
	}
}

func TestTCPDuplicateRegistrationRejected(t *testing.T) {
	center, addr := startCenter(t)
	if _, err := center.Register("dup", 4); err != nil {
		t.Fatal(err)
	}
	cl := dialT(t, addr)
	if _, err := cl.Register("dup", 4); err == nil {
		t.Fatal("remote registration over existing local port accepted")
	}
	// A different port still works on the same connection.
	if _, err := cl.Register("dup2", 4); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDisconnectCleansUp(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	if _, err := cl.Register("ghost", 4); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	// After the disconnect the port eventually disappears from the broker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := center.Send(Message{From: "x", To: "ghost", Kind: "y"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ghost port still routable after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPUnregister(t *testing.T) {
	center, addr := startCenter(t)
	cl := dialT(t, addr)
	in, err := cl.Register("p", 4)
	if err != nil {
		t.Fatal(err)
	}
	cl.Unregister("p")
	if _, ok := <-in; ok {
		t.Fatal("mailbox not closed on unregister")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := center.Send(Message{From: "x", To: "p", Kind: "y"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("port still routable after unregister")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistributedControlNetwork is the multi-node emulation scenario of
// §4.7: component agents on two "nodes" (TCP clients) publish state to the
// message center; the ADM (local to the broker) consolidates, queries the
// policy base, and directs the remote agents, whose actuators fire.
func TestDistributedControlNetwork(t *testing.T) {
	center, addr := startCenter(t)
	adm, err := NewADM("adm", center, policy.Table2())
	if err != nil {
		t.Fatal(err)
	}

	type node struct {
		client *Client
		agent  *ComponentAgent
		fired  chan Command
	}
	mkNode := func(id string, load float64) *node {
		cl := dialT(t, addr)
		fired := make(chan Command, 4)
		ca, err := NewComponentAgent(id, cl,
			[]Sensor{fixedSensor("load", load)},
			[]Actuator{ActuatorFunc{ActuatorName: "repartition", Fn: func(p map[string]float64) error {
				fired <- Command{Actuator: "repartition", Params: p}
				return nil
			}}},
			nil)
		if err != nil {
			t.Fatal(err)
		}
		return &node{client: cl, agent: ca, fired: fired}
	}
	n1 := mkNode("node-1", 0.3)
	n2 := mkNode("node-2", 0.85)

	for _, n := range []*node{n1, n2} {
		if _, err := n.agent.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// State flows over TCP to the broker-side ADM.
	deadline := time.Now().Add(5 * time.Second)
	for adm.Absorb(); ; {
		if adm.Consolidate().Agents == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ADM saw %d agents", adm.Consolidate().Agents)
		}
		time.Sleep(time.Millisecond)
		adm.Absorb()
	}
	cons := adm.Consolidate()
	if cons.ArgMax["load"] != "node-2" {
		t.Fatalf("argmax = %v", cons.ArgMax)
	}
	// Policy decision and directive propagation.
	dec := adm.Decide(map[string]interface{}{"octant": "V"}, "select-partitioner")
	if len(dec) != 1 || dec[0].Action.Target != "pBD-ISP" {
		t.Fatalf("decision = %+v", dec)
	}
	if err := adm.Broadcast(Command{Actuator: "repartition", Params: map[string]float64{"procs": 2}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*node{n1, n2} {
		// Commands arrive over TCP; drain until the actuator fires.
		deadline := time.Now().Add(5 * time.Second)
		for {
			n.agent.DrainInbox()
			select {
			case cmd := <-n.fired:
				if cmd.Params["procs"] != 2 {
					t.Fatalf("actuated %+v", cmd)
				}
			default:
				if time.Now().After(deadline) {
					t.Fatalf("%s actuator never fired", n.agent.ID)
				}
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
	}
}

package agents

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Template is a blueprint of an application execution environment: "To
// configure the application execution environment, the MCS searches for an
// appropriate template in the template database that can meet all
// application requirements."
type Template struct {
	// Name identifies the template.
	Name string `json:"name"`
	// Provides declares the requirements the template satisfies, e.g.
	// {"attribute": "performance", "scheme": "active-redundancy"}.
	Provides map[string]string `json:"provides"`
	// Blueprint is the environment description itself (opaque JSON).
	Blueprint json.RawMessage `json:"blueprint,omitempty"`
}

// Registry is the template database with open registration and discovery —
// the role of the JINI-based registry in CATALINA. It is safe for
// concurrent use.
type Registry struct {
	mu        sync.RWMutex
	templates map[string]Template
}

// NewRegistry returns an empty template registry.
func NewRegistry() *Registry {
	return &Registry{templates: make(map[string]Template)}
}

// Register adds or replaces a template (third parties may register).
func (r *Registry) Register(t Template) error {
	if t.Name == "" {
		return fmt.Errorf("agents: template without name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.templates[t.Name] = t
	return nil
}

// Deregister removes a template, reporting whether it existed.
func (r *Registry) Deregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.templates[name]; !ok {
		return false
	}
	delete(r.templates, name)
	return true
}

// Len returns the number of registered templates.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.templates)
}

// Discover returns every template satisfying all given requirements (a
// template satisfies a requirement when Provides contains the same
// key/value). An empty requirement set matches everything.
func (r *Registry) Discover(requirements map[string]string) []Template {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Template
	for _, t := range r.templates {
		ok := true
		for k, v := range requirements {
			if t.Provides[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// RegistryPort is the well-known mailbox of a registry served over the
// Message Center.
const RegistryPort = "template-registry"

// discoverRequest is the payload of a registry discovery message.
type discoverRequest struct {
	ReplyTo      string            `json:"replyTo"`
	Requirements map[string]string `json:"requirements"`
}

// discoverReply is the payload of the registry's response.
type discoverReply struct {
	Templates []Template `json:"templates"`
}

// Serve exposes the registry on the Message Center at RegistryPort,
// answering "discover" messages until the port closes. Run it in a
// goroutine.
func (r *Registry) Serve(port Port) error {
	inbox, err := port.Register(RegistryPort, 64)
	if err != nil {
		return err
	}
	for m := range inbox {
		if m.Kind != "discover" {
			continue
		}
		var req discoverRequest
		if Decode(m, &req) != nil || req.ReplyTo == "" {
			continue
		}
		reply := discoverReply{Templates: r.Discover(req.Requirements)}
		port.Send(Message{
			From: RegistryPort, To: req.ReplyTo, Kind: "discover-reply", Payload: Encode(reply),
		})
	}
	return nil
}

// DiscoverVia performs a discovery through the Message Center: it sends a
// request to RegistryPort and waits for the reply on the given mailbox.
func DiscoverVia(port Port, replyPort string, inbox <-chan Message, requirements map[string]string) ([]Template, error) {
	err := port.Send(Message{
		From: replyPort,
		To:   RegistryPort,
		Kind: "discover",
		Payload: Encode(discoverRequest{
			ReplyTo:      replyPort,
			Requirements: requirements,
		}),
	})
	if err != nil {
		return nil, err
	}
	for m := range inbox {
		if m.Kind != "discover-reply" {
			continue
		}
		var reply discoverReply
		if err := Decode(m, &reply); err != nil {
			return nil, err
		}
		return reply.Templates, nil
	}
	return nil, fmt.Errorf("agents: mailbox closed before discovery reply")
}

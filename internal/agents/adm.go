package agents

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pragma-grid/pragma/internal/policy"
)

// ADM is the Application Delegated Manager: the MCS assigns it to manage an
// application attribute (here: performance). It subscribes to agent state
// and events, consolidates local information hierarchically, queries the
// policy knowledge base for a decision, and propagates directives back to
// the component agents — "Local decisions are hierarchically consolidated
// by the application delegation manager agent" (§4.7).
type ADM struct {
	// ID is the manager's mailbox port.
	ID string

	port   Port
	inbox  <-chan Message
	policy *policy.Base

	mu     sync.Mutex
	states map[string]StateReport
	events []Event
}

// NewADM registers the manager's mailbox and subscribes it to agent state
// and event topics.
func NewADM(id string, port Port, kb *policy.Base) (*ADM, error) {
	if id == "" {
		return nil, fmt.Errorf("agents: ADM without id")
	}
	inbox, err := port.Register(id, 256)
	if err != nil {
		return nil, err
	}
	for _, topic := range []string{TopicState, TopicEvents} {
		if err := port.Subscribe(id, topic); err != nil {
			port.Unregister(id)
			return nil, err
		}
	}
	return &ADM{ID: id, port: port, inbox: inbox, policy: kb, states: make(map[string]StateReport)}, nil
}

// Absorb drains the mailbox, recording the latest state per agent and any
// pending events. It returns how many messages were absorbed.
func (a *ADM) Absorb() int {
	n := 0
	for {
		select {
		case m, ok := <-a.inbox:
			if !ok {
				return n
			}
			n++
			switch m.Kind {
			case "state":
				var r StateReport
				if Decode(m, &r) == nil {
					a.mu.Lock()
					a.states[r.Agent] = r
					a.mu.Unlock()
				}
			case "event":
				var ev Event
				if Decode(m, &ev) == nil {
					a.mu.Lock()
					a.events = append(a.events, ev)
					a.mu.Unlock()
				}
			}
		default:
			return n
		}
	}
}

// Consolidated is the hierarchical consolidation of the latest agent
// states: per-attribute mean, max and the agent holding the max.
type Consolidated struct {
	Agents int
	Mean   map[string]float64
	Max    map[string]float64
	ArgMax map[string]string
}

// Consolidate aggregates the latest state reports.
func (a *ADM) Consolidate() Consolidated {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := Consolidated{
		Agents: len(a.states),
		Mean:   map[string]float64{},
		Max:    map[string]float64{},
		ArgMax: map[string]string{},
	}
	counts := map[string]int{}
	// Iterate agents in sorted order so ArgMax ties break deterministically.
	ids := make([]string, 0, len(a.states))
	for id := range a.states {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for attr, v := range a.states[id].Readings {
			c.Mean[attr] += v
			counts[attr]++
			if cur, ok := c.Max[attr]; !ok || v > cur {
				c.Max[attr] = v
				c.ArgMax[attr] = id
			}
		}
	}
	for attr, n := range counts {
		c.Mean[attr] /= float64(n)
	}
	return c
}

// PendingEvents returns and clears the absorbed events.
func (a *ADM) PendingEvents() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	evs := a.events
	a.events = nil
	return evs
}

// Decision is one directive the ADM issues.
type Decision struct {
	// Agent is the directive's destination; empty means broadcast to every
	// known agent.
	Agent  string
	Action policy.Action
}

// Decide queries the policy base with the consolidated state plus the
// caller-provided attributes (e.g. the current octant) and turns matching
// actions of the given kinds into decisions. Final policy decisions are
// then propagated with Direct.
func (a *ADM) Decide(extra map[string]interface{}, kinds ...string) []Decision {
	if a.policy == nil {
		return nil
	}
	attrs := map[string]interface{}{}
	cons := a.Consolidate()
	for attr, v := range cons.Mean {
		attrs["mean-"+attr] = v
	}
	for attr, v := range cons.Max {
		attrs["max-"+attr] = v
	}
	for k, v := range extra {
		attrs[k] = v
	}
	var out []Decision
	for _, kind := range kinds {
		if act, ok := a.policy.BestAction(kind, attrs); ok {
			out = append(out, Decision{Action: act})
		}
	}
	return out
}

// Direct sends a command to one agent's mailbox ("the only requirement is
// that the ADM recommendations be complied with").
func (a *ADM) Direct(agent string, cmd Command) error {
	return a.port.Send(Message{
		From: a.ID, To: agent, Kind: "command", Payload: Encode(cmd),
	})
}

// Broadcast sends a command to every agent the ADM has heard from.
func (a *ADM) Broadcast(cmd Command) error {
	a.mu.Lock()
	ids := make([]string, 0, len(a.states))
	for id := range a.states {
		ids = append(ids, id)
	}
	a.mu.Unlock()
	sort.Strings(ids)
	var firstErr error
	for _, id := range ids {
		if err := a.Direct(id, cmd); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

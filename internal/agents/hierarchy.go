package agents

import (
	"fmt"

	"github.com/pragma-grid/pragma/internal/policy"
)

// Hierarchical consolidation. §4.7: "Local decisions are hierarchically
// consolidated by the application delegation manager agent." On large
// machines one manager cannot absorb every node's reports; an ADM tree
// consolidates in groups: node agents publish to their group's topic, group
// managers consolidate and republish a group summary upward, and the root
// sees one report per group instead of one per node.

// GroupADM is a mid-tier manager: it consolidates the state reports of its
// group's agents and publishes the summary as a single state report on the
// parent topic.
type GroupADM struct {
	// ID is the manager's mailbox port.
	ID string

	inner  *ADM
	port   Port
	parent string // topic the summary is published on
	seq    int
}

// GroupStateTopic returns the topic group members publish their state on.
func GroupStateTopic(group string) string { return "group-state/" + group }

// NewGroupADM registers a group manager subscribed to its group topic,
// republishing consolidated summaries on parentTopic.
func NewGroupADM(id, group, parentTopic string, port Port) (*GroupADM, error) {
	if group == "" || parentTopic == "" {
		return nil, fmt.Errorf("agents: group ADM needs group and parent topic")
	}
	inbox, err := port.Register(id, 256)
	if err != nil {
		return nil, err
	}
	if err := port.Subscribe(id, GroupStateTopic(group)); err != nil {
		port.Unregister(id)
		return nil, err
	}
	g := &GroupADM{
		ID:     id,
		inner:  &ADM{ID: id, port: port, inbox: inbox, states: make(map[string]StateReport)},
		port:   port,
		parent: parentTopic,
	}
	return g, nil
}

// Absorb drains the group mailbox into the consolidation state.
func (g *GroupADM) Absorb() int { return g.inner.Absorb() }

// Consolidate aggregates the group's latest reports.
func (g *GroupADM) Consolidate() Consolidated { return g.inner.Consolidate() }

// PublishSummary consolidates and publishes the group summary upward as a
// state report carrying the group's mean readings (plus the group's
// member count under "members"). Returns the summary published.
func (g *GroupADM) PublishSummary() (StateReport, error) {
	cons := g.inner.Consolidate()
	readings := map[string]float64{"members": float64(cons.Agents)}
	for attr, v := range cons.Mean {
		readings[attr] = v
	}
	g.seq++
	report := StateReport{Agent: g.ID, Seq: g.seq, Readings: readings}
	err := g.port.Publish(Message{
		From: g.ID, Topic: g.parent, Kind: "state", Payload: Encode(report),
	})
	return report, err
}

// NewRootADM registers a root manager that consumes group summaries from
// the given topic (in addition to the flat agent topics).
func NewRootADM(id, summaryTopic string, port Port, kb *policy.Base) (*ADM, error) {
	adm, err := NewADM(id, port, kb)
	if err != nil {
		return nil, err
	}
	if err := port.Subscribe(id, summaryTopic); err != nil {
		port.Unregister(id)
		return nil, err
	}
	return adm, nil
}
